(* A complete XML keyword search engine assembled from the library's
   pieces, the way the demo paper frames it (§4: "a full-fledged XML
   keyword search engine with functionalities from query result
   construction, ranking, to providing result snippets"):

   1. load and analyze a database (entities, keys, index);
   2. execute a keyword query (XSeek semantics);
   3. rank the results (XRank-style scores);
   4. generate snippets, differentiated across results;
   5. emit the result page as HTML next to a terminal rendition.

   Run with: dune exec examples/full_engine.exe *)

module Pipeline = Extract_snippet.Pipeline
module Ranker = Extract_search.Ranker
module Query = Extract_search.Query
module Snippet_tree = Extract_snippet.Snippet_tree
module Selector = Extract_snippet.Selector

let () =
  let query = "jeans store" in
  let bound = 6 in

  (* 1. offline *)
  let doc =
    Extract_store.Document.of_document
      (Extract_datagen.Retail.generate Extract_datagen.Retail.default)
  in
  let db = Pipeline.build doc in

  (* 2-4. online: differentiated snippets, then rank the results *)
  let snippets = Pipeline.run_differentiated ~bound db query in
  let ranker = Ranker.make (Pipeline.index db) in
  let q = Query.of_string query in
  let ranked =
    List.map
      (fun (r : Pipeline.snippet_result) -> Ranker.score ranker q r.Pipeline.result, r)
      snippets
    |> List.stable_sort (fun (a, _) (b, _) -> Float.compare b a)
  in

  Printf.printf "Query %S — %d results, ranked:\n\n" query (List.length ranked);
  List.iteri
    (fun i (score, (r : Pipeline.snippet_result)) ->
      if i < 3 then begin
        Printf.printf "#%d (score %.2f)\n" (i + 1) score;
        print_endline (Snippet_tree.render r.Pipeline.selection.Selector.snippet);
        print_newline ()
      end)
    ranked;

  (* 5. the web page of Fig. 5 *)
  let out = Filename.concat (Filename.get_temp_dir_name ()) "extract_full_engine.html" in
  Extract_snippet.Html_view.write_page ~path:out ~title:"eXtract — full engine" ~query
    ~bound
    (List.map snd ranked);
  Printf.printf "HTML result page: %s\n" out
