(* Tests for the invariant verifier (lib/check): every bundled generator
   must come out clean under [Check.all], and seeded corruptions —
   injected through the [Internal.of_repr] back doors — must be caught.
   Posting-list edge cases (empty, single, duplicates, out-of-range) ride
   along, since [check_index] is their specification. *)

module Document = Extract_store.Document
module Inverted_index = Extract_store.Inverted_index
module Query = Extract_search.Query
module Result_tree = Extract_search.Result_tree
module Pipeline = Extract_snippet.Pipeline
module Selector = Extract_snippet.Selector
module Datagen = Extract_datagen
module Check = Extract_check.Check

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let issues_to_string issues = String.concat "; " (List.map Check.issue_to_string issues)

let check_clean what issues =
  Alcotest.(check string) what "" (issues_to_string issues)

let check_flagged what issues = check bool what true (issues <> [])

let has_issue_about substring issues =
  List.exists
    (fun i ->
      let s = Check.issue_to_string i in
      let n = String.length substring in
      let rec scan k = k + n <= String.length s && (String.sub s k n = substring || scan (k + 1)) in
      scan 0)
    issues

(* ------------------------------------------------------------------ *)
(* Every bundled generator passes the full fsck *)

let bundled_databases () =
  [
    "paper", Pipeline.build (Document.of_document (Datagen.Paper_example.document ()));
    "retail", Pipeline.build (Document.of_document (Datagen.Retail.generate Datagen.Retail.default));
    "movies", Pipeline.build (Document.of_document (Datagen.Movies.generate Datagen.Movies.default));
    "auction", Pipeline.build (Document.of_document (Datagen.Auction.generate Datagen.Auction.default));
    "bib", Pipeline.build (Document.of_document (Datagen.Bib.generate Datagen.Bib.default));
    "courses", Pipeline.build (Document.of_document (Datagen.Courses.generate Datagen.Courses.default));
  ]

let test_all_generators_clean () =
  List.iter (fun (name, db) -> check_clean name (Check.all db)) (bundled_databases ())

let test_probe_queries_nonempty () =
  List.iter
    (fun (name, db) ->
      check bool (name ^ " has probe queries") true (Check.probe_queries db <> []))
    (bundled_databases ())

(* ------------------------------------------------------------------ *)
(* Seeded document corruptions *)

let small_doc () =
  Document.load_string
    "<catalog><vendor>acme</vendor>\
     <book><title>ocaml</title><tag>lang</tag></book>\
     <book><title>databases</title></book></catalog>"

let copy_doc_repr (r : Document.Internal.repr) =
  {
    r with
    Document.Internal.tag = Array.copy r.Document.Internal.tag;
    parent = Array.copy r.Document.Internal.parent;
    depth = Array.copy r.Document.Internal.depth;
    size = Array.copy r.Document.Internal.size;
  }

let test_clean_document_passes () =
  check_clean "small document" (Check.check_document (small_doc ()))

(* Swapping two subtree-size entries breaks the interval nesting that the
   Dewey labels are derived from: document order is no longer consistent. *)
let test_swapped_sizes_detected () =
  let r = copy_doc_repr (Document.Internal.to_repr (small_doc ())) in
  let sizes = r.Document.Internal.size in
  let tmp = sizes.(1) in
  sizes.(1) <- sizes.(2);
  sizes.(2) <- tmp;
  let issues = Check.check_document (Document.Internal.of_repr r) in
  check_flagged "swapped sizes flagged" issues

(* Re-parenting a node to a later id corrupts the pre-order (its Dewey
   label would sort after its children's). *)
let test_swapped_parents_detected () =
  let r = copy_doc_repr (Document.Internal.to_repr (small_doc ())) in
  let parents = r.Document.Internal.parent in
  parents.(1) <- Array.length parents - 1;
  let issues = Check.check_document (Document.Internal.of_repr r) in
  check_flagged "bad parent flagged" issues

let test_corrupt_depth_detected () =
  let r = copy_doc_repr (Document.Internal.to_repr (small_doc ())) in
  r.Document.Internal.depth.(1) <- r.Document.Internal.depth.(1) + 1;
  let issues = Check.check_document (Document.Internal.of_repr r) in
  check_flagged "bad depth flagged" issues

(* ------------------------------------------------------------------ *)
(* Posting-list edge cases and seeded index corruptions *)

let index_of_doc doc = Inverted_index.build doc

let with_postings doc f =
  let idx = index_of_doc doc in
  let r = Inverted_index.Internal.to_repr idx in
  let postings = Array.map Array.copy r.Inverted_index.Internal.postings in
  let r' = { r with Inverted_index.Internal.postings } in
  f r';
  Check.check_index (Inverted_index.Internal.of_repr ~doc r')

let test_clean_index_passes () =
  check_clean "small index" (Check.check_index (index_of_doc (small_doc ())))

let test_lookup_empty_and_single () =
  let idx = index_of_doc (small_doc ()) in
  (* missing keyword: the empty posting list, not an exception *)
  check int "missing keyword" 0 (Array.length (Inverted_index.lookup idx "zzzzz"));
  (* "acme" occurs exactly once (under vendor) *)
  check int "single posting" 1 (Array.length (Inverted_index.lookup idx "acme"))

let test_shuffled_postings_detected () =
  let doc = small_doc () in
  let issues =
    with_postings doc (fun r ->
        let postings = r.Inverted_index.Internal.postings in
        (* reverse the longest posting list ("book" has two) *)
        let longest = ref 0 in
        Array.iteri
          (fun i l -> if Array.length l > Array.length postings.(!longest) then longest := i)
          postings;
        let l = postings.(!longest) in
        let n = Array.length l in
        for k = 0 to (n / 2) - 1 do
          let tmp = l.(k) in
          l.(k) <- l.(n - 1 - k);
          l.(n - 1 - k) <- tmp
        done)
  in
  check_flagged "shuffled postings flagged" issues;
  check bool "mentions ordering" true (has_issue_about "ascending" issues)

let test_duplicate_postings_detected () =
  let doc = small_doc () in
  let issues =
    with_postings doc (fun r ->
        let postings = r.Inverted_index.Internal.postings in
        let longest = ref 0 in
        Array.iteri
          (fun i l -> if Array.length l > Array.length postings.(!longest) then longest := i)
          postings;
        let l = postings.(!longest) in
        l.(1) <- l.(0))
  in
  check_flagged "duplicate posting flagged" issues

let test_out_of_range_posting_detected () =
  let doc = small_doc () in
  let issues =
    with_postings doc (fun r ->
        let postings = r.Inverted_index.Internal.postings in
        let l = postings.(0) in
        l.(Array.length l - 1) <- Document.node_count doc + 5)
  in
  check_flagged "out-of-range posting flagged" issues;
  check bool "mentions the arena" true (has_issue_about "outside the arena" issues)

let test_empty_posting_list_detected () =
  let doc = small_doc () in
  let issues =
    with_postings doc (fun r -> r.Inverted_index.Internal.postings.(0) <- [||])
  in
  check_flagged "empty posting list flagged" issues

let test_phantom_posting_detected () =
  (* a structurally valid element that does not match the token *)
  let doc = small_doc () in
  let idx = index_of_doc doc in
  let r = Inverted_index.Internal.to_repr idx in
  let postings = Array.map Array.copy r.Inverted_index.Internal.postings in
  (* find the token "acme" (posting = the vendor element, node 1) and
     point it at the root instead *)
  let acme = ref (-1) in
  Array.iteri (fun i t -> if t = "acme" then acme := i) r.Inverted_index.Internal.tokens;
  check bool "acme is indexed" true (!acme >= 0);
  postings.(!acme) <- [| 0 |];
  let corrupted =
    Inverted_index.Internal.of_repr ~doc { r with Inverted_index.Internal.postings }
  in
  check_flagged "phantom posting flagged" (Check.check_index corrupted)

(* ------------------------------------------------------------------ *)
(* Snippet / selection corruptions *)

let retail_db () =
  Pipeline.build (Document.of_document (Datagen.Retail.generate Datagen.Retail.default))

let first_result db query =
  match Pipeline.search db query with
  | r :: _ -> r
  | [] -> Alcotest.fail ("no results for " ^ query)

let test_clean_selection_passes () =
  let db = retail_db () in
  let result = first_result db "apparel retailer" in
  let s = Pipeline.snippet_of ~bound:10 db result (Query.of_string "apparel retailer") in
  check_clean "selection" (Check.check_selection s.Pipeline.selection)

let test_over_budget_snippet_detected () =
  let db = retail_db () in
  let result = first_result db "apparel retailer" in
  let s = Pipeline.snippet_of ~bound:10 db result (Query.of_string "apparel retailer") in
  let sel = s.Pipeline.selection in
  check bool "snippet uses some budget" true
    (Extract_snippet.Snippet_tree.edge_count sel.Selector.snippet > 0);
  (* shrink the recorded bound below the snippet's actual edge count *)
  let corrupted = { sel with Selector.bound = 0 } in
  let issues = Check.check_selection corrupted in
  check_flagged "over-budget snippet flagged" issues;
  check bool "mentions the bound" true (has_issue_about "over the bound" issues)

let test_check_query_clean () =
  let db = retail_db () in
  check_clean "check_query" (Check.check_query db "apparel retailer")

let test_degraded_selection_skips_cost_check () =
  let db = retail_db () in
  let result = first_result db "apparel retailer" in
  let s = Pipeline.snippet_of ~bound:10 db result (Query.of_string "apparel retailer") in
  (* a degraded selection carries no coverage accounting; the cost-sum
     invariant would misfire, the structural checks must still run *)
  let degraded_sel = { s.Pipeline.selection with Selector.covered = [] } in
  check_flagged "strict check flags missing accounting"
    (Check.check_selection degraded_sel);
  check_clean "degraded check accepts it"
    (Check.check_selection ~degraded:true degraded_sel);
  (* but a degraded selection over the bound is still an issue *)
  let over = { degraded_sel with Selector.bound = 0 } in
  check_flagged "degraded over-budget still flagged"
    (Check.check_selection ~degraded:true over)

let test_degraded_pipeline_run_passes_observer () =
  Check.install_pipeline_observer ();
  Fun.protect
    ~finally:(fun () -> Pipeline.set_observer None)
    (fun () ->
      let db = retail_db () in
      let deadline = Extract_util.Deadline.of_ms_opt (Some 0) in
      let results = Pipeline.run ~bound:10 ~deadline db "apparel retailer" in
      check bool "degraded run survives observer" true
        (results <> [] && List.for_all (fun r -> r.Pipeline.degraded) results))

(* ------------------------------------------------------------------ *)
(* Persisted pair validation (check --index) *)

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let in_temp_pair f =
  let arena = Filename.temp_file "extract_arena" ".bin" in
  let index = Filename.temp_file "extract_index" ".idx" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove arena;
      Sys.remove index)
    (fun () -> f arena index)

let test_check_pair_matching () =
  let db = retail_db () in
  in_temp_pair (fun arena index ->
      Extract_store.Persist.save arena (Pipeline.document db);
      Extract_store.Persist.save_index index (Pipeline.index db);
      check_clean "matching pair" (Check.check_pair ~arena ~index))

let test_check_pair_mismatched () =
  let db_a = retail_db () in
  let db_b =
    Pipeline.build (Document.of_document (Datagen.Movies.generate Datagen.Movies.default))
  in
  in_temp_pair (fun arena index ->
      Extract_store.Persist.save arena (Pipeline.document db_a);
      Extract_store.Persist.save_index index (Pipeline.index db_b);
      let issues = Check.check_pair ~arena ~index in
      check_flagged "mismatched pair flagged" issues;
      check bool "mentions fingerprint" true (has_issue_about "fingerprint" issues))

let test_check_pair_corrupt_index () =
  let db = retail_db () in
  in_temp_pair (fun arena index ->
      Extract_store.Persist.save arena (Pipeline.document db);
      Extract_store.Persist.save_index index (Pipeline.index db);
      let ic = open_in_bin index in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let bytes = Bytes.of_string data in
      let pos = Bytes.length bytes - 2 in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0xff));
      write_file index (Bytes.to_string bytes);
      check_flagged "corrupt index flagged" (Check.check_pair ~arena ~index))

let test_check_pair_xml_arena () =
  (* the arena side may be plain XML: it is parsed, fingerprinted, and
     still compared against the index *)
  let db = retail_db () in
  in_temp_pair (fun arena index ->
      write_file arena "<a><b>one two</b></a>";
      Extract_store.Persist.save_index index (Pipeline.index db);
      let issues = Check.check_pair ~arena ~index in
      check_flagged "xml arena vs foreign index flagged" issues)

(* ------------------------------------------------------------------ *)
(* Pipeline observer (the EXTRACT_CHECK seam) *)

let test_observer_clean_run () =
  Check.install_pipeline_observer ();
  Fun.protect
    ~finally:(fun () -> Pipeline.set_observer None)
    (fun () ->
      let db = retail_db () in
      let results = Pipeline.run ~bound:10 db "apparel retailer" in
      check bool "observer run produced results" true (results <> []))

let test_observer_catches_corruption () =
  Check.install_pipeline_observer ();
  Fun.protect
    ~finally:(fun () -> Pipeline.set_observer None)
    (fun () ->
      (* depth is recorded but never drives a builder's control flow, so
         the corrupt arena survives Pipeline.build long enough for the
         post-build observer hook to flag it *)
      let r = copy_doc_repr (Document.Internal.to_repr (small_doc ())) in
      r.Document.Internal.depth.(1) <- r.Document.Internal.depth.(1) + 1;
      let corrupt = Document.Internal.of_repr r in
      match Pipeline.build corrupt with
      | _ -> Alcotest.fail "observer accepted a corrupt arena"
      | exception Check.Violation issues -> check_flagged "violation issues" issues)

let suites =
  [
    ( "check.document",
      [
        Alcotest.test_case "clean document passes" `Quick test_clean_document_passes;
        Alcotest.test_case "swapped sizes detected" `Quick test_swapped_sizes_detected;
        Alcotest.test_case "swapped parents detected" `Quick test_swapped_parents_detected;
        Alcotest.test_case "corrupt depth detected" `Quick test_corrupt_depth_detected;
      ] );
    ( "check.index",
      [
        Alcotest.test_case "clean index passes" `Quick test_clean_index_passes;
        Alcotest.test_case "lookup: empty and single" `Quick test_lookup_empty_and_single;
        Alcotest.test_case "shuffled postings detected" `Quick test_shuffled_postings_detected;
        Alcotest.test_case "duplicate postings detected" `Quick test_duplicate_postings_detected;
        Alcotest.test_case "out-of-range posting detected" `Quick test_out_of_range_posting_detected;
        Alcotest.test_case "empty posting list detected" `Quick test_empty_posting_list_detected;
        Alcotest.test_case "phantom posting detected" `Quick test_phantom_posting_detected;
      ] );
    ( "check.snippet",
      [
        Alcotest.test_case "clean selection passes" `Quick test_clean_selection_passes;
        Alcotest.test_case "over-budget snippet detected" `Quick test_over_budget_snippet_detected;
        Alcotest.test_case "check_query clean" `Quick test_check_query_clean;
        Alcotest.test_case "degraded skips cost check" `Quick test_degraded_selection_skips_cost_check;
        Alcotest.test_case "degraded run under observer" `Quick test_degraded_pipeline_run_passes_observer;
      ] );
    ( "check.persist",
      [
        Alcotest.test_case "matching pair" `Quick test_check_pair_matching;
        Alcotest.test_case "mismatched pair" `Quick test_check_pair_mismatched;
        Alcotest.test_case "corrupt index" `Quick test_check_pair_corrupt_index;
        Alcotest.test_case "xml arena" `Quick test_check_pair_xml_arena;
      ] );
    ( "check.all",
      [
        Alcotest.test_case "all bundled generators clean" `Slow test_all_generators_clean;
        Alcotest.test_case "probe queries nonempty" `Slow test_probe_queries_nonempty;
      ] );
    ( "check.observer",
      [
        Alcotest.test_case "clean run under observer" `Quick test_observer_clean_run;
        Alcotest.test_case "observer catches corruption" `Quick test_observer_catches_corruption;
      ] );
  ]
