(* Regression tests against the paper itself: the running example of
   Figures 1–3 and the hand-computed numbers of §2.1–2.4.

   The generated document (Extract_datagen.Paper_example) reconstructs the
   Figure 1 query result exactly; these tests assert that every number and
   every list the paper states is reproduced by the implementation. *)

open Extract_snippet
module Document = Extract_store.Document
module Node_kind = Extract_store.Node_kind
module Dataguide = Extract_store.Dataguide
module Result_tree = Extract_search.Result_tree
module Query = Extract_search.Query
module Paper = Extract_datagen.Paper_example

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

type ctx = {
  db : Pipeline.t;
  result : Result_tree.t;
  query : Query.t;
  analysis : Feature.analysis;
}

let make_ctx ~with_dtd =
  let doc = Document.of_document (Paper.document ~with_dtd ()) in
  let db = Pipeline.build doc in
  let query = Query.of_string Paper.query in
  match Pipeline.search db Paper.query with
  | [ result ] ->
    { db; result; query; analysis = Feature.analyze (Pipeline.kinds db) result }
  | results ->
    Alcotest.failf "expected exactly 1 result for %S, got %d" Paper.query
      (List.length results)

let ctx = lazy (make_ctx ~with_dtd:true)
let ctx_nodtd = lazy (make_ctx ~with_dtd:false)

(* ------------------------------------------------------------------ *)
(* §2.1: node classification on the retailer schema *)

let test_classification () =
  let { db; _ } = Lazy.force ctx in
  let kinds = Pipeline.kinds db in
  let guide = Pipeline.dataguide db in
  let kind_of names =
    Node_kind.kind_of_path kinds (Option.get (Dataguide.find_path guide names))
  in
  (* "retailer, store and clothes are entities" (§2.1) *)
  check bool "retailer entity" true
    (kind_of [ "retailers"; "retailer" ] = Node_kind.Entity);
  check bool "store entity" true
    (kind_of [ "retailers"; "retailer"; "store" ] = Node_kind.Entity);
  check bool "clothes entity" true
    (kind_of [ "retailers"; "retailer"; "store"; "merchandises"; "clothes" ]
    = Node_kind.Entity);
  check bool "city attribute" true
    (kind_of [ "retailers"; "retailer"; "store"; "city" ] = Node_kind.Attribute);
  check bool "fitting attribute" true
    (kind_of
       [ "retailers"; "retailer"; "store"; "merchandises"; "clothes"; "fitting" ]
    = Node_kind.Attribute);
  check bool "merchandises connection" true
    (kind_of [ "retailers"; "retailer"; "store"; "merchandises" ] = Node_kind.Connection)

let test_classification_without_dtd_agrees () =
  let a = Lazy.force ctx and b = Lazy.force ctx_nodtd in
  let paths db =
    let kinds = Pipeline.kinds db in
    let guide = Pipeline.dataguide db in
    List.map
      (fun p -> Dataguide.path_string guide p, Node_kind.kind_of_path kinds p)
      (Dataguide.paths guide)
    |> List.sort compare
  in
  check bool "DTD and data inference agree on this document" true
    (paths a.db = paths b.db)

(* ------------------------------------------------------------------ *)
(* Figure 1: the query result *)

let test_single_result_rooted_at_retailer () =
  let { db; result; _ } = Lazy.force ctx in
  let doc = Pipeline.document db in
  check string "rooted at retailer" "retailer" (Document.tag_name doc (Result_tree.root result))

let test_result_statistics_panel () =
  (* the "attribute: value: number of occurrences" panel of Figure 1 *)
  let { analysis; _ } = Lazy.force ctx in
  let occ e a v =
    match Feature.stats_of analysis { Feature.entity = e; attribute = a; value = v } with
    | Some s -> s.Feature.occurrences
    | None -> 0
  in
  check int "Houston: 6" 6 (occ "store" "city" "Houston");
  check int "Austin: 1" 1 (occ "store" "city" "Austin");
  check int "Man: 600" 600 (occ "clothes" "fitting" "man");
  check int "Woman: 360" 360 (occ "clothes" "fitting" "woman");
  check int "Children: 40" 40 (occ "clothes" "fitting" "children");
  check int "Casual: 700" 700 (occ "clothes" "situation" "casual");
  check int "Formal: 300" 300 (occ "clothes" "situation" "formal");
  check int "Outwear: 220" 220 (occ "clothes" "category" "outwear");
  check int "Suit: 120" 120 (occ "clothes" "category" "suit");
  check int "Skirt: 80" 80 (occ "clothes" "category" "skirt");
  check int "Sweaters: 70" 70 (occ "clothes" "category" "sweaters")

let test_result_domain_sizes () =
  let { analysis; _ } = Lazy.force ctx in
  let dom e a v =
    (Option.get (Feature.stats_of analysis { Feature.entity = e; attribute = a; value = v }))
      .Feature.domain_size
  in
  check int "D(store,city) = 5" 5 (dom "store" "city" "Houston");
  check int "D(clothes,fitting) = 3" 3 (dom "clothes" "fitting" "man");
  check int "D(clothes,situation) = 2" 2 (dom "clothes" "situation" "casual");
  check int "D(clothes,category) = 11" 11 (dom "clothes" "category" "outwear");
  check int "D(store,state) = 1" 1 (dom "store" "state" "Texas")

let test_result_type_totals () =
  let { analysis; _ } = Lazy.force ctx in
  let total e a v =
    (Option.get (Feature.stats_of analysis { Feature.entity = e; attribute = a; value = v }))
      .Feature.type_total
  in
  check int "N(store,city) = 10" 10 (total "store" "city" "Houston");
  check int "N(clothes,fitting) = 1000" 1000 (total "clothes" "fitting" "man");
  check int "N(clothes,situation) = 1000" 1000 (total "clothes" "situation" "casual");
  check int "N(clothes,category) = 1070" 1070 (total "clothes" "category" "outwear")

(* ------------------------------------------------------------------ *)
(* §2.3: dominance scores *)

let score ctx_ e a v =
  (Option.get (Feature.stats_of ctx_.analysis { Feature.entity = e; attribute = a; value = v }))
    .Feature.score

let test_dominance_scores () =
  let c = Lazy.force ctx in
  (* "DS(Houston) = 6/(10/5) = 3.0. Similarly, the dominance scores of man,
     woman, casual, outwear and suit are 1.8, 1.1, 1.4, 2.2 and 1.2" *)
  Alcotest.check (Alcotest.float 1e-9) "Houston 3.0" 3.0 (score c "store" "city" "Houston");
  Alcotest.check (Alcotest.float 1e-9) "man 1.8" 1.8 (score c "clothes" "fitting" "man");
  Alcotest.check (Alcotest.float 0.05) "woman ~1.1" 1.08
    (score c "clothes" "fitting" "woman");
  Alcotest.check (Alcotest.float 1e-9) "casual 1.4" 1.4
    (score c "clothes" "situation" "casual");
  Alcotest.check (Alcotest.float 0.05) "outwear ~2.2" 2.26
    (score c "clothes" "category" "outwear");
  Alcotest.check (Alcotest.float 0.05) "suit ~1.2" 1.23
    (score c "clothes" "category" "suit")

let test_non_dominant_features () =
  let c = Lazy.force ctx in
  (* children (0.12), formal (0.6), skirt, sweaters must NOT be dominant *)
  let dominated e a v =
    Feature.is_dominant
      (Option.get
         (Feature.stats_of c.analysis { Feature.entity = e; attribute = a; value = v }))
  in
  check bool "children not dominant" false (dominated "clothes" "fitting" "children");
  check bool "formal not dominant" false (dominated "clothes" "situation" "formal");
  check bool "skirt not dominant" false (dominated "clothes" "category" "skirt");
  check bool "sweaters not dominant" false (dominated "clothes" "category" "sweaters");
  (* the paper's exception: domain size 1 is trivially dominant *)
  check bool "Texas trivially dominant" true (dominated "store" "state" "Texas")

(* ------------------------------------------------------------------ *)
(* §2.2: return entity and result key *)

let test_return_entity_is_retailer () =
  let { db; result; query; _ } = Lazy.force ctx in
  let kinds = Pipeline.kinds db in
  let doc = Pipeline.document db in
  let returns = Return_entity.return_entities kinds result query in
  check bool "non-empty" true (returns <> []);
  List.iter
    (fun e -> check string "every return entity is a retailer" "retailer" (Document.tag_name doc e))
    returns

let test_result_key_brook_brothers () =
  let { db; result; query; _ } = Lazy.force ctx in
  match Result_key.key_of_result (Pipeline.keys db) (Pipeline.kinds db) result query with
  | Some key -> check string "key" "Brook Brothers" key.Result_key.value
  | None -> Alcotest.fail "expected the result key"

(* ------------------------------------------------------------------ *)
(* Figure 3: the IList *)

let test_ilist_matches_figure_3 () =
  let { db; result; query; _ } = Lazy.force ctx in
  let il = Pipeline.ilist_of db result query in
  let displays = List.map (fun (e : Ilist.entry) -> Ilist.display e.Ilist.item) (Ilist.entries il) in
  check (Alcotest.list string) "IList = Fig. 3 verbatim" Paper.expected_ilist displays

let test_ilist_same_without_dtd () =
  let c = Lazy.force ctx_nodtd in
  let il = Pipeline.ilist_of c.db c.result c.query in
  let displays = List.map (fun (e : Ilist.entry) -> Ilist.display e.Ilist.item) (Ilist.entries il) in
  check (Alcotest.list string) "IList without DTD" Paper.expected_ilist displays

(* ------------------------------------------------------------------ *)
(* Figure 2 / §2.4: the snippet *)

let test_snippet_of_figure_2 () =
  (* Figure 2's hand-drawn snippet covers all 12 IList items in 13 edges —
     that is an optimal packing (suit/man share one clothes, casual/woman/
     outwear share another). The greedy selector is within one edge of it:
     11/12 items at bound 13, all 12 at bound 14. *)
  let { db; result; query; _ } = Lazy.force ctx in
  let il = Pipeline.ilist_of db result query in
  let sel13 = Selector.greedy ~bound:13 result il in
  check int "11 items at the optimal bound" 11 (Selector.covered_count sel13);
  let sel14 = Selector.greedy ~bound:14 result il in
  check int "all 12 items one edge later" 12 (Selector.covered_count sel14);
  check bool "within 14 edges" true (Snippet_tree.edge_count sel14.Selector.snippet <= 14)

let test_snippet_structure () =
  let { db; result; query; _ } = Lazy.force ctx in
  let il = Pipeline.ilist_of db result query in
  let sel = Selector.greedy ~bound:14 result il in
  let doc = Pipeline.document db in
  let tags =
    Snippet_tree.nodes sel.Selector.snippet |> List.map (Document.tag_name doc)
  in
  (* the snippet shows the retailer, its name and product, at least one
     store with city Houston, and clothes with the dominant features *)
  List.iter
    (fun t -> check bool (Printf.sprintf "snippet has %s" t) true (List.mem t tags))
    [ "retailer"; "name"; "product"; "store"; "city"; "merchandises"; "clothes";
      "category"; "fitting"; "situation" ]

let test_snippet_small_bounds_degrade_gracefully () =
  let { db; result; query; _ } = Lazy.force ctx in
  let il = Pipeline.ilist_of db result query in
  let prev = ref (-1) in
  List.iter
    (fun bound ->
      let sel = Selector.greedy ~bound result il in
      let covered = Selector.covered_count sel in
      check bool "bound respected" true (Snippet_tree.edge_count sel.Selector.snippet <= bound);
      check bool "coverage monotone in bound" true (covered >= !prev);
      prev := covered)
    [ 0; 2; 4; 6; 8; 10; 13; 14 ]

let test_choosing_close_instances () =
  (* §2.4: "Choosing outwear3 in Figure 1 results in a smaller tree with
     Houston than outwear4" — i.e. instance selection shares paths. With
     bound 13 all items fit, which is only possible when instances share
     entities; verify total edges < sum of standalone path costs. *)
  let { db; result; query; _ } = Lazy.force ctx in
  let il = Pipeline.ilist_of db result query in
  let sel = Selector.greedy ~bound:14 result il in
  let standalone_cost =
    List.fold_left
      (fun acc (c : Selector.covered) ->
        let fresh = Snippet_tree.create result in
        acc + Snippet_tree.cost_of fresh c.Selector.instance)
      0 sel.Selector.covered
  in
  check bool "sharing beats standalone" true
    (Snippet_tree.edge_count sel.Selector.snippet < standalone_cost)

(* ------------------------------------------------------------------ *)
(* Keys mined from the data (§2.2 "after mining the keys of entities") *)

let test_mined_keys () =
  let { db; _ } = Lazy.force ctx in
  let kinds = Pipeline.kinds db in
  let keys = Pipeline.keys db in
  let guide = Pipeline.dataguide db in
  let key_attr entity_path =
    Extract_store.Key_miner.key_path keys (Option.get (Dataguide.find_path guide entity_path))
    |> Option.map (Dataguide.path_tag_name guide)
  in
  ignore kinds;
  check bool "retailer key = name" true (key_attr [ "retailers"; "retailer" ] = Some "name");
  check bool "store key = name" true
    (key_attr [ "retailers"; "retailer"; "store" ] = Some "name");
  check bool "clothes has no key" true
    (key_attr [ "retailers"; "retailer"; "store"; "merchandises"; "clothes" ] = None)

(* ------------------------------------------------------------------ *)
(* Fig. 5 demo query: "store texas" with bound 6 *)

let test_store_texas_demo () =
  let { db; _ } = Lazy.force ctx in
  let results = Pipeline.run ~bound:6 db "store texas" in
  check int "ten Texas stores" 10 (List.length results);
  List.iter
    (fun (r : Pipeline.snippet_result) ->
      check bool "bound 6" true (Snippet_tree.edge_count r.Pipeline.selection.Selector.snippet <= 6);
      let doc = Pipeline.document db in
      check string "rooted at store" "store"
        (Document.tag_name doc (Result_tree.root r.Pipeline.result)))
    results;
  (* snippets are distinguishable: every store snippet shows its key (the
     store name), so the rendered snippets are pairwise distinct *)
  let rendered =
    List.map (fun (r : Pipeline.snippet_result) -> Snippet_tree.render r.Pipeline.selection.snippet) results
  in
  check int "pairwise distinct" (List.length rendered)
    (List.length (List.sort_uniq compare rendered))

(* ------------------------------------------------------------------ *)
(* The explain bundle surfaces the same §2.3/§2.4 numbers end to end *)

let test_explain_bundle_matches_paper () =
  let { db; _ } = Lazy.force ctx in
  let results, bundle = Explain.run ~bound:14 db Paper.query in
  check int "one result" 1 (List.length results);
  check string "query recorded" Paper.query bundle.Explain.query;
  check int "bound recorded" 14 bundle.Explain.bound;
  check bool "request id minted" true
    (String.length bundle.Explain.request_id = 7 && bundle.Explain.request_id.[0] = 'q');
  match bundle.Explain.results with
  | [ re ] ->
    (* §2.4 at bound 14: every IList item covered, nothing skipped, every
       edge spent — the numbers test_snippet_of_figure_2 asserts on the
       selector directly *)
    check int "all 12 items covered" 12 re.Explain.covered_count;
    check int "nothing skipped" 0 re.Explain.skipped_count;
    check int "nothing uncoverable" 0 re.Explain.uncoverable_count;
    check int "14 edges spent" 14 re.Explain.edges_used;
    check int "one entry per IList item" 12 (List.length re.Explain.entries);
    List.iteri
      (fun i (e : Explain.entry) -> check int "entries in rank order" i e.Explain.rank)
      re.Explain.entries;
    (* §2.3: the dominance scores on the feature entries are the paper's *)
    let bundle_score e a v =
      match
        List.find_opt
          (fun (entry : Explain.entry) ->
            match entry.Explain.feature with
            | Some (f, _) ->
              f.Feature.entity = e && f.Feature.attribute = a && f.Feature.value = v
            | None -> false)
          re.Explain.entries
      with
      | Some { Explain.feature = Some (_, stats); _ } -> stats.Feature.score
      | _ -> Alcotest.failf "no feature entry for %s/%s/%s" e a v
    in
    Alcotest.check (Alcotest.float 1e-9) "Houston 3.0" 3.0
      (bundle_score "store" "city" "Houston");
    Alcotest.check (Alcotest.float 1e-9) "man 1.8" 1.8
      (bundle_score "clothes" "fitting" "man");
    Alcotest.check (Alcotest.float 0.05) "woman ~1.1" 1.08
      (bundle_score "clothes" "fitting" "woman");
    Alcotest.check (Alcotest.float 1e-9) "casual 1.4" 1.4
      (bundle_score "clothes" "situation" "casual");
    Alcotest.check (Alcotest.float 0.05) "outwear ~2.2" 2.26
      (bundle_score "clothes" "category" "outwear");
    Alcotest.check (Alcotest.float 0.05) "suit ~1.2" 1.23
      (bundle_score "clothes" "category" "suit")
  | res -> Alcotest.failf "expected one result explain, got %d" (List.length res)

let test_explain_bound13_skips_one () =
  let { db; _ } = Lazy.force ctx in
  let _, bundle = Explain.run ~bound:13 db Paper.query in
  match bundle.Explain.results with
  | [ re ] ->
    (* greedy covers 11 of 12 at the Fig. 2 bound; the last coverable item
       is reported skipped, not silently dropped *)
    check int "11 covered" 11 re.Explain.covered_count;
    check int "one skipped" 1 re.Explain.skipped_count;
    check bool "edge spend within the bound" true (re.Explain.edges_used <= 13);
    check bool "the skipped entry is identifiable" true
      (List.exists
         (fun (e : Explain.entry) -> e.Explain.status = Explain.Skipped)
         re.Explain.entries)
  | res -> Alcotest.failf "expected one result explain, got %d" (List.length res)

(* §2.2 fallback: when no entity or attribute name matches a keyword, the
   highest entity is the default return entity. *)
let test_return_entity_fallback_on_paper_data () =
  let { db; _ } = Lazy.force ctx in
  let kinds = Pipeline.kinds db in
  let doc = Pipeline.document db in
  (* "houston casual": both are values; nothing matches an entity or
     attribute name *)
  match Pipeline.search db "houston casual" with
  | result :: _ ->
    let q = Query.of_string "houston casual" in
    let returns = Return_entity.return_entities kinds result q in
    check bool "non-empty" true (returns <> []);
    (* the highest entity of the result is the result root's entity *)
    List.iter
      (fun e ->
        check bool "fallback return entities are highest" true
          (Node_kind.nearest_entity_ancestor kinds e = None
          || not (Extract_search.Result_tree.mem result
                    (Option.get (Node_kind.nearest_entity_ancestor kinds e)))))
      returns;
    (match Result_key.key_of_result (Pipeline.keys db) kinds result q with
    | Some key ->
      check bool "key comes from the highest entity" true
        (Document.tag_name doc key.Result_key.entity = "store"
        || Document.tag_name doc key.Result_key.entity = "retailer")
    | None -> Alcotest.fail "expected a key")
  | [] -> Alcotest.fail "expected results for houston casual"

(* attribute-name heuristic: a keyword matching an attribute name (not an
   entity name) selects that attribute's entity as the return entity *)
let test_return_entity_via_attribute_name () =
  let { db; _ } = Lazy.force ctx in
  let kinds = Pipeline.kinds db in
  let doc = Pipeline.document db in
  match Pipeline.search db "fitting casual" with
  | result :: _ ->
    let q = Query.of_string "fitting casual" in
    let returns = Return_entity.return_entities kinds result q in
    check bool "clothes are the return entities" true
      (returns <> []
      && List.for_all (fun e -> Document.tag_name doc e = "clothes") returns)
  | [] -> Alcotest.fail "expected results for fitting casual"

let suites =
  [
    ( "paper.classification",
      [
        Alcotest.test_case "entities/attributes/connections" `Quick test_classification;
        Alcotest.test_case "DTD vs data inference" `Quick test_classification_without_dtd_agrees;
      ] );
    ( "paper.figure1",
      [
        Alcotest.test_case "single retailer result" `Quick test_single_result_rooted_at_retailer;
        Alcotest.test_case "occurrence panel" `Quick test_result_statistics_panel;
        Alcotest.test_case "domain sizes" `Quick test_result_domain_sizes;
        Alcotest.test_case "type totals" `Quick test_result_type_totals;
      ] );
    ( "paper.section2_3",
      [
        Alcotest.test_case "dominance scores" `Quick test_dominance_scores;
        Alcotest.test_case "non-dominant features" `Quick test_non_dominant_features;
      ] );
    ( "paper.section2_2",
      [
        Alcotest.test_case "return entity" `Quick test_return_entity_is_retailer;
        Alcotest.test_case "result key" `Quick test_result_key_brook_brothers;
        Alcotest.test_case "mined keys" `Quick test_mined_keys;
      ] );
    ( "paper.figure3",
      [
        Alcotest.test_case "IList verbatim" `Quick test_ilist_matches_figure_3;
        Alcotest.test_case "IList without DTD" `Quick test_ilist_same_without_dtd;
      ] );
    ( "paper.figure2",
      [
        Alcotest.test_case "13-edge snippet covers all" `Quick test_snippet_of_figure_2;
        Alcotest.test_case "snippet structure" `Quick test_snippet_structure;
        Alcotest.test_case "graceful degradation" `Quick test_snippet_small_bounds_degrade_gracefully;
        Alcotest.test_case "close instances" `Quick test_choosing_close_instances;
      ] );
    ( "paper.section2_2_fallbacks",
      [
        Alcotest.test_case "highest-entity fallback" `Quick
          test_return_entity_fallback_on_paper_data;
        Alcotest.test_case "attribute-name heuristic" `Quick
          test_return_entity_via_attribute_name;
      ] );
    ( "paper.figure5",
      [ Alcotest.test_case "store texas demo" `Quick test_store_texas_demo ] );
    ( "paper.explain",
      [
        Alcotest.test_case "bundle matches the paper" `Quick test_explain_bundle_matches_paper;
        Alcotest.test_case "skipped items reported" `Quick test_explain_bound13_skips_one;
      ] );
  ]
