(* Aggregated alcotest runner: every suite from every library, plus the
   paper regression, integration tests and qcheck properties. *)

let () =
  Alcotest.run "extract"
    (Test_util.suites @ Test_xml.suites @ Test_store.suites @ Test_search.suites
   @ Test_snippet.suites @ Test_paper_example.suites @ Test_extensions.suites
   @ Test_validation.suites @ Test_streaming.suites @ Test_server.suites @ Test_edge_cases.suites @ Test_datagen.suites @ Test_hotpath.suites @ Test_check.suites @ Test_obs.suites @ Test_pool.suites @ Test_live.suites @ Test_packed.suites @ Test_shard.suites @ Test_integration.suites @ Test_properties.suites)
