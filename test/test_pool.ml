(* Multi-core serving tests: the sharded caches, HTTP/1.1 keep-alive and
   conformance of the rewritten transport, the domain-pool server's
   resilience (slowloris, vanished clients, accept-queue overflow), and
   the concurrency safety of the observability primitives the workers
   share (Reqid, Slowlog). *)

module Demo_server = Extract_server.Demo_server
module Corpus = Extract_snippet.Corpus
module Pipeline = Extract_snippet.Pipeline
module Document = Extract_store.Document
module Lru = Extract_util.Lru
module Sharded_lru = Extract_util.Sharded_lru
module Prng = Extract_util.Prng
module Reqid = Extract_obs.Reqid
module Slowlog = Extract_obs.Slowlog
module Jsonv = Extract_obs.Jsonv

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let contains_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec loop i = i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1)) in
  ln = 0 || loop 0

(* ------------------------------------------------------------------ *)
(* Sharded_lru *)

let test_sharded_basics () =
  let c = Sharded_lru.create ~shards:8 ~capacity:64 () in
  check int "eight shards at capacity 64" 8 (Sharded_lru.shards c);
  check bool "capacity at least requested" true (Sharded_lru.capacity c >= 64);
  (* eight entries never exceed any single shard's capacity, so none can
     be evicted however the keys hash *)
  for i = 0 to 7 do
    Sharded_lru.put c i (i * i)
  done;
  check int "eight entries" 8 (Sharded_lru.length c);
  for i = 0 to 7 do
    check bool "find" true (Sharded_lru.find c i = Some (i * i))
  done;
  check bool "miss" true (Sharded_lru.find c 999 = None);
  let hits, misses = Sharded_lru.stats c in
  check int "hits" 8 hits;
  check int "misses" 1 misses;
  (* overfill: length stays bounded and the eviction counter moves *)
  for i = 0 to 199 do
    Sharded_lru.put c i i
  done;
  check bool "length bounded by capacity" true
    (Sharded_lru.length c <= Sharded_lru.capacity c);
  check bool "evictions counted" true (Sharded_lru.evictions c > 0)

let test_sharded_shard_clamp () =
  (* tiny caches must not be striped into collision-evicting sievelets *)
  check int "capacity 8 -> one shard" 1 (Sharded_lru.shards (Sharded_lru.create ~capacity:8 ()));
  check int "capacity 15 -> one shard" 1
    (Sharded_lru.shards (Sharded_lru.create ~capacity:15 ()));
  check int "capacity 16 -> two shards" 2
    (Sharded_lru.shards (Sharded_lru.create ~capacity:16 ()));
  check int "explicit shards still clamped" 2
    (Sharded_lru.shards (Sharded_lru.create ~shards:16 ~capacity:16 ()));
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Sharded_lru.create: capacity must be positive") (fun () ->
      ignore (Sharded_lru.create ~capacity:0 ()));
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Sharded_lru.create: shards must be positive") (fun () ->
      ignore (Sharded_lru.create ~shards:0 ~capacity:8 ()))

let test_sharded_peek_mem_remove_clear () =
  let c = Sharded_lru.create ~capacity:32 () in
  Sharded_lru.put c "a" 1;
  check bool "peek hit" true (Sharded_lru.peek c "a" = Some 1);
  check bool "peek miss" true (Sharded_lru.peek c "b" = None);
  check bool "peek counts nothing" true (Sharded_lru.stats c = (0, 0));
  check bool "mem" true (Sharded_lru.mem c "a");
  Sharded_lru.remove c "a";
  check bool "removed" false (Sharded_lru.mem c "a");
  Sharded_lru.put c "x" 9;
  ignore (Sharded_lru.find c "x");
  Sharded_lru.clear c;
  check int "cleared" 0 (Sharded_lru.length c);
  check bool "stats reset" true (Sharded_lru.stats c = (0, 0))

let test_sharded_shard_stats_sum () =
  let c = Sharded_lru.create ~shards:4 ~capacity:64 () in
  for i = 0 to 99 do
    Sharded_lru.put c i i
  done;
  for i = 0 to 29 do
    ignore (Sharded_lru.find c i)
  done;
  ignore (Sharded_lru.find c 1000);
  let stats = Sharded_lru.shard_stats c in
  check int "one entry per shard" (Sharded_lru.shards c) (Array.length stats);
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
  let hits, misses = Sharded_lru.stats c in
  check int "shard hits sum to total" hits (sum (fun s -> s.Sharded_lru.hits));
  check int "shard misses sum to total" misses (sum (fun s -> s.Sharded_lru.misses));
  check int "shard entries sum to length" (Sharded_lru.length c)
    (sum (fun s -> s.Sharded_lru.entries));
  check int "shard evictions sum to total" (Sharded_lru.evictions c)
    (sum (fun s -> s.Sharded_lru.evictions));
  check int "shard capacities sum to capacity" (Sharded_lru.capacity c)
    (sum (fun s -> s.Sharded_lru.capacity))

let test_sharded_domain_hammer () =
  (* four domains over one cache: no crash, no torn values, counters add
     up — every value ever stored for key k is k * 7, so any find must
     observe exactly that or nothing *)
  let c = Sharded_lru.create ~shards:8 ~capacity:128 () in
  let iterations = 20_000 in
  let worker seed () =
    let rng = Prng.create seed in
    let finds = ref 0 in
    for _ = 1 to iterations do
      let k = Prng.int rng 200 in
      if Prng.bool rng then Sharded_lru.put c k (k * 7)
      else begin
        incr finds;
        match Sharded_lru.find c k with
        | None -> ()
        | Some v -> if v <> k * 7 then Alcotest.failf "torn value for key %d: %d" k v
      end
    done;
    !finds
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker (100 + i))) in
  let total_finds = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  let hits, misses = Sharded_lru.stats c in
  check int "every find counted exactly once" total_finds (hits + misses);
  check bool "length within capacity" true
    (Sharded_lru.length c <= Sharded_lru.capacity c)

(* ------------------------------------------------------------------ *)
(* Lru.peek *)

let test_lru_peek_does_not_promote () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  (* a peek must not refresh "a": inserting "c" evicts it anyway *)
  check bool "peek sees a" true (Lru.peek c "a" = Some 1);
  check bool "peek counts nothing" true (Lru.stats c = (0, 0));
  Lru.put c "c" 3;
  check bool "a evicted despite peek" true (Lru.peek c "a" = None);
  check bool "b survived" true (Lru.peek c "b" = Some 2);
  (* contrast: a find does refresh *)
  ignore (Lru.find c "b");
  Lru.put c "d" 4;
  check bool "c evicted, b kept by find" true
    (Lru.peek c "c" = None && Lru.peek c "b" = Some 2)

(* ------------------------------------------------------------------ *)
(* Transport fixtures *)

let server () =
  let db =
    Pipeline.build (Document.of_document (Extract_datagen.Paper_example.document ()))
  in
  Demo_server.create (Corpus.of_list [ "paper", db ])

let quiet_config = { Demo_server.default_config with Demo_server.log = ignore }

let write_all fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let connect port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  sock

(* Read exactly one response off a (possibly keep-alive) connection:
   headers byte-wise to the blank line, then Content-Length body bytes. *)
let recv_response fd =
  let head = Buffer.create 256 in
  let byte = Bytes.create 1 in
  let rec read_head () =
    if Unix.read fd byte 0 1 <> 1 then Alcotest.fail "eof before end of headers";
    Buffer.add_char head (Bytes.get byte 0);
    let n = Buffer.length head in
    if n < 4 || Buffer.sub head (n - 4) 4 <> "\r\n\r\n" then read_head ()
  in
  read_head ();
  let head = Buffer.contents head in
  let content_length =
    let lower = String.lowercase_ascii head in
    let key = "content-length:" in
    match
      let rec find i =
        if i + String.length key > String.length lower then None
        else if String.sub lower i (String.length key) = key then
          Some (i + String.length key)
        else find (i + 1)
      in
      find 0
    with
    | None -> Alcotest.failf "no Content-Length in %S" head
    | Some start ->
      let stop = String.index_from lower start '\r' in
      (match int_of_string_opt (String.trim (String.sub head start (stop - start))) with
      | Some n -> n
      | None -> Alcotest.failf "bad Content-Length in %S" head)
  in
  let body = Bytes.create content_length in
  let rec fill off =
    if off < content_length then begin
      let n = Unix.read fd body off (content_length - off) in
      if n = 0 then Alcotest.fail "eof inside body";
      fill (off + n)
    end
  in
  fill 0;
  head, Bytes.to_string body

let at_eof fd =
  let byte = Bytes.create 1 in
  match Unix.read fd byte 0 1 with
  | 0 -> true
  | _ -> false
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> true

let with_pool ?(config = quiet_config) srv f =
  let listening = Demo_server.listen ~port:0 in
  let pool = Demo_server.start_pool ~config srv listening in
  Fun.protect
    ~finally:(fun () ->
      Demo_server.stop_pool pool;
      try Unix.close listening with Unix.Unix_error _ -> ())
    (fun () -> f (Demo_server.bound_port listening))

(* ------------------------------------------------------------------ *)
(* HTTP conformance: every error response names its framing *)

let test_error_responses_are_framed () =
  (* each case: provoke one error through a real socket and serve_once;
     the response must carry the status, a Content-Length and an explicit
     Connection: close — clients must never have to guess the framing of
     a failure *)
  let srv = server () in
  let config =
    { quiet_config with Demo_server.timeout_ms = 300; max_header_bytes = 256 }
  in
  let cases =
    [
      ( "empty request -> 400",
        "400",
        fun fd -> Unix.shutdown fd Unix.SHUTDOWN_SEND );
      ("junk method -> 400", "400", fun fd -> write_all fd "BREW /pot HTTP/1.1\r\n\r\n");
      ( "oversized headers -> 431",
        "431",
        fun fd ->
          write_all fd "GET / HTTP/1.1\r\n";
          write_all fd ("X-Filler: " ^ String.make 300 'x' ^ "\r\n\r\n") );
      ( "stalled request line -> 408",
        "408",
        fun fd -> write_all fd "GET /st" (* and never finish *) );
      ( "bad content-length -> 400",
        "400",
        fun fd -> write_all fd "GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n" );
    ]
  in
  List.iter
    (fun (name, status, provoke) ->
      let listening = Demo_server.listen ~port:0 in
      let port = Demo_server.bound_port listening in
      let client = connect port in
      provoke client;
      Demo_server.serve_once ~config srv listening;
      let head, _body = recv_response client in
      check bool (name ^ ": status") true (contains_substring head (" " ^ status ^ " "));
      check bool (name ^ ": explicit close") true
        (contains_substring head "Connection: close");
      check bool (name ^ ": connection closed") true (at_eof client);
      Unix.close client;
      Unix.close listening)
    cases

(* ------------------------------------------------------------------ *)
(* Keep-alive *)

let test_keepalive_two_requests () =
  let srv = server () in
  with_pool srv (fun port ->
      let fd = connect port in
      write_all fd "GET /stats?data=paper HTTP/1.1\r\nHost: x\r\n\r\n";
      let head1, body1 = recv_response fd in
      check bool "1.1 status echoed" true (contains_substring head1 "HTTP/1.1 200 OK");
      check bool "first response keeps alive" true
        (contains_substring head1 "Connection: keep-alive");
      check bool "stats body" true (contains_substring body1 "nodes");
      (* same socket, second request *)
      write_all fd "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
      let head2, body2 = recv_response fd in
      check bool "second request served on same connection" true
        (contains_substring head2 "HTTP/1.1 200 OK");
      check bool "home body" true (contains_substring body2 "eXtract");
      Unix.close fd)

let test_pipelined_requests () =
  let srv = server () in
  with_pool srv (fun port ->
      let fd = connect port in
      (* both requests in one write: the worker must frame and answer
         each in order *)
      write_all fd
        "GET /stats?data=paper HTTP/1.1\r\n\r\nGET /stats?data=paper HTTP/1.1\r\n\r\n";
      let head1, _ = recv_response fd in
      let head2, _ = recv_response fd in
      check bool "first pipelined ok" true (contains_substring head1 " 200 ");
      check bool "second pipelined ok" true (contains_substring head2 " 200 ");
      Unix.close fd)

let test_connection_close_honored () =
  let srv = server () in
  with_pool srv (fun port ->
      let fd = connect port in
      write_all fd "GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
      let head, _ = recv_response fd in
      check bool "close echoed" true (contains_substring head "Connection: close");
      check bool "server closed" true (at_eof fd);
      Unix.close fd)

let test_http10_defaults_to_close () =
  let srv = server () in
  with_pool srv (fun port ->
      let fd = connect port in
      write_all fd "GET / HTTP/1.0\r\n\r\n";
      let head, _ = recv_response fd in
      check bool "1.0 status echoed" true (contains_substring head "HTTP/1.0 200 OK");
      check bool "1.0 closes by default" true (contains_substring head "Connection: close");
      check bool "server closed" true (at_eof fd);
      Unix.close fd)

let test_http10_keepalive_token_honored () =
  let srv = server () in
  with_pool srv (fun port ->
      let fd = connect port in
      write_all fd "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
      let head, _ = recv_response fd in
      check bool "1.0 + keep-alive stays open" true
        (contains_substring head "Connection: keep-alive");
      write_all fd "GET / HTTP/1.0\r\nConnection: close\r\n\r\n";
      let head2, _ = recv_response fd in
      check bool "second served" true (contains_substring head2 " 200 ");
      Unix.close fd)

let test_max_requests_per_conn () =
  let srv = server () in
  let config = { quiet_config with Demo_server.max_requests_per_conn = 2 } in
  with_pool ~config srv (fun port ->
      let fd = connect port in
      write_all fd "GET / HTTP/1.1\r\n\r\n";
      let head1, _ = recv_response fd in
      check bool "first of two keeps alive" true
        (contains_substring head1 "Connection: keep-alive");
      write_all fd "GET / HTTP/1.1\r\n\r\n";
      let head2, _ = recv_response fd in
      check bool "request cap reached: close" true
        (contains_substring head2 "Connection: close");
      check bool "server closed at cap" true (at_eof fd);
      Unix.close fd)

let test_error_closes_keepalive_connection () =
  let srv = server () in
  with_pool srv (fun port ->
      let fd = connect port in
      write_all fd "GET /missing HTTP/1.1\r\n\r\n";
      let head, _ = recv_response fd in
      check bool "404 on 1.1" true (contains_substring head "HTTP/1.1 404");
      check bool "error closes despite 1.1" true
        (contains_substring head "Connection: close");
      check bool "server closed" true (at_eof fd);
      Unix.close fd)

(* ------------------------------------------------------------------ *)
(* Pool resilience *)

let test_pool_serves_concurrent_connections () =
  let srv = server () in
  let config = { quiet_config with Demo_server.workers = 4 } in
  with_pool ~config srv (fun port ->
      let clients = List.init 8 (fun _ -> connect port) in
      List.iter (fun fd -> write_all fd "GET /stats?data=paper HTTP/1.1\r\n\r\n") clients;
      List.iter
        (fun fd ->
          let head, _ = recv_response fd in
          check bool "every concurrent client served" true
            (contains_substring head " 200 "))
        clients;
      List.iter Unix.close clients)

let test_pool_slowloris_does_not_block_others () =
  let srv = server () in
  let config = { quiet_config with Demo_server.workers = 4; timeout_ms = 2_000 } in
  with_pool ~config srv (fun port ->
      (* one client stalls mid-request-line, pinning at most one worker *)
      let slow = connect port in
      write_all slow "GET /st";
      Unix.sleepf 0.05;
      (* the other workers keep serving while the slow one is pinned *)
      let ok = connect port in
      write_all ok "GET /stats?data=paper HTTP/1.1\r\n\r\n";
      let head, _ = recv_response ok in
      check bool "healthy client served while slowloris stalls" true
        (contains_substring head " 200 ");
      Unix.close ok;
      Unix.close slow)

let test_pool_survives_vanished_client () =
  let srv = server () in
  let config = { quiet_config with Demo_server.workers = 2 } in
  with_pool ~config srv (fun port ->
      (* a client that connects and leaves immediately must cost nothing *)
      let ghost = connect port in
      Unix.close ghost;
      Unix.sleepf 0.05;
      let ok = connect port in
      write_all ok "GET / HTTP/1.1\r\n\r\n";
      let head, _ = recv_response ok in
      check bool "served after ghost client" true (contains_substring head " 200 ");
      Unix.close ok)

let test_accept_queue_overflow_sheds_503 () =
  let srv = server () in
  let config =
    { quiet_config with Demo_server.workers = 1; queue_depth = 1; timeout_ms = 3_000 }
  in
  with_pool ~config srv (fun port ->
      (* pin the single worker with a stalled connection ... *)
      let pinned = connect port in
      write_all pinned "GET /st";
      Unix.sleepf 0.2;
      (* ... fill the 1-deep queue ... *)
      let queued = connect port in
      Unix.sleepf 0.1;
      (* ... so the next connection must be shed by the acceptor *)
      let shed = connect port in
      let head, body = recv_response shed in
      check bool "queue overflow -> 503" true (contains_substring head " 503 ");
      check bool "shed carries Retry-After" true
        (contains_substring head "Retry-After: 1");
      check bool "shed is framed" true (contains_substring head "Content-Length:");
      check bool "shed closes" true (contains_substring head "Connection: close");
      check bool "shed names the queue" true (contains_substring body "accept queue");
      Unix.close shed;
      Unix.close queued;
      Unix.close pinned)

let test_pool_deadline_sheds_search () =
  let srv = server () in
  let config =
    { quiet_config with Demo_server.workers = 2; deadline_ms = Some 0 }
  in
  with_pool ~config srv (fun port ->
      let fd = connect port in
      write_all fd "GET /search?data=paper&q=store+texas HTTP/1.1\r\n\r\n";
      let head, _ = recv_response fd in
      check bool "spent budget -> 503" true (contains_substring head " 503 ");
      check bool "503 closes" true (contains_substring head "Connection: close");
      Unix.close fd;
      (* the deadline sheds requests, not the server: home stays up *)
      let ok = connect port in
      write_all ok "GET / HTTP/1.1\r\n\r\n";
      let head2, _ = recv_response ok in
      check bool "home unaffected by deadline" true (contains_substring head2 " 200 ");
      Unix.close ok)

(* ------------------------------------------------------------------ *)
(* Health surface: /healthz liveness, /readyz readiness transitions *)

let test_health_endpoints_before_serving () =
  let srv = server () in
  let r = Demo_server.handle srv "/healthz" in
  check int "healthz is liveness: 200 even before serving" 200 r.Demo_server.status;
  let r = Demo_server.handle srv "/readyz" in
  check int "readyz 503 before any pool starts" 503 r.Demo_server.status;
  check bool "not-ready carries Retry-After" true
    (List.mem_assoc "Retry-After" r.Demo_server.headers);
  check bool "serving component blamed" true
    (contains_substring r.Demo_server.body "\"serving\": false");
  Demo_server.mark_ready srv;
  let r = Demo_server.handle srv "/readyz" in
  check int "readyz 200 once serving" 200 r.Demo_server.status;
  check bool "body reports ready" true
    (contains_substring r.Demo_server.body "\"ready\": true")

let test_readyz_reflects_queue_saturation () =
  let srv = server () in
  let config =
    { quiet_config with Demo_server.workers = 1; queue_depth = 1; timeout_ms = 3_000 }
  in
  with_pool ~config srv (fun port ->
      (* once the pool accepts, readiness is green over the wire *)
      let fd = connect port in
      write_all fd "GET /readyz HTTP/1.1\r\n\r\n";
      let head, body = recv_response fd in
      check bool "readyz 200 once the pool accepts" true (contains_substring head " 200 ");
      check bool "wire body reports ready" true
        (contains_substring body "\"ready\": true");
      Unix.close fd;
      (* pin the single worker and fill the 1-deep queue: the readiness
         probe must go red before the acceptor even starts shedding *)
      let pinned = connect port in
      write_all pinned "GET /st";
      Unix.sleepf 0.2;
      let queued = connect port in
      Unix.sleepf 0.1;
      let r = Demo_server.handle srv "/readyz" in
      check int "queue at shed threshold -> 503" 503 r.Demo_server.status;
      check bool "accept_queue component blamed" true
        (contains_substring r.Demo_server.body "\"accept_queue\": false");
      Unix.close queued;
      Unix.close pinned)

(* Per-request sampling: a sampled request records an http.request root
   carrying a rid and the synthetic queue.wait child measuring how long
   the connection sat in the accept queue. *)
let test_request_span_sampled_with_queue_wait () =
  let module Trace = Extract_obs.Trace in
  let srv = server () in
  Trace.clear ();
  Trace.set_sample_interval 1;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_sample_interval 0;
      Trace.clear ())
    (fun () ->
      let r = Demo_server.handle_request ~queue_wait:0.002 srv "/stats?data=paper" in
      check int "sampled request served" 200 r.Demo_server.status;
      match Trace.finished () with
      | [ root ] ->
        check Alcotest.string "root is the request span" "http.request"
          root.Extract_obs.Trace.name;
        check bool "request span carries a rid" true (root.Extract_obs.Trace.rid <> None);
        (match
           List.filter
             (fun s -> s.Extract_obs.Trace.name = "queue.wait")
             root.Extract_obs.Trace.children
         with
        | [ w ] ->
          check bool "queue wait measured" true (w.Extract_obs.Trace.duration > 0.)
        | l -> Alcotest.failf "expected one queue.wait child, got %d" (List.length l))
      | roots -> Alcotest.failf "expected one sampled root, got %d" (List.length roots))

(* ------------------------------------------------------------------ *)
(* Reqid + Slowlog under domains *)

let test_reqid_slowlog_concurrent () =
  (* four domains allocate ids and record slowlog entries concurrently:
     ids must stay unique, entries must come out intact (rid = query
     proves no torn entry) and none may be lost *)
  let per_domain = 200 in
  Slowlog.reset ();
  Slowlog.configure ~slowest:8 ~ring:1024 ();
  let worker d () =
    Array.init per_domain (fun i ->
        Reqid.ensure (fun rid ->
            Slowlog.record
              {
                Slowlog.rid;
                query = rid;
                seconds = float_of_int (d + i) /. 1e6;
                degraded = 1 (* degraded entries are always ring-retained *);
                faulted = false;
                digest = Jsonv.Null;
              };
            rid))
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  let rids = List.concat_map (fun d -> Array.to_list (Domain.join d)) domains in
  let unique = List.sort_uniq String.compare rids in
  check int "every rid unique across domains" (4 * per_domain) (List.length unique);
  let _slowest, ring = Slowlog.snapshot () in
  check int "no entry lost" (4 * per_domain) (List.length ring);
  List.iter
    (fun (e : Slowlog.entry) ->
      if e.Slowlog.rid <> e.Slowlog.query then
        Alcotest.failf "torn slowlog entry: rid %S query %S" e.Slowlog.rid e.Slowlog.query;
      if not (List.mem e.Slowlog.rid unique) then
        Alcotest.failf "foreign rid in ring: %S" e.Slowlog.rid)
    ring;
  Slowlog.configure ~slowest:16 ~ring:64 ();
  Slowlog.reset ()

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "pool.sharded_lru",
      [
        Alcotest.test_case "basics" `Quick test_sharded_basics;
        Alcotest.test_case "shard clamp" `Quick test_sharded_shard_clamp;
        Alcotest.test_case "peek mem remove clear" `Quick test_sharded_peek_mem_remove_clear;
        Alcotest.test_case "shard stats sum" `Quick test_sharded_shard_stats_sum;
        Alcotest.test_case "four-domain hammer" `Quick test_sharded_domain_hammer;
      ] );
    ( "pool.lru_peek",
      [ Alcotest.test_case "peek does not promote" `Quick test_lru_peek_does_not_promote ] );
    ( "pool.conformance",
      [ Alcotest.test_case "errors framed and closed" `Quick test_error_responses_are_framed ] );
    ( "pool.keepalive",
      [
        Alcotest.test_case "two requests, one connection" `Quick test_keepalive_two_requests;
        Alcotest.test_case "pipelined pair" `Quick test_pipelined_requests;
        Alcotest.test_case "connection: close honored" `Quick test_connection_close_honored;
        Alcotest.test_case "http/1.0 closes by default" `Quick test_http10_defaults_to_close;
        Alcotest.test_case "http/1.0 keep-alive token" `Quick
          test_http10_keepalive_token_honored;
        Alcotest.test_case "request cap closes" `Quick test_max_requests_per_conn;
        Alcotest.test_case "errors close keep-alive" `Quick
          test_error_closes_keepalive_connection;
      ] );
    ( "pool.resilience",
      [
        Alcotest.test_case "concurrent connections" `Quick
          test_pool_serves_concurrent_connections;
        Alcotest.test_case "slowloris isolation" `Quick
          test_pool_slowloris_does_not_block_others;
        Alcotest.test_case "vanished client" `Quick test_pool_survives_vanished_client;
        Alcotest.test_case "queue overflow sheds 503" `Quick
          test_accept_queue_overflow_sheds_503;
        Alcotest.test_case "deadline sheds search" `Quick test_pool_deadline_sheds_search;
      ] );
    ( "pool.health",
      [
        Alcotest.test_case "readiness latch transitions" `Quick
          test_health_endpoints_before_serving;
        Alcotest.test_case "queue saturation turns readyz red" `Quick
          test_readyz_reflects_queue_saturation;
        Alcotest.test_case "sampled request span + queue wait" `Quick
          test_request_span_sampled_with_queue_wait;
      ] );
    ( "pool.obs_concurrency",
      [ Alcotest.test_case "reqid + slowlog, four domains" `Quick test_reqid_slowlog_concurrent ] );
  ]
