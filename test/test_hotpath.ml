(* Tests for the query hot-path overhaul: the shared per-query evaluation
   context, limit pushdown, memoized feature analysis, the query-level
   snippet cache and the completion index. *)

module Document = Extract_store.Document
module Inverted_index = Extract_store.Inverted_index
module Node_kind = Extract_store.Node_kind
module Engine = Extract_search.Engine
module Eval_ctx = Extract_search.Eval_ctx
module Query = Extract_search.Query
module Result_tree = Extract_search.Result_tree
module Pipeline = Extract_snippet.Pipeline
module Feature = Extract_snippet.Feature
module Selector = Extract_snippet.Selector
module Snippet_tree = Extract_snippet.Snippet_tree
module Snippet_cache = Extract_snippet.Snippet_cache

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let retail_db =
  lazy
    (Pipeline.build
       (Document.of_document (Extract_datagen.Retail.generate Extract_datagen.Retail.default)))

let render (r : Pipeline.snippet_result) =
  Snippet_tree.render r.Pipeline.selection.Selector.snippet

(* ------------------------------------------------------------------ *)
(* Evaluation context *)

let test_ctx_shares_posting_arrays () =
  let db = Lazy.force retail_db in
  let idx = Pipeline.index db in
  let q = Query.of_string "apparel retailer" in
  let ctx = Eval_ctx.make idx q in
  (* resolve-once: the context hands back the index's own arrays *)
  List.iter
    (fun kw -> check bool ("shared " ^ kw) true (Eval_ctx.postings ctx kw == Inverted_index.lookup idx kw))
    (Query.keywords q);
  check int "one list per keyword" (Query.size q) (List.length (Eval_ctx.lists ctx))

let test_run_ctx_equals_run () =
  let db = Lazy.force retail_db in
  let idx = Pipeline.index db in
  let kinds = Pipeline.kinds db in
  let q = Query.of_string "apparel store" in
  let fingerprint r = Result_tree.root r, Array.to_list (Result_tree.members r) in
  List.iter
    (fun semantics ->
      let direct = Engine.run ~semantics idx kinds q in
      let via_ctx = Engine.run_ctx ~semantics (Eval_ctx.make idx q) kinds in
      check bool
        (Engine.string_of_semantics semantics)
        true
        (List.map fingerprint direct = List.map fingerprint via_ctx))
    Engine.all_semantics

(* ------------------------------------------------------------------ *)
(* Limit pushdown *)

let test_limit_is_prefix_of_unlimited () =
  let db = Lazy.force retail_db in
  let idx = Pipeline.index db in
  let kinds = Pipeline.kinds db in
  let q = Query.of_string "apparel store" in
  let fingerprint r = Result_tree.root r, Array.to_list (Result_tree.members r) in
  List.iter
    (fun semantics ->
      let all = Engine.run ~semantics idx kinds q in
      List.iter
        (fun k ->
          let limited = Engine.run ~semantics ~limit:k idx kinds q in
          let expected = List.filteri (fun i _ -> i < k) all in
          check bool
            (Printf.sprintf "%s limit %d" (Engine.string_of_semantics semantics) k)
            true
            (List.map fingerprint limited = List.map fingerprint expected))
        [ 0; 1; 3; 1000 ])
    Engine.all_semantics

let test_parallel_equals_run_with_limit () =
  let db = Lazy.force retail_db in
  let q = "apparel retailer" in
  let seq = List.map render (Pipeline.run ~bound:8 ~limit:5 db q) in
  let par = List.map render (Pipeline.run_parallel ~bound:8 ~limit:5 ~domains:3 db q) in
  check bool "parallel = sequential under limit" true (par = seq)

(* ------------------------------------------------------------------ *)
(* Feature analysis memoization *)

let test_differentiated_analyzes_once_per_result () =
  let db = Lazy.force retail_db in
  let q = "apparel store" in
  let results = Pipeline.search db q in
  check bool "query has several results" true (List.length results > 1);
  let before = Feature.analyze_calls () in
  let out = Pipeline.run_differentiated ~bound:8 db q in
  let after = Feature.analyze_calls () in
  check int "one analysis per result" (List.length results) (after - before);
  check int "all results snippeted" (List.length results) (List.length out)

(* ------------------------------------------------------------------ *)
(* Snippet cache *)

let test_cache_hit_on_identical_query () =
  let db = Lazy.force retail_db in
  let cache = Snippet_cache.create ~capacity:8 () in
  let first = Snippet_cache.run ~bound:8 cache db "apparel retailer" in
  check bool "miss first" true (Snippet_cache.stats cache = (0, 1));
  let second = Snippet_cache.run ~bound:8 cache db "apparel retailer" in
  check bool "hit second" true (Snippet_cache.stats cache = (1, 1));
  check bool "cached value shared" true (first == second);
  check int "one entry" 1 (Snippet_cache.length cache);
  check bool "hit rate 0.5" true (abs_float (Snippet_cache.hit_rate cache -. 0.5) < 1e-9)

let test_cache_normalizes_queries () =
  let db = Lazy.force retail_db in
  let cache = Snippet_cache.create ~capacity:8 () in
  let a = Snippet_cache.run ~bound:8 cache db "Apparel,   RETAILER" in
  let b = Snippet_cache.run ~bound:8 cache db "apparel retailer" in
  check bool "normalized queries share the entry" true (a == b);
  check bool "one miss one hit" true (Snippet_cache.stats cache = (1, 1))

let test_cache_key_distinguishes_parameters () =
  let db = Lazy.force retail_db in
  let other = Pipeline.of_xml_string "<shop><apparel>retailer</apparel></shop>" in
  let cache = Snippet_cache.create ~capacity:8 () in
  let q = "apparel retailer" in
  ignore (Snippet_cache.run ~bound:8 cache db q);
  ignore (Snippet_cache.run ~bound:8 cache other q);   (* different database *)
  ignore (Snippet_cache.run ~bound:4 cache db q);      (* different bound *)
  ignore (Snippet_cache.run ~bound:8 ~limit:1 cache db q); (* different limit *)
  ignore (Snippet_cache.run ~semantics:Engine.Slca ~bound:8 cache db q);
  check bool "five distinct keys, all misses" true (Snippet_cache.stats cache = (0, 5));
  check int "five entries" 5 (Snippet_cache.length cache)

let test_cache_clear_resets () =
  let db = Lazy.force retail_db in
  let cache = Snippet_cache.create ~capacity:8 () in
  ignore (Snippet_cache.run cache db "apparel");
  ignore (Snippet_cache.run cache db "apparel");
  Snippet_cache.clear cache;
  check bool "stats reset" true (Snippet_cache.stats cache = (0, 0));
  check int "empty" 0 (Snippet_cache.length cache);
  ignore (Snippet_cache.run cache db "apparel");
  check bool "miss after clear" true (Snippet_cache.stats cache = (0, 1))

let test_cache_matches_pipeline_run () =
  let db = Lazy.force retail_db in
  let cache = Snippet_cache.create ()  in
  let q = "jeans store" in
  let cached = List.map render (Snippet_cache.run ~bound:8 cache db q) in
  let direct = List.map render (Pipeline.run ~bound:8 db q) in
  check bool "cached run = direct run" true (cached = direct)

(* ------------------------------------------------------------------ *)
(* Completion index *)

let test_complete_equals_naive_scan () =
  let db = Lazy.force retail_db in
  let idx = Pipeline.index db in
  let naive ?(limit = 10) prefix =
    let prefix = Extract_store.Tokenizer.normalize prefix in
    Inverted_index.vocabulary idx
    |> List.filter (fun tok ->
           String.length tok >= String.length prefix
           && String.sub tok 0 (String.length prefix) = prefix)
    |> List.map (fun tok -> tok, Array.length (Inverted_index.lookup idx tok))
    |> List.sort (fun (ta, ca) (tb, cb) -> if ca <> cb then compare cb ca else compare ta tb)
    |> List.filteri (fun i _ -> i < limit)
  in
  List.iter
    (fun prefix ->
      check bool ("prefix " ^ prefix) true
        (Inverted_index.complete idx prefix = naive prefix))
    [ "s"; "st"; "store"; "a"; "re"; "z"; "nosuch"; "STORE" ];
  check bool "limit respected" true
    (Inverted_index.complete idx ~limit:2 "s" = naive ~limit:2 "s")

let suites =
  [
    ( "hotpath.eval_ctx",
      [
        Alcotest.test_case "posting arrays shared" `Quick test_ctx_shares_posting_arrays;
        Alcotest.test_case "run_ctx = run" `Quick test_run_ctx_equals_run;
      ] );
    ( "hotpath.limit",
      [
        Alcotest.test_case "limit = prefix of unlimited" `Quick test_limit_is_prefix_of_unlimited;
        Alcotest.test_case "parallel = sequential" `Quick test_parallel_equals_run_with_limit;
      ] );
    ( "hotpath.analysis",
      [
        Alcotest.test_case "analyze once per result" `Quick
          test_differentiated_analyzes_once_per_result;
      ] );
    ( "hotpath.cache",
      [
        Alcotest.test_case "hit on identical query" `Quick test_cache_hit_on_identical_query;
        Alcotest.test_case "query normalization" `Quick test_cache_normalizes_queries;
        Alcotest.test_case "key parameters" `Quick test_cache_key_distinguishes_parameters;
        Alcotest.test_case "clear resets" `Quick test_cache_clear_resets;
        Alcotest.test_case "cached = direct" `Quick test_cache_matches_pipeline_run;
      ] );
    ( "hotpath.complete",
      [
        Alcotest.test_case "complete = naive scan" `Quick test_complete_equals_naive_scan;
      ] );
  ]
