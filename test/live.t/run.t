The crash-safe live store, end to end: journalled online updates,
atomic snapshot compaction, kill-9 recovery and fsck.

Two small documents:

  $ cat > a.xml <<EOF
  > <store><city>Houston</city><name>Soccer West</name></store>
  > EOF
  $ cat > b.xml <<EOF
  > <store><city>Dallas</city><name>Galleria</name></store>
  > EOF

The first add creates the store directory; every update is journalled
and fsync'd before it is acknowledged:

  $ extract add shop a.xml
  added a.xml to shop (1 member(s))
  $ extract add shop b.xml
  added b.xml to shop (2 member(s))
  $ extract live shop
  generation 0, 2 member(s), 2 journalled update(s) since last compact
    a.xml
    b.xml

Search and snippets work across members, each hit naming its source
document:

  $ extract search shop soccer
  1 hit(s)
   1. [a.xml] <name> (2 nodes)  score=2.964
  $ extract snippet shop galleria
  1 hit(s) for "galleria", bound 10 edges
  
  --- hit 1 [b.xml] score=2.964 --------------------------
  name "Galleria"
  (1/1 IList items, 0 edges)
  

A bad member name is rejected before it can reach the journal:

  $ extract add shop a.xml --name "evil/name"
  error: Live: document name contains / or NUL
  [1]

Compaction folds the journal into a fresh snapshot generation:

  $ extract compact shop
  compacted shop to generation 1 (2 member(s))
  $ extract live shop
  generation 1, 2 member(s), 0 journalled update(s) since last compact
    a.xml
    b.xml

Replacing a member shadows the snapshotted copy:

  $ cat > a2.xml <<EOF
  > <store><city>Paris</city><name>Etoile</name></store>
  > EOF
  $ extract add shop a2.xml --name a.xml
  added a.xml to shop (2 member(s))
  $ extract search shop etoile
  1 hit(s)
   1. [a.xml] <name> (2 nodes)  score=2.964

A crash mid-append (the injected torn write ends the process with the
kill -9 exit code) leaves a torn journal tail:

  $ cat > c.xml <<EOF
  > <store><city>Austin</city><name>Riverside</name></store>
  > EOF
  $ EXTRACT_FAULTS="journal.torn:once" extract add shop c.xml
  [137]

fsck reports the torn tail as a benign note, not damage:

  $ extract check shop
  note: journal: torn tail at byte 111 (torn record payload (22 of 65 bytes)); truncated on next writable open
  note: recovery: journal has a torn tail at byte 111 (torn record payload (22 of 65 bytes))
  ok: live store shop is consistent (benign crash leftovers pending repair)

The next writable open truncates the torn tail and the interrupted add
simply never happened; the store accepts new updates:

  $ extract add shop c.xml
  warning: journal has a torn tail at byte 111 (torn record payload (22 of 65 bytes)); truncating
  added c.xml to shop (3 member(s))
  $ extract remove shop b.xml
  removed b.xml from shop
  $ extract live shop
  generation 1, 2 member(s), 3 journalled update(s) since last compact
    a.xml
    c.xml
  $ extract check shop
  ok: live store shop is consistent
