(* Tests for the extension modules: snippet configuration and goal
   ablation, query-biased feature ordering, cross-result differentiation,
   the XRank-style ranker, XSearch interconnection semantics, binary
   persistence, the XPath-lite selector and the HTML view. *)

module Document = Extract_store.Document
module Node_kind = Extract_store.Node_kind
module Key_miner = Extract_store.Key_miner
module Inverted_index = Extract_store.Inverted_index
module Persist = Extract_store.Persist
module Codec = Extract_store.Codec
module Path_query = Extract_store.Path_query
module Query = Extract_search.Query
module Engine = Extract_search.Engine
module Ranker = Extract_search.Ranker
module Xsearch = Extract_search.Xsearch
module Result_tree = Extract_search.Result_tree
open Extract_snippet

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let contains_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec loop i = i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1)) in
  ln = 0 || loop 0

let league =
  "<league>\
   <team><name>Sharks</name>\
   <player><pname>Ann</pname><pos>guard</pos></player>\
   <player><pname>Bo</pname><pos>guard</pos></player>\
   <player><pname>Cy</pname><pos>center</pos></player></team>\
   <team><name>Owls</name>\
   <player><pname>Di</pname><pos>wing</pos></player></team>\
   </league>"

let db_of src = Pipeline.of_xml_string src

(* ------------------------------------------------------------------ *)
(* Config and goal ablation *)

let items_of il = List.map (fun (e : Ilist.entry) -> e.Ilist.item) (Ilist.entries il)

let test_config_keywords_only () =
  let db = db_of league in
  let r = List.hd (Pipeline.search db "guard team") in
  let il =
    Pipeline.ilist_of ~config:Config.keywords_only db r (Query.of_string "guard team")
  in
  check bool "only keywords" true
    (List.for_all
       (function
         | Ilist.Keyword _ -> true
         | Ilist.Entity_name _ | Ilist.Result_key _ | Ilist.Dominant_feature _ -> false)
       (items_of il))

let test_config_goals_independent () =
  let db = db_of league in
  (* "cy team": the dominant feature guard survives display dedup (the
     query "guard team" would absorb it into the keyword item) *)
  let r = List.hd (Pipeline.search db "cy team") in
  let q = Query.of_string "cy team" in
  let has_kind pred il = List.exists pred (items_of il) in
  let is_entity = function Ilist.Entity_name _ -> true | _ -> false in
  let is_key = function Ilist.Result_key _ -> true | _ -> false in
  let is_feature = function Ilist.Dominant_feature _ -> true | _ -> false in
  let without_entities =
    Pipeline.ilist_of
      ~config:{ Config.default with Config.include_entity_names = false }
      db r q
  in
  check bool "no entity names" false (has_kind is_entity without_entities);
  check bool "key still there" true (has_kind is_key without_entities);
  check bool "features still there" true (has_kind is_feature without_entities);
  let without_key =
    Pipeline.ilist_of ~config:{ Config.default with Config.include_result_key = false } db r q
  in
  check bool "no key" false (has_kind is_key without_key);
  let without_features =
    Pipeline.ilist_of ~config:{ Config.default with Config.include_features = false } db r q
  in
  check bool "no features" false (has_kind is_feature without_features)

let test_config_max_features () =
  (* the paper example has six surviving dominant features (Fig. 3);
     capping at two keeps the top two by score: Houston, outwear *)
  let db =
    Pipeline.build
      (Document.of_document (Extract_datagen.Paper_example.document ()))
  in
  let q = Query.of_string Extract_datagen.Paper_example.query in
  let r = List.hd (Pipeline.search db Extract_datagen.Paper_example.query) in
  let il =
    Pipeline.ilist_of ~config:{ Config.default with Config.max_features = Some 2 } db r q
  in
  let feature_values =
    List.filter_map
      (function
        | Ilist.Dominant_feature (f, _) -> Some f.Feature.value
        | _ -> None)
      (items_of il)
  in
  check (Alcotest.list string) "top two by dominance" [ "Houston"; "outwear" ] feature_values

let test_config_frequency_order () =
  (* By_frequency must order the feature block by raw occurrences. *)
  let db = db_of league in
  let r = List.hd (Pipeline.search db "team") in
  let q = Query.of_string "team" in
  let il =
    Pipeline.ilist_of
      ~config:{ Config.default with Config.feature_order = Config.By_frequency }
      db r q
  in
  let occs =
    List.filter_map
      (function
        | Ilist.Dominant_feature (_, s) -> Some s.Feature.occurrences
        | _ -> None)
      (items_of il)
  in
  check bool "occurrences non-increasing" true
    (List.sort (fun a b -> compare b a) occs = occs)

(* ------------------------------------------------------------------ *)
(* Query bias *)

let test_query_bias_hot_entities () =
  let db = db_of league in
  let r = List.hd (Pipeline.search db "center") in
  let bias =
    Query_bias.make (Pipeline.kinds db) (Pipeline.index db) r (Query.of_string "center")
  in
  (* "center" matches pos 17 under player 14 (and lifts to team 1) *)
  let hot = Query_bias.hot_entities bias in
  check bool "the center player is hot" true (List.mem 14 hot)

let test_query_bias_affinity_range () =
  let db = db_of league in
  let r = List.hd (Pipeline.search db "guard") in
  let q = Query.of_string "guard" in
  let bias = Query_bias.make (Pipeline.kinds db) (Pipeline.index db) r q in
  let analysis = Feature.analyze (Pipeline.kinds db) r in
  List.iter
    (fun (f, s) ->
      let a = Query_bias.affinity bias analysis f in
      check bool "affinity in [0,1]" true (a >= 0.0 && a <= 1.0);
      let b = Query_bias.biased_score bias analysis f s in
      check bool "biased >= base" true (b >= s.Feature.score -. 1e-9))
    (Feature.all analysis)

let test_query_bias_prefers_cooccurring () =
  (* Two equally dominant features; only one lives in the entity that
     matches the query keyword. The biased order must put it first. *)
  let src =
    "<r>\
     <e><k>match</k><a>alpha</a></e>\
     <e><k>other</k><b>beta</b></e>\
     <e><k>other2</k><b>beta</b></e>\
     <e><k>match</k><a>alpha</a></e>\
     </r>"
  in
  let db = db_of src in
  let r = Result_tree.full (Pipeline.document db) 0 in
  let q = Query.of_string "match" in
  let il =
    Pipeline.ilist_of
      ~config:{ Config.default with Config.feature_order = Config.Query_biased }
      db r q
  in
  let feature_values =
    List.filter_map
      (function
        | Ilist.Dominant_feature (f, _) -> Some f.Feature.value
        | _ -> None)
      (items_of il)
  in
  (* alpha co-occurs with "match"; beta does not *)
  match List.filter (fun v -> v = "alpha" || v = "beta") feature_values with
  | "alpha" :: _ -> ()
  | other ->
    Alcotest.failf "expected alpha first, got [%s]" (String.concat ";" other)

(* ------------------------------------------------------------------ *)
(* Differentiator *)

let test_differentiator_idf () =
  let db = db_of league in
  let results = Pipeline.search db "player" in
  let analyses = List.map (Feature.analyze (Pipeline.kinds db)) results in
  let differ = Differentiator.make analyses in
  check int "result count" (List.length results) (Differentiator.result_count differ);
  (* with "player" the results are the four player entities: guard appears
     in two of them, center in exactly one *)
  let guard = { Feature.entity = "player"; attribute = "pos"; value = "guard" } in
  let center = { Feature.entity = "player"; attribute = "pos"; value = "center" } in
  check int "guard rf" 2 (Differentiator.result_frequency differ guard);
  check int "center rf" 1 (Differentiator.result_frequency differ center);
  check bool "rarer is more distinctive" true
    (Differentiator.distinctiveness differ center > Differentiator.distinctiveness differ guard)

let test_differentiator_shared_penalized () =
  (* one value present in both results, one unique to each *)
  let src =
    "<r>\
     <g><x><v>common</v></x><x><v>common</v></x><x><v>left</v></x></g>\
     <g><x><v>common</v></x><x><v>common</v></x><x><v>right</v></x></g>\
     </r>"
  in
  let db = db_of src in
  let results = Pipeline.search ~semantics:Engine.Slca db "x" in
  (* slca of "x": each x node... use the g subtrees instead *)
  ignore results;
  let doc = Pipeline.document db in
  let r1 = Result_tree.full doc (Option.get (Path_query.first doc "/r/g[1]")) in
  let r2 = Result_tree.full doc (Option.get (Path_query.first doc "/r/g[2]")) in
  let kinds = Pipeline.kinds db in
  let differ = Differentiator.make [ Feature.analyze kinds r1; Feature.analyze kinds r2 ] in
  let common = { Feature.entity = "x"; attribute = "v"; value = "common" } in
  let unique = { Feature.entity = "x"; attribute = "v"; value = "left" } in
  check bool "shared feature less distinctive" true
    (Differentiator.distinctiveness differ common < Differentiator.distinctiveness differ unique)

let test_differentiated_run_keeps_bound () =
  let db = db_of league in
  List.iter
    (fun (r : Pipeline.snippet_result) ->
      check bool "bound" true
        (Snippet_tree.edge_count r.Pipeline.selection.Selector.snippet <= 4))
    (Pipeline.run_differentiated ~bound:4 db "player")

let test_differentiator_single_result_noop () =
  let db = db_of league in
  let plain = Pipeline.run ~bound:6 db "guard team" in
  let diff = Pipeline.run_differentiated ~bound:6 db "guard team" in
  check int "one result each" (List.length plain) (List.length diff);
  List.iter2
    (fun (a : Pipeline.snippet_result) (b : Pipeline.snippet_result) ->
      check (Alcotest.list string) "same ilist"
        (List.map (fun (e : Ilist.entry) -> Ilist.display e.Ilist.item) (Ilist.entries a.Pipeline.ilist))
        (List.map (fun (e : Ilist.entry) -> Ilist.display e.Ilist.item) (Ilist.entries b.Pipeline.ilist)))
    plain diff

let test_reorder_features_keeps_fixed_prefix () =
  let db = db_of league in
  let r = List.hd (Pipeline.search db "guard team") in
  let q = Query.of_string "guard team" in
  let il = Pipeline.ilist_of db r q in
  let reordered = Ilist.reorder_features ~score:(fun _ s -> -.s.Feature.score) il in
  let non_features l =
    List.filter (function Ilist.Dominant_feature _ -> false | _ -> true) (items_of l)
  in
  check bool "fixed items unchanged" true (non_features il = non_features reordered);
  check int "same length" (Ilist.length il) (Ilist.length reordered);
  (* ranks renumbered sequentially *)
  List.iteri
    (fun i (e : Ilist.entry) -> check int "rank" i e.Ilist.rank)
    (Ilist.entries reordered)

(* ------------------------------------------------------------------ *)
(* Ranker *)

let test_ranker_idf_rare_beats_common () =
  let db = db_of league in
  let ranker = Ranker.make (Pipeline.index db) in
  (* "guard" appears twice, "center" once: center is rarer *)
  check bool "idf(center) > idf(guard)" true
    (Ranker.idf ranker "center" > Ranker.idf ranker "guard");
  check bool "idf unknown maximal" true
    (Ranker.idf ranker "zzz" >= Ranker.idf ranker "center")

let test_ranker_prefers_specific_result () =
  let db = db_of league in
  let doc = Pipeline.document db in
  let ranker = Ranker.make (Pipeline.index db) in
  let q = Query.of_string "guard" in
  let player = Result_tree.full doc 4 in
  let team = Result_tree.full doc 1 in
  check bool "small specific result scores higher" true
    (Ranker.score ranker q player > Ranker.score ranker q team)

let test_ranker_sorted_desc () =
  let db = db_of league in
  let ranker = Ranker.make (Pipeline.index db) in
  let q = Query.of_string "player" in
  let ranked = Ranker.rank ranker q (Pipeline.search db "player") in
  let scores = List.map snd ranked in
  check bool "descending" true (List.sort (fun a b -> compare b a) scores = scores)

let test_ranker_zero_for_no_match () =
  let db = db_of league in
  let doc = Pipeline.document db in
  let ranker = Ranker.make (Pipeline.index db) in
  Alcotest.check (Alcotest.float 1e-9) "no matches, zero score" 0.0
    (Ranker.score ranker (Query.of_string "zebra") (Result_tree.full doc 1))

let test_ranker_bad_decay () =
  let db = db_of league in
  Alcotest.check_raises "decay 0" (Invalid_argument "Ranker.make: decay must be in (0, 1]")
    (fun () -> ignore (Ranker.make ~decay:0.0 (Pipeline.index db)))

(* ------------------------------------------------------------------ *)
(* XSearch *)

let test_interconnected_basic () =
  let doc = Document.load_string league in
  (* pname 5 and pos 7 under the same player: interconnected *)
  check bool "same entity" true (Xsearch.interconnected doc 5 7);
  (* pname 5 (player 4) and pname 10 (player 9): path crosses two distinct
     player nodes -> NOT interconnected *)
  check bool "across two players" false (Xsearch.interconnected doc 5 10);
  (* a node with itself *)
  check bool "self" true (Xsearch.interconnected doc 5 5)

let test_interconnected_ancestor () =
  let doc = Document.load_string league in
  (* team 1 and pname 5: a is ancestor of b, interior = player 4 only *)
  check bool "ancestor chain" true (Xsearch.interconnected doc 1 5)

let test_xsearch_results () =
  let db = db_of league in
  let index = Pipeline.index db in
  (* ann + guard: both under player 4 -> interconnected answer *)
  let rs = Xsearch.compute index (Query.of_string "ann guard") in
  check bool "at least one answer" true (rs <> []);
  (* ann + wing: ann in team 1, wing in team 2; slca = league root, path
     crosses two team nodes -> rejected *)
  let rejected = Xsearch.compute index (Query.of_string "ann wing") in
  check int "cross-team answer rejected" 0 (List.length rejected)

let test_engine_xsearch_semantics () =
  let db = db_of league in
  let results = Pipeline.search ~semantics:Engine.Xsearch db "ann guard" in
  check bool "via engine" true (results <> []);
  check bool "string roundtrip" true
    (Engine.semantics_of_string "xsearch" = Some Engine.Xsearch)

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_codec_roundtrip_ints () =
  let w = Codec.writer () in
  let values = [ 0; 1; 127; 128; 300; 1 lsl 40; -1; -300; max_int / 2; min_int / 2 ] in
  List.iter (Codec.write_int w) values;
  let r = Codec.reader (Codec.contents w) in
  List.iter (fun v -> check int "int roundtrip" v (Codec.read_int r)) values;
  check bool "at end" true (Codec.at_end r)

let test_codec_roundtrip_strings () =
  let w = Codec.writer () in
  let values = [ ""; "a"; String.make 1000 'x'; "caf\xc3\xa9 \x00 bytes" ] in
  List.iter (Codec.write_string w) values;
  let r = Codec.reader (Codec.contents w) in
  List.iter (fun v -> check string "string roundtrip" v (Codec.read_string r)) values

let test_codec_corrupt () =
  (* premature end of input is Truncated (an interrupted write), not
     Corrupt (damaged data): recovery code treats the two differently *)
  (match Codec.read_varint (Codec.reader "") with
  | exception Codec.Truncated _ -> ()
  | _ -> Alcotest.fail "expected Truncated");
  (match Codec.read_string (Codec.reader "\x05ab") with
  | exception Codec.Truncated _ -> ()
  | _ -> Alcotest.fail "expected Truncated on truncated string");
  (* an overlong varint is structural damage, hence Corrupt *)
  match Codec.read_varint (Codec.reader (String.make 12 '\xff')) with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt on overlong varint"

let test_codec_negative_varint () =
  let w = Codec.writer () in
  Alcotest.check_raises "negative varint"
    (Invalid_argument "Codec.write_varint: negative") (fun () -> Codec.write_varint w (-1))

(* ------------------------------------------------------------------ *)
(* Persist *)

let docs_equal a b =
  Document.node_count a = Document.node_count b
  && Document.to_xml a 0 = Document.to_xml b 0

let test_persist_roundtrip () =
  let doc = Document.load_string league in
  let loaded = Persist.decode (Persist.encode doc) in
  check bool "structure preserved" true (docs_equal doc loaded);
  check int "element count" (Document.element_count doc) (Document.element_count loaded)

let test_persist_dtd_preserved () =
  let doc =
    Document.load_string "<!DOCTYPE r [<!ELEMENT r (a*)> <!ELEMENT a (#PCDATA)>]><r><a>1</a></r>"
  in
  let loaded = Persist.decode (Persist.encode doc) in
  match Document.dtd loaded with
  | None -> Alcotest.fail "dtd lost"
  | Some dtd ->
    check bool "star info survives" true
      (Extract_xml.Dtd.is_star_child dtd ~parent:"r" ~child:"a" = Some true)

let test_persist_file_roundtrip () =
  let doc = Document.of_document (Extract_datagen.Movies.sized 10) in
  let path = Filename.temp_file "extract_persist" ".arena" in
  Persist.save path doc;
  let loaded = Persist.load path in
  Sys.remove path;
  check bool "file roundtrip" true (docs_equal doc loaded)

let test_persist_rejects_garbage () =
  (match Persist.decode "not an arena" with
  | exception (Codec.Corrupt _ | Codec.Truncated _) -> ()
  | _ -> Alcotest.fail "expected Corrupt");
  (* correct magic, wrong version *)
  let w = Codec.writer () in
  Codec.write_string w Persist.magic;
  Codec.write_varint w 999;
  match Persist.decode (Codec.contents w) with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected version rejection"

let test_persist_index_roundtrip () =
  let doc = Document.of_document (Extract_datagen.Retail.generate Extract_datagen.Retail.default) in
  let index = Inverted_index.build doc in
  let loaded = Persist.decode_index ~doc (Persist.encode_index index) in
  check int "token count" (Inverted_index.token_count index) (Inverted_index.token_count loaded);
  check int "postings size" (Inverted_index.postings_size index)
    (Inverted_index.postings_size loaded);
  (* every keyword's posting list survives byte-identically *)
  List.iter
    (fun tok ->
      check bool (Printf.sprintf "postings of %s" tok) true
        (Inverted_index.lookup index tok = Inverted_index.lookup loaded tok))
    (Inverted_index.vocabulary index);
  (* match kinds (the tag-token table) survive too *)
  check bool "tag kind" true
    (Inverted_index.match_kind loaded ~keyword:"retailer" ~node:1
    = Inverted_index.match_kind index ~keyword:"retailer" ~node:1)

let test_persist_index_file_and_search () =
  let doc = Document.of_document (Extract_datagen.Paper_example.document ()) in
  let index = Inverted_index.build doc in
  let path = Filename.temp_file "extract_index" ".idx" in
  Persist.save_index path index;
  let loaded = Persist.load_index path ~doc in
  Sys.remove path;
  let kinds = Node_kind.of_document doc in
  let q = Extract_search.Query.of_string Extract_datagen.Paper_example.query in
  let a = Extract_search.Engine.run index kinds q in
  let b = Extract_search.Engine.run loaded kinds q in
  check bool "same search results" true
    (List.map Result_tree.root a = List.map Result_tree.root b)

let test_persist_index_rejects_garbage () =
  let doc = Document.load_string "<r/>" in
  (match Persist.decode_index ~doc "garbage" with
  | exception (Codec.Corrupt _ | Codec.Truncated _) -> ()
  | _ -> Alcotest.fail "expected Corrupt");
  (* arena magic is not index magic *)
  match Persist.decode_index ~doc (Persist.encode doc) with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected magic mismatch"

let test_persist_index_compression_wins () =
  (* gap encoding must beat 8-byte-per-posting raw storage comfortably *)
  let doc = Document.of_document (Extract_datagen.Retail.scaled 2000) in
  let index = Inverted_index.build doc in
  let encoded = String.length (Persist.encode_index index) in
  let raw = 8 * Inverted_index.postings_size index in
  check bool
    (Printf.sprintf "encoded %d < raw postings %d" encoded raw)
    true (encoded < raw)

let test_persist_pipeline_equivalent () =
  (* searching a persisted-and-reloaded database gives identical snippets *)
  let doc = Document.of_document (Extract_datagen.Paper_example.document ()) in
  let loaded = Persist.decode (Persist.encode doc) in
  let out db =
    Pipeline.run ~bound:8 (Pipeline.build db) Extract_datagen.Paper_example.query
    |> List.map (fun (r : Pipeline.snippet_result) ->
           Snippet_tree.render r.Pipeline.selection.Selector.snippet)
  in
  check bool "identical output" true (out doc = out loaded)

(* ------------------------------------------------------------------ *)
(* Persist: seals, fingerprints, fault injection *)

let with_faults spec f =
  match Extract_util.Faults.configure spec with
  | Error e -> Alcotest.failf "configure %S: %s" spec e
  | Ok () -> Fun.protect ~finally:Extract_util.Faults.clear f

let test_persist_checksum_detects_bitflip () =
  let doc = Document.load_string league in
  let data = Persist.encode doc in
  (* flip a payload byte: the seal head (magic/version/digest) is at the
     front, so bytes near the end are payload content *)
  let b = Bytes.of_string data in
  let pos = Bytes.length b - 2 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
  match Persist.decode (Bytes.to_string b) with
  | exception Codec.Corrupt msg ->
    check bool
      (Printf.sprintf "checksum named in %S" msg)
      true
      (contains_substring msg "checksum")
  | _ -> Alcotest.fail "expected Corrupt on a flipped payload byte"

let test_persist_bundle_checksum_detects_bitflip () =
  let doc = Document.load_string league in
  let index = Inverted_index.build doc in
  let data = Persist.encode_bundle doc index in
  let b = Bytes.of_string data in
  let pos = Bytes.length b - 2 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
  match Persist.decode_bundle (Bytes.to_string b) with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt on a flipped bundle byte"

let test_persist_fingerprint_mismatch () =
  (* both files individually intact, but the index belongs to another
     arena: historically silent nonsense postings, now a clean rejection *)
  let doc_a = Document.of_document (Extract_datagen.Paper_example.document ()) in
  let doc_b = Document.load_string league in
  let encoded = Persist.encode_index (Inverted_index.build doc_a) in
  (match Persist.decode_index ~doc:doc_a encoded with
  | _ -> ()
  | exception Codec.Corrupt msg -> Alcotest.failf "matching pair rejected: %s" msg);
  match Persist.decode_index ~doc:doc_b encoded with
  | exception Codec.Corrupt msg ->
    check bool
      (Printf.sprintf "fingerprint named in %S" msg)
      true
      (contains_substring msg "fingerprint")
  | _ -> Alcotest.fail "mismatched arena/index pair accepted"

let test_persist_load_index_rejects_mismatched_files () =
  let doc_a = Document.of_document (Extract_datagen.Paper_example.document ()) in
  let doc_b = Document.load_string league in
  let path = Filename.temp_file "extract_fpr" ".idx" in
  Persist.save_index path (Inverted_index.build doc_a);
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Persist.load_index path ~doc:doc_a with
      | _ -> ()
      | exception Codec.Corrupt msg -> Alcotest.failf "matching pair rejected: %s" msg);
      match Persist.load_index path ~doc:doc_b with
      | exception Codec.Corrupt _ -> ()
      | _ -> Alcotest.fail "load_index accepted an index built from another arena")

let test_persist_read_fault_point () =
  let doc = Document.load_string league in
  let path = Filename.temp_file "extract_fault" ".arena" in
  Persist.save path doc;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      with_faults "persist.read:fail" (fun () ->
          (match Persist.load path with
          | exception Codec.Corrupt msg ->
            check bool "names the injection" true (contains_substring msg "injected")
          | _ -> Alcotest.fail "persist.read fault did not fire");
          check bool "fired counted" true (Extract_util.Faults.fired "persist.read" >= 1));
      (* disarmed again: the same file loads *)
      match Persist.load path with
      | _ -> ()
      | exception Codec.Corrupt msg -> Alcotest.failf "clean load failed: %s" msg)

let test_persist_write_fault_point () =
  let doc = Document.load_string league in
  let path = Filename.temp_file "extract_fault" ".arena" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      with_faults "persist.write:once" (fun () ->
          (match Persist.save path doc with
          | exception Codec.Corrupt _ -> ()
          | _ -> Alcotest.fail "persist.write fault did not fire");
          (* [once]: the retry goes through *)
          Persist.save path doc;
          match Persist.load path with
          | _ -> ()
          | exception Codec.Corrupt msg -> Alcotest.failf "retried write unreadable: %s" msg))

let test_index_load_fault_point () =
  let doc = Document.load_string league in
  let encoded = Persist.encode_index (Inverted_index.build doc) in
  with_faults "index.load:fail" (fun () ->
      match Persist.decode_index ~doc encoded with
      | exception Codec.Corrupt msg ->
        check bool "names the injection" true (contains_substring msg "index.load")
      | _ -> Alcotest.fail "index.load fault did not fire")

(* ------------------------------------------------------------------ *)
(* Path_query *)

let paper_doc = lazy (Document.of_document (Extract_datagen.Paper_example.document ()))

let test_path_child_steps () =
  let doc = Lazy.force paper_doc in
  let retailers = Path_query.select_string doc "/retailers/retailer" in
  check int "three retailers" 3 (List.length retailers);
  check int "root select" 1 (List.length (Path_query.select_string doc "/retailers"))

let test_path_descendant () =
  let doc = Lazy.force paper_doc in
  let cities = Path_query.select_string doc "//city" in
  check int "12 city nodes" 12 (List.length cities);
  let deep = Path_query.select_string doc "/retailers//category" in
  check bool "many categories" true (List.length deep > 1000)

let test_path_wildcard () =
  let doc = Lazy.force paper_doc in
  let children = Path_query.select_string doc "/retailers/*" in
  check int "wildcard = retailers" 3 (List.length children)

let test_path_positional () =
  let doc = Lazy.force paper_doc in
  match Path_query.first doc "/retailers/retailer[2]/name" with
  | Some n -> check string "second retailer" "Levis" (String.trim (Document.immediate_text doc n))
  | None -> Alcotest.fail "no match"

let test_path_equality_predicate () =
  let doc = Lazy.force paper_doc in
  let austin = Path_query.select_string doc "//store[city=\"Austin\"]" in
  check int "one Austin store" 1 (List.length austin);
  let houston = Path_query.select_string doc "//store[city=\"Houston\"]" in
  check int "six Houston stores" 6 (List.length houston)

let test_path_no_match_and_errors () =
  let doc = Lazy.force paper_doc in
  check int "wrong root" 0 (List.length (Path_query.select_string doc "/nope"));
  check int "overshoot position" 0
    (List.length (Path_query.select_string doc "/retailers/retailer[99]"));
  List.iter
    (fun bad ->
      match Path_query.parse bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "expected parse failure on %S" bad)
    [ ""; "retailer"; "/a[0]"; "/a[x=y]"; "/a[" ]

let test_path_to_string_roundtrip () =
  List.iter
    (fun p ->
      let parsed = Path_query.parse p in
      check string "canonical" p (Path_query.to_string parsed))
    [ "/a/b"; "//c"; "/a//b[3]"; "/a/*[2]"; "//store[city=\"Austin\"]" ]

(* ------------------------------------------------------------------ *)
(* Html_view *)

let test_html_escape () =
  check string "escaped" "&lt;a&gt; &amp; &quot;b&quot;" (Html_view.escape "<a> & \"b\"")

let test_html_page_structure () =
  let db = db_of league in
  let results = Pipeline.run ~bound:4 db "guard team" in
  let page = Html_view.result_page ~query:"guard team" ~bound:4 results in
  List.iter
    (fun fragment ->
      check bool (Printf.sprintf "page contains %s" fragment) true
        (contains_substring page fragment))
    [ "<!DOCTYPE html>"; "guard team"; "class=\"snippet\""; "IList:"; "<details>";
      "Sharks"; "</html>" ]

let test_html_values_escaped () =
  let db = db_of "<r><x><v>a&amp;b</v></x><x><v>c</v></x></r>" in
  let results = Pipeline.run ~bound:4 db "v a" in
  let page = Html_view.result_page ~query:"a" ~bound:4 results in
  check bool "ampersand escaped" true (contains_substring page "a&amp;b");
  check bool "raw ampersand absent" false (contains_substring page "a&b<")

let test_html_write_page () =
  let db = db_of league in
  let results = Pipeline.run ~bound:4 db "guard" in
  let path = Filename.temp_file "extract_html" ".html" in
  Html_view.write_page ~path ~query:"guard" ~bound:4 results;
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check bool "file written" true (contains_substring content "</html>")

let suites =
  [
    ( "ext.config",
      [
        Alcotest.test_case "keywords only" `Quick test_config_keywords_only;
        Alcotest.test_case "independent goals" `Quick test_config_goals_independent;
        Alcotest.test_case "max features" `Quick test_config_max_features;
        Alcotest.test_case "frequency order" `Quick test_config_frequency_order;
      ] );
    ( "ext.query_bias",
      [
        Alcotest.test_case "hot entities" `Quick test_query_bias_hot_entities;
        Alcotest.test_case "affinity range" `Quick test_query_bias_affinity_range;
        Alcotest.test_case "prefers co-occurring" `Quick test_query_bias_prefers_cooccurring;
      ] );
    ( "ext.differentiator",
      [
        Alcotest.test_case "idf" `Quick test_differentiator_idf;
        Alcotest.test_case "shared penalized" `Quick test_differentiator_shared_penalized;
        Alcotest.test_case "bound kept" `Quick test_differentiated_run_keeps_bound;
        Alcotest.test_case "single result noop" `Quick test_differentiator_single_result_noop;
        Alcotest.test_case "reorder keeps prefix" `Quick test_reorder_features_keeps_fixed_prefix;
      ] );
    ( "ext.ranker",
      [
        Alcotest.test_case "idf ordering" `Quick test_ranker_idf_rare_beats_common;
        Alcotest.test_case "specificity" `Quick test_ranker_prefers_specific_result;
        Alcotest.test_case "sorted" `Quick test_ranker_sorted_desc;
        Alcotest.test_case "zero score" `Quick test_ranker_zero_for_no_match;
        Alcotest.test_case "bad decay" `Quick test_ranker_bad_decay;
      ] );
    ( "ext.xsearch",
      [
        Alcotest.test_case "interconnected" `Quick test_interconnected_basic;
        Alcotest.test_case "ancestor chain" `Quick test_interconnected_ancestor;
        Alcotest.test_case "answers" `Quick test_xsearch_results;
        Alcotest.test_case "engine integration" `Quick test_engine_xsearch_semantics;
      ] );
    ( "ext.codec",
      [
        Alcotest.test_case "ints" `Quick test_codec_roundtrip_ints;
        Alcotest.test_case "strings" `Quick test_codec_roundtrip_strings;
        Alcotest.test_case "corrupt" `Quick test_codec_corrupt;
        Alcotest.test_case "negative varint" `Quick test_codec_negative_varint;
      ] );
    ( "ext.persist",
      [
        Alcotest.test_case "roundtrip" `Quick test_persist_roundtrip;
        Alcotest.test_case "dtd preserved" `Quick test_persist_dtd_preserved;
        Alcotest.test_case "file roundtrip" `Quick test_persist_file_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_persist_rejects_garbage;
        Alcotest.test_case "pipeline equivalent" `Quick test_persist_pipeline_equivalent;
        Alcotest.test_case "index roundtrip" `Quick test_persist_index_roundtrip;
        Alcotest.test_case "index file + search" `Quick test_persist_index_file_and_search;
        Alcotest.test_case "index rejects garbage" `Quick test_persist_index_rejects_garbage;
        Alcotest.test_case "index compression" `Quick test_persist_index_compression_wins;
        Alcotest.test_case "checksum bitflip" `Quick test_persist_checksum_detects_bitflip;
        Alcotest.test_case "bundle bitflip" `Quick test_persist_bundle_checksum_detects_bitflip;
        Alcotest.test_case "fingerprint mismatch" `Quick test_persist_fingerprint_mismatch;
        Alcotest.test_case "mismatched files" `Quick
          test_persist_load_index_rejects_mismatched_files;
        Alcotest.test_case "read fault" `Quick test_persist_read_fault_point;
        Alcotest.test_case "write fault" `Quick test_persist_write_fault_point;
        Alcotest.test_case "index.load fault" `Quick test_index_load_fault_point;
      ] );
    ( "ext.path_query",
      [
        Alcotest.test_case "child steps" `Quick test_path_child_steps;
        Alcotest.test_case "descendant" `Quick test_path_descendant;
        Alcotest.test_case "wildcard" `Quick test_path_wildcard;
        Alcotest.test_case "positional" `Quick test_path_positional;
        Alcotest.test_case "equality predicate" `Quick test_path_equality_predicate;
        Alcotest.test_case "misses and errors" `Quick test_path_no_match_and_errors;
        Alcotest.test_case "to_string" `Quick test_path_to_string_roundtrip;
      ] );
    ( "ext.html_view",
      [
        Alcotest.test_case "escape" `Quick test_html_escape;
        Alcotest.test_case "page structure" `Quick test_html_page_structure;
        Alcotest.test_case "values escaped" `Quick test_html_values_escaped;
        Alcotest.test_case "write page" `Quick test_html_write_page;
      ] );
  ]
