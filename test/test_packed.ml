(* Index format v2, layer by layer: the block codec primitives, the
   block-compressed posting lists (proven equivalent to the plain
   {!Postings} binary searches), the packed inverted index (proven
   equivalent to the plain one on the hotpath corpus), and the mmap
   snapshot (roundtrip, integrity, fingerprint pairing). *)

module Codec = Extract_store.Codec
module Document = Extract_store.Document
module Inverted_index = Extract_store.Inverted_index
module Packed_postings = Extract_store.Packed_postings
module Persist = Extract_store.Persist
module Postings = Extract_store.Postings
module Snapshot = Extract_store.Snapshot
module Engine = Extract_search.Engine
module Query = Extract_search.Query
module Result_tree = Extract_search.Result_tree
module Pipeline = Extract_snippet.Pipeline

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let tmp_file name = Filename.concat (Filename.get_temp_dir_name ()) name

(* ------------------------------------------------------------------ *)
(* Codec block primitives *)

let test_fixed64_roundtrip () =
  let w = Codec.writer () in
  List.iter (Codec.write_fixed64 w) [ 0L; 1L; -1L; 0x00FF01FE02FD03FCL; Int64.max_int ];
  let r = Codec.reader (Codec.contents w) in
  List.iter
    (fun v -> check bool (Int64.to_string v) true (Codec.read_fixed64 r = v))
    [ 0L; 1L; -1L; 0x00FF01FE02FD03FCL; Int64.max_int ];
  check bool "consumed" true (Codec.at_end r)

let test_fixed64_truncated () =
  Alcotest.check_raises "truncated fixed64" (Codec.Truncated "fixed64 overruns input")
    (fun () -> ignore (Codec.read_fixed64 (Codec.reader "1234567")))

let test_sorted_block_roundtrip () =
  let arr = Array.init 100 (fun i -> (i * 7) + 3) in
  let w = Codec.writer () in
  Codec.write_sorted_block w arr ~lo:10 ~hi:60;
  let out = Array.make 100 (-1) in
  Codec.read_sorted_block (Codec.reader (Codec.contents w)) out ~lo:10 ~hi:60;
  check bool "middle range equal" true (Array.sub out 10 50 = Array.sub arr 10 50);
  check int "outside untouched" (-1) out.(9)

let test_sorted_block_rejects_zero_delta () =
  let w = Codec.writer () in
  (* hand-encode 5 then a zero gap *)
  Codec.write_varint w 5;
  Codec.write_varint w 0;
  let out = Array.make 2 0 in
  Alcotest.check_raises "zero delta"
    (Codec.Corrupt "sorted block: zero delta (not strictly ascending)") (fun () ->
      Codec.read_sorted_block (Codec.reader (Codec.contents w)) out ~lo:0 ~hi:2)

(* ------------------------------------------------------------------ *)
(* Packed postings: exact sizes around block boundaries *)

let block = Codec.block_size

let ascending n = Array.init n (fun i -> (i * 3) + 1)

let boundary_sizes = [ 0; 1; block - 1; block; block + 1; (2 * block) - 1; 2 * block; (2 * block) + 1 ]

let test_roundtrip_at_block_boundaries () =
  List.iter
    (fun n ->
      let arr = ascending n in
      let p = Packed_postings.of_array arr in
      check int (Printf.sprintf "length %d" n) n (Packed_postings.length p);
      check int
        (Printf.sprintf "nblocks %d" n)
        ((n + block - 1) / block)
        (Packed_postings.nblocks p);
      check bool (Printf.sprintf "roundtrip %d" n) true (Packed_postings.to_array p = arr))
    boundary_sizes

let test_codec_embedding_at_block_boundaries () =
  List.iter
    (fun n ->
      let arr = ascending n in
      let w = Codec.writer () in
      Packed_postings.encode w (Packed_postings.of_array arr);
      let p = Packed_postings.decode (Codec.reader (Codec.contents w)) in
      check bool (Printf.sprintf "decode . encode %d" n) true (Packed_postings.to_array p = arr))
    boundary_sizes

let test_of_array_rejects_bad_input () =
  List.iter
    (fun (label, arr) ->
      check bool label true
        (match Packed_postings.of_array arr with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ "descending", [| 5; 3 |]; "duplicate", [| 5; 5 |]; "negative", [| -1; 3 |] ]

let test_decode_rejects_inconsistent_blocks () =
  let w = Codec.writer () in
  Codec.write_varint w 1000 (* count *) ;
  Codec.write_varint w 1 (* nblocks: wrong, needs 8 *);
  check bool "corrupt block count" true
    (match Packed_postings.decode (Codec.reader (Codec.contents w)) with
    | _ -> false
    | exception Codec.Corrupt _ -> true)

(* ------------------------------------------------------------------ *)
(* Property: packed searches = plain Postings searches *)

let gen_posting_list =
  QCheck.Gen.(
    let* n = int_range 0 400 in
    let* gaps = list_repeat n (int_range 1 5) in
    let arr = Array.of_list gaps in
    let acc = ref 0 in
    let out =
      Array.map
        (fun g ->
          acc := !acc + g;
          !acc)
        arr
    in
    return out)

let arb_posting_list =
  QCheck.make
    ~print:(fun a -> String.concat "," (Array.to_list (Array.map string_of_int a)))
    gen_posting_list

let prop_packed_equals_plain =
  QCheck.Test.make ~count:200 ~name:"packed searches = plain searches" arb_posting_list
    (fun arr ->
      let p = Packed_postings.of_array arr in
      let max_probe = (if Array.length arr = 0 then 0 else arr.(Array.length arr - 1)) + 3 in
      let ok = ref (Packed_postings.to_array p = arr) in
      for x = 0 to max_probe do
        ok :=
          !ok
          && Packed_postings.lower_bound p x = Postings.lower_bound arr x
          && Packed_postings.mem p x = Array.exists (fun v -> v = x) arr
          && Packed_postings.pred_of p x = Postings.pred_of arr x
          && Packed_postings.succ_of p x = Postings.succ_of arr x
          && Packed_postings.closest_in p ~lo:x ~hi:(x + 4)
             = Postings.closest_in arr ~lo:x ~hi:(x + 4)
      done;
      !ok)

let prop_packed_roundtrips_through_codec =
  QCheck.Test.make ~count:200 ~name:"packed decode . encode = id" arb_posting_list
    (fun arr ->
      let w = Codec.writer () in
      Packed_postings.encode w (Packed_postings.of_array arr);
      Packed_postings.to_array (Packed_postings.decode (Codec.reader (Codec.contents w)))
      = arr)

(* ------------------------------------------------------------------ *)
(* Equivalence on the hotpath corpus: a packed index answers every query
   entry point exactly like the plain index it came from. *)

let retail_doc =
  lazy
    (Document.of_document
       (Extract_datagen.Retail.generate Extract_datagen.Retail.default))

let retail_db = lazy (Pipeline.build (Lazy.force retail_doc))

let queries =
  [ "apparel retailer"; "apparel store"; "suit"; "store texas"; "retailer"; "nosuchword" ]

let result_fingerprint r = Result_tree.root r, Array.to_list (Result_tree.members r)

let test_packed_index_query_equivalence () =
  let db = Lazy.force retail_db in
  let idx = Pipeline.index db in
  let packed = Inverted_index.pack idx in
  check bool "packed" true (Inverted_index.is_packed packed);
  check bool "plain stays plain" false (Inverted_index.is_packed idx);
  check int "same token count" (Inverted_index.token_count idx)
    (Inverted_index.token_count packed);
  check int "same postings size" (Inverted_index.postings_size idx)
    (Inverted_index.postings_size packed);
  let kinds = Pipeline.kinds db in
  List.iter
    (fun q ->
      check bool (q ^ " lookup") true
        (List.for_all
           (fun kw -> Inverted_index.lookup idx kw = Inverted_index.lookup packed kw)
           (Query.keywords (Query.of_string q)));
      List.iter
        (fun semantics ->
          let plain = Engine.run ~semantics idx kinds (Query.of_string q) in
          let comp = Engine.run ~semantics packed kinds (Query.of_string q) in
          check bool
            (Printf.sprintf "%s under %s" q (Engine.string_of_semantics semantics))
            true
            (List.map result_fingerprint plain = List.map result_fingerprint comp))
        Engine.all_semantics)
    queries

let test_packed_match_kind_and_complete () =
  let db = Lazy.force retail_db in
  let idx = Pipeline.index db in
  let packed = Inverted_index.pack idx in
  let doc = Inverted_index.document idx in
  (* every (keyword, posting) and some misses *)
  List.iter
    (fun kw ->
      Array.iter
        (fun node ->
          check bool
            (Printf.sprintf "match_kind %s @%d" kw node)
            true
            (Inverted_index.match_kind idx ~keyword:kw ~node
            = Inverted_index.match_kind packed ~keyword:kw ~node))
        (Inverted_index.lookup idx kw);
      check bool (kw ^ " miss") true
        (Inverted_index.match_kind idx ~keyword:kw ~node:(Document.node_count doc - 1)
        = Inverted_index.match_kind packed ~keyword:kw ~node:(Document.node_count doc - 1)))
    [ "apparel"; "suit"; "store" ];
  List.iter
    (fun prefix ->
      check bool ("complete " ^ prefix) true
        (Inverted_index.complete idx prefix = Inverted_index.complete packed prefix))
    [ "s"; "ap"; "reta"; "zzz" ];
  check bool "smaller when packed" true
    (Inverted_index.postings_bytes packed < Inverted_index.postings_bytes idx)

(* ------------------------------------------------------------------ *)
(* Snapshot roundtrip and integrity *)

let test_snapshot_roundtrip () =
  let db = Lazy.force retail_db in
  let doc = Pipeline.document db in
  let idx = Pipeline.index db in
  let path = tmp_file "extract_test_snapshot.snap" in
  Snapshot.save path doc idx;
  let doc', idx' = Snapshot.load path in
  check bool "mapped index is packed" true (Inverted_index.is_packed idx');
  check string "fingerprint survives" (Persist.fingerprint doc) (Persist.fingerprint doc');
  check int "node count" (Document.node_count doc) (Document.node_count doc');
  check int "element count" (Document.element_count doc) (Document.element_count doc');
  (* full structural equality via the persist repr *)
  check bool "document repr equal" true
    (Document.Internal.to_repr doc = Document.Internal.to_repr doc');
  let kinds = Pipeline.kinds db in
  List.iter
    (fun q ->
      let plain = Engine.run idx kinds (Query.of_string q) in
      let mapped = Engine.run idx' kinds (Query.of_string q) in
      check bool (q ^ " via snapshot") true
        (List.map result_fingerprint plain = List.map result_fingerprint mapped))
    queries;
  let stats = Snapshot.verify path in
  check int "verify node count" (Document.node_count doc) stats.Snapshot.v_node_count;
  check string "verify fingerprint" (Persist.fingerprint doc) stats.Snapshot.v_fingerprint;
  Sys.remove path

let test_snapshot_sniffable () =
  let db = Lazy.force retail_db in
  let data = Snapshot.encode (Pipeline.document db) (Pipeline.index db) in
  check bool "sniffs as XTRSNAP2" true (Persist.sniff_magic data = Some Snapshot.magic)

let test_snapshot_detects_corruption () =
  let db = Lazy.force retail_db in
  let path = tmp_file "extract_test_snapshot_corrupt.snap" in
  Snapshot.save path (Pipeline.document db) (Pipeline.index db);
  (* flip a byte just past the header page — deterministically inside the
     first section ("tag"), which MD5 verification must flag *)
  let ic = open_in_bin path in
  let data = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  let pos = 4096 + 4 in
  Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc data;
  close_out oc;
  check bool "verify flags the damage" true
    (match Snapshot.verify path with
    | _ -> false
    | exception Codec.Corrupt msg ->
      let has affix =
        let n = String.length affix in
        let rec scan i =
          i + n <= String.length msg && (String.sub msg i n = affix || scan (i + 1))
        in
        scan 0
      in
      has "tag" && has "checksum");
  Sys.remove path

let test_snapshot_empty_file_diagnostic () =
  let path = tmp_file "extract_test_snapshot_empty.snap" in
  let oc = open_out_bin path in
  close_out oc;
  check bool "empty snapshot names path and magic" true
    (match Snapshot.load path with
    | _ -> false
    | exception Codec.Truncated msg ->
      let has affix =
        let n = String.length affix in
        let rec scan i =
          i + n <= String.length msg && (String.sub msg i n = affix || scan (i + 1))
        in
        scan 0
      in
      has path && has Snapshot.magic);
  Sys.remove path

let test_snapshot_rejects_mismatched_truncation () =
  let db = Lazy.force retail_db in
  let path = tmp_file "extract_test_snapshot_trunc.snap" in
  Snapshot.save path (Pipeline.document db) (Pipeline.index db);
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  check bool "truncated snapshot rejected" true
    (match Snapshot.load path with
    | _ -> false
    | exception (Codec.Truncated _ | Codec.Corrupt _) -> true);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Persist empty-file regression (the PR's satellite bugfix) *)

let test_persist_empty_file_diagnostic () =
  let path = tmp_file "extract_test_empty.xtr" in
  let oc = open_out_bin path in
  close_out oc;
  let has msg affix =
    let n = String.length affix in
    let rec scan i = i + n <= String.length msg && (String.sub msg i n = affix || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun (label, magic, run) ->
      check bool label true
        (match run () with
        | _ -> false
        | exception Codec.Truncated msg -> has msg path && has msg magic))
    [
      "load", Persist.magic, (fun () -> ignore (Persist.load path));
      "load_bundle", Persist.bundle_magic, (fun () -> ignore (Persist.load_bundle path));
      ( "load_index",
        Persist.index_magic,
        fun () ->
          ignore (Persist.load_index path ~doc:(Pipeline.document (Lazy.force retail_db))) );
    ];
  Sys.remove path

let properties = List.map QCheck_alcotest.to_alcotest
    [ prop_packed_equals_plain; prop_packed_roundtrips_through_codec ]

let suites =
  [
    ( "packed.codec",
      [
        Alcotest.test_case "fixed64 roundtrip" `Quick test_fixed64_roundtrip;
        Alcotest.test_case "fixed64 truncated" `Quick test_fixed64_truncated;
        Alcotest.test_case "sorted block roundtrip" `Quick test_sorted_block_roundtrip;
        Alcotest.test_case "sorted block zero delta" `Quick test_sorted_block_rejects_zero_delta;
      ] );
    ( "packed.postings",
      [
        Alcotest.test_case "roundtrip at block boundaries" `Quick
          test_roundtrip_at_block_boundaries;
        Alcotest.test_case "codec embedding at boundaries" `Quick
          test_codec_embedding_at_block_boundaries;
        Alcotest.test_case "rejects bad input" `Quick test_of_array_rejects_bad_input;
        Alcotest.test_case "rejects inconsistent blocks" `Quick
          test_decode_rejects_inconsistent_blocks;
      ]
      @ properties );
    ( "packed.index",
      [
        Alcotest.test_case "query equivalence" `Quick test_packed_index_query_equivalence;
        Alcotest.test_case "match_kind and complete" `Quick test_packed_match_kind_and_complete;
      ] );
    ( "packed.snapshot",
      [
        Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
        Alcotest.test_case "sniffable magic" `Quick test_snapshot_sniffable;
        Alcotest.test_case "detects corruption" `Quick test_snapshot_detects_corruption;
        Alcotest.test_case "empty file diagnostic" `Quick test_snapshot_empty_file_diagnostic;
        Alcotest.test_case "rejects truncation" `Quick test_snapshot_rejects_mismatched_truncation;
      ] );
    ( "packed.persist",
      [
        Alcotest.test_case "empty file regression" `Quick test_persist_empty_file_diagnostic;
      ] );
  ]
