Chaos smoke: adversarial inputs and injected faults must surface as
clean, actionable errors — never a crash, a hang or a stack overflow.

An unclosed 100k-deep element chain trips the parser's depth limit long
before it can exhaust the stack:

  $ awk 'BEGIN { for (i = 0; i < 100000; i++) printf "<a>" }' > deep.xml
  $ extract stats deep.xml
  error: deep.xml: line 1, column 1538: element nesting exceeds max_depth (512)
  [1]

A malformed EXTRACT_FAULTS spec is rejected up front, not at the first
fault point:

  $ EXTRACT_FAULTS="persist.read:nonsense" extract gen paper -o paper.xml
  EXTRACT_FAULTS: persist.read: unknown fault spec "nonsense" (fail|once|nth=K|crash|crash=K|p=F;seed=N)
  [2]

Build the running example and persist it:

  $ extract gen paper -o paper.xml
  wrote paper.xml
  $ extract save paper.xml paper.bundle
  wrote paper.bundle (7350 nodes, 65 tokens)

An injected read fault makes persistence fail loudly:

  $ EXTRACT_FAULTS="persist.read:fail" extract search paper.bundle "Texas apparel retailer"
  warning: corrupt artifact paper.bundle (injected fault: persist.read (bundle)); rebuilding from paper.xml
  1 result(s)
   1. <retailer> (7295 nodes)

Without the fault the same artifact works:

  $ extract search paper.bundle "Texas apparel retailer"
  1 result(s)
   1. <retailer> (7295 nodes)

A corrupt artifact with its XML source next to it is rebuilt, with a
warning, instead of failing the query:

  $ cp paper.bundle corrupt.bundle && cp paper.xml corrupt.xml
  $ dd if=/dev/zero of=corrupt.bundle bs=1 seek=60 count=8 conv=notrunc status=none
  $ extract search corrupt.bundle "Texas apparel retailer"
  warning: corrupt artifact corrupt.bundle (bundle checksum mismatch (payload damaged)); rebuilding from corrupt.xml
  1 result(s)
   1. <retailer> (7295 nodes)

With no source to rebuild from, the corruption is fatal but clean:

  $ rm corrupt.xml
  $ extract search corrupt.bundle "Texas apparel retailer"
  error: corrupt.bundle: bundle checksum mismatch (payload damaged)
  [1]

Arena + index pairs are fingerprinted; extract check validates a pair:

  $ extract save paper.xml paper.arena --index paper.idx
  wrote paper.arena (7350 nodes, 65 tokens)
  wrote paper.idx (index)
  $ extract check paper.arena --index paper.idx
  ok: paper.arena and paper.idx are a sealed, matching pair
  checking paper.arena: 7350 nodes, 65 tokens, 13 paths, 3 probe queries
  ok: all invariants hold

A foreign index is rejected, both by the checker and on load:

  $ extract gen courses -o courses.xml
  wrote courses.xml
  $ extract save courses.xml courses.arena --index courses.idx
  wrote courses.arena (2913 nodes, 410 tokens)
  wrote courses.idx (index)
  $ extract check paper.arena --index courses.idx
  [persist] index courses.idx: index/arena fingerprint mismatch (index built from arena e0b79d1865d417b0e39279338f33fa5c, loaded against ac71746aa1f64fb20217337b209a29dd)
  FAILED: 1 invariant violation(s)
  [1]

Deadline-degraded serving still answers (the snippet falls back to the
naive baseline under pipeline.snippet faults):

  $ EXTRACT_FAULTS="pipeline.snippet:fail" extract snippet paper.xml "store texas" -b 6 -n 1
  1 result(s) for "store texas", bound 6 edges
  
  --- result 1 -------------------------------------
  store
  ├── name "Galleria"
  ├── state "Texas"
  ├── city "Houston"
  └── merchandises
      ├── clothes
      └── clothes
  (0/0 IList items, 6 edges)
  
