(* Unit tests for the extract.util substrate. *)

open Extract_util

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Arraylist *)

let test_arraylist_empty () =
  let t = Arraylist.create () in
  check int "length" 0 (Arraylist.length t);
  check bool "is_empty" true (Arraylist.is_empty t);
  check bool "to_list" true (Arraylist.to_list t = [])

let test_arraylist_push_get () =
  let t = Arraylist.create () in
  for i = 0 to 99 do
    Arraylist.push t (i * i)
  done;
  check int "length" 100 (Arraylist.length t);
  check int "get 0" 0 (Arraylist.get t 0);
  check int "get 99" (99 * 99) (Arraylist.get t 99);
  check int "last" (99 * 99) (Arraylist.last t)

let test_arraylist_set () =
  let t = Arraylist.of_list [ 1; 2; 3 ] in
  Arraylist.set t 1 42;
  check bool "after set" true (Arraylist.to_list t = [ 1; 42; 3 ])

let test_arraylist_pop () =
  let t = Arraylist.of_list [ 1; 2; 3 ] in
  check int "pop" 3 (Arraylist.pop t);
  check int "length after pop" 2 (Arraylist.length t);
  check int "pop" 2 (Arraylist.pop t);
  check int "pop" 1 (Arraylist.pop t);
  Alcotest.check_raises "pop empty" (Invalid_argument "Arraylist.pop: empty") (fun () ->
      ignore (Arraylist.pop t))

let test_arraylist_bounds () =
  let t = Arraylist.of_list [ 1 ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Arraylist: index 1 out of bounds [0,1)") (fun () ->
      ignore (Arraylist.get t 1));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Arraylist: index -1 out of bounds [0,1)") (fun () ->
      ignore (Arraylist.get t (-1)))

let test_arraylist_clear_reuse () =
  let t = Arraylist.of_list [ 1; 2 ] in
  Arraylist.clear t;
  check int "cleared" 0 (Arraylist.length t);
  Arraylist.push t 9;
  check int "reused" 9 (Arraylist.get t 0)

let test_arraylist_iter_fold_map () =
  let t = Arraylist.of_list [ 1; 2; 3; 4 ] in
  let sum = Arraylist.fold_left ( + ) 0 t in
  check int "fold" 10 sum;
  let doubled = Arraylist.map (fun x -> x * 2) t in
  check bool "map" true (Arraylist.to_list doubled = [ 2; 4; 6; 8 ]);
  let seen = ref [] in
  Arraylist.iteri (fun i x -> seen := (i, x) :: !seen) t;
  check int "iteri count" 4 (List.length !seen);
  check bool "exists" true (Arraylist.exists (fun x -> x = 3) t);
  check bool "not exists" false (Arraylist.exists (fun x -> x = 7) t)

let test_arraylist_sort () =
  let t = Arraylist.of_list [ 3; 1; 2 ] in
  Arraylist.sort compare t;
  check bool "sorted" true (Arraylist.to_list t = [ 1; 2; 3 ])

let test_arraylist_make () =
  let t = Arraylist.make 5 'x' in
  check int "make length" 5 (Arraylist.length t);
  check bool "make fill" true (Arraylist.to_list t = [ 'x'; 'x'; 'x'; 'x'; 'x' ])

(* ------------------------------------------------------------------ *)
(* Interner *)

let test_interner_basics () =
  let t = Interner.create () in
  let a = Interner.intern t "alpha" in
  let b = Interner.intern t "beta" in
  check int "first id" 0 a;
  check int "second id" 1 b;
  check int "repeat" a (Interner.intern t "alpha");
  check int "count" 2 (Interner.count t);
  check string "name" "beta" (Interner.name t b)

let test_interner_find () =
  let t = Interner.create () in
  ignore (Interner.intern t "x");
  check bool "find present" true (Interner.find t "x" = Some 0);
  check bool "find absent" true (Interner.find t "y" = None)

let test_interner_bad_id () =
  let t = Interner.create () in
  Alcotest.check_raises "unknown id" (Invalid_argument "Interner.name: unknown id 0")
    (fun () -> ignore (Interner.name t 0))

let test_interner_iter_order () =
  let t = Interner.create () in
  List.iter (fun s -> ignore (Interner.intern t s)) [ "c"; "a"; "b" ];
  let order = ref [] in
  Interner.iter (fun id s -> order := (id, s) :: !order) t;
  check bool "id order = first-seen order" true
    (List.rev !order = [ 0, "c"; 1, "a"; 2, "b" ])

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.add q ~prio:p v) [ 5, "e"; 1, "a"; 3, "c"; 2, "b" ];
  let drain () =
    let rec loop acc =
      match Pqueue.pop q with
      | None -> List.rev acc
      | Some (_, v) -> loop (v :: acc)
    in
    loop []
  in
  check bool "pops in priority order" true (drain () = [ "a"; "b"; "c"; "e" ])

let test_pqueue_ties_fifo () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.add q ~prio:7 v) [ "first"; "second"; "third" ];
  let pops =
    List.init 3 (fun _ ->
        match Pqueue.pop q with
        | Some (_, v) -> v
        | None -> assert false)
  in
  check bool "ties break by insertion order" true (pops = [ "first"; "second"; "third" ])

let test_pqueue_min_peek () =
  let q = Pqueue.create () in
  check bool "empty min" true (Pqueue.min q = None);
  Pqueue.add q ~prio:9 "x";
  Pqueue.add q ~prio:4 "y";
  check bool "peek" true (Pqueue.min q = Some (4, "y"));
  check int "peek does not pop" 2 (Pqueue.length q)

let test_pqueue_random_against_sort () =
  let rng = Prng.create 99 in
  let q = Pqueue.create () in
  let items = List.init 200 (fun i -> Prng.int rng 50, i) in
  List.iter (fun (p, v) -> Pqueue.add q ~prio:p v) items;
  let rec drain acc =
    match Pqueue.pop q with
    | None -> List.rev acc
    | Some (p, _) -> drain (p :: acc)
  in
  let popped = drain [] in
  check bool "priorities nondecreasing" true (List.sort compare popped = popped)

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 123 and b = Prng.create 123 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000) in
  check bool "same seed, same stream" true (xs = ys)

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000000) in
  check bool "different seeds differ" true (xs <> ys)

let test_prng_bounds () =
  let rng = Prng.create 5 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.fail "int out of bounds"
  done;
  for _ = 1 to 1000 do
    let x = Prng.int_in_range rng ~min:3 ~max:5 in
    if x < 3 || x > 5 then Alcotest.fail "range out of bounds"
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_float () =
  let rng = Prng.create 8 in
  for _ = 1 to 1000 do
    let x = Prng.float rng 2.5 in
    if x < 0.0 || x >= 2.5 then Alcotest.fail "float out of bounds"
  done

let test_prng_split_independence () =
  let a = Prng.create 77 in
  let b = Prng.split a in
  let xs = List.init 10 (fun _ -> Prng.int a 1000000) in
  let ys = List.init 10 (fun _ -> Prng.int b 1000000) in
  check bool "split streams differ" true (xs <> ys)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 31 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check bool "shuffle is a permutation" true (Array.to_list sorted = List.init 50 Fun.id)

let test_prng_sample () =
  let rng = Prng.create 13 in
  let arr = Array.init 10 Fun.id in
  let s = Prng.sample rng arr 4 in
  check int "sample size" 4 (List.length s);
  check int "distinct" 4 (List.length (List.sort_uniq compare s));
  let all = Prng.sample rng arr 99 in
  check int "oversample returns all" 10 (List.length all)

(* ------------------------------------------------------------------ *)
(* Zipf *)

let test_zipf_uniform () =
  let z = Zipf.create ~n:4 ~skew:0.0 in
  List.iter
    (fun k ->
      Alcotest.check (Alcotest.float 1e-9) "uniform mass" 0.25 (Zipf.probability z k))
    [ 0; 1; 2; 3 ]

let test_zipf_monotone () =
  let z = Zipf.create ~n:6 ~skew:1.2 in
  for k = 0 to 4 do
    if Zipf.probability z k < Zipf.probability z (k + 1) then
      Alcotest.fail "mass should decrease with rank"
  done

let test_zipf_mass_sums_to_one () =
  let z = Zipf.create ~n:9 ~skew:0.7 in
  let total = List.fold_left (fun acc k -> acc +. Zipf.probability z k) 0.0 (List.init 9 Fun.id) in
  Alcotest.check (Alcotest.float 1e-9) "sums to 1" 1.0 total

let test_zipf_sampling_skew () =
  let z = Zipf.create ~n:5 ~skew:1.5 in
  let rng = Prng.create 4 in
  let counts = Array.make 5 0 in
  for _ = 1 to 5000 do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  check bool "rank 0 most frequent" true (counts.(0) > counts.(1));
  check bool "rank 1 beats rank 4" true (counts.(1) > counts.(4))

let test_zipf_invalid () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~skew:1.0))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_stddev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean xs);
  Alcotest.check (Alcotest.float 1e-6) "stddev" 2.13809 (Stats.stddev xs)

let test_stats_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile xs 50.0);
  Alcotest.check (Alcotest.float 1e-9) "p99" 99.0 (Stats.percentile xs 99.0);
  Alcotest.check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile xs 100.0)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  check int "count" 3 s.Stats.count;
  Alcotest.check (Alcotest.float 1e-9) "min" 1.0 s.Stats.min;
  Alcotest.check (Alcotest.float 1e-9) "max" 3.0 s.Stats.max;
  Alcotest.check (Alcotest.float 1e-9) "mean" 2.0 s.Stats.mean

let test_stats_singleton () =
  let s = Stats.summarize [| 42.0 |] in
  Alcotest.check (Alcotest.float 1e-9) "stddev of singleton" 0.0 s.Stats.stddev

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize [||]))

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t = Table.create [ "name"; "count" ] in
  Table.add_row t [ "alpha"; "10" ];
  Table.add_row t [ "b"; "2" ];
  let rendered = Table.render t in
  check bool "has header" true (String.length rendered > 0);
  let lines = String.split_on_char '\n' rendered in
  check int "rows + header + rule" 4 (List.length lines);
  (* all lines are equally wide or less; header then rule *)
  (match lines with
  | _header :: rule :: _ -> check bool "rule is dashes" true (String.for_all (fun c -> c = '-' || c = ' ') rule)
  | _ -> Alcotest.fail "missing lines")

let test_table_width_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "bad row" (Invalid_argument "Table.add_row: expected 2 cells, got 1")
    (fun () -> Table.add_row t [ "only" ])

let test_table_row_count () =
  let t = Table.create [ "x" ] in
  check int "empty" 0 (Table.row_count t);
  Table.add_row t [ "1" ];
  check int "one" 1 (Table.row_count t)

(* ------------------------------------------------------------------ *)
(* Pretty *)

let tree = Pretty.Node ("root", [ Pretty.Node ("a", [ Pretty.Node ("a1", []) ]); Pretty.Node ("b", []) ])

let test_pretty_counts () =
  check int "size" 4 (Pretty.size tree);
  check int "edges" 3 (Pretty.edges tree);
  check int "depth" 2 (Pretty.depth tree);
  check int "leaf depth" 0 (Pretty.depth (Pretty.Node ("x", [])))

let test_pretty_render_ascii () =
  let s = Pretty.render_ascii tree in
  check string "ascii rendition" "root\n|-- a\n|   `-- a1\n`-- b" s

let test_pretty_render_unicode_lines () =
  let s = Pretty.render tree in
  check int "line count" 4 (List.length (String.split_on_char '\n' s))

(* ------------------------------------------------------------------ *)
(* Deadline *)

(* drive the clock by hand so deadline arithmetic is tested exactly *)
let with_clock t f =
  Deadline.set_clock (Some (fun () -> !t));
  Fun.protect ~finally:(fun () -> Deadline.set_clock None) f

let test_deadline_never () =
  check bool "never is never" true (Deadline.is_never Deadline.never);
  check bool "never not expired" false (Deadline.expired Deadline.never);
  check bool "remaining infinite" true (Deadline.remaining Deadline.never = infinity);
  check int "remaining_ms caps" max_int (Deadline.remaining_ms Deadline.never);
  check bool "of_ms_opt None" true (Deadline.is_never (Deadline.of_ms_opt None))

let test_deadline_expiry () =
  let t = ref 100.0 in
  with_clock t (fun () ->
      let d = Deadline.after_ms 250 in
      check bool "fresh" false (Deadline.expired d);
      check int "250ms left" 250 (Deadline.remaining_ms d);
      t := 100.2;
      check bool "not yet" false (Deadline.expired d);
      check int "50ms left" 50 (Deadline.remaining_ms d);
      t := 100.25;
      check bool "on the dot" true (Deadline.expired d);
      t := 200.0;
      check bool "long past" true (Deadline.expired d);
      check bool "no negative remaining" true (Deadline.remaining d = 0.0))

let test_deadline_zero_budget () =
  let t = ref 7.0 in
  with_clock t (fun () ->
      check bool "0ms budget expires immediately" true
        (Deadline.expired (Deadline.of_ms_opt (Some 0))))

let test_deadline_monotonic_floor () =
  (* the wall clock stepping backwards must not resurrect a deadline *)
  let a = Deadline.now () in
  let b = Deadline.now () in
  check bool "now never decreases" true (b >= a)

(* ------------------------------------------------------------------ *)
(* Faults *)

let with_faults spec f =
  match Faults.configure spec with
  | Error e -> Alcotest.failf "configure %S: %s" spec e
  | Ok () -> Fun.protect ~finally:Faults.clear f

let test_faults_unarmed () =
  Faults.clear ();
  check bool "inactive" false (Faults.active ());
  check bool "never fails" false (Faults.should_fail "persist.read");
  Faults.hit "persist.read";
  check int "no hits recorded unarmed" 0 (Faults.hits "persist.read")

let test_faults_fail_spec () =
  with_faults "persist.read:fail" (fun () ->
      check bool "active" true (Faults.active ());
      check bool "fires" true (Faults.should_fail "persist.read");
      check bool "fires again" true (Faults.should_fail "persist.read");
      check bool "other points untouched" false (Faults.should_fail "persist.write");
      check int "hits" 2 (Faults.hits "persist.read");
      check int "fired" 2 (Faults.fired "persist.read"))

let test_faults_once_spec () =
  with_faults "p:once" (fun () ->
      check bool "first fires" true (Faults.should_fail "p");
      check bool "second clean" false (Faults.should_fail "p");
      check bool "third clean" false (Faults.should_fail "p");
      check int "hits" 3 (Faults.hits "p");
      check int "fired once" 1 (Faults.fired "p"))

let test_faults_nth_spec () =
  with_faults "p:nth=3" (fun () ->
      check bool "1st clean" false (Faults.should_fail "p");
      check bool "2nd clean" false (Faults.should_fail "p");
      check bool "3rd fires" true (Faults.should_fail "p");
      check bool "4th clean" false (Faults.should_fail "p"))

let test_faults_prob_deterministic () =
  let run () =
    with_faults "p:p=0.5;seed=11" (fun () ->
        List.init 64 (fun _ -> Faults.should_fail "p"))
  in
  let a = run () and b = run () in
  check bool "same seed, same decisions" true (a = b);
  check bool "some fired" true (List.mem true a);
  check bool "some passed" true (List.mem false a)

let test_faults_hit_raises () =
  with_faults "p:fail" (fun () ->
      match Faults.hit "p" with
      | () -> Alcotest.fail "hit should raise"
      | exception Faults.Injected (point, _) -> check string "point" "p" point)

let test_faults_multi_and_configured () =
  with_faults "a:fail,b:nth=2" (fun () ->
      check bool "listed" true (Faults.configured () = [ "a", "fail"; "b", "nth=2" ]))

let test_faults_bad_spec () =
  (match Faults.configure "nonsense" with
  | Ok () -> Alcotest.fail "bad spec accepted"
  | Error _ -> ());
  check bool "bad spec disarms" false (Faults.active ());
  match Faults.configure "p:p=1.5" with
  | Ok () -> Alcotest.fail "out-of-range probability accepted"
  | Error _ -> ()

let suites =
  [
    ( "util.arraylist",
      [
        Alcotest.test_case "empty" `Quick test_arraylist_empty;
        Alcotest.test_case "push/get" `Quick test_arraylist_push_get;
        Alcotest.test_case "set" `Quick test_arraylist_set;
        Alcotest.test_case "pop" `Quick test_arraylist_pop;
        Alcotest.test_case "bounds" `Quick test_arraylist_bounds;
        Alcotest.test_case "clear/reuse" `Quick test_arraylist_clear_reuse;
        Alcotest.test_case "iter/fold/map" `Quick test_arraylist_iter_fold_map;
        Alcotest.test_case "sort" `Quick test_arraylist_sort;
        Alcotest.test_case "make" `Quick test_arraylist_make;
      ] );
    ( "util.interner",
      [
        Alcotest.test_case "basics" `Quick test_interner_basics;
        Alcotest.test_case "find" `Quick test_interner_find;
        Alcotest.test_case "bad id" `Quick test_interner_bad_id;
        Alcotest.test_case "iter order" `Quick test_interner_iter_order;
      ] );
    ( "util.pqueue",
      [
        Alcotest.test_case "priority order" `Quick test_pqueue_order;
        Alcotest.test_case "fifo ties" `Quick test_pqueue_ties_fifo;
        Alcotest.test_case "min peek" `Quick test_pqueue_min_peek;
        Alcotest.test_case "random vs sort" `Quick test_pqueue_random_against_sort;
      ] );
    ( "util.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "bounds" `Quick test_prng_bounds;
        Alcotest.test_case "float" `Quick test_prng_float;
        Alcotest.test_case "split" `Quick test_prng_split_independence;
        Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutation;
        Alcotest.test_case "sample" `Quick test_prng_sample;
      ] );
    ( "util.zipf",
      [
        Alcotest.test_case "uniform" `Quick test_zipf_uniform;
        Alcotest.test_case "monotone" `Quick test_zipf_monotone;
        Alcotest.test_case "mass" `Quick test_zipf_mass_sums_to_one;
        Alcotest.test_case "sampling skew" `Quick test_zipf_sampling_skew;
        Alcotest.test_case "invalid" `Quick test_zipf_invalid;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "summary" `Quick test_stats_summary;
        Alcotest.test_case "singleton" `Quick test_stats_singleton;
        Alcotest.test_case "empty" `Quick test_stats_empty;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
        Alcotest.test_case "row count" `Quick test_table_row_count;
      ] );
    ( "util.pretty",
      [
        Alcotest.test_case "counts" `Quick test_pretty_counts;
        Alcotest.test_case "ascii" `Quick test_pretty_render_ascii;
        Alcotest.test_case "unicode lines" `Quick test_pretty_render_unicode_lines;
      ] );
    ( "util.deadline",
      [
        Alcotest.test_case "never" `Quick test_deadline_never;
        Alcotest.test_case "expiry" `Quick test_deadline_expiry;
        Alcotest.test_case "zero budget" `Quick test_deadline_zero_budget;
        Alcotest.test_case "monotonic" `Quick test_deadline_monotonic_floor;
      ] );
    ( "util.faults",
      [
        Alcotest.test_case "unarmed" `Quick test_faults_unarmed;
        Alcotest.test_case "fail" `Quick test_faults_fail_spec;
        Alcotest.test_case "once" `Quick test_faults_once_spec;
        Alcotest.test_case "nth" `Quick test_faults_nth_spec;
        Alcotest.test_case "probabilistic" `Quick test_faults_prob_deterministic;
        Alcotest.test_case "hit raises" `Quick test_faults_hit_raises;
        Alcotest.test_case "configured" `Quick test_faults_multi_and_configured;
        Alcotest.test_case "bad spec" `Quick test_faults_bad_spec;
      ] );
  ]
