(* Tests for the LRU cache, the demo HTTP server (pure handler and socket
   round trip) and the courses dataset. *)

module Lru = Extract_util.Lru
module Demo_server = Extract_server.Demo_server
module Corpus = Extract_snippet.Corpus
module Pipeline = Extract_snippet.Pipeline
module Document = Extract_store.Document

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let contains_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec loop i = i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1)) in
  ln = 0 || loop 0

(* ------------------------------------------------------------------ *)
(* LRU *)

let test_lru_basic () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  check bool "find a" true (Lru.find c "a" = Some 1);
  check bool "find b" true (Lru.find c "b" = Some 2);
  check int "length" 2 (Lru.length c);
  check int "capacity" 2 (Lru.capacity c)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  (* touch a so b is the LRU *)
  ignore (Lru.find c "a");
  Lru.put c "c" 3;
  check bool "b evicted" true (Lru.find c "b" = None);
  check bool "a kept" true (Lru.find c "a" = Some 1);
  check bool "c kept" true (Lru.find c "c" = Some 3)

let test_lru_evictions_counted () =
  let c = Lru.create ~capacity:2 in
  check int "fresh cache, no evictions" 0 (Lru.evictions c);
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Lru.put c "c" 3;
  Lru.put c "d" 4;
  check int "two capacity evictions" 2 (Lru.evictions c);
  Lru.remove c "c";
  check int "remove is not an eviction" 2 (Lru.evictions c);
  Lru.clear c;
  check int "clear resets the counter" 0 (Lru.evictions c)

let test_lru_replace () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "a" 9;
  check bool "replaced" true (Lru.find c "a" = Some 9);
  check int "no growth" 1 (Lru.length c)

let test_lru_find_or_add () =
  let c = Lru.create ~capacity:4 in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  check int "first computes" 42 (Lru.find_or_add c "k" compute);
  check int "second cached" 42 (Lru.find_or_add c "k" compute);
  check int "one computation" 1 !calls;
  let hits, misses = Lru.stats c in
  check int "hits" 1 hits;
  check int "misses" 1 misses

let test_lru_remove_clear () =
  let c = Lru.create ~capacity:4 in
  Lru.put c 1 "x";
  Lru.put c 2 "y";
  Lru.remove c 1;
  check bool "removed" true (Lru.find c 1 = None);
  Lru.clear c;
  check int "cleared" 0 (Lru.length c)

let test_lru_capacity_one () =
  let c = Lru.create ~capacity:1 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  check bool "only latest" true (Lru.find c "a" = None && Lru.find c "b" = Some 2);
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Lru.create: capacity must be positive") (fun () ->
      ignore (Lru.create ~capacity:0))

let test_lru_stress_against_model () =
  (* random ops vs a naive model *)
  let rng = Extract_util.Prng.create 55 in
  let cap = 8 in
  let c = Lru.create ~capacity:cap in
  let model = ref [] in (* (key, value), most recent first *)
  for _ = 1 to 2000 do
    let key = Extract_util.Prng.int rng 20 in
    if Extract_util.Prng.bool rng then begin
      let v = Extract_util.Prng.int rng 1000 in
      Lru.put c key v;
      model := (key, v) :: List.remove_assoc key !model;
      if List.length !model > cap then
        model := List.filteri (fun i _ -> i < cap) !model
    end
    else begin
      let got = Lru.find c key in
      let expected = List.assoc_opt key !model in
      if got <> expected then
        Alcotest.failf "model mismatch on key %d: cache %s, model %s" key
          (match got with Some v -> string_of_int v | None -> "-")
          (match expected with Some v -> string_of_int v | None -> "-");
      (* a hit refreshes recency in both *)
      match expected with
      | Some v -> model := (key, v) :: List.remove_assoc key !model
      | None -> ()
    end
  done

(* ------------------------------------------------------------------ *)
(* Server: URL parsing *)

let test_url_decode () =
  check string "plus" "store texas" (Demo_server.url_decode "store+texas");
  check string "percent" "a&b=c" (Demo_server.url_decode "a%26b%3Dc");
  check string "utf8" "caf\xc3\xa9" (Demo_server.url_decode "caf%C3%A9");
  check string "broken escape kept" "100%" (Demo_server.url_decode "100%");
  check string "broken hex kept" "%zz!" (Demo_server.url_decode "%zz!")

let test_parse_target () =
  let path, params = Demo_server.parse_target "/search?data=retail&q=store+texas&bound=6" in
  check string "path" "/search" path;
  check bool "params" true
    (params = [ "data", "retail"; "q", "store texas"; "bound", "6" ]);
  let path2, params2 = Demo_server.parse_target "/" in
  check string "bare path" "/" path2;
  check int "no params" 0 (List.length params2)

(* ------------------------------------------------------------------ *)
(* Server: handler *)

let server () =
  let db =
    Pipeline.build (Document.of_document (Extract_datagen.Paper_example.document ()))
  in
  Demo_server.create (Corpus.of_list [ "paper", db ])

let test_handle_home () =
  let s = server () in
  let r = Demo_server.handle s "/" in
  check int "200" 200 r.Demo_server.status;
  check bool "lists data set" true (contains_substring r.Demo_server.body "paper")

let test_handle_search () =
  let s = server () in
  let r = Demo_server.handle s "/search?data=paper&q=store+texas&bound=6" in
  check int "200" 200 r.Demo_server.status;
  check bool "html" true (contains_substring r.Demo_server.content_type "text/html");
  check bool "snippet markup" true (contains_substring r.Demo_server.body "class=\"snippet\"");
  check bool "a store name shows" true (contains_substring r.Demo_server.body "Galleria")

let test_handle_search_caches () =
  let s = server () in
  let target = "/search?data=paper&q=store+texas&bound=6" in
  let a = Demo_server.handle s target in
  let b = Demo_server.handle s target in
  check bool "same body" true (a.Demo_server.body = b.Demo_server.body);
  let hits, _ = Demo_server.cache_stats s in
  check int "second was a cache hit" 1 hits

let test_handle_complete () =
  let s = server () in
  let r = Demo_server.handle s "/complete?data=paper&prefix=hou" in
  check int "200" 200 r.Demo_server.status;
  check bool "houston suggested" true (contains_substring r.Demo_server.body "houston")

let test_handle_stats () =
  let s = server () in
  let r = Demo_server.handle s "/stats?data=paper" in
  check int "200" 200 r.Demo_server.status;
  check bool "mentions nodes" true (contains_substring r.Demo_server.body "nodes")

let test_handle_metrics () =
  let s = server () in
  ignore (Demo_server.handle s "/search?data=paper&q=store+texas&bound=6");
  let r = Demo_server.handle s "/metrics" in
  check int "200" 200 r.Demo_server.status;
  check bool "prometheus content type" true
    (contains_substring r.Demo_server.content_type "text/plain");
  List.iter
    (fun family ->
      check bool (family ^ " exposed") true (contains_substring r.Demo_server.body family))
    [
      "extract_cache_hits_total";
      "extract_cache_misses_total";
      "extract_stage_duration_seconds_bucket";
      "extract_queries_total";
      "extract_degraded_snippets_total";
      "extract_http_responses_total";
      "extract_cache_entries";
    ]

let test_handle_stats_json () =
  let s = server () in
  let r = Demo_server.handle s "/stats?format=json&data=paper" in
  check int "200" 200 r.Demo_server.status;
  check bool "json content type" true
    (contains_substring r.Demo_server.content_type "application/json");
  List.iter
    (fun key -> check bool (key ^ " present") true (contains_substring r.Demo_server.body key))
    [ "\"caches\""; "\"page\""; "\"snippet\""; "\"degraded_served\""; "\"metrics\""; "\"nodes\"" ];
  let no_data = Demo_server.handle s "/stats?format=json" in
  check int "still 200 without data" 200 no_data.Demo_server.status;
  check bool "dataset null without data" true
    (contains_substring no_data.Demo_server.body "\"dataset\": null")

let test_handle_errors () =
  let s = server () in
  check int "missing data" 400 (Demo_server.handle s "/search?q=x").Demo_server.status;
  check int "unknown data" 404
    (Demo_server.handle s "/search?data=nope&q=x").Demo_server.status;
  check int "missing q" 400 (Demo_server.handle s "/search?data=paper").Demo_server.status;
  check int "unknown route" 404 (Demo_server.handle s "/nope").Demo_server.status

(* ------------------------------------------------------------------ *)
(* Server: socket round trip (single-process: connect backlogs before
   accept) *)

let http_get port target =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" target in
  ignore (Unix.write_substring sock req 0 (String.length req));
  sock

let read_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    let n = Unix.read fd chunk 0 4096 in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      loop ()
    end
  in
  (try loop () with Unix.Unix_error _ -> ());
  Buffer.contents buf

let test_socket_roundtrip () =
  let s = server () in
  let listening = Demo_server.listen ~port:0 in
  let port = Demo_server.bound_port listening in
  let client = http_get port "/stats?data=paper" in
  Demo_server.serve_once s listening;
  let response = read_all client in
  Unix.close client;
  Unix.close listening;
  check bool "status line" true (contains_substring response "HTTP/1.0 200 OK");
  check bool "content" true (contains_substring response "nodes")

let test_socket_404 () =
  let s = server () in
  let listening = Demo_server.listen ~port:0 in
  let port = Demo_server.bound_port listening in
  let client = http_get port "/missing" in
  Demo_server.serve_once s listening;
  let response = read_all client in
  Unix.close client;
  Unix.close listening;
  check bool "404" true (contains_substring response "HTTP/1.0 404")

(* ------------------------------------------------------------------ *)
(* Server: resilience (DESIGN.md §9) *)

module Deadline = Extract_util.Deadline
module Faults = Extract_util.Faults

let with_faults spec f =
  match Faults.configure spec with
  | Error e -> Alcotest.failf "configure %S: %s" spec e
  | Ok () -> Fun.protect ~finally:Faults.clear f

let quiet_config = { Demo_server.default_config with Demo_server.log = ignore }

let logging_config () =
  let logs = ref [] in
  ( { Demo_server.default_config with Demo_server.log = (fun m -> logs := m :: !logs) },
    logs )

let write_all fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let request_line data =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      write_all a data;
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      Demo_server.read_request_line b)

let test_read_request_line_forms () =
  (match request_line "GET / HTTP/1.0\r\n" with
  | Demo_server.Line l -> check string "crlf" "GET / HTTP/1.0" l
  | _ -> Alcotest.fail "crlf line not read");
  (match request_line "GET / HTTP/1.0\n" with
  | Demo_server.Line l -> check string "bare lf" "GET / HTTP/1.0" l
  | _ -> Alcotest.fail "lf line not read");
  check bool "bare CR rejected" true (request_line "GET /\rHTTP/1.0\n" = Demo_server.Bad_cr);
  check bool "eof mid-line" true (request_line "GET /incompl" = Demo_server.Eof);
  check bool "empty" true (request_line "" = Demo_server.Eof)

let test_read_request_line_bound_exact () =
  let max = Demo_server.max_request_line in
  (* max - 1 content bytes + terminator: the longest accepted line *)
  (match request_line (String.make (max - 1) 'a' ^ "\n") with
  | Demo_server.Line l -> check int "longest line kept whole" (max - 1) (String.length l)
  | _ -> Alcotest.fail "line at the bound rejected");
  (* max content bytes: over, even with a terminator right behind *)
  check bool "one more byte is too long" true
    (request_line (String.make max 'a' ^ "\n") = Demo_server.Too_long)

let with_server_socket f =
  let s = server () in
  let listening = Demo_server.listen ~port:0 in
  let port = Demo_server.bound_port listening in
  Fun.protect ~finally:(fun () -> Unix.close listening) (fun () -> f s listening port)

let roundtrip ?(config = quiet_config) s listening port target =
  let client = http_get port target in
  Demo_server.serve_once ~config s listening;
  let response = read_all client in
  Unix.close client;
  response

let test_slowloris_times_out () =
  with_server_socket (fun s listening port ->
      let config = { quiet_config with Demo_server.timeout_ms = 50 } in
      (* the client connects and then says nothing *)
      let mute = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect mute (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Demo_server.serve_once ~config s listening;
      let answer = read_all mute in
      Unix.close mute;
      check bool "408 answered" true (contains_substring answer "HTTP/1.0 408");
      (* the loop is still alive: a polite client is served next *)
      let response = roundtrip ~config s listening port "/stats?data=paper" in
      check bool "still serving" true (contains_substring response "HTTP/1.0 200 OK"))

let test_reset_client_is_dropped_not_fatal () =
  with_server_socket (fun s listening port ->
      let config, logs = logging_config () in
      let client = http_get port "/stats?data=paper" in
      (* SO_LINGER 0: closing sends RST instead of FIN, so the server's
         next read or write on this connection fails hard *)
      Unix.setsockopt_optint client Unix.SO_LINGER (Some 0);
      Unix.close client;
      Demo_server.serve_once ~config s listening;
      check bool "drop was logged" true (!logs <> []);
      let response = roundtrip ~config s listening port "/stats?data=paper" in
      check bool "still serving" true (contains_substring response "HTTP/1.0 200 OK"))

let test_junk_request_rejected () =
  with_server_socket (fun s listening port ->
      let client = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect client (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      write_all client "BREW /pot-1 HTCPCP/1.0\r\n\r\n";
      Demo_server.serve_once ~config:quiet_config s listening;
      let answer = read_all client in
      Unix.close client;
      check bool "400 answered" true (contains_substring answer "HTTP/1.0 400");
      check bool "names the request" true (contains_substring answer "unsupported");
      (* pipelined trailing junk after a good request is simply ignored *)
      let client2 = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect client2 (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      write_all client2 "GET /stats?data=paper HTTP/1.0\r\n\r\n\000\000garbage after the request";
      Demo_server.serve_once ~config:quiet_config s listening;
      let answer2 = read_all client2 in
      Unix.close client2;
      check bool "served despite trailing junk" true
        (contains_substring answer2 "HTTP/1.0 200 OK"))

let test_header_overflow_431 () =
  with_server_socket (fun s listening port ->
      let config = { quiet_config with Demo_server.max_header_bytes = 128 } in
      let client = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect client (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      write_all client "GET /stats?data=paper HTTP/1.0\r\n";
      write_all client ("X-Filler: " ^ String.make 256 'x' ^ "\r\n\r\n");
      Demo_server.serve_once ~config s listening;
      let answer = read_all client in
      Unix.close client;
      check bool "431 answered" true (contains_substring answer "HTTP/1.0 431"))

let test_expired_deadline_sheds_search () =
  let s = server () in
  let gone = Deadline.of_ms_opt (Some 0) in
  let r = Demo_server.handle ~deadline:gone s "/search?data=paper&q=store+texas&bound=6" in
  check int "503" 503 r.Demo_server.status;
  check bool "retry-after advertised" true
    (List.mem_assoc "Retry-After" r.Demo_server.headers);
  (* cheap routes are still served under the same dead budget *)
  check int "home still 200" 200 (Demo_server.handle ~deadline:gone s "/").Demo_server.status;
  check int "stats still 200" 200
    (Demo_server.handle ~deadline:gone s "/stats?data=paper").Demo_server.status

let test_degraded_page_served_not_cached () =
  let s = server () in
  let target = "/search?data=paper&q=store+texas&bound=6" in
  with_faults "pipeline.snippet:fail" (fun () ->
      let r = Demo_server.handle s target in
      check int "still 200 under pressure" 200 r.Demo_server.status;
      check bool "snippets tagged degraded" true
        (contains_substring r.Demo_server.body "class=\"degraded\"");
      check bool "degraded counter moved" true (Demo_server.degraded_served s > 0));
  let stats = Demo_server.handle s "/stats?data=paper" in
  check bool "stats reports degradation" true
    (contains_substring stats.Demo_server.body "degraded snippets served");
  (* once the pressure is gone the same target is recomputed in full:
     neither cache kept the degraded page *)
  let clean = Demo_server.handle s target in
  check int "clean 200" 200 clean.Demo_server.status;
  check bool "full snippets again" false
    (contains_substring clean.Demo_server.body "class=\"degraded\"")

let test_injected_fault_maps_to_503 () =
  let s = server () in
  with_faults "pipeline.search:fail" (fun () ->
      let r = Demo_server.handle s "/search?data=paper&q=store+texas" in
      check int "503" 503 r.Demo_server.status;
      check bool "retry-after advertised" true
        (List.mem_assoc "Retry-After" r.Demo_server.headers));
  let r = Demo_server.handle s "/search?data=paper&q=store+texas" in
  check int "recovers once the fault clears" 200 r.Demo_server.status

(* ------------------------------------------------------------------ *)
(* Server: observability (explain, slowlog, request-id correlation) *)

module Slowlog = Extract_obs.Slowlog
module Log = Extract_obs.Log
module Trace = Extract_obs.Trace

let test_explain_route () =
  let s = server () in
  let r = Demo_server.handle s "/explain?data=paper&q=store+texas&bound=6" in
  check int "200" 200 r.Demo_server.status;
  check bool "json by default" true
    (contains_substring r.Demo_server.content_type "application/json");
  List.iter
    (fun key ->
      check bool (key ^ " present") true (contains_substring r.Demo_server.body key))
    [
      "\"request_id\": \"q";
      "\"query\": \"store texas\"";
      "\"bound\": 6";
      "\"edges_used\"";
      "\"covered\"";
      "\"result_explains\"";
    ];
  let t = Demo_server.handle s "/explain?data=paper&q=store+texas&format=text" in
  check int "text form 200" 200 t.Demo_server.status;
  check bool "text form is plain" true
    (contains_substring t.Demo_server.content_type "text/plain");
  check int "unknown format" 400
    (Demo_server.handle s "/explain?data=paper&q=x&format=yaml").Demo_server.status;
  check int "missing q" 400 (Demo_server.handle s "/explain?data=paper").Demo_server.status;
  check int "unknown data" 404 (Demo_server.handle s "/explain?data=nope&q=x").Demo_server.status

let test_explain_not_page_cached () =
  let s = server () in
  let target = "/explain?data=paper&q=store+texas&bound=6" in
  ignore (Demo_server.handle s target);
  let hits_before, _ = Demo_server.cache_stats s in
  ignore (Demo_server.handle s target);
  let hits_after, _ = Demo_server.cache_stats s in
  check int "explain bypasses the page cache" hits_before hits_after;
  (* the second bundle records a snippet-cache hit instead of rerunning *)
  let r = Demo_server.handle s target in
  check bool "cache provenance recorded" true
    (contains_substring r.Demo_server.body "\"outcome\": \"hit\"")

let test_slowlog_route_captures_degraded_and_faulted () =
  Slowlog.reset ();
  let s = server () in
  (* a degraded query: the snippet stage fails in place, the page is 200 *)
  with_faults "pipeline.snippet:fail" (fun () ->
      let r = Demo_server.handle s "/search?data=paper&q=store+texas&bound=6" in
      check int "degraded page still 200" 200 r.Demo_server.status);
  (* a faulted query: the search stage raises, the request is 503 *)
  with_faults "pipeline.search:fail" (fun () ->
      let r = Demo_server.handle s "/search?data=paper&q=houston+suit" in
      check int "faulted request 503" 503 r.Demo_server.status);
  let r = Demo_server.handle s "/debug/slowlog" in
  check int "200" 200 r.Demo_server.status;
  check bool "json" true (contains_substring r.Demo_server.content_type "application/json");
  let _, ring = Slowlog.snapshot () in
  check bool "both queries in the ring" true
    (List.exists
       (fun e -> e.Slowlog.query = "store texas" && e.Slowlog.degraded > 0)
       ring
    && List.exists
         (fun e -> e.Slowlog.query = "houston suit" && e.Slowlog.faulted)
         ring);
  List.iter
    (fun needle ->
      check bool (needle ^ " served") true (contains_substring r.Demo_server.body needle))
    [ "\"store texas\""; "\"houston suit\""; "\"faulted\": true"; "\"rid\": \"q" ];
  (* every ring entry's rid is also served on the route *)
  List.iter
    (fun e ->
      check bool ("rid " ^ e.Slowlog.rid ^ " served") true
        (contains_substring r.Demo_server.body ("\"rid\": \"" ^ e.Slowlog.rid ^ "\"")))
    ring;
  Slowlog.reset ()

(* One request, one id: the access-log line, the pipeline's event-log
   lines, the trace spans and the explain bundle must all carry the same
   request id. *)
let rid_of_line line =
  let marker = "\"rid\": \"" in
  let ml = String.length marker in
  let rec find i =
    if i + ml > String.length line then None
    else if String.sub line i ml = marker then Some (String.sub line (i + ml) 7)
    else find (i + 1)
  in
  find 0

let test_request_id_propagation () =
  let s = server () in
  (* built before tracing starts: the build span is not part of any request *)
  let lines = ref [] in
  Log.set_sink (Some (fun l -> lines := l :: !lines));
  Log.set_level (Some Log.Info);
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ();
      Log.set_level None;
      Log.set_sink None)
    (fun () ->
      let r = Demo_server.handle s "/explain?data=paper&q=houston+woman&bound=8" in
      check int "200" 200 r.Demo_server.status;
      let line_with event =
        match
          List.find_opt (fun l -> contains_substring l ("\"event\": \"" ^ event ^ "\"")) !lines
        with
        | Some l -> l
        | None -> Alcotest.failf "no %s line logged" event
      in
      let access = line_with "http.access" in
      let rid =
        match rid_of_line access with
        | Some rid -> rid
        | None -> Alcotest.fail "access line carries no rid"
      in
      check bool "pipeline event shares the access line's rid" true
        (rid_of_line (line_with "query.done") = Some rid);
      check bool "explain bundle shares it" true
        (contains_substring r.Demo_server.body ("\"request_id\": \"" ^ rid ^ "\""));
      let spans = Trace.finished () in
      check bool "spans were recorded" true (spans <> []);
      List.iter
        (fun (sp : Trace.span) ->
          check bool (sp.Trace.name ^ " span shares it") true
            (sp.Trace.rid = Some rid))
        spans)

(* ------------------------------------------------------------------ *)
(* Courses dataset *)

let test_courses_shape () =
  let doc = Extract_datagen.Courses.generate Extract_datagen.Courses.default in
  let d = Document.of_document doc in
  let kinds = Extract_store.Node_kind.of_document d in
  let guide = Extract_store.Node_kind.dataguide kinds in
  let course = Option.get (Extract_store.Dataguide.find_path guide [ "courses"; "course" ]) in
  check bool "course is an entity" true
    (Extract_store.Node_kind.kind_of_path kinds course = Extract_store.Node_kind.Entity);
  check int "120 courses" 120 (Extract_store.Dataguide.instance_count guide course);
  (* code is unique and total: it is the mined key *)
  let keys = Extract_store.Key_miner.mine kinds in
  let key = Extract_store.Key_miner.key_path keys course in
  check bool "code mined as key" true
    (Option.map (Extract_store.Dataguide.path_tag_name guide) key = Some "code")

let test_courses_validates () =
  let doc = Extract_datagen.Courses.generate Extract_datagen.Courses.default in
  match doc.Extract_xml.Types.dtd with
  | None -> Alcotest.fail "courses should carry a DTD"
  | Some subset ->
    check bool "valid against own DTD" true
      (Extract_xml.Validator.is_valid (Extract_xml.Dtd.parse subset)
         doc.Extract_xml.Types.root)

let test_courses_pipeline () =
  let db =
    Pipeline.build
      (Document.of_document (Extract_datagen.Courses.generate Extract_datagen.Courses.default))
  in
  let results = Pipeline.run ~bound:6 db "course databases" in
  check bool "has results" true (results <> []);
  List.iter
    (fun (r : Pipeline.snippet_result) ->
      check bool "bound" true
        (Extract_snippet.Snippet_tree.edge_count
           r.Pipeline.selection.Extract_snippet.Selector.snippet
        <= 6))
    results

(* ------------------------------------------------------------------ *)
(* Server: live-store admin routes *)

let temp_live_dir () =
  let path = Filename.temp_file "extract_live_srv" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let live_server () =
  let db =
    Pipeline.build (Document.of_document (Extract_datagen.Paper_example.document ()))
  in
  let live = Extract_snippet.Live_corpus.open_dir (temp_live_dir ()) in
  Demo_server.create ~live (Corpus.of_list [ "paper", db ]), live

let post ?(body = "") s target =
  Demo_server.handle_request ~meth:Demo_server.Post ~body s target

let store_xml city name =
  Printf.sprintf "<store><city>%s</city><name>%s</name></store>" city name

let test_admin_add_search_remove () =
  let s, live = live_server () in
  let r = post ~body:(store_xml "Houston" "Soccer West") s "/admin/add?name=a.xml" in
  check int "add 200" 200 r.Demo_server.status;
  check bool "names member" true (contains_substring r.Demo_server.body "a.xml");
  let r = Demo_server.handle s "/live/search?q=soccer" in
  check int "live search 200" 200 r.Demo_server.status;
  check bool "hit content shows" true (contains_substring r.Demo_server.body "Soccer West");
  let r = Demo_server.handle s "/live" in
  check int "status 200" 200 r.Demo_server.status;
  check bool "status lists member" true (contains_substring r.Demo_server.body "a.xml");
  check int "remove 200" 200 (post s "/admin/remove?name=a.xml").Demo_server.status;
  check int "remove again 404" 404 (post s "/admin/remove?name=a.xml").Demo_server.status;
  Extract_snippet.Live_corpus.close live

let test_admin_update_invalidates_search () =
  (* live pages bypass the caches: a search after an update must see the
     new member even though the same target was served before *)
  let s, live = live_server () in
  ignore (post ~body:(store_xml "Austin" "Shared Alpha") s "/admin/add?name=a.xml");
  let before = Demo_server.handle s "/live/search?q=shared" in
  check bool "first member found" true (contains_substring before.Demo_server.body "Alpha");
  check bool "second member absent" false (contains_substring before.Demo_server.body "Beta");
  ignore (post ~body:(store_xml "Austin" "Shared Beta") s "/admin/add?name=b.xml");
  let after = Demo_server.handle s "/live/search?q=shared" in
  check bool "update visible" true (contains_substring after.Demo_server.body "Beta");
  Extract_snippet.Live_corpus.close live

let test_admin_compact () =
  let s, live = live_server () in
  ignore (post ~body:(store_xml "Dallas" "Gamma") s "/admin/add?name=a.xml");
  let r = post s "/admin/compact" in
  check int "compact 200" 200 r.Demo_server.status;
  check bool "names generation" true (contains_substring r.Demo_server.body "generation 1");
  let r = Demo_server.handle s "/live/search?q=gamma" in
  check bool "content survives compaction" true
    (contains_substring r.Demo_server.body "Gamma");
  Extract_snippet.Live_corpus.close live

let test_admin_method_discipline () =
  let s, live = live_server () in
  check int "GET on admin route" 405 (Demo_server.handle s "/admin/add?name=a").Demo_server.status;
  check int "POST on search" 405 (post s "/search?data=paper&q=x").Demo_server.status;
  check int "POST on unknown route" 405 (post s "/nope").Demo_server.status;
  check string "Allow header" "POST"
    (Option.value ~default:"-"
       (List.assoc_opt "Allow" (Demo_server.handle s "/admin/compact").Demo_server.headers));
  Extract_snippet.Live_corpus.close live

let test_admin_bad_input () =
  let s, live = live_server () in
  check int "missing name" 400 (post ~body:"<a/>" s "/admin/add").Demo_server.status;
  check int "empty body" 400 (post s "/admin/add?name=a.xml").Demo_server.status;
  check int "unparsable xml" 400
    (post ~body:"<a><b></a>" s "/admin/add?name=a.xml").Demo_server.status;
  check int "bad member name" 400
    (post ~body:"<a/>" s "/admin/add?name=a/b").Demo_server.status;
  (* none of the rejected updates may have reached the store *)
  check bool "store untouched" true (Extract_snippet.Live_corpus.names live = []);
  Extract_snippet.Live_corpus.close live

let test_admin_without_live_store () =
  let s = server () in
  check int "add 404" 404 (post ~body:"<a/>" s "/admin/add?name=a").Demo_server.status;
  check int "compact 404" 404 (post s "/admin/compact").Demo_server.status;
  check int "live status 404" 404 (Demo_server.handle s "/live").Demo_server.status;
  check int "live search 404" 404 (Demo_server.handle s "/live/search?q=x").Demo_server.status

(* ------------------------------------------------------------------ *)
(* Server: per-request observability on the fan-out routes *)

(* Regression: /shards/search and /live/search must flow through the
   same per-request observability as /search — every served request
   emits one http.access line stamped with its request id. *)
let test_fanout_routes_access_logged () =
  let module Log = Extract_obs.Log in
  let doc = Document.of_document (Extract_datagen.Paper_example.document ()) in
  let sharded_srv =
    Demo_server.create
      ~sharded:(Extract_snippet.Shard_set.split ~shards:2 doc)
      (Corpus.of_list [ "paper", Pipeline.build doc ])
  in
  let live_srv, live = live_server () in
  ignore (post ~body:(store_xml "Austin" "Logged Store") live_srv "/admin/add?name=a.xml");
  let lines = ref [] in
  Log.set_sink (Some (fun l -> lines := l :: !lines));
  Log.set_level (Some Log.Info);
  Fun.protect
    ~finally:(fun () ->
      Log.set_level None;
      Log.set_sink None;
      Extract_snippet.Live_corpus.close live)
    (fun () ->
      check int "shards search 200" 200
        (Demo_server.handle sharded_srv "/shards/search?q=store+texas").Demo_server.status;
      check int "live search 200" 200
        (Demo_server.handle live_srv "/live/search?q=logged").Demo_server.status;
      let access =
        List.filter (fun l -> contains_substring l "\"event\": \"http.access\"") !lines
      in
      check int "one access line per fan-out request" 2 (List.length access);
      List.iter
        (fun l ->
          check bool "access line carries a request id" true
            (contains_substring l "\"rid\": \"q"))
        access)

let suites =
  [
    ( "util.lru",
      [
        Alcotest.test_case "basic" `Quick test_lru_basic;
        Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
        Alcotest.test_case "evictions counted" `Quick test_lru_evictions_counted;
        Alcotest.test_case "replace" `Quick test_lru_replace;
        Alcotest.test_case "find_or_add" `Quick test_lru_find_or_add;
        Alcotest.test_case "remove/clear" `Quick test_lru_remove_clear;
        Alcotest.test_case "capacity one" `Quick test_lru_capacity_one;
        Alcotest.test_case "model stress" `Quick test_lru_stress_against_model;
      ] );
    ( "server.url",
      [
        Alcotest.test_case "decode" `Quick test_url_decode;
        Alcotest.test_case "parse target" `Quick test_parse_target;
      ] );
    ( "server.handler",
      [
        Alcotest.test_case "home" `Quick test_handle_home;
        Alcotest.test_case "search" `Quick test_handle_search;
        Alcotest.test_case "page cache" `Quick test_handle_search_caches;
        Alcotest.test_case "complete" `Quick test_handle_complete;
        Alcotest.test_case "stats" `Quick test_handle_stats;
        Alcotest.test_case "metrics" `Quick test_handle_metrics;
        Alcotest.test_case "stats json" `Quick test_handle_stats_json;
        Alcotest.test_case "errors" `Quick test_handle_errors;
      ] );
    ( "server.socket",
      [
        Alcotest.test_case "roundtrip" `Quick test_socket_roundtrip;
        Alcotest.test_case "404" `Quick test_socket_404;
      ] );
    ( "server.resilience",
      [
        Alcotest.test_case "request line forms" `Quick test_read_request_line_forms;
        Alcotest.test_case "request line bound" `Quick test_read_request_line_bound_exact;
        Alcotest.test_case "slowloris" `Quick test_slowloris_times_out;
        Alcotest.test_case "reset client dropped" `Quick test_reset_client_is_dropped_not_fatal;
        Alcotest.test_case "junk request" `Quick test_junk_request_rejected;
        Alcotest.test_case "header overflow" `Quick test_header_overflow_431;
        Alcotest.test_case "expired deadline sheds" `Quick test_expired_deadline_sheds_search;
        Alcotest.test_case "degraded page" `Quick test_degraded_page_served_not_cached;
        Alcotest.test_case "injected fault 503" `Quick test_injected_fault_maps_to_503;
      ] );
    ( "server.observability",
      [
        Alcotest.test_case "explain route" `Quick test_explain_route;
        Alcotest.test_case "explain not page cached" `Quick test_explain_not_page_cached;
        Alcotest.test_case "slowlog route" `Quick test_slowlog_route_captures_degraded_and_faulted;
        Alcotest.test_case "request id propagation" `Quick test_request_id_propagation;
        Alcotest.test_case "fan-out routes access-logged" `Quick
          test_fanout_routes_access_logged;
      ] );
    ( "server.live",
      [
        Alcotest.test_case "add/search/remove" `Quick test_admin_add_search_remove;
        Alcotest.test_case "update visible to search" `Quick
          test_admin_update_invalidates_search;
        Alcotest.test_case "compact" `Quick test_admin_compact;
        Alcotest.test_case "method discipline" `Quick test_admin_method_discipline;
        Alcotest.test_case "bad input rejected" `Quick test_admin_bad_input;
        Alcotest.test_case "no live store 404" `Quick test_admin_without_live_store;
      ] );
    ( "datagen.courses",
      [
        Alcotest.test_case "shape" `Quick test_courses_shape;
        Alcotest.test_case "validates" `Quick test_courses_validates;
        Alcotest.test_case "pipeline" `Quick test_courses_pipeline;
      ] );
  ]
