(* Tests for the crash-safe live corpus: journal framing and torn-tail
   recovery, snapshot generations, the visibility mask, fault-injected
   crash windows, and envelope damage edge cases. *)

module Codec = Extract_store.Codec
module Persist = Extract_store.Persist
module Document = Extract_store.Document
module Inverted_index = Extract_store.Inverted_index
module Journal = Extract_store.Journal
module Live = Extract_store.Live
module Engine = Extract_search.Engine
module Query = Extract_search.Query
module Result_tree = Extract_search.Result_tree
module Faults = Extract_util.Faults
open Extract_snippet

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string
let string_list = Alcotest.(list string)

let temp_dir () =
  let dir = Filename.temp_file "extract_live" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  data

let flip_byte path pos =
  let bytes = Bytes.of_string (read_file path) in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0xff));
  write_file path (Bytes.to_string bytes)

let doc_a = "<doc><title>alpha storm</title><body>rivers and rain</body></doc>"
let doc_b = "<doc><title>beta storm</title><body>sunshine</body></doc>"
let doc_c = "<doc><title>gamma calm</title><body>rivers again</body></doc>"

let sample_records =
  [
    Journal.Add_doc { name = "a.xml"; xml = doc_a };
    Journal.Remove_doc "b.xml";
    Journal.Checkpoint 3;
    Journal.Add_doc { name = "c.xml"; xml = doc_c };
  ]

let record_eq (x : Journal.record) (y : Journal.record) =
  match x, y with
  | Add_doc a, Add_doc b -> String.equal a.name b.name && String.equal a.xml b.xml
  | Remove_doc a, Remove_doc b -> String.equal a b
  | Checkpoint a, Checkpoint b -> a = b
  | (Add_doc _ | Remove_doc _ | Checkpoint _), _ -> false

let write_journal dir records =
  let path = Filename.concat dir "journal.wal" in
  let w = Journal.open_append path in
  List.iter (Journal.append w) records;
  Journal.close w;
  path

(* ------------------------------------------------------------------ *)
(* Journal framing *)

let test_journal_roundtrip () =
  let dir = temp_dir () in
  let path = write_journal dir sample_records in
  let records, tail = Journal.read path in
  check bool "complete" true (tail = Journal.Complete);
  check int "count" (List.length sample_records) (List.length records);
  check bool "records equal" true (List.for_all2 record_eq sample_records records)

let test_journal_append_reopens () =
  let dir = temp_dir () in
  let path = write_journal dir [ List.hd sample_records ] in
  let w = Journal.open_append path in
  Journal.append w (Journal.Checkpoint 7);
  Journal.close w;
  let records, tail = Journal.read path in
  check bool "complete" true (tail = Journal.Complete);
  check int "count" 2 (List.length records);
  check bool "checkpoint survives" true (Journal.last_checkpoint records = Some 7)

let test_journal_missing_file () =
  let dir = temp_dir () in
  let records, tail = Journal.read (Filename.concat dir "journal.wal") in
  check bool "no records" true (records = [] && tail = Journal.Complete)

let test_journal_empty_file () =
  let dir = temp_dir () in
  let path = Filename.concat dir "journal.wal" in
  write_file path "";
  let records, tail = Journal.read path in
  check bool "no records" true (records = [] && tail = Journal.Complete)

let test_journal_header_only () =
  let dir = temp_dir () in
  let path = write_journal dir [] in
  let records, tail = Journal.read path in
  check bool "no records" true (records = [] && tail = Journal.Complete)

let test_journal_short_header () =
  let dir = temp_dir () in
  let path = Filename.concat dir "journal.wal" in
  write_file path "XTR";
  match Journal.read path with
  | records, Journal.Torn { offset; _ } ->
    check bool "nothing decoded" true (records = []);
    check int "torn at origin" 0 offset
  | _, Journal.Complete -> Alcotest.fail "short header read as complete"

let test_journal_bad_magic () =
  let dir = temp_dir () in
  let path = Filename.concat dir "journal.wal" in
  write_file path "NOTAWALX-and-then-some-bytes";
  check bool "corrupt" true
    (match Journal.read path with
    | _ -> false
    | exception Codec.Corrupt _ -> true)

(* Cut the journal at every possible byte length: the reader must always
   return a clean prefix of the records, flagging anything else as a torn
   tail that {!Journal.truncate} repairs. *)
let test_journal_torn_tail_sweep () =
  let dir = temp_dir () in
  let path = write_journal dir sample_records in
  let full = read_file path in
  let total = List.length sample_records in
  for cut = 0 to String.length full - 1 do
    let cut_path = Filename.concat dir (Printf.sprintf "cut-%d.wal" cut) in
    write_file cut_path (String.sub full 0 cut);
    let records, tail = Journal.read cut_path in
    let n = List.length records in
    check bool (Printf.sprintf "cut %d: prefix" cut) true (n <= total);
    check bool (Printf.sprintf "cut %d: records intact" cut) true
      (List.for_all2 record_eq (List.filteri (fun i _ -> i < n) sample_records) records);
    match tail with
    | Journal.Complete -> check bool (Printf.sprintf "cut %d: boundary" cut) true (n < total || cut = String.length full)
    | Journal.Torn { offset; _ } ->
      check bool (Printf.sprintf "cut %d: torn offset sane" cut) true (offset <= cut);
      Journal.truncate cut_path offset;
      let records', tail' = Journal.read cut_path in
      check bool (Printf.sprintf "cut %d: repaired" cut) true (tail' = Journal.Complete);
      check int (Printf.sprintf "cut %d: repair keeps records" cut) n (List.length records')
  done

let test_journal_one_extra_byte () =
  let dir = temp_dir () in
  let path = write_journal dir sample_records in
  let full = read_file path in
  write_file path (full ^ "\x2a");
  match Journal.read path with
  | records, Journal.Torn { offset; _ } ->
    check int "all records" (List.length sample_records) (List.length records);
    check int "torn exactly at old end" (String.length full) offset;
    Journal.truncate path offset;
    let _, tail = Journal.read path in
    check bool "repaired" true (tail = Journal.Complete)
  | _, Journal.Complete -> Alcotest.fail "extra byte read as complete"

let test_journal_midfile_corruption_fatal () =
  let dir = temp_dir () in
  let path = write_journal dir sample_records in
  (* flip a byte well inside the first record's payload: damage before
     the tail must never be silently dropped *)
  flip_byte path 30;
  check bool "corrupt" true
    (match Journal.read path with
    | _ -> false
    | exception Codec.Corrupt _ -> true)

let test_journal_reset () =
  let dir = temp_dir () in
  let path = write_journal dir sample_records in
  Journal.reset path [ Journal.Checkpoint 9 ];
  let records, tail = Journal.read path in
  check bool "complete" true (tail = Journal.Complete);
  check bool "only the checkpoint" true
    (match records with [ Journal.Checkpoint 9 ] -> true | _ -> false)

let test_journal_replay_helpers () =
  let records = sample_records in
  check bool "last checkpoint" true (Journal.last_checkpoint records = Some 3);
  let suffix = Journal.records_after_checkpoint records in
  check int "suffix size" 1 (List.length suffix);
  check bool "suffix content" true
    (match suffix with [ Journal.Add_doc { name = "c.xml"; _ } ] -> true | _ -> false);
  check bool "no checkpoint" true (Journal.last_checkpoint [] = None);
  check int "no checkpoint suffix" 2
    (List.length
       (Journal.records_after_checkpoint
          [ Journal.Remove_doc "x"; Journal.Remove_doc "y" ]))

(* ------------------------------------------------------------------ *)
(* Envelope damage edge cases *)

let test_envelope_zero_length_file () =
  let path = Filename.temp_file "extract_live" ".arena" in
  write_file path "";
  check bool "truncated" true
    (match Persist.load path with
    | _ -> false
    | exception Codec.Truncated _ -> true)

let test_envelope_magic_only () =
  let path = Filename.temp_file "extract_live" ".arena" in
  let w = Codec.writer () in
  Codec.write_string w Persist.magic;
  write_file path (Codec.contents w);
  check bool "truncated" true
    (match Persist.load path with
    | _ -> false
    | exception Codec.Truncated _ -> true)

let test_envelope_fingerprint_mismatch_with_valid_seals () =
  (* both artifacts seal correctly; only the cross-file fingerprint
     disagrees — the last line of defence against mixed-up pairs *)
  let doc1 = Document.load_string doc_a in
  let doc2 = Document.load_string doc_b in
  let encoded = Persist.encode_index (Inverted_index.build doc1) in
  check bool "own doc accepted" true
    (match Persist.decode_index ~doc:doc1 encoded with _ -> true);
  check bool "foreign doc rejected" true
    (match Persist.decode_index ~doc:doc2 encoded with
    | _ -> false
    | exception Codec.Corrupt reason ->
      (* the message should blame the pairing, not the bytes *)
      let has s sub =
        let ls = String.length s and lb = String.length sub in
        let rec loop i = i + lb <= ls && (String.sub s i lb = sub || loop (i + 1)) in
        loop 0
      in
      has reason "fingerprint")

(* ------------------------------------------------------------------ *)
(* Crash fault specs *)

let with_faults spec f =
  match Faults.configure spec with
  | Error e -> Alcotest.failf "bad fault spec %S: %s" spec e
  | Ok () -> Fun.protect ~finally:Faults.clear f

let test_crash_spec_parses () =
  with_faults "x.y:crash" (fun () ->
      check bool "configured" true
        (List.exists (fun (p, _) -> String.equal p "x.y") (Faults.configured ())));
  with_faults "x.y:crash=3" (fun () -> check bool "armed" true (Faults.active ()));
  check bool "crash=0 rejected" true
    (match Faults.configure "x.y:crash=0" with Error _ -> true | Ok () -> false);
  check bool "junk rejected" true
    (match Faults.configure "x.y:boom" with Error _ -> true | Ok () -> false);
  Faults.clear ()

(* ------------------------------------------------------------------ *)
(* Live store *)

let sources lc q =
  Live_corpus.run lc q
  |> List.map (fun (h : Live_corpus.hit) -> h.Live_corpus.source)
  |> List.sort_uniq String.compare

let test_live_fresh_store_is_empty () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  check int "generation 0" 0 (Live_corpus.generation lc);
  check string_list "no members" [] (Live_corpus.names lc);
  check string_list "no hits" [] (sources lc "storm");
  Live_corpus.close lc

let test_live_add_and_query () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  Live_corpus.add lc ~name:"b.xml" ~xml:doc_b;
  check string_list "members" [ "a.xml"; "b.xml" ] (Live_corpus.names lc);
  check string_list "storm in both" [ "a.xml"; "b.xml" ] (sources lc "storm");
  check string_list "rivers only in a" [ "a.xml" ] (sources lc "rivers");
  let hits = Live_corpus.run lc "storm" in
  check bool "snippets attached" true
    (List.for_all
       (fun (h : Live_corpus.hit) -> not h.snippet.Pipeline.degraded)
       hits);
  Live_corpus.close lc

let test_live_reopen_replays_journal () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  Live_corpus.add lc ~name:"b.xml" ~xml:doc_b;
  Live_corpus.close lc;
  let lc = Live_corpus.open_dir dir in
  check string_list "members recovered" [ "a.xml"; "b.xml" ] (Live_corpus.names lc);
  check string_list "content recovered" [ "a.xml" ] (sources lc "rivers");
  Live_corpus.close lc

let test_live_replace_shadows () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_b;
  check string_list "one member" [ "a.xml" ] (Live_corpus.names lc);
  check string_list "old content gone" [] (sources lc "rivers");
  check string_list "new content" [ "a.xml" ] (sources lc "sunshine");
  Live_corpus.close lc;
  let lc = Live_corpus.open_dir dir in
  check string_list "replacement survives reopen" [] (sources lc "rivers");
  check string_list "new content survives" [ "a.xml" ] (sources lc "sunshine");
  Live_corpus.close lc

let test_live_remove () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  Live_corpus.add lc ~name:"b.xml" ~xml:doc_b;
  check bool "removed" true (Live_corpus.remove lc "a.xml");
  check bool "absent now" false (Live_corpus.remove lc "a.xml");
  check string_list "member gone" [ "b.xml" ] (Live_corpus.names lc);
  check string_list "content gone" [] (sources lc "rivers");
  Live_corpus.close lc;
  let lc = Live_corpus.open_dir dir in
  check string_list "removal survives reopen" [ "b.xml" ] (Live_corpus.names lc);
  Live_corpus.close lc

let test_live_compact_preserves_content () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  Live_corpus.add lc ~name:"b.xml" ~xml:doc_b;
  Live_corpus.add lc ~name:"c.xml" ~xml:doc_c;
  ignore (Live_corpus.remove lc "b.xml");
  let before = sources lc "rivers" in
  let gen = Live_corpus.compact lc in
  check int "generation 1" 1 gen;
  check string_list "same hits after compaction" before (sources lc "rivers");
  check string_list "members" [ "a.xml"; "c.xml" ] (Live_corpus.names lc);
  (* the journal is now a single checkpoint and older generations are gone *)
  let records, tail = Journal.read (Live.journal_path dir) in
  check bool "journal reset" true
    (tail = Journal.Complete
    && match records with [ Journal.Checkpoint 1 ] -> true | _ -> false);
  check bool "one generation on disk" true (Live.generations dir = [ 1 ]);
  Live_corpus.close lc;
  let lc = Live_corpus.open_dir dir in
  check int "reopens at generation 1" 1 (Live_corpus.generation lc);
  check string_list "content after reopen" before (sources lc "rivers");
  Live_corpus.close lc

let test_live_tombstone_hides_base_member () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  Live_corpus.add lc ~name:"c.xml" ~xml:doc_c;
  ignore (Live_corpus.compact lc);
  (* both members are base members now; removing one exercises the mask *)
  check bool "removed from base" true (Live_corpus.remove lc "a.xml");
  check string_list "masked out" [ "c.xml" ] (sources lc "rivers");
  Live_corpus.close lc;
  let lc = Live_corpus.open_dir dir in
  check string_list "mask survives reopen" [ "c.xml" ] (sources lc "rivers");
  Live_corpus.close lc

let test_live_updates_after_compaction () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  ignore (Live_corpus.compact lc);
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_b;
  check string_list "base member shadowed by delta" [] (sources lc "rivers");
  check string_list "delta content" [ "a.xml" ] (sources lc "sunshine");
  ignore (Live_corpus.compact lc);
  check int "generation 2" 2 (Live_corpus.generation lc);
  check string_list "still shadowed" [] (sources lc "rivers");
  Live_corpus.close lc

let test_live_apply_crash_window_recovers_post_state () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  (* the fault fires after the journal fsync, before the in-memory apply:
     the in-process equivalent of dying between those two steps *)
  with_faults "live.apply:once" (fun () ->
      check bool "injected" true
        (match Live_corpus.add lc ~name:"b.xml" ~xml:doc_b with
        | () -> false
        | exception Faults.Injected _ -> true));
  check string_list "memory never saw the add" [ "a.xml" ] (Live_corpus.names lc);
  Live_corpus.close lc;
  let lc = Live_corpus.open_dir dir in
  check string_list "journal had it: post-state" [ "a.xml"; "b.xml" ]
    (Live_corpus.names lc);
  Live_corpus.close lc

let test_live_snapshot_write_crash_window_keeps_pre_state () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  with_faults "snapshot.write:once" (fun () ->
      check bool "injected" true
        (match Live_corpus.compact lc with
        | _ -> false
        | exception Faults.Injected _ -> true));
  Live_corpus.close lc;
  let lc = Live_corpus.open_dir dir in
  check int "still generation 0" 0 (Live_corpus.generation lc);
  check string_list "content intact" [ "a.xml" ] (Live_corpus.names lc);
  Live_corpus.close lc

let test_live_rename_crash_window_prunes_stray_tmp () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  with_faults "snapshot.rename:once" (fun () ->
      check bool "injected" true
        (match Live_corpus.compact lc with
        | _ -> false
        | exception Faults.Injected _ -> true));
  Live_corpus.close lc;
  check bool "tmp survivor present" true
    (Sys.file_exists (Live.snapshot_path dir 1 ^ ".tmp"));
  let warnings = ref [] in
  let lc = Live_corpus.open_dir ~on_warning:(fun w -> warnings := w :: !warnings) dir in
  check int "pre-state" 0 (Live_corpus.generation lc);
  check string_list "content intact" [ "a.xml" ] (Live_corpus.names lc);
  check bool "stray removed" false (Sys.file_exists (Live.snapshot_path dir 1 ^ ".tmp"));
  check bool "stray reported" true
    (List.exists (fun w -> String.length w > 0) !warnings);
  Live_corpus.close lc

let test_live_reset_crash_window_heals_stale_journal () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  Live_corpus.add lc ~name:"b.xml" ~xml:doc_b;
  (* journal.reset fires after the new snapshot generation is sealed but
     before the journal is rewritten: the directory holds gen 1 plus a
     journal whose records are already inside it *)
  with_faults "journal.reset:once" (fun () ->
      check bool "injected" true
        (match Live_corpus.compact lc with
        | _ -> false
        | exception Faults.Injected _ -> true));
  Live_corpus.close lc;
  let warnings = ref [] in
  let lc = Live_corpus.open_dir ~on_warning:(fun w -> warnings := w :: !warnings) dir in
  check int "post-state generation" 1 (Live_corpus.generation lc);
  check string_list "post-state content" [ "a.xml"; "b.xml" ] (Live_corpus.names lc);
  check bool "stale journal reported" true (!warnings <> []);
  (* the self-heal rewrote the journal to a bare checkpoint *)
  let records, _ = Journal.read (Live.journal_path dir) in
  check bool "journal healed" true
    (match records with [ Journal.Checkpoint 1 ] -> true | _ -> false);
  Live_corpus.close lc

let test_live_generation_fallback () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  ignore (Live_corpus.compact lc);
  Live_corpus.close lc;
  (* a later generation that never finished decoding: recovery must warn
     and fall back to generation 1 *)
  write_file (Live.snapshot_path dir 2) "garbage, not an envelope";
  let warnings = ref [] in
  let lc = Live_corpus.open_dir ~on_warning:(fun w -> warnings := w :: !warnings) dir in
  check int "fell back" 1 (Live_corpus.generation lc);
  check string_list "content intact" [ "a.xml" ] (Live_corpus.names lc);
  check bool "fallback reported" true (!warnings <> []);
  Live_corpus.close lc

let test_live_all_snapshots_corrupt_is_fatal () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  ignore (Live_corpus.compact lc);
  Live_corpus.close lc;
  flip_byte (Live.snapshot_path dir 1) 40;
  check bool "corrupt" true
    (match Live_corpus.open_dir ~on_warning:(fun _ -> ()) dir with
    | _ -> false
    | exception Codec.Corrupt _ -> true)

let test_live_rejects_bad_input () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  check bool "unparsable XML rejected" true
    (match Live_corpus.add lc ~name:"bad.xml" ~xml:"<oops" with
    | () -> false
    | exception Extract_xml.Error.Parse_error _ -> true);
  check bool "bad name rejected" true
    (match Live_corpus.add lc ~name:"" ~xml:doc_a with
    | () -> false
    | exception Invalid_argument _ -> true);
  check string_list "nothing got in" [] (Live_corpus.names lc);
  Live_corpus.close lc

let test_live_read_only_store_rejects_updates () =
  let dir = temp_dir () in
  let lc = Live_corpus.open_dir dir in
  Live_corpus.add lc ~name:"a.xml" ~xml:doc_a;
  Live_corpus.close lc;
  let lc = Live_corpus.open_dir ~read_only:true dir in
  check string_list "readable" [ "a.xml" ] (Live_corpus.names lc);
  check bool "add rejected" true
    (match Live_corpus.add lc ~name:"b.xml" ~xml:doc_b with
    | () -> false
    | exception Invalid_argument _ -> true);
  Live_corpus.close lc

(* ------------------------------------------------------------------ *)
(* Visibility mask *)

let test_mask_filters_postings () =
  let doc =
    Document.load_string "<corpus><a><t>storm</t></a><b><t>storm rivers</t></b></corpus>"
  in
  let index = Inverted_index.build doc in
  let kinds =
    Extract_store.Node_kind.classify (Extract_store.Dataguide.build doc)
  in
  let member_roots = Document.children doc 0 in
  let intervals =
    List.map (fun r -> r, Document.subtree_last doc r) member_roots
  in
  let run mask = Engine.run ~mask index kinds (Query.of_string "storm") in
  let all = Engine.run index kinds (Query.of_string "storm") in
  check bool "unmasked finds both" true (List.length all >= 2);
  (match intervals with
  | [ a_iv; b_iv ] ->
    let only_a = run [| a_iv |] in
    check bool "mask to a: results inside a" true
      (only_a <> []
      && List.for_all
           (fun r ->
             let root = Result_tree.root r in
             fst a_iv <= root && root <= snd a_iv)
           only_a);
    let only_b = run [| b_iv |] in
    check bool "mask to b: results inside b" true
      (only_b <> []
      && List.for_all
           (fun r ->
             let root = Result_tree.root r in
             fst b_iv <= root && root <= snd b_iv)
           only_b)
  | _ -> Alcotest.fail "expected two member subtrees");
  check bool "empty mask hides everything" true (run [||] = [])

let suites =
  [
    ( "live.journal",
      [
        Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
        Alcotest.test_case "append reopens" `Quick test_journal_append_reopens;
        Alcotest.test_case "missing file" `Quick test_journal_missing_file;
        Alcotest.test_case "empty file" `Quick test_journal_empty_file;
        Alcotest.test_case "header only" `Quick test_journal_header_only;
        Alcotest.test_case "short header" `Quick test_journal_short_header;
        Alcotest.test_case "bad magic" `Quick test_journal_bad_magic;
        Alcotest.test_case "torn tail sweep" `Quick test_journal_torn_tail_sweep;
        Alcotest.test_case "one extra byte" `Quick test_journal_one_extra_byte;
        Alcotest.test_case "mid-file corruption fatal" `Quick
          test_journal_midfile_corruption_fatal;
        Alcotest.test_case "reset" `Quick test_journal_reset;
        Alcotest.test_case "replay helpers" `Quick test_journal_replay_helpers;
      ] );
    ( "live.envelope",
      [
        Alcotest.test_case "zero-length file" `Quick test_envelope_zero_length_file;
        Alcotest.test_case "magic only" `Quick test_envelope_magic_only;
        Alcotest.test_case "fingerprint mismatch, valid seals" `Quick
          test_envelope_fingerprint_mismatch_with_valid_seals;
        Alcotest.test_case "crash spec parses" `Quick test_crash_spec_parses;
      ] );
    ( "live.store",
      [
        Alcotest.test_case "fresh store is empty" `Quick test_live_fresh_store_is_empty;
        Alcotest.test_case "add and query" `Quick test_live_add_and_query;
        Alcotest.test_case "reopen replays journal" `Quick test_live_reopen_replays_journal;
        Alcotest.test_case "replace shadows" `Quick test_live_replace_shadows;
        Alcotest.test_case "remove" `Quick test_live_remove;
        Alcotest.test_case "compact preserves content" `Quick
          test_live_compact_preserves_content;
        Alcotest.test_case "tombstone hides base member" `Quick
          test_live_tombstone_hides_base_member;
        Alcotest.test_case "updates after compaction" `Quick
          test_live_updates_after_compaction;
        Alcotest.test_case "apply crash window: post-state" `Quick
          test_live_apply_crash_window_recovers_post_state;
        Alcotest.test_case "snapshot-write crash window: pre-state" `Quick
          test_live_snapshot_write_crash_window_keeps_pre_state;
        Alcotest.test_case "rename crash window prunes stray tmp" `Quick
          test_live_rename_crash_window_prunes_stray_tmp;
        Alcotest.test_case "reset crash window heals stale journal" `Quick
          test_live_reset_crash_window_heals_stale_journal;
        Alcotest.test_case "generation fallback" `Quick test_live_generation_fallback;
        Alcotest.test_case "all snapshots corrupt is fatal" `Quick
          test_live_all_snapshots_corrupt_is_fatal;
        Alcotest.test_case "rejects bad input" `Quick test_live_rejects_bad_input;
        Alcotest.test_case "read-only rejects updates" `Quick
          test_live_read_only_store_rejects_updates;
      ] );
    ( "live.mask",
      [ Alcotest.test_case "filters postings" `Quick test_mask_filters_postings ] );
  ]
