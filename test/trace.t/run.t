The snippet command's --trace flag records spans around load, search and
snippet generation and prints the span tree to stderr after the results.
Durations vary run to run, so normalize them; the tree shape (names,
nesting) is stable. Spans opened inside the query's request-id scope
carry the id; load and build happen before any query exists, so they
don't.

  $ extract gen paper -o paper.xml
  wrote paper.xml

  $ extract snippet paper.xml "store texas" -n 1 --trace 2>trace.txt >/dev/null
  $ sed -E 's/ +[0-9]+(\.[0-9]+)?(ns|us|ms|s)$/ <dur>/' trace.txt
  trace:
  cli.load <dur>
    pipeline.build <dur>
  cli.run [q000001] <dur>
    pipeline.search [q000001] <dur>
      eval_ctx.resolve [q000001] <dur>
    pipeline.snippet [q000001] <dur>

Without --trace, nothing is recorded and stderr stays clean:

  $ extract snippet paper.xml "store texas" -n 1 2>trace.txt >/dev/null
  $ wc -c < trace.txt | tr -d ' '
  0
