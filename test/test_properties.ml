(* Property-based tests (qcheck, registered through qcheck-alcotest).

   Random XML documents are generated over a small tag/value alphabet so
   keyword matches, repeated siblings (entities) and shared values
   (dominant features) all occur with useful probability. *)

module Xml = Extract_xml.Types
module Printer = Extract_xml.Printer
module Parser = Extract_xml.Parser
module Document = Extract_store.Document
module Dewey = Extract_store.Dewey
module Node_kind = Extract_store.Node_kind
module Inverted_index = Extract_store.Inverted_index
module Key_miner = Extract_store.Key_miner
module Query = Extract_search.Query
module Slca = Extract_search.Slca
module Elca = Extract_search.Elca
module Lca = Extract_search.Lca
module Result_tree = Extract_search.Result_tree
module Feature = Extract_snippet.Feature
module Ilist = Extract_snippet.Ilist
module Selector = Extract_snippet.Selector
module Optimal = Extract_snippet.Optimal
module Snippet_tree = Extract_snippet.Snippet_tree
module Text_baseline = Extract_snippet.Text_baseline

open QCheck

let tags = [| "a"; "b"; "c"; "d"; "item" |]
let words = [| "x"; "y"; "z"; "texas"; "houston"; "suit" |]

(* ------------------------------------------------------------------ *)
(* Random XML trees *)

let gen_tree : Xml.t Gen.t =
  let open Gen in
  let tag = oneofa tags in
  let word = oneofa words in
  sized_size (int_range 1 40) @@ fix (fun self n ->
      if n <= 1 then
        oneof
          [
            map2 (fun t w -> Xml.leaf t w) tag word;
            map (fun t -> Xml.element t []) tag;
          ]
      else
        let* t = tag in
        let* width = int_range 1 (min 4 n) in
        let* children = list_repeat width (self (max 1 ((n - 1) / width))) in
        return (Xml.element t children))

let arb_tree = make ~print:(fun t -> Printer.to_string ~indent:None t) gen_tree

let arb_doc =
  make
    ~print:(fun t -> Printer.to_string ~indent:None t)
    (Gen.map (fun t ->
         match t with
         | Xml.Element _ -> t
         | Xml.Text _ -> Xml.element "root" [ t ])
       gen_tree)

let doc_of tree = Document.of_xml tree

let keywords_gen = Gen.(list_size (int_range 1 3) (oneofa (Array.append tags words)))

let arb_doc_and_keywords =
  make
    ~print:(fun (t, kws) ->
      Printer.to_string ~indent:None t ^ " / " ^ String.concat "," kws)
    Gen.(pair (map (fun t ->
         match t with
         | Xml.Element _ -> t
         | Xml.Text _ -> Xml.element "root" [ t ])
       gen_tree) keywords_gen)

(* ------------------------------------------------------------------ *)
(* XML round trip *)

let prop_print_parse_id =
  Test.make ~name:"printer/parser round trip (compact)" ~count:300 arb_tree (fun t ->
      let printed = Printer.to_string ~indent:None t in
      Xml.equal t (Parser.parse printed))

let prop_print_parse_pretty =
  Test.make ~name:"printer/parser round trip (pretty)" ~count:300 arb_tree (fun t ->
      let printed = Printer.to_string ~indent:(Some 2) t in
      Xml.equal t (Parser.parse printed))

(* ------------------------------------------------------------------ *)
(* Arena invariants *)

let prop_arena_invariants =
  Test.make ~name:"document arena invariants" ~count:300 arb_doc (fun t ->
      let d = doc_of t in
      let n = Document.node_count d in
      let ok = ref true in
      for node = 0 to n - 1 do
        (* parent is before child, depth is parent's + 1 *)
        (match Document.parent d node with
        | Some p ->
          if p >= node then ok := false;
          if Document.depth d node <> Document.depth d p + 1 then ok := false;
          (* child interval inside parent interval *)
          if Document.subtree_last d node > Document.subtree_last d p then ok := false
        | None -> if node <> 0 then ok := false);
        (* size = 1 + sum of child sizes *)
        let child_sum = ref 0 in
        Document.iter_children d node (fun c -> child_sum := !child_sum + Document.subtree_size d c);
        if Document.subtree_size d node <> 1 + !child_sum then ok := false
      done;
      !ok)

let prop_dewey_lca_agrees =
  Test.make ~name:"dewey lca = parent-walk lca" ~count:150 arb_doc (fun t ->
      let d = doc_of t in
      let dw = Dewey.of_document d in
      let n = Document.node_count d in
      let ok = ref true in
      for a = 0 to min (n - 1) 25 do
        for b = 0 to min (n - 1) 25 do
          if Dewey.lca dw a b <> Document.lca d a b then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Search semantics *)

let lists_of d kws =
  let idx = Inverted_index.build d in
  List.map (Inverted_index.lookup idx) kws

let prop_slca_matches_reference =
  Test.make ~name:"slca merge = exhaustive reference" ~count:400 arb_doc_and_keywords
    (fun (t, kws) ->
      let d = doc_of t in
      let lists = lists_of d kws in
      Slca.compute d lists = Lca.slca_reference d lists)

let prop_slca_minimal =
  Test.make ~name:"slcas are minimal covering nodes" ~count:200 arb_doc_and_keywords
    (fun (t, kws) ->
      let d = doc_of t in
      let lists = lists_of d kws in
      let slcas = Slca.compute d lists in
      let covering = Lca.covering_nodes d lists in
      List.for_all
        (fun s ->
          List.mem s covering
          && not
               (List.exists
                  (fun c -> c <> s && Document.is_ancestor d ~anc:s ~desc:c)
                  covering))
        slcas)

let prop_elca_superset_of_slca =
  Test.make ~name:"every slca is an elca" ~count:200 arb_doc_and_keywords
    (fun (t, kws) ->
      let d = doc_of t in
      let lists = lists_of d kws in
      let slcas = Slca.compute d lists in
      let elcas = Elca.compute d lists in
      List.for_all (fun s -> List.mem s elcas) slcas)

let prop_elca_covers =
  Test.make ~name:"every elca covers all keywords" ~count:200 arb_doc_and_keywords
    (fun (t, kws) ->
      let d = doc_of t in
      let lists = lists_of d kws in
      let elcas = Elca.compute d lists in
      let covering = Lca.covering_nodes d lists in
      List.for_all (fun e -> List.mem e covering) elcas)

(* The interval-based match restriction must agree with the naive filter
   (membership test over the whole posting list) on every tree shape —
   full subtrees and pruned match-path views alike. *)
let prop_restrict_matches_equals_filter =
  Test.make ~name:"interval restrict_matches = naive filter" ~count:200
    arb_doc_and_keywords (fun (t, kws) ->
      let d = doc_of t in
      let idx = Inverted_index.build d in
      let lists = List.map (Inverted_index.lookup idx) kws in
      let naive r arr = Array.to_list arr |> List.filter (Result_tree.mem r) in
      let agree r = List.for_all (fun arr -> Result_tree.restrict_matches r arr = naive r arr) lists in
      let ok = ref true in
      for root = 0 to min (Document.node_count d - 1) 20 do
        if not (agree (Result_tree.full d root)) then ok := false;
        let matches = List.concat_map (fun arr -> naive (Result_tree.full d root) arr) lists in
        if not (agree (Result_tree.match_paths d ~root ~matches)) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Snippets *)

type instance_ctx = {
  result : Result_tree.t;
  ilist : Ilist.t;
}

let context_of t kws =
  let d = doc_of t in
  let kinds = Node_kind.of_document d in
  let keys = Key_miner.mine kinds in
  let idx = Inverted_index.build d in
  let q = Query.of_keywords kws in
  match Extract_search.Engine.run idx kinds q with
  | [] -> None
  | result :: _ -> Some { result; ilist = Ilist.build kinds keys idx result q }

let arb_snippet_case =
  make
    ~print:(fun ((t, kws), bound) ->
      Printf.sprintf "%s / %s / bound=%d"
        (Printer.to_string ~indent:None t)
        (String.concat "," kws) bound)
    Gen.(pair (pair (map (fun t ->
         match t with
         | Xml.Element _ -> t
         | Xml.Text _ -> Xml.element "root" [ t ])
       gen_tree) keywords_gen) (int_range 0 8))

let prop_greedy_respects_bound =
  Test.make ~name:"greedy snippet within bound" ~count:300 arb_snippet_case
    (fun ((t, kws), bound) ->
      match context_of t kws with
      | None -> true
      | Some { result; ilist } ->
        let sel = Selector.greedy ~bound result ilist in
        Snippet_tree.edge_count sel.Selector.snippet <= bound)

let prop_greedy_snippet_connected =
  Test.make ~name:"greedy snippet is ancestor-closed" ~count:300 arb_snippet_case
    (fun ((t, kws), bound) ->
      match context_of t kws with
      | None -> true
      | Some { result; ilist } ->
        let sel = Selector.greedy ~bound result ilist in
        let snippet = sel.Selector.snippet in
        let doc = Result_tree.document result in
        List.for_all
          (fun n ->
            n = Result_tree.root result
            ||
            match Document.parent doc n with
            | Some p -> Snippet_tree.mem snippet p
            | None -> false)
          (Snippet_tree.nodes snippet))

let prop_greedy_covered_items_present =
  Test.make ~name:"covered instances are in the snippet" ~count:300 arb_snippet_case
    (fun ((t, kws), bound) ->
      match context_of t kws with
      | None -> true
      | Some { result; ilist } ->
        let sel = Selector.greedy ~bound result ilist in
        List.for_all
          (fun (c : Selector.covered) -> Snippet_tree.mem sel.Selector.snippet c.Selector.instance)
          sel.Selector.covered)

let prop_greedy_accounting =
  Test.make ~name:"covered+skipped+uncoverable = ilist" ~count:300 arb_snippet_case
    (fun ((t, kws), bound) ->
      match context_of t kws with
      | None -> true
      | Some { result; ilist } ->
        let sel = Selector.greedy ~bound result ilist in
        List.length sel.Selector.covered
        + List.length sel.Selector.skipped
        + List.length sel.Selector.uncoverable
        = Ilist.length ilist)

let prop_optimal_at_least_greedy =
  Test.make ~name:"optimal >= greedy" ~count:120 arb_snippet_case
    (fun ((t, kws), bound) ->
      match context_of t kws with
      | None -> true
      | Some { result; ilist } ->
        (* keep the search small: skip huge instance sets *)
        let total_instances =
          List.fold_left
            (fun acc (e : Ilist.entry) -> acc + Array.length e.Ilist.instances)
            0 (Ilist.entries ilist)
        in
        if total_instances > 24 || Ilist.length ilist > 8 then true
        else begin
          let greedy = Selector.greedy ~bound result ilist in
          let opt = Optimal.solve ~bound result ilist in
          (not opt.Optimal.exact)
          || Selector.covered_count opt.Optimal.selection >= Selector.covered_count greedy
        end)

let prop_optimal_respects_bound =
  Test.make ~name:"optimal within bound" ~count:120 arb_snippet_case
    (fun ((t, kws), bound) ->
      match context_of t kws with
      | None -> true
      | Some { result; ilist } ->
        let total_instances =
          List.fold_left
            (fun acc (e : Ilist.entry) -> acc + Array.length e.Ilist.instances)
            0 (Ilist.entries ilist)
        in
        if total_instances > 24 || Ilist.length ilist > 8 then true
        else begin
          let opt = Optimal.solve ~bound result ilist in
          Snippet_tree.edge_count opt.Optimal.selection.Selector.snippet <= bound
        end)

(* ------------------------------------------------------------------ *)
(* Feature identities *)

let prop_feature_identities =
  Test.make ~name:"feature stats identities" ~count:200 arb_doc_and_keywords
    (fun (t, _) ->
      let d = doc_of t in
      let kinds = Node_kind.of_document d in
      let result = Result_tree.full d (Document.root d) in
      let a = Feature.analyze kinds result in
      (* per type: sum of value occurrences = type total, and sum of scores
         = domain size (mean DS = 1) *)
      let sums = Hashtbl.create 8 in
      List.iter
        (fun ((f : Feature.t), (s : Feature.stats)) ->
          let key = f.Feature.entity, f.Feature.attribute in
          let occ, score, total, dom =
            Option.value
              ~default:(0, 0.0, s.Feature.type_total, s.Feature.domain_size)
              (Hashtbl.find_opt sums key)
          in
          Hashtbl.replace sums key
            (occ + s.Feature.occurrences, score +. s.Feature.score, total, dom))
        (Feature.all a);
      Hashtbl.fold
        (fun _ (occ, score, total, dom) acc ->
          acc && occ = total && abs_float (score -. float_of_int dom) < 1e-6)
        sums true)

(* ------------------------------------------------------------------ *)
(* Text baseline *)

let prop_text_baseline_window =
  Test.make ~name:"text window bounded, hits <= query size" ~count:200
    arb_doc_and_keywords (fun (t, kws) ->
      let d = doc_of t in
      let result = Result_tree.full d (Document.root d) in
      let q = Query.of_keywords kws in
      let s = Text_baseline.generate ~window_tokens:5 result q in
      List.length s.Text_baseline.window <= 5
      && s.Text_baseline.keyword_hits <= Query.size q)

let prop_text_baseline_optimal_window =
  Test.make ~name:"no window beats the chosen one" ~count:100 arb_doc_and_keywords
    (fun (t, kws) ->
      let d = doc_of t in
      let result = Result_tree.full d (Document.root d) in
      let q = Query.of_keywords kws in
      let w = 4 in
      let s = Text_baseline.generate ~window_tokens:w result q in
      let tokens =
        Array.of_list (Extract_store.Tokenizer.tokens (Result_tree.text_of result))
      in
      let n = Array.length tokens in
      let best = ref 0 in
      for start = 0 to max 0 (n - 1) do
        let stop = min (n - 1) (start + w - 1) in
        let distinct =
          Query.keywords q
          |> List.filter (fun k ->
                 let rec found i = i <= stop && (tokens.(i) = k || found (i + 1)) in
                 found start)
          |> List.length
        in
        if distinct > !best then best := distinct
      done;
      s.Text_baseline.keyword_hits >= !best)

(* ------------------------------------------------------------------ *)
(* Parsers *)

let prop_parser_total_on_garbage =
  (* the parser either returns a tree or raises Parse_error — never any
     other exception, never a crash *)
  Test.make ~name:"parser total on random bytes" ~count:500
    (string_gen_of_size (Gen.int_range 0 60) (Gen.char_range '\x00' '\xff')) (fun s ->
      match Parser.parse_document s with
      | _ -> true
      | exception Extract_xml.Error.Parse_error _ -> true)

let prop_parser_total_on_markupish_garbage =
  (* same, over strings biased toward markup characters *)
  Test.make ~name:"parser total on markup-ish bytes" ~count:500
    (string_gen_of_size (Gen.int_range 0 60)
       (Gen.oneofa [| '<'; '>'; '/'; '&'; ';'; '"'; 'a'; 'b'; ' '; '='; '!'; '-'; '['; ']' |]))
    (fun s ->
      match Parser.parse_document s with
      | _ -> true
      | exception Extract_xml.Error.Parse_error _ -> true)

let prop_streaming_arena_equals_tree =
  Test.make ~name:"streaming arena = tree arena" ~count:200 arb_tree (fun t ->
      match t with
      | Xml.Text _ -> true
      | Xml.Element _ ->
        let src = Printer.to_string ~indent:None t in
        let a = Document.load_string src in
        let b = Document.of_string_streaming src in
        Document.node_count a = Document.node_count b
        && Document.to_xml a 0 = Document.to_xml b 0)

let prop_sax_element_count =
  Test.make ~name:"sax count = tree count" ~count:200 arb_tree (fun t ->
      let src = Printer.to_string ~indent:None t in
      Extract_xml.Sax.count_elements src = Xml.count_elements t)

(* ------------------------------------------------------------------ *)
(* XSearch interconnection vs brute-force definition *)

let brute_interconnected d a b =
  if a = b then true
  else begin
    let l = Document.lca d a b in
    let path_up n =
      let rec up acc n =
        if n = l then acc
        else
          match Document.parent d n with
          | Some p -> up (if p = l then acc else p :: acc) p
          | None -> acc
      in
      up [] n
    in
    let interior =
      path_up a @ path_up b @ (if l = a || l = b then [] else [ l ])
    in
    let tags = List.map (fun n -> Document.tag_name d n) interior in
    let endpoint_tags =
      List.filter_map
        (fun n -> if Document.is_element d n then Some (Document.tag_name d n) else None)
        [ a; b ]
    in
    let dup =
      List.exists
        (fun t -> List.length (List.filter (String.equal t) tags) > 1)
        tags
    in
    let clash = List.exists (fun t -> List.mem t endpoint_tags) tags in
    not (dup || clash)
  end

let prop_interconnected_matches_brute =
  Test.make ~name:"xsearch interconnection = brute force" ~count:150 arb_doc (fun t ->
      let d = doc_of t in
      let elements =
        List.filter (Document.is_element d) (List.init (Document.node_count d) Fun.id)
      in
      let sample = List.filteri (fun i _ -> i < 12) elements in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> Extract_search.Xsearch.interconnected d a b = brute_interconnected d a b)
            sample)
        sample)

(* greedy strict-prefix mode never beats the default *)
let prop_strict_prefix_no_better =
  Test.make ~name:"strict-prefix greedy <= default greedy" ~count:200 arb_snippet_case
    (fun ((t, kws), bound) ->
      match context_of t kws with
      | None -> true
      | Some { result; ilist } ->
        Selector.covered_count (Selector.greedy ~skip_overflow:false ~bound result ilist)
        <= Selector.covered_count (Selector.greedy ~bound result ilist))

(* ------------------------------------------------------------------ *)
(* Persistence *)

let prop_persist_roundtrip =
  Test.make ~name:"persist decode . encode = id" ~count:200 arb_doc (fun t ->
      let d = doc_of t in
      let d2 = Extract_store.Persist.decode (Extract_store.Persist.encode d) in
      Document.node_count d = Document.node_count d2
      && Document.to_xml d 0 = Document.to_xml d2 0)

let prop_bundle_roundtrip =
  Test.make ~name:"bundle decode . encode = id" ~count:60 arb_doc (fun t ->
      let d = doc_of t in
      let idx = Inverted_index.build d in
      let d2, idx2 =
        Extract_store.Persist.decode_bundle (Extract_store.Persist.encode_bundle d idx)
      in
      Document.to_xml d 0 = Document.to_xml d2 0
      && List.for_all
           (fun tok -> Inverted_index.lookup idx tok = Inverted_index.lookup idx2 tok)
           (Inverted_index.vocabulary idx))

let prop_codec_int_roundtrip =
  Test.make ~name:"codec int roundtrip" ~count:500 (int_range (-1000000) 1000000)
    (fun n ->
      let w = Extract_store.Codec.writer () in
      Extract_store.Codec.write_int w n;
      Extract_store.Codec.read_int (Extract_store.Codec.reader (Extract_store.Codec.contents w)) = n)

(* ------------------------------------------------------------------ *)
(* Path_query vs direct scans *)

let prop_path_descendant_equals_scan =
  Test.make ~name:"//tag = full scan" ~count:150 arb_doc (fun t ->
      let d = doc_of t in
      Array.for_all
        (fun tag ->
          let via_path = Extract_store.Path_query.select_string d ("//" ^ tag) in
          let via_scan =
            List.filter
              (fun n -> Document.is_element d n && Document.tag_name d n = tag)
              (List.init (Document.node_count d) Fun.id)
          in
          via_path = via_scan)
        tags)

let prop_path_child_equals_children =
  Test.make ~name:"/root/tag = children scan" ~count:150 arb_doc (fun t ->
      let d = doc_of t in
      let root_tag = Document.tag_name d 0 in
      Array.for_all
        (fun tag ->
          let via_path =
            Extract_store.Path_query.select_string d (Printf.sprintf "/%s/%s" root_tag tag)
          in
          let via_scan =
            List.filter
              (fun n -> Document.is_element d n && Document.tag_name d n = tag)
              (Document.children d 0)
          in
          via_path = via_scan)
        tags)

(* ------------------------------------------------------------------ *)
(* Stemmer *)

let prop_stemmer_total_and_shrinking =
  Test.make ~name:"stem never grows and is total" ~count:500
    (string_gen_of_size (Gen.int_range 0 15) Gen.printable) (fun s ->
      let t = String.lowercase_ascii s in
      let stemmed = Extract_store.Stemmer.stem t in
      String.length stemmed <= String.length t + 1 (* +1: -ing -> +e rule *))

(* ------------------------------------------------------------------ *)
(* Generators validate against their DTDs at random scales *)

let prop_retail_validates =
  Test.make ~name:"random-size retail validates" ~count:20 (int_range 1 6)
    (fun k ->
      let cfg =
        {
          Extract_datagen.Retail.default with
          Extract_datagen.Retail.retailers = k;
          stores_per_retailer = k;
          clothes_per_store = k;
          seed = k * 31;
        }
      in
      let doc = Extract_datagen.Retail.generate cfg in
      match doc.Xml.dtd with
      | None -> false
      | Some subset ->
        Extract_xml.Validator.is_valid (Extract_xml.Dtd.parse subset) doc.Xml.root)

let to_alcotest = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "properties.xml",
      to_alcotest [ prop_print_parse_id; prop_print_parse_pretty ] );
    ( "properties.store",
      to_alcotest [ prop_arena_invariants; prop_dewey_lca_agrees ] );
    ( "properties.search",
      to_alcotest
        [
          prop_slca_matches_reference;
          prop_slca_minimal;
          prop_elca_superset_of_slca;
          prop_elca_covers;
          prop_restrict_matches_equals_filter;
        ] );
    ( "properties.snippet",
      to_alcotest
        [
          prop_greedy_respects_bound;
          prop_greedy_snippet_connected;
          prop_greedy_covered_items_present;
          prop_greedy_accounting;
          prop_optimal_at_least_greedy;
          prop_optimal_respects_bound;
          prop_feature_identities;
        ] );
    ( "properties.baselines",
      to_alcotest [ prop_text_baseline_window; prop_text_baseline_optimal_window ] );
    ( "properties.xsearch",
      to_alcotest [ prop_interconnected_matches_brute; prop_strict_prefix_no_better ] );
    ( "properties.parsers",
      to_alcotest
        [
          prop_parser_total_on_garbage;
          prop_parser_total_on_markupish_garbage;
          prop_streaming_arena_equals_tree;
          prop_sax_element_count;
        ] );
    ( "properties.persist",
      to_alcotest [ prop_persist_roundtrip; prop_bundle_roundtrip; prop_codec_int_roundtrip ] );
    ( "properties.path_query",
      to_alcotest [ prop_path_descendant_equals_scan; prop_path_child_equals_children ] );
    ( "properties.stemmer", to_alcotest [ prop_stemmer_total_and_shrinking ] );
    ( "properties.datagen", to_alcotest [ prop_retail_validates ] );
  ]
