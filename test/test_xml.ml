(* Unit tests for the extract.xml substrate: lexer, parser, printer,
   content models and DTD. *)

open Extract_xml

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let parse = Parser.parse

let root_of s =
  match parse s with
  | Types.Element e -> e
  | Types.Text _ -> Alcotest.fail "expected an element"

(* ------------------------------------------------------------------ *)
(* Parser: well-formed input *)

let test_parse_minimal () =
  let e = root_of "<a/>" in
  check string "tag" "a" e.Types.tag;
  check int "no children" 0 (List.length e.Types.children)

let test_parse_nested () =
  let e = root_of "<a><b><c/></b><d/></a>" in
  check int "two children" 2 (List.length (Types.child_elements e));
  let b = Option.get (Types.find_child e "b") in
  check int "b has c" 1 (List.length (Types.child_elements b))

let test_parse_text () =
  let e = root_of "<a>hello world</a>" in
  check string "text" "hello world" (Types.immediate_text e)

let test_parse_mixed_whitespace_dropped () =
  let e = root_of "<a>\n  <b/>\n  <c/>\n</a>" in
  check int "whitespace-only text dropped" 2 (List.length e.Types.children)

let test_parse_keep_whitespace () =
  let t = Parser.parse ~keep_whitespace:true "<a> <b/> </a>" in
  match t with
  | Types.Element e -> check int "whitespace kept" 3 (List.length e.Types.children)
  | Types.Text _ -> Alcotest.fail "expected element"

let test_parse_attributes () =
  let e = root_of {|<a x="1" y='two'/>|} in
  check bool "x" true (Types.attr e "x" = Some "1");
  check bool "y" true (Types.attr e "y" = Some "two");
  check bool "absent" true (Types.attr e "z" = None)

let test_parse_entities () =
  let e = root_of "<a>&lt;tag&gt; &amp; &quot;quoted&apos;</a>" in
  check string "decoded" "<tag> & \"quoted'" (Types.immediate_text e)

let test_parse_char_refs () =
  let e = root_of "<a>&#65;&#x42;&#x43a;</a>" in
  (* A, B, Cyrillic ka (UTF-8: D0 BA) *)
  check string "char refs" "AB\xd0\xba" (Types.immediate_text e)

let test_parse_cdata () =
  let e = root_of "<a><![CDATA[<not><parsed> & raw]]></a>" in
  check string "cdata" "<not><parsed> & raw" (Types.immediate_text e)

let test_parse_adjacent_text_merged () =
  let e = root_of "<a>one <![CDATA[two]]> three</a>" in
  check int "single text node" 1 (List.length e.Types.children);
  check string "merged" "one two three" (Types.immediate_text e)

let test_parse_comments_dropped () =
  let e = root_of "<a><!-- a comment --><b/><!-- another --></a>" in
  check int "only b" 1 (List.length e.Types.children)

let test_parse_pi_dropped () =
  let e = root_of "<a><?php echo ?><b/></a>" in
  check int "only b" 1 (List.length e.Types.children)

let test_parse_prolog_doctype () =
  let doc =
    Parser.parse_document
      "<?xml version=\"1.0\"?>\n<!DOCTYPE r [<!ELEMENT r (a*)>]>\n<r><a/></r>"
  in
  check string "root" "r" doc.Types.root.Types.tag;
  check bool "dtd captured" true (doc.Types.dtd <> None)

let test_parse_doctype_system () =
  let doc = Parser.parse_document {|<!DOCTYPE r SYSTEM "r.dtd"><r/>|} in
  check bool "no internal subset" true (doc.Types.dtd = None);
  check string "root" "r" doc.Types.root.Types.tag

let test_parse_bom () =
  let doc = Parser.parse_document "\xEF\xBB\xBF<r/>" in
  check string "root after BOM" "r" doc.Types.root.Types.tag

let test_parse_utf8_content () =
  let e = root_of "<a>caf\xc3\xa9 \xe6\x97\xa5\xe6\x9c\xac</a>" in
  check string "utf8 preserved" "caf\xc3\xa9 \xe6\x97\xa5\xe6\x9c\xac" (Types.immediate_text e)

let test_parse_deep_nesting () =
  let depth = 500 in
  let buf = Buffer.create 4096 in
  for i = 0 to depth do
    Buffer.add_string buf (Printf.sprintf "<n%d>" i)
  done;
  for i = depth downto 0 do
    Buffer.add_string buf (Printf.sprintf "</n%d>" i)
  done;
  let e = root_of (Buffer.contents buf) in
  check string "deep root" "n0" e.Types.tag

(* ------------------------------------------------------------------ *)
(* Parser: resource limits *)

let nested_doc depth =
  let buf = Buffer.create (8 * depth) in
  for _ = 1 to depth do
    Buffer.add_string buf "<a>"
  done;
  for _ = 1 to depth do
    Buffer.add_string buf "</a>"
  done;
  Buffer.contents buf

let expect_limit_error what input limits =
  match Parser.parse ~limits input with
  | _ -> Alcotest.failf "%s: expected Parse_error" what
  | exception Error.Parse_error (_, msg) ->
    check bool
      (Printf.sprintf "%s: message names the limit (%S)" what msg)
      true
      (String.length msg > 0)

let test_limits_max_depth () =
  let limits = { Parser.default_limits with Parser.max_depth = 10 } in
  (* at the limit: fine *)
  (match Parser.parse ~limits (nested_doc 10) with
  | _ -> ()
  | exception Error.Parse_error (_, msg) -> Alcotest.failf "depth 10 rejected: %s" msg);
  expect_limit_error "depth 11" (nested_doc 11) limits

let test_limits_adversarial_depth_no_overflow () =
  (* a 100k-deep document must yield a clean positioned error, not a
     stack overflow: the default limit cuts it off at depth 512 *)
  match Parser.parse (nested_doc 100_000) with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Error.Parse_error (_, msg) ->
    check bool "names max_depth" true
      (String.length msg > 0
      && String.split_on_char ' ' msg |> List.exists (fun w -> w = "max_depth"))

let test_limits_max_nodes () =
  let limits = { Parser.default_limits with Parser.max_nodes = 3 } in
  (* root + two children = 3 nodes: fine *)
  (match Parser.parse ~limits "<a><b/><c/></a>" with
  | _ -> ()
  | exception Error.Parse_error (_, msg) -> Alcotest.failf "3 nodes rejected: %s" msg);
  expect_limit_error "4 nodes" "<a><b/><c/><d/></a>" limits

let test_limits_max_token_len () =
  let limits = { Parser.default_limits with Parser.max_token_len = 8 } in
  (match Parser.parse ~limits "<a>12345678</a>" with
  | _ -> ()
  | exception Error.Parse_error (_, msg) -> Alcotest.failf "8-byte text rejected: %s" msg);
  expect_limit_error "long text" "<a>123456789</a>" limits;
  expect_limit_error "long tag name" "<abcdefghij/>" limits;
  expect_limit_error "long attribute value" "<a b=\"123456789\"/>" limits

let test_limits_unlimited () =
  match Parser.parse ~limits:Parser.unlimited (nested_doc 600) with
  | _ -> ()
  | exception Error.Parse_error (_, msg) ->
    Alcotest.failf "unlimited rejected depth 600: %s" msg

(* ------------------------------------------------------------------ *)
(* Parser: malformed input *)

let fails input =
  match parse input with
  | exception Error.Parse_error _ -> ()
  | _ -> Alcotest.fail (Printf.sprintf "expected a parse error on %S" input)

let test_parse_errors () =
  fails "";
  fails "<a>";
  fails "<a></b>";
  fails "<a><b></a></b>";
  fails "<a x=1/>";
  fails "<a x=\"1\" x=\"2\"/>";
  fails "<a>&unknown;</a>";
  fails "<a>&#xZZ;</a>";
  fails "<a/><b/>";
  fails "text only";
  fails "<a attr=\"<\"/>";
  fails "<1tag/>"

let test_parse_error_position () =
  (try ignore (parse "<a>\n<b></c></a>")
   with Error.Parse_error (pos, _) ->
     check int "line" 2 pos.Error.line);
  ()

(* ------------------------------------------------------------------ *)
(* Printer: escaping and round trips *)

let test_escape_text () =
  check string "text escape" "a &amp; b &lt;c&gt;" (Printer.escape_text "a & b <c>")

let test_escape_attr () =
  check string "attr escape" "&quot;x&apos;" (Printer.escape_attr "\"x'")

let test_print_parse_roundtrip () =
  let original = root_of {|<shop loc="x&amp;y"><item>caf&#233;</item><empty/></shop>|} in
  let printed = Printer.to_string ~indent:None (Types.Element original) in
  let reparsed = root_of printed in
  check bool "roundtrip equal" true (Types.equal (Types.Element original) (Types.Element reparsed))

let test_pretty_print_reparses () =
  let original = root_of "<a><b>text</b><c><d>deep</d></c></a>" in
  let printed = Printer.to_string ~indent:(Some 2) (Types.Element original) in
  let reparsed = root_of printed in
  check bool "pretty roundtrip" true (Types.equal (Types.Element original) (Types.Element reparsed))

let test_document_to_string_has_decl () =
  let doc = Parser.parse_document "<r><a/></r>" in
  let s = Printer.document_to_string doc in
  check bool "xml decl" true (String.length s > 5 && String.sub s 0 5 = "<?xml")

(* ------------------------------------------------------------------ *)
(* Types helpers *)

let test_types_text_content () =
  let e = parse "<a>x<b>y<c>z</c></b>w</a>" in
  check string "all text" "xyzw" (Types.text_content e)

let test_types_counts () =
  let e = parse "<a><b>t</b><c/></a>" in
  check int "nodes" 4 (Types.count_nodes e);
  check int "elements" 3 (Types.count_elements e)

let test_types_find_children () =
  let e = root_of "<a><b i=\"1\"/><c/><b i=\"2\"/></a>" in
  check int "two b" 2 (List.length (Types.find_children e "b"));
  check bool "first b" true ((Option.get (Types.find_child e "b")) |> fun b -> Types.attr b "i" = Some "1")

let test_types_leaf () =
  match Types.leaf "name" "value" with
  | Types.Element e ->
    check string "tag" "name" e.Types.tag;
    check string "value" "value" (Types.immediate_text e)
  | Types.Text _ -> Alcotest.fail "leaf should be an element"

(* ------------------------------------------------------------------ *)
(* Content models *)

let model_of s =
  let dtd = Dtd.parse (Printf.sprintf "<!ELEMENT e %s>" s) in
  Option.get (Dtd.element_model dtd "e")

let test_cm_star () =
  let m = model_of "(a*)" in
  check bool "a repeats" true (Content_model.may_repeat m "a");
  check bool "b absent" false (Content_model.may_repeat m "b")

let test_cm_plus_opt () =
  let m = model_of "(a+, b?)" in
  check bool "a repeats" true (Content_model.may_repeat m "a");
  check bool "b does not" false (Content_model.may_repeat m "b")

let test_cm_seq_twice () =
  let m = model_of "(a, b, a)" in
  check bool "a occurs twice in sequence" true (Content_model.may_repeat m "a");
  check bool "b once" false (Content_model.may_repeat m "b")

let test_cm_choice () =
  let m = model_of "(a | b)" in
  check bool "a choice once" false (Content_model.may_repeat m "a");
  let m2 = model_of "(a | b)*" in
  check bool "starred choice repeats" true (Content_model.may_repeat m2 "a")

let test_cm_nested_star () =
  let m = model_of "((a, b)*, c)" in
  check bool "a under inner star" true (Content_model.may_repeat m "a");
  check bool "c once" false (Content_model.may_repeat m "c")

let test_cm_declared_children () =
  let m = model_of "(a, (b | c)*, a)" in
  check bool "declared children, first-mention order" true
    (Content_model.declared_children m = [ "a"; "b"; "c" ])

let test_cm_mixed () =
  let m = model_of "(#PCDATA | em | strong)*" in
  check bool "mixed repeats" true (Content_model.may_repeat m "em");
  check bool "mixed allows text" true (Content_model.allows_text m);
  check bool "undeclared child" false (Content_model.may_repeat m "x")

let test_cm_pcdata () =
  let m = model_of "(#PCDATA)" in
  check bool "pcdata no children" true (Content_model.declared_children m = []);
  check bool "allows text" true (Content_model.allows_text m)

let test_cm_empty_any () =
  let e = model_of "EMPTY" in
  check bool "empty no repeat" false (Content_model.may_repeat e "a");
  let a = model_of "ANY" in
  check bool "any repeats anything" true (Content_model.may_repeat a "whatever")

let test_cm_to_string_roundtrip () =
  List.iter
    (fun s ->
      let m = model_of s in
      let printed = Content_model.to_string m in
      let m2 = model_of printed in
      check bool
        (Printf.sprintf "reparse %s" s)
        true
        (Content_model.to_string m2 = printed))
    [ "(a*)"; "(a, b?)"; "(a | b | c)+"; "(#PCDATA)"; "EMPTY"; "ANY"; "((a, b)*, c)" ]

(* ------------------------------------------------------------------ *)
(* DTD *)

let sample_dtd =
  {|
  <!-- retailer schema -->
  <!ELEMENT retailers (retailer*)>
  <!ELEMENT retailer (name, product, store*)>
  <!ELEMENT store (name, state, city, merchandises)>
  <!ELEMENT merchandises (clothes*)>
  <!ELEMENT clothes (category?, situation?, fitting?)>
  <!ELEMENT name (#PCDATA)>
  <!ATTLIST store sid ID #REQUIRED open (yes|no) "yes">
  <!ENTITY copy "(c)">
|}

let test_dtd_element_names () =
  let dtd = Dtd.parse sample_dtd in
  check bool "declaration order" true
    (Dtd.element_names dtd
    = [ "retailers"; "retailer"; "store"; "merchandises"; "clothes"; "name" ])

let test_dtd_star_child () =
  let dtd = Dtd.parse sample_dtd in
  check bool "retailer starred" true
    (Dtd.is_star_child dtd ~parent:"retailers" ~child:"retailer" = Some true);
  check bool "name not starred" true
    (Dtd.is_star_child dtd ~parent:"retailer" ~child:"name" = Some false);
  check bool "unknown parent" true
    (Dtd.is_star_child dtd ~parent:"nothere" ~child:"x" = None)

let test_dtd_attlist () =
  let dtd = Dtd.parse sample_dtd in
  let atts = Dtd.attributes dtd "store" in
  check int "two attributes" 2 (List.length atts);
  let sid = List.hd atts in
  check string "name" "sid" sid.Dtd.att_name;
  check string "type" "ID" sid.Dtd.att_type;
  check string "default" "#REQUIRED" sid.Dtd.att_default

let test_dtd_empty () =
  check bool "empty dtd" true (Dtd.element_model Dtd.empty "x" = None)

let test_dtd_through_document () =
  let doc =
    Parser.parse_document "<!DOCTYPE r [<!ELEMENT r (a*)> <!ELEMENT a (#PCDATA)>]><r><a>1</a></r>"
  in
  let dtd = Dtd.of_document doc in
  check bool "a starred under r" true (Dtd.is_star_child dtd ~parent:"r" ~child:"a" = Some true)

let test_dtd_malformed () =
  (match Dtd.parse "<!ELEMENT broken" with
  | exception Error.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error");
  match Dtd.parse "%param;" with
  | exception Error.Parse_error _ -> ()
  | _ -> Alcotest.fail "parameter entities should be rejected"

let suites =
  [
    ( "xml.parser",
      [
        Alcotest.test_case "minimal" `Quick test_parse_minimal;
        Alcotest.test_case "nested" `Quick test_parse_nested;
        Alcotest.test_case "text" `Quick test_parse_text;
        Alcotest.test_case "whitespace dropped" `Quick test_parse_mixed_whitespace_dropped;
        Alcotest.test_case "keep whitespace" `Quick test_parse_keep_whitespace;
        Alcotest.test_case "attributes" `Quick test_parse_attributes;
        Alcotest.test_case "entities" `Quick test_parse_entities;
        Alcotest.test_case "char refs" `Quick test_parse_char_refs;
        Alcotest.test_case "cdata" `Quick test_parse_cdata;
        Alcotest.test_case "adjacent text merged" `Quick test_parse_adjacent_text_merged;
        Alcotest.test_case "comments dropped" `Quick test_parse_comments_dropped;
        Alcotest.test_case "pi dropped" `Quick test_parse_pi_dropped;
        Alcotest.test_case "prolog + doctype" `Quick test_parse_prolog_doctype;
        Alcotest.test_case "doctype SYSTEM" `Quick test_parse_doctype_system;
        Alcotest.test_case "BOM" `Quick test_parse_bom;
        Alcotest.test_case "utf8 content" `Quick test_parse_utf8_content;
        Alcotest.test_case "deep nesting" `Quick test_parse_deep_nesting;
        Alcotest.test_case "malformed inputs" `Quick test_parse_errors;
        Alcotest.test_case "error position" `Quick test_parse_error_position;
      ] );
    ( "xml.limits",
      [
        Alcotest.test_case "max_depth" `Quick test_limits_max_depth;
        Alcotest.test_case "adversarial depth" `Quick test_limits_adversarial_depth_no_overflow;
        Alcotest.test_case "max_nodes" `Quick test_limits_max_nodes;
        Alcotest.test_case "max_token_len" `Quick test_limits_max_token_len;
        Alcotest.test_case "unlimited" `Quick test_limits_unlimited;
      ] );
    ( "xml.printer",
      [
        Alcotest.test_case "escape text" `Quick test_escape_text;
        Alcotest.test_case "escape attr" `Quick test_escape_attr;
        Alcotest.test_case "roundtrip compact" `Quick test_print_parse_roundtrip;
        Alcotest.test_case "roundtrip pretty" `Quick test_pretty_print_reparses;
        Alcotest.test_case "document serialization" `Quick test_document_to_string_has_decl;
      ] );
    ( "xml.types",
      [
        Alcotest.test_case "text content" `Quick test_types_text_content;
        Alcotest.test_case "counts" `Quick test_types_counts;
        Alcotest.test_case "find children" `Quick test_types_find_children;
        Alcotest.test_case "leaf" `Quick test_types_leaf;
      ] );
    ( "xml.content_model",
      [
        Alcotest.test_case "star" `Quick test_cm_star;
        Alcotest.test_case "plus/opt" `Quick test_cm_plus_opt;
        Alcotest.test_case "sequence repeat" `Quick test_cm_seq_twice;
        Alcotest.test_case "choice" `Quick test_cm_choice;
        Alcotest.test_case "nested star" `Quick test_cm_nested_star;
        Alcotest.test_case "declared children" `Quick test_cm_declared_children;
        Alcotest.test_case "mixed" `Quick test_cm_mixed;
        Alcotest.test_case "pcdata" `Quick test_cm_pcdata;
        Alcotest.test_case "empty/any" `Quick test_cm_empty_any;
        Alcotest.test_case "print/reparse" `Quick test_cm_to_string_roundtrip;
      ] );
    ( "xml.dtd",
      [
        Alcotest.test_case "element names" `Quick test_dtd_element_names;
        Alcotest.test_case "star child" `Quick test_dtd_star_child;
        Alcotest.test_case "attlist" `Quick test_dtd_attlist;
        Alcotest.test_case "empty" `Quick test_dtd_empty;
        Alcotest.test_case "via document" `Quick test_dtd_through_document;
        Alcotest.test_case "malformed" `Quick test_dtd_malformed;
      ] );
  ]
