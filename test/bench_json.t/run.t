The benchmark harness's --json mode runs only the hot-path experiment
(E20) and writes machine-readable results to BENCH_hotpath.json, so
successive revisions can track the perf trajectory.

  $ extract-bench quick --json
  eXtract hotpath benchmark (E20)
  wrote BENCH_hotpath.json

The JSON shape is stable; numbers vary run to run, so normalize every
value to N before matching (keys keep their digits — e2e, p50):

  $ sed -E 's/([:,] )[0-9]+(\.[0-9]+)?/\1N/g' BENCH_hotpath.json
  {
    "experiment": "hotpath",
    "mode": "quick",
    "dataset": { "name": "retail", "target_clothes": N, "nodes": N },
    "query": "store apparel",
    "restriction": { "results": N, "postings": N, "linear_ns": N, "interval_ns": N, "speedup": N },
    "limit_pushdown": { "limit": N, "full_ns": N, "limited_ns": N, "speedup": N },
    "cache": { "cold_ns": N, "warm_ns": N, "speedup": N, "hits": N, "misses": N },
    "explain": { "plain_ns": N, "explain_ns": N, "overhead": N },
    "latency": { "samples": N, "e2e_mean_ns": N, "e2e_p50_ns": N, "e2e_p95_ns": N, "e2e_p99_ns": N }
  }

The --floor gate compares the measured end-to-end mean against a
checked-in floor and fails only on a >3x regression; an absurdly
generous floor always passes:

  $ printf '{ "e2e_mean_ns": 1000000000 }' > floor.json
  $ extract-bench quick --json --floor=floor.json > out.txt 2>&1; echo "exit=$?"
  exit=0
  $ tail -n 1 out.txt
  floor gate: ok

An impossibly tight floor fails with exit 1:

  $ printf '{ "e2e_mean_ns": 1 }' > tight.json
  $ extract-bench quick --json --floor=tight.json > out.txt 2>&1; echo "exit=$?"
  exit=1
  $ grep -c "floor gate: FAILED" out.txt
  1

The index mode (E22) measures the v2 format: posting-list compression,
bundle-decode vs snapshot-map cold start, and per-shard fan-out scaling.
It writes BENCH_index.json with the same stable-shape contract:

  $ extract-bench quick index
  eXtract index benchmark (E22)
  wrote BENCH_index.json
  $ sed -E 's/([:,] )-?[0-9]+(\.[0-9]+)?/\1N/g' BENCH_index.json
  {
    "experiment": "index",
    "mode": "quick",
    "dataset": { "name": "retail", "clothes": N, "nodes": N, "tokens": N },
    "compression": { "plain_postings_bytes": N, "packed_postings_bytes": N, "ratio": N, "pack_ns": N },
    "files": { "v1_bundle_bytes": N, "v2_snapshot_bytes": N },
    "coldstart": { "v1_load_ns": N, "v2_map_ns": N, "speedup": N },
    "shards": [
      { "shards": N, "seq_ns": N, "par_ns": N },
      { "shards": N, "seq_ns": N, "par_ns": N },
      { "shards": N, "seq_ns": N, "par_ns": N }
    ]
  }

Its floor gate pins minima — ratios that must stay at or above the
checked-in values. Trivial floors pass:

  $ printf '{ "min_index_compression_ratio": 1.01, "min_coldstart_speedup": 1.01 }' > ixfloor.json
  $ extract-bench quick index --floor=ixfloor.json > out.txt 2>&1; echo "exit=$?"
  exit=0
  $ tail -n 1 out.txt
  index floor gate: ok

Impossible floors fail with exit 1:

  $ printf '{ "min_index_compression_ratio": 100000, "min_coldstart_speedup": 100000 }' > ixtight.json
  $ extract-bench quick index --floor=ixtight.json > out.txt 2>&1; echo "exit=$?"
  exit=1
  $ grep -c "index floor gate: FAILED" out.txt
  1
