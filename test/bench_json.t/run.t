The benchmark harness's --json mode runs only the hot-path experiment
(E20) and writes machine-readable results to BENCH_hotpath.json, so
successive revisions can track the perf trajectory.

  $ extract-bench quick --json
  eXtract hotpath benchmark (E20)
  wrote BENCH_hotpath.json

The JSON shape is stable; numbers vary run to run, so normalize every
number to N before matching:

  $ sed -E 's/[0-9]+\.[0-9]+|[0-9]+/N/g' BENCH_hotpath.json
  {
    "experiment": "hotpath",
    "mode": "quick",
    "dataset": { "name": "retail", "target_clothes": N, "nodes": N },
    "query": "store apparel",
    "restriction": { "results": N, "postings": N, "linear_ns": N, "interval_ns": N, "speedup": N },
    "limit_pushdown": { "limit": N, "full_ns": N, "limited_ns": N, "speedup": N },
    "cache": { "cold_ns": N, "warm_ns": N, "speedup": N, "hits": N, "misses": N }
  }
