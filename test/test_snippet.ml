(* Unit tests for the core snippet library: feature analysis, return
   entities, result keys, IList construction, snippet trees, greedy and
   exact instance selection, and the baselines. *)

open Extract_snippet
module Document = Extract_store.Document
module Node_kind = Extract_store.Node_kind
module Key_miner = Extract_store.Key_miner
module Inverted_index = Extract_store.Inverted_index
module Result_tree = Extract_search.Result_tree
module Query = Extract_search.Query

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* Test database: one team of players.
   pre-order ids:
   0 league
   └─ 1 team
      ├─ 2 name "Sharks" 3
      ├─ 4 player (5 pname "Ann" 6,  7 pos "guard" 8)
      ├─ 9 player (10 pname "Bo" 11, 12 pos "guard" 13)
      └─ 14 player (15 pname "Cy" 16, 17 pos "center" 18)
   └─ 19 team
      ├─ 20 name "Owls" 21
      └─ 22 player (23 pname "Di" 24, 25 pos "wing" 26)
*)
let league =
  "<league>\
   <team><name>Sharks</name>\
   <player><pname>Ann</pname><pos>guard</pos></player>\
   <player><pname>Bo</pname><pos>guard</pos></player>\
   <player><pname>Cy</pname><pos>center</pos></player></team>\
   <team><name>Owls</name>\
   <player><pname>Di</pname><pos>wing</pos></player></team>\
   </league>"

type db = {
  doc : Document.t;
  kinds : Node_kind.t;
  keys : Key_miner.t;
  index : Inverted_index.t;
}

let setup src =
  let doc = Document.load_string src in
  let kinds = Node_kind.of_document doc in
  { doc; kinds; keys = Key_miner.mine kinds; index = Inverted_index.build doc }

let league_db = lazy (setup league)

let team_result db = Result_tree.full db.doc 1

(* ------------------------------------------------------------------ *)
(* Feature analysis *)

let test_feature_counts () =
  let db = Lazy.force league_db in
  let a = Feature.analyze db.kinds (team_result db) in
  (* features: (team,name,Sharks), (player,pname,{Ann,Bo,Cy}),
     (player,pos,{guard,center}) *)
  check int "distinct features" 6 (Feature.feature_count a);
  check int "types" 3 (Feature.type_count a)

let test_feature_stats () =
  let db = Lazy.force league_db in
  let a = Feature.analyze db.kinds (team_result db) in
  let guard = { Feature.entity = "player"; attribute = "pos"; value = "guard" } in
  match Feature.stats_of a guard with
  | None -> Alcotest.fail "guard feature missing"
  | Some s ->
    check int "N(e,a,v)" 2 s.Feature.occurrences;
    check int "N(e,a)" 3 s.Feature.type_total;
    check int "D(e,a)" 2 s.Feature.domain_size;
    (* DS = 2 / (3/2) = 4/3 *)
    Alcotest.check (Alcotest.float 1e-9) "DS" (4.0 /. 3.0) s.Feature.score

let test_feature_dominance_rule () =
  let db = Lazy.force league_db in
  let a = Feature.analyze db.kinds (team_result db) in
  let stats v =
    Option.get (Feature.stats_of a { Feature.entity = "player"; attribute = "pos"; value = v })
  in
  check bool "guard dominant (DS>1)" true (Feature.is_dominant (stats "guard"));
  check bool "center not dominant" false (Feature.is_dominant (stats "center"));
  (* name has domain size 1 within the result: trivially dominant *)
  let name_stats =
    Option.get
      (Feature.stats_of a { Feature.entity = "team"; attribute = "name"; value = "Sharks" })
  in
  check bool "D=1 trivially dominant" true (Feature.is_dominant name_stats);
  Alcotest.check (Alcotest.float 1e-9) "D=1 has DS=1" 1.0 name_stats.Feature.score

let test_feature_dominant_sorted () =
  let db = Lazy.force league_db in
  let a = Feature.analyze db.kinds (team_result db) in
  let doms = Feature.dominant a in
  let scores = List.map (fun (_, s) -> s.Feature.score) doms in
  check bool "scores non-increasing" true (List.sort (fun a b -> compare b a) scores = scores)

let test_feature_instances () =
  let db = Lazy.force league_db in
  let a = Feature.analyze db.kinds (team_result db) in
  let guard = { Feature.entity = "player"; attribute = "pos"; value = "guard" } in
  check bool "two instances in doc order" true (Feature.instances a guard = [ 7; 12 ]);
  check bool "unknown feature" true
    (Feature.instances a { Feature.entity = "x"; attribute = "y"; value = "z" } = [])

let test_feature_sum_identity () =
  (* For each type, the value occurrences must sum to the type total. *)
  let db = Lazy.force league_db in
  let a = Feature.analyze db.kinds (team_result db) in
  let sums = Hashtbl.create 8 in
  List.iter
    (fun ((f : Feature.t), (s : Feature.stats)) ->
      let key = f.Feature.entity, f.Feature.attribute in
      let sofar, total = Option.value ~default:(0, s.Feature.type_total) (Hashtbl.find_opt sums key) in
      Hashtbl.replace sums key (sofar + s.Feature.occurrences, total))
    (Feature.all a);
  Hashtbl.iter (fun _ (sum, total) -> check int "sum = N(e,a)" total sum) sums

let test_feature_root_entity_fallback () =
  (* attributes with no entity ancestor inside the result are attributed to
     the result root's tag *)
  let db = setup "<r><a>x</a><a>y</a><solo>v</solo></r>" in
  (* here <a> repeats -> entity (childless? no: has text) — actually a has
     only-text children and repeats: starred -> entity. solo is attribute. *)
  let result = Result_tree.full db.doc 0 in
  let analysis = Feature.analyze db.kinds result in
  let f = { Feature.entity = "r"; attribute = "solo"; value = "v" } in
  check bool "root fallback entity" true (Feature.stats_of analysis f <> None)

(* ------------------------------------------------------------------ *)
(* Return entities *)

let test_return_entity_name_match () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let returns = Return_entity.return_entities db.kinds r (Query.of_string "player guard") in
  (* "player" matches the player entity tag *)
  check bool "players returned" true (returns = [ 4; 9; 14 ])

let test_return_entity_attribute_match () =
  let db = Lazy.force league_db in
  let r = team_result db in
  (* "pos" matches an attribute name of player *)
  let returns = Return_entity.return_entities db.kinds r (Query.of_string "pos center") in
  check bool "players via attribute name" true (returns = [ 4; 9; 14 ])

let test_return_entity_fallback_highest () =
  let db = Lazy.force league_db in
  let r = team_result db in
  (* no keyword matches an entity or attribute name: highest entity wins *)
  let returns = Return_entity.return_entities db.kinds r (Query.of_string "guard sharks") in
  check bool "highest = team" true (returns = [ 1 ])

let test_highest_entities () =
  let db = Lazy.force league_db in
  let r = team_result db in
  check bool "team is highest" true (Return_entity.highest_entities db.kinds r = [ 1 ]);
  (* a result rooted at a player: that player is highest *)
  let rp = Result_tree.full db.doc 4 in
  check bool "player highest in own result" true
    (Return_entity.highest_entities db.kinds rp = [ 4 ])

let test_supporting_entities () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let supporting = Return_entity.supporting_entities db.kinds r (Query.of_string "player guard") in
  check bool "team supports players" true (supporting = [ 1 ])

let test_matches_name_tokens () =
  let q = Query.of_string "brook retailer" in
  check bool "token match" true (Return_entity.matches_name q "brook_brothers");
  check bool "no match" false (Return_entity.matches_name q "store")

(* ------------------------------------------------------------------ *)
(* Result key *)

let test_result_key_found () =
  let db = Lazy.force league_db in
  let r = team_result db in
  match Result_key.key_of_result db.keys db.kinds r (Query.of_string "team guard") with
  | Some key ->
    check string "key value" "Sharks" key.Result_key.value;
    check int "key entity" 1 key.Result_key.entity;
    check int "key attribute node" 2 key.Result_key.attribute
  | None -> Alcotest.fail "expected a key"

let test_result_key_return_entity_priority () =
  let db = Lazy.force league_db in
  let r = team_result db in
  (* return entity is player (name match); players' key is pname *)
  match Result_key.key_of_result db.keys db.kinds r (Query.of_string "player guard") with
  | Some key -> check string "player key" "Ann" key.Result_key.value
  | None -> Alcotest.fail "expected a key"

let test_result_key_none () =
  (* entities whose attributes are far from unique have no key: three
     instances share one value, uniqueness 1/3 < the fallback threshold *)
  let db = setup "<r><e><v>x</v></e><e><v>x</v></e><e><v>x</v></e></r>" in
  let r = Result_tree.full db.doc 0 in
  check bool "no key" true
    (Result_key.key_of_result db.keys db.kinds r (Query.of_string "e x") = None)

(* ------------------------------------------------------------------ *)
(* IList *)

let build_ilist db result q = Ilist.build db.kinds db.keys db.index result (Query.of_string q)

let test_ilist_order () =
  let db = Lazy.force league_db in
  let il = build_ilist db (team_result db) "guard team" in
  let items = List.map (fun (e : Ilist.entry) -> e.Ilist.item) (Ilist.entries il) in
  (match items with
  | Ilist.Keyword "guard" :: Ilist.Keyword "team" :: rest ->
    (* then entity names: player (3 instances) before any others *)
    (match rest with
    | Ilist.Entity_name "player" :: _ -> ()
    | _ -> Alcotest.fail "expected entity name player after keywords")
  | _ -> Alcotest.fail "keywords must come first in query order");
  (* ranks are sequential *)
  List.iteri
    (fun i (e : Ilist.entry) -> check int "rank" i e.Ilist.rank)
    (Ilist.entries il)

let test_ilist_key_present () =
  let db = Lazy.force league_db in
  let il = build_ilist db (team_result db) "team guard" in
  let has_key =
    List.exists
      (fun (e : Ilist.entry) ->
        match e.Ilist.item with
        | Ilist.Result_key "Sharks" -> true
        | _ -> false)
      (Ilist.entries il)
  in
  check bool "key in ilist" true has_key

let test_ilist_dedup () =
  let db = Lazy.force league_db in
  (* "player" is both keyword and entity name: must appear once *)
  let il = build_ilist db (team_result db) "player guard" in
  let displays = List.map (fun (e : Ilist.entry) -> Ilist.display e.Ilist.item) (Ilist.entries il) in
  let lowered = List.map String.lowercase_ascii displays in
  check bool "no duplicate display" true
    (List.length lowered = List.length (List.sort_uniq compare lowered))

let test_ilist_instances_are_result_members () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let il = build_ilist db r "guard team" in
  List.iter
    (fun (e : Ilist.entry) ->
      Array.iter
        (fun n -> check bool "instance in result" true (Result_tree.mem r n))
        e.Ilist.instances)
    (Ilist.entries il)

let test_ilist_keyword_instances () =
  let db = Lazy.force league_db in
  let il = build_ilist db (team_result db) "guard" in
  match Ilist.entries il with
  | first :: _ ->
    check bool "guard instances" true (Array.to_list first.Ilist.instances = [ 7; 12 ])
  | [] -> Alcotest.fail "empty ilist"

let test_ilist_uncoverable_keyword () =
  let db = Lazy.force league_db in
  (* keyword with no match inside this result *)
  let il = build_ilist db (team_result db) "wing guard" in
  let wing =
    List.find
      (fun (e : Ilist.entry) -> Ilist.display e.Ilist.item = "wing")
      (Ilist.entries il)
  in
  check int "wing has no instances here" 0 (Array.length wing.Ilist.instances);
  check bool "coverable excludes it" true
    (List.for_all (fun (e : Ilist.entry) -> Array.length e.Ilist.instances > 0) (Ilist.coverable il))

let test_ilist_to_string () =
  let db = Lazy.force league_db in
  let il = build_ilist db (team_result db) "guard" in
  let s = Ilist.to_string il in
  check bool "starts with keyword" true
    (String.length s >= 5 && String.sub s 0 5 = "guard")

(* ------------------------------------------------------------------ *)
(* Snippet tree *)

let test_snippet_initial () =
  let db = Lazy.force league_db in
  let s = Snippet_tree.create (team_result db) in
  check int "one element" 1 (Snippet_tree.element_count s);
  check int "zero edges" 0 (Snippet_tree.edge_count s);
  check bool "root in" true (Snippet_tree.mem s 1)

let test_snippet_cost_and_add () =
  let db = Lazy.force league_db in
  let s = Snippet_tree.create (team_result db) in
  (* pos node 7 needs player 4 and pos 7: cost 2 *)
  check int "cost of pos" 2 (Snippet_tree.cost_of s 7);
  let added = Snippet_tree.add s 7 in
  check int "added 2 nodes" 2 (List.length added);
  check int "edges now 2" 2 (Snippet_tree.edge_count s);
  check bool "path present" true (Snippet_tree.mem s 4 && Snippet_tree.mem s 7);
  (* sibling pname now costs 1 *)
  check int "sibling cost" 1 (Snippet_tree.cost_of s 5);
  check int "existing cost 0" 0 (Snippet_tree.cost_of s 4);
  check bool "re-add returns nothing" true (Snippet_tree.add s 7 = [])

let test_snippet_remove_undo () =
  let db = Lazy.force league_db in
  let s = Snippet_tree.create (team_result db) in
  let added = Snippet_tree.add s 7 in
  Snippet_tree.remove s added;
  check int "back to root" 1 (Snippet_tree.element_count s);
  check bool "removed" false (Snippet_tree.mem s 7)

let test_snippet_copy_independent () =
  let db = Lazy.force league_db in
  let s = Snippet_tree.create (team_result db) in
  let s2 = Snippet_tree.copy s in
  ignore (Snippet_tree.add s2 7);
  check bool "original untouched" false (Snippet_tree.mem s 7);
  check bool "copy has it" true (Snippet_tree.mem s2 7)

let test_snippet_non_member_rejected () =
  let db = Lazy.force league_db in
  let s = Snippet_tree.create (team_result db) in
  Alcotest.check_raises "node outside result"
    (Invalid_argument "Snippet_tree: node 20 is not a result element") (fun () ->
      ignore (Snippet_tree.cost_of s 20))

let test_snippet_contains_any () =
  let db = Lazy.force league_db in
  let s = Snippet_tree.create (team_result db) in
  check bool "root hit" true (Snippet_tree.contains_any s [| 5; 1 |]);
  check bool "none" false (Snippet_tree.contains_any s [| 5; 7 |])

let test_snippet_render_values_inline () =
  let db = Lazy.force league_db in
  let s = Snippet_tree.create (team_result db) in
  ignore (Snippet_tree.add s 2);
  let rendered = Snippet_tree.render s in
  check bool "value inline" true
    (let contains_substring hay needle =
       let lh = String.length hay and ln = String.length needle in
       let rec loop i = i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1)) in
       loop 0
     in
     contains_substring rendered "name \"Sharks\"")

let test_snippet_to_xml_keeps_values () =
  let db = Lazy.force league_db in
  let s = Snippet_tree.create (team_result db) in
  ignore (Snippet_tree.add s 2);
  let xml = Snippet_tree.to_xml s in
  check string "text kept" "Sharks" (Extract_xml.Types.text_content xml)

(* ------------------------------------------------------------------ *)
(* Greedy selector *)

let test_greedy_respects_bound () =
  let db = Lazy.force league_db in
  let r = team_result db in
  List.iter
    (fun bound ->
      let il = build_ilist db r "guard team" in
      let sel = Selector.greedy ~bound r il in
      check bool
        (Printf.sprintf "bound %d respected" bound)
        true
        (Snippet_tree.edge_count sel.Selector.snippet <= bound))
    [ 0; 1; 2; 3; 5; 8; 100 ]

let test_greedy_zero_bound () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let il = build_ilist db r "team guard" in
  let sel = Selector.greedy ~bound:0 r il in
  check int "no edges" 0 (Snippet_tree.edge_count sel.Selector.snippet);
  (* the root-only snippet still covers items whose instance is the root:
     keyword "team" matches the team node itself *)
  check bool "root item covered free" true
    (List.exists
       (fun (c : Selector.covered) -> c.Selector.instance = 1)
       sel.Selector.covered)

let test_greedy_large_bound_covers_all () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let il = build_ilist db r "guard team" in
  let sel = Selector.greedy ~bound:1000 r il in
  check int "everything coverable covered" (List.length (Ilist.coverable il))
    (Selector.covered_count sel);
  check bool "nothing skipped" true (sel.Selector.skipped = [])

let test_greedy_rank_priority () =
  (* With a tight budget the top-ranked item must win over later ones. *)
  let db = Lazy.force league_db in
  let r = team_result db in
  let il = build_ilist db r "guard" in
  let sel = Selector.greedy ~bound:2 r il in
  (* guard costs 2 (player + pos); it is rank 0 and must be covered *)
  check bool "rank 0 covered" true
    (List.exists (fun (c : Selector.covered) -> c.Selector.entry.Ilist.rank = 0) sel.Selector.covered)

let test_greedy_skip_then_continue () =
  (* an expensive item is skipped but a later cheap one still fits *)
  let src = "<r><deep><a><b><c><d>far</d></c></b></a></deep><near>close</near><near>x</near></r>" in
  let db = setup src in
  let r = Result_tree.full db.doc 0 in
  let il = build_ilist db r "far close" in
  (* far costs 5, close costs 1 *)
  let sel = Selector.greedy ~bound:2 r il in
  let covered_displays =
    List.map (fun (c : Selector.covered) -> Ilist.display c.Selector.entry.Ilist.item) sel.Selector.covered
  in
  check bool "far skipped" true (not (List.mem "far" covered_displays));
  check bool "close covered" true (List.mem "close" covered_displays)

let test_greedy_shares_paths () =
  (* covering a second item under an already-included entity is cheaper *)
  let db = Lazy.force league_db in
  let r = team_result db in
  let il = build_ilist db r "guard ann" in
  let sel = Selector.greedy ~bound:3 r il in
  (* guard (rank 0): cheapest instance is pos 7 under player 4 (cost 2);
     ann (rank 1): pname 5 under the SAME player costs only 1. The entity
     names player and team are then covered for free (player 4 and the
     root are already in the snippet). *)
  let displays =
    List.map (fun (c : Selector.covered) -> Ilist.display c.Selector.entry.Ilist.item)
      sel.Selector.covered
  in
  check bool "guard covered" true (List.mem "guard" displays);
  check bool "ann covered" true (List.mem "ann" displays);
  check bool "player free" true (List.mem "player" displays);
  check int "exactly 3 edges" 3 (Snippet_tree.edge_count sel.Selector.snippet)

let test_greedy_coverage_metric () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let il = build_ilist db r "guard team" in
  let sel = Selector.greedy ~bound:1000 r il in
  Alcotest.check (Alcotest.float 1e-9) "full coverage" 1.0 (Selector.coverage sel)

let test_greedy_negative_bound () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let il = build_ilist db r "guard" in
  Alcotest.check_raises "negative" (Invalid_argument "Selector.greedy: negative bound")
    (fun () -> ignore (Selector.greedy ~bound:(-1) r il))

let test_greedy_strict_prefix_mode () =
  (* far (rank 0) costs 5, close (rank 1) costs 1: with bound 2 the default
     mode covers close; strict-prefix stops at far and covers nothing *)
  let src = "<r><deep><a><b><c><d>far</d></c></b></a></deep><near>close</near><near>x</near></r>" in
  let db = setup src in
  let r = Result_tree.full db.doc 0 in
  let il = build_ilist db r "far close" in
  let relaxed = Selector.greedy ~bound:2 r il in
  let strict = Selector.greedy ~skip_overflow:false ~bound:2 r il in
  check bool "relaxed covers close" true
    (List.exists
       (fun (c : Selector.covered) -> Ilist.display c.Selector.entry.Ilist.item = "close")
       relaxed.Selector.covered);
  check bool "strict covers nothing after overflow" true
    (not
       (List.exists
          (fun (c : Selector.covered) -> Ilist.display c.Selector.entry.Ilist.item = "close")
          strict.Selector.covered));
  check bool "strict never beats relaxed" true
    (Selector.covered_count strict <= Selector.covered_count relaxed)

let test_greedy_deterministic () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let run () =
    let il = build_ilist db r "guard team" in
    let sel = Selector.greedy ~bound:4 r il in
    List.map (fun (c : Selector.covered) -> c.Selector.instance) sel.Selector.covered
  in
  check bool "same instances chosen" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Optimal selector *)

let test_optimal_at_least_greedy () =
  let db = Lazy.force league_db in
  let r = team_result db in
  List.iter
    (fun bound ->
      let il = build_ilist db r "guard team sharks" in
      let greedy = Selector.greedy ~bound r il in
      let opt = Optimal.solve ~bound r il in
      check bool
        (Printf.sprintf "bound %d: optimal >= greedy" bound)
        true
        (Selector.covered_count opt.Optimal.selection >= Selector.covered_count greedy))
    [ 0; 1; 2; 3; 4; 6 ]

let test_optimal_respects_bound () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let il = build_ilist db r "guard team" in
  let opt = Optimal.solve ~bound:3 r il in
  check bool "bound respected" true
    (Snippet_tree.edge_count opt.Optimal.selection.Selector.snippet <= 3);
  check bool "exact" true opt.Optimal.exact

let test_optimal_beats_greedy_sometimes () =
  (* Classic greedy trap: the highest-ranked item has two instances, one of
     which unlocks nothing, while the cheaper shared subtree serves the two
     later items. Greedy takes rank order; optimal can cover more. *)
  let src =
    "<r>\
     <x><k1>alpha</k1></x>\
     <y><k1>alpha</k1><k2>beta</k2><k3>gamma</k3></y>\
     </r>"
  in
  let db = setup src in
  let r = Result_tree.full db.doc 0 in
  let il = build_ilist db r "alpha beta gamma" in
  List.iter
    (fun bound ->
      let greedy = Selector.greedy ~bound r il in
      let opt = Optimal.solve ~bound r il in
      check bool "optimal >= greedy" true
        (Selector.covered_count opt.Optimal.selection >= Selector.covered_count greedy))
    [ 2; 3; 4; 5 ]

let test_optimal_step_cap () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let il = build_ilist db r "guard team sharks ann" in
  let opt = Optimal.solve ~max_steps:3 ~bound:10 r il in
  check bool "truncated flagged" true (not opt.Optimal.exact)

let test_optimal_zero_bound () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let il = build_ilist db r "team" in
  let opt = Optimal.solve ~bound:0 r il in
  check int "no edges" 0 (Snippet_tree.edge_count opt.Optimal.selection.Selector.snippet)

(* ------------------------------------------------------------------ *)
(* Text baseline *)

let test_text_baseline_finds_keywords () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let s = Text_baseline.generate ~window_tokens:3 r (Query.of_string "guard") in
  check bool "covers guard" true (Text_baseline.covers s "guard");
  check int "hits" 1 s.Text_baseline.keyword_hits

let test_text_baseline_window_size () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let s = Text_baseline.generate ~window_tokens:4 r (Query.of_string "guard") in
  check bool "window at most 4" true (List.length s.Text_baseline.window <= 4)

let test_text_baseline_maximizes_distinct () =
  (* the window containing both keywords must win over single-keyword
     windows *)
  let db = setup "<r><a>apple pie</a><b>filler filler filler</b><c>apple cake</c></r>" in
  let r = Result_tree.full db.doc 0 in
  let s = Text_baseline.generate ~window_tokens:2 r (Query.of_string "apple cake") in
  check int "both in window" 2 s.Text_baseline.keyword_hits

let test_text_baseline_short_text () =
  let db = setup "<r><a>tiny</a></r>" in
  let r = Result_tree.full db.doc 0 in
  let s = Text_baseline.generate ~window_tokens:50 r (Query.of_string "tiny") in
  check bool "whole text" true (s.Text_baseline.window = [ "tiny" ]);
  check int "hit" 1 s.Text_baseline.keyword_hits

let test_text_baseline_window_for_bound () =
  check int "2x" 12 (Text_baseline.window_for_bound 6);
  check int "min 1" 1 (Text_baseline.window_for_bound 0)

(* ------------------------------------------------------------------ *)
(* Naive baseline *)

let test_naive_respects_bound () =
  let db = Lazy.force league_db in
  let r = team_result db in
  List.iter
    (fun bound ->
      let s = Naive_baseline.generate ~bound r in
      check bool
        (Printf.sprintf "bound %d" bound)
        true
        (Snippet_tree.edge_count s <= bound))
    [ 0; 1; 3; 7; 100 ]

let test_naive_breadth_first () =
  let db = Lazy.force league_db in
  let r = team_result db in
  let s = Naive_baseline.generate ~bound:2 r in
  (* BFS adds the first two children of team: name 2 and player 4 *)
  check bool "name in" true (Snippet_tree.mem s 2);
  check bool "player in" true (Snippet_tree.mem s 4);
  check bool "deeper not in" false (Snippet_tree.mem s 5)

let test_naive_exhausts_small_results () =
  let db = setup "<r><a>1</a></r>" in
  let r = Result_tree.full db.doc 0 in
  let s = Naive_baseline.generate ~bound:100 r in
  check int "everything" 1 (Snippet_tree.edge_count s)

(* ------------------------------------------------------------------ *)
(* Pipeline *)

let test_pipeline_end_to_end () =
  let db = Pipeline.of_xml_string league in
  let results = Pipeline.run ~bound:4 db "guard team" in
  check int "one result" 1 (List.length results);
  let r = List.hd results in
  check bool "bound respected" true
    (Snippet_tree.edge_count r.Pipeline.selection.Selector.snippet <= 4);
  check bool "ilist non-empty" true (Ilist.length r.Pipeline.ilist > 0)

let test_pipeline_accessors () =
  let db = Pipeline.of_xml_string league in
  check bool "doc" true (Document.node_count (Pipeline.document db) > 0);
  check bool "index" true (Inverted_index.contains (Pipeline.index db) "guard")

let test_pipeline_external_result () =
  (* the orthogonality path: hand the pipeline a result produced elsewhere *)
  let db = Pipeline.of_xml_string league in
  let result = Result_tree.full (Pipeline.document db) 1 in
  let out = Pipeline.snippet_of ~bound:3 db result (Query.of_string "guard") in
  check bool "bound" true (Snippet_tree.edge_count out.Pipeline.selection.Selector.snippet <= 3)

let test_pipeline_no_results () =
  let db = Pipeline.of_xml_string league in
  check int "no match" 0 (List.length (Pipeline.run db "zebra"));
  check int "empty query" 0 (List.length (Pipeline.run db ""))

let test_pipeline_limit () =
  let db = Pipeline.of_xml_string league in
  let all = Pipeline.run db "player" in
  let limited = Pipeline.run ~limit:2 db "player" in
  check bool "limit applies" true (List.length limited <= 2 && List.length limited <= List.length all)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_full_snippet_scores_one () =
  let db = Pipeline.of_xml_string league in
  let results = Pipeline.run ~bound:1000 db "guard team" in
  let r = List.hd results in
  let tokens = Metrics.snippet_tokens db r.Pipeline.selection.Selector.snippet in
  let c = Metrics.coverage ~tokens r.Pipeline.ilist in
  Alcotest.check (Alcotest.float 1e-9) "keywords" 1.0 c.Metrics.keywords;
  Alcotest.check (Alcotest.float 1e-9) "entities" 1.0 c.Metrics.entity_names;
  Alcotest.check (Alcotest.float 1e-9) "key" 1.0 c.Metrics.result_key;
  Alcotest.check (Alcotest.float 1e-9) "all" 1.0 c.Metrics.all_items;
  Alcotest.check (Alcotest.float 1e-9) "weighted" 1.0 c.Metrics.rank_weighted

let test_metrics_empty_tokens_score_zero () =
  let db = Pipeline.of_xml_string league in
  let r = List.hd (Pipeline.run ~bound:4 db "guard team") in
  let c = Metrics.coverage ~tokens:[] r.Pipeline.ilist in
  Alcotest.check (Alcotest.float 1e-9) "keywords 0" 0.0 c.Metrics.keywords;
  Alcotest.check (Alcotest.float 1e-9) "key 0" 0.0 c.Metrics.result_key;
  Alcotest.check (Alcotest.float 1e-9) "all 0" 0.0 c.Metrics.all_items

let test_metrics_covers_multi_token () =
  check bool "multi-token yes" true (Metrics.covers [ "brook"; "brothers"; "x" ] "Brook Brothers");
  check bool "partial no" false (Metrics.covers [ "brook" ] "Brook Brothers");
  check bool "empty value no" false (Metrics.covers [ "a" ] "---")

let test_metrics_monotone_in_bound () =
  (* more budget can only increase (or keep) the rank-weighted coverage of
     the snippet actually built, measured against the same ilist — not
     strictly guaranteed by greedy, but holds on this fixture *)
  let db = Pipeline.of_xml_string league in
  let r4 = List.hd (Pipeline.run ~bound:2 db "guard team") in
  let r8 = List.hd (Pipeline.run ~bound:8 db "guard team") in
  let score (r : Pipeline.snippet_result) =
    (Metrics.coverage
       ~tokens:(Metrics.snippet_tokens db r.Pipeline.selection.Selector.snippet)
       r.Pipeline.ilist)
      .Metrics.rank_weighted
  in
  check bool "more budget >= less" true (score r8 >= score r4)

(* ------------------------------------------------------------------ *)
(* Deadlines and graceful degradation *)

module Deadline = Extract_util.Deadline
module Faults = Extract_util.Faults

let with_faults spec f =
  match Faults.configure spec with
  | Error e -> Alcotest.failf "configure %S: %s" spec e
  | Ok () -> Fun.protect ~finally:Faults.clear f

let expired_deadline () = Deadline.of_ms_opt (Some 0)

let test_degraded_on_expired_deadline () =
  let db = Pipeline.of_xml_string league in
  let full = Pipeline.run ~bound:4 db "guard" in
  let degraded = Pipeline.run ~bound:4 ~deadline:(expired_deadline ()) db "guard" in
  check int "same result count" (List.length full) (List.length degraded);
  check bool "has results" true (degraded <> []);
  List.iter2
    (fun (f : Pipeline.snippet_result) (d : Pipeline.snippet_result) ->
      check bool "tagged degraded" true d.Pipeline.degraded;
      check bool "full run not degraded" false f.Pipeline.degraded;
      check bool "same result tree" true
        (Result_tree.root f.Pipeline.result = Result_tree.root d.Pipeline.result);
      (* the fallback is still a valid snippet: rooted, within bound *)
      let snip = d.Pipeline.selection.Selector.snippet in
      check bool "bound respected" true (Snippet_tree.edge_count snip <= 4);
      check bool "root present" true
        (Snippet_tree.mem snip (Result_tree.root d.Pipeline.result));
      check int "ilist empty" 0 (Ilist.length d.Pipeline.ilist);
      check bool "no coverage accounting" true (d.Pipeline.selection.Selector.covered = []))
    full degraded

let test_degraded_matches_naive_baseline () =
  let db = Pipeline.of_xml_string league in
  let degraded = Pipeline.run ~bound:3 ~deadline:(expired_deadline ()) db "guard" in
  List.iter
    (fun (d : Pipeline.snippet_result) ->
      let naive = Naive_baseline.generate ~bound:3 d.Pipeline.result in
      check bool "degraded snippet = naive baseline" true
        (Snippet_tree.nodes d.Pipeline.selection.Selector.snippet = Snippet_tree.nodes naive))
    degraded

let test_degraded_all_run_variants () =
  let db = Pipeline.of_xml_string league in
  let d = expired_deadline () in
  let all_degraded rs = rs <> [] && List.for_all (fun r -> r.Pipeline.degraded) rs in
  check bool "run" true (all_degraded (Pipeline.run ~deadline:d db "guard"));
  check bool "run_parallel" true
    (all_degraded (Pipeline.run_parallel ~domains:2 ~deadline:d db "guard"));
  check bool "run_ranked" true
    (all_degraded (List.map snd (Pipeline.run_ranked ~deadline:d db "guard")));
  check bool "run_differentiated" true
    (all_degraded (Pipeline.run_differentiated ~deadline:d db "guard"))

let test_no_deadline_never_degrades () =
  let db = Pipeline.of_xml_string league in
  let rs = Pipeline.run db "guard" in
  check bool "has results" true (rs <> []);
  check bool "none degraded" true
    (List.for_all (fun r -> not r.Pipeline.degraded) rs)

let test_snippet_fault_degrades_one_result () =
  let db = Pipeline.of_xml_string league in
  with_faults "pipeline.snippet:once" (fun () ->
      match Pipeline.run ~bound:4 db "guard" with
      | [] -> Alcotest.fail "no results"
      | first :: rest ->
        check bool "first degraded" true first.Pipeline.degraded;
        check bool "rest intact" true
          (List.for_all (fun r -> not r.Pipeline.degraded) rest);
        check int "fault fired once" 1 (Faults.fired "pipeline.snippet"))

let test_search_fault_raises () =
  let db = Pipeline.of_xml_string league in
  with_faults "pipeline.search:fail" (fun () ->
      match Pipeline.run db "guard" with
      | _ -> Alcotest.fail "pipeline.search fault did not fire"
      | exception Faults.Injected (point, _) -> check string "point" "pipeline.search" point)

let test_build_fault_raises () =
  with_faults "pipeline.build:fail" (fun () ->
      match Pipeline.of_xml_string league with
      | _ -> Alcotest.fail "pipeline.build fault did not fire"
      | exception Faults.Injected (point, _) -> check string "point" "pipeline.build" point)

let test_cache_not_polluted_by_degraded () =
  let db = Pipeline.of_xml_string league in
  let cache = Snippet_cache.create ~capacity:8 () in
  let degraded = Snippet_cache.run ~deadline:(expired_deadline ()) cache db "guard" in
  check bool "degraded served" true
    (List.exists (fun r -> r.Pipeline.degraded) degraded);
  check int "but not cached" 0 (Snippet_cache.length cache);
  (* the same query under no pressure is computed fresh and cached *)
  let full = Snippet_cache.run cache db "guard" in
  check bool "fresh run clean" true
    (List.for_all (fun r -> not r.Pipeline.degraded) full);
  check int "now cached" 1 (Snippet_cache.length cache);
  let again = Snippet_cache.run ~deadline:(expired_deadline ()) cache db "guard" in
  (* a hit is served from cache even under an expired deadline: no work *)
  check bool "hit beats deadline" true
    (List.for_all (fun r -> not r.Pipeline.degraded) again)

let test_corpus_deadline_passthrough () =
  let corpus =
    Corpus.of_list [ "league", Pipeline.of_xml_string league ]
  in
  let hits = Corpus.run ~deadline:(expired_deadline ()) corpus "guard" in
  check bool "has hits" true (hits <> []);
  check bool "all degraded" true
    (List.for_all (fun h -> h.Corpus.snippet.Pipeline.degraded) hits)

let test_corpus_rebuilds_corrupt_artifact () =
  let dir = Filename.temp_file "extract_corpus" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let xml = Filename.concat dir "league.xml" in
  let bundle = Filename.concat dir "league.bundle" in
  let oc = open_out xml in
  output_string oc league;
  close_out oc;
  let db = Pipeline.of_file xml in
  Pipeline.save bundle db;
  (* flip one payload byte: the magic still sniffs but the seal no longer
     verifies *)
  let ic = open_in_bin bundle in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let bytes = Bytes.of_string data in
  let pos = Bytes.length bytes - 2 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0xff));
  let corrupt = Bytes.to_string bytes in
  let oc = open_out_bin bundle in
  output_string oc corrupt;
  close_out oc;
  let warnings = ref [] in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove xml;
      Sys.remove bundle;
      Unix.rmdir dir)
    (fun () ->
      let rebuilt =
        Corpus.load_file ~on_warning:(fun w -> warnings := w :: !warnings) bundle
      in
      check int "one warning" 1 (List.length !warnings);
      check bool "warning names the source" true
        (match !warnings with
        | [ w ] ->
          let contains hay needle =
            let lh = String.length hay and ln = String.length needle in
            let rec loop i = i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1)) in
            ln = 0 || loop 0
          in
          contains w "league.xml"
        | _ -> false);
      check bool "rebuilt database answers" true (Pipeline.run rebuilt "guard" <> []));
  (* with no sibling XML the corruption is fatal *)
  let lone = Filename.temp_file "extract_lone" ".bundle" in
  let oc = open_out_bin lone in
  output_string oc corrupt;
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove lone)
    (fun () ->
      match Corpus.load_file lone with
      | _ -> Alcotest.fail "corrupt artifact without a source should raise"
      | exception Extract_store.Codec.Corrupt _ -> ())

let suites =
  [
    ( "snippet.metrics",
      [
        Alcotest.test_case "full snippet = 1.0" `Quick test_metrics_full_snippet_scores_one;
        Alcotest.test_case "empty tokens = 0" `Quick test_metrics_empty_tokens_score_zero;
        Alcotest.test_case "multi-token covers" `Quick test_metrics_covers_multi_token;
        Alcotest.test_case "monotone fixture" `Quick test_metrics_monotone_in_bound;
      ] );
    ( "snippet.feature",
      [
        Alcotest.test_case "counts" `Quick test_feature_counts;
        Alcotest.test_case "stats" `Quick test_feature_stats;
        Alcotest.test_case "dominance rule" `Quick test_feature_dominance_rule;
        Alcotest.test_case "sorted dominant" `Quick test_feature_dominant_sorted;
        Alcotest.test_case "instances" `Quick test_feature_instances;
        Alcotest.test_case "sum identity" `Quick test_feature_sum_identity;
        Alcotest.test_case "root fallback" `Quick test_feature_root_entity_fallback;
      ] );
    ( "snippet.return_entity",
      [
        Alcotest.test_case "name match" `Quick test_return_entity_name_match;
        Alcotest.test_case "attribute match" `Quick test_return_entity_attribute_match;
        Alcotest.test_case "fallback highest" `Quick test_return_entity_fallback_highest;
        Alcotest.test_case "highest" `Quick test_highest_entities;
        Alcotest.test_case "supporting" `Quick test_supporting_entities;
        Alcotest.test_case "token matching" `Quick test_matches_name_tokens;
      ] );
    ( "snippet.result_key",
      [
        Alcotest.test_case "found" `Quick test_result_key_found;
        Alcotest.test_case "return entity priority" `Quick test_result_key_return_entity_priority;
        Alcotest.test_case "absent" `Quick test_result_key_none;
      ] );
    ( "snippet.ilist",
      [
        Alcotest.test_case "order" `Quick test_ilist_order;
        Alcotest.test_case "key present" `Quick test_ilist_key_present;
        Alcotest.test_case "dedup" `Quick test_ilist_dedup;
        Alcotest.test_case "instances in result" `Quick test_ilist_instances_are_result_members;
        Alcotest.test_case "keyword instances" `Quick test_ilist_keyword_instances;
        Alcotest.test_case "uncoverable" `Quick test_ilist_uncoverable_keyword;
        Alcotest.test_case "to_string" `Quick test_ilist_to_string;
      ] );
    ( "snippet.snippet_tree",
      [
        Alcotest.test_case "initial" `Quick test_snippet_initial;
        Alcotest.test_case "cost and add" `Quick test_snippet_cost_and_add;
        Alcotest.test_case "remove/undo" `Quick test_snippet_remove_undo;
        Alcotest.test_case "copy" `Quick test_snippet_copy_independent;
        Alcotest.test_case "non-member" `Quick test_snippet_non_member_rejected;
        Alcotest.test_case "contains_any" `Quick test_snippet_contains_any;
        Alcotest.test_case "values inline" `Quick test_snippet_render_values_inline;
        Alcotest.test_case "xml values" `Quick test_snippet_to_xml_keeps_values;
      ] );
    ( "snippet.selector",
      [
        Alcotest.test_case "respects bound" `Quick test_greedy_respects_bound;
        Alcotest.test_case "zero bound" `Quick test_greedy_zero_bound;
        Alcotest.test_case "covers all" `Quick test_greedy_large_bound_covers_all;
        Alcotest.test_case "rank priority" `Quick test_greedy_rank_priority;
        Alcotest.test_case "skip then continue" `Quick test_greedy_skip_then_continue;
        Alcotest.test_case "shares paths" `Quick test_greedy_shares_paths;
        Alcotest.test_case "coverage metric" `Quick test_greedy_coverage_metric;
        Alcotest.test_case "negative bound" `Quick test_greedy_negative_bound;
        Alcotest.test_case "strict prefix" `Quick test_greedy_strict_prefix_mode;
        Alcotest.test_case "deterministic" `Quick test_greedy_deterministic;
      ] );
    ( "snippet.optimal",
      [
        Alcotest.test_case ">= greedy" `Quick test_optimal_at_least_greedy;
        Alcotest.test_case "respects bound" `Quick test_optimal_respects_bound;
        Alcotest.test_case "beats greedy" `Quick test_optimal_beats_greedy_sometimes;
        Alcotest.test_case "step cap" `Quick test_optimal_step_cap;
        Alcotest.test_case "zero bound" `Quick test_optimal_zero_bound;
      ] );
    ( "snippet.text_baseline",
      [
        Alcotest.test_case "finds keywords" `Quick test_text_baseline_finds_keywords;
        Alcotest.test_case "window size" `Quick test_text_baseline_window_size;
        Alcotest.test_case "maximizes distinct" `Quick test_text_baseline_maximizes_distinct;
        Alcotest.test_case "short text" `Quick test_text_baseline_short_text;
        Alcotest.test_case "window for bound" `Quick test_text_baseline_window_for_bound;
      ] );
    ( "snippet.naive_baseline",
      [
        Alcotest.test_case "respects bound" `Quick test_naive_respects_bound;
        Alcotest.test_case "breadth first" `Quick test_naive_breadth_first;
        Alcotest.test_case "small results" `Quick test_naive_exhausts_small_results;
      ] );
    ( "snippet.pipeline",
      [
        Alcotest.test_case "end to end" `Quick test_pipeline_end_to_end;
        Alcotest.test_case "accessors" `Quick test_pipeline_accessors;
        Alcotest.test_case "external result" `Quick test_pipeline_external_result;
        Alcotest.test_case "no results" `Quick test_pipeline_no_results;
        Alcotest.test_case "limit" `Quick test_pipeline_limit;
      ] );
    ( "snippet.degraded",
      [
        Alcotest.test_case "expired deadline" `Quick test_degraded_on_expired_deadline;
        Alcotest.test_case "naive fallback" `Quick test_degraded_matches_naive_baseline;
        Alcotest.test_case "all run variants" `Quick test_degraded_all_run_variants;
        Alcotest.test_case "no deadline" `Quick test_no_deadline_never_degrades;
        Alcotest.test_case "snippet fault" `Quick test_snippet_fault_degrades_one_result;
        Alcotest.test_case "search fault" `Quick test_search_fault_raises;
        Alcotest.test_case "build fault" `Quick test_build_fault_raises;
        Alcotest.test_case "cache unpolluted" `Quick test_cache_not_polluted_by_degraded;
        Alcotest.test_case "corpus deadline" `Quick test_corpus_deadline_passthrough;
        Alcotest.test_case "corpus rebuild" `Quick test_corpus_rebuilds_corrupt_artifact;
      ] );
  ]
