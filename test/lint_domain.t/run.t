Domain-safety self-test: seeded concurrency violations must each be
caught by the matching rule, and a properly annotated module must be
silent.

  $ mkdir -p proj/bin

An unguarded top-level ref in a module that spawns domains (the
fixtures live under bin/, which the missing-mli rule exempts, to keep
the output focused on the concurrency rules):

  $ cat > proj/bin/worker.ml <<'EOF'
  > let pending : int list ref = ref []
  > let run () = ignore (Domain.spawn (fun () -> pending := []))
  > EOF

  $ extract-lint proj
  proj/bin/worker.ml:1: [domain-safety] shared mutable state: ref `pending` has no concurrency discipline; use Atomic/Domain.DLS, or annotate (* guarded-by: <mutex> *), (* domain-local *), (* init-only *) or (* read-only *) with a justification
  1 violation(s) in 1 file(s) scanned
  [1]

A Mutex.lock without a matching unlock in the same definition, and an
unlock without a lock:

  $ cat > proj/bin/worker.ml <<'EOF'
  > let lock = Mutex.create ()
  > let park () = Mutex.lock lock
  > let free () = Mutex.unlock lock
  > EOF

  $ extract-lint proj
  proj/bin/worker.ml:2: [lock-pairing] Mutex.lock lock without a matching Mutex.unlock in this definition (did you mean Mutex.protect?)
  proj/bin/worker.ml:3: [lock-pairing] Mutex.unlock lock without a matching Mutex.lock in this definition
  2 violation(s) in 1 file(s) scanned
  [1]

Raising while a mutex is held leaks the lock; the canonical
with_lock wrapper (exception branch unlocks before re-raising) is the
sanctioned shape and stays silent:

  $ cat > proj/bin/worker.ml <<'EOF'
  > exception Empty
  > let lock = Mutex.create ()
  > let pop q =
  >   Mutex.lock lock;
  >   if Queue.is_empty q then raise Empty;
  >   let v = Queue.pop q in
  >   Mutex.unlock lock;
  >   v
  > let with_lock f =
  >   Mutex.lock lock;
  >   match f () with
  >   | v -> Mutex.unlock lock; v
  >   | exception e -> Mutex.unlock lock; raise e
  > EOF
  $ cat > proj/bin/worker.mli <<'EOF'
  > exception Empty
  > val pop : 'a Queue.t -> 'a
  > val with_lock : (unit -> 'a) -> 'a
  > EOF

  $ extract-lint proj
  proj/bin/worker.ml:5: [lock-raise] raise while holding lock; unlock in an exception branch (match ... | exception e -> unlock; raise e) or use Mutex.protect
  1 violation(s) in 2 file(s) scanned
  [1]

  $ rm proj/bin/worker.mli

A guarded-by annotation naming a mutex that does not exist is stale;
one naming a real guard (here a top-level Mutex.create) is accepted:

  $ cat > proj/bin/worker.ml <<'EOF'
  > let lock = Mutex.create ()
  > (* guarded-by: registry_lock *)
  > let table : (string, int) Hashtbl.t = Hashtbl.create 8
  > let bump k = with_lock (fun () -> Hashtbl.replace table k 1)
  > and with_lock f = Mutex.lock lock; let v = f () in Mutex.unlock lock; v
  > EOF

  $ extract-lint proj
  proj/bin/worker.ml:2: [stale-annotation] stale guarded-by: no mutex named `registry_lock` (expected a top-level Mutex.create binding or a `: Mutex.t` field in proj/bin/worker.ml)
  1 violation(s) in 1 file(s) scanned
  [1]

A fully disciplined module — Atomic state, a correctly named guard,
domain-local and init-only annotations — is silent even though it
spawns domains and carries mutable fields:

  $ cat > proj/bin/worker.ml <<'EOF'
  > let lock = Mutex.create ()
  > let served = Atomic.make 0
  > let verbose = ref false (* init-only — set by Arg.parse before spawn *)
  > (* guarded-by: lock *)
  > let table : (string, int) Hashtbl.t = Hashtbl.create 8
  > type scratch = {
  >   mutable pos : int; (* domain-local — one scratch per worker domain *)
  > }
  > let with_lock f = Mutex.lock lock; match f () with
  >   | v -> Mutex.unlock lock; v
  >   | exception e -> Mutex.unlock lock; raise e
  > let bump k = with_lock (fun () -> Hashtbl.replace table k 1)
  > let run () =
  >   ignore (Domain.spawn (fun () ->
  >     let s = { pos = 0 } in
  >     s.pos <- 1;
  >     if !verbose then bump "spawned";
  >     Atomic.incr served))
  > EOF

  $ extract-lint proj

The machine-readable output carries the same diagnostics with a
stable schema (exit code 1 is part of the contract):

  $ cat > proj/bin/worker.ml <<'EOF'
  > let lock = Mutex.create ()
  > let park () = Mutex.lock lock
  > EOF

  $ extract-lint --format=json proj
  {
    "version": 1,
    "files_scanned": 1,
    "violations": [
      { "file": "proj/bin/worker.ml", "line": 2, "rule": "lock-pairing", "message": "Mutex.lock lock without a matching Mutex.unlock in this definition (did you mean Mutex.protect?)" }
    ],
    "total": 1
  }
  [1]

The shared-state catalogue renders the disciplines the analyzer
resolved (here: one guard, one guarded table):

  $ cat > proj/bin/worker.ml <<'EOF'
  > let lock = Mutex.create ()
  > (* guarded-by: lock *)
  > let table : (string, int) Hashtbl.t = Hashtbl.create 8
  > let bump k = Mutex.lock lock; Hashtbl.replace table k 1; Mutex.unlock lock
  > let run () = ignore (Domain.spawn bump)
  > EOF

  $ extract-lint --concurrency-doc proj | grep -E '^\| Worker'
  | Worker | `lock` | Mutex (guard) | guard (mutex) | proj/bin/worker.ml:1 |
  | Worker | `table` | Hashtbl | guarded by `lock` | proj/bin/worker.ml:3 |
