(* Crash harness for the live store: the real kill-9 matrix.

   For every (operation × fault point) pair, a forked child performs the
   operation with a crash fault armed at that point. The fault engine
   dies with [Unix._exit 137] — no at_exit handlers, no buffered flushes,
   the honest power-cut approximation available inside one process. The
   parent then reopens the directory and asserts the crash contract:

   - fsck ([Check.check_live]) reports no damage (benign leftovers —
     a torn tail, a stale checkpoint, stray temp files — are notes);
   - the recovered member set is the pre-state or the post-state of the
     interrupted operation, never a third state;
   - a query over the recovered corpus runs;
   - a second recovery is a fixed point (the first one healed).

   Forking happens before any Domain.spawn, so the children never
   inherit a domain's world. In-process fault tests (test_live.ml) cover
   the same windows without fork; this harness is the end-to-end check
   that a whole process dying mid-syscall-sequence recovers. *)

module Live = Extract_store.Live
module Live_corpus = Extract_snippet.Live_corpus
module Journal = Extract_store.Journal
module Check = Extract_check.Check
module Faults = Extract_util.Faults

let failures = ref 0

let fail scenario fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %-28s %s\n%!" scenario msg)
    fmt

(* ------------------------------------------------------------------ *)
(* Scratch stores *)

let temp_dir () =
  let path = Filename.temp_file "extract_crash" "" in
  Sys.remove path;
  path

let doc tag city name =
  Printf.sprintf "<%s><city>%s</city><name>%s</name></%s>" tag city name tag

(* Seed: two compacted members plus one journalled (uncompacted) member,
   so every crash scenario runs over a store with both a snapshot and a
   live journal tail. *)
let seed dir =
  let s = Live.open_dir dir in
  Live.add s ~name:"a.xml" ~xml:(doc "store" "Houston" "Soccer West");
  Live.add s ~name:"b.xml" ~xml:(doc "store" "Dallas" "Galleria");
  ignore (Live.compact s);
  Live.add s ~name:"c.xml" ~xml:(doc "store" "Austin" "Riverside");
  Live.close s

let member_names dir =
  let s = Live.open_dir dir in
  let names = List.sort String.compare (Live.member_names (Live.view s)) in
  Live.close s;
  names

let string_of_names names = "[" ^ String.concat " " names ^ "]"

(* The recovered state is compared by observable content, not just the
   member list: every probe keyword's hit sources. A replace or compact
   interrupted mid-flight keeps the member list fixed — only the probes
   can tell the pre- from the post-state. *)
let probes = [ "soccer"; "galleria"; "riverside"; "etoile"; "houston"; "paris" ]

let content_state dir =
  let lc = Live_corpus.open_dir ~read_only:true dir in
  let state =
    List.map
      (fun q ->
        ( q,
          List.sort String.compare
            (List.map (fun (h : Live_corpus.hit) -> h.Live_corpus.source)
               (Live_corpus.run lc q)) ))
      probes
  in
  Live_corpus.close lc;
  state

let state_of dir = member_names dir, content_state dir

let string_of_state (names, content) =
  Printf.sprintf "%s {%s}" (string_of_names names)
    (String.concat "; "
       (List.filter_map
          (fun (q, sources) ->
            if sources = [] then None
            else Some (Printf.sprintf "%s->%s" q (String.concat "," sources)))
          content))

(* ------------------------------------------------------------------ *)
(* Operations under test *)

type operation = {
  op_name : string;
  perform : Live.t -> unit;
}

let op_add =
  {
    op_name = "add";
    perform = (fun s -> Live.add s ~name:"d.xml" ~xml:(doc "store" "Paris" "Etoile"));
  }

let op_replace =
  {
    op_name = "replace";
    perform = (fun s -> Live.add s ~name:"a.xml" ~xml:(doc "store" "Paris" "Etoile"));
  }

let op_remove = { op_name = "remove"; perform = (fun s -> ignore (Live.remove s "a.xml")) }

let op_compact = { op_name = "compact"; perform = (fun s -> ignore (Live.compact s)) }

(* every fault point on each operation's write path *)
let scenarios =
  [
    op_add, [ "journal.append:crash"; "journal.torn:once"; "live.apply:crash" ];
    op_replace, [ "journal.append:crash"; "journal.torn:once"; "live.apply:crash" ];
    op_remove, [ "journal.append:crash"; "journal.torn:once"; "live.apply:crash" ];
    ( op_compact,
      [
        "snapshot.write:crash";
        "snapshot.rename:crash";
        "journal.reset:crash";
        "live.prune:crash";
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* One scenario: fork, crash, recover, verify *)

let run_child dir op spec =
  (match Faults.configure spec with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "child: bad fault spec %s: %s\n%!" spec msg;
    Unix._exit 3);
  let s = Live.open_dir dir in
  (try op.perform s
   with e ->
     Printf.eprintf "child: %s raised %s\n%!" op.op_name (Printexc.to_string e);
     Unix._exit 4);
  Live.close s;
  Unix._exit 0

let run_scenario op spec =
  let scenario = Printf.sprintf "%s/%s" op.op_name spec in
  let failures_before = !failures in
  let dir = temp_dir () in
  seed dir;
  let pre = state_of dir in
  (* the reference post-state: the same seed with the operation run to
     completion, no faults, in a second directory *)
  let post =
    let ref_dir = temp_dir () in
    seed ref_dir;
    let s = Live.open_dir ref_dir in
    op.perform s;
    Live.close s;
    state_of ref_dir
  in
  match Unix.fork () with
  | 0 -> run_child dir op spec
  | pid -> begin
    let _, status = Unix.waitpid [] pid in
    (match status with
    | Unix.WEXITED n when n = Faults.crash_exit_code || n = 0 ->
      (* 0 = the fault point was never reached on this path; the op then
         completed and the state assertion below still applies *)
      ()
    | Unix.WEXITED n -> fail scenario "child exited %d (expected 137 or 0)" n
    | Unix.WSIGNALED sg -> fail scenario "child killed by signal %d" sg
    | Unix.WSTOPPED sg -> fail scenario "child stopped by signal %d" sg);
    (* fsck before any writable open: recovery reads must already agree *)
    let issues, _notes = Check.check_live dir in
    List.iter (fun i -> fail scenario "fsck: %s" (Check.issue_to_string i)) issues;
    (match state_of dir with
    | recovered ->
      if recovered <> pre && recovered <> post then
        fail scenario "recovered to a third state %s (pre %s, post %s)"
          (string_of_state recovered) (string_of_state pre) (string_of_state post);
      (* recovery must be a fixed point: the first reopen healed, a
         second one finds nothing left to repair *)
      let again = state_of dir in
      if again <> recovered then
        fail scenario "second recovery changed the state: %s then %s"
          (string_of_state recovered) (string_of_state again);
      if !failures = failures_before then
        Printf.printf "ok   %-28s recovered to %s\n%!" scenario
          (if recovered = post && recovered <> pre then "post-state"
           else if recovered = pre && recovered <> post then "pre-state"
           else "pre=post state")
    | exception e -> fail scenario "recovery raised %s" (Printexc.to_string e))
  end

let () =
  List.iter (fun (op, specs) -> List.iter (run_scenario op) specs) scenarios;
  if !failures > 0 then begin
    Printf.printf "%d crash scenario(s) FAILED\n%!" !failures;
    exit 1
  end;
  print_endline "all crash scenarios recovered cleanly"
