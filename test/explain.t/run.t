The explain bundle: why each snippet came out the way it did. On the
paper's running example the bundle must reproduce the §2.3 dominance
scores (Houston 3.0, outwear ~2.26, man 1.8, casual 1.4, suit ~1.23,
woman ~1.08) and the §2.4 edge accounting (all 12 IList items covered
in exactly 14 edges at bound 14).

  $ extract gen paper -o paper.xml
  wrote paper.xml

--explain=json prints the bundle alone on stdout. Timings vary run to
run, so normalize every seconds-valued field; everything else — the
request id, the per-entry selection fates, the scores, the edge
budget — is deterministic.

  $ extract snippet paper.xml "Texas apparel retailer" -b 14 --explain=json \
  >   | sed -E 's/("(seconds|pipeline\.(search|snippet))": )[0-9.e+-]+/\1<t>/g'
  {
    "request_id": "q000001",
    "query": "Texas apparel retailer",
    "semantics": "xseek",
    "bound": 14,
    "seconds": <t>,
    "results": 1,
    "degraded": 0,
    "sections": {
      "postings": {"texas": 10, "apparel": 1, "retailer": 3},
      "pipeline.search": <t>,
      "pipeline.snippet": <t>
    },
    "result_explains": [
      {
        "result": 1,
        "root": "retailer",
        "nodes": 7295,
        "degraded": false,
        "bound": 14,
        "edges_used": 14,
        "covered": 12,
        "skipped": 0,
        "uncoverable": 0,
        "entries": [
          {"rank": 0, "kind": "keyword", "display": "texas", "instances": 10, "status": "covered", "instance_node": 9, "instance_tag": "state", "cost": 2},
          {"rank": 1, "kind": "keyword", "display": "apparel", "instances": 1, "status": "covered", "instance_node": 4, "instance_tag": "product", "cost": 1},
          {"rank": 2, "kind": "keyword", "display": "retailer", "instances": 1, "status": "covered", "instance_node": 1, "instance_tag": "retailer", "cost": 0},
          {"rank": 3, "kind": "entity", "display": "clothes", "instances": 1070, "status": "covered", "instance_node": 14, "instance_tag": "clothes", "cost": 2},
          {"rank": 4, "kind": "entity", "display": "store", "instances": 10, "status": "covered", "instance_node": 6, "instance_tag": "store", "cost": 0},
          {"rank": 5, "kind": "key", "display": "Brook Brothers", "instances": 1, "status": "covered", "instance_node": 2, "instance_tag": "name", "cost": 1},
          {"rank": 6, "kind": "feature", "display": "Houston", "instances": 6, "entity": "store", "attribute": "city", "score": 3, "occurrences": 6, "type_total": 10, "domain_size": 5, "status": "covered", "instance_node": 11, "instance_tag": "city", "cost": 1},
          {"rank": 7, "kind": "feature", "display": "outwear", "instances": 220, "entity": "clothes", "attribute": "category", "score": 2.26168224299, "occurrences": 220, "type_total": 1070, "domain_size": 11, "status": "covered", "instance_node": 15, "instance_tag": "category", "cost": 1},
          {"rank": 8, "kind": "feature", "display": "man", "instances": 600, "entity": "clothes", "attribute": "fitting", "score": 1.8, "occurrences": 600, "type_total": 1000, "domain_size": 3, "status": "covered", "instance_node": 19, "instance_tag": "fitting", "cost": 1},
          {"rank": 9, "kind": "feature", "display": "casual", "instances": 700, "entity": "clothes", "attribute": "situation", "score": 1.4, "occurrences": 700, "type_total": 1000, "domain_size": 2, "status": "covered", "instance_node": 17, "instance_tag": "situation", "cost": 1},
          {"rank": 10, "kind": "feature", "display": "suit", "instances": 120, "entity": "clothes", "attribute": "category", "score": 1.23364485981, "occurrences": 120, "type_total": 1070, "domain_size": 11, "status": "covered", "instance_node": 43, "instance_tag": "category", "cost": 2},
          {"rank": 11, "kind": "feature", "display": "woman", "instances": 360, "entity": "clothes", "attribute": "fitting", "score": 1.08, "occurrences": 360, "type_total": 1000, "domain_size": 3, "status": "covered", "instance_node": 82, "instance_tag": "fitting", "cost": 2}
        ]
      }
    ]
  }

Bare --explain keeps the snippets on stdout and appends the terminal
form of the bundle: one line per IList entry with its dominance score
and selection fate.

  $ extract snippet paper.xml "Texas apparel retailer" -b 14 --explain 2>/dev/null \
  >   | sed -n '/^explain/,$p' \
  >   | sed -E 's/, [0-9.]+(ns|us|ms|s)\)$/, <dur>)/; s/^(section pipeline\.(search|snippet)): .*/\1: <t>/'
  explain q000001: "Texas apparel retailer" (xseek, bound 14, 1 result, <dur>)
  result 1: <retailer> 7295 nodes — 12 covered / 0 skipped / 0 uncoverable, 14/14 edges
     0 keyword  texas          — covered via <state> #9 (+2 edges)
     1 keyword  apparel        — covered via <product> #4 (+1 edge)
     2 keyword  retailer       — covered free via <retailer> #1
     3 entity   clothes        — covered via <clothes> #14 (+2 edges)
     4 entity   store          — covered free via <store> #6
     5 key      Brook Brothers — covered via <name> #2 (+1 edge)
     6 feature  Houston        DS=3 — covered via <city> #11 (+1 edge)
     7 feature  outwear        DS=2.26168224299 — covered via <category> #15 (+1 edge)
     8 feature  man            DS=1.8 — covered via <fitting> #19 (+1 edge)
     9 feature  casual         DS=1.4 — covered via <situation> #17 (+1 edge)
    10 feature  suit           DS=1.23364485981 — covered via <category> #43 (+2 edges)
    11 feature  woman          DS=1.08 — covered via <fitting> #82 (+2 edges)
  section postings: {"texas": 10, "apparel": 1, "retailer": 3}
  section pipeline.search: <t>
  section pipeline.snippet: <t>

--log-level=info adds the structured event log on stderr; the query.done
event carries the same request id as the bundle, so one grep correlates
them.

  $ extract snippet paper.xml "Texas apparel retailer" -b 14 --explain=json \
  >   --log-level=info >bundle.json 2>log.jsonl
  $ grep -c '"request_id": "q000001"' bundle.json
  1
  $ grep -c '"event": "query.done".*"rid": "q000001"' log.jsonl
  1

EXTRACT_LOG=level:FILE routes the event log to a file instead of stderr;
debug level also emits per-stage and posting-resolution events.

  $ EXTRACT_LOG=debug:events.jsonl extract snippet paper.xml "houston suit" -n 1 >/dev/null
  $ grep -c '"event": "query.done"' events.jsonl
  1
  $ grep -c '"event": "eval_ctx.resolve"' events.jsonl
  1

A malformed EXTRACT_LOG is reported and refused, like EXTRACT_FAULTS:

  $ EXTRACT_LOG=loud extract snippet paper.xml "x" 2>&1 >/dev/null
  Log: unknown level "loud"
  [2]
