The extract-lint self-test: a deliberately bad library module must be
caught by every rule, suppressions must silence single sites, and a
clean tree must produce no output.

  $ mkdir -p proj/lib/core

A module violating all four rules (and no .mli next to it):

  $ cat > proj/lib/core/bad.ml <<'EOF'
  > exception Undeclared of string
  > let smallest l = List.hd (List.sort compare l)
  > let risky tbl k = Hashtbl.find tbl k
  > let boom () = failwith "nope"
  > let kaboom () = raise (Undeclared "kaboom")
  > EOF

  $ extract-lint proj
  proj/lib/core/bad.ml:1: [missing-mli] library module has no .mli interface
  proj/lib/core/bad.ml:2: [partial-fn] List.hd raises on []; match the list or use a non-empty invariant
  proj/lib/core/bad.ml:2: [poly-compare] polymorphic compare; use Int.compare / String.compare / a dedicated comparator
  proj/lib/core/bad.ml:3: [partial-fn] Hashtbl.find raises Not_found; use Hashtbl.find_opt with explicit handling
  proj/lib/core/bad.ml:4: [raise-discipline] failwith raises the anonymous Failure; use invalid_arg or a declared error type
  proj/lib/core/bad.ml:5: [raise-discipline] raise of undeclared exception Undeclared; declare it in a library .mli or use a sanctioned error type
  6 violation(s) in 1 file(s) scanned
  [1]

Suppression comments silence exactly the named rule on their line (or
the line below); other rules still fire:

  $ cat > proj/lib/core/bad.ml <<'EOF'
  > let smallest l = List.hd l (* lint: allow partial-fn *)
  > (* lint: allow poly-compare *)
  > let order = List.sort compare
  > let boom () = failwith "nope"
  > EOF
  $ cat > proj/lib/core/bad.mli <<'EOF'
  > val smallest : 'a list -> 'a
  > val order : 'a list -> 'a list
  > val boom : unit -> 'b
  > EOF

  $ extract-lint proj
  proj/lib/core/bad.ml:4: [raise-discipline] failwith raises the anonymous Failure; use invalid_arg or a declared error type
  1 violation(s) in 2 file(s) scanned
  [1]

Definition sites of a dedicated comparator named [compare] are exempt
from poly-compare; exceptions declared in a library .mli may be raised;
a clean tree is silent (exit 0):

  $ cat > proj/lib/core/bad.ml <<'EOF'
  > exception Declared of string
  > let compare = Int.compare
  > let smallest = function x :: _ -> Some x | [] -> None
  > let boom () = raise (Declared "fine")
  > EOF
  $ cat > proj/lib/core/bad.mli <<'EOF'
  > exception Declared of string
  > val compare : int -> int -> int
  > val smallest : 'a list -> 'a option
  > val boom : unit -> 'b
  > EOF

  $ extract-lint proj

Executable directories are exempt from missing-mli but not from the
other rules:

  $ mkdir -p proj/bin
  $ cat > proj/bin/main.ml <<'EOF'
  > let () = print_endline (List.hd [ "hello" ])
  > EOF

  $ extract-lint proj
  proj/bin/main.ml:1: [partial-fn] List.hd raises on []; match the list or use a non-empty invariant
  1 violation(s) in 3 file(s) scanned
  [1]

The driver's introspection surface: every registered rule is listed
with its synopsis, and each has a long-form explanation:

  $ extract-lint --list-rules
  poly-compare      bare polymorphic compare (or Stdlib.compare)
  partial-fn        partial stdlib functions that raise on representable inputs
  raise-discipline  raise of an exception not declared in a library .mli; failwith
  missing-mli       library module without a .mli interface
  domain-safety     shared mutable state without an established concurrency discipline
  lock-pairing      Mutex.lock/unlock without its counterpart in the same definition
  lock-raise        raise/failwith/invalid_arg while a mutex is held
  stale-annotation  guarded-by annotation that names no known mutex

  $ extract-lint --explain-rule lock-pairing | head -1
  lock-pairing — Mutex.lock/unlock without its counterpart in the same definition

Unknown rules and unknown flags are usage errors (exit 2), distinct
from the exit-1 "violations found" contract:

  $ extract-lint --explain-rule no-such-rule
  extract-lint: unknown rule no-such-rule (try --list-rules)
  [2]

  $ extract-lint --format=yaml proj
  extract-lint: unknown option --format=yaml
  usage: extract-lint [--format=text|json] [--list-rules] [--explain-rule RULE] [--concurrency-doc] [DIR ...]
  [2]
