(* Tests for the observability subsystem (lib/obs): registry identity and
   value semantics, histogram bucket boundaries and percentile estimates,
   the Prometheus/JSON renders, concurrent recording from parallel
   domains, the span tracer's tree shape, and the query-level layer —
   JSON values, request ids, the structured event log, the slowlog. *)

module Registry = Extract_obs.Registry
module Trace = Extract_obs.Trace
module Trace_export = Extract_obs.Trace_export
module Runtime = Extract_obs.Runtime
module Jsonv = Extract_obs.Jsonv
module Reqid = Extract_obs.Reqid
module Log = Extract_obs.Log
module Slowlog = Extract_obs.Slowlog

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let feq what expected actual =
  check (Alcotest.float 1e-9) what expected actual

let contains s sub =
  let n = String.length sub in
  let rec scan k = k + n <= String.length s && (String.sub s k n = sub || scan (k + 1)) in
  scan 0

(* ------------------------------------------------------------------ *)
(* Registry: counters, gauges, identity *)

let test_counter_basics () =
  Registry.reset ();
  let c = Registry.counter ~labels:[ "who", "obs-test" ] "obs_test_total" in
  check int "fresh counter is zero" 0 (Registry.counter_value c);
  Registry.incr c;
  Registry.add c 4;
  check int "incr + add accumulate" 5 (Registry.counter_value c);
  let again = Registry.counter ~labels:[ "who", "obs-test" ] "obs_test_total" in
  check int "same identity, same cell" 5 (Registry.counter_value again);
  let other = Registry.counter ~labels:[ "who", "someone-else" ] "obs_test_total" in
  check int "different labels, different cell" 0 (Registry.counter_value other)

let test_counter_monotonic () =
  Registry.reset ();
  let c = Registry.counter "obs_test_monotonic_total" in
  check bool "negative add rejected" true
    (match Registry.add c (-1) with
    | () -> false
    | exception Invalid_argument _ -> true);
  check int "failed add left the value alone" 0 (Registry.counter_value c)

let test_gauge () =
  Registry.reset ();
  let g = Registry.gauge "obs_test_gauge" in
  feq "fresh gauge is zero" 0.0 (Registry.gauge_value g);
  Registry.set g 17.5;
  feq "set overwrites" 17.5 (Registry.gauge_value g);
  Registry.set g 3.0;
  feq "gauges may go down" 3.0 (Registry.gauge_value g)

let test_kind_clash () =
  Registry.reset ();
  let _c = Registry.counter "obs_test_kind_clash" in
  check bool "same name as another kind is refused" true
    (match Registry.gauge "obs_test_kind_clash" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Histograms: bucket boundaries and percentile estimates *)

let test_bucket_boundaries () =
  Registry.reset ();
  let h = Registry.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "obs_test_bounds_seconds" in
  (* bounds are inclusive upper edges: 1.0 lands in the first bucket,
     1.0000001 in the second; 8.0 overflows into +Inf *)
  List.iter (Registry.observe h) [ 0.5; 1.0; 1.0000001; 3.9; 4.0; 8.0 ];
  check int "count sees every observation" 6 (Registry.histogram_count h);
  feq "sum sees every observation" 18.4000001 (Registry.histogram_sum h);
  let text = Registry.render_prometheus () in
  check bool "le=1 cumulative = 2" true
    (contains text "obs_test_bounds_seconds_bucket{le=\"1\"} 2");
  check bool "le=2 cumulative = 3" true
    (contains text "obs_test_bounds_seconds_bucket{le=\"2\"} 3");
  check bool "le=4 cumulative = 5" true
    (contains text "obs_test_bounds_seconds_bucket{le=\"4\"} 5");
  check bool "+Inf cumulative = count" true
    (contains text "obs_test_bounds_seconds_bucket{le=\"+Inf\"} 6")

let test_bad_buckets () =
  Registry.reset ();
  let refused buckets =
    match Registry.histogram ~buckets "obs_test_bad_seconds" with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check bool "empty buckets refused" true (refused [||]);
  check bool "non-increasing buckets refused" true (refused [| 1.0; 1.0; 2.0 |]);
  check bool "decreasing buckets refused" true (refused [| 2.0; 1.0 |])

let test_percentiles () =
  Registry.reset ();
  let h = Registry.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "obs_test_pct_seconds" in
  (* one observation per bucket, one overflow: ranks are fully determined *)
  List.iter (Registry.observe h) [ 0.5; 1.5; 3.0; 8.0 ];
  (* p50: target rank 2 falls exactly at the (1,2] bucket's upper edge *)
  feq "p50 interpolates to the second bucket edge" 2.0 (Registry.percentile h 0.5);
  (* p99: target rank is in the +Inf bucket, clamped to the last finite bound *)
  feq "p99 clamps overflow to the largest finite bound" 4.0 (Registry.percentile h 0.99);
  (* p25: rank 1 at the first bucket's edge; the bucket starts at 0 *)
  feq "p25 is the first bucket edge" 1.0 (Registry.percentile h 0.25);
  check bool "q outside (0,1] rejected" true
    (match Registry.percentile h 0.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_empty_percentile () =
  Registry.reset ();
  let h = Registry.histogram ~buckets:[| 1.0 |] "obs_test_empty_seconds" in
  feq "empty histogram estimates 0" 0.0 (Registry.percentile h 0.5)

(* ------------------------------------------------------------------ *)
(* Renders *)

let test_prometheus_render () =
  Registry.reset ();
  let c = Registry.counter ~help:"A test counter" ~labels:[ "k", "v" ] "obs_test_render_total" in
  Registry.add c 3;
  let text = Registry.render_prometheus () in
  check bool "HELP line present" true (contains text "# HELP obs_test_render_total A test counter");
  check bool "TYPE line present" true (contains text "# TYPE obs_test_render_total counter");
  check bool "sample with labels" true (contains text "obs_test_render_total{k=\"v\"} 3")

(* Prometheus label-value escaping: the exposition format escapes exactly
   backslash, double quote and newline — a regression test, because %S
   used to leak OCaml-style escapes into scraped label values. *)
let test_label_value_escaping () =
  Registry.reset ();
  let g = Registry.gauge ~labels:[ "path", "a\\b\"c\nd" ] "obs_test_escape_info" in
  Registry.set g 1.0;
  let text = Registry.render_prometheus () in
  check bool "backslash, quote and newline escaped" true
    (contains text "obs_test_escape_info{path=\"a\\\\b\\\"c\\nd\"} 1");
  check bool "no raw newline inside the label" false (contains text "c\nd\"");
  let json = Registry.render_json () in
  check bool "json labels escaped the same way" true (contains json "a\\\\b\\\"c\\nd")

let test_build_info_pinned () =
  let build_info () =
    Registry.gauge
      ~labels:[ "ocaml_version", Sys.ocaml_version; "version", Registry.version ]
      "extract_build_info"
  in
  let start_time () = Registry.gauge "extract_process_start_time_seconds" in
  feq "build info gauge is 1" 1.0 (Registry.gauge_value (build_info ()));
  check bool "start time is a plausible epoch" true
    (Registry.gauge_value (start_time ()) > 1.0e9);
  let text = Registry.render_prometheus () in
  check bool "build info exposed with version label" true
    (contains text ("version=\"" ^ Registry.version ^ "\"} 1"));
  check bool "ocaml version labelled" true
    (contains text ("ocaml_version=\"" ^ Sys.ocaml_version ^ "\""));
  (* pins survive the reset that every other metric is subject to *)
  Registry.reset ();
  feq "build info survives reset" 1.0 (Registry.gauge_value (build_info ()));
  check bool "start time survives reset" true
    (Registry.gauge_value (start_time ()) > 1.0e9)

let test_json_render () =
  Registry.reset ();
  let c = Registry.counter ~labels:[ "k", "v" ] "obs_test_json_total" in
  Registry.incr c;
  let h = Registry.histogram ~buckets:[| 1.0; 2.0 |] "obs_test_json_seconds" in
  Registry.observe h 0.5;
  let json = Registry.render_json () in
  check bool "top-level sections" true
    (contains json "\"counters\"" && contains json "\"gauges\"" && contains json "\"histograms\"");
  check bool "counter entry" true (contains json "\"obs_test_json_total\"");
  check bool "histogram percentiles" true (contains json "\"p95\"")

(* ------------------------------------------------------------------ *)
(* Concurrency: recording from parallel domains must lose nothing *)

let test_parallel_recording () =
  Registry.reset ();
  let c = Registry.counter "obs_test_parallel_total" in
  let h = Registry.histogram ~buckets:[| 0.5; 1.5 |] "obs_test_parallel_seconds" in
  let per_domain = 10_000 in
  let worker () =
    for i = 1 to per_domain do
      Registry.incr c;
      Registry.observe h (if i mod 2 = 0 then 1.0 else 2.0)
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check int "no lost counter increments" (4 * per_domain) (Registry.counter_value c);
  check int "no lost observations" (4 * per_domain) (Registry.histogram_count h)

(* ------------------------------------------------------------------ *)
(* Tracer *)

let test_trace_tree () =
  Trace.clear ();
  Trace.set_enabled true;
  let result =
    Trace.with_span "outer" (fun () ->
        ignore (Trace.with_span "first" (fun () -> 1));
        ignore (Trace.with_span "second" (fun () -> 2));
        "done")
  in
  Trace.set_enabled false;
  check (Alcotest.string) "with_span is transparent" "done" result;
  match Trace.finished () with
  | [ root ] ->
    check (Alcotest.string) "root name" "outer" root.Trace.name;
    check (Alcotest.list Alcotest.string) "children in order" [ "first"; "second" ]
      (List.map (fun s -> s.Trace.name) root.Trace.children);
    check bool "root spans its children" true
      (List.for_all (fun s -> s.Trace.duration <= root.Trace.duration) root.Trace.children);
    let rendered = Trace.render [ root ] in
    check bool "render shows the tree" true
      (contains rendered "outer" && contains rendered "  first")
  | roots -> Alcotest.failf "expected one root span, got %d" (List.length roots)

let test_trace_disabled_is_free () =
  Trace.clear ();
  Trace.set_enabled false;
  ignore (Trace.with_span "ignored" (fun () -> ()));
  check int "disabled tracer records nothing" 0 (List.length (Trace.finished ()))

let test_trace_exception () =
  Trace.clear ();
  Trace.set_enabled true;
  (try ignore (Trace.with_span "raiser" (fun () -> raise Exit)) with Exit -> ());
  Trace.set_enabled false;
  check int "span recorded even when the body raises" 1 (List.length (Trace.finished ()))

let test_trace_rid () =
  Trace.clear ();
  Trace.set_enabled true;
  Reqid.with_id "q000777" (fun () -> ignore (Trace.with_span "scoped" (fun () -> ())));
  ignore (Trace.with_span "unscoped" (fun () -> ()));
  Trace.set_enabled false;
  match Trace.finished () with
  | [ scoped; unscoped ] ->
    check bool "span opened inside a scope carries the rid" true
      (scoped.Trace.rid = Some "q000777");
    check bool "span outside any scope has none" true (unscoped.Trace.rid = None);
    let rendered = Trace.render [ scoped; unscoped ] in
    check bool "render suffixes the rid" true (contains rendered "scoped [q000777]");
    check bool "no suffix without a rid" false (contains rendered "unscoped [")
  | spans -> Alcotest.failf "expected two root spans, got %d" (List.length spans)

(* ------------------------------------------------------------------ *)
(* Tracer: cross-domain propagation, sampling, the bounded buffer *)

let span_names spans = List.map (fun s -> s.Trace.name) spans

(* Four concurrent queries, each fanning out to three spawned domains:
   every child span must land under its own query's root with that
   query's rid — never another query's — and keep its subtree intact. *)
let test_trace_propagation_hammer () =
  Trace.clear ();
  let parent p =
    Reqid.with_id (Printf.sprintf "q%06d" (100 + p)) (fun () ->
        Trace.with_recording (fun () ->
            Trace.with_span ~args:[ ("query", string_of_int p) ] "query" (fun () ->
                let ctx = Trace.capture () in
                let children =
                  List.init 3 (fun d ->
                      Domain.spawn (fun () ->
                          Trace.with_context ctx (fun () ->
                              Trace.with_span
                                ~args:[ ("worker", string_of_int d) ]
                                "child"
                                (fun () -> Trace.with_span "grandchild" (fun () -> ())))))
                in
                List.iter Domain.join children)))
  in
  let parents = List.init 4 (fun p -> Domain.spawn (fun () -> parent p)) in
  List.iter Domain.join parents;
  let roots = Trace.finished () in
  check int "one root per query" 4 (List.length roots);
  let rids =
    List.map
      (fun root ->
        check Alcotest.(string) "root is the query span" "query" root.Trace.name;
        let rid =
          match root.Trace.rid with
          | Some rid -> rid
          | None -> Alcotest.fail "query root lost its rid"
        in
        (* the rid must match the query number the root carries *)
        let p = int_of_string (List.assoc "query" root.Trace.args) in
        check Alcotest.(string) "rid belongs to this query"
          (Printf.sprintf "q%06d" (100 + p)) rid;
        check int "all three child-domain spans adopted" 3
          (List.length root.Trace.children);
        let workers =
          List.map
            (fun c ->
              check Alcotest.(string) "adopted span name" "child" c.Trace.name;
              check bool "child carries the parent's rid, not another query's" true
                (c.Trace.rid = Some rid);
              check (Alcotest.list Alcotest.string) "child subtree intact"
                [ "grandchild" ] (span_names c.Trace.children);
              check bool "grandchild rid propagated too" true
                (List.for_all (fun g -> g.Trace.rid = Some rid) c.Trace.children);
              int_of_string (List.assoc "worker" c.Trace.args))
            root.Trace.children
        in
        check (Alcotest.list int) "one span per worker, merged in start order"
          [ 0; 1; 2 ]
          (List.sort compare workers);
        let starts = List.map (fun c -> c.Trace.start) root.Trace.children in
        check bool "children sorted by start" true
          (List.sort Float.compare starts = starts);
        rid)
      roots
  in
  check int "no rid shared between queries" 4
    (List.length (List.sort_uniq String.compare rids))

(* Regression: spans recorded on a spawned domain used to come out as
   unrelated roots with no request id — the render must now show the
   child under the query with the parent's [q%06d] suffix. *)
let test_trace_spawned_domain_rid_render () =
  Trace.clear ();
  Reqid.reset_counter ();
  Reqid.ensure (fun _rid ->
      Trace.with_recording (fun () ->
          Trace.with_span "query" (fun () ->
              let ctx = Trace.capture () in
              let d =
                Domain.spawn (fun () ->
                    Trace.with_context ctx (fun () ->
                        Trace.with_span ~args:[ ("shard", "0") ] "shard.run"
                          (fun () -> ())))
              in
              Domain.join d)));
  match Trace.finished () with
  | [ root ] ->
    let rendered = Trace.render [ root ] in
    check bool "child span rendered under the root" true
      (contains rendered "  shard.run");
    check bool "child span renders label and parent rid" true
      (contains rendered "shard.run{shard=0} [q000001]");
    check bool "root carries the same rid" true (contains rendered "query [q000001]")
  | roots ->
    Alcotest.failf "expected the child adopted into one root, got %d roots"
      (List.length roots)

let test_trace_sampling_determinism () =
  Trace.set_sample_interval 3;
  let picks = List.init 9 (fun _ -> Trace.sampled ()) in
  check (Alcotest.list bool) "phase resets, then exactly one in three"
    [ true; false; false; true; false; false; true; false; false ]
    picks;
  Trace.set_sample_interval 0;
  check bool "interval 0 never samples" false (Trace.sampled ());
  Unix.putenv "EXTRACT_TRACE_SAMPLE" "1/8";
  Trace.install_from_env ();
  check int "EXTRACT_TRACE_SAMPLE=1/8 installs 8" 8 (Trace.sample_interval ());
  Unix.putenv "EXTRACT_TRACE_SAMPLE" "nonsense";
  Trace.install_from_env ();
  check int "malformed env leaves the interval alone" 8 (Trace.sample_interval ());
  Trace.set_sample_interval 0

let test_trace_buffer_cap () =
  Trace.clear ();
  let old = Trace.buffer_capacity () in
  Trace.set_buffer_capacity 4;
  Trace.with_recording (fun () ->
      for i = 0 to 9 do
        Trace.with_span (Printf.sprintf "r%d" i) (fun () -> ())
      done);
  check (Alcotest.list Alcotest.string) "newest roots kept, oldest first"
    [ "r6"; "r7"; "r8"; "r9" ]
    (span_names (Trace.recent ()));
  check (Alcotest.list Alcotest.string) "recent ~last trims from the old end"
    [ "r8"; "r9" ]
    (span_names (Trace.recent ~last:2 ()));
  check (Alcotest.list Alcotest.string) "recent is non-destructive"
    [ "r6"; "r7"; "r8"; "r9" ]
    (span_names (Trace.recent ()));
  check (Alcotest.list Alcotest.string) "finished drains the same window"
    [ "r6"; "r7"; "r8"; "r9" ]
    (span_names (Trace.finished ()));
  check int "buffer empty after finished" 0 (List.length (Trace.recent ()));
  Trace.set_buffer_capacity old

let test_trace_add_span () =
  Trace.clear ();
  Trace.with_recording (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.add_span "queue.wait" ~start:1.0 ~duration:0.5;
          Trace.add_span "clamped" ~start:2.0 ~duration:(-1.0)));
  match Trace.finished () with
  | [ root ] ->
    check (Alcotest.list Alcotest.string) "synthetic spans attach as children"
      [ "queue.wait"; "clamped" ]
      (span_names root.Trace.children);
    let clamped = List.nth root.Trace.children 1 in
    feq "negative duration clamps to zero" 0.0 clamped.Trace.duration
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_trace_export_json () =
  Trace.clear ();
  Reqid.with_id "q000042" (fun () ->
      Trace.with_recording (fun () ->
          Trace.with_span "query" (fun () ->
              Trace.with_span ~args:[ ("shard", "1") ] "shard.run" (fun () -> ()))));
  let spans = Trace.finished () in
  let json = Trace_export.render spans in
  check bool "trace-event envelope" true
    (contains json "\"traceEvents\"" && contains json "\"displayTimeUnit\": \"ms\"");
  check bool "complete events" true (contains json "\"ph\": \"X\"");
  check bool "rid exported in args" true (contains json "\"rid\": \"q000042\"");
  check bool "labels exported in args" true (contains json "\"shard\": \"1\"");
  check bool "domain id exported as tid" true (contains json "\"tid\": 0");
  (* timestamps are rebased on the earliest span, so the root's ts is 0
     and microsecond precision survives float rendering *)
  check bool "timestamps rebased to the trace start" true (contains json "\"ts\": 0")

(* ------------------------------------------------------------------ *)
(* Runtime collector *)

let count_substring hay needle =
  let n = String.length needle in
  let rec go i acc =
    if i + n > String.length hay then acc
    else if String.sub hay i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_runtime_collector_idempotent () =
  let hits = ref [] in
  Runtime.register_collector "obs.test.hits" (fun () -> hits := "old" :: !hits);
  Runtime.register_collector "obs.test.hits" (fun () -> hits := "new" :: !hits);
  Runtime.register_collector "obs.test.boom" (fun () -> failwith "collector bug");
  Runtime.sample ();
  check (Alcotest.list Alcotest.string)
    "re-registration replaces the callback instead of stacking" [ "new" ] !hits;
  check int "name registered once" 1
    (List.length
       (List.filter (fun n -> n = "obs.test.hits") (Runtime.collector_names ())));
  (* the raising collector was swallowed and the sampler keeps going *)
  Runtime.sample ();
  check int "sampler survives a failing collector" 2 (List.length !hits)

let test_runtime_gauges_and_json () =
  Registry.reset ();
  Runtime.sample ();
  Runtime.sample ();
  let text = Registry.render_prometheus () in
  check bool "gc gauges published" true
    (contains text "extract_gc_heap_words"
    && contains text "extract_gc_minor_collections");
  check int "repeated sampling registers each family once" 1
    (count_substring text "# TYPE extract_gc_heap_words gauge");
  let json = Runtime.render_json () in
  check bool "json carries the gc block" true
    (contains json "\"gc\"" && contains json "\"heap_words\"");
  check bool "json carries domain counts" true
    (contains json "\"domains\"" && contains json "\"recommended\"");
  check bool "json carries the collector inventory" true
    (contains json "\"collector\"" && contains json "\"obs.test.hits\"")

(* ------------------------------------------------------------------ *)
(* Jsonv: escaping, number formatting, renders *)

let test_jsonv_escaping () =
  check (Alcotest.string) "named and numeric escapes"
    "\"a\\\"b\\\\c\\nd\\u0001\\r\\t\""
    (Jsonv.quote "a\"b\\c\nd\x01\r\t");
  check (Alcotest.string) "plain text untouched" "\"store texas\""
    (Jsonv.quote "store texas")

let test_jsonv_numbers () =
  check (Alcotest.string) "integral float, no trailing dot" "3" (Jsonv.number 3.0);
  check (Alcotest.string) "fractional float" "2.5" (Jsonv.number 2.5);
  check (Alcotest.string) "huge integral falls back to %g" "1e+20"
    (Jsonv.number 1e20);
  check (Alcotest.string) "nan renders null in values" "null"
    (Jsonv.to_string (Jsonv.Float Float.nan));
  check (Alcotest.string) "infinity renders null in values" "null"
    (Jsonv.to_string (Jsonv.Float Float.infinity))

let test_jsonv_compact () =
  check (Alcotest.string) "compact object render"
    "{\"k\": [1, true, null], \"s\": \"x\", \"f\": 2.5}"
    (Jsonv.to_string
       (Jsonv.Obj
          [
            "k", Jsonv.Arr [ Jsonv.Int 1; Jsonv.Bool true; Jsonv.Null ];
            "s", Jsonv.Str "x";
            "f", Jsonv.Float 2.5;
          ]))

let test_jsonv_pretty () =
  (* flat members stay on one line: a list of entry records renders one
     grep-able line per entry *)
  let v =
    Jsonv.Obj
      [
        ( "rows",
          Jsonv.Arr
            [
              Jsonv.Obj [ "a", Jsonv.Int 1; "b", Jsonv.Str "x" ];
              Jsonv.Obj [ "a", Jsonv.Int 2; "b", Jsonv.Str "y" ];
            ] );
        "n", Jsonv.Int 3;
      ]
  in
  check (Alcotest.string) "pretty keeps flat rows inline"
    "{\n  \"rows\": [\n    {\"a\": 1, \"b\": \"x\"},\n    {\"a\": 2, \"b\": \"y\"}\n  ],\n  \"n\": 3\n}"
    (Jsonv.pretty v)

(* ------------------------------------------------------------------ *)
(* Reqid: sequential ids, nested scopes, ensure *)

let test_reqid_scopes () =
  Reqid.reset_counter ();
  check bool "no current id outside any scope" true (Reqid.current () = None);
  check (Alcotest.string) "ids are sequential from q000001" "q000001" (Reqid.fresh ());
  Reqid.with_id "q000042" (fun () ->
      check bool "current inside the scope" true (Reqid.current () = Some "q000042");
      Reqid.with_id "q000043" (fun () ->
          check bool "scopes nest" true (Reqid.current () = Some "q000043"));
      check bool "inner scope restored the outer id" true
        (Reqid.current () = Some "q000042"));
  check bool "outer scope restored to none" true (Reqid.current () = None);
  (try Reqid.with_id "q000099" (fun () -> raise Exit) with Exit -> ());
  check bool "restored on exceptions too" true (Reqid.current () = None)

let test_reqid_ensure () =
  Reqid.reset_counter ();
  check (Alcotest.string) "ensure reuses the enclosing scope's id" "q000777"
    (Reqid.with_id "q000777" (fun () -> Reqid.ensure (fun rid -> rid)));
  check (Alcotest.string) "ensure mints and scopes a fresh id otherwise" "q000001"
    (Reqid.ensure (fun rid ->
         check bool "the fresh id is current inside" true
           (Reqid.current () = Some rid);
         rid));
  check bool "ensure's scope ends with the call" true (Reqid.current () = None)

(* ------------------------------------------------------------------ *)
(* Log: level gating, line shape, rid stamping *)

let with_captured_log level f =
  let lines = ref [] in
  Log.set_sink (Some (fun l -> lines := l :: !lines));
  Log.set_level (Some level);
  Fun.protect
    ~finally:(fun () ->
      Log.set_level None;
      Log.set_sink None)
    (fun () -> f lines)

let test_log_shape_and_gating () =
  with_captured_log Log.Info (fun lines ->
      check bool "info passes the threshold" true (Log.enabled Log.Info);
      check bool "debug is gated" false (Log.enabled Log.Debug);
      Log.debug "invisible" [ "x", Jsonv.Int 1 ];
      Reqid.with_id "q000123" (fun () ->
          Log.info "query.done" [ "results", Jsonv.Int 2; "query", Jsonv.Str "a\"b" ]);
      Log.warn "unscoped" [];
      match List.rev !lines with
      | [ scoped; unscoped ] ->
        check bool "one JSON object per line, ts first" true
          (String.length scoped > 8 && String.sub scoped 0 8 = "{\"ts\": 1");
        check bool "event named" true (contains scoped "\"event\": \"query.done\"");
        check bool "level named" true (contains scoped "\"level\": \"info\"");
        check bool "rid stamped from the current scope" true
          (contains scoped "\"rid\": \"q000123\"");
        check bool "fields appended, escaped" true
          (contains scoped "\"results\": 2" && contains scoped "\"query\": \"a\\\"b\"");
        check bool "no rid outside a scope" false (contains unscoped "\"rid\"");
        check bool "warn level named" true (contains unscoped "\"level\": \"warn\"")
      | l -> Alcotest.failf "expected 2 emitted lines, got %d" (List.length l))

let test_log_off_by_default_and_levels () =
  check bool "logging starts off" false (Log.enabled Log.Error);
  with_captured_log Log.Error (fun lines ->
      Log.warn "dropped" [];
      Log.error "kept" [];
      check int "only the error passed" 1 (List.length !lines))

let test_log_level_parsing () =
  check bool "warning is an alias of warn" true
    (Log.level_of_string "WARNING" = Some Log.Warn);
  check bool "debug parses" true (Log.level_of_string "debug" = Some Log.Debug);
  check bool "off disables" true (Log.level_of_string "off" = None);
  check bool "none disables" true (Log.level_of_string "none" = None);
  check bool "garbage rejected" true
    (match Log.level_of_string "loud" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Slowlog: the two retentions *)

let slow_entry ?(rid = "q000000") ?(query = "q") ?(seconds = 0.001) ?(degraded = 0)
    ?(faulted = false) () =
  { Slowlog.rid; query; seconds; degraded; faulted; digest = Jsonv.Null }

let with_small_slowlog f =
  Slowlog.configure ~slowest:2 ~ring:2 ();
  Slowlog.reset ();
  Fun.protect
    ~finally:(fun () ->
      Slowlog.configure ();
      Slowlog.reset ())
    f

let test_slowlog_slowest_retention () =
  with_small_slowlog (fun () ->
      Slowlog.record (slow_entry ~rid:"a" ~seconds:0.010 ());
      Slowlog.record (slow_entry ~rid:"b" ~seconds:0.030 ());
      Slowlog.record (slow_entry ~rid:"c" ~seconds:0.020 ());
      let slowest, ring = Slowlog.snapshot () in
      check bool "slowest first, capacity enforced" true
        (List.map (fun e -> e.Slowlog.rid) slowest = [ "b"; "c" ]);
      check int "fast clean queries stay out of the ring" 0 (List.length ring);
      (* a slower query displaces the tail, a faster one is ignored *)
      Slowlog.record (slow_entry ~rid:"d" ~seconds:0.025 ());
      Slowlog.record (slow_entry ~rid:"e" ~seconds:0.001 ());
      let slowest, _ = Slowlog.snapshot () in
      check bool "displacement keeps the order" true
        (List.map (fun e -> e.Slowlog.rid) slowest = [ "b"; "d" ]))

let test_slowlog_degraded_ring () =
  with_small_slowlog (fun () ->
      Slowlog.record (slow_entry ~rid:"d1" ~seconds:0.0001 ~degraded:1 ());
      Slowlog.record (slow_entry ~rid:"f1" ~seconds:0.0001 ~faulted:true ());
      Slowlog.record (slow_entry ~rid:"d2" ~seconds:0.0001 ~degraded:2 ());
      let _, ring = Slowlog.snapshot () in
      check bool "most recent degraded/faulted first, capacity enforced" true
        (List.map (fun e -> e.Slowlog.rid) ring = [ "d2"; "f1" ]);
      let json = Slowlog.render_json () in
      check bool "render names both retentions" true
        (contains json "\"slowest\"" && contains json "\"degraded\"");
      check bool "entries carry rid and flags" true
        (contains json "\"rid\": \"d2\"" && contains json "\"faulted\": true"))

let test_slowlog_configure_rejects_negatives () =
  check bool "negative capacity refused" true
    (match Slowlog.configure ~slowest:(-1) () with
    | () -> false
    | exception Invalid_argument _ -> true);
  check bool "reset drops entries" true
    (Slowlog.reset ();
     Slowlog.snapshot () = ([], []))

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "obs.registry",
      [
        Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "counters are monotonic" `Quick test_counter_monotonic;
        Alcotest.test_case "gauge" `Quick test_gauge;
        Alcotest.test_case "kind clash refused" `Quick test_kind_clash;
        Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
        Alcotest.test_case "bad buckets refused" `Quick test_bad_buckets;
        Alcotest.test_case "percentile estimates" `Quick test_percentiles;
        Alcotest.test_case "empty percentile" `Quick test_empty_percentile;
        Alcotest.test_case "prometheus render" `Quick test_prometheus_render;
        Alcotest.test_case "label value escaping" `Quick test_label_value_escaping;
        Alcotest.test_case "build info pinned" `Quick test_build_info_pinned;
        Alcotest.test_case "json render" `Quick test_json_render;
        Alcotest.test_case "parallel recording" `Quick test_parallel_recording;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "span tree" `Quick test_trace_tree;
        Alcotest.test_case "disabled is free" `Quick test_trace_disabled_is_free;
        Alcotest.test_case "exception safety" `Quick test_trace_exception;
        Alcotest.test_case "request id on spans" `Quick test_trace_rid;
        Alcotest.test_case "cross-domain propagation hammer" `Quick
          test_trace_propagation_hammer;
        Alcotest.test_case "spawned-domain rid render" `Quick
          test_trace_spawned_domain_rid_render;
        Alcotest.test_case "sampling determinism" `Quick test_trace_sampling_determinism;
        Alcotest.test_case "bounded buffer" `Quick test_trace_buffer_cap;
        Alcotest.test_case "synthetic spans" `Quick test_trace_add_span;
        Alcotest.test_case "chrome export" `Quick test_trace_export_json;
      ] );
    ( "obs.runtime",
      [
        Alcotest.test_case "collector idempotence" `Quick test_runtime_collector_idempotent;
        Alcotest.test_case "gauges and json" `Quick test_runtime_gauges_and_json;
      ] );
    ( "obs.jsonv",
      [
        Alcotest.test_case "escaping" `Quick test_jsonv_escaping;
        Alcotest.test_case "numbers" `Quick test_jsonv_numbers;
        Alcotest.test_case "compact render" `Quick test_jsonv_compact;
        Alcotest.test_case "pretty render" `Quick test_jsonv_pretty;
      ] );
    ( "obs.reqid",
      [
        Alcotest.test_case "scopes" `Quick test_reqid_scopes;
        Alcotest.test_case "ensure" `Quick test_reqid_ensure;
      ] );
    ( "obs.log",
      [
        Alcotest.test_case "shape and gating" `Quick test_log_shape_and_gating;
        Alcotest.test_case "off by default" `Quick test_log_off_by_default_and_levels;
        Alcotest.test_case "level parsing" `Quick test_log_level_parsing;
      ] );
    ( "obs.slowlog",
      [
        Alcotest.test_case "slowest retention" `Quick test_slowlog_slowest_retention;
        Alcotest.test_case "degraded ring" `Quick test_slowlog_degraded_ring;
        Alcotest.test_case "configure" `Quick test_slowlog_configure_rejects_negatives;
      ] );
  ]
