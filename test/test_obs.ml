(* Tests for the observability subsystem (lib/obs): registry identity and
   value semantics, histogram bucket boundaries and percentile estimates,
   the Prometheus/JSON renders, concurrent recording from parallel
   domains, and the span tracer's tree shape. *)

module Registry = Extract_obs.Registry
module Trace = Extract_obs.Trace

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let feq what expected actual =
  check (Alcotest.float 1e-9) what expected actual

let contains s sub =
  let n = String.length sub in
  let rec scan k = k + n <= String.length s && (String.sub s k n = sub || scan (k + 1)) in
  scan 0

(* ------------------------------------------------------------------ *)
(* Registry: counters, gauges, identity *)

let test_counter_basics () =
  Registry.reset ();
  let c = Registry.counter ~labels:[ "who", "obs-test" ] "obs_test_total" in
  check int "fresh counter is zero" 0 (Registry.counter_value c);
  Registry.incr c;
  Registry.add c 4;
  check int "incr + add accumulate" 5 (Registry.counter_value c);
  let again = Registry.counter ~labels:[ "who", "obs-test" ] "obs_test_total" in
  check int "same identity, same cell" 5 (Registry.counter_value again);
  let other = Registry.counter ~labels:[ "who", "someone-else" ] "obs_test_total" in
  check int "different labels, different cell" 0 (Registry.counter_value other)

let test_counter_monotonic () =
  Registry.reset ();
  let c = Registry.counter "obs_test_monotonic_total" in
  check bool "negative add rejected" true
    (match Registry.add c (-1) with
    | () -> false
    | exception Invalid_argument _ -> true);
  check int "failed add left the value alone" 0 (Registry.counter_value c)

let test_gauge () =
  Registry.reset ();
  let g = Registry.gauge "obs_test_gauge" in
  feq "fresh gauge is zero" 0.0 (Registry.gauge_value g);
  Registry.set g 17.5;
  feq "set overwrites" 17.5 (Registry.gauge_value g);
  Registry.set g 3.0;
  feq "gauges may go down" 3.0 (Registry.gauge_value g)

let test_kind_clash () =
  Registry.reset ();
  let _c = Registry.counter "obs_test_kind_clash" in
  check bool "same name as another kind is refused" true
    (match Registry.gauge "obs_test_kind_clash" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Histograms: bucket boundaries and percentile estimates *)

let test_bucket_boundaries () =
  Registry.reset ();
  let h = Registry.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "obs_test_bounds_seconds" in
  (* bounds are inclusive upper edges: 1.0 lands in the first bucket,
     1.0000001 in the second; 8.0 overflows into +Inf *)
  List.iter (Registry.observe h) [ 0.5; 1.0; 1.0000001; 3.9; 4.0; 8.0 ];
  check int "count sees every observation" 6 (Registry.histogram_count h);
  feq "sum sees every observation" 18.4000001 (Registry.histogram_sum h);
  let text = Registry.render_prometheus () in
  check bool "le=1 cumulative = 2" true
    (contains text "obs_test_bounds_seconds_bucket{le=\"1\"} 2");
  check bool "le=2 cumulative = 3" true
    (contains text "obs_test_bounds_seconds_bucket{le=\"2\"} 3");
  check bool "le=4 cumulative = 5" true
    (contains text "obs_test_bounds_seconds_bucket{le=\"4\"} 5");
  check bool "+Inf cumulative = count" true
    (contains text "obs_test_bounds_seconds_bucket{le=\"+Inf\"} 6")

let test_bad_buckets () =
  Registry.reset ();
  let refused buckets =
    match Registry.histogram ~buckets "obs_test_bad_seconds" with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check bool "empty buckets refused" true (refused [||]);
  check bool "non-increasing buckets refused" true (refused [| 1.0; 1.0; 2.0 |]);
  check bool "decreasing buckets refused" true (refused [| 2.0; 1.0 |])

let test_percentiles () =
  Registry.reset ();
  let h = Registry.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "obs_test_pct_seconds" in
  (* one observation per bucket, one overflow: ranks are fully determined *)
  List.iter (Registry.observe h) [ 0.5; 1.5; 3.0; 8.0 ];
  (* p50: target rank 2 falls exactly at the (1,2] bucket's upper edge *)
  feq "p50 interpolates to the second bucket edge" 2.0 (Registry.percentile h 0.5);
  (* p99: target rank is in the +Inf bucket, clamped to the last finite bound *)
  feq "p99 clamps overflow to the largest finite bound" 4.0 (Registry.percentile h 0.99);
  (* p25: rank 1 at the first bucket's edge; the bucket starts at 0 *)
  feq "p25 is the first bucket edge" 1.0 (Registry.percentile h 0.25);
  check bool "q outside (0,1] rejected" true
    (match Registry.percentile h 0.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_empty_percentile () =
  Registry.reset ();
  let h = Registry.histogram ~buckets:[| 1.0 |] "obs_test_empty_seconds" in
  feq "empty histogram estimates 0" 0.0 (Registry.percentile h 0.5)

(* ------------------------------------------------------------------ *)
(* Renders *)

let test_prometheus_render () =
  Registry.reset ();
  let c = Registry.counter ~help:"A test counter" ~labels:[ "k", "v" ] "obs_test_render_total" in
  Registry.add c 3;
  let text = Registry.render_prometheus () in
  check bool "HELP line present" true (contains text "# HELP obs_test_render_total A test counter");
  check bool "TYPE line present" true (contains text "# TYPE obs_test_render_total counter");
  check bool "sample with labels" true (contains text "obs_test_render_total{k=\"v\"} 3")

let test_json_render () =
  Registry.reset ();
  let c = Registry.counter ~labels:[ "k", "v" ] "obs_test_json_total" in
  Registry.incr c;
  let h = Registry.histogram ~buckets:[| 1.0; 2.0 |] "obs_test_json_seconds" in
  Registry.observe h 0.5;
  let json = Registry.render_json () in
  check bool "top-level sections" true
    (contains json "\"counters\"" && contains json "\"gauges\"" && contains json "\"histograms\"");
  check bool "counter entry" true (contains json "\"obs_test_json_total\"");
  check bool "histogram percentiles" true (contains json "\"p95\"")

(* ------------------------------------------------------------------ *)
(* Concurrency: recording from parallel domains must lose nothing *)

let test_parallel_recording () =
  Registry.reset ();
  let c = Registry.counter "obs_test_parallel_total" in
  let h = Registry.histogram ~buckets:[| 0.5; 1.5 |] "obs_test_parallel_seconds" in
  let per_domain = 10_000 in
  let worker () =
    for i = 1 to per_domain do
      Registry.incr c;
      Registry.observe h (if i mod 2 = 0 then 1.0 else 2.0)
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check int "no lost counter increments" (4 * per_domain) (Registry.counter_value c);
  check int "no lost observations" (4 * per_domain) (Registry.histogram_count h)

(* ------------------------------------------------------------------ *)
(* Tracer *)

let test_trace_tree () =
  Trace.clear ();
  Trace.set_enabled true;
  let result =
    Trace.with_span "outer" (fun () ->
        ignore (Trace.with_span "first" (fun () -> 1));
        ignore (Trace.with_span "second" (fun () -> 2));
        "done")
  in
  Trace.set_enabled false;
  check (Alcotest.string) "with_span is transparent" "done" result;
  match Trace.finished () with
  | [ root ] ->
    check (Alcotest.string) "root name" "outer" root.Trace.name;
    check (Alcotest.list Alcotest.string) "children in order" [ "first"; "second" ]
      (List.map (fun s -> s.Trace.name) root.Trace.children);
    check bool "root spans its children" true
      (List.for_all (fun s -> s.Trace.duration <= root.Trace.duration) root.Trace.children);
    let rendered = Trace.render [ root ] in
    check bool "render shows the tree" true
      (contains rendered "outer" && contains rendered "  first")
  | roots -> Alcotest.failf "expected one root span, got %d" (List.length roots)

let test_trace_disabled_is_free () =
  Trace.clear ();
  Trace.set_enabled false;
  ignore (Trace.with_span "ignored" (fun () -> ()));
  check int "disabled tracer records nothing" 0 (List.length (Trace.finished ()))

let test_trace_exception () =
  Trace.clear ();
  Trace.set_enabled true;
  (try ignore (Trace.with_span "raiser" (fun () -> raise Exit)) with Exit -> ());
  Trace.set_enabled false;
  check int "span recorded even when the body raises" 1 (List.length (Trace.finished ()))

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "obs.registry",
      [
        Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "counters are monotonic" `Quick test_counter_monotonic;
        Alcotest.test_case "gauge" `Quick test_gauge;
        Alcotest.test_case "kind clash refused" `Quick test_kind_clash;
        Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
        Alcotest.test_case "bad buckets refused" `Quick test_bad_buckets;
        Alcotest.test_case "percentile estimates" `Quick test_percentiles;
        Alcotest.test_case "empty percentile" `Quick test_empty_percentile;
        Alcotest.test_case "prometheus render" `Quick test_prometheus_render;
        Alcotest.test_case "json render" `Quick test_json_render;
        Alcotest.test_case "parallel recording" `Quick test_parallel_recording;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "span tree" `Quick test_trace_tree;
        Alcotest.test_case "disabled is free" `Quick test_trace_disabled_is_free;
        Alcotest.test_case "exception safety" `Quick test_trace_exception;
      ] );
  ]
