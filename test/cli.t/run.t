The extract CLI, end to end on the paper's running example.

Generate the Figure 1 dataset:

  $ extract gen paper -o paper.xml
  wrote paper.xml

Dataset statistics (the Data Analyzer's view):

  $ extract stats paper.xml | head -5
  nodes: 7350 (elements 4226, text 3124)
  tags: 12, paths: 13, max depth: 6
  entity paths: 3 (1089 instances)
  attribute paths: 8 (3124 instances)
  connection paths: 2

Search returns one result for the paper's query:

  $ extract search paper.xml "Texas apparel retailer"
  1 result(s)
   1. <retailer> (7295 nodes)

The Fig. 5 interaction — query "store texas" with a 6-edge bound:

  $ extract snippet paper.xml "store texas" -b 6 -n 1
  1 result(s) for "store texas", bound 6 edges
  
  --- result 1 -------------------------------------
  store
  ├── name "Galleria"
  ├── state "Texas"
  └── merchandises
      └── clothes
          ├── category "outwear"
          └── fitting "man"
  (6/10 IList items, 6 edges)
  



The Fig. 3 IList with scores:

  $ extract explain paper.xml "Texas apparel retailer" | head -15
  --- result 1: IList -------------------------------
   0. keyword  texas                                              10 instance(s)
   1. keyword  apparel                                            1 instance(s)
   2. keyword  retailer                                           1 instance(s)
   3. entity   clothes                                            1070 instance(s)
   4. entity   store                                              10 instance(s)
   5. key      Brook Brothers                                     1 instance(s)
   6. feature  (store, city, Houston) DS=3.00 (N=6/10 D=5)        6 instance(s)
   7. feature  (clothes, category, outwear) DS=2.26 (N=220/1070 D=11) 220 instance(s)
   8. feature  (clothes, fitting, man) DS=1.80 (N=600/1000 D=3)   600 instance(s)
   9. feature  (clothes, situation, casual) DS=1.40 (N=700/1000 D=2) 700 instance(s)
  10. feature  (clothes, category, suit) DS=1.23 (N=120/1070 D=11) 120 instance(s)
  11. feature  (clothes, fitting, woman) DS=1.08 (N=360/1000 D=3) 360 instance(s)
  

XPath-lite views into the data:

  $ extract view paper.xml '/retailers/retailer[2]/name'
  1 match(es)
  --- match 1 ---
  <name>Levis</name>

  $ extract view paper.xml '//store[city="Austin"]' | head -5
  1 match(es)
  --- match 1 ---
  <store>
    <name>Uptown</name>
    <state>Texas</state>

Binary persistence round trip: save the arena, query it directly:

  $ extract save paper.xml paper.arena
  wrote paper.arena (7350 nodes, 65 tokens)

  $ extract search paper.arena "Texas apparel retailer"
  1 result(s)
   1. <retailer> (7295 nodes)

Ranked search orders specific results first:

  $ extract search paper.xml "outwear woman" --ranked -n 2 | head -3
  11 result(s)
   1. <store> (729 nodes)  score=14.360
   2. <store> (729 nodes)  score=14.360

The HTML demo page (Fig. 5):

  $ extract demo paper.xml "store texas" -b 6 -n 2 -o out.html
  wrote out.html (2 results)

  $ grep -c snippet out.html
  2

Engines are swappable (orthogonality):

  $ extract search paper.xml "store texas" -e slca | head -2
  10 result(s)
   1. <store> (729 nodes)

  $ extract search paper.xml "store texas" -e xsearch | head -2
  10 result(s)
   1. <store> (729 nodes)

Errors are reported, not crashes:

  $ extract view paper.xml 'not-a-path'
  Path_query: a path must start with '/'
  [1]

  $ extract search paper.xml "no such tokens anywhere"
  0 result(s)

The WSU-flavoured course dataset (companion-paper evaluation corpus):

  $ extract gen courses -o courses.xml
  wrote courses.xml

  $ extract snippet courses.xml "cs databases course" -b 6 -n 1 | head -11
  1 result(s) for "cs databases course", bound 6 edges
  
  --- result 1 -------------------------------------
  course
  ├── code "CS-156-56"
  ├── crs "156"
  ├── title "Databases"
  ├── credit "3"
  └── sessions
      └── session
  (7/11 IList items, 6 edges)

Relaxed search drops unmatched keywords instead of returning nothing:

  $ extract search paper.xml "store texas zzzz" --relax -n 1
  (relaxed: dropped zzzz)
  10 result(s)
   1. <store> (729 nodes)

The invariant checker (fsck) validates the dataset, the index, the
dataguide and a probe-query snippet run:

  $ extract check paper.xml
  checking paper.xml: 7350 nodes, 65 tokens, 13 paths, 3 probe queries
  ok: all invariants hold

It also accepts a saved arena and explicit queries:

  $ extract check paper.arena -q "Texas apparel retailer"
  checking paper.arena: 7350 nodes, 65 tokens, 13 paths, 1 probe query
  ok: all invariants hold

EXTRACT_CHECK=1 runs the same invariants at every pipeline stage:

  $ EXTRACT_CHECK=1 extract search paper.xml "Texas apparel retailer"
  1 result(s)
   1. <retailer> (7295 nodes)
