(* Sharded query fan-out: splitting preserves every subtree below the
   root, provenance intervals tile the corpus, mask translation matches
   the global tombstone semantics, parallel fan-out is deterministic,
   and a shard directory roundtrips through save_dir/load_dir. *)

module Codec = Extract_store.Codec
module Document = Extract_store.Document
module Engine = Extract_search.Engine
module Pipeline = Extract_snippet.Pipeline
module Shard_set = Extract_snippet.Shard_set

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let retail_doc =
  lazy
    (Document.of_document
       (Extract_datagen.Retail.generate Extract_datagen.Retail.default))

let retail_db = lazy (Pipeline.build (Lazy.force retail_doc))

let sharded = lazy (Shard_set.split ~shards:3 (Lazy.force retail_doc))

let queries = [ "apparel retailer"; "suit"; "store texas"; "retailer"; "nosuchword" ]

(* ------------------------------------------------------------------ *)
(* Splitting *)

let test_provenance_tiles_corpus () =
  let doc = Lazy.force retail_doc in
  let t = Lazy.force sharded in
  let k = Shard_set.shard_count t in
  check bool "at least one shard" true (k >= 1);
  check bool "at most requested" true (k <= 3);
  let expected_first = ref 1 in
  for i = 0 to k - 1 do
    let g0, g1 = Shard_set.provenance t i in
    check int (Printf.sprintf "shard %d contiguous" i) !expected_first g0;
    check bool (Printf.sprintf "shard %d non-empty" i) true (g1 >= g0);
    expected_first := g1 + 1
  done;
  check int "covers every node" (Document.node_count doc) !expected_first

let test_shard_docs_mirror_global () =
  let doc = Lazy.force retail_doc in
  let t = Lazy.force sharded in
  for i = 0 to Shard_set.shard_count t - 1 do
    let g0, g1 = Shard_set.provenance t i in
    let sdoc = Pipeline.document (Shard_set.shard_db t i) in
    check int
      (Printf.sprintf "shard %d node count" i)
      (g1 - g0 + 2) (Document.node_count sdoc);
    check bool "root tag copied" true
      (Document.tag_name sdoc 0 = Document.tag_name doc 0);
    (* every local node mirrors its global counterpart *)
    for local = 1 to Document.node_count sdoc - 1 do
      let g = Shard_set.to_global t ~shard:i local in
      if Document.is_element sdoc local then
        assert (Document.tag_name sdoc local = Document.tag_name doc g)
      else assert (Document.text sdoc local = Document.text doc g);
      assert (Document.depth sdoc local = Document.depth doc g);
      assert (Document.subtree_size sdoc local = Document.subtree_size doc g)
    done
  done

(* ------------------------------------------------------------------ *)
(* Query equivalence (SLCA: purely structural semantics, so shard-local
   answers must equal the unsharded answers rooted below the top-level
   children; spanning results root at the global root and are dropped
   on both sides of the comparison) *)

let global_roots_unsharded ?mask q =
  Pipeline.search ~semantics:Engine.Slca ?mask (Lazy.force retail_db) q
  |> List.map Extract_search.Result_tree.root
  |> List.filter (fun r -> r <> 0)
  |> List.sort compare

let global_roots_sharded ?mask ~parallel q =
  Shard_set.run ~semantics:Engine.Slca ?mask ~parallel (Lazy.force sharded) q
  |> List.map (fun h -> h.Shard_set.global_root)
  |> List.sort compare

let test_slca_equivalence () =
  List.iter
    (fun q ->
      check bool (q ^ ": sharded = unsharded") true
        (global_roots_sharded ~parallel:false q = global_roots_unsharded q))
    queries

let test_hits_translate_roots () =
  let t = Lazy.force sharded in
  let hits = Shard_set.run ~parallel:false t "retailer" in
  check bool "some hits" true (hits <> []);
  List.iter
    (fun h ->
      let g0, g1 = Shard_set.provenance t h.Shard_set.shard in
      check bool "root inside shard block" true
        (h.Shard_set.global_root >= g0 && h.Shard_set.global_root <= g1))
    hits

(* ------------------------------------------------------------------ *)
(* Mask translation *)

let test_translate_mask_intersects_and_shifts () =
  let t = Lazy.force sharded in
  let g0, g1 = Shard_set.provenance t 1 in
  (* full-corpus mask: the whole block is visible, shifted to local ids *)
  let full = Shard_set.translate_mask t ~shard:1 [| (0, max_int) |] in
  check bool "full mask keeps root" true (Array.exists (fun iv -> iv = (0, 0)) full);
  check bool "full mask covers block" true
    (Array.exists (fun (lo, hi) -> lo = 1 && hi = g1 - g0 + 1) full);
  (* a mask that misses the block: only the root survives *)
  let miss = Shard_set.translate_mask t ~shard:1 [| (0, g0 - 1) |] in
  check bool "missed block = root only" true (miss = [| (0, 0) |]);
  (* a mask that also hides the root: nothing visible *)
  let hidden = Shard_set.translate_mask t ~shard:1 [| (1, g0 - 1) |] in
  check int "hidden shard has empty mask" 0 (Array.length hidden);
  (* partial overlap shifts by g0 - 1 *)
  let partial = Shard_set.translate_mask t ~shard:1 [| (g0 + 2, g1 + 1000) |] in
  check bool "partial overlap" true (partial = [| (3, g1 - g0 + 1) |])

let test_masked_equivalence () =
  let doc = Lazy.force retail_doc in
  let t = Lazy.force sharded in
  (* hide shard 0's whole block (plus keep everything else visible) *)
  let _, h0 = Shard_set.provenance t 0 in
  let mask = [| (0, 0); (h0 + 1, Document.node_count doc - 1) |] in
  List.iter
    (fun q ->
      check bool (q ^ ": masked sharded = masked unsharded") true
        (global_roots_sharded ~mask ~parallel:false q = global_roots_unsharded ~mask q);
      (* and nothing leaks from the hidden shard *)
      List.iter
        (fun h -> check bool "no hit from hidden shard" true (h.Shard_set.shard <> 0))
        (Shard_set.run ~semantics:Engine.Slca ~mask ~parallel:false t q))
    queries

(* ------------------------------------------------------------------ *)
(* Parallel fan-out determinism *)

let hit_key h = Shard_set.(h.shard, h.score, h.global_root)

let test_parallel_equals_sequential () =
  let t = Lazy.force sharded in
  List.iter
    (fun q ->
      let seq = Shard_set.run ~parallel:false t q in
      let par = Shard_set.run ~parallel:true t q in
      check bool (q ^ ": parallel = sequential") true
        (List.map hit_key seq = List.map hit_key par))
    queries

(* Regression: Shard_set.run used to drop its caller's deadline on the
   floor, so /shards/search had no degradation path. An expired deadline
   must degrade the snippets, not raise and not change the hit set. *)
let test_run_deadline_degrades () =
  let t = Lazy.force sharded in
  let roots hits = List.sort compare (List.map (fun h -> h.Shard_set.global_root) hits) in
  let full = Shard_set.run ~parallel:false t "retailer" in
  let expired = Extract_util.Deadline.after 0. in
  let hits = Shard_set.run ~parallel:false ~deadline:expired t "retailer" in
  check bool "expired deadline still answers" true (hits <> []);
  check bool "hit roots unchanged under degradation" true (roots hits = roots full);
  check bool "snippets degraded rather than dropped" true
    (List.for_all (fun h -> h.Shard_set.result.Pipeline.degraded) hits);
  (* a generous deadline changes nothing *)
  let easy = Shard_set.run ~parallel:false ~deadline:(Extract_util.Deadline.after 60.) t "retailer" in
  check bool "generous deadline = no deadline" true
    (List.map hit_key easy = List.map hit_key full)

let test_limit_bounds_merged_answer () =
  let t = Lazy.force sharded in
  let all = Shard_set.run ~parallel:false t "retailer" in
  let top = Shard_set.run ~parallel:false ~limit:2 t "retailer" in
  check bool "enough hits to truncate" true (List.length all > 2);
  check int "limit respected" 2 (List.length top);
  check bool "limit keeps the best" true
    (List.map hit_key top
    = List.map hit_key (List.filteri (fun i _ -> i < 2) all))

(* ------------------------------------------------------------------ *)
(* The merge itself *)

let test_merge_scored_orders_and_tags () =
  let merged =
    Engine.merge_scored
      [| [ (5.0, "a0"); (1.0, "a1") ]; [ (5.0, "b0"); (2.0, "b1") ]; [] |]
  in
  check bool "ranked, ties to lower source" true
    (merged
    = [ (5.0, (0, "a0")); (5.0, (1, "b0")); (2.0, (1, "b1")); (1.0, (0, "a1")) ])

let test_merge_scored_limit () =
  let merged =
    Engine.merge_scored ~limit:2 [| [ (3.0, 'x') ]; [ (4.0, 'y'); (1.0, 'z') ] |]
  in
  check bool "limited" true (merged = [ (4.0, (1, 'y')); (3.0, (0, 'x')) ])

(* ------------------------------------------------------------------ *)
(* Persistence *)

let tmp_dir name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_save_load_roundtrip () =
  let t = Lazy.force sharded in
  let dir = tmp_dir "extract_test_shards" in
  Shard_set.save_dir dir t;
  check bool "is_shard_dir" true (Shard_set.is_shard_dir dir);
  check bool "plain file is not a shard dir" false
    (Shard_set.is_shard_dir (Filename.concat dir "shards.manifest"));
  let t2 = Shard_set.load_dir dir in
  check int "shard count" (Shard_set.shard_count t) (Shard_set.shard_count t2);
  for i = 0 to Shard_set.shard_count t - 1 do
    check bool
      (Printf.sprintf "provenance %d" i)
      true
      (Shard_set.provenance t i = Shard_set.provenance t2 i)
  done;
  List.iter
    (fun q ->
      let roots t =
        Shard_set.run ~semantics:Engine.Slca ~parallel:false t q
        |> List.map (fun h -> h.Shard_set.shard, h.Shard_set.global_root)
      in
      check bool (q ^ ": loaded answers match") true (roots t = roots t2))
    queries

let test_empty_manifest_diagnostic () =
  let dir = tmp_dir "extract_test_shards_empty" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir "shards.manifest" in
  Out_channel.with_open_bin path (fun _ -> ());
  match Shard_set.load_dir dir with
  | _ -> Alcotest.fail "empty manifest should not load"
  | exception Codec.Truncated msg ->
    let has needle hay =
      let n = String.length needle and h = String.length hay in
      let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
      scan 0
    in
    check bool "names the path" true (has path msg);
    check bool "names the magic" true (has "XTRSHRDS" msg)

let test_corrupt_manifest_detected () =
  let t = Lazy.force sharded in
  let dir = tmp_dir "extract_test_shards_corrupt" in
  Shard_set.save_dir dir t;
  let path = Filename.concat dir "shards.manifest" in
  let data = In_channel.with_open_bin path In_channel.input_all in
  let flipped = Bytes.of_string data in
  let mid = Bytes.length flipped / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0xFF));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc flipped);
  (match Shard_set.load_dir dir with
  | _ -> Alcotest.fail "corrupt manifest should not load"
  | exception Codec.Corrupt _ -> ()
  | exception Codec.Truncated _ -> ());
  (* restore for any later run sharing the temp dir *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "shard.split",
      [
        case "provenance tiles the corpus" test_provenance_tiles_corpus;
        case "shard docs mirror the global doc" test_shard_docs_mirror_global;
      ] );
    ( "shard.query",
      [
        case "slca equivalence" test_slca_equivalence;
        case "hits translate into shard blocks" test_hits_translate_roots;
        case "parallel = sequential" test_parallel_equals_sequential;
        case "deadline degrades, never raises" test_run_deadline_degrades;
        case "limit bounds the merged answer" test_limit_bounds_merged_answer;
      ] );
    ( "shard.mask",
      [
        case "translate: intersect, shift, root rule"
          test_translate_mask_intersects_and_shifts;
        case "masked equivalence and isolation" test_masked_equivalence;
      ] );
    ( "shard.merge",
      [
        case "orders and tags sources" test_merge_scored_orders_and_tags;
        case "limit" test_merge_scored_limit;
      ] );
    ( "shard.persist",
      [
        case "save/load roundtrip" test_save_load_roundtrip;
        case "empty manifest diagnostic" test_empty_manifest_diagnostic;
        case "corrupt manifest detected" test_corrupt_manifest_detected;
      ] );
  ]
