(* eXtract benchmark harness.

   Each experiment (E1..E10) regenerates one table/figure of the evaluation
   reconstructed in DESIGN.md §6. Every experiment has a Bechamel kernel
   (Test.make / Test.make_indexed); OLS estimates over the monotonic clock
   give the reported times. Non-timing tables (dataset statistics, snippet
   quality, ranking quality) are computed directly.

   Run with: dune exec bench/main.exe            (full run)
             dune exec bench/main.exe -- quick   (lower measurement quota) *)

open Bechamel
open Toolkit
module Table = Extract_util.Table
module Document = Extract_store.Document
module Doc_stats = Extract_store.Doc_stats
module Node_kind = Extract_store.Node_kind
module Inverted_index = Extract_store.Inverted_index
module Dataguide = Extract_store.Dataguide
module Key_miner = Extract_store.Key_miner
module Engine = Extract_search.Engine
module Query = Extract_search.Query
module Result_tree = Extract_search.Result_tree
module Pipeline = Extract_snippet.Pipeline
module Feature = Extract_snippet.Feature
module Ilist = Extract_snippet.Ilist
module Selector = Extract_snippet.Selector
module Optimal = Extract_snippet.Optimal
module Snippet_tree = Extract_snippet.Snippet_tree
module Text_baseline = Extract_snippet.Text_baseline
module Naive_baseline = Extract_snippet.Naive_baseline
module Datagen = Extract_datagen
module Registry = Extract_obs.Registry

let quick = Array.exists (fun a -> a = "quick") Sys.argv

(* --json: run only the hotpath experiment (E20) and write its results to
   BENCH_hotpath.json — machine-readable, so successive PRs can track the
   perf trajectory; validated by test/bench_json.t. *)
let json_mode = Array.exists (fun a -> a = "--json") Sys.argv

(* --floor=PATH: compare the measured end-to-end mean against a checked-in
   floor file (bench/hotpath_floor.json) and exit 1 on a >3x regression.
   CI runs the quick --json workload under this gate. *)
let floor_path =
  Array.fold_left
    (fun acc a ->
      let prefix = "--floor=" in
      let plen = String.length prefix in
      if String.length a > plen && String.sub a 0 plen = prefix then
        Some (String.sub a plen (String.length a - plen))
      else acc)
    None Sys.argv

let quota_seconds = if quick then 0.05 else 0.25

(* ------------------------------------------------------------------ *)
(* Measurement helpers                                                 *)

(* OLS estimate (ns/run) of the monotonic clock for each test in a grouped
   Bechamel benchmark. *)
let bechamel_run (tests : Test.t) : (string * float) list =
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second quota_seconds)
      ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> (name, est) :: acc
      | _ -> acc)
    results []

let ns_to_string ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let lookup_ns results name =
  match List.assoc_opt name results with
  | Some ns -> ns
  | None -> nan

(* Direct wall-clock timing for macro steps (document builds, component
   breakdowns) where Bechamel's repetition model is too heavy. *)
let time_once f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  x, (t1 -. t0) *. 1e9

(* Total accessors: the bench harness builds its own inputs, so an empty
   list or a missing option is a harness bug — fail with a message instead
   of a bare Failure from the partial stdlib accessors. *)
let hd_exn = function
  | x :: _ -> x
  | [] -> invalid_arg "bench: empty list"

let nth_exn l k =
  match List.nth_opt l k with
  | Some x -> x
  | None -> invalid_arg "bench: list index out of range"

let get_exn = function
  | Some x -> x
  | None -> invalid_arg "bench: unexpected None"

let time_median ~repeat f =
  let samples =
    List.init repeat (fun _ ->
        let _, ns = time_once f in
        ns)
    |> List.sort Float.compare
  in
  nth_exn samples (List.length samples / 2)

let mean xs =
  if xs = [] then 0.0 else List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let pct x = Printf.sprintf "%.0f%%" (100.0 *. x)

(* ------------------------------------------------------------------ *)
(* Shared data                                                         *)

let datasets =
  lazy
    [
      "retail", Pipeline.build (Document.of_document (Datagen.Retail.generate Datagen.Retail.default));
      "movies", Pipeline.build (Document.of_document (Datagen.Movies.generate Datagen.Movies.default));
      "auction", Pipeline.build (Document.of_document (Datagen.Auction.generate Datagen.Auction.default));
      "bib", Pipeline.build (Document.of_document (Datagen.Bib.generate Datagen.Bib.default));
      "courses", Pipeline.build (Document.of_document (Datagen.Courses.generate Datagen.Courses.default));
    ]

let workload_for db ~n ~seed =
  Datagen.Workload.generate
    { Datagen.Workload.default with Datagen.Workload.queries = n; seed }
    (Pipeline.kinds db)

(* The largest result of a query, as the representative snippet workload. *)
let biggest_result db query =
  match
    Pipeline.search db query
    |> List.sort (fun a b -> Int.compare (Result_tree.size b) (Result_tree.size a))
  with
  | r :: _ -> Some r
  | [] -> None

(* ================================================================== *)
(* E1 — dataset statistics (Table 1)                                   *)

let e1 () =
  let t = Table.create ("dataset" :: Doc_stats.header) in
  List.iter
    (fun (name, db) ->
      let stats = Doc_stats.compute (Pipeline.kinds db) in
      Table.add_row t (name :: Doc_stats.to_row stats))
    (Lazy.force datasets);
  Table.print ~title:"E1 (Table 1) — dataset statistics" t

(* Bechamel kernel for E1: the Data Analyzer (classification) itself. *)
let e1_kernel =
  Test.make ~name:"e1_data_analyzer"
    (Staged.stage (fun () ->
         let _, db = hd_exn (Lazy.force datasets) in
         Node_kind.of_document (Pipeline.document db)))

(* ================================================================== *)
(* E2 (Fig. A) — snippet generation time vs query result size          *)

let e2_sizes = if quick then [ 5; 20; 80 ] else [ 5; 10; 20; 40; 80; 160 ]

let e2_scenarios =
  lazy
    (List.map
       (fun clothes_per_store ->
         let cfg =
           { Datagen.Retail.default with Datagen.Retail.retailers = 2; clothes_per_store }
         in
         let db = Pipeline.build (Document.of_document (Datagen.Retail.generate cfg)) in
         let result = get_exn (biggest_result db "apparel retailer") in
         clothes_per_store, db, result)
       e2_sizes)

let e2_kernel =
  Test.make_indexed ~name:"e2_snippet_vs_result_size" ~fmt:"%s:%d"
    ~args:(List.init (List.length e2_sizes) Fun.id) (fun i ->
      Staged.stage (fun () ->
          let _, db, result = nth_exn (Lazy.force e2_scenarios) i in
          Pipeline.snippet_of ~bound:10 db result (Query.of_string "apparel retailer")))

let e2 results =
  let t = Table.create [ "clothes/store"; "result nodes"; "result elements"; "snippet time" ] in
  List.iteri
    (fun i (cps, _, result) ->
      let ns = lookup_ns results (Printf.sprintf "e2_snippet_vs_result_size:%d" i) in
      Table.add_row t
        [
          string_of_int cps;
          string_of_int (Result_tree.size result);
          string_of_int (Result_tree.element_size result);
          ns_to_string ns;
        ])
    (Lazy.force e2_scenarios);
  Table.print ~title:"E2 (Fig. A) — snippet generation time vs result size (bound 10)" t

(* ================================================================== *)
(* E3 (Fig. B) — snippet generation time vs size bound                 *)

let e3_bounds = if quick then [ 4; 16; 64 ] else [ 2; 4; 8; 16; 32; 64 ]

let e3_setup =
  lazy
    (let _, db, result = nth_exn (Lazy.force e2_scenarios) (List.length e2_sizes - 1) in
     db, result)

let e3_kernel =
  Test.make_indexed ~name:"e3_snippet_vs_bound" ~fmt:"%s:%d" ~args:e3_bounds (fun bound ->
      Staged.stage (fun () ->
          let db, result = Lazy.force e3_setup in
          Pipeline.snippet_of ~bound db result (Query.of_string "apparel retailer")))

let e3 results =
  let db, result = Lazy.force e3_setup in
  let query = Query.of_string "apparel retailer" in
  let t = Table.create [ "bound (edges)"; "covered items"; "edges used"; "time" ] in
  List.iter
    (fun bound ->
      let out = Pipeline.snippet_of ~bound db result query in
      let ns = lookup_ns results (Printf.sprintf "e3_snippet_vs_bound:%d" bound) in
      Table.add_row t
        [
          string_of_int bound;
          Printf.sprintf "%d/%d" (Selector.covered_count out.Pipeline.selection)
            (Ilist.length out.Pipeline.ilist);
          string_of_int (Snippet_tree.edge_count out.Pipeline.selection.Selector.snippet);
          ns_to_string ns;
        ])
    e3_bounds;
  Table.print
    ~title:
      (Printf.sprintf
         "E3 (Fig. B) — time and coverage vs snippet size bound (result: %d nodes)"
         (Result_tree.size result))
    t

(* ================================================================== *)
(* E4 (Fig. C) — feature analysis time vs number of distinct features  *)

let e4_pools = if quick then [ 2; 8 ] else [ 2; 4; 6; 8; 11 ]

let e4_scenarios =
  lazy
    (List.map
       (fun category_pool ->
         let cfg =
           {
             Datagen.Retail.default with
             Datagen.Retail.retailers = 1;
             stores_per_retailer = 12;
             clothes_per_store = 40;
             category_pool;
             city_pool = min category_pool 6;
             value_skew = 0.3;
           }
         in
         let db = Pipeline.build (Document.of_document (Datagen.Retail.generate cfg)) in
         let result = get_exn (biggest_result db "apparel retailer") in
         let kinds = Pipeline.kinds db in
         category_pool, kinds, result)
       e4_pools)

let e4_kernel =
  Test.make_indexed ~name:"e4_features" ~fmt:"%s:%d"
    ~args:(List.init (List.length e4_pools) Fun.id) (fun i ->
      Staged.stage (fun () ->
          let _, kinds, result = nth_exn (Lazy.force e4_scenarios) i in
          Feature.analyze kinds result))

let e4 results =
  let t =
    Table.create [ "category pool"; "distinct features"; "feature types"; "dominant"; "time" ]
  in
  List.iteri
    (fun i (pool, kinds, result) ->
      let a = Feature.analyze kinds result in
      let ns = lookup_ns results (Printf.sprintf "e4_features:%d" i) in
      Table.add_row t
        [
          string_of_int pool;
          string_of_int (Feature.feature_count a);
          string_of_int (Feature.type_count a);
          string_of_int (List.length (Feature.dominant a));
          ns_to_string ns;
        ])
    (Lazy.force e4_scenarios);
  Table.print ~title:"E4 (Fig. C) — dominant-feature identification vs distinct features" t

(* ================================================================== *)
(* E5 (Fig. D) — greedy vs optimal instance selection                  *)

let e5_bounds = if quick then [ 4; 8 ] else [ 2; 4; 6; 8; 10; 12 ]

let e5_setup =
  lazy
    (let cfg =
       {
         Datagen.Retail.default with
         Datagen.Retail.retailers = 2;
         stores_per_retailer = 3;
         clothes_per_store = 3;
       }
     in
     let db = Pipeline.build (Document.of_document (Datagen.Retail.generate cfg)) in
     let result = get_exn (biggest_result db "apparel retailer") in
     let ilist = Pipeline.ilist_of db result (Query.of_string "apparel retailer") in
     result, ilist)

let e5_greedy_kernel =
  Test.make ~name:"e5_greedy"
    (Staged.stage (fun () ->
         let result, ilist = Lazy.force e5_setup in
         Selector.greedy ~bound:8 result ilist))

let e5_optimal_kernel =
  Test.make ~name:"e5_optimal"
    (Staged.stage (fun () ->
         let result, ilist = Lazy.force e5_setup in
         Optimal.solve ~max_steps:200_000 ~bound:8 result ilist))

let e5 results =
  let result, ilist = Lazy.force e5_setup in
  let t =
    Table.create
      [ "bound"; "strict-prefix"; "greedy covered"; "optimal covered"; "ratio";
        "optimal exact"; "steps" ]
  in
  List.iter
    (fun bound ->
      let strict = Selector.greedy ~skip_overflow:false ~bound result ilist in
      let g = Selector.greedy ~bound result ilist in
      let o = Optimal.solve ~max_steps:2_000_000 ~bound result ilist in
      let gc = Selector.covered_count g and oc = Selector.covered_count o.Optimal.selection in
      Table.add_row t
        [
          string_of_int bound;
          string_of_int (Selector.covered_count strict);
          string_of_int gc;
          string_of_int oc;
          (if oc = 0 then "1.00" else Printf.sprintf "%.2f" (float_of_int gc /. float_of_int oc));
          (if o.Optimal.exact then "yes" else "no");
          string_of_int o.Optimal.steps;
        ])
    e5_bounds;
  Table.print
    ~title:
      (Printf.sprintf
         "E5 (Fig. D) — greedy vs exact selection (IList %d items; greedy %s, optimal %s at bound 8)"
         (Ilist.length ilist)
         (ns_to_string (lookup_ns results "e5_greedy"))
         (ns_to_string (lookup_ns results "e5_optimal")))
    t

(* ================================================================== *)
(* E6 (Fig. E) — component time breakdown (the Fig. 4 architecture)    *)

let e6 () =
  let t =
    Table.create
      [ "dataset"; "parse+load"; "classify"; "mine keys"; "build index"; "search"; "ilist";
        "select" ]
  in
  let repeat = if quick then 3 else 7 in
  List.iter
    (fun (name, gen) ->
      let xml = Extract_xml.Printer.document_to_string (gen ()) in
      let parse_ns = time_median ~repeat (fun () -> Document.load_string xml) in
      let doc = Document.load_string xml in
      let classify_ns = time_median ~repeat (fun () -> Node_kind.of_document doc) in
      let kinds = Node_kind.of_document doc in
      let keys_ns = time_median ~repeat (fun () -> Key_miner.mine kinds) in
      let keys = Key_miner.mine kinds in
      let index_ns = time_median ~repeat (fun () -> Inverted_index.build doc) in
      let index = Inverted_index.build doc in
      let queries = Datagen.Workload.generate Datagen.Workload.default kinds in
      let query = Query.of_string (hd_exn queries) in
      let search_ns = time_median ~repeat (fun () -> Engine.run index kinds query) in
      match Engine.run index kinds query with
      | [] -> ()
      | result :: _ ->
        let ilist_ns =
          time_median ~repeat (fun () -> Ilist.build kinds keys index result query)
        in
        let ilist = Ilist.build kinds keys index result query in
        let select_ns = time_median ~repeat (fun () -> Selector.greedy ~bound:10 result ilist) in
        Table.add_row t
          (name
          :: List.map ns_to_string
               [ parse_ns; classify_ns; keys_ns; index_ns; search_ns; ilist_ns; select_ns ]))
    [
      "retail", (fun () -> Datagen.Retail.generate Datagen.Retail.default);
      "movies", (fun () -> Datagen.Movies.generate Datagen.Movies.default);
      "auction", (fun () -> Datagen.Auction.generate Datagen.Auction.default);
      "bib", (fun () -> Datagen.Bib.generate Datagen.Bib.default);
      "courses", (fun () -> Datagen.Courses.generate Datagen.Courses.default);
    ];
  Table.print ~title:"E6 (Fig. E) — per-component time breakdown (medians)" t

let e6_kernel =
  Test.make ~name:"e6_full_pipeline"
    (Staged.stage (fun () ->
         let _, db = hd_exn (Lazy.force datasets) in
         Pipeline.run ~bound:10 ~limit:3 db "apparel retailer"))

(* ================================================================== *)
(* E7 (Fig. F) — index build vs document size                          *)

let e7_sizes = if quick then [ 500; 2000 ] else [ 500; 1000; 2000; 4000; 8000 ]

let e7 () =
  let t =
    Table.create
      [ "target clothes"; "doc nodes"; "build time"; "tokens"; "postings"; "ns/node" ]
  in
  let repeat = if quick then 3 else 5 in
  List.iter
    (fun n ->
      let doc = Document.of_document (Datagen.Retail.scaled n) in
      let build_ns = time_median ~repeat (fun () -> Inverted_index.build doc) in
      let idx = Inverted_index.build doc in
      Table.add_row t
        [
          string_of_int n;
          string_of_int (Document.node_count doc);
          ns_to_string build_ns;
          string_of_int (Inverted_index.token_count idx);
          string_of_int (Inverted_index.postings_size idx);
          Printf.sprintf "%.0f" (build_ns /. float_of_int (Document.node_count doc));
        ])
    e7_sizes;
  Table.print ~title:"E7 (Fig. F) — index build cost vs document size" t

let e7_kernel =
  Test.make ~name:"e7_index_build"
    (Staged.stage
       (let doc = lazy (Document.of_document (Datagen.Retail.scaled 1000)) in
        fun () -> Inverted_index.build (Lazy.force doc)))

(* ================================================================== *)
(* E8 (Table 2) — snippet quality vs baselines                         *)

type quality = {
  mutable n : int;
  mutable kw : float;       (* query keyword coverage *)
  mutable entities : float; (* entity-name coverage *)
  mutable key : float;      (* result key shown *)
  mutable features : float; (* top-3 dominant feature coverage *)
  mutable ilist : float;    (* overall IList coverage, the optimized metric *)
  mutable weighted : float; (* rank-weighted IList coverage (DCG-style) *)
}

let fresh_quality () =
  { n = 0; kw = 0.0; entities = 0.0; key = 0.0; features = 0.0; ilist = 0.0; weighted = 0.0 }

let quality_row name q =
  [
    name;
    pct (q.kw /. float_of_int (max q.n 1));
    pct (q.entities /. float_of_int (max q.n 1));
    pct (q.key /. float_of_int (max q.n 1));
    pct (q.features /. float_of_int (max q.n 1));
    pct (q.ilist /. float_of_int (max q.n 1));
    pct (q.weighted /. float_of_int (max q.n 1));
  ]

(* Coverage is computed by the library itself (Extract_snippet.Metrics),
   so the benches score exactly what the public API reports. *)
let tree_snippet_tokens db snippet = Extract_snippet.Metrics.snippet_tokens db snippet

let accumulate_quality q ~tokens ~ilist =
  let c = Extract_snippet.Metrics.coverage ~tokens ilist in
  q.n <- q.n + 1;
  q.kw <- q.kw +. c.Extract_snippet.Metrics.keywords;
  q.entities <- q.entities +. c.Extract_snippet.Metrics.entity_names;
  q.key <- q.key +. c.Extract_snippet.Metrics.result_key;
  q.features <- q.features +. c.Extract_snippet.Metrics.features;
  q.ilist <- q.ilist +. c.Extract_snippet.Metrics.all_items;
  q.weighted <- q.weighted +. c.Extract_snippet.Metrics.rank_weighted

let e8_bound = 6

let e8 () =
  let extract_q = fresh_quality () in
  let text_q = fresh_quality () in
  let naive_q = fresh_quality () in
  List.iter
    (fun (_, db) ->
      let queries = workload_for db ~n:(if quick then 4 else 12) ~seed:5 in
      List.iter
        (fun qs ->
          let query = Query.of_string qs in
          List.iter
            (fun (r : Pipeline.snippet_result) ->
              (* small results fit in any snippet and say nothing about
                 selection quality; evaluate on results that must be cut *)
              if Result_tree.element_size r.Pipeline.result - 1 > 2 * e8_bound then begin
              let ilist = r.Pipeline.ilist in
              accumulate_quality extract_q
                ~tokens:(tree_snippet_tokens db r.Pipeline.selection.Selector.snippet)
                ~ilist;
              let text =
                Text_baseline.generate
                  ~window_tokens:(Text_baseline.window_for_bound e8_bound)
                  r.Pipeline.result query
              in
              accumulate_quality text_q ~tokens:text.Text_baseline.window ~ilist;
              let naive = Naive_baseline.generate ~bound:e8_bound r.Pipeline.result in
              accumulate_quality naive_q ~tokens:(tree_snippet_tokens db naive) ~ilist
              end)
            (Pipeline.run ~bound:e8_bound ~limit:3 db qs))
        queries)
    (Lazy.force datasets);
  let t =
    Table.create
      [ "system"; "keywords"; "entity names"; "result key"; "top-3 features";
        "all IList items"; "rank-weighted" ]
  in
  Table.add_row t (quality_row "eXtract" extract_q);
  Table.add_row t (quality_row "text window (Google Desktop)" text_q);
  Table.add_row t (quality_row "naive truncation" naive_q);
  Table.print
    ~title:
      (Printf.sprintf
         "E8 (Table 2) — information captured within equal budget (bound %d / %d tokens; %d results)"
         e8_bound
         (Text_baseline.window_for_bound e8_bound)
         extract_q.n)
    t

let e8_kernel =
  Test.make ~name:"e8_quality_eval"
    (Staged.stage (fun () ->
         let _, db = hd_exn (Lazy.force datasets) in
         match Pipeline.run ~bound:e8_bound ~limit:1 db "apparel retailer" with
         | [ r ] -> ignore (tree_snippet_tokens db r.Pipeline.selection.Selector.snippet)
         | _ -> ()))

(* ================================================================== *)
(* E9 (Fig. G) — orthogonality: snippets on three engines              *)

let e9_kernel =
  Test.make_indexed ~name:"e9_engine" ~fmt:"%s:%d"
    ~args:(List.init (List.length Engine.all_semantics) Fun.id) (fun i ->
      Staged.stage (fun () ->
          let semantics = nth_exn Engine.all_semantics i in
          let _, db = hd_exn (Lazy.force datasets) in
          Pipeline.run ~semantics ~bound:8 ~limit:5 db "apparel retailer"))

let e9 results =
  let t =
    Table.create
      [ "engine"; "results"; "mean result nodes"; "mean covered"; "query+snippet time" ]
  in
  let _, db = hd_exn (Lazy.force datasets) in
  List.iteri
    (fun i semantics ->
      let out = Pipeline.run ~semantics ~bound:8 db "apparel retailer" in
      let sizes =
        List.map
          (fun (r : Pipeline.snippet_result) -> float_of_int (Result_tree.size r.Pipeline.result))
          out
      in
      let covered =
        List.map
          (fun (r : Pipeline.snippet_result) ->
            float_of_int (Selector.covered_count r.Pipeline.selection))
          out
      in
      Table.add_row t
        [
          Engine.string_of_semantics semantics;
          string_of_int (List.length out);
          Printf.sprintf "%.0f" (mean sizes);
          Printf.sprintf "%.1f" (mean covered);
          ns_to_string (lookup_ns results (Printf.sprintf "e9_engine:%d" i));
        ])
    Engine.all_semantics;
  Table.print ~title:"E9 (Fig. G) — snippet generation on top of four search engines" t

(* ================================================================== *)
(* E10 (Table 3) — dominance score vs raw frequency ranking            *)

(* Ground truth: a feature "strongly leads" its type when its dominance
   score is at least 1.5 (share 1.5x the type average) and the type has at
   least two values. The paper's argument is that raw frequency misses such
   leaders in low-occurrence types (Houston vs children, §2.3). *)
let e10 () =
  let k = 5 in
  let ds_recall = ref [] and freq_recall = ref [] in
  let type_div_ds = ref [] and type_div_fr = ref [] in
  List.iter
    (fun (_, db) ->
      let queries = workload_for db ~n:(if quick then 4 else 30) ~seed:41 in
      List.iter
        (fun qs ->
          List.iter
            (fun (r : Pipeline.snippet_result) ->
              if Result_tree.element_size r.Pipeline.result >= 20 then begin
              let analysis = Feature.analyze (Pipeline.kinds db) r.Pipeline.result in
              let all = Feature.all analysis in
              let truth =
                List.filter
                  (fun ((_ : Feature.t), (s : Feature.stats)) ->
                    s.Feature.domain_size >= 2 && s.Feature.score >= 1.5)
                  all
                |> List.map fst
              in
              if truth <> [] then begin
                let top_by f =
                  List.sort (fun a b -> Float.compare (f b) (f a)) all
                  |> List.filteri (fun i _ -> i < k)
                  |> List.map fst
                in
                let top_ds = top_by (fun ((_ : Feature.t), (s : Feature.stats)) -> s.Feature.score) in
                let top_freq =
                  top_by (fun ((_ : Feature.t), (s : Feature.stats)) ->
                      float_of_int s.Feature.occurrences)
                in
                let recall top =
                  float_of_int (List.length (List.filter (fun f -> List.mem f top) truth))
                  /. float_of_int (min k (List.length truth))
                in
                let diversity top =
                  List.map (fun (f : Feature.t) -> f.Feature.entity, f.Feature.attribute) top
                  |> List.sort_uniq (fun (ea, aa) (eb, ab) ->
                         let c = String.compare ea eb in
                         if c <> 0 then c else String.compare aa ab)
                  |> List.length |> float_of_int
                in
                ds_recall := recall top_ds :: !ds_recall;
                freq_recall := recall top_freq :: !freq_recall;
                type_div_ds := diversity top_ds :: !type_div_ds;
                type_div_fr := diversity top_freq :: !type_div_fr
              end
              end)
            (Pipeline.run ~bound:8 ~limit:2 db qs))
        queries)
    (Lazy.force datasets);
  let t = Table.create [ "ranking"; "recall@5 of type leaders"; "feature types in top-5" ] in
  Table.add_row t
    [
      "dominance score (eXtract)";
      pct (mean !ds_recall);
      Printf.sprintf "%.1f" (mean !type_div_ds);
    ];
  Table.add_row t
    [ "raw frequency"; pct (mean !freq_recall); Printf.sprintf "%.1f" (mean !type_div_fr) ];
  Table.print
    ~title:
      (Printf.sprintf "E10 (Table 3) — feature ranking quality (%d results with leaders)"
         (List.length !ds_recall))
    t

let e10_kernel =
  Test.make ~name:"e10_rankings"
    (Staged.stage (fun () ->
         let _, db = hd_exn (Lazy.force datasets) in
         match Pipeline.search ~limit:1 db "apparel retailer" with
         | [ r ] -> ignore (Feature.dominant (Feature.analyze (Pipeline.kinds db) r))
         | _ -> ()))


(* ================================================================== *)
(* E11 (Table 4) — goal ablation: what each IList goal contributes     *)

(* Snippets built under ablated configurations, measured against the full
   configuration's IList (the reference information-need). *)
let e11_configs =
  [
    "full (paper)", Extract_snippet.Config.default;
    "no entity names",
    { Extract_snippet.Config.default with Extract_snippet.Config.include_entity_names = false };
    "no result key",
    { Extract_snippet.Config.default with Extract_snippet.Config.include_result_key = false };
    "no features",
    { Extract_snippet.Config.default with Extract_snippet.Config.include_features = false };
    "keywords only", Extract_snippet.Config.keywords_only;
  ]

let e11 () =
  let per_config = List.map (fun (name, _) -> name, fresh_quality ()) e11_configs in
  List.iter
    (fun (_, db) ->
      let queries = workload_for db ~n:(if quick then 4 else 10) ~seed:5 in
      List.iter
        (fun qs ->
          let query = Query.of_string qs in
          List.iter
            (fun result ->
              if Result_tree.element_size result - 1 > 2 * e8_bound then begin
                let reference = Pipeline.ilist_of db result query in
                List.iter2
                  (fun (_, config) (_, q) ->
                    let out = Pipeline.snippet_of ~config ~bound:e8_bound db result query in
                    accumulate_quality q
                      ~tokens:(tree_snippet_tokens db out.Pipeline.selection.Selector.snippet)
                      ~ilist:reference)
                  e11_configs per_config
              end)
            (Pipeline.search ~limit:3 db qs))
        queries)
    (Lazy.force datasets);
  let t =
    Table.create
      [ "configuration"; "keywords"; "entity names"; "result key"; "top-3 features";
        "all IList items"; "rank-weighted" ]
  in
  List.iter (fun (name, q) -> Table.add_row t (quality_row name q)) per_config;
  Table.print
    ~title:
      (Printf.sprintf
         "E11 (Table 4) — goal ablation vs the full IList targets (bound %d; %d results)"
         e8_bound
         (snd (hd_exn per_config)).n)
    t

let e11_kernel =
  Test.make ~name:"e11_ablation"
    (Staged.stage (fun () ->
         let _, db = hd_exn (Lazy.force datasets) in
         Pipeline.run ~config:Extract_snippet.Config.keywords_only ~bound:e8_bound ~limit:1 db
           "apparel retailer"))

(* ================================================================== *)
(* E12 (Table 5) — feature-ordering ablation                           *)

(* For each ordering, what do the features that actually reach the snippet
   look like: how many fit, how query-related (affinity), how
   distinguishing (cross-result distinctiveness)? *)
let e12_bound = 12

(* Purpose-built queries over the retail data: the retailer's name token
   plus the rarest city among its stores. The result is the full retailer
   subtree (large), and only a minority of its stores are "hot", so
   affinity and distinctiveness genuinely vary across orderings. *)
let e12_queries db ~n =
  let doc = Pipeline.document db in
  let guide = Pipeline.dataguide db in
  match Dataguide.find_path guide [ "retailers"; "retailer" ] with
  | None -> []
  | Some retailer_path ->
    Dataguide.instances guide retailer_path
    |> List.filter_map (fun retailer ->
           let child_value tag node =
             Document.children doc node
             |> List.find_map (fun c ->
                    if Document.is_element doc c && Document.tag_name doc c = tag then
                      Some (String.trim (Document.immediate_text doc c))
                    else None)
           in
           match child_value "name" retailer with
           | None -> None
           | Some name -> begin
             let name_token =
               match Extract_store.Tokenizer.tokens name with
               | t :: _ -> t
               | [] -> ""
             in
             (* city histogram over this retailer's stores *)
             let cities = Hashtbl.create 8 in
             Document.iter_children doc retailer (fun store ->
                 if Document.is_element doc store && Document.tag_name doc store = "store"
                 then
                   match child_value "city" store with
                   | Some city ->
                     Hashtbl.replace cities city
                       (1 + Option.value ~default:0 (Hashtbl.find_opt cities city))
                   | None -> ());
             let rarest =
               Hashtbl.fold
                 (fun city count best ->
                   match best with
                   | Some (_, c) when c <= count -> best
                   | _ -> Some (city, count))
                 cities None
             in
             ignore name_token;
             (* "<city> apparel": every retailer with a store in that city
                yields one large result, so several results compete and
                cross-result distinctiveness varies too *)
             match rarest with
             | Some (city, _) -> Some (Printf.sprintf "%s apparel" city)
             | None -> None
           end)
    |> List.sort_uniq String.compare
    |> List.filteri (fun i _ -> i < n)

let e12 () =
  let orderings =
    [
      "dominance (paper)", `Config Extract_snippet.Config.By_dominance;
      "raw frequency", `Config Extract_snippet.Config.By_frequency;
      "query-biased", `Config Extract_snippet.Config.Query_biased;
      "differentiated", `Differentiated;
    ]
  in
  let t =
    Table.create [ "ordering"; "features in snippet"; "mean affinity"; "mean distinctiveness" ]
  in
  List.iter
    (fun (name, mode) ->
      let counts = ref [] and affinities = ref [] and distinct = ref [] in
      List.iter
        (fun (_, db) ->
          let queries = e12_queries db ~n:(if quick then 3 else 8) in
          List.iter
            (fun qs ->
              let query = Query.of_string qs in
              let snippet_results =
                match mode with
                | `Config order ->
                  let config =
                    { Extract_snippet.Config.default with Extract_snippet.Config.feature_order = order }
                  in
                  Pipeline.run ~config ~bound:e12_bound ~limit:2 db qs
                | `Differentiated ->
                  Pipeline.run_differentiated ~bound:e12_bound ~limit:2 db qs
              in
              let all_results = Pipeline.search db qs in
              let analyses = List.map (Feature.analyze (Pipeline.kinds db)) all_results in
              let differ = Extract_snippet.Differentiator.make analyses in
              List.iter
                (fun (r : Pipeline.snippet_result) ->
                  if Result_tree.element_size r.Pipeline.result - 1 > 2 * e12_bound then begin
                    let analysis = Feature.analyze (Pipeline.kinds db) r.Pipeline.result in
                    let bias =
                      Extract_snippet.Query_bias.make (Pipeline.kinds db) (Pipeline.index db)
                        r.Pipeline.result query
                    in
                    let covered_features =
                      List.filter_map
                        (fun (c : Selector.covered) ->
                          match c.Selector.entry.Ilist.item with
                          | Ilist.Dominant_feature (f, _) -> Some f
                          | _ -> None)
                        r.Pipeline.selection.Selector.covered
                    in
                    counts := float_of_int (List.length covered_features) :: !counts;
                    List.iter
                      (fun f ->
                        affinities := Extract_snippet.Query_bias.affinity bias analysis f :: !affinities;
                        distinct := Extract_snippet.Differentiator.distinctiveness differ f :: !distinct)
                      covered_features
                  end)
                snippet_results)
            queries)
        [ hd_exn (Lazy.force datasets) ];
      Table.add_row t
        [
          name;
          Printf.sprintf "%.2f" (mean !counts);
          Printf.sprintf "%.2f" (mean !affinities);
          Printf.sprintf "%.2f" (mean !distinct);
        ])
    orderings;
  Table.print
    ~title:
      (Printf.sprintf "E12 (Table 5) — feature-ordering ablation (bound %d, city+product queries)" e12_bound)
    t

let e12_kernel =
  Test.make ~name:"e12_orderings"
    (Staged.stage (fun () ->
         let _, db = hd_exn (Lazy.force datasets) in
         Pipeline.run_differentiated ~bound:e8_bound ~limit:1 db "apparel retailer"))

(* ================================================================== *)
(* E13 (Fig. H) — binary arena persistence vs XML parsing              *)

let e13_sizes = if quick then [ 1000 ] else [ 1000; 4000; 16000 ]

let e13 () =
  let t =
    Table.create
      [ "target clothes"; "xml bytes"; "arena bytes"; "parse XML"; "load arena"; "speedup" ]
  in
  let repeat = if quick then 3 else 5 in
  List.iter
    (fun n ->
      let doc = Document.of_document (Datagen.Retail.scaled n) in
      let xml = Extract_xml.Printer.to_string (Document.to_xml doc 0) in
      let arena = Extract_store.Persist.encode doc in
      let parse_ns = time_median ~repeat (fun () -> Document.load_string xml) in
      let load_ns = time_median ~repeat (fun () -> Extract_store.Persist.decode arena) in
      Table.add_row t
        [
          string_of_int n;
          string_of_int (String.length xml);
          string_of_int (String.length arena);
          ns_to_string parse_ns;
          ns_to_string load_ns;
          Printf.sprintf "%.1fx" (parse_ns /. load_ns);
        ])
    e13_sizes;
  Table.print ~title:"E13 (Fig. H) — binary arena load vs XML parse" t

let e13_kernel =
  Test.make ~name:"e13_arena_decode"
    (Staged.stage
       (let arena =
          lazy (Extract_store.Persist.encode (Document.of_document (Datagen.Retail.scaled 1000)))
        in
        fun () -> Extract_store.Persist.decode (Lazy.force arena)))


(* ================================================================== *)
(* E14 (Table 6) — simulated user study                                *)

(* The demo's claim (§3/§4): "the user can easily judge whether a query
   result is of his/her interest by looking at the concise yet informative
   snippets". Reconstruction: for queries with several results, a simulated
   user wants one specific result and half-remembers it — their information
   need is the target's key value plus two of its attribute values. Shown
   only the snippets of all results (as token sets), the user picks the one
   overlapping their need most (ties -> earlier result, a pessimistic tie
   break for every system alike). Accuracy@1 per snippet system. *)

let e14_need rng db target =
  let doc = Pipeline.document db in
  let keys = Pipeline.keys db in
  let kinds = Pipeline.kinds db in
  let root = Result_tree.root target in
  let key_tokens =
    match Key_miner.key_of_instance keys root with
    | Some (_, v) -> Extract_store.Tokenizer.tokens v
    | None -> []
  in
  let attribute_values =
    Result_tree.members target
    |> Array.to_list
    |> List.filter (fun n ->
           Document.is_element doc n && Extract_store.Node_kind.is_attribute kinds n)
    |> List.map (fun n -> Extract_store.Node_kind.attribute_value kinds n)
    |> List.filter (fun v -> v <> "")
  in
  let sampled =
    match attribute_values with
    | [] -> []
    | vs ->
      let arr = Array.of_list vs in
      Extract_util.Prng.sample rng arr 2
  in
  key_tokens @ List.concat_map Extract_store.Tokenizer.tokens sampled

let e14_pick need snippets_tokens =
  (* index of the snippet with the largest overlap; earlier wins ties *)
  let overlap tokens = List.length (List.filter (fun t -> List.mem t tokens) need) in
  let best = ref 0 and best_score = ref (-1) in
  List.iteri
    (fun i tokens ->
      let s = overlap tokens in
      if s > !best_score then begin
        best := i;
        best_score := s
      end)
    snippets_tokens;
  !best

let e14 () =
  let rng = Extract_util.Prng.create 2026 in
  let trials = ref 0 in
  let correct_extract = ref 0 and correct_text = ref 0 and correct_naive = ref 0 in
  List.iter
    (fun (_, db) ->
      let queries =
        workload_for db ~n:(if quick then 8 else 40) ~seed:77 @ e12_queries db ~n:6
      in
      List.iter
        (fun qs ->
          let query = Query.of_string qs in
          let results = Pipeline.run ~bound:e8_bound ~limit:6 db qs in
          (* the task is only meaningful when the snippets must select:
             every candidate result has to exceed the budget *)
          let all_need_cutting =
            List.for_all
              (fun (r : Pipeline.snippet_result) ->
                Result_tree.element_size r.Pipeline.result - 1 > 2 * e8_bound)
              results
          in
          if List.length results >= 3 && all_need_cutting then begin
            let target_index = Extract_util.Prng.int rng (List.length results) in
            let target = (nth_exn results target_index).Pipeline.result in
            let need = e14_need rng db target in
            if need <> [] then begin
              incr trials;
              let extract_tokens =
                List.map
                  (fun (r : Pipeline.snippet_result) ->
                    tree_snippet_tokens db r.Pipeline.selection.Selector.snippet)
                  results
              in
              let text_tokens =
                List.map
                  (fun (r : Pipeline.snippet_result) ->
                    (Text_baseline.generate
                       ~window_tokens:(Text_baseline.window_for_bound e8_bound)
                       r.Pipeline.result query)
                      .Text_baseline.window)
                  results
              in
              let naive_tokens =
                List.map
                  (fun (r : Pipeline.snippet_result) ->
                    tree_snippet_tokens db
                      (Naive_baseline.generate ~bound:e8_bound r.Pipeline.result))
                  results
              in
              if e14_pick need extract_tokens = target_index then incr correct_extract;
              if e14_pick need text_tokens = target_index then incr correct_text;
              if e14_pick need naive_tokens = target_index then incr correct_naive
            end
          end)
        queries)
    (Lazy.force datasets);
  let t = Table.create [ "system"; "accuracy@1"; "trials" ] in
  let row name correct =
    [ name; pct (float_of_int correct /. float_of_int (max 1 !trials)); string_of_int !trials ]
  in
  Table.add_row t (row "eXtract" !correct_extract);
  Table.add_row t (row "text window (Google Desktop)" !correct_text);
  Table.add_row t (row "naive truncation" !correct_naive);
  Table.print
    ~title:
      (Printf.sprintf
         "E14 (Table 6) — simulated user study: pick the intended result from snippets (bound %d)"
         e8_bound)
    t

let e14_kernel =
  Test.make ~name:"e14_user_pick"
    (Staged.stage (fun () ->
         let _, db = hd_exn (Lazy.force datasets) in
         let results = Pipeline.run ~bound:e8_bound ~limit:4 db "apparel retailer" in
         let tokens =
           List.map
             (fun (r : Pipeline.snippet_result) ->
               tree_snippet_tokens db r.Pipeline.selection.Selector.snippet)
             results
         in
         e14_pick [ "brook"; "houston" ] tokens))


(* ================================================================== *)
(* E15 (Fig. I) — streaming vs tree-building arena construction        *)

let e15_sizes = if quick then [ 1000 ] else [ 1000; 4000; 16000 ]

let e15 () =
  let t =
    Table.create
      [ "target clothes"; "xml bytes"; "tree build"; "streaming build"; "speedup";
        "tree minor words"; "stream minor words" ]
  in
  let repeat = if quick then 3 else 5 in
  List.iter
    (fun n ->
      let xml =
        Extract_xml.Printer.document_to_string (Datagen.Retail.scaled n)
      in
      let tree_ns = time_median ~repeat (fun () -> Document.load_string xml) in
      let stream_ns = time_median ~repeat (fun () -> Document.of_string_streaming xml) in
      let alloc f =
        let before = Gc.minor_words () in
        ignore (f ());
        Gc.minor_words () -. before
      in
      let tree_alloc = alloc (fun () -> Document.load_string xml) in
      let stream_alloc = alloc (fun () -> Document.of_string_streaming xml) in
      Table.add_row t
        [
          string_of_int n;
          string_of_int (String.length xml);
          ns_to_string tree_ns;
          ns_to_string stream_ns;
          Printf.sprintf "%.2fx" (tree_ns /. stream_ns);
          Printf.sprintf "%.0fk" (tree_alloc /. 1000.0);
          Printf.sprintf "%.0fk" (stream_alloc /. 1000.0);
        ])
    e15_sizes;
  Table.print
    ~title:"E15 (Fig. I) — arena construction: tree parser vs single SAX pass"
    t

let e15_kernel =
  Test.make ~name:"e15_streaming_build"
    (Staged.stage
       (let xml =
          lazy (Extract_xml.Printer.document_to_string (Datagen.Retail.scaled 1000))
        in
        fun () -> Document.of_string_streaming (Lazy.force xml)))


(* ================================================================== *)
(* E16 (Fig. J) — SLCA: indexed merge vs exhaustive subtree counting    *)

(* The point of the Xu–Papakonstantinou merge: cost follows the posting
   lists, not the document. The exhaustive reference scans every node per
   keyword. Selective queries on large documents separate the two. *)
let e16_sizes = if quick then [ 2000 ] else [ 2000; 8000; 32000 ]

let e16 () =
  let t =
    Table.create
      [ "target clothes"; "doc nodes"; "postings"; "merge"; "exhaustive"; "speedup" ]
  in
  let repeat = if quick then 3 else 5 in
  List.iter
    (fun n ->
      let doc = Document.of_document (Datagen.Retail.scaled n) in
      let idx = Inverted_index.build doc in
      (* a selective conjunctive query: one store name token + its city *)
      let lists =
        [ Inverted_index.lookup idx "galleria"; Inverted_index.lookup idx "apparel" ]
      in
      let postings = List.fold_left (fun acc l -> acc + Array.length l) 0 lists in
      let merge_ns =
        time_median ~repeat (fun () -> Extract_search.Slca.compute doc lists)
      in
      let scan_ns =
        time_median ~repeat (fun () -> Extract_search.Lca.slca_reference doc lists)
      in
      Table.add_row t
        [
          string_of_int n;
          string_of_int (Document.node_count doc);
          string_of_int postings;
          ns_to_string merge_ns;
          ns_to_string scan_ns;
          Printf.sprintf "%.1fx" (scan_ns /. merge_ns);
        ])
    e16_sizes;
  Table.print
    ~title:"E16 (Fig. J) — SLCA computation: indexed-lookup merge vs exhaustive scan"
    t

let e16_kernel =
  Test.make ~name:"e16_slca_merge"
    (Staged.stage
       (let setup =
          lazy
            (let doc = Document.of_document (Datagen.Retail.scaled 2000) in
             let idx = Inverted_index.build doc in
             doc, [ Inverted_index.lookup idx "galleria"; Inverted_index.lookup idx "apparel" ])
        in
        fun () ->
          let doc, lists = Lazy.force setup in
          Extract_search.Slca.compute doc lists))


(* ================================================================== *)
(* E17 (Fig. K) — demo-server page throughput, cache on vs off         *)

let e17 () =
  let corpus =
    Extract_snippet.Corpus.of_list
      [ "retail", snd (hd_exn (Lazy.force datasets)) ]
  in
  (* a small rotating workload: 8 distinct targets, requested repeatedly *)
  let targets =
    List.init 8 (fun i ->
        Printf.sprintf "/search?data=retail&q=apparel+retailer&bound=%d" (4 + i))
  in
  let requests = if quick then 64 else 400 in
  let run_with ~cache_size =
    let server = Extract_server.Demo_server.create ~cache_size corpus in
    let t0 = Unix.gettimeofday () in
    for i = 0 to requests - 1 do
      let target = nth_exn targets (i mod List.length targets) in
      let r = Extract_server.Demo_server.handle server target in
      assert (r.Extract_server.Demo_server.status = 200)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let hits, misses = Extract_server.Demo_server.cache_stats server in
    float_of_int requests /. dt, hits, misses
  in
  (* cache_size 1 with 8 rotating targets never hits: the "off" case *)
  let cold_rps, cold_hits, _ = run_with ~cache_size:1 in
  let warm_rps, warm_hits, warm_misses = run_with ~cache_size:64 in
  let t = Table.create [ "configuration"; "requests/s"; "cache hits"; "cache misses" ] in
  Table.add_row t
    [ "cache disabled (capacity 1)"; Printf.sprintf "%.0f" cold_rps; string_of_int cold_hits; string_of_int requests ];
  Table.add_row t
    [ "page cache (capacity 64)"; Printf.sprintf "%.0f" warm_rps; string_of_int warm_hits; string_of_int warm_misses ];
  Table.print
    ~title:(Printf.sprintf "E17 (Fig. K) — demo-server throughput over %d requests" requests)
    t

let e17_kernel =
  Test.make ~name:"e17_server_handle"
    (Staged.stage
       (let server =
          lazy
            (Extract_server.Demo_server.create
               (Extract_snippet.Corpus.of_list
                  [ "retail", snd (hd_exn (Lazy.force datasets)) ]))
        in
        fun () ->
          Extract_server.Demo_server.handle (Lazy.force server)
            "/search?data=retail&q=apparel+retailer&bound=6"))


(* ================================================================== *)
(* E18 (Fig. L) — index persistence: rebuild vs compressed load        *)

let e18_sizes = if quick then [ 2000 ] else [ 2000; 8000; 32000 ]

let e18 () =
  let t =
    Table.create
      [ "target clothes"; "postings"; "index bytes"; "bytes/posting"; "rebuild"; "load";
        "speedup" ]
  in
  let repeat = if quick then 3 else 5 in
  List.iter
    (fun n ->
      let doc = Document.of_document (Datagen.Retail.scaled n) in
      let index = Inverted_index.build doc in
      let encoded = Extract_store.Persist.encode_index index in
      let rebuild_ns = time_median ~repeat (fun () -> Inverted_index.build doc) in
      let load_ns =
        time_median ~repeat (fun () -> Extract_store.Persist.decode_index ~doc encoded)
      in
      let postings = Inverted_index.postings_size index in
      Table.add_row t
        [
          string_of_int n;
          string_of_int postings;
          string_of_int (String.length encoded);
          Printf.sprintf "%.2f" (float_of_int (String.length encoded) /. float_of_int postings);
          ns_to_string rebuild_ns;
          ns_to_string load_ns;
          Printf.sprintf "%.1fx" (rebuild_ns /. load_ns);
        ])
    e18_sizes;
  Table.print
    ~title:"E18 (Fig. L) — inverted index: rebuild from arena vs gap-encoded load"
    t

let e18_kernel =
  Test.make ~name:"e18_index_decode"
    (Staged.stage
       (let setup =
          lazy
            (let doc = Document.of_document (Datagen.Retail.scaled 2000) in
             doc, Extract_store.Persist.encode_index (Inverted_index.build doc))
        in
        fun () ->
          let doc, encoded = Lazy.force setup in
          Extract_store.Persist.decode_index ~doc encoded))


(* ================================================================== *)
(* E19 (Fig. M) — multicore scaling of per-result snippet generation    *)

let e19 () =
  (* many large results: every store in a big retail dataset *)
  let cfg =
    {
      Datagen.Retail.default with
      Datagen.Retail.retailers = 6;
      stores_per_retailer = 8;
      clothes_per_store = 60;
    }
  in
  let db = Pipeline.build (Document.of_document (Datagen.Retail.generate cfg)) in
  let query = "store apparel" in
  let n_results = List.length (Pipeline.search db query) in
  let repeat = if quick then 3 else 5 in
  let base = time_median ~repeat (fun () -> Pipeline.run ~bound:10 db query) in
  let t =
    Table.create [ "domains"; "wall time"; "speedup"; "results" ]
  in
  Table.add_row t [ "sequential"; ns_to_string base; "1.00x"; string_of_int n_results ];
  List.iter
    (fun domains ->
      let ns =
        time_median ~repeat (fun () -> Pipeline.run_parallel ~bound:10 ~domains db query)
      in
      Table.add_row t
        [
          string_of_int domains;
          ns_to_string ns;
          Printf.sprintf "%.2fx" (base /. ns);
          string_of_int n_results;
        ])
    (if quick then [ 2; 4 ] else [ 1; 2; 4; 8 ]);
  Table.print
    ~title:
      (Printf.sprintf
         "E19 (Fig. M) — snippet generation across OCaml domains (host has %d core(s); \
          speedup requires a multicore host — outputs are checked equal in the tests)"
         (Domain.recommended_domain_count ()))
    t

let e19_kernel =
  Test.make ~name:"e19_parallel_snippets"
    (Staged.stage (fun () ->
         let _, db = hd_exn (Lazy.force datasets) in
         Pipeline.run_parallel ~bound:10 ~domains:2 ~limit:8 db "apparel retailer"))

(* ================================================================== *)
(* E20 (hotpath) — query hot-path: interval vs linear match restriction,
   limit pushdown, and the query-level snippet cache                    *)

type hotpath_measurements = {
  hp_clothes : int;
  hp_nodes : int;
  hp_query : string;
  hp_results : int;
  hp_postings : int;
  hp_linear_ns : float;
  hp_interval_ns : float;
  hp_limit : int;
  hp_full_ns : float;
  hp_limited_ns : float;
  hp_cold_ns : float;
  hp_warm_ns : float;
  hp_hits : int;
  hp_misses : int;
  hp_plain_ns : float;
  hp_explain_ns : float;
  hp_e2e_samples : int;
  hp_e2e_mean_ns : float;
  hp_e2e_p50_ns : float;
  hp_e2e_p95_ns : float;
  hp_e2e_p99_ns : float;
}

let hotpath_measure () =
  let clothes = if quick then 2000 else 8000 in
  let doc = Document.of_document (Datagen.Retail.scaled clothes) in
  let db = Pipeline.build doc in
  let query_string = "store apparel" in
  let query = Query.of_string query_string in
  let index = Pipeline.index db in
  let lists = List.map (Inverted_index.lookup index) (Query.keywords query) in
  let postings = List.fold_left (fun acc l -> acc + Array.length l) 0 lists in
  let repeat = if quick then 3 else 7 in
  (* match restriction, old vs new: the pre-overhaul implementation
     filtered the entire posting list per result by membership; the
     current one binary-searches the result's subtree interval *)
  let results = Pipeline.search ~limit:50 db query_string in
  let linear_restrict r arr = Array.to_list arr |> List.filter (Result_tree.mem r) in
  let sweep restrict () =
    List.iter (fun r -> List.iter (fun arr -> ignore (restrict r arr)) lists) results
  in
  let linear_ns = time_median ~repeat (sweep linear_restrict) in
  let interval_ns = time_median ~repeat (sweep Result_tree.restrict_matches) in
  (* limit pushdown: top-10 without materializing every result subtree;
     warm both paths once so first-touch effects don't skew the medians *)
  let limit = 10 in
  let kinds = Pipeline.kinds db in
  ignore (Engine.run index kinds query);
  ignore (Engine.run ~limit index kinds query);
  let full_ns = time_median ~repeat (fun () -> Engine.run index kinds query) in
  let limited_ns = time_median ~repeat (fun () -> Engine.run ~limit index kinds query) in
  (* query-level snippet cache, cold vs warm *)
  let cache = Extract_snippet.Snippet_cache.create ~capacity:16 () in
  let run_cached () =
    Extract_snippet.Snippet_cache.run ~bound:10 ~limit cache db query_string
  in
  let _, cold_ns = time_once run_cached in
  (* a hit is far below clock resolution; time a batch and divide *)
  let warm_iters = 1000 in
  let warm_ns =
    let _, total =
      time_once (fun () ->
          for _ = 1 to warm_iters do
            ignore (run_cached ())
          done)
    in
    total /. float_of_int warm_iters
  in
  let hits, misses = Extract_snippet.Snippet_cache.stats cache in
  (* explain overhead: the same uncached run with ambient capture on and
     the bundle assembled, vs the plain pipeline — the price of --explain *)
  ignore (Pipeline.run ~bound:10 ~limit db query_string);
  ignore (Extract_snippet.Explain.run ~bound:10 ~limit db query_string);
  let plain_ns =
    time_median ~repeat (fun () -> Pipeline.run ~bound:10 ~limit db query_string)
  in
  let explain_ns =
    time_median ~repeat (fun () ->
        Extract_snippet.Explain.run ~bound:10 ~limit db query_string)
  in
  (* end-to-end tail latency: repeated uncached full runs recorded into an
     obs histogram, so the JSON reports p50/p95/p99, not just a mean *)
  let e2e_hist =
    Registry.histogram ~help:"Bench end-to-end run latency in seconds"
      ~labels:[ "experiment", "hotpath" ] "bench_e2e_seconds"
  in
  let e2e_samples = if quick then 40 else 150 in
  ignore (Pipeline.run ~bound:10 ~limit db query_string);
  for _ = 1 to e2e_samples do
    let _, ns = time_once (fun () -> Pipeline.run ~bound:10 ~limit db query_string) in
    Registry.observe e2e_hist (ns /. 1e9)
  done;
  let e2e_count = Registry.histogram_count e2e_hist in
  let e2e_mean_ns =
    if e2e_count = 0 then 0.0
    else Registry.histogram_sum e2e_hist /. float_of_int e2e_count *. 1e9
  in
  let pct q = Registry.percentile e2e_hist q *. 1e9 in
  {
    hp_clothes = clothes;
    hp_nodes = Document.node_count doc;
    hp_query = query_string;
    hp_results = List.length results;
    hp_postings = postings;
    hp_linear_ns = linear_ns;
    hp_interval_ns = interval_ns;
    hp_limit = limit;
    hp_full_ns = full_ns;
    hp_limited_ns = limited_ns;
    hp_cold_ns = cold_ns;
    hp_warm_ns = warm_ns;
    hp_hits = hits;
    hp_misses = misses;
    hp_plain_ns = plain_ns;
    hp_explain_ns = explain_ns;
    hp_e2e_samples = e2e_count;
    hp_e2e_mean_ns = e2e_mean_ns;
    hp_e2e_p50_ns = pct 0.5;
    hp_e2e_p95_ns = pct 0.95;
    hp_e2e_p99_ns = pct 0.99;
  }

let hotpath_json m =
  let b = Buffer.create 1024 in
  let speedup num den = if den > 0.0 then num /. den else 0.0 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"hotpath\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"mode\": %S,\n" (if quick then "quick" else "full"));
  Buffer.add_string b
    (Printf.sprintf
       "  \"dataset\": { \"name\": \"retail\", \"target_clothes\": %d, \"nodes\": %d },\n"
       m.hp_clothes m.hp_nodes);
  Buffer.add_string b (Printf.sprintf "  \"query\": %S,\n" m.hp_query);
  Buffer.add_string b
    (Printf.sprintf
       "  \"restriction\": { \"results\": %d, \"postings\": %d, \"linear_ns\": %.0f, \
        \"interval_ns\": %.0f, \"speedup\": %.2f },\n"
       m.hp_results m.hp_postings m.hp_linear_ns m.hp_interval_ns
       (speedup m.hp_linear_ns m.hp_interval_ns));
  Buffer.add_string b
    (Printf.sprintf
       "  \"limit_pushdown\": { \"limit\": %d, \"full_ns\": %.0f, \"limited_ns\": %.0f, \
        \"speedup\": %.2f },\n"
       m.hp_limit m.hp_full_ns m.hp_limited_ns (speedup m.hp_full_ns m.hp_limited_ns));
  Buffer.add_string b
    (Printf.sprintf
       "  \"cache\": { \"cold_ns\": %.0f, \"warm_ns\": %.0f, \"speedup\": %.2f, \
        \"hits\": %d, \"misses\": %d },\n"
       m.hp_cold_ns m.hp_warm_ns (speedup m.hp_cold_ns m.hp_warm_ns) m.hp_hits
       m.hp_misses);
  Buffer.add_string b
    (Printf.sprintf
       "  \"explain\": { \"plain_ns\": %.0f, \"explain_ns\": %.0f, \"overhead\": %.2f },\n"
       m.hp_plain_ns m.hp_explain_ns (speedup m.hp_explain_ns m.hp_plain_ns));
  Buffer.add_string b
    (Printf.sprintf
       "  \"latency\": { \"samples\": %d, \"e2e_mean_ns\": %.0f, \"e2e_p50_ns\": %.0f, \
        \"e2e_p95_ns\": %.0f, \"e2e_p99_ns\": %.0f }\n"
       m.hp_e2e_samples m.hp_e2e_mean_ns m.hp_e2e_p50_ns m.hp_e2e_p95_ns m.hp_e2e_p99_ns);
  Buffer.add_string b "}\n";
  Buffer.contents b

let e20 () =
  let m = hotpath_measure () in
  let t = Table.create [ "hot-path stage"; "before"; "after"; "speedup" ] in
  Table.add_row t
    [
      Printf.sprintf "match restriction (%d results x %d postings)" m.hp_results
        m.hp_postings;
      ns_to_string m.hp_linear_ns;
      ns_to_string m.hp_interval_ns;
      Printf.sprintf "%.1fx" (m.hp_linear_ns /. m.hp_interval_ns);
    ];
  Table.add_row t
    [
      Printf.sprintf "search, limit %d pushdown" m.hp_limit;
      ns_to_string m.hp_full_ns;
      ns_to_string m.hp_limited_ns;
      Printf.sprintf "%.1fx" (m.hp_full_ns /. m.hp_limited_ns);
    ];
  Table.add_row t
    [
      "query cache (cold vs warm)";
      ns_to_string m.hp_cold_ns;
      ns_to_string m.hp_warm_ns;
      Printf.sprintf "%.0fx" (m.hp_cold_ns /. m.hp_warm_ns);
    ];
  Table.add_row t
    [
      "explain bundle (plain vs --explain)";
      ns_to_string m.hp_plain_ns;
      ns_to_string m.hp_explain_ns;
      Printf.sprintf "%.2fx" (m.hp_explain_ns /. m.hp_plain_ns);
    ];
  Table.print
    ~title:
      (Printf.sprintf "E20 — query hot-path overhaul (retail scaled %d, %d nodes)"
         m.hp_clothes m.hp_nodes)
    t;
  m

(* Pull one numeric value out of a floor file without a JSON parser:
   locate the quoted key, skip separators, take the longest number
   literal. *)
let parse_floor_key name contents =
  let key = Printf.sprintf "%S" name in
  let klen = String.length key in
  let n = String.length contents in
  let rec find i =
    if i + klen > n then None
    else if String.sub contents i klen = key then Some (i + klen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let i = ref start in
    while !i < n && (contents.[!i] = ':' || contents.[!i] = ' ') do
      incr i
    done;
    let j = ref !i in
    while
      !j < n
      && (match contents.[!j] with '0' .. '9' | '.' | 'e' | '+' | '-' -> true | _ -> false)
    do
      incr j
    done;
    if !j > !i then float_of_string_opt (String.sub contents !i (!j - !i)) else None

let floor_gate m =
  match floor_path with
  | None -> ()
  | Some path ->
    let contents =
      match In_channel.with_open_bin path In_channel.input_all with
      | c -> Some c
      | exception Sys_error msg ->
        Printf.eprintf "floor gate: cannot read %s: %s\n" path msg;
        None
    in
    (match Option.bind contents (parse_floor_key "e2e_mean_ns") with
    | None ->
      Printf.eprintf "floor gate: no \"e2e_mean_ns\" value in %s\n" path;
      exit 1
    | Some floor_mean ->
      let limit = 3.0 *. floor_mean in
      Printf.printf "floor gate: e2e mean %.0f ns, floor %.0f ns, limit (3x) %.0f ns\n"
        m.hp_e2e_mean_ns floor_mean limit;
      if m.hp_e2e_mean_ns > limit then begin
        print_endline "floor gate: FAILED — e2e mean regressed more than 3x over the floor";
        exit 1
      end
      else print_endline "floor gate: ok")

let hotpath_json_main () =
  print_endline "eXtract hotpath benchmark (E20)";
  let m = hotpath_measure () in
  let out = open_out "BENCH_hotpath.json" in
  output_string out (hotpath_json m);
  close_out out;
  print_endline "wrote BENCH_hotpath.json";
  floor_gate m

(* ================================================================== *)

let main () =
  print_endline "eXtract benchmark harness (see DESIGN.md section 6, EXPERIMENTS.md)";
  Printf.printf "mode: %s (quota %.2fs per kernel)\n\n"
    (if quick then "quick" else "full")
    quota_seconds;
  (* force all scenario setup before timing *)
  ignore (Lazy.force datasets);
  ignore (Lazy.force e2_scenarios);
  ignore (Lazy.force e3_setup);
  ignore (Lazy.force e4_scenarios);
  ignore (Lazy.force e5_setup);
  let grouped =
    Test.make_grouped ~name:"extract" ~fmt:"%s/%s"
      [
        e1_kernel; e2_kernel; e3_kernel; e4_kernel; e5_greedy_kernel; e5_optimal_kernel;
        e6_kernel; e7_kernel; e8_kernel; e9_kernel; e10_kernel; e11_kernel; e12_kernel;
        e13_kernel; e14_kernel; e15_kernel; e16_kernel; e17_kernel; e18_kernel; e19_kernel;
      ]
  in
  let results =
    bechamel_run grouped
    |> List.map (fun (name, ns) ->
           let prefix = "extract/" in
           let plain =
             if String.length name > String.length prefix
                && String.sub name 0 (String.length prefix) = prefix
             then String.sub name (String.length prefix) (String.length name - String.length prefix)
             else name
           in
           plain, ns)
  in
  e1 ();
  e2 results;
  e3 results;
  e4 results;
  e5 results;
  e6 ();
  e7 ();
  e8 ();
  e9 results;
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  e17 ();
  e18 ();
  e19 ();
  ignore (e20 ());
  print_endline "done."

(* ================================================================== *)
(* E22 — index scale-out (EXPERIMENTS.md): block-compressed postings
   vs the plain arrays, v1 bundle decode vs v2 snapshot mapping, and
   per-shard fan-out scaling. [index] mode runs only this experiment,
   writes BENCH_index.json and applies the two-ratio floor gate CI pins
   via bench/index_floor.json. *)

let index_mode = Array.exists (fun a -> a = "index") Sys.argv

module Shard_set = Extract_snippet.Shard_set

type index_metrics = {
  ix_clothes : int;
  ix_nodes : int;
  ix_tokens : int;
  ix_plain_bytes : int;
  ix_packed_bytes : int;
  ix_ratio : float;
  ix_pack_ns : float;
  ix_v1_file_bytes : int;
  ix_v2_file_bytes : int;
  ix_v1_load_ns : float;
  ix_v2_map_ns : float;
  ix_speedup : float;
  ix_shards : (int * float * float) list; (* shard count, sequential ns, parallel ns *)
}

let index_measure () =
  (* ten times the default corpus (8 x 10 x 12 = 960 clothes) *)
  let clothes = if quick then 2_400 else 9_600 in
  let doc = Document.of_document (Datagen.Retail.scaled ~seed:7 clothes) in
  let db = Pipeline.build doc in
  let idx = Pipeline.index db in
  let plain_bytes = Inverted_index.postings_bytes idx in
  let packed, pack_ns = time_once (fun () -> Inverted_index.pack idx) in
  let packed_bytes = Inverted_index.postings_bytes packed in
  let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name in
  let v1 = tmp "extract_bench_e22.bundle" in
  let v2 = tmp "extract_bench_e22.snap" in
  Pipeline.save v1 db;
  Pipeline.save_snapshot v2 db;
  let file_size path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  (* cold start = artifact -> queryable document + index; the analysis
     stages after that (classification, key mining) are identical on
     both paths, so they are excluded from the comparison *)
  let v1_file_bytes = file_size v1 in
  let v2_file_bytes = file_size v2 in
  (* medians: mapping is sub-millisecond, a single sample is all jitter *)
  let v1_load_ns =
    time_median ~repeat:5 (fun () -> Extract_store.Persist.load_bundle v1)
  in
  let v2_map_ns = time_median ~repeat:5 (fun () -> Extract_store.Snapshot.load v2) in
  let query = "store apparel" in
  let shard_scaling =
    List.map
      (fun k ->
        let t = Shard_set.split ~shards:k doc in
        let seq_ns =
          time_median ~repeat:3 (fun () -> Shard_set.run ~parallel:false ~limit:10 t query)
        in
        let par_ns =
          time_median ~repeat:3 (fun () -> Shard_set.run ~parallel:true ~limit:10 t query)
        in
        k, seq_ns, par_ns)
      [ 1; 2; 4 ]
  in
  Sys.remove v1;
  Sys.remove v2;
  {
    ix_clothes = clothes;
    ix_nodes = Document.node_count doc;
    ix_tokens = Inverted_index.token_count idx;
    ix_plain_bytes = plain_bytes;
    ix_packed_bytes = packed_bytes;
    ix_ratio = float_of_int plain_bytes /. float_of_int (max 1 packed_bytes);
    ix_pack_ns = pack_ns;
    ix_v1_file_bytes = v1_file_bytes;
    ix_v2_file_bytes = v2_file_bytes;
    ix_v1_load_ns = v1_load_ns;
    ix_v2_map_ns = v2_map_ns;
    ix_speedup = v1_load_ns /. Float.max 1.0 v2_map_ns;
    ix_shards = shard_scaling;
  }

let index_json m =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"index\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"mode\": %S,\n" (if quick then "quick" else "full"));
  Buffer.add_string b
    (Printf.sprintf
       "  \"dataset\": { \"name\": \"retail\", \"clothes\": %d, \"nodes\": %d, \"tokens\": %d },\n"
       m.ix_clothes m.ix_nodes m.ix_tokens);
  Buffer.add_string b
    (Printf.sprintf
       "  \"compression\": { \"plain_postings_bytes\": %d, \"packed_postings_bytes\": %d, \
        \"ratio\": %.2f, \"pack_ns\": %.0f },\n"
       m.ix_plain_bytes m.ix_packed_bytes m.ix_ratio m.ix_pack_ns);
  Buffer.add_string b
    (Printf.sprintf
       "  \"files\": { \"v1_bundle_bytes\": %d, \"v2_snapshot_bytes\": %d },\n"
       m.ix_v1_file_bytes m.ix_v2_file_bytes);
  Buffer.add_string b
    (Printf.sprintf
       "  \"coldstart\": { \"v1_load_ns\": %.0f, \"v2_map_ns\": %.0f, \"speedup\": %.1f },\n"
       m.ix_v1_load_ns m.ix_v2_map_ns m.ix_speedup);
  Buffer.add_string b "  \"shards\": [\n";
  List.iteri
    (fun i (k, seq_ns, par_ns) ->
      Buffer.add_string b
        (Printf.sprintf "    { \"shards\": %d, \"seq_ns\": %.0f, \"par_ns\": %.0f }%s\n" k
           seq_ns par_ns
           (if i = List.length m.ix_shards - 1 then "" else ",")))
    m.ix_shards;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

(* The index gate pins floors, not ceilings: the measured compression
   ratio and cold-start speedup must stay at or above the checked-in
   minima. *)
let index_floor_gate m =
  match floor_path with
  | None -> ()
  | Some path ->
    let contents =
      match In_channel.with_open_bin path In_channel.input_all with
      | c -> Some c
      | exception Sys_error msg ->
        Printf.eprintf "index floor gate: cannot read %s: %s\n" path msg;
        None
    in
    let want key =
      match Option.bind contents (parse_floor_key key) with
      | Some v -> v
      | None ->
        Printf.eprintf "index floor gate: no %S value in %s\n" key path;
        exit 1
    in
    let min_ratio = want "min_index_compression_ratio" in
    let min_speedup = want "min_coldstart_speedup" in
    Printf.printf
      "index floor gate: compression %.2fx (floor %.2fx), cold start %.1fx (floor %.1fx)\n"
      m.ix_ratio min_ratio m.ix_speedup min_speedup;
    if m.ix_ratio < min_ratio then begin
      print_endline
        "index floor gate: FAILED — packed postings no longer beat the compression floor";
      exit 1
    end;
    if m.ix_speedup < min_speedup then begin
      print_endline
        "index floor gate: FAILED — snapshot mapping no longer beats the cold-start floor";
      exit 1
    end;
    print_endline "index floor gate: ok"

let index_main () =
  print_endline "eXtract index benchmark (E22)";
  let m = index_measure () in
  let out = open_out "BENCH_index.json" in
  output_string out (index_json m);
  close_out out;
  print_endline "wrote BENCH_index.json";
  index_floor_gate m

let () =
  if index_mode then index_main ()
  else if json_mode then hotpath_json_main ()
  else main ()
