(* One global mutex guards the name table and every value mutation: the
   update sites are per-request / per-stage / per-cache-probe, orders of
   magnitude off the per-node hot loops, so contention is irrelevant and
   the simplicity is worth it. Metric handles returned to callers are the
   interned records themselves; updating one never touches the table. *)

(* guarded-by: lock *)
type counter = {
  c_name : string;
  c_labels : (string * string) list;
  c_help : string;
  mutable c_value : int;
}

(* guarded-by: lock *)
type gauge = {
  g_name : string;
  g_labels : (string * string) list;
  g_help : string;
  mutable g_value : float;
}

(* guarded-by: lock *)
type histogram = {
  h_name : string;
  h_labels : (string * string) list;
  h_help : string;
  h_bounds : float array; (* finite upper bounds, strictly increasing *)
  h_counts : int array; (* per finite bucket, non-cumulative *)
  mutable h_overflow : int; (* observations above the last bound *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  match f () with
  | x ->
    Mutex.unlock lock;
    x
  | exception e ->
    Mutex.unlock lock;
    raise e

(* identity = name + ordered labels *)
(* guarded-by: lock *)
let table : (string * (string * string) list, metric) Hashtbl.t = Hashtbl.create 64

(* read-only — shared bucket template; histograms copy it on creation *)
let default_latency_buckets =
  [|
    1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2; 5e-2; 0.1;
    0.25; 0.5; 1.0; 2.5; 5.0; 10.0;
  |]

let kind_of = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register ~name ~labels ~want make =
  with_lock (fun () ->
      match Hashtbl.find_opt table (name, labels) with
      | Some existing -> existing
      | None ->
        let m = make () in
        if kind_of m <> want then
          invalid_arg (Printf.sprintf "Registry: %s is not a %s" name want);
        Hashtbl.replace table (name, labels) m;
        m)

let counter ?(help = "") ?(labels = []) name =
  match
    register ~name ~labels ~want:"counter" (fun () ->
        Counter { c_name = name; c_labels = labels; c_help = help; c_value = 0 })
  with
  | Counter c -> c
  | existing ->
    invalid_arg
      (Printf.sprintf "Registry.counter: %s already registered as a %s" name
         (kind_of existing))

let gauge ?(help = "") ?(labels = []) name =
  match
    register ~name ~labels ~want:"gauge" (fun () ->
        Gauge { g_name = name; g_labels = labels; g_help = help; g_value = 0.0 })
  with
  | Gauge g -> g
  | existing ->
    invalid_arg
      (Printf.sprintf "Registry.gauge: %s already registered as a %s" name
         (kind_of existing))

let validate_buckets bounds =
  if Array.length bounds = 0 then invalid_arg "Registry.histogram: empty buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Registry.histogram: buckets must be strictly increasing")
    bounds

let histogram ?(help = "") ?(labels = []) ?(buckets = default_latency_buckets) name =
  validate_buckets buckets;
  match
    register ~name ~labels ~want:"histogram" (fun () ->
        Histogram
          {
            h_name = name;
            h_labels = labels;
            h_help = help;
            h_bounds = Array.copy buckets;
            h_counts = Array.make (Array.length buckets) 0;
            h_overflow = 0;
            h_sum = 0.0;
            h_count = 0;
          })
  with
  | Histogram h ->
    let same_buckets =
      Array.length h.h_bounds = Array.length buckets
      && Array.for_all2 (fun a b -> Float.equal a b) h.h_bounds buckets
    in
    if not same_buckets then
      invalid_arg
        (Printf.sprintf "Registry.histogram: %s already registered with other buckets" name);
    h
  | existing ->
    invalid_arg
      (Printf.sprintf "Registry.histogram: %s already registered as a %s" name
         (kind_of existing))

let incr c = with_lock (fun () -> c.c_value <- c.c_value + 1)

let add c n =
  if n < 0 then invalid_arg "Registry.add: counters are monotonic";
  with_lock (fun () -> c.c_value <- c.c_value + n)

let counter_value c = with_lock (fun () -> c.c_value)

let set g v = with_lock (fun () -> g.g_value <- v)

let gauge_value g = with_lock (fun () -> g.g_value)

(* first bucket whose bound admits [v]; bounds are few (≤ ~20), linear is
   fine and branch-predictable *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  with_lock (fun () ->
      let i = bucket_index h.h_bounds v in
      if i < Array.length h.h_counts then h.h_counts.(i) <- h.h_counts.(i) + 1
      else h.h_overflow <- h.h_overflow + 1;
      h.h_sum <- h.h_sum +. v;
      h.h_count <- h.h_count + 1)

let histogram_count h = with_lock (fun () -> h.h_count)

let histogram_sum h = with_lock (fun () -> h.h_sum)

(* Prometheus-style estimate: find the bucket holding the target rank and
   interpolate linearly inside it; the overflow bucket clamps to the last
   finite bound. Callers must hold the lock. *)
let percentile_locked h q =
  if q <= 0.0 || q > 1.0 then invalid_arg "Registry.percentile: q outside (0, 1]";
  if h.h_count = 0 then 0.0
  else begin
    let target = q *. float_of_int h.h_count in
    let n = Array.length h.h_bounds in
    let rec go i cum =
      if i >= n then h.h_bounds.(n - 1)
      else begin
        let cum' = cum + h.h_counts.(i) in
        if float_of_int cum' >= target then begin
          let lower = if i = 0 then 0.0 else h.h_bounds.(i - 1) in
          let upper = h.h_bounds.(i) in
          let in_bucket = h.h_counts.(i) in
          if in_bucket = 0 then upper
          else
            let frac = (target -. float_of_int cum) /. float_of_int in_bucket in
            lower +. (frac *. (upper -. lower))
        end
        else go (i + 1) cum'
      end
    in
    go 0 0
  end

let percentile h q = with_lock (fun () -> percentile_locked h q)

(* Pinned gauges carry process facts (build info, start time) that must
   survive [reset] — tests reset the registry, and losing build metadata
   to test isolation would be a lie on the next /metrics scrape. *)
(* guarded-by: lock *)
let pins : (gauge * float) list ref = ref []

let pin g v =
  with_lock (fun () ->
      g.g_value <- v;
      pins := (g, v) :: List.filter (fun (g', _) -> g' != g) !pins)

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> c.c_value <- 0
          | Gauge g -> g.g_value <- 0.0
          | Histogram h ->
            Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
            h.h_overflow <- 0;
            h.h_sum <- 0.0;
            h.h_count <- 0)
        table;
      List.iter (fun (g, v) -> g.g_value <- v) !pins)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let compare_labels a b =
  List.compare
    (fun (ka, va) (kb, vb) ->
      let c = String.compare ka kb in
      if c <> 0 then c else String.compare va vb)
    a b

let name_of = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let labels_of = function
  | Counter c -> c.c_labels
  | Gauge g -> g.g_labels
  | Histogram h -> h.h_labels

let help_of = function
  | Counter c -> c.c_help
  | Gauge g -> g.g_help
  | Histogram h -> h.h_help

let sorted_metrics () =
  Hashtbl.fold (fun _ m acc -> m :: acc) table []
  |> List.sort (fun a b ->
         let c = String.compare (name_of a) (name_of b) in
         if c <> 0 then c else compare_labels (labels_of a) (labels_of b))

let float_str v =
  (* integral floats render without an exponent or trailing dot noise *)
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* The exposition format escapes exactly backslash, double quote and
   newline inside label values — OCaml's %S would also escape tabs,
   high bytes etc., which scrapers then read back literally. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let label_str labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)
    ^ "}"

(* labels plus an [le] bound, for histogram bucket series *)
let le_label_str labels le =
  label_str (labels @ [ "le", le ])

let render_prometheus () =
  with_lock (fun () ->
      let buf = Buffer.create 4096 in
      let last_family = ref "" in
      List.iter
        (fun m ->
          let name = name_of m in
          if name <> !last_family then begin
            last_family := name;
            let help = help_of m in
            if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
            Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name (kind_of m))
          end;
          match m with
          | Counter c ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" name (label_str c.c_labels) c.c_value)
          | Gauge g ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" name (label_str g.g_labels) (float_str g.g_value))
          | Histogram h ->
            let cum = ref 0 in
            Array.iteri
              (fun i bound ->
                cum := !cum + h.h_counts.(i);
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" name
                     (le_label_str h.h_labels (float_str bound))
                     !cum))
              h.h_bounds;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (le_label_str h.h_labels "+Inf")
                 h.h_count);
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" name (label_str h.h_labels) (float_str h.h_sum));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" name (label_str h.h_labels) h.h_count))
        (sorted_metrics ());
      Buffer.contents buf)

let json_labels labels =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s" (Jsonv.quote k) (Jsonv.quote v)) labels)
  ^ "}"

let render_json () =
  with_lock (fun () ->
      let metrics = sorted_metrics () in
      let pick f = List.filter_map f metrics in
      let counters =
        pick (function
          | Counter c ->
            Some
              (Printf.sprintf "{ \"name\": %S, \"labels\": %s, \"value\": %d }" c.c_name
                 (json_labels c.c_labels) c.c_value)
          | _ -> None)
      in
      let gauges =
        pick (function
          | Gauge g ->
            Some
              (Printf.sprintf "{ \"name\": %S, \"labels\": %s, \"value\": %s }" g.g_name
                 (json_labels g.g_labels) (float_str g.g_value))
          | _ -> None)
      in
      let histograms =
        pick (function
          | Histogram h ->
            Some
              (Printf.sprintf
                 "{ \"name\": %S, \"labels\": %s, \"count\": %d, \"sum\": %s, \"p50\": %s, \
                  \"p95\": %s, \"p99\": %s }"
                 h.h_name (json_labels h.h_labels) h.h_count (float_str h.h_sum)
                 (float_str (percentile_locked h 0.50))
                 (float_str (percentile_locked h 0.95))
                 (float_str (percentile_locked h 0.99)))
          | _ -> None)
      in
      Printf.sprintf "{ \"counters\": [%s], \"gauges\": [%s], \"histograms\": [%s] }"
        (String.concat ", " counters) (String.concat ", " gauges)
        (String.concat ", " histograms))

(* ------------------------------------------------------------------ *)
(* Process facts, registered once at module init and pinned so they
   survive [reset]. The conventional shapes: a constant-1 info gauge
   whose labels carry the facts, and a start-time gauge Prometheus can
   turn into process uptime. *)

let version = "1.0.0"

let () =
  pin
    (gauge ~help:"Build information; the value is always 1"
       ~labels:[ ("ocaml_version", Sys.ocaml_version); ("version", version) ]
       "extract_build_info")
    1.0;
  pin
    (gauge ~help:"Unix time the process started, in seconds"
       "extract_process_start_time_seconds")
    (Unix.gettimeofday ())
