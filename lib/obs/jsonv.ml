(* Minimal JSON values for the observability layer: log lines, explain
   bundles and the slowlog all render through this one module so escaping
   and number formatting are decided exactly once. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  escape_to buf s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* integral floats render without a trailing dot or exponent noise; JSON
   has no NaN/Inf, so non-finite values become null *)
let number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let rec add_compact buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
    else Buffer.add_string buf (number f)
  | Str s ->
    Buffer.add_char buf '"';
    escape_to buf s;
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ", ";
        add_compact buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_char buf '"';
        escape_to buf k;
        Buffer.add_string buf "\": ";
        add_compact buf item)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_compact buf v;
  Buffer.contents buf

(* A value is "flat" when it nests no containers: flat objects and arrays
   render on one line even in the pretty form, so a list of entries stays
   one grep-able line per entry. *)
let flat v =
  let scalar = function
    | Null | Bool _ | Int _ | Float _ | Str _ -> true
    | Arr _ | Obj _ -> false
  in
  match v with
  | Null | Bool _ | Int _ | Float _ | Str _ -> true
  | Arr items -> List.for_all scalar items
  | Obj fields -> List.for_all (fun (_, item) -> scalar item) fields

let pretty v =
  let buf = Buffer.create 1024 in
  let pad depth = Buffer.add_string buf (String.make (2 * depth) ' ') in
  let rec go depth v =
    if flat v then add_compact buf v
    else
      match v with
      | Arr items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            go (depth + 1) item)
          items;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf ']'
      | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            Buffer.add_char buf '"';
            escape_to buf k;
            Buffer.add_string buf "\": ";
            go (depth + 1) item)
          fields;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf '}'
      | _ -> add_compact buf v
  in
  go 0 v;
  Buffer.contents buf
