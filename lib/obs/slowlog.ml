(* Slow-query capture: a small always-on store answering "what were the
   worst queries lately, and what did every degraded one look like".
   Two retention rules under one mutex:
     - the N slowest queries ever seen (sorted list, truncated), and
     - a circular ring of the most recent degraded/faulted queries —
       kept unconditionally, because a degraded answer is interesting
       regardless of how fast it was produced.
   Entries carry a compact explain digest, not the full bundle: the
   store is a diagnostic of last resort and must stay O(capacity). *)

type entry = {
  rid : string;
  query : string;
  seconds : float;
  degraded : int;
  faulted : bool;
  digest : Jsonv.t;
}

let lock = Mutex.create ()

let default_slowest = 16

let default_ring = 64

let slowest_cap = ref default_slowest (* guarded-by: lock *)

let ring_cap = ref default_ring (* guarded-by: lock *)

(* slowest first; length <= !slowest_cap *)
(* guarded-by: lock *)
let slowest : entry list ref = ref []

(* most recent first; length <= !ring_cap *)
(* guarded-by: lock *)
let ring : entry list ref = ref []

let with_lock f =
  Mutex.lock lock;
  match f () with
  | x ->
    Mutex.unlock lock;
    x
  | exception e ->
    Mutex.unlock lock;
    raise e

let truncate n l =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

let configure ?slowest:(n = default_slowest) ?ring:(r = default_ring) () =
  if n < 0 || r < 0 then invalid_arg "Slowlog.configure: negative capacity";
  with_lock (fun () ->
      slowest_cap := n;
      ring_cap := r;
      slowest := truncate n !slowest;
      ring := truncate r !ring)

let record e =
  with_lock (fun () ->
      let rec insert = function
        | [] -> [ e ]
        | x :: rest ->
          if e.seconds > x.seconds then e :: x :: rest else x :: insert rest
      in
      slowest := truncate !slowest_cap (insert !slowest);
      if e.degraded > 0 || e.faulted then
        ring := truncate !ring_cap (e :: !ring))

let snapshot () = with_lock (fun () -> (!slowest, !ring))

let reset () =
  with_lock (fun () ->
      slowest := [];
      ring := [])

let entry_json e =
  Jsonv.Obj
    [ ("rid", Jsonv.Str e.rid);
      ("query", Jsonv.Str e.query);
      ("seconds", Jsonv.Float e.seconds);
      ("degraded", Jsonv.Int e.degraded);
      ("faulted", Jsonv.Bool e.faulted);
      ("digest", e.digest) ]

let render_json () =
  let slow, degraded = snapshot () in
  Jsonv.pretty
    (Jsonv.Obj
       [ ("slowest", Jsonv.Arr (List.map entry_json slow));
         ("degraded", Jsonv.Arr (List.map entry_json degraded)) ])
