(** Ambient explain capture.

    An explain bundle wants facts from layers below the one that
    assembles it: posting-list sizes from the evaluation context, stage
    timings and differentiator scores from the pipeline, hit/miss
    provenance from the snippet cache. Rather than widening every
    signature on that path, a {!with_capture} scope installs a
    domain-local accumulator and instrumented code contributes named
    JSON sections through {!record} — which costs one domain-local read
    and does nothing outside a scope, so instrumentation is free on the
    normal path.

    Scopes are per-domain and nest (inner scopes capture independently);
    sections come back in record order. The snippet layer's
    [Extract_snippet.Explain] turns captured sections plus the pipeline's
    results into the user-facing bundle. *)

val with_capture : (unit -> 'a) -> 'a * (string * Jsonv.t) list
(** [with_capture f] runs [f] with capture enabled on this domain and
    returns its result together with the sections recorded during the
    run, in record order. The scope is removed even when [f] raises. *)

val record : string -> (unit -> Jsonv.t) -> unit
(** [record name mk] adds section [name] with value [mk ()] to the
    innermost enclosing capture scope; without one, [mk] is never
    called. Force any mutable state into the value now — thunks run at
    record time, not at bundle-assembly time. *)

val capturing : unit -> bool
(** Is a capture scope active on this domain? For guarding preparation
    work too spread out for a single {!record} thunk. *)
