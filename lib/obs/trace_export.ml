(* Chrome trace-event export: a span forest as the JSON Array Format
   understood by chrome://tracing and Perfetto. Each span becomes one
   complete event ("ph": "X") with microsecond ts/dur; the recording
   domain id becomes the tid, so each domain renders as its own track
   and cross-domain children line up under the parent query span by
   time. *)

let event ~epoch span =
  let args =
    (match span.Trace.rid with Some rid -> [ ("rid", Jsonv.Str rid) ] | None -> [])
    @ List.map (fun (k, v) -> (k, Jsonv.Str v)) span.Trace.args
  in
  Jsonv.Obj
    [
      ("name", Jsonv.Str span.Trace.name);
      ("cat", Jsonv.Str "extract");
      ("ph", Jsonv.Str "X");
      ("ts", Jsonv.Float ((span.Trace.start -. epoch) *. 1e6));
      ("dur", Jsonv.Float (span.Trace.duration *. 1e6));
      ("pid", Jsonv.Int 0);
      ("tid", Jsonv.Int span.Trace.dom);
      ("args", Jsonv.Obj args);
    ]

let events spans =
  (* Rebase timestamps on the earliest span: absolute Deadline.now values
     are large enough that float printing would round away microseconds,
     and trace viewers only care about relative time. *)
  let rec min_start acc s =
    List.fold_left min_start (Float.min acc s.Trace.start) s.Trace.children
  in
  let epoch = List.fold_left min_start infinity spans in
  let epoch = if Float.is_finite epoch then epoch else 0. in
  let rec flatten acc s =
    List.fold_left flatten (event ~epoch s :: acc) s.Trace.children
  in
  List.rev (List.fold_left flatten [] spans)

let json spans =
  Jsonv.Obj
    [ ("traceEvents", Jsonv.Arr (events spans)); ("displayTimeUnit", Jsonv.Str "ms") ]

let render spans = Jsonv.to_string (json spans)
