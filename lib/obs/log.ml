(* Structured JSON-lines event log. Off by default: one atomic load per
   call site decides everything, so instrumented hot paths cost nothing
   until a level is set. Lines go to one sink (stderr by default, or an
   append-mode file) under a mutex, so events from parallel domains never
   interleave mid-line. *)

type level =
  | Debug
  | Info
  | Warn
  | Error

let level_int = function
  | Debug -> 1
  | Info -> 2
  | Warn -> 3
  | Error -> 4

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | "off" | "none" -> None
  | _ -> invalid_arg (Printf.sprintf "Log: unknown level %S" s)

(* 0 = disabled *)
let threshold = Atomic.make 0

let set_level lvl =
  Atomic.set threshold (match lvl with None -> 0 | Some l -> level_int l)

let enabled lvl =
  let t = Atomic.get threshold in
  t > 0 && level_int lvl >= t

let sink_lock = Mutex.create ()

let stderr_sink line =
  output_string stderr line;
  output_char stderr '\n';
  flush stderr

let sink : (string -> unit) ref = ref stderr_sink (* guarded-by: sink_lock *)

let set_sink s =
  Mutex.lock sink_lock;
  sink := (match s with None -> stderr_sink | Some f -> f);
  Mutex.unlock sink_lock

let file_sink path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  fun line ->
    output_string oc line;
    output_char oc '\n';
    flush oc

let install_from_env () =
  match Sys.getenv_opt "EXTRACT_LOG" with
  | None | Some "" -> ()
  | Some spec ->
    let level_part, file_part =
      match String.index_opt spec ':' with
      | None -> (spec, None)
      | Some i ->
        ( String.sub spec 0 i,
          Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
    in
    let lvl = level_of_string level_part in
    (match file_part with
    | None | Some "" -> ()
    | Some path -> set_sink (Some (file_sink path)));
    set_level lvl

let event lvl name fields =
  if enabled lvl then begin
    let base =
      [ ("ts", Jsonv.Float (Unix.gettimeofday ()));
        ("level", Jsonv.Str (level_name lvl));
        ("event", Jsonv.Str name) ]
    in
    let rid =
      match Reqid.current () with
      | Some id -> [ ("rid", Jsonv.Str id) ]
      | None -> []
    in
    let line = Jsonv.to_string (Jsonv.Obj (base @ rid @ fields)) in
    Mutex.lock sink_lock;
    (try !sink line with _ -> ());
    Mutex.unlock sink_lock
  end

let debug name fields = event Debug name fields

let info name fields = event Info name fields

let warn name fields = event Warn name fields

let error name fields = event Error name fields
