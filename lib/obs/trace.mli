(** Span-based tracing with monotonic timestamps.

    A span covers one named unit of work ([pipeline.search],
    [eval_ctx.resolve]); spans opened while another span is running
    become its children, so a traced request yields a tree mirroring the
    call structure. Timestamps come from the monotonized
    {!Extract_util.Deadline} clock (so the injected test clock drives
    deterministic traces too).

    Tracing is {b off by default} and costs one atomic read per
    {!with_span} when off. When on, each span allocates a small record;
    the current-span stack is per-domain (domain-local storage), so
    {!Extract_snippet.Pipeline.run_parallel} workers trace independently
    without interleaving; completed root spans are collected globally
    under a mutex, in completion order. *)

type span = {
  name : string;
  start : float; (** seconds, {!Extract_util.Deadline.now} clock *)
  duration : float; (** seconds *)
  rid : string option;
      (** the {!Reqid} current when the span opened, so a span tree
          correlates with the same query's log lines and slowlog entry *)
  children : span list; (** in start order *)
}

val set_enabled : bool -> unit
(** Turn tracing on or off process-wide. Turning it off does not clear
    already-collected roots. *)

val enabled : unit -> bool

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording a span when tracing is
    enabled. The span is recorded (and the stack unwound) even when [f]
    raises. *)

val finished : unit -> span list
(** The root spans completed so far, oldest first, and clears them. Spans
    still open are not included. *)

val clear : unit -> unit
(** Drop collected roots and this domain's open-span stack. *)

val pp_duration : float -> string
(** Human form of a duration in seconds: ["1.24ms"], ["16.0us"],
    ["2.1s"]. *)

val render : span list -> string
(** The span forest as an indented tree, one line per span: two spaces
    per depth, the name (suffixed [" [rid]"] when the span carries a
    request id), then the duration right-padded — the shape printed by
    [extract snippet --trace]. *)
