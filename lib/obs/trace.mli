(** Span-based tracing with monotonic timestamps.

    A span covers one named unit of work ([pipeline.search],
    [eval_ctx.resolve]); spans opened while another span is running
    become its children, so a traced request yields a tree mirroring the
    call structure. Timestamps come from the monotonized
    {!Extract_util.Deadline} clock (so the injected test clock drives
    deterministic traces too).

    Tracing is {b off by default} and costs one atomic read plus one
    domain-local read per {!with_span} when off. When on, each span
    allocates a small record; the current-span stack is per-domain
    (domain-local storage), so {!Extract_snippet.Pipeline.run_parallel}
    workers trace independently without interleaving. Completed root
    spans land in a bounded global buffer (newest kept, oldest dropped;
    see {!set_buffer_capacity}) under a mutex, in completion order.

    {b Cross-domain propagation.} Spans completing on a spawned domain
    would otherwise surface as unrelated roots with no request id. A
    parent {!capture}s its context before spawning; the child wraps its
    work in {!with_context}, which (a) re-establishes the parent's
    {!Reqid} so child spans render with the same rid, and (b) routes the
    child's root spans into the parent span's adoption buffer, so when
    the parent span closes they appear as its children (merged in start
    order). Adoption requires the parent span to close {e after} the
    child finishes — the spawn/join structure of [Shard_set.run],
    [Pipeline.run_parallel] and the server pool guarantees this; spans
    finishing after the parent closed are dropped. *)

type span = {
  name : string;
  start : float; (** seconds, {!Extract_util.Deadline.now} clock *)
  duration : float; (** seconds *)
  rid : string option;
      (** the {!Reqid} current when the span opened, so a span tree
          correlates with the same query's log lines and slowlog entry *)
  dom : int; (** id of the domain the span ran on (Chrome-trace tid) *)
  args : (string * string) list;
      (** structured labels ([("shard", "2")]), rendered inline and
          exported to the Chrome trace [args] object *)
  children : span list; (** in start order *)
}

val set_enabled : bool -> unit
(** Turn tracing on or off process-wide. Turning it off does not clear
    already-collected roots. *)

val enabled : unit -> bool

val recording : unit -> bool
(** True when spans opened now would be recorded: tracing is enabled
    process-wide {e or} this domain is inside {!with_recording} /
    a recording {!with_context}. *)

val with_recording : (unit -> 'a) -> 'a
(** [with_recording f] records spans opened by [f] on this domain even
    while process-wide tracing is off — the per-request sampling hook
    ({!sampled}) used by the server. Restores the previous state, also
    on exceptions. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording a span when {!recording}. The
    span is recorded (and the stack unwound) even when [f] raises. *)

val add_span :
  ?args:(string * string) list ->
  ?rid:string ->
  string ->
  start:float ->
  duration:float ->
  unit
(** Record an already-measured interval as a span — work that happened
    before any span could be opened, like the time a connection sat in
    the accept queue. Attaches to the currently open span on this domain
    (or becomes a root). [rid] defaults to the current {!Reqid};
    negative durations clamp to [0.]. No-op unless {!recording}. *)

type context
(** A parent's tracing context, captured before spawning. *)

val capture : unit -> context
(** Snapshot the current request id, recording state, and open span (the
    adoption point for child roots) on this domain. Cheap when not
    recording. *)

val with_context : context -> (unit -> 'a) -> 'a
(** [with_context ctx f], on a spawned domain: runs [f] under the
    captured request id, with recording forced if the parent was
    recording, routing root spans into the captured parent span.
    Restores this domain's previous state afterwards. *)

val finished : unit -> span list
(** The root spans completed so far, oldest first, and clears them. Spans
    still open are not included. *)

val recent : ?last:int -> unit -> span list
(** Like {!finished} but non-destructive: the buffered roots, oldest
    first, optionally only the newest [last]. *)

val clear : unit -> unit
(** Drop collected roots and this domain's open-span stack. *)

val set_buffer_capacity : int -> unit
(** Cap the root buffer at [n] (≥ 1) spans; older roots are dropped as
    new ones complete. Default 512 — a server under sampling keeps a
    bounded window instead of leaking. *)

val buffer_capacity : unit -> int

val set_sample_interval : int -> unit
(** [set_sample_interval n]: make {!sampled} return true once every [n]
    calls ([0] disables sampling, the default). Resets the phase so the
    next call samples. *)

val sample_interval : unit -> int

val sampled : unit -> bool
(** Deterministic 1-in-N sampling decision (atomic counter, so exactly
    one of every [n] calls across all domains returns true). Always
    false while the interval is 0. *)

val install_from_env : unit -> unit
(** Read [EXTRACT_TRACE_SAMPLE] ("1/N" or plain "N") and set the sample
    interval. Malformed or missing values leave it unchanged. *)

val pp_duration : float -> string
(** Human form of a duration in seconds: ["1.24ms"], ["16.0us"],
    ["2.1s"]. *)

val render : span list -> string
(** The span forest as an indented tree, one line per span: two spaces
    per depth, the name (suffixed ["{k=v}"] when the span carries args,
    [" [rid]"] when it carries a request id), then the duration
    right-padded — the shape printed by [extract snippet --trace]. *)
