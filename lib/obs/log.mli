(** Leveled, structured JSON-lines event log.

    Each event renders as one JSON object per line:

    {v
{"ts": 1754489000.123, "level": "info", "event": "query.done", "rid": "q000001", "query": "store texas", "results": 2, "seconds": 0.0031}
    v}

    [ts] is wall-clock seconds ([Unix.gettimeofday]); [rid] is stamped
    automatically from the current {!Reqid} scope and omitted outside
    one, so every event inside a query scope correlates with that
    query's trace spans, access-log line and slowlog entry for free.

    Logging is {b off by default} and costs one atomic load per call
    when off; fields are only rendered for events that pass the level
    threshold. Lines are written to one sink — stderr by default, or an
    append-mode file — under a mutex, so events from parallel domains
    never interleave mid-line.

    Enable with {!set_level}, the CLI's [--log-level], or the
    [EXTRACT_LOG] environment variable: [EXTRACT_LOG=level] or
    [EXTRACT_LOG=level:FILE] with level one of
    [debug|info|warn|error|off]. *)

type level =
  | Debug
  | Info
  | Warn
  | Error

val set_level : level option -> unit
(** Events at or above the given level are emitted; [None] disables
    logging entirely (the default). *)

val enabled : level -> bool
(** Would an event at this level be emitted? Use to skip expensive field
    computation; {!event} already checks it. *)

val level_of_string : string -> level option
(** ["debug"|"info"|"warn"|"warning"|"error"] (case-insensitive) to a
    level; ["off"|"none"] to [None].
    @raise Invalid_argument on anything else. *)

val level_name : level -> string

val set_sink : (string -> unit) option -> unit
(** Replace the line sink ([None] restores the stderr default). The sink
    receives one rendered line at a time, without the newline, under the
    log mutex — keep it fast and non-reentrant. *)

val file_sink : string -> string -> unit
(** [file_sink path] opens [path] in append mode and returns a sink that
    writes and flushes each line. The channel stays open for the process
    lifetime. *)

val install_from_env : unit -> unit
(** Parse [EXTRACT_LOG] ([level] or [level:FILE]) and configure level and
    sink accordingly; absent or empty means leave logging off.
    @raise Invalid_argument on a malformed value (the CLI reports it and
    exits 2, like [EXTRACT_FAULTS]). *)

val event : level -> string -> (string * Jsonv.t) list -> unit
(** [event lvl name fields] emits one line when [lvl] passes the
    threshold. [name] goes in the ["event"] field; [fields] are appended
    after the standard [ts]/[level]/[event]/[rid] prefix. *)

val debug : string -> (string * Jsonv.t) list -> unit

val info : string -> (string * Jsonv.t) list -> unit

val warn : string -> (string * Jsonv.t) list -> unit

val error : string -> (string * Jsonv.t) list -> unit
