(** Chrome trace-event export.

    Renders a {!Trace} span forest as the Trace Event JSON Array Format
    loadable by [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto}: [{"traceEvents": [...], "displayTimeUnit": "ms"}] with
    one complete event ([ph: "X"]) per span. Timestamps and durations
    are microseconds on the {!Extract_util.Deadline} monotonic clock,
    rebased so the earliest span in the export starts at 0 (keeping
    microsecond precision through float rendering);
    [pid] is always 0 and [tid] is the OCaml domain id the span ran on,
    so the shard/worker fan-out renders as parallel tracks. The request
    id and span labels appear in each event's [args]. *)

val json : Trace.span list -> Jsonv.t
(** The trace document as a JSON value. *)

val render : Trace.span list -> string
(** {!json} rendered compactly — the payload written by
    [extract snippet --trace-out] and served at [/debug/trace]. *)
