(* Ambient explain capture. The layers that know interesting per-query
   facts (posting-list sizes in Eval_ctx, stage timings and
   differentiator scores in Pipeline, hit/miss provenance in
   Snippet_cache) sit below the layer that assembles the user-facing
   bundle, so they can't return explain data directly without widening
   every signature. Instead, a capture scope installs a domain-local
   accumulator; instrumented code calls [record], which is a no-op (one
   DLS read) outside a scope. Section thunks are forced immediately at
   record time — the values they close over are mutable pipeline state. *)

(* domain-local — frames live on the per-domain DLS stack below *)
type frame = { mutable sections : (string * Jsonv.t) list (* reversed *) }

(* a stack, so a capture nested inside another (cache probe inside a
   server explain) keeps sections separate *)
let frames_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let capturing () =
  match !(Domain.DLS.get frames_key) with
  | [] -> false
  | _ :: _ -> true

let record name mk =
  match !(Domain.DLS.get frames_key) with
  | [] -> ()
  | top :: _ -> top.sections <- (name, mk ()) :: top.sections

let with_capture f =
  let frames = Domain.DLS.get frames_key in
  let frame = { sections = [] } in
  frames := frame :: !frames;
  let pop () =
    match !frames with
    | top :: rest when top == frame -> frames := rest
    | _ -> ()
  in
  match f () with
  | x ->
    pop ();
    (x, List.rev frame.sections)
  | exception e ->
    pop ();
    raise e
