(** Runtime collector: GC and subsystem gauges.

    One {!sample} reads {!Gc.quick_stat} and publishes it as
    [extract_gc_*] registry gauges (minor/major collections,
    compactions, heap words), then runs every registered subsystem
    collector — small callbacks the server and stores install to refresh
    their own gauges (cache occupancy, journal lag, live generation,
    snapshot residency). Collector registration is {b idempotent by
    name}: registering a name again replaces its callback, so re-created
    servers don't stack stale closures, and gauges are registered inside
    {!sample} (the registry deduplicates), so repeated sampling never
    duplicates a family.

    {!start} runs [sample] on a background systhread every [period_s]
    seconds — a thread, not a domain: it sleeps almost always and only
    touches thread-safe state. Collector callbacks that raise are
    swallowed, so one failing subsystem cannot kill the sampler. *)

val register_collector : string -> (unit -> unit) -> unit
(** [register_collector name f]: run [f] on every {!sample}. Replaces
    any collector previously registered under [name]. *)

val collector_names : unit -> string list
(** Registered collector names, in registration order. *)

val sample : unit -> unit
(** Publish GC gauges and run all registered collectors now. *)

val start : ?period_s:float -> unit -> bool
(** Start the background sampling thread (default every 5 s; clamped to
    ≥ 50 ms). Returns false (and changes only the period) when it is
    already running. *)

val running : unit -> bool

val stop : unit -> unit
(** Stop and join the background thread. No-op when not running. *)

val json : unit -> Jsonv.t
(** A fresh sample as a JSON value: the [gc] block, the current and
    recommended domain counts, and the collector inventory — the
    [/debug/runtime] payload. Also refreshes the registry gauges. *)

val render_json : unit -> string
(** {!json} rendered compactly. *)
