(** Minimal JSON values.

    The observability layer emits a lot of JSON — structured log lines,
    explain bundles, the slowlog, registry snapshots — and this module is
    the single place where string escaping and number formatting are
    decided. It is deliberately write-only: there is no parser, because
    nothing in the system consumes JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line render ([", "] separators, ["key": value]
    fields). Non-finite floats render as [null] (JSON has no NaN). *)

val pretty : t -> string
(** Indented multi-line render (two spaces per depth). Objects and arrays
    whose members are all scalars stay on one line, so a list of entry
    records renders one grep-able line per entry. *)

val quote : string -> string
(** [s] as a JSON string literal: double-quoted, with backslash escapes
    for quote, backslash, newline, return, tab, backspace, form feed,
    and [u00XX] escapes for the remaining control bytes. *)

val number : float -> string
(** Float formatting used by every render: integral values without a
    trailing dot or exponent, others with [%.12g]. *)
