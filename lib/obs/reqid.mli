(** Per-query request ids.

    A request id ("q000042") names one query end to end: the structured
    log lines it emits ({!Log}), the trace spans it opens ({!Trace}), the
    explain bundle it produces and its slowlog entry all carry the same
    id, so one grep correlates them. Ids are sequential per process —
    the process is the whole correlation domain, so short monotonic
    tokens beat UUIDs for terminal reading.

    The {e current} id is domain-local: scopes on different domains
    (parallel snippet workers, per-connection handlers) never interfere. *)

val fresh : unit -> string
(** A new unique id ("q000001" first). Does not set the current id. *)

val current : unit -> string option
(** The id of the enclosing {!with_id}/{!ensure} scope on this domain. *)

val with_id : string -> (unit -> 'a) -> 'a
(** [with_id id f] runs [f] with [id] as the current id, restoring the
    previous id afterwards (also on exceptions). Scopes nest. *)

val ensure : (string -> 'a) -> 'a
(** [ensure f] calls [f rid] under a current id: the enclosing scope's id
    when one is already set (the server stamped one per request), else a
    fresh id scoped to this call (the CLI path). *)

val reset_counter : unit -> unit
(** Restart numbering at "q000001". Test isolation and the CLI's
    per-invocation determinism; never call while queries are in flight. *)
