(* Request ids are small sequential tokens ("q000042"), not UUIDs: the
   process is the correlation domain (logs, spans, slowlog all live in
   one process), so short monotonic ids read better in terminals and
   cost nothing. The current id is domain-local, so parallel snippet
   workers and future per-domain request handlers don't clobber each
   other. *)

let next = Atomic.make 1

let fresh () = Printf.sprintf "q%06d" (Atomic.fetch_and_add next 1)

let reset_counter () = Atomic.set next 1

let current_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get current_key)

let with_id id f =
  let slot = Domain.DLS.get current_key in
  let saved = !slot in
  slot := Some id;
  match f () with
  | x ->
    slot := saved;
    x
  | exception e ->
    slot := saved;
    raise e

let ensure f =
  let slot = Domain.DLS.get current_key in
  match !slot with
  | Some id -> f id
  | None ->
    let id = fresh () in
    with_id id (fun () -> f id)
