(* Periodic runtime sampler: publishes GC statistics and any registered
   subsystem collectors (cache occupancy, journal lag, ...) as registry
   gauges, on demand via [sample] or from a background thread. The
   thread is plain Thread.create — it only reads Gc.quick_stat and pokes
   the registry (both safe from any thread), and a systhread costs no
   core while sleeping, unlike a domain. *)

let state_lock = Mutex.create ()

(* named, idempotent: re-registering a name replaces its callback *)
(* guarded-by: state_lock *)
let collectors : (string * (unit -> unit)) list ref = ref []

let thread : Thread.t option ref = ref None (* guarded-by: state_lock *)

let running_flag = Atomic.make false

let period = Atomic.make 5.0

let register_collector name f =
  Mutex.protect state_lock (fun () ->
      collectors := List.remove_assoc name !collectors @ [ (name, f) ])

let collector_names () =
  Mutex.protect state_lock (fun () -> List.map fst !collectors)

let set_gauge name help v = Registry.set (Registry.gauge ~help name) v

let gc_sample () =
  let s = Gc.quick_stat () in
  set_gauge "extract_gc_minor_collections" "Minor collections since start"
    (float_of_int s.Gc.minor_collections);
  set_gauge "extract_gc_major_collections" "Major collection cycles since start"
    (float_of_int s.Gc.major_collections);
  set_gauge "extract_gc_compactions" "Heap compactions since start"
    (float_of_int s.Gc.compactions);
  set_gauge "extract_gc_heap_words" "Major heap size in words"
    (float_of_int s.Gc.heap_words);
  set_gauge "extract_gc_top_heap_words" "Largest major heap size in words"
    (float_of_int s.Gc.top_heap_words);
  set_gauge "extract_gc_minor_words" "Words allocated in the minor heap"
    s.Gc.minor_words;
  s

let sample () =
  ignore (gc_sample ());
  let cbs = Mutex.protect state_lock (fun () -> !collectors) in
  List.iter (fun (_, f) -> try f () with _ -> ()) cbs

let loop () =
  while Atomic.get running_flag do
    sample ();
    let until = Unix.gettimeofday () +. Atomic.get period in
    while Atomic.get running_flag && Unix.gettimeofday () < until do
      Thread.delay 0.05
    done
  done

let start ?(period_s = 5.0) () =
  Atomic.set period (Float.max 0.05 period_s);
  Mutex.protect state_lock (fun () ->
      match !thread with
      | Some _ -> false
      | None ->
        Atomic.set running_flag true;
        thread := Some (Thread.create loop ());
        true)

let running () = Atomic.get running_flag

let stop () =
  let t =
    Mutex.protect state_lock (fun () ->
        Atomic.set running_flag false;
        let t = !thread in
        thread := None;
        t)
  in
  Option.iter Thread.join t

let json () =
  let s = gc_sample () in
  let cbs = Mutex.protect state_lock (fun () -> !collectors) in
  List.iter (fun (_, f) -> try f () with _ -> ()) cbs;
  Jsonv.Obj
    [
      ( "gc",
        Jsonv.Obj
          [
            ("minor_collections", Jsonv.Int s.Gc.minor_collections);
            ("major_collections", Jsonv.Int s.Gc.major_collections);
            ("compactions", Jsonv.Int s.Gc.compactions);
            ("heap_words", Jsonv.Int s.Gc.heap_words);
            ("top_heap_words", Jsonv.Int s.Gc.top_heap_words);
            ("minor_words", Jsonv.Float s.Gc.minor_words);
            ("promoted_words", Jsonv.Float s.Gc.promoted_words);
            ("major_words", Jsonv.Float s.Gc.major_words);
          ] );
      ( "domains",
        Jsonv.Obj
          [
            ("self", Jsonv.Int (Domain.self () :> int));
            ("recommended", Jsonv.Int (Domain.recommended_domain_count ()));
          ] );
      ( "collector",
        Jsonv.Obj
          [
            ("running", Jsonv.Bool (Atomic.get running_flag));
            ("period_s", Jsonv.Float (Atomic.get period));
            ("names", Jsonv.Arr (List.map (fun (n, _) -> Jsonv.Str n) cbs));
          ] );
    ]

let render_json () = Jsonv.to_string (json ())
