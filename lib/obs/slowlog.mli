(** Slow-query capture ring.

    A small, always-on, mutex-guarded store answering two questions
    after the fact: {e what were the slowest queries}, and {e what did
    every recent degraded or faulted query look like}. Two retention
    rules:

    - the N slowest queries ever recorded (default 16), and
    - a circular ring of the most recent degraded/faulted queries
      (default 64) — retained regardless of speed, because a degraded
      answer is interesting even when it was produced quickly.

    Entries carry the request id, the query, wall-clock seconds, the
    degraded-result count, whether an injected/infrastructure fault was
    involved, and a compact explain {e digest} (per-result roots,
    coverage and edge use — not the full bundle), so memory stays
    O(capacity). Served at [GET /debug/slowlog] and dumped by
    [extract serve] on SIGTERM. *)

type entry = {
  rid : string;
  query : string;
  seconds : float;
  degraded : int; (** results degraded to the baseline snippet *)
  faulted : bool; (** the query died on an injected or IO fault *)
  digest : Jsonv.t; (** compact per-result explain digest *)
}

val record : entry -> unit
(** Consider [entry] for both retentions. Cheap (list insert under a
    mutex) — call once per query. *)

val snapshot : unit -> entry list * entry list
(** [(slowest, degraded)] — slowest first, resp. most recent first. *)

val render_json : unit -> string
(** Both retentions as pretty JSON:
    [{"slowest": [...], "degraded": [...]}]. *)

val configure : ?slowest:int -> ?ring:int -> unit -> unit
(** Set capacities (defaults 16 and 64), truncating current contents.
    @raise Invalid_argument on a negative capacity. *)

val reset : unit -> unit
(** Drop all entries, keeping capacities. Test isolation. *)
