module Deadline = Extract_util.Deadline

type span = {
  name : string;
  start : float;
  duration : float;
  rid : string option;
  dom : int;
  args : (string * string) list;
  children : span list;
}

(* Spans finished on a child domain, waiting to be adopted by the parent
   span that captured the context. *)
type collector = {
  c_lock : Mutex.t;
  mutable c_spans : span list; (* guarded-by: c_lock *)
}

(* an open span being built; children accumulate reversed *)
(* domain-local — open spans live on the per-domain DLS stack below *)
type building = {
  b_name : string;
  b_start : float;
  b_rid : string option;
  b_args : (string * string) list;
  mutable b_children : span list;
  mutable b_adopt : collector option;
}

let on = Atomic.make false

let set_enabled v = Atomic.set on v

let enabled () = Atomic.get on

(* Per-scope recording: lets the server sample individual requests while
   process-wide tracing stays off. *)
let recording_key : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let recording () = Atomic.get on || !(Domain.DLS.get recording_key)

let with_recording f =
  let r = Domain.DLS.get recording_key in
  let saved = !r in
  r := true;
  match f () with
  | x ->
    r := saved;
    x
  | exception e ->
    r := saved;
    raise e

(* Per-domain open-span stack: parallel snippet workers each trace their
   own subtree without interleaving. *)
let stack_key : building list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Where completed roots on this domain go: a parent span's collector
   when running under with_context, else the global buffer. *)
let sink_key : collector option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* Completed roots, across all domains, newest first, bounded. *)
let roots_lock = Mutex.create ()

let roots : span list ref = ref [] (* guarded-by: roots_lock *)

let roots_len = ref 0 (* guarded-by: roots_lock *)

let default_capacity = 512

let capacity = Atomic.make default_capacity

let set_buffer_capacity n = Atomic.set capacity (max 1 n)

let buffer_capacity () = Atomic.get capacity

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let push_root s =
  match !(Domain.DLS.get sink_key) with
  | Some c ->
    Mutex.lock c.c_lock;
    c.c_spans <- s :: c.c_spans;
    Mutex.unlock c.c_lock
  | None ->
    Mutex.lock roots_lock;
    roots := s :: !roots;
    incr roots_len;
    let cap = Atomic.get capacity in
    if !roots_len > cap then begin
      roots := take cap !roots;
      roots_len := cap
    end;
    Mutex.unlock roots_lock

let finished () =
  Mutex.lock roots_lock;
  let out = List.rev !roots in
  roots := [];
  roots_len := 0;
  Mutex.unlock roots_lock;
  out

let recent ?last () =
  Mutex.lock roots_lock;
  let all = !roots in
  Mutex.unlock roots_lock;
  let sel = match last with None -> all | Some n -> take (max 0 n) all in
  List.rev sel

let clear () =
  Mutex.lock roots_lock;
  roots := [];
  roots_len := 0;
  Mutex.unlock roots_lock;
  Domain.DLS.get stack_key := []

let close_span stack b =
  let adopted =
    match b.b_adopt with
    | None -> []
    | Some c ->
      Mutex.lock c.c_lock;
      let s = c.c_spans in
      c.c_spans <- [];
      Mutex.unlock c.c_lock;
      s
  in
  let children =
    match adopted with
    | [] -> List.rev b.b_children
    | _ ->
      List.sort
        (fun a b -> Float.compare a.start b.start)
        (List.rev_append b.b_children adopted)
  in
  let finished_span =
    {
      name = b.b_name;
      start = b.b_start;
      duration = Deadline.now () -. b.b_start;
      rid = b.b_rid;
      dom = (Domain.self () :> int);
      args = b.b_args;
      children;
    }
  in
  (match !stack with
  | top :: _ -> top.b_children <- finished_span :: top.b_children
  | [] -> push_root finished_span);
  finished_span

let with_span ?(args = []) name f =
  if not (recording ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let b =
      { b_name = name;
        b_start = Deadline.now ();
        b_rid = Reqid.current ();
        b_args = args;
        b_children = [];
        b_adopt = None }
    in
    stack := b :: !stack;
    let pop () =
      (* unwind even past an exception; tolerate a clear() underneath us *)
      (match !stack with
      | top :: rest when top == b ->
        stack := rest;
        ignore (close_span stack b)
      | _ -> ())
    in
    match f () with
    | x ->
      pop ();
      x
    | exception e ->
      pop ();
      raise e
  end

let add_span ?(args = []) ?rid name ~start ~duration =
  if recording () then begin
    let rid = match rid with Some _ as r -> r | None -> Reqid.current () in
    let s =
      {
        name;
        start;
        duration = Float.max 0.0 duration;
        rid;
        dom = (Domain.self () :> int);
        args;
        children = [];
      }
    in
    match !(Domain.DLS.get stack_key) with
    | top :: _ -> top.b_children <- s :: top.b_children
    | [] -> push_root s
  end

(* ------------------------------------------------------------------ *)
(* Cross-domain context propagation                                    *)

type context = {
  ctx_rid : string option;
  ctx_sink : collector option;
  ctx_record : bool;
}

let capture () =
  let record = recording () in
  let sink =
    if not record then None
    else
      match !(Domain.DLS.get stack_key) with
      | [] -> !(Domain.DLS.get sink_key)
      | top :: _ -> (
        match top.b_adopt with
        | Some _ as c -> c
        | None ->
          let c = { c_lock = Mutex.create (); c_spans = [] } in
          top.b_adopt <- Some c;
          Some c)
  in
  { ctx_rid = Reqid.current (); ctx_sink = sink; ctx_record = record }

let with_context ctx f =
  let run () =
    let sink = Domain.DLS.get sink_key in
    let saved_sink = !sink in
    sink := ctx.ctx_sink;
    let r = Domain.DLS.get recording_key in
    let saved_rec = !r in
    if ctx.ctx_record then r := true;
    let restore () =
      sink := saved_sink;
      r := saved_rec
    in
    match f () with
    | x ->
      restore ();
      x
    | exception e ->
      restore ();
      raise e
  in
  match ctx.ctx_rid with
  | Some rid when Reqid.current () <> Some rid -> Reqid.with_id rid run
  | _ -> run ()

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)

let sample_n = Atomic.make 0

let sample_counter = Atomic.make 0

let set_sample_interval n =
  Atomic.set sample_n (max 0 n);
  Atomic.set sample_counter 0

let sample_interval () = Atomic.get sample_n

let sampled () =
  let n = Atomic.get sample_n in
  n > 0 && Atomic.fetch_and_add sample_counter 1 mod n = 0

let install_from_env () =
  match Sys.getenv_opt "EXTRACT_TRACE_SAMPLE" with
  | None -> ()
  | Some v -> (
    let v = String.trim v in
    let tail =
      match String.index_opt v '/' with
      | Some i -> String.sub v (i + 1) (String.length v - i - 1)
      | None -> v
    in
    match int_of_string_opt (String.trim tail) with
    | Some n when n > 0 -> set_sample_interval n
    | _ -> ())

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp_duration s =
  let ns = s *. 1e9 in
  if Float.is_nan ns || ns < 0.0 then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let render spans =
  let buf = Buffer.create 256 in
  let rec go depth s =
    let args =
      match s.args with
      | [] -> ""
      | kvs ->
        "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ "}"
    in
    let label =
      String.make (2 * depth) ' '
      ^ s.name
      ^ args
      ^ (match s.rid with Some rid -> " [" ^ rid ^ "]" | None -> "")
    in
    let pad = max 1 (44 - String.length label) in
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s\n" label (String.make pad ' ') (pp_duration s.duration));
    List.iter (go (depth + 1)) s.children
  in
  List.iter (go 0) spans;
  Buffer.contents buf
