module Deadline = Extract_util.Deadline

type span = {
  name : string;
  start : float;
  duration : float;
  rid : string option;
  children : span list;
}

(* an open span being built; children accumulate reversed *)
(* domain-local — open spans live on the per-domain DLS stack below *)
type building = {
  b_name : string;
  b_start : float;
  b_rid : string option;
  mutable b_children : span list;
}

let on = Atomic.make false

let set_enabled v = Atomic.set on v

let enabled () = Atomic.get on

(* Per-domain open-span stack: parallel snippet workers each trace their
   own subtree without interleaving. *)
let stack_key : building list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Completed roots, across all domains, oldest first (kept reversed). *)
let roots_lock = Mutex.create ()

let roots : span list ref = ref [] (* guarded-by: roots_lock *)

let push_root s =
  Mutex.lock roots_lock;
  roots := s :: !roots;
  Mutex.unlock roots_lock

let finished () =
  Mutex.lock roots_lock;
  let out = List.rev !roots in
  roots := [];
  Mutex.unlock roots_lock;
  out

let clear () =
  Mutex.lock roots_lock;
  roots := [];
  Mutex.unlock roots_lock;
  Domain.DLS.get stack_key := []

let close_span stack b =
  let finished_span =
    {
      name = b.b_name;
      start = b.b_start;
      duration = Deadline.now () -. b.b_start;
      rid = b.b_rid;
      children = List.rev b.b_children;
    }
  in
  (match !stack with
  | top :: _ -> top.b_children <- finished_span :: top.b_children
  | [] -> push_root finished_span);
  finished_span

let with_span name f =
  if not (Atomic.get on) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let b =
      { b_name = name;
        b_start = Deadline.now ();
        b_rid = Reqid.current ();
        b_children = [] }
    in
    stack := b :: !stack;
    let pop () =
      (* unwind even past an exception; tolerate a clear() underneath us *)
      (match !stack with
      | top :: rest when top == b ->
        stack := rest;
        ignore (close_span stack b)
      | _ -> ())
    in
    match f () with
    | x ->
      pop ();
      x
    | exception e ->
      pop ();
      raise e
  end

let pp_duration s =
  let ns = s *. 1e9 in
  if Float.is_nan ns || ns < 0.0 then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let render spans =
  let buf = Buffer.create 256 in
  let rec go depth s =
    let label =
      String.make (2 * depth) ' '
      ^ s.name
      ^ (match s.rid with Some rid -> " [" ^ rid ^ "]" | None -> "")
    in
    let pad = max 1 (44 - String.length label) in
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s\n" label (String.make pad ' ') (pp_duration s.duration));
    List.iter (go (depth + 1)) s.children
  in
  List.iter (go 0) spans;
  Buffer.contents buf
