(** Process-wide metrics registry.

    One registry per process, holding three metric kinds:

    - {e counters} — monotonically increasing integers (requests served,
      cache hits, bytes read);
    - {e gauges} — instantaneous floats (cache occupancy, capacity);
    - {e histograms} — fixed-bucket latency/size distributions with a
      cumulative-bucket readout and estimated percentiles.

    Metrics are identified by a name plus an ordered label list
    ([("stage", "build")]); registering the same identity twice returns
    the same metric, so modules can create their handles at
    initialization time without coordination. Registering an existing
    identity as a different kind raises [Invalid_argument].

    {b Locking.} Every registration, update and render takes one global
    mutex, so {!Extract_snippet.Pipeline.run_parallel} domains and server
    threads can record concurrently without torn reads; renders observe a
    consistent snapshot. Updates are far off any per-node hot loop (they
    fire per stage, per request or per cache probe), so the single lock
    is not a scaling concern.

    The registry has no external dependencies and costs nothing until a
    metric is touched. *)

type counter

type gauge

type histogram

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
(** Register (or fetch) the counter [name] with [labels] (default none). *)

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  histogram
(** Register (or fetch) a histogram. [buckets] are the inclusive upper
    bounds of the finite buckets, strictly increasing; an implicit [+Inf]
    overflow bucket is always appended. Default:
    {!default_latency_buckets}.
    @raise Invalid_argument on empty or non-increasing [buckets], or when
    re-registering an existing histogram with different buckets. *)

val default_latency_buckets : float array
(** 10µs … 10s, roughly logarithmic — suitable for request and stage
    latencies in seconds. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** [add c n] adds [n] (≥ 0; negative deltas raise [Invalid_argument] —
    counters are monotonic). *)

val counter_value : counter -> int

val set : gauge -> float -> unit

val pin : gauge -> float -> unit
(** [pin g v] sets [g] to [v] and marks it pinned: {!reset} restores [v]
    instead of zeroing it. For process facts ({!val-version}, start
    time) that must survive test-isolation resets. Re-pinning replaces
    the pinned value. *)

val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one observation (typically seconds). *)

val histogram_count : histogram -> int

val histogram_sum : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h q] with [0 < q <= 1]: the estimated [q]-quantile,
    linearly interpolated within the bucket that holds the target rank
    (the classic Prometheus [histogram_quantile] estimate). Observations
    in the [+Inf] overflow bucket clamp to the largest finite bound. [0.]
    when the histogram is empty.
    @raise Invalid_argument when [q] is outside [(0, 1]]. *)

val render_prometheus : unit -> string
(** All registered metrics in the Prometheus text exposition format
    ([# HELP]/[# TYPE] per family; histograms as cumulative [_bucket]
    series plus [_sum]/[_count]). Families and series are sorted, so the
    output is deterministic for a given set of values. *)

val render_json : unit -> string
(** The same snapshot as a JSON object:
    [{"counters": [...], "gauges": [...], "histograms": [...]}], each
    entry carrying name, labels and values (histograms: count, sum and
    p50/p95/p99 estimates). *)

val reset : unit -> unit
(** Zero every registered metric's value, keeping registrations (module
    initializers hold metric handles) and restoring pinned gauges (see
    {!pin}). Test isolation only. *)

val version : string
(** The release version baked into [extract_build_info] and reported by
    the CLI. *)
