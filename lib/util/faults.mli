(** Deterministic fault injection.

    Long-running services meet their failure paths in production first
    unless those paths can be forced in tests. This module names the
    places where the system deliberately tolerates failure — persisted
    artifact IO, index loading, each snippet pipeline stage — as {e fault
    points}, and arms them from a single environment variable:

    {v EXTRACT_FAULTS="persist.read:fail,pipeline.snippet:nth=2" v}

    Each entry is [point:spec] where spec is one of

    - [fail] — every pass through the point fails;
    - [once] — only the first pass fails;
    - [nth=K] — only the [K]-th pass fails (1-based);
    - [p=F] or [p=F;seed=N] — each pass fails with probability [F],
      decided by a dedicated {!Prng} stream (deterministic per seed);
    - [crash] or [crash=K] — instead of failing, the process dies on the
      spot with [Unix._exit 137] (every pass, or only the [K]-th): a
      simulated power cut, with no [at_exit] handlers and no buffer
      flushes, indistinguishable from [kill -9] to whatever the process
      was writing. The crash harness and [--chaos] use this to cut power
      mid-update at a named point deterministically.

    Unarmed, a fault point costs a single flag read. Consumers either call
    {!hit} (raise {!Injected} at the point — used where the surrounding
    code already translates exceptions, e.g. {!Extract_store.Persist}
    turns it into [Codec.Corrupt] so the injected failure exercises
    exactly the corrupt-artifact path) or branch on {!should_fail} (used
    by the pipeline to degrade a snippet in place). Counters record how
    often each point was passed and how often it fired, so tests can
    prove a degradation path actually ran.

    The registry of installed points is documented in DESIGN.md §9. *)

exception Injected of string * string
(** [(point, detail)] — raised by {!hit} when the point is due to fail. *)

val env_var : string
(** ["EXTRACT_FAULTS"]. *)

val configure : string -> (unit, string) result
(** Replace the armed fault set with the parsed configuration string
    (empty string clears). On a parse error, everything is disarmed and
    the message names the offending entry. *)

val install_from_env : unit -> unit
(** {!configure} from [EXTRACT_FAULTS] when set; no-op otherwise.
    Entry points (CLI, demo server) call this at startup.
    @raise Invalid_argument when the variable is set but unparsable. *)

val clear : unit -> unit
(** Disarm every fault point. *)

val active : unit -> bool
(** Is any fault point armed? *)

val should_fail : string -> bool
(** [should_fail point] — consult and advance the point's state: [true]
    when this pass should fail. Always [false] for unarmed points. When
    the point is armed with a [crash] spec and due, this call does not
    return: the process exits with {!crash_exit_code} immediately. *)

val crash_exit_code : int
(** [137] (= 128 + SIGKILL): what a [crash]-spec'd point exits with, and
    what a shell reports for a real [kill -9]. Crash harnesses accept
    exactly this status from a child that died at an armed point. *)

val hit : string -> unit
(** Like {!should_fail} but raises {!Injected} when due. *)

val hits : string -> int
(** Passes through the point since it was armed (0 when unarmed). *)

val fired : string -> int
(** Failures injected at the point since it was armed. *)

val configured : unit -> (string * string) list
(** The armed [(point, spec)] pairs, sorted by point. *)
