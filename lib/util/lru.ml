(* Hash table + intrusive doubly linked list, most-recent at the head. *)

(* guarded-by: Sharded_lru.lock — a bare Lru is not thread-safe by design
   (see lru.mli); every shared instance sits behind a Sharded_lru shard *)
type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

(* guarded-by: Sharded_lru.lock — same story as node above *)
type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  {
    cap = capacity;
    table = Hashtbl.create capacity;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap

let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with
  | Some h -> h.prev <- Some node
  | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
    unlink t node;
    push_front t node

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    t.hits <- t.hits + 1;
    touch t node;
    Some node.value
  | None ->
    t.misses <- t.misses + 1;
    None

(* read-only probe: no recency rewiring, no counter updates — safe to
   call while iterating shard statistics without perturbing eviction
   order or hit rates *)
let peek t key =
  match Hashtbl.find_opt t.table key with
  | Some node -> Some node.value
  | None -> None

let mem t key = Hashtbl.mem t.table key

let evict t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    t.evictions <- t.evictions + 1

let put t key value =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    node.value <- value;
    touch t node
  | None ->
    if Hashtbl.length t.table >= t.cap then evict t;
    let node = { key; value; prev = None; next = None } in
    Hashtbl.replace t.table key node;
    push_front t node

let find_or_add t key compute =
  match find t key with
  | Some v -> v
  | None ->
    let v = compute () in
    put t key v;
    v

let remove t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table key
  | None -> ()

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let stats t = t.hits, t.misses

let evictions t = t.evictions
