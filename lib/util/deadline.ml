(* Wall-clock source, monotonized: [Unix.gettimeofday] can step backwards
   (NTP adjustments); clamping to the highest value seen keeps deadlines
   from un-expiring. A test clock can be injected for deterministic
   expiry tests. *)

let test_clock : (unit -> float) option ref = ref None

let monotonic_floor = ref neg_infinity

let now () =
  match !test_clock with
  | Some clock -> clock ()
  | None ->
    let t = Unix.gettimeofday () in
    if t > !monotonic_floor then monotonic_floor := t;
    !monotonic_floor

let set_clock clock = test_clock := clock

(* [infinity] is "never": every comparison against it says not expired,
   and arithmetic keeps it infinite. *)
type t = float

let never = infinity

let is_never t = t = infinity

let after seconds = if seconds = infinity then never else now () +. seconds

let after_ms ms = after (float_of_int ms /. 1000.)

let of_ms_opt = function
  | None -> never
  | Some ms -> after_ms ms

let expired t = (not (is_never t)) && now () >= t

let remaining t = if is_never t then infinity else Float.max 0. (t -. now ())

let remaining_ms t =
  let r = remaining t in
  if r = infinity then max_int else int_of_float (Float.ceil (r *. 1000.))
