(* Wall-clock source, monotonized: [Unix.gettimeofday] can step backwards
   (NTP adjustments); clamping to the highest value seen keeps deadlines
   from un-expiring. A test clock can be injected for deterministic
   expiry tests. *)

(* init-only — the test clock is installed by single-threaded test setup
   before any domain spawns, and read-only afterwards *)
let test_clock : (unit -> float) option ref = ref None

(* Every domain raises the shared floor with a CAS loop: the old
   plain-ref version was a read/write data race once the server pool and
   run_parallel started calling [now] from every domain. *)
let monotonic_floor = Atomic.make neg_infinity

let now () =
  match !test_clock with
  | Some clock -> clock ()
  | None ->
    let t = Unix.gettimeofday () in
    let rec raise_floor () =
      let floor = Atomic.get monotonic_floor in
      if t > floor then
        if Atomic.compare_and_set monotonic_floor floor t then t else raise_floor ()
      else floor
    in
    raise_floor ()

let set_clock clock = test_clock := clock

(* [infinity] is "never": every comparison against it says not expired,
   and arithmetic keeps it infinite. *)
type t = float

let never = infinity

let is_never t = t = infinity

let after seconds = if seconds = infinity then never else now () +. seconds

let after_ms ms = after (float_of_int ms /. 1000.)

let of_ms_opt = function
  | None -> never
  | Some ms -> after_ms ms

let expired t = (not (is_never t)) && now () >= t

let remaining t = if is_never t then infinity else Float.max 0. (t -. now ())

let remaining_ms t =
  let r = remaining t in
  if r = infinity then max_int else int_of_float (Float.ceil (r *. 1000.))
