exception Injected of string * string

let () =
  Printexc.register_printer (function
    | Injected (point, detail) ->
      Some (Printf.sprintf "injected fault at %s (%s)" point detail)
    | _ -> None)

type mode =
  | Always
  | Once
  | Nth of int
  | Prob of float * Prng.t

(* What happens when the point fires: [Fail] is the classic injected
   error (should_fail returns true / hit raises); [Crash] simulates a
   power cut — the process dies on the spot via [Unix._exit 137], no
   at_exit handlers, no buffer flushes, exactly like kill -9. *)
type action =
  | Fail
  | Crash

(* guarded-by: lock — hits/fired (and the Prng inside Prob) are bumped
   from every worker domain once faults are armed *)
type state = {
  mode : mode;
  action : action;
  spec : string; (* the spec as configured, for reporting *)
  mutable hits : int;
  mutable fired : int;
}

let lock = Mutex.create ()

(* guarded-by: lock *)
let table : (string, state) Hashtbl.t = Hashtbl.create 8

let with_lock f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

(* The pipeline consults fault points per result; with nothing configured
   the whole feature must cost one load — hence an Atomic flag in front
   of the mutex-guarded table. *)
let armed = Atomic.make false

let clear () =
  with_lock (fun () -> Hashtbl.reset table);
  Atomic.set armed false

let parse_mode spec =
  let parts = String.split_on_char ';' spec in
  let assoc =
    List.map
      (fun p ->
        match String.index_opt p '=' with
        | None -> p, ""
        | Some i -> String.sub p 0 i, String.sub p (i + 1) (String.length p - i - 1))
      parts
  in
  match assoc with
  | [ ("fail", "") ] -> Ok (Always, Fail)
  | [ ("once", "") ] -> Ok (Once, Fail)
  | [ ("crash", "") ] -> Ok (Always, Crash)
  | [ ("crash", k) ] -> begin
    match int_of_string_opt k with
    | Some k when k >= 1 -> Ok (Nth k, Crash)
    | _ -> Error (Printf.sprintf "bad occurrence %S (want crash or crash=K, K >= 1)" k)
  end
  | [ ("nth", k) ] -> begin
    match int_of_string_opt k with
    | Some k when k >= 1 -> Ok (Nth k, Fail)
    | _ -> Error (Printf.sprintf "bad occurrence %S (want nth=K, K >= 1)" k)
  end
  | ("p", p) :: rest -> begin
    let seed =
      match rest with
      | [] -> Ok 0
      | [ ("seed", s) ] -> begin
        match int_of_string_opt s with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "bad seed %S" s)
      end
      | _ -> Error "bad probability spec (want p=F or p=F;seed=N)"
    in
    match float_of_string_opt p, seed with
    | Some p, Ok seed when p >= 0. && p <= 1. -> Ok (Prob (p, Prng.create seed), Fail)
    | _, Error e -> Error e
    | _, Ok _ -> Error (Printf.sprintf "bad probability %S (want 0 <= p <= 1)" p)
  end
  | _ ->
    Error (Printf.sprintf "unknown fault spec %S (fail|once|nth=K|crash|crash=K|p=F;seed=N)" spec)

let configure config =
  clear ();
  let entries =
    String.split_on_char ',' config |> List.filter (fun s -> String.trim s <> "")
  in
  (* parse everything first, commit under the lock only on full success *)
  let rec parse_entries acc = function
    | [] -> Ok (List.rev acc)
    | entry :: rest -> begin
      let entry = String.trim entry in
      match String.index_opt entry ':' with
      | None -> Error (Printf.sprintf "missing ':' in fault %S (want point:spec)" entry)
      | Some i -> begin
        let point = String.sub entry 0 i in
        let spec = String.sub entry (i + 1) (String.length entry - i - 1) in
        match parse_mode spec with
        | Error e -> Error (Printf.sprintf "%s: %s" point e)
        | Ok (mode, action) -> parse_entries ((point, mode, action, spec) :: acc) rest
      end
    end
  in
  match parse_entries [] entries with
  | Ok parsed ->
    with_lock (fun () ->
        List.iter
          (fun (point, mode, action, spec) ->
            Hashtbl.replace table point { mode; action; spec; hits = 0; fired = 0 })
          parsed);
    Atomic.set armed (parsed <> []);
    Ok ()
  | Error _ as e ->
    clear ();
    e

let env_var = "EXTRACT_FAULTS"

let install_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some config -> begin
    match configure config with
    | Ok () -> ()
    | Error msg -> invalid_arg (Printf.sprintf "%s: %s" env_var msg)
  end

let active () = Atomic.get armed

(* One pass through a fault point: advance the counters and decide.
   [`Crash] is acted on outside the lock — the process is about to die,
   but exiting with the table mutex held would be gratuitously rude to
   any test harness running in-process. *)
let consult point =
  if not (Atomic.get armed) then `Pass
  else
    with_lock (fun () ->
        match Hashtbl.find_opt table point with
        | None -> `Pass
        | Some st ->
          st.hits <- st.hits + 1;
          let fire =
            match st.mode with
            | Always -> true
            | Once -> st.hits = 1
            | Nth k -> st.hits = k
            | Prob (p, prng) -> Prng.float prng 1.0 < p
          in
          if fire then st.fired <- st.fired + 1;
          if not fire then `Pass
          else
            match st.action with
            | Fail -> `Fail
            | Crash -> `Crash)

let crash_exit_code = 137

let should_fail point =
  match consult point with
  | `Pass -> false
  | `Fail -> true
  | `Crash ->
    (* simulated power cut: no at_exit, no flushes — the closest a
       process can get to kill -9 from the inside. 137 = 128 + SIGKILL,
       the code a shell reports for the real thing. *)
    Unix._exit crash_exit_code

let spec_of point =
  with_lock (fun () ->
      match Hashtbl.find_opt table point with
      | Some st -> st.spec
      | None -> "?")

let hit point = if should_fail point then raise (Injected (point, "spec " ^ spec_of point))

let hits point =
  with_lock (fun () ->
      match Hashtbl.find_opt table point with
      | Some st -> st.hits
      | None -> 0)

let fired point =
  with_lock (fun () ->
      match Hashtbl.find_opt table point with
      | Some st -> st.fired
      | None -> 0)

let configured () =
  with_lock (fun () -> Hashtbl.fold (fun point st acc -> (point, st.spec) :: acc) table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
