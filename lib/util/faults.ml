exception Injected of string * string

let () =
  Printexc.register_printer (function
    | Injected (point, detail) ->
      Some (Printf.sprintf "injected fault at %s (%s)" point detail)
    | _ -> None)

type mode =
  | Always
  | Once
  | Nth of int
  | Prob of float * Prng.t

(* guarded-by: lock — hits/fired (and the Prng inside Prob) are bumped
   from every worker domain once faults are armed *)
type state = {
  mode : mode;
  spec : string; (* the spec as configured, for reporting *)
  mutable hits : int;
  mutable fired : int;
}

let lock = Mutex.create ()

(* guarded-by: lock *)
let table : (string, state) Hashtbl.t = Hashtbl.create 8

let with_lock f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

(* The pipeline consults fault points per result; with nothing configured
   the whole feature must cost one load — hence an Atomic flag in front
   of the mutex-guarded table. *)
let armed = Atomic.make false

let clear () =
  with_lock (fun () -> Hashtbl.reset table);
  Atomic.set armed false

let parse_mode spec =
  let parts = String.split_on_char ';' spec in
  let assoc =
    List.map
      (fun p ->
        match String.index_opt p '=' with
        | None -> p, ""
        | Some i -> String.sub p 0 i, String.sub p (i + 1) (String.length p - i - 1))
      parts
  in
  match assoc with
  | [ ("fail", "") ] -> Ok Always
  | [ ("once", "") ] -> Ok Once
  | [ ("nth", k) ] -> begin
    match int_of_string_opt k with
    | Some k when k >= 1 -> Ok (Nth k)
    | _ -> Error (Printf.sprintf "bad occurrence %S (want nth=K, K >= 1)" k)
  end
  | ("p", p) :: rest -> begin
    let seed =
      match rest with
      | [] -> Ok 0
      | [ ("seed", s) ] -> begin
        match int_of_string_opt s with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "bad seed %S" s)
      end
      | _ -> Error "bad probability spec (want p=F or p=F;seed=N)"
    in
    match float_of_string_opt p, seed with
    | Some p, Ok seed when p >= 0. && p <= 1. -> Ok (Prob (p, Prng.create seed))
    | _, Error e -> Error e
    | _, Ok _ -> Error (Printf.sprintf "bad probability %S (want 0 <= p <= 1)" p)
  end
  | _ -> Error (Printf.sprintf "unknown fault spec %S (fail|once|nth=K|p=F;seed=N)" spec)

let configure config =
  clear ();
  let entries =
    String.split_on_char ',' config |> List.filter (fun s -> String.trim s <> "")
  in
  (* parse everything first, commit under the lock only on full success *)
  let rec parse_entries acc = function
    | [] -> Ok (List.rev acc)
    | entry :: rest -> begin
      let entry = String.trim entry in
      match String.index_opt entry ':' with
      | None -> Error (Printf.sprintf "missing ':' in fault %S (want point:spec)" entry)
      | Some i -> begin
        let point = String.sub entry 0 i in
        let spec = String.sub entry (i + 1) (String.length entry - i - 1) in
        match parse_mode spec with
        | Error e -> Error (Printf.sprintf "%s: %s" point e)
        | Ok mode -> parse_entries ((point, mode, spec) :: acc) rest
      end
    end
  in
  match parse_entries [] entries with
  | Ok parsed ->
    with_lock (fun () ->
        List.iter
          (fun (point, mode, spec) ->
            Hashtbl.replace table point { mode; spec; hits = 0; fired = 0 })
          parsed);
    Atomic.set armed (parsed <> []);
    Ok ()
  | Error _ as e ->
    clear ();
    e

let env_var = "EXTRACT_FAULTS"

let install_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some config -> begin
    match configure config with
    | Ok () -> ()
    | Error msg -> invalid_arg (Printf.sprintf "%s: %s" env_var msg)
  end

let active () = Atomic.get armed

let should_fail point =
  Atomic.get armed
  && with_lock (fun () ->
         match Hashtbl.find_opt table point with
         | None -> false
         | Some st ->
           st.hits <- st.hits + 1;
           let fire =
             match st.mode with
             | Always -> true
             | Once -> st.hits = 1
             | Nth k -> st.hits = k
             | Prob (p, prng) -> Prng.float prng 1.0 < p
           in
           if fire then st.fired <- st.fired + 1;
           fire)

let spec_of point =
  with_lock (fun () ->
      match Hashtbl.find_opt table point with
      | Some st -> st.spec
      | None -> "?")

let hit point = if should_fail point then raise (Injected (point, "spec " ^ spec_of point))

let hits point =
  with_lock (fun () ->
      match Hashtbl.find_opt table point with
      | Some st -> st.hits
      | None -> 0)

let fired point =
  with_lock (fun () ->
      match Hashtbl.find_opt table point with
      | Some st -> st.fired
      | None -> 0)

let configured () =
  with_lock (fun () -> Hashtbl.fold (fun point st acc -> (point, st.spec) :: acc) table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
