(** Domain-safe N-way sharded LRU cache.

    {!Lru} is deliberately single-threaded; a multi-domain server that
    shares one cache needs locking, and one global lock would serialize
    every worker on the hottest structure in the process. This wraps [S]
    independent {!Lru} shards, each behind its own mutex, with keys
    routed by [Hashtbl.hash]: an operation locks exactly one shard, so
    workers contend only on hash collisions. Recency is per shard — a
    cheap approximation of global LRU (eviction pressure lands on the
    shard the key hashes to, not on the globally coldest entry), which
    is the standard trade for lock-free-adjacent scaling.

    All operations are linearizable per key (same key → same shard →
    same lock). Cross-shard reads ({!length}, {!stats}, {!shard_stats})
    lock shards one at a time, so they are consistent per shard but only
    approximately consistent across the whole cache under concurrent
    writes — fine for metrics, which is what they are for. *)

type ('k, 'v) t

type shard_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

val create : ?shards:int -> capacity:int -> unit -> ('k, 'v) t
(** [capacity] is the total across shards (split evenly, rounded up);
    [shards] defaults to 8 and is an upper bound — the effective stripe
    width is clamped so every shard holds at least 8 entries (a cache of
    capacity ≤ 15 gets one shard), because tiny shards turn hash
    collisions into spurious evictions. {!shards} reports the effective
    width. @raise Invalid_argument when [shards <= 0] or
    [capacity <= 0]. *)

val shards : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int
(** Total capacity, summed over shards (≥ the requested capacity). *)

val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Refreshes the entry's recency within its shard on a hit. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Like {!find} but promotes nothing and counts nothing. *)

val mem : ('k, 'v) t -> 'k -> bool

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace; evicts the least recently used entry {e of the
    key's shard} when that shard is full. *)

val remove : ('k, 'v) t -> 'k -> unit

val clear : ('k, 'v) t -> unit

val stats : ('k, 'v) t -> int * int
(** (hits, misses) summed over shards. *)

val evictions : ('k, 'v) t -> int
(** Capacity evictions summed over shards. *)

val shard_stats : ('k, 'v) t -> shard_stats array
(** Per-shard counters, index = shard number; uses {!Lru.stats} /
    {!Lru.evictions} / {!Lru.length}, which promote nothing. *)
