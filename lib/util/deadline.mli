(** Monotonic-clock deadlines.

    A deadline is an absolute point on a monotonized wall clock; budgeted
    stages ({!Extract_snippet.Pipeline}, the demo server's request
    handling) carry one and check {!expired} at cheap checkpoints,
    degrading their remaining work instead of failing when the budget runs
    out. The clock never goes backwards even if the system clock steps
    (values are clamped to the highest observation), so an expired
    deadline stays expired.

    Deadlines are plain floats under the hood: creating and checking one
    costs a clock read, nothing is allocated, and {!never} makes the
    expiry check a single comparison — callers thread a deadline
    unconditionally and pass {!never} when unbounded. *)

type t

val never : t
(** The absent deadline: {!expired} is always [false]. *)

val is_never : t -> bool

val after : float -> t
(** [after s] expires [s] seconds from now. *)

val after_ms : int -> t
(** [after_ms ms] expires [ms] milliseconds from now. *)

val of_ms_opt : int option -> t
(** [of_ms_opt (Some ms)] is [after_ms ms]; [None] is {!never}. *)

val expired : t -> bool

val remaining : t -> float
(** Seconds left, clamped to 0; [infinity] for {!never}. *)

val remaining_ms : t -> int
(** Milliseconds left, rounded up; [max_int] for {!never}. *)

val now : unit -> float
(** The deadline clock (seconds; monotonized wall clock, or the injected
    test clock). *)

val set_clock : (unit -> float) option -> unit
(** Inject a deterministic clock for tests ([None] restores the real
    one). Affects every module using deadlines — test use only. *)
