(** Bounded LRU cache.

    The demo server answers repeated queries; caching (query, bound) →
    rendered page keeps hot queries cheap. Plain association of hashable
    keys to values with least-recently-used eviction; O(1) amortized per
    operation (hash table + doubly linked list).

    {b Locking story: not thread-safe, by design.} Every operation —
    including a {!find} hit, which rewires the recency list — mutates
    unsynchronized state, so a bare cache must only ever be driven from
    one thread. Single-threaded callers (the CLI verbs,
    {!Extract_snippet.Pipeline.run_parallel} domains, which never touch a
    cache — they share only the immutable analyzed database) use this
    module directly. The observability counters recorded around cache
    operations take the {!Extract_obs.Registry} mutex themselves and need
    nothing from the cache.

    {b Sharded locking story.} A cache shared across domains (the demo
    server's page and snippet caches under the domain-pool transport)
    must go through {!Sharded_lru}, which routes keys by hash to [S]
    independent [Lru] shards, each behind its own mutex: every operation
    — including {!find}, because of the recency rewiring — runs under
    exactly one shard lock, and workers contend only on hash collisions.
    The per-shard mutex must wrap {e every} entry point of this module;
    {!peek} and the read-only accessors ({!stats}, {!length},
    {!evictions}) mutate nothing but still race against concurrent
    writers, so {!Sharded_lru} locks for those too. Do not add ad-hoc
    locking around a bare [Lru] elsewhere — share through [Sharded_lru]
    so the locking discipline lives in one place. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument when [capacity <= 0]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Refreshes the entry's recency on a hit. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** [find] without promotion: refreshes no recency and counts no
    hit/miss — a pure probe, for code (shard statistics, tests,
    debugging views) that must observe the cache without perturbing
    eviction order. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Does not refresh recency. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace; evicts the least recently used entry when full. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Cached call: on a miss, compute, insert, return. *)

val remove : ('k, 'v) t -> 'k -> unit

val clear : ('k, 'v) t -> unit

val stats : ('k, 'v) t -> int * int
(** (hits, misses) since creation or [clear]. *)

val evictions : ('k, 'v) t -> int
(** Entries evicted by capacity pressure ({!remove} and {!clear} do not
    count) since creation or [clear]. *)
