(** Bounded LRU cache.

    The demo server answers repeated queries; caching (query, bound) →
    rendered page keeps hot queries cheap. Plain association of hashable
    keys to values with least-recently-used eviction; O(1) amortized per
    operation (hash table + doubly linked list).

    {b Locking story: not thread-safe, by design.} Every operation —
    including a {!find} hit, which rewires the recency list — mutates
    unsynchronized state, so a cache must only ever be driven from one
    thread. That is the actual usage today: the demo server handles
    connections sequentially on its accept thread, so its page cache and
    {!Extract_snippet.Snippet_cache} see no concurrency, and
    {!Extract_snippet.Pipeline.run_parallel} domains never touch a cache
    (they share only the immutable analyzed database). The observability
    counters recorded around cache operations take the
    {!Extract_obs.Registry} mutex themselves and need nothing from the
    cache. If a future server shares one cache across domains, wrap every
    call (including {!find}) in a dedicated mutex. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument when [capacity <= 0]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Refreshes the entry's recency on a hit. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Does not refresh recency. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace; evicts the least recently used entry when full. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Cached call: on a miss, compute, insert, return. *)

val remove : ('k, 'v) t -> 'k -> unit

val clear : ('k, 'v) t -> unit

val stats : ('k, 'v) t -> int * int
(** (hits, misses) since creation or [clear]. *)

val evictions : ('k, 'v) t -> int
(** Entries evicted by capacity pressure ({!remove} and {!clear} do not
    count) since creation or [clear]. *)
