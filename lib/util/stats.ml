type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.stddev: empty sample";
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile xs 50.0;
    p90 = percentile xs 90.0;
    p99 = percentile xs 99.0;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
