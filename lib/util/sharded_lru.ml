(* N-way sharded LRU: a mutex-guarded Lru per shard, keys routed by
   hash. Each operation locks exactly one shard, so concurrent domains
   contend only when their keys collide on a shard — with S shards and
   uniform hashing, expected contention drops by S versus one global
   lock, and recency is tracked per shard (an approximation of global
   LRU that costs nothing to maintain). *)

type shard_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

type ('k, 'v) shard = {
  lock : Mutex.t;
  lru : ('k, 'v) Lru.t; (* guarded-by: lock *)
}

type ('k, 'v) t = ('k, 'v) shard array

(* Tiny shards defeat the point: with one- or two-entry shards, any two
   live keys colliding on a shard evict each other even though the cache
   as a whole is nearly empty. Clamp the stripe width so every shard
   holds at least this many entries — small caches silently use fewer
   shards (down to one) rather than becoming collision-evicting sieves. *)
let min_per_shard = 8

let create ?(shards = 8) ~capacity () =
  if shards <= 0 then invalid_arg "Sharded_lru.create: shards must be positive";
  if capacity <= 0 then invalid_arg "Sharded_lru.create: capacity must be positive";
  let shards = max 1 (min shards (capacity / min_per_shard)) in
  (* ceil division: total capacity is at least the requested one *)
  let per_shard = (capacity + shards - 1) / shards in
  Array.init shards (fun _ ->
      { lock = Mutex.create (); lru = Lru.create ~capacity:per_shard })

let shards t = Array.length t

let shard_of t key = t.((Hashtbl.hash key land max_int) mod Array.length t)

let with_shard shard f =
  Mutex.lock shard.lock;
  match f shard.lru with
  | x ->
    Mutex.unlock shard.lock;
    x
  | exception e ->
    Mutex.unlock shard.lock;
    raise e

let find t key = with_shard (shard_of t key) (fun lru -> Lru.find lru key)

let peek t key = with_shard (shard_of t key) (fun lru -> Lru.peek lru key)

let mem t key = with_shard (shard_of t key) (fun lru -> Lru.mem lru key)

let put t key value = with_shard (shard_of t key) (fun lru -> Lru.put lru key value)

let remove t key = with_shard (shard_of t key) (fun lru -> Lru.remove lru key)

let clear t = Array.iter (fun s -> with_shard s Lru.clear) t

let fold_shards t f init =
  Array.fold_left (fun acc s -> with_shard s (fun lru -> f acc lru)) init t

let length t = fold_shards t (fun acc lru -> acc + Lru.length lru) 0

let capacity t = fold_shards t (fun acc lru -> acc + Lru.capacity lru) 0

let stats t =
  fold_shards t
    (fun (h, m) lru ->
      let sh, sm = Lru.stats lru in
      (h + sh, m + sm))
    (0, 0)

let evictions t = fold_shards t (fun acc lru -> acc + Lru.evictions lru) 0

let shard_stats t =
  Array.map
    (fun s ->
      with_shard s (fun lru ->
          let hits, misses = Lru.stats lru in
          {
            hits;
            misses;
            evictions = Lru.evictions lru;
            entries = Lru.length lru;
            capacity = Lru.capacity lru;
          }))
    t
