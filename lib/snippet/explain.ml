module Document = Extract_store.Document
module Result_tree = Extract_search.Result_tree
module Engine = Extract_search.Engine
module Deadline = Extract_util.Deadline
module Reqid = Extract_obs.Reqid
module Capture = Extract_obs.Explain
module Jsonv = Extract_obs.Jsonv

type status =
  | Covered of {
      instance : Document.node;
      tag : string;
      cost : int;
    }
  | Skipped
  | Uncoverable

type entry = {
  rank : int;
  kind : string;
  display : string;
  instances : int;
  feature : (Feature.t * Feature.stats) option;
  status : status;
}

type result_explain = {
  index : int;
  root_tag : string;
  nodes : int;
  degraded : bool;
  bound : int;
  edges_used : int;
  covered_count : int;
  skipped_count : int;
  uncoverable_count : int;
  entries : entry list;
}

type t = {
  request_id : string;
  query : string;
  semantics : string;
  bound : int;
  seconds : float;
  degraded : int;
  sections : (string * Jsonv.t) list;
  results : result_explain list;
}

let kind_of_item = function
  | Ilist.Keyword _ -> "keyword"
  | Ilist.Entity_name _ -> "entity"
  | Ilist.Result_key _ -> "key"
  | Ilist.Dominant_feature _ -> "feature"

(* Each IList entry's fate comes from the selection the greedy pass
   already recorded — chosen instance and marginal cost for covered
   items, or which of the two rejection reasons applied. Ranks identify
   entries: the selector preserves them from the IList. *)
let result_explain_of ~index (sr : Pipeline.snippet_result) =
  let result = sr.Pipeline.result in
  let doc = Result_tree.document result in
  let covered_of rank =
    List.find_opt
      (fun (c : Selector.covered) -> c.Selector.entry.Ilist.rank = rank)
      sr.Pipeline.selection.Selector.covered
  in
  let rank_in entries rank =
    List.exists (fun (e : Ilist.entry) -> e.Ilist.rank = rank) entries
  in
  let entries =
    List.map
      (fun (e : Ilist.entry) ->
        let status =
          match covered_of e.Ilist.rank with
          | Some c ->
            Covered
              {
                instance = c.Selector.instance;
                tag = Document.tag_name doc c.Selector.instance;
                cost = c.Selector.cost;
              }
          | None ->
            if rank_in sr.Pipeline.selection.Selector.uncoverable e.Ilist.rank then
              Uncoverable
            else Skipped
        in
        {
          rank = e.Ilist.rank;
          kind = kind_of_item e.Ilist.item;
          display = Ilist.display e.Ilist.item;
          instances = Array.length e.Ilist.instances;
          feature =
            (match e.Ilist.item with
            | Ilist.Dominant_feature (f, stats) -> Some (f, stats)
            | _ -> None);
          status;
        })
      (Ilist.entries sr.Pipeline.ilist)
  in
  let edges_used =
    List.fold_left
      (fun acc (c : Selector.covered) -> acc + c.Selector.cost)
      0 sr.Pipeline.selection.Selector.covered
  in
  {
    index;
    root_tag = Document.tag_name doc (Result_tree.root result);
    nodes = Result_tree.size result;
    degraded = sr.Pipeline.degraded;
    bound = sr.Pipeline.selection.Selector.bound;
    edges_used;
    covered_count = List.length sr.Pipeline.selection.Selector.covered;
    skipped_count = List.length sr.Pipeline.selection.Selector.skipped;
    uncoverable_count = List.length sr.Pipeline.selection.Selector.uncoverable;
    entries;
  }

let of_results ~request_id ~query ~semantics ~bound ~seconds ~sections results =
  {
    request_id;
    query;
    semantics;
    bound;
    seconds;
    degraded =
      List.fold_left (fun n (s : Pipeline.snippet_result) -> if s.Pipeline.degraded then n + 1 else n) 0 results;
    sections;
    results = List.mapi (fun i sr -> result_explain_of ~index:i sr) results;
  }

let run ?semantics ?config ?bound ?limit ?deadline ?(differentiated = false) ?cache db
    query_string =
  Reqid.ensure (fun request_id ->
      let t0 = Deadline.now () in
      let results, sections =
        Capture.with_capture (fun () ->
            match cache with
            | Some c ->
              Snippet_cache.run ?semantics ?config ?bound ?limit ?deadline c db
                query_string
            | None ->
              if differentiated then
                Pipeline.run_differentiated ?semantics ?config ?bound ?limit ?deadline db
                  query_string
              else Pipeline.run ?semantics ?config ?bound ?limit ?deadline db query_string)
      in
      let t =
        of_results ~request_id ~query:query_string
          ~semantics:
            (Engine.string_of_semantics (Option.value ~default:Engine.Xseek semantics))
          ~bound:(Option.value ~default:Pipeline.default_bound bound)
          ~seconds:(Deadline.now () -. t0)
          ~sections results
      in
      results, t)

(* ------------------------------------------------------------------ *)
(* Renders *)

(* entry JSON stays flat (scalars only) so the pretty render keeps one
   line per IList entry — greppable in cram tests and terminals *)
let entry_json e =
  let base =
    [ "rank", Jsonv.Int e.rank;
      "kind", Jsonv.Str e.kind;
      "display", Jsonv.Str e.display;
      "instances", Jsonv.Int e.instances ]
  in
  let feature =
    match e.feature with
    | None -> []
    | Some (f, stats) ->
      [ "entity", Jsonv.Str f.Feature.entity;
        "attribute", Jsonv.Str f.Feature.attribute;
        "score", Jsonv.Float stats.Feature.score;
        "occurrences", Jsonv.Int stats.Feature.occurrences;
        "type_total", Jsonv.Int stats.Feature.type_total;
        "domain_size", Jsonv.Int stats.Feature.domain_size ]
  in
  let status =
    match e.status with
    | Covered { instance; tag; cost } ->
      [ "status", Jsonv.Str "covered";
        "instance_node", Jsonv.Int instance;
        "instance_tag", Jsonv.Str tag;
        "cost", Jsonv.Int cost ]
    | Skipped -> [ "status", Jsonv.Str "skipped" ]
    | Uncoverable -> [ "status", Jsonv.Str "uncoverable" ]
  in
  Jsonv.Obj (base @ feature @ status)

let result_json r =
  Jsonv.Obj
    [ "result", Jsonv.Int (r.index + 1);
      "root", Jsonv.Str r.root_tag;
      "nodes", Jsonv.Int r.nodes;
      "degraded", Jsonv.Bool r.degraded;
      "bound", Jsonv.Int r.bound;
      "edges_used", Jsonv.Int r.edges_used;
      "covered", Jsonv.Int r.covered_count;
      "skipped", Jsonv.Int r.skipped_count;
      "uncoverable", Jsonv.Int r.uncoverable_count;
      "entries", Jsonv.Arr (List.map entry_json r.entries) ]

let to_json t =
  Jsonv.Obj
    [ "request_id", Jsonv.Str t.request_id;
      "query", Jsonv.Str t.query;
      "semantics", Jsonv.Str t.semantics;
      "bound", Jsonv.Int t.bound;
      "seconds", Jsonv.Float t.seconds;
      "results", Jsonv.Int (List.length t.results);
      "degraded", Jsonv.Int t.degraded;
      "sections", Jsonv.Obj t.sections;
      "result_explains", Jsonv.Arr (List.map result_json t.results) ]

let render_json t = Jsonv.pretty (to_json t)

let entry_text e =
  let status =
    match e.status with
    | Covered { tag; cost; instance } ->
      if cost = 0 then Printf.sprintf "covered free via <%s> #%d" tag instance
      else Printf.sprintf "covered via <%s> #%d (+%d edge%s)" tag instance cost
             (if cost = 1 then "" else "s")
    | Skipped -> "skipped (would overflow bound)"
    | Uncoverable -> "uncoverable (no instance in result)"
  in
  let score =
    match e.feature with
    | Some (_, stats) -> Printf.sprintf " DS=%s" (Jsonv.number stats.Feature.score)
    | None -> ""
  in
  Printf.sprintf "  %2d %-8s %-14s%s — %s" e.rank e.kind e.display score status

let to_text t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "explain %s: %S (%s, bound %d, %d result%s%s, %.1fms)\n" t.request_id
       t.query t.semantics t.bound (List.length t.results)
       (if List.length t.results = 1 then "" else "s")
       (if t.degraded = 0 then "" else Printf.sprintf ", %d degraded" t.degraded)
       (t.seconds *. 1e3));
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "result %d: <%s> %d nodes — %d covered / %d skipped / %d uncoverable, %d/%d edges%s\n"
           (r.index + 1) r.root_tag r.nodes r.covered_count r.skipped_count
           r.uncoverable_count r.edges_used r.bound
           (if r.degraded then " [degraded: baseline snippet, no accounting]" else ""));
      List.iter (fun e -> Buffer.add_string buf (entry_text e ^ "\n")) r.entries)
    t.results;
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "section %s: %s\n" name (Jsonv.to_string v)))
    t.sections;
  Buffer.contents buf

(* compact per-result digest for the slowlog: O(results), not O(entries) *)
let digest_of_results results =
  Jsonv.Arr
    (List.mapi
       (fun i sr ->
         let r = result_explain_of ~index:i sr in
         Jsonv.Obj
           [ "root", Jsonv.Str r.root_tag;
             "covered", Jsonv.Int r.covered_count;
             "items", Jsonv.Int (List.length r.entries);
             "edges", Jsonv.Int r.edges_used;
             "degraded", Jsonv.Bool r.degraded ])
       results)

let digest t =
  Jsonv.Arr
    (List.map
       (fun r ->
         Jsonv.Obj
           [ "root", Jsonv.Str r.root_tag;
             "covered", Jsonv.Int r.covered_count;
             "items", Jsonv.Int (List.length r.entries);
             "edges", Jsonv.Int r.edges_used;
             "degraded", Jsonv.Bool r.degraded ])
       t.results)
