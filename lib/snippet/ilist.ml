module Document = Extract_store.Document
module Node_kind = Extract_store.Node_kind
module Result_tree = Extract_search.Result_tree
module Query = Extract_search.Query
module Tokenizer = Extract_store.Tokenizer
module Inverted_index = Extract_store.Inverted_index

type item =
  | Keyword of string
  | Entity_name of string
  | Result_key of string
  | Dominant_feature of Feature.t * Feature.stats

type entry = {
  item : item;
  rank : int;
  instances : Document.node array;
}

type t = { entries : entry array }

let display = function
  | Keyword k -> k
  | Entity_name e -> e
  | Result_key v -> v
  | Dominant_feature (f, _) -> f.Feature.value

let normalized_display item = Tokenizer.normalize (display item)

(* Entity tag names present in the result with their instances, ordered by
   decreasing instance count (most prominent entity first), ties by tag
   name. *)
let entity_names kinds result =
  let doc = Result_tree.document result in
  let by_tag : (string, Document.node list ref) Hashtbl.t = Hashtbl.create 8 in
  Result_tree.iter_elements result (fun n ->
      if Node_kind.is_entity kinds n then begin
        let tag = Document.tag_name doc n in
        match Hashtbl.find_opt by_tag tag with
        | Some l -> l := n :: !l
        | None -> Hashtbl.add by_tag tag (ref [ n ])
      end);
  Hashtbl.fold (fun tag l acc -> (tag, List.rev !l) :: acc) by_tag []
  |> List.sort (fun (ta, la) (tb, lb) ->
         let ca = List.length la and cb = List.length lb in
         if ca <> cb then Int.compare cb ca else String.compare ta tb)

let keyword_instances ?ctx index result keyword =
  let postings =
    match ctx with
    | Some c -> Extract_search.Eval_ctx.postings c keyword
    | None -> Inverted_index.lookup index keyword
  in
  Result_tree.restrict_matches result postings

(* Dominant features in the order requested by the configuration. The
   dominant set itself (DS > 1 or D = 1) is fixed by the paper's
   definition; only the ranking varies. *)
let ordered_features ?ctx config kinds index result query analysis =
  let dominant = Feature.dominant analysis in
  match config.Config.feature_order with
  | Config.By_dominance -> dominant
  | Config.By_frequency ->
    List.stable_sort
      (fun (_, (a : Feature.stats)) (_, (b : Feature.stats)) ->
        Int.compare b.Feature.occurrences a.Feature.occurrences)
      dominant
  | Config.Query_biased ->
    let bias = Query_bias.make ?ctx kinds index result query in
    List.stable_sort
      (fun (fa, sa) (fb, sb) ->
        Float.compare
          (Query_bias.biased_score bias analysis fb sb)
          (Query_bias.biased_score bias analysis fa sa))
      dominant

let build ?(config = Config.default) ?ctx ?analysis kinds keys index result query =
  let analysis =
    match analysis with
    | Some a -> a
    | None -> Feature.analyze kinds result
  in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let count = ref 0 in
  let add item instances =
    let text = normalized_display item in
    if text <> "" && not (Hashtbl.mem seen text) then begin
      Hashtbl.add seen text ();
      out := { item; rank = !count; instances = Array.of_list instances } :: !out;
      incr count;
      true
    end
    else false
  in
  (* 1. query keywords *)
  List.iter
    (fun k -> ignore (add (Keyword k) (keyword_instances ?ctx index result k)))
    (Query.keywords query);
  (* 2. entity names *)
  if config.Config.include_entity_names then
    List.iter
      (fun (tag, instances) -> ignore (add (Entity_name tag) instances))
      (entity_names kinds result);
  (* 3. result key *)
  if config.Config.include_result_key then begin
    match Result_key.key_of_result keys kinds result query with
    | Some key -> ignore (add (Result_key key.Result_key.value) [ key.Result_key.attribute ])
    | None -> ()
  end;
  (* 4. dominant features *)
  if config.Config.include_features then begin
    let admitted = ref 0 in
    let cap = Option.value ~default:max_int config.Config.max_features in
    List.iter
      (fun (f, stats) ->
        if !admitted < cap
           && add (Dominant_feature (f, stats)) (Feature.instances analysis f)
        then incr admitted)
      (ordered_features ?ctx config kinds index result query analysis)
  end;
  { entries = Array.of_list (List.rev !out) }

let empty = { entries = [||] } (* read-only — shared empty sentinel *)

let entries t = Array.to_list t.entries

let length t = Array.length t.entries

let get t i = t.entries.(i)

let coverable t = entries t |> List.filter (fun e -> Array.length e.instances > 0)

let to_string t = String.concat ", " (List.map (fun e -> display e.item) (entries t))

let pp ppf t = Format.pp_print_string ppf (to_string t)

let reorder_features ~score t =
  (* Stable partition: non-feature entries keep their relative order and
     precede nothing they did not precede before; the feature block is
     re-sorted by the given score, descending. Ranks are renumbered. *)
  let entries = Array.to_list t.entries in
  let fixed, features =
    List.partition
      (fun e ->
        match e.item with
        | Dominant_feature _ -> false
        | Keyword _ | Entity_name _ | Result_key _ -> true)
      entries
  in
  let features =
    List.stable_sort
      (fun a b ->
        match a.item, b.item with
        | Dominant_feature (fa, sa), Dominant_feature (fb, sb) ->
          Float.compare (score fb sb) (score fa sa)
        | _ -> 0)
      features
  in
  let renumbered =
    List.mapi (fun rank e -> { e with rank }) (fixed @ features)
  in
  { entries = Array.of_list renumbered }
