(** Query-level LRU cache of search + snippet results.

    A production snippet service sees the same hot queries over and over;
    re-running search, feature analysis and instance selection for each
    repeat wastes the whole hot path. This cache memoizes complete
    {!Pipeline.run} outputs keyed by (database id, semantics, normalized
    query, bound, limit, config) with LRU eviction
    ({!Extract_util.Lru}). Hit/miss counters are exposed for
    observability; the demo server surfaces them on its stats page.

    One cache may serve several databases: keys embed {!Pipeline.id}.
    Cached values are shared (the same [snippet_result list] is returned
    on every hit) and immutable by construction.

    {b Domain-safe}: the cache is an {!Extract_util.Sharded_lru} — keys
    are routed by hash to independent mutex-guarded shards, so the
    domain-pool server's workers share one cache and contend only on
    hash collisions. The shard lock is not held while a miss runs the
    pipeline: concurrent misses on the same key may compute twice, and
    the last insert wins — both compute the same immutable answer. *)

type t

val create : ?capacity:int -> ?shards:int -> unit -> t
(** [capacity] bounds the total number of cached query entries across
    shards (default 128); [shards] is the lock-striping width (default
    8 — one global lock is [~shards:1]). *)

val run :
  ?semantics:Extract_search.Engine.semantics ->
  ?config:Config.t ->
  ?bound:int ->
  ?limit:int ->
  ?deadline:Extract_util.Deadline.t ->
  t ->
  Pipeline.t ->
  string ->
  Pipeline.snippet_result list
(** Cached {!Pipeline.run}: on a miss, runs the pipeline and stores the
    outcome. The query string is normalized ({!Extract_search.Query}), so
    ["Texas, APPAREL"] and ["texas apparel"] share an entry. An outcome
    containing any [degraded] result is returned but {e not} cached — the
    degradation reflects transient pressure, not the query's answer
    (the deadline is deliberately absent from the key). *)

val stats : t -> int * int
(** (hits, misses) since creation or {!clear}. *)

val hit_rate : t -> float
(** hits / (hits + misses); 0 before any lookup. *)

val length : t -> int

val capacity : t -> int

val evictions : t -> int
(** Entries evicted by capacity pressure since creation or {!clear}. *)

val shard_stats : t -> Extract_util.Sharded_lru.shard_stats array
(** Per-shard hit/miss/eviction/occupancy counters (index = shard); the
    demo server aggregates these into the metrics registry. *)

val clear : t -> unit
