module Document = Extract_store.Document
module Result_tree = Extract_search.Result_tree
module Pretty = Extract_util.Pretty

type t = {
  result : Result_tree.t;
  set : (Document.node, unit) Hashtbl.t;
  mutable elements : int;
}

let create result =
  let set = Hashtbl.create 32 in
  Hashtbl.replace set (Result_tree.root result) ();
  { result; set; elements = 1 }

let copy t = { t with set = Hashtbl.copy t.set }

let result t = t.result

let mem t n = Hashtbl.mem t.set n

let element_count t = t.elements

let edge_count t = t.elements - 1

let check t n =
  let doc = Result_tree.document t.result in
  if not (Result_tree.mem t.result n) || not (Document.is_element doc n) then
    invalid_arg (Printf.sprintf "Snippet_tree: node %d is not a result element" n)

(* The missing element nodes between [n] (inclusive) and the nearest
   snippet member above it, nearest-to-snippet last. Member sets of result
   trees are ancestor-closed, so the walk stays inside the result. *)
let missing_path t n =
  let doc = Result_tree.document t.result in
  let rec up acc n =
    if Hashtbl.mem t.set n then acc
    else begin
      match Document.parent doc n with
      | Some p -> up (n :: acc) p
      | None -> n :: acc
    end
  in
  up [] n

let cost_of t n =
  check t n;
  List.length (missing_path t n)

let add t n =
  check t n;
  let path = missing_path t n in
  List.iter (fun m -> Hashtbl.replace t.set m ()) path;
  t.elements <- t.elements + List.length path;
  path

let remove t path =
  List.iter
    (fun m ->
      if Hashtbl.mem t.set m then begin
        Hashtbl.remove t.set m;
        t.elements <- t.elements - 1
      end)
    path

let nodes t =
  Hashtbl.fold (fun n () acc -> n :: acc) t.set [] |> List.sort Int.compare

let contains_any t instances = Array.exists (fun n -> Hashtbl.mem t.set n) instances

let snippet_children t n =
  Result_tree.children t.result n
  |> List.filter (fun c -> Hashtbl.mem t.set c)

let truncate_value max_value v =
  match max_value with
  | Some cap when cap >= 0 && String.length v > cap ->
    (* cut at a byte boundary; good enough for display *)
    String.sub v 0 cap ^ "…"
  | Some _ | None -> v

let label ?max_value t n =
  let doc = Result_tree.document t.result in
  if Document.has_only_text_children doc n then
    Printf.sprintf "%s \"%s\"" (Document.tag_name doc n)
      (truncate_value max_value (String.trim (Document.immediate_text doc n)))
  else Document.tag_name doc n

let rec pretty_of ?max_value t n =
  Pretty.Node (label ?max_value t n, List.map (pretty_of ?max_value t) (snippet_children t n))

let to_pretty ?max_value t = pretty_of ?max_value t (Result_tree.root t.result)

let render ?max_value t = Pretty.render (to_pretty ?max_value t)

let rec xml_of t n =
  let doc = Result_tree.document t.result in
  let children =
    if Document.has_only_text_children doc n then
      [ Extract_xml.Types.Text (String.trim (Document.immediate_text doc n)) ]
    else List.map (xml_of t) (snippet_children t n)
  in
  Extract_xml.Types.Element { Extract_xml.Types.tag = Document.tag_name doc n; attrs = []; children }

let to_xml t = xml_of t (Result_tree.root t.result)
