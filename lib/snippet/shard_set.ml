module Document = Extract_store.Document
module Codec = Extract_store.Codec
module Envelope = Extract_store.Persist.Envelope
module Snapshot = Extract_store.Snapshot
module Engine = Extract_search.Engine
module Result_tree = Extract_search.Result_tree
module Registry = Extract_obs.Registry
module Trace = Extract_obs.Trace

let queries_total =
  Registry.counter ~help:"Sharded queries executed" "extract_shard_queries_total"

(* One shard: an independently analyzed sub-corpus plus its provenance —
   the contiguous global node-id block its local ids [1..len] came from.
   Local node 0 is the shard's copy of the global root. *)
type shard = {
  db : Pipeline.t;
  global_first : int; (* global id of local node 1 *)
  global_last : int;  (* inclusive *)
}

type t = {
  shards : shard array; (* read-only — built once by split/load_dir, never mutated *)
  root_node_count : int; (* of the original document, for integrity checks *)
}

let shard_count t = Array.length t.shards

let shard_db t i = t.shards.(i).db

let provenance t i = t.shards.(i).global_first, t.shards.(i).global_last

(* ------------------------------------------------------------------ *)
(* Splitting: partition the root's children into contiguous groups of
   roughly equal node weight. Each child subtree is a contiguous
   pre-order block, so a group is one global interval [g0, g1] and the
   shard document is root ^ that block, ids shifted by g0-1. Depths are
   unchanged (the children keep depth 1); parents shift, except the
   group's top-level children which re-parent to the shard root. *)

let split ?(shards = 4) doc =
  let repr = Document.Internal.to_repr doc in
  let n = Array.length repr.Document.Internal.tag in
  let size = repr.Document.Internal.size in
  let children =
    let acc = ref [] in
    let c = ref 1 in
    while !c < n do
      acc := !c :: !acc;
      c := !c + size.(!c)
    done;
    Array.of_list (List.rev !acc)
  in
  let nchildren = Array.length children in
  let k = max 1 (min shards nchildren) in
  (* greedy balanced grouping by node weight *)
  let groups = ref [] in
  let start = ref 0 in
  let remaining = ref (n - 1) in
  for g = 0 to k - 1 do
    let want = !remaining / (k - g) in
    let stop = ref !start in
    let got = ref 0 in
    while
      !stop < nchildren
      && (!got < want || !stop = !start)
      && nchildren - (!stop + 1) >= k - g - 1
    do
      got := !got + size.(children.(!stop));
      incr stop
    done;
    groups := (!start, !stop) :: !groups;
    remaining := !remaining - !got;
    start := !stop
  done;
  let groups = List.rev !groups in
  let make_shard (c_start, c_stop) =
    let g0 = children.(c_start) in
    let g1 =
      let last = children.(c_stop - 1) in
      last + size.(last) - 1
    in
    let len = g1 - g0 + 1 in
    let open Document.Internal in
    let kinds = Bytes.make (len + 1) '\000' in
    Bytes.blit repr.kinds g0 kinds 1 len;
    let tag = Array.make (len + 1) repr.tag.(0) in
    Array.blit repr.tag g0 tag 1 len;
    let parent = Array.make (len + 1) (-1) in
    for i = 0 to len - 1 do
      let p = repr.parent.(g0 + i) in
      parent.(i + 1) <- (if p < g0 then 0 else p - (g0 - 1))
    done;
    let depth = Array.make (len + 1) 0 in
    Array.blit repr.depth g0 depth 1 len;
    let sizes = Array.make (len + 1) (len + 1) in
    Array.blit repr.size g0 sizes 1 len;
    let texts = Array.make (len + 1) "" in
    Array.blit repr.texts g0 texts 1 len;
    let element_count = ref 1 in
    for i = 1 to len do
      if Bytes.get kinds i = '\000' then incr element_count
    done;
    let shard_doc =
      of_repr
        {
          dtd_source = repr.dtd_source;
          tag_names = repr.tag_names;
          kinds;
          tag;
          parent;
          depth;
          size = sizes;
          texts;
          element_count = !element_count;
        }
    in
    { db = Pipeline.build shard_doc; global_first = g0; global_last = g1 }
  in
  { shards = Array.of_list (List.map make_shard groups); root_node_count = n }

(* ------------------------------------------------------------------ *)
(* Mask composition: a global visibility mask (the live store's
   tombstone filter) becomes, per shard, the intersection with that
   shard's global block shifted into local ids — plus the local root,
   which is visible iff the global root is. A shard whose block the mask
   hides entirely gets [[|(0,0)|]] (root only): every posting filtered,
   no results, exactly like the global evaluation of that region. *)

let translate_mask t ~shard mask =
  let { global_first = g0; global_last = g1; _ } = t.shards.(shard) in
  let off = g0 - 1 in
  let root_visible = ref false in
  let acc = ref [] in
  Array.iter
    (fun (lo, hi) ->
      if lo <= 0 && 0 <= hi then root_visible := true;
      let lo = max lo g0 and hi = min hi g1 in
      if lo <= hi then acc := (lo - off, hi - off) :: !acc)
    mask;
  let body = List.rev !acc in
  Array.of_list (if !root_visible then (0, 0) :: body else body)

let to_global t ~shard local =
  if local = 0 then 0 else local + (t.shards.(shard).global_first - 1)

(* ------------------------------------------------------------------ *)
(* Query fan-out *)

type hit = {
  shard : int;
  score : float;
  global_root : int;
  result : Pipeline.snippet_result;
}

(* Run [f] once per shard, one domain per shard beyond the first (the
   caller's domain takes shard 0) — the {!Pipeline.run_parallel}
   pattern. Each [out] slot is written by exactly one domain and the
   joins publish the writes. Spawned shards run under the caller's
   captured trace context, so their [shard.run] spans adopt into the
   parent query span with the caller's rid. *)
let map_shards ~parallel f t =
  let k = Array.length t.shards in
  let out = Array.make k [] in (* domain-local until joined: slot i owned by worker i *)
  let traced i s =
    Trace.with_span ~args:[ ("shard", string_of_int i) ] "shard.run" (fun () ->
        f i s)
  in
  if (not parallel) || k <= 1 then
    Array.iteri (fun i s -> out.(i) <- traced i s) t.shards
  else begin
    let ctx = Trace.capture () in
    let spawned =
      List.init (k - 1) (fun d ->
          let i = d + 1 in
          Domain.spawn (fun () ->
              Trace.with_context ctx (fun () -> out.(i) <- traced i t.shards.(i))))
    in
    out.(0) <- traced 0 t.shards.(0);
    List.iter Domain.join spawned
  end;
  out

let run ?semantics ?config ?bound ?limit ?mask ?deadline ?(parallel = true) t query =
  Registry.incr queries_total;
  let per_shard =
    map_shards ~parallel
      (fun i s ->
        let mask = Option.map (fun m -> translate_mask t ~shard:i m) mask in
        (* results rooted at the shard-local root are dropped: they have
           no counterpart in the unsharded evaluation (documented in the
           mli) *)
        Pipeline.run_ranked ?semantics ?config ?bound ?limit ?mask ?deadline s.db
          query
        |> List.filter (fun (_, r) -> Result_tree.root r.Pipeline.result <> 0))
      t
  in
  Engine.merge_scored ?limit per_shard
  |> List.map (fun (score, (i, r)) ->
         {
           shard = i;
           score;
           global_root = to_global t ~shard:i (Result_tree.root r.Pipeline.result);
           result = r;
         })

(* ------------------------------------------------------------------ *)
(* Persistence: a directory of per-shard v2 snapshots plus a sealed
   manifest recording the provenance intervals. *)

let manifest_magic = "XTRSHRDS"

let manifest_name = "shards.manifest"

let shard_file i = Printf.sprintf "shard-%02d.snap" i

let is_shard_dir path =
  Sys.file_exists path
  && Sys.is_directory path
  && Sys.file_exists (Filename.concat path manifest_name)

let save_dir dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let w = Codec.writer () in
  Codec.write_varint w t.root_node_count;
  Codec.write_varint w (Array.length t.shards);
  Array.iteri
    (fun i s ->
      Codec.write_string w (shard_file i);
      Codec.write_varint w s.global_first;
      Codec.write_varint w s.global_last;
      Snapshot.save
        (Filename.concat dir (shard_file i))
        (Pipeline.document s.db) (Pipeline.index s.db))
    t.shards;
  let sealed = Envelope.seal ~magic:manifest_magic (Codec.contents w) in
  let path = Filename.concat dir manifest_name in
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc sealed);
  Sys.rename tmp path

let load_dir dir =
  let path = Filename.concat dir manifest_name in
  let data = In_channel.with_open_bin path In_channel.input_all in
  if String.length data = 0 then
    raise
      (Codec.Truncated
         (Printf.sprintf
            "%s: empty file (expected a shard manifest artifact with magic %S)"
            path manifest_magic));
  let payload = Envelope.unseal ~magic:manifest_magic ~kind:"shard manifest" data in
  let r = Codec.reader payload in
  let root_node_count = Codec.read_varint r in
  let k = Codec.read_varint r in
  if k <= 0 || k > 4096 then
    raise (Codec.Corrupt (Printf.sprintf "%s: implausible shard count %d" path k));
  let shards =
    Array.init k (fun _ ->
        let file = Codec.read_string r in
        let global_first = Codec.read_varint r in
        let global_last = Codec.read_varint r in
        if Filename.basename file <> file then
          raise (Codec.Corrupt (Printf.sprintf "%s: shard file %S escapes the directory" path file));
        let doc, index = Snapshot.load (Filename.concat dir file) in
        { db = Pipeline.of_parts doc index; global_first; global_last })
  in
  if not (Codec.at_end r) then
    raise (Codec.Corrupt (Printf.sprintf "%s: trailing bytes after shard table" path));
  { shards; root_node_count }
