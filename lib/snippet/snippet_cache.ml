module Sharded_lru = Extract_util.Sharded_lru
module Engine = Extract_search.Engine
module Query = Extract_search.Query
module Registry = Extract_obs.Registry
module Log = Extract_obs.Log
module Capture = Extract_obs.Explain
module Jsonv = Extract_obs.Jsonv

let hits_total =
  Registry.counter ~help:"Cache hits" ~labels:[ "cache", "snippet" ]
    "extract_cache_hits_total"

let misses_total =
  Registry.counter ~help:"Cache misses" ~labels:[ "cache", "snippet" ]
    "extract_cache_misses_total"

type key = {
  db : int;
  semantics : string;
  query : string; (* normalized *)
  bound : int;
  limit : int option;
  config : Config.t option;
}

type t = (key, Pipeline.snippet_result list) Sharded_lru.t

let create ?(capacity = 128) ?(shards = 8) () = Sharded_lru.create ~shards ~capacity ()

let key_of ?semantics ?config ?bound ?limit db query_string =
  {
    db = Pipeline.id db;
    semantics =
      Engine.string_of_semantics (Option.value ~default:Engine.Xseek semantics);
    query = Query.to_string (Query.of_string query_string);
    bound = Option.value ~default:Pipeline.default_bound bound;
    limit;
    config;
  }

(* cache provenance, into both the debug log and the explain capture: a
   hit means the bundle's stage sections are absent because nothing ran *)
let provenance outcome key =
  Log.debug "snippet_cache" [ "outcome", Jsonv.Str outcome; "query", Jsonv.Str key.query ];
  Capture.record "cache" (fun () ->
      Jsonv.Obj [ "outcome", Jsonv.Str outcome; "normalized_query", Jsonv.Str key.query ])

let run ?semantics ?config ?bound ?limit ?deadline t db query_string =
  let key = key_of ?semantics ?config ?bound ?limit db query_string in
  match Sharded_lru.find t key with
  | Some v ->
    Registry.incr hits_total;
    provenance "hit" key;
    v
  | None ->
    Registry.incr misses_total;
    provenance "miss" key;
    (* the shard lock is NOT held while the pipeline runs: two workers
       missing on the same key may both compute, and the second put
       wins — duplicated work beats serializing every miss *)
    let v = Pipeline.run ?semantics ?config ?bound ?limit ?deadline db query_string in
    (* a deadline-starved answer is not the answer — caching it would
       serve degraded snippets long after the pressure has passed *)
    if not (List.exists (fun r -> r.Pipeline.degraded) v) then Sharded_lru.put t key v;
    v

let stats = Sharded_lru.stats

let hit_rate t =
  let hits, misses = Sharded_lru.stats t in
  if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses)

let length = Sharded_lru.length

let capacity = Sharded_lru.capacity

let evictions = Sharded_lru.evictions

let shard_stats = Sharded_lru.shard_stats

let clear = Sharded_lru.clear
