module Document = Extract_store.Document
module Node_kind = Extract_store.Node_kind
module Result_tree = Extract_search.Result_tree

type t = {
  entity : string;
  attribute : string;
  value : string;
}

type stats = {
  occurrences : int;
  type_total : int;
  domain_size : int;
  score : float;
}

(* domain-local — an analysis (and everything hanging off it) is built
   and consumed by the one domain snippeting that result *)
type feature_data = {
  mutable count : int;
  mutable nodes : Document.node list; (* reverse document order *)
  first_seen : int;
}

(* domain-local — see feature_data above *)
type type_data = {
  mutable total : int;
  values : (string, unit) Hashtbl.t;
}

(* domain-local — see feature_data above *)
type analysis = {
  features : (t, feature_data) Hashtbl.t;
  types : (string * string, type_data) Hashtbl.t;
  order : t array; (* first-occurrence order *)
}

let entity_tag_for kinds result node =
  let doc = Result_tree.document result in
  match Node_kind.nearest_entity_ancestor kinds node with
  | Some e when Result_tree.mem result e -> Document.tag_name doc e
  | Some _ | None -> Document.tag_name doc (Result_tree.root result)

let calls = Atomic.make 0

let analyze_calls () = Atomic.get calls

let analyze kinds result =
  Atomic.incr calls;
  let doc = Result_tree.document result in
  let features = Hashtbl.create 64 in
  let types = Hashtbl.create 16 in
  let order = ref [] in
  let seen = ref 0 in
  Result_tree.iter_elements result (fun node ->
      if Node_kind.is_attribute kinds node then begin
        let value = Node_kind.attribute_value kinds node in
        let entity = entity_tag_for kinds result node in
        let attribute = Document.tag_name doc node in
        let f = { entity; attribute; value } in
        (match Hashtbl.find_opt features f with
        | Some data ->
          data.count <- data.count + 1;
          data.nodes <- node :: data.nodes
        | None ->
          Hashtbl.add features f { count = 1; nodes = [ node ]; first_seen = !seen };
          order := f :: !order;
          incr seen);
        let ty = entity, attribute in
        match Hashtbl.find_opt types ty with
        | Some td ->
          td.total <- td.total + 1;
          Hashtbl.replace td.values value ()
        | None ->
          let values = Hashtbl.create 8 in
          Hashtbl.replace values value ();
          Hashtbl.add types ty { total = 1; values }
      end);
  { features; types; order = Array.of_list (List.rev !order) }

let stats_of analysis f =
  match Hashtbl.find_opt analysis.features f with
  | None -> None
  | Some data ->
    (* every recorded feature has its (entity, attribute) type entry *)
    (match Hashtbl.find_opt analysis.types (f.entity, f.attribute) with
    | None -> None
    | Some td ->
      let domain_size = Hashtbl.length td.values in
      let score =
        float_of_int data.count /. (float_of_int td.total /. float_of_int domain_size)
      in
      Some { occurrences = data.count; type_total = td.total; domain_size; score })

let all analysis =
  Array.to_list analysis.order
  |> List.map (fun f ->
         match stats_of analysis f with
         | Some s -> f, s
         | None -> assert false)

let is_dominant s = s.score > 1.0 || s.domain_size = 1

let dominant analysis =
  let indexed =
    all analysis
    |> List.filter (fun (_, s) -> is_dominant s)
    |> List.mapi (fun i fs -> i, fs)
  in
  (* [all] is first-occurrence ordered, so the index is the tiebreak. *)
  List.sort
    (fun (i, (_, sa)) (j, (_, sb)) ->
      if sa.score <> sb.score then Float.compare sb.score sa.score else Int.compare i j)
    indexed
  |> List.map snd

let instances analysis f =
  match Hashtbl.find_opt analysis.features f with
  | None -> []
  | Some data -> List.rev data.nodes

let feature_count analysis = Hashtbl.length analysis.features

let type_count analysis = Hashtbl.length analysis.types

let pp ppf f = Format.fprintf ppf "(%s, %s, %s)" f.entity f.attribute f.value

let pp_stats ppf s =
  Format.fprintf ppf "N=%d N(e,a)=%d D=%d DS=%.2f" s.occurrences s.type_total s.domain_size
    s.score
