type t = {
  results : int;
  frequency : (Feature.t, int) Hashtbl.t;
}

let make analyses =
  let frequency = Hashtbl.create 64 in
  List.iter
    (fun analysis ->
      List.iter
        (fun (f, _) ->
          Hashtbl.replace frequency f (1 + Option.value ~default:0 (Hashtbl.find_opt frequency f)))
        (Feature.all analysis))
    analyses;
  { results = List.length analyses; frequency }

let result_count t = t.results

let result_frequency t f = Option.value ~default:0 (Hashtbl.find_opt t.frequency f)

let distinctiveness t f =
  let rf = result_frequency t f in
  log (float_of_int (1 + t.results) /. float_of_int (1 + rf)) +. 1.0

let compare_feature (a : Feature.t) (b : Feature.t) =
  let c = String.compare a.Feature.entity b.Feature.entity in
  if c <> 0 then c
  else
    let c = String.compare a.Feature.attribute b.Feature.attribute in
    if c <> 0 then c else String.compare a.Feature.value b.Feature.value

(* deterministic readout of the (unordered) frequency table: most
   distinctive first, ties by feature triplet *)
let report t =
  Hashtbl.fold (fun f rf acc -> (f, rf, distinctiveness t f) :: acc) t.frequency []
  |> List.sort (fun (fa, _, da) (fb, _, db) ->
         let c = Float.compare db da in
         if c <> 0 then c else compare_feature fa fb)

let apply t ilist =
  Ilist.reorder_features
    ~score:(fun f stats -> stats.Feature.score *. distinctiveness t f)
    ilist
