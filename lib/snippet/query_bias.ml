module Document = Extract_store.Document
module Node_kind = Extract_store.Node_kind
module Inverted_index = Extract_store.Inverted_index
module Result_tree = Extract_search.Result_tree
module Query = Extract_search.Query

type t = {
  kinds : Node_kind.t;
  result : Result_tree.t;
  hot : (Document.node, unit) Hashtbl.t; (* hot entity instances *)
}

(* The entity instance a match "belongs to": its nearest entity
   ancestor-or-self inside the result. *)
let owning_entity kinds result node =
  let doc = Result_tree.document result in
  let rec up n =
    if Document.is_element doc n && Node_kind.is_entity kinds n then Some n
    else
      match Document.parent doc n with
      | Some p when Result_tree.mem result p -> up p
      | Some _ | None -> None
  in
  up node

let make ?ctx kinds index result query =
  let postings =
    match ctx with
    | Some c -> Extract_search.Eval_ctx.postings c
    | None -> Inverted_index.lookup index
  in
  let hot = Hashtbl.create 32 in
  List.iter
    (fun keyword ->
      List.iter
        (fun m ->
          match owning_entity kinds result m with
          | Some e -> Hashtbl.replace hot e ()
          | None -> ())
        (Result_tree.restrict_matches result (postings keyword)))
    (Query.keywords query);
  { kinds; result; hot }

let hot_entities t =
  Hashtbl.fold (fun n () acc -> n :: acc) t.hot [] |> List.sort Int.compare

let affinity t analysis f =
  match Feature.instances analysis f with
  | [] -> 0.0
  | instances ->
    let hot_count =
      List.length
        (List.filter
           (fun inst ->
             match owning_entity t.kinds t.result inst with
             | Some e -> Hashtbl.mem t.hot e
             | None -> false)
           instances)
    in
    float_of_int hot_count /. float_of_int (List.length instances)

let biased_score t analysis f (stats : Feature.stats) =
  stats.Feature.score *. (1.0 +. affinity t analysis f)
