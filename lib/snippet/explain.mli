(** Explain bundles: why each snippet came out the way it did.

    The paper's pipeline is a chain of per-query decisions — entity
    identification, result-key mining, dominance scoring (§2.3),
    greedy instance selection under the edge bound (§2.4) — and a
    bundle surfaces every one of them for a single query: per IList
    entry, whether it was covered (through which instance, at what
    marginal edge cost), skipped for lack of budget, or uncoverable;
    per dominant feature, its [N(e,a,v)]/[N(e,a)]/[D(e,a)] statistics
    and dominance score; plus the ambient sections recorded below the
    pipeline ({!Extract_obs.Explain}): posting-list sizes, stage
    timings, differentiator distinctiveness, cache provenance.

    Exposed as [extract snippet --explain[=json|text]], the demo
    server's [GET /explain] endpoint, and an expandable panel in
    {!Html_view} pages. *)

module Document = Extract_store.Document

(** The fate of one IList entry in the greedy selection. *)
type status =
  | Covered of {
      instance : Document.node;  (** the instance that covers the item *)
      tag : string;  (** its element tag *)
      cost : int;  (** marginal edges it added (0 = already displayed) *)
    }
  | Skipped  (** coverable, but every instance would overflow the bound *)
  | Uncoverable  (** no instance of the item exists in this result *)

type entry = {
  rank : int;  (** IList position, 0 = most important *)
  kind : string;  (** ["keyword"] | ["entity"] | ["key"] | ["feature"] *)
  display : string;  (** the Fig. 3 display text *)
  instances : int;  (** candidate instances in the result *)
  feature : (Feature.t * Feature.stats) option;
      (** the triplet and dominance statistics, for feature entries *)
  status : status;
}

type result_explain = {
  index : int;  (** 0-based position in the result list *)
  root_tag : string;
  nodes : int;  (** result size in nodes *)
  degraded : bool;
  bound : int;
  edges_used : int;  (** sum of covered costs — edges the snippet spent *)
  covered_count : int;
  skipped_count : int;
  uncoverable_count : int;
  entries : entry list;  (** rank order; empty for degraded results *)
}

type t = {
  request_id : string;  (** the {!Extract_obs.Reqid} of the query *)
  query : string;
  semantics : string;
  bound : int;
  seconds : float;  (** wall clock of the explained run *)
  degraded : int;  (** results served by the baseline snippet *)
  sections : (string * Extract_obs.Jsonv.t) list;
      (** ambient sections in record order: stage timings keyed by span
          name, ["postings"], ["differentiator"], ["cache"] *)
  results : result_explain list;
}

val run :
  ?semantics:Extract_search.Engine.semantics ->
  ?config:Config.t ->
  ?bound:int ->
  ?limit:int ->
  ?deadline:Extract_util.Deadline.t ->
  ?differentiated:bool ->
  ?cache:Snippet_cache.t ->
  Pipeline.t ->
  string ->
  Pipeline.snippet_result list * t
(** Run the pipeline with explain capture on and assemble the bundle.
    Same defaults as {!Pipeline.run}; [~differentiated:true] routes
    through {!Pipeline.run_differentiated} (recording distinctiveness),
    [?cache] through {!Snippet_cache.run} (recording hit/miss — on a
    hit the stage sections are absent because nothing ran). Executes
    under the enclosing {!Extract_obs.Reqid} scope when one is active,
    else a fresh id. *)

val of_results :
  request_id:string ->
  query:string ->
  semantics:string ->
  bound:int ->
  seconds:float ->
  sections:(string * Extract_obs.Jsonv.t) list ->
  Pipeline.snippet_result list ->
  t
(** Assemble a bundle from results produced elsewhere (the server builds
    one around its cache lookup). *)

val result_explain_of : index:int -> Pipeline.snippet_result -> result_explain
(** The per-result accounting alone — {!Html_view}'s explain panel. *)

val to_json : t -> Extract_obs.Jsonv.t

val render_json : t -> string
(** {!to_json}, pretty-printed: one line per IList entry. *)

val to_text : t -> string
(** Terminal form: a header line, one line per result, one indented line
    per IList entry, then the ambient sections. *)

val digest : t -> Extract_obs.Jsonv.t
(** Compact per-result digest (root, covered, items, edges, degraded)
    retained by {!Extract_obs.Slowlog} — O(results), not O(entries). *)

val digest_of_results : Pipeline.snippet_result list -> Extract_obs.Jsonv.t
(** {!digest} without assembling a full bundle first. *)
