(** Cross-result snippet differentiation.

    The paper's first goal (§1) asks snippets to "differentiate [results]
    from one another". The result key carries most of that burden; this
    module adds the rest: when a query returns several results, a dominant
    feature shared by {e every} result (e.g. all retailers sell apparel)
    tells the user nothing about which result to open, while a feature rare
    across results is discriminating.

    Distinctiveness is IDF-shaped: [ln ((1 + R) / (1 + rf)) + 1] where [R]
    is the number of results and [rf] the number of results in which the
    feature appears at all. Applying the differentiator re-ranks each
    result's dominant-feature block by [DS × distinctiveness] — keywords,
    entity names and the key are untouched. With a single result the
    re-ranking is a no-op (all distinctiveness equal). *)

type t

val make : Feature.analysis list -> t
(** [make analyses] over the feature analyses of all results of one
    query. *)

val result_count : t -> int

val result_frequency : t -> Feature.t -> int
(** Number of results whose analysis contains the feature. *)

val distinctiveness : t -> Feature.t -> float
(** >= 1 for features absent from other results; lower the more results
    share the feature. *)

val apply : t -> Ilist.t -> Ilist.t
(** Re-rank the IList's dominant-feature block by [DS × distinctiveness]. *)

val report : t -> (Feature.t * int * float) list
(** Every feature seen across the query's results with its result
    frequency and distinctiveness — most distinctive first, ties broken
    by the feature triplet, so the readout is deterministic. Feeds the
    explain bundle's [differentiator] section. *)
