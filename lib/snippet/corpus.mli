(** Multi-document corpora.

    The demo web site lets the user pick among several XML data sets
    ("movies and stores", §4); a corpus holds several analyzed databases
    under names and runs one query across all of them, merging the hits.
    Cross-document ranking uses each database's own XRank-style scores —
    IDF statistics are per-document, which matches how federated keyword
    search is usually approximated. *)

type t

type hit = {
  source : string;  (** name of the database the hit comes from *)
  score : float;
  snippet : Pipeline.snippet_result;
}

val empty : t

val add : t -> name:string -> Pipeline.t -> t
(** Functional add; replaces any database previously registered under the
    same name. *)

val of_list : (string * Pipeline.t) list -> t

val names : t -> string list
(** Registered names, alphabetical. *)

val find : t -> string -> Pipeline.t option

val size : t -> int

val load_file : ?on_warning:(string -> unit) -> string -> Pipeline.t
(** Load one database from [path], whatever it holds: a bundle written by
    [extract save], a v2 mmap snapshot written by [extract pack], a bare
    binary arena, or XML (dispatch on the leading magic; anything
    unrecognized is parsed as XML). A persisted artifact
    is only a cache of its XML source, so a corrupt one
    ({!Extract_store.Codec.Corrupt}: bad checksum, truncation, injected
    fault) is not fatal when a sibling XML source ([foo.xml] or [foo] next
    to [foo.bundle]) still exists — [on_warning] is told and the database
    is rebuilt from the source. With no sibling to rebuild from, the
    original [Corrupt] is re-raised. *)

val run :
  ?semantics:Extract_search.Engine.semantics ->
  ?config:Config.t ->
  ?bound:int ->
  ?limit:int ->
  ?deadline:Extract_util.Deadline.t ->
  t ->
  string ->
  hit list
(** Search every database, snippet every result, merge and sort by
    decreasing score (ties: source name, then document order). [limit]
    caps the {e merged} list. [deadline] is shared across the member
    databases: once it expires, remaining snippets degrade
    ({!Pipeline.run}). *)
