module Document = Extract_store.Document
module Node_kind = Extract_store.Node_kind
module Key_miner = Extract_store.Key_miner
module Inverted_index = Extract_store.Inverted_index
module Dataguide = Extract_store.Dataguide
module Engine = Extract_search.Engine
module Query = Extract_search.Query
module Result_tree = Extract_search.Result_tree
module Eval_ctx = Extract_search.Eval_ctx
module Deadline = Extract_util.Deadline
module Faults = Extract_util.Faults
module Registry = Extract_obs.Registry
module Trace = Extract_obs.Trace
module Log = Extract_obs.Log
module Reqid = Extract_obs.Reqid
module Capture = Extract_obs.Explain
module Jsonv = Extract_obs.Jsonv

type t = {
  id : int; (* unique per analyzed database; cache keys embed it *)
  doc : Document.t;
  guide : Dataguide.t;
  kinds : Node_kind.t;
  keys : Key_miner.t;
  index : Inverted_index.t;
}

let next_id = Atomic.make 0

(* Stage observer: a seam for opt-in invariant assertions (Extract_check
   installs one when EXTRACT_CHECK is set). No observer, no cost. *)

type observer = {
  on_built : t -> unit;
  on_results : t -> Result_tree.t list -> unit;
  on_snippets : t -> snippet_result list -> unit;
}

and snippet_result = {
  result : Result_tree.t;
  ilist : Ilist.t;
  selection : Selector.selection;
  degraded : bool;
}

(* init-only — installed by Check.install_from_env / test setup before
   any query runs; read-only from the worker domains *)
let observer : observer option ref = ref None

let set_observer o = observer := o

(* ------------------------------------------------------------------ *)
(* Observability: each stage records its latency into one shared
   histogram family (distinguished by the [stage] label) and opens a
   trace span, so `extract snippet --trace` and /metrics read the same
   boundaries the EXTRACT_CHECK observer sees. *)

let stage_histogram stage =
  Registry.histogram ~help:"Pipeline stage latency in seconds"
    ~labels:[ "stage", stage ] "extract_stage_duration_seconds"

let build_seconds = stage_histogram "build"

let search_seconds = stage_histogram "search"

let snippet_seconds = stage_histogram "snippet"

let queries_total =
  Registry.counter ~help:"Keyword queries evaluated (search or full runs)"
    "extract_queries_total"

let degraded_total =
  Registry.counter ~help:"Snippets degraded to the naive baseline"
    "extract_degraded_snippets_total"

let deadline_expired_total =
  Registry.counter ~help:"Per-result budget checks that found the deadline expired"
    "extract_deadline_expirations_total"

let timed hist span f =
  let t0 = Deadline.now () in
  let x = Trace.with_span span f in
  let dt = Deadline.now () -. t0 in
  Registry.observe hist dt;
  Log.debug "stage.done" [ "stage", Jsonv.Str span; "seconds", Jsonv.Float dt ];
  Capture.record span (fun () -> Jsonv.Float dt);
  x

(* Every run variant executes under a request id — the caller's scope
   when one is active (the server stamps one per HTTP request), else a
   fresh id for this call. The same id lands in the stage log lines, the
   trace spans and the explain capture, so one grep correlates them. *)
let query_scope event query_string ~count f =
  Reqid.ensure (fun _rid ->
      let t0 = Deadline.now () in
      match f () with
      | out ->
        (if Log.enabled Log.Info then begin
           let results, degraded = count out in
           Log.info event
             [ "query", Jsonv.Str query_string;
               "results", Jsonv.Int results;
               "degraded", Jsonv.Int degraded;
               "seconds", Jsonv.Float (Deadline.now () -. t0) ]
         end);
        out
      | exception e ->
        Log.warn "query.failed"
          [ "query", Jsonv.Str query_string;
            "error", Jsonv.Str (Printexc.to_string e);
            "seconds", Jsonv.Float (Deadline.now () -. t0) ];
        raise e)

let count_snippets snips =
  ( List.length snips,
    List.fold_left (fun n s -> if s.degraded then n + 1 else n) 0 snips )

let notify_built t =
  (match !observer with Some o -> o.on_built t | None -> ());
  t

let notify_results t results =
  (match !observer with Some o -> o.on_results t results | None -> ());
  results

let notify_snippets t snips =
  (match !observer with Some o -> o.on_snippets t snips | None -> ());
  snips

let build doc =
  timed build_seconds "pipeline.build" (fun () ->
      Faults.hit "pipeline.build";
      let guide = Dataguide.build doc in
      let kinds = Node_kind.classify guide in
      let keys = Key_miner.mine kinds in
      let index = Inverted_index.build doc in
      notify_built { id = Atomic.fetch_and_add next_id 1; doc; guide; kinds; keys; index })

let of_xml_string s = build (Document.load_string s)

let of_file path = build (Document.load_file path)

(* Rebuild everything derivable cheaply (classification, keys) and reuse
   the persisted index. *)
let of_parts doc index =
  timed build_seconds "pipeline.build" (fun () ->
      Faults.hit "pipeline.build";
      let guide = Dataguide.build doc in
      let kinds = Node_kind.classify guide in
      let keys = Key_miner.mine kinds in
      notify_built { id = Atomic.fetch_and_add next_id 1; doc; guide; kinds; keys; index })

let save path t = Extract_store.Persist.save_bundle path t.doc t.index

let load path =
  let doc, index = Extract_store.Persist.load_bundle path in
  of_parts doc index

let save_snapshot path t = Extract_store.Snapshot.save path t.doc t.index

let load_snapshot path =
  let doc, index = Extract_store.Snapshot.load path in
  of_parts doc index

let id t = t.id

let document t = t.doc

let kinds t = t.kinds

let keys t = t.keys

let index t = t.index

let dataguide t = t.guide

let default_bound = 10

let ilist_of ?config t result query =
  Ilist.build ?config t.kinds t.keys t.index result query

let snippet_with ?config ~bound ~ctx t result =
  let query = Eval_ctx.query ctx in
  let ilist = Ilist.build ?config ~ctx t.kinds t.keys t.index result query in
  let selection = Selector.greedy ~bound result ilist in
  { result; ilist; selection; degraded = false }

(* The degradation ladder's bottom rung: when the per-request budget is
   gone (or a fault is injected at [pipeline.snippet]), the result still
   gets a snippet — the O(bound) breadth-first {!Naive_baseline}
   truncation, with no IList and no selection bookkeeping. Cheap enough
   to be safe under any deadline that admitted the search itself. *)
let degraded_snippet ~bound result =
  Registry.incr degraded_total;
  let snippet = Naive_baseline.generate ~bound result in
  {
    result;
    ilist = Ilist.empty;
    selection = { Selector.snippet; covered = []; skipped = []; uncoverable = []; bound };
    degraded = true;
  }

let want_degraded deadline =
  if Deadline.expired deadline then begin
    Registry.incr deadline_expired_total;
    true
  end
  else Faults.should_fail "pipeline.snippet"

let snippet_of ?config ?(bound = default_bound) t result query =
  snippet_with ?config ~bound ~ctx:(Eval_ctx.make t.index query) t result

let context_of ?mask t query_string =
  Faults.hit "pipeline.search";
  Eval_ctx.make ?mask t.index (Query.of_string query_string)

(* Search stage shared by every run variant: one evaluation context, one
   engine pass, one histogram observation and trace span. *)
let searched ?semantics ?limit ?mask t query_string =
  Registry.incr queries_total;
  timed search_seconds "pipeline.search" (fun () ->
      let ctx = context_of ?mask t query_string in
      ctx, notify_results t (Engine.run_ctx ?semantics ?limit ctx t.kinds))

let search ?semantics ?limit ?mask t query_string =
  query_scope "search.done" query_string
    ~count:(fun rs -> List.length rs, 0)
    (fun () ->
      let _, results = searched ?semantics ?limit ?mask t query_string in
      results)

let run_differentiated ?semantics ?config ?(bound = default_bound) ?limit
    ?(deadline = Deadline.never) ?mask t query_string =
  query_scope "query.done" query_string ~count:count_snippets @@ fun () ->
  let ctx, results = searched ?semantics ?limit ?mask t query_string in
  timed snippet_seconds "pipeline.snippet" (fun () ->
      (* one analysis per result, shared between the differentiator and each
         result's IList construction; a result whose analysis would start
         after the deadline degrades instead and takes no part in
         cross-result scoring *)
      let analyses =
        List.map
          (fun r ->
            if want_degraded deadline then r, None else r, Some (Feature.analyze t.kinds r))
          results
      in
      let differ = Differentiator.make (List.filter_map snd analyses) in
      Capture.record "differentiator" (fun () ->
          Jsonv.Arr
            (List.map
               (fun ((f : Feature.t), rf, d) ->
                 Jsonv.Obj
                   [ "entity", Jsonv.Str f.Feature.entity;
                     "attribute", Jsonv.Str f.Feature.attribute;
                     "value", Jsonv.Str f.Feature.value;
                     "result_frequency", Jsonv.Int rf;
                     "distinctiveness", Jsonv.Float d ])
               (Differentiator.report differ)));
      notify_snippets t
        (List.map
           (fun (result, analysis) ->
             match analysis with
             | None -> degraded_snippet ~bound result
             | Some analysis ->
               let ilist =
                 Differentiator.apply differ
                   (Ilist.build ?config ~ctx ~analysis t.kinds t.keys t.index result
                      (Eval_ctx.query ctx))
               in
               let selection = Selector.greedy ~bound result ilist in
               { result; ilist; selection; degraded = false })
           analyses))

let run_ranked ?semantics ?config ?(bound = default_bound) ?limit
    ?(deadline = Deadline.never) ?mask t query_string =
  query_scope "query.done" query_string
    ~count:(fun scored -> count_snippets (List.map snd scored))
  @@ fun () ->
  let ctx, results = searched ?semantics ?mask t query_string in
  let ranker = Extract_search.Ranker.make t.index in
  let ranked =
    Extract_search.Ranker.rank ranker (Eval_ctx.query ctx) results
    |> fun scored ->
    match limit with
    | None -> scored
    | Some k -> List.filteri (fun i _ -> i < k) scored
  in
  let scored =
    timed snippet_seconds "pipeline.snippet" (fun () ->
        List.map
          (fun (result, score) ->
            ( score,
              if want_degraded deadline then degraded_snippet ~bound result
              else snippet_with ?config ~bound ~ctx t result ))
          ranked)
  in
  ignore (notify_snippets t (List.map snd scored));
  scored

let run ?semantics ?config ?(bound = default_bound) ?limit ?(deadline = Deadline.never)
    ?mask t query_string =
  query_scope "query.done" query_string ~count:count_snippets @@ fun () ->
  let ctx, results = searched ?semantics ?limit ?mask t query_string in
  timed snippet_seconds "pipeline.snippet" (fun () ->
      results
      |> List.map (fun result ->
             if want_degraded deadline then degraded_snippet ~bound result
             else snippet_with ?config ~bound ~ctx t result)
      |> notify_snippets t)

(* Per-result snippet generation is embarrassingly parallel: the arena,
   index, classification and evaluation context are immutable after
   construction, and each result's analysis/selection state is local.
   Results are dealt round-robin across domains and reassembled in
   order. *)
let run_parallel ?semantics ?config ?(bound = default_bound) ?limit ?(domains = 4)
    ?(deadline = Deadline.never) ?mask t query_string =
  query_scope "query.done" query_string ~count:count_snippets @@ fun () ->
  let ctx, result_list = searched ?semantics ?limit ?mask t query_string in
  let results = Array.of_list result_list in
  let snippet result =
    if want_degraded deadline then degraded_snippet ~bound result
    else snippet_with ?config ~bound ~ctx t result
  in
  let n = Array.length results in
  let domains = max 1 (min domains n) in
  timed snippet_seconds "pipeline.snippet" (fun () ->
      if domains <= 1 || n <= 1 then
        notify_snippets t (Array.to_list (Array.map snippet results))
      else begin
        let out = Array.make n None in
        let worker d () =
          Trace.with_span ~args:[ ("worker", string_of_int d) ] "pipeline.worker"
            (fun () ->
              let i = ref d in
              while !i < n do
                out.(!i) <- Some (snippet results.(!i));
                i := !i + domains
              done)
        in
        (* spawned workers adopt the caller's span/rid so their spans
           stitch under this query instead of surfacing as orphan roots *)
        let ctx = Trace.capture () in
        let spawned =
          List.init (domains - 1) (fun d ->
              Domain.spawn (fun () -> Trace.with_context ctx (worker (d + 1))))
        in
        worker 0 ();
        List.iter Domain.join spawned;
        notify_snippets t (Array.to_list out |> List.filter_map Fun.id)
      end)
