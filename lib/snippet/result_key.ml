module Document = Extract_store.Document
module Key_miner = Extract_store.Key_miner

type key = {
  entity : Document.node;
  attribute : Document.node;
  value : string;
}

let key_of_result keys kinds result query =
  let doc = Extract_search.Result_tree.document result in
  let candidates =
    Return_entity.return_entities kinds result query
    |> List.sort (fun a b ->
           let da = Document.depth doc a and db = Document.depth doc b in
           if da <> db then Int.compare da db else Int.compare a b)
  in
  List.find_map
    (fun entity ->
      match Key_miner.key_of_instance keys entity with
      | Some (attribute, value)
        when value <> "" && Extract_search.Result_tree.mem result attribute ->
        Some { entity; attribute; value }
      | Some _ | None -> None)
    candidates
