(** Queryable face of the crash-safe live store.

    Wraps {!Extract_store.Live} with analyzed pipelines so a corpus that
    accepts online updates can be searched exactly like a static
    {!Corpus}: one query runs against the masked base arena plus every
    live delta segment, and the merged hits carry member-document names.

    Readers are lock-free — each query reads one atomic snapshot of the
    query view and is untouched by concurrent updates. Updates serialise
    on this module's own writer lock (taken {e before} the store's; the
    store lock is the leaf) and swap in a refreshed view that reuses
    every pipeline whose arena did not change — an add re-analyzes only
    the added document.

    Results whose root is the synthetic corpus root are dropped: an LCA
    that only exists by joining two member documents is not a result of
    either. Scores come from each segment's own ranker, like the static
    corpus's per-database scoring. *)

type t

type hit = {
  source : string;  (** member-document name the hit comes from *)
  score : float;
  snippet : Pipeline.snippet_result;
}

val open_dir : ?read_only:bool -> ?on_warning:(string -> unit) -> string -> t
(** Open and recover a live-store directory
    ({!Extract_store.Live.open_dir}) and analyze its base. *)

val close : t -> unit

val store : t -> Extract_store.Live.t
(** The underlying store — for [extract check] and stats. *)

val generation : t -> int

val names : t -> string list
(** Visible member names, base members first then live additions. *)

val add : t -> name:string -> xml:string -> unit
(** Journalled add/replace ({!Extract_store.Live.add}) plus query-view
    refresh. Raises as the store does on bad XML or a bad name. *)

val remove : t -> string -> bool

val compact : t -> int
(** Fold updates into a new snapshot generation; the base pipeline is
    re-analyzed once. Returns the new generation. *)

val run :
  ?semantics:Extract_search.Engine.semantics ->
  ?config:Config.t ->
  ?bound:int ->
  ?limit:int ->
  ?deadline:Extract_util.Deadline.t ->
  t ->
  string ->
  hit list
(** Search the base (under its visibility mask) and every delta, merge
    and sort by decreasing score (ties: source name, then document
    order). [limit] caps the merged list. *)
