module Engine = Extract_search.Engine
module Query = Extract_search.Query
module Ranker = Extract_search.Ranker

type t = { dbs : (string * Pipeline.t) list (* sorted by name *) }

type hit = {
  source : string;
  score : float;
  snippet : Pipeline.snippet_result;
}

let empty = { dbs = [] }

let add t ~name db =
  let without = List.remove_assoc name t.dbs in
  { dbs = List.sort (fun (a, _) (b, _) -> String.compare a b) ((name, db) :: without) }

let of_list entries = List.fold_left (fun t (name, db) -> add t ~name db) empty entries

let names t = List.map fst t.dbs

let find t name = List.assoc_opt name t.dbs

let size t = List.length t.dbs

let run ?semantics ?config ?bound ?limit t query_string =
  let hits =
    List.concat_map
      (fun (source, db) ->
        let ranker = Ranker.make (Pipeline.index db) in
        let query = Query.of_string query_string in
        Pipeline.run ?semantics ?config ?bound db query_string
        |> List.map (fun (s : Pipeline.snippet_result) ->
               { source; score = Ranker.score ranker query s.Pipeline.result; snippet = s }))
      t.dbs
  in
  let sorted =
    List.stable_sort
      (fun a b ->
        if a.score <> b.score then Float.compare b.score a.score
        else String.compare a.source b.source)
      hits
  in
  match limit with
  | None -> sorted
  | Some k -> List.filteri (fun i _ -> i < k) sorted
