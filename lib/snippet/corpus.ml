module Engine = Extract_search.Engine
module Query = Extract_search.Query
module Ranker = Extract_search.Ranker

type t = { dbs : (string * Pipeline.t) list (* sorted by name *) }

type hit = {
  source : string;
  score : float;
  snippet : Pipeline.snippet_result;
}

let empty = { dbs = [] }

let add t ~name db =
  let without = List.remove_assoc name t.dbs in
  { dbs = List.sort (fun (a, _) (b, _) -> String.compare a b) ((name, db) :: without) }

let of_list entries = List.fold_left (fun t (name, db) -> add t ~name db) empty entries

let names t = List.map fst t.dbs

let find t name = List.assoc_opt name t.dbs

let size t = List.length t.dbs

(* ------------------------------------------------------------------ *)
(* Loading: accept an XML file, a binary arena, or a bundle written by
   [extract save], dispatching on the leading magic. A corrupt persisted
   artifact is not fatal when its XML source is still around: warn and
   rebuild from the source instead — the artifact is only ever a cache of
   the XML. *)

let sniff path =
  let ic = open_in_bin path in
  let head =
    try really_input_string ic (min (in_channel_length ic) 16)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  Extract_store.Persist.sniff_magic head

let load_artifact path magic =
  if magic = Extract_store.Persist.bundle_magic then Some (Pipeline.load path)
  else if magic = Extract_store.Persist.magic then
    Some (Pipeline.build (Extract_store.Persist.load path))
  else if magic = Extract_store.Snapshot.magic then Some (Pipeline.load_snapshot path)
  else None

(* candidate XML sources for a corrupt artifact: `foo.bundle` → `foo.xml`,
   then bare `foo` *)
let xml_siblings path =
  let base = Filename.remove_extension path in
  List.filter (fun p -> p <> path && Sys.file_exists p) [ base ^ ".xml"; base ]

let load_file ?(on_warning = fun _ -> ()) path =
  let rebuild_or_reraise reason original =
    match xml_siblings path with
    | source :: _ ->
      on_warning
        (Printf.sprintf "corrupt artifact %s (%s); rebuilding from %s" path reason source);
      Pipeline.of_file source
    | [] -> raise original
  in
  match sniff path with
  | None -> Pipeline.of_file path
  | Some magic -> (
    match load_artifact path magic with
    | None -> Pipeline.of_file path
    | Some db -> db
    | exception (Extract_store.Codec.Corrupt reason as e) -> rebuild_or_reraise reason e
    | exception (Extract_store.Codec.Truncated reason as e) ->
      rebuild_or_reraise ("truncated: " ^ reason) e)

let run ?semantics ?config ?bound ?limit ?deadline t query_string =
  let hits =
    List.concat_map
      (fun (source, db) ->
        let ranker = Ranker.make (Pipeline.index db) in
        let query = Query.of_string query_string in
        Pipeline.run ?semantics ?config ?bound ?deadline db query_string
        |> List.map (fun (s : Pipeline.snippet_result) ->
               { source; score = Ranker.score ranker query s.Pipeline.result; snippet = s }))
      t.dbs
  in
  let sorted =
    List.stable_sort
      (fun a b ->
        if a.score <> b.score then Float.compare b.score a.score
        else String.compare a.source b.source)
      hits
  in
  match limit with
  | None -> sorted
  | Some k -> List.filteri (fun i _ -> i < k) sorted
