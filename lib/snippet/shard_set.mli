(** Multi-document sharding: split one corpus into N independently
    analyzed shards, fan a query out over them (one domain per shard) and
    merge the ranked answers.

    A shard is built from a contiguous group of the global root's child
    subtrees: shard-local node 0 is a copy of the global root, local ids
    [1..len] are the global block [[global_first, global_last]] shifted
    down, so provenance is two integers per shard and translating a
    result root back to a global node id is one addition
    ({!to_global}). Depths, tags and texts are unchanged; only parents
    shift (the group's top-level children re-parent to the shard root).

    Divergence from unsharded evaluation, by design: results rooted at
    the shard-local root are dropped — such a root stands for only part
    of the real document root, so its subtree (and any snippet built
    from it) would silently miss the other shards' content. Queries
    whose only connection runs through the global root therefore return
    fewer results than {!Pipeline.run_ranked} on the whole corpus;
    everything rooted strictly below the top-level children is
    identical (test suite [shard.equivalence]).

    Persistence is a directory: one v2 {!Extract_store.Snapshot} per
    shard plus a sealed manifest ([shards.manifest], magic
    ["XTRSHRDS"]) recording each shard's file and provenance interval —
    so a sharded corpus cold-starts as N O(1) mappings. *)

type t

val split : ?shards:int -> Pipeline.Document.t -> t
(** Partition [doc] into at most [shards] (default 4) shards of roughly
    equal node weight, analyzing and indexing each
    ({!Pipeline.build}). The shard count is clamped to the number of
    top-level children; a document with one child yields one shard. *)

val shard_count : t -> int

val shard_db : t -> int -> Pipeline.t

val provenance : t -> int -> int * int
(** [(global_first, global_last)] — the inclusive global node-id block
    shard [i]'s local ids [1..] map onto. *)

val to_global : t -> shard:int -> int -> int
(** Translate a shard-local node id to the global id (local 0 — the
    copied root — maps to global 0). *)

val translate_mask : t -> shard:int -> (int * int) array -> (int * int) array
(** Project a global visibility mask (see {!Extract_search.Eval_ctx})
    onto one shard: intersect with the shard's block, shift to local
    ids, and keep the local root visible iff the global root is. A mask
    that hides the whole block yields [[|(0, 0)|]] — every posting
    filtered, no results, matching the global evaluation of that
    region. *)

type hit = {
  shard : int;
  score : float;
  global_root : int; (** the result root translated via {!to_global} *)
  result : Pipeline.snippet_result;
}

val run :
  ?semantics:Extract_search.Engine.semantics ->
  ?config:Config.t ->
  ?bound:int ->
  ?limit:int ->
  ?mask:(int * int) array ->
  ?deadline:Extract_util.Deadline.t ->
  ?parallel:bool ->
  t ->
  string ->
  hit list
(** Fan the query out — one {!Pipeline.run_ranked} per shard, each on
    its own domain when [parallel] (default [true]; the caller's domain
    takes shard 0) — and k-way merge the ranked lists
    ({!Extract_search.Engine.merge_scored}): best first, ties toward
    the lower shard index, identical output sequential or parallel.
    [mask] is a global-id mask, translated per shard. [limit] bounds
    both each shard's work and the merged answer. [deadline] is passed
    to every shard's pipeline run, so a sharded query degrades on
    budget exhaustion exactly like a flat one. When tracing, each shard
    records a [shard.run{shard=i}] span adopted under the caller's open
    span with the caller's request id ({!Extract_obs.Trace.capture}). *)

(** {1 Persistence} *)

val save_dir : string -> t -> unit
(** Write [dir/shards.manifest] plus one [dir/shard-NN.snap] v2 snapshot
    per shard. Creates [dir] if missing; the manifest is written last
    (temp + rename), so a complete manifest implies complete shards. *)

val load_dir : string -> t
(** Load a directory written by {!save_dir}: maps every shard snapshot
    ({!Extract_store.Snapshot.load}) and re-derives the cheap analysis
    ({!Pipeline.of_parts}).
    @raise Extract_store.Codec.Corrupt on a damaged manifest or
    snapshot, and [Codec.Truncated] on an empty manifest (path and
    magic named). *)

val is_shard_dir : string -> bool
(** [true] iff [path] is a directory containing [shards.manifest]. *)
