(** The Snippet Information List (IList, paper §2 and Fig. 3).

    The IList ranks the information a snippet should try to cover, most
    important first:

    + the query keywords (query order);
    + the names of entities involved in the result (§2.1,
      self-containment), most frequent entity first;
    + the key of the query result (§2.2, distinguishability);
    + the dominant features by decreasing dominance score (§2.3,
      representativeness).

    Items whose display text duplicates an earlier item are dropped (the
    paper's Fig. 3 lists "retailer" once although it is both a keyword and
    an entity name). Each entry carries the node instances of the result
    that cover it; the Instance Selector chooses among them. *)

module Document = Extract_store.Document

type item =
  | Keyword of string
  | Entity_name of string
  | Result_key of string
  | Dominant_feature of Feature.t * Feature.stats

type entry = {
  item : item;
  rank : int;  (** position in the IList, 0 = most important *)
  instances : Document.node array;
      (** result element nodes covering the item, document order; covering
          a node implies displaying it (and its ancestors) in the snippet *)
}

type t

val build :
  ?config:Config.t ->
  ?ctx:Extract_search.Eval_ctx.t ->
  ?analysis:Feature.analysis ->
  Extract_store.Node_kind.t ->
  Extract_store.Key_miner.t ->
  Extract_store.Inverted_index.t ->
  Extract_search.Result_tree.t ->
  Extract_search.Query.t ->
  t
(** With [ctx], keyword posting lists are taken from the per-query
    evaluation context instead of re-resolved; with [analysis], the
    precomputed {!Feature.analyze} of this result is reused instead of
    running the analysis again (the differentiated pipeline computes it
    once per result for cross-result scoring). *)

val empty : t
(** No entries — the IList of a degraded (deadline-expired) snippet,
    which never ran the analysis that would have produced one. *)

val entries : t -> entry list

val length : t -> int

val get : t -> int -> entry

val coverable : t -> entry list
(** Entries with at least one instance. *)

val display : item -> string
(** The text of the item as shown in Fig. 3 ("Texas", "clothes",
    "Brook Brothers", "Houston", …). *)

val to_string : t -> string
(** Comma-separated display texts — the Fig. 3 rendition. *)

val reorder_features : score:(Feature.t -> Feature.stats -> float) -> t -> t
(** Re-rank only the dominant-feature block by a replacement score
    (descending), keeping keywords, entity names and the key in place and
    renumbering ranks. Used by {!Differentiator} and ablations. *)

val pp : Format.formatter -> t -> unit
