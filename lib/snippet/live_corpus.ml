module Live = Extract_store.Live
module Document = Extract_store.Document
module Query = Extract_search.Query
module Ranker = Extract_search.Ranker
module Result_tree = Extract_search.Result_tree

type hit = {
  source : string;
  score : float;
  snippet : Pipeline.snippet_result;
}

(* The query-side mirror of a {!Live.view}: the same arenas wrapped as
   analyzed pipelines, swapped atomically so queries never lock. *)
(* read-only — a qview is built privately in [refresh] and never
   mutated after [Atomic.set] publishes it; updates build a fresh one *)
type qview = {
  generation : int;
  doc : Document.t; (* the base arena this view was built from *)
  base : Pipeline.t;
  mask : (int * int) array;
  members : (string * Document.node) list; (* visible, in document order *)
  deltas : (string * Pipeline.t) list;
}

type t = {
  store : Live.t;
  lock : Mutex.t; (* update-path serialisation; taken before Live's own lock *)
  qview : qview Atomic.t;
}

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

(* Rebuild the query view from the store's current view, reusing the
   previous view's pipelines when the underlying arenas are unchanged —
   the base survives every add/remove (only compaction replaces it), and
   deltas are append-mostly. *)
let refresh ?previous (view : Live.view) =
  let reuse_base =
    match previous with
    | Some prev when prev.doc == view.Live.doc -> Some prev.base
    | Some _ | None -> None
  in
  let base =
    match reuse_base with
    | Some base -> base
    | None -> Pipeline.of_parts view.Live.doc view.Live.index
  in
  let previous_deltas = match previous with Some prev -> prev.deltas | None -> [] in
  let deltas =
    List.map
      (fun (name, (d : Live.delta)) ->
        let reused =
          List.find_opt
            (fun (n, db) ->
              String.equal n name && Pipeline.document db == d.Live.delta_doc)
            previous_deltas
        in
        match reused with
        | Some (_, db) -> name, db
        | None -> name, Pipeline.of_parts d.Live.delta_doc d.Live.delta_index)
      view.Live.deltas
  in
  let visible =
    List.filter
      (fun (name, _) -> not (List.exists (String.equal name) view.Live.tombstones))
      view.Live.members
  in
  {
    generation = view.Live.generation;
    doc = view.Live.doc;
    base;
    mask = Live.mask view;
    members = visible;
    deltas;
  }

let open_dir ?read_only ?on_warning dir =
  let store = Live.open_dir ?read_only ?on_warning dir in
  { store; lock = Mutex.create (); qview = Atomic.make (refresh (Live.view store)) }

let store t = t.store

let generation t = (Atomic.get t.qview).generation

let names t =
  let q = Atomic.get t.qview in
  List.map fst q.members @ List.map fst q.deltas

let close t = Live.close t.store

let resync t =
  Atomic.set t.qview (refresh ~previous:(Atomic.get t.qview) (Live.view t.store))

let add t ~name ~xml =
  with_lock t (fun () ->
      Live.add t.store ~name ~xml;
      resync t)

let remove t name =
  with_lock t (fun () ->
      let existed = Live.remove t.store name in
      if existed then resync t;
      existed)

let compact t =
  with_lock t (fun () ->
      let generation = Live.compact t.store in
      resync t;
      generation)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

(* Which member subtree a base-arena result root falls in. The synthetic
   corpus root (node 0) is no member's node: an SLCA that lands there
   spans several documents and is dropped — members are independent
   documents that happen to share an arena. *)
let member_of q root =
  List.find_opt
    (fun (_, member_root) ->
      member_root <= root && root <= Document.subtree_last q.doc member_root)
    q.members

let run ?semantics ?config ?bound ?limit ?deadline t query_string =
  let q = Atomic.get t.qview in
  let query = Query.of_string query_string in
  let scored_hits db source_of results =
    let ranker = Ranker.make (Pipeline.index db) in
    List.filter_map
      (fun (s : Pipeline.snippet_result) ->
        match source_of s with
        | None -> None
        | Some source ->
          Some { source; score = Ranker.score ranker query s.Pipeline.result; snippet = s })
      results
  in
  let base_hits =
    if Array.length q.mask = 0 then []
    else
      Pipeline.run ?semantics ?config ?bound ?deadline ~mask:q.mask q.base query_string
      |> scored_hits q.base (fun s ->
             match member_of q (Result_tree.root s.Pipeline.result) with
             | Some (name, _) -> Some name
             | None -> None)
  in
  let delta_hits =
    List.concat_map
      (fun (name, db) ->
        Pipeline.run ?semantics ?config ?bound ?deadline db query_string
        |> scored_hits db (fun _ -> Some name))
      q.deltas
  in
  let sorted =
    List.stable_sort
      (fun a b ->
        if a.score <> b.score then Float.compare b.score a.score
        else String.compare a.source b.source)
      (base_hits @ delta_hits)
  in
  match limit with
  | None -> sorted
  | Some k -> List.filteri (fun i _ -> i < k) sorted
