module Document = Extract_store.Document
module Result_tree = Extract_search.Result_tree

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shared nested-list renderer over any (label, children) tree view. *)
let rec render_node buf ~label ~children node =
  Buffer.add_string buf "<li>";
  Buffer.add_string buf (label node);
  (match children node with
  | [] -> ()
  | kids ->
    Buffer.add_string buf "<ul>";
    List.iter (render_node buf ~label ~children) kids;
    Buffer.add_string buf "</ul>");
  Buffer.add_string buf "</li>"

let labelled_tree ~class_ ~root ~label ~children =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "<ul class=\"%s\">" class_);
  render_node buf ~label ~children root;
  Buffer.add_string buf "</ul>";
  Buffer.contents buf

let doc_label doc n =
  if Document.has_only_text_children doc n then
    Printf.sprintf "<span class=\"tag\">%s</span> <span class=\"value\">%s</span>"
      (escape (Document.tag_name doc n))
      (escape (String.trim (Document.immediate_text doc n)))
  else Printf.sprintf "<span class=\"tag\">%s</span>" (escape (Document.tag_name doc n))

let snippet_to_html snippet =
  let result = Snippet_tree.result snippet in
  let doc = Result_tree.document result in
  labelled_tree ~class_:"snippet" ~root:(Result_tree.root result)
    ~label:(doc_label doc)
    ~children:(fun n ->
      Result_tree.children result n
      |> List.filter (fun c -> Document.is_element doc c && Snippet_tree.mem snippet c))

let result_tree_to_html result =
  let doc = Result_tree.document result in
  labelled_tree ~class_:"result" ~root:(Result_tree.root result) ~label:(doc_label doc)
    ~children:(fun n ->
      Result_tree.children result n |> List.filter (Document.is_element doc))

let css =
  {|
  body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; }
  h1 { font-size: 1.3rem; }
  .meta { color: #555; margin-bottom: 1.5rem; }
  .hit { border: 1px solid #ddd; border-radius: 6px; padding: 0.8rem 1rem; margin: 1rem 0; }
  ul.snippet, ul.result, ul.snippet ul, ul.result ul { list-style: none; padding-left: 1.2rem;
    border-left: 1px dotted #bbb; margin: 0.2rem 0; }
  .tag { color: #14548c; font-weight: 600; }
  .value { color: #222; }
  .ilist { font-size: 0.85rem; color: #666; margin-top: 0.5rem; }
  .degraded { color: #a05a00; background: #fff3e0; border-radius: 4px;
    padding: 0 0.4rem; font-size: 0.8rem; margin-left: 0.5rem; }
  details { margin-top: 0.6rem; }
  summary { cursor: pointer; color: #14548c; }
  details.explain table { border-collapse: collapse; font-size: 0.85rem; margin-top: 0.4rem; }
  details.explain th, details.explain td { border: 1px solid #ddd; padding: 0.15rem 0.5rem;
    text-align: left; }
  details.explain th { background: #f4f7fa; font-weight: 600; }
  .st-covered { color: #1b6e1b; }
  .st-skipped { color: #a05a00; }
  .st-uncoverable { color: #888; }
|}

(* The expandable per-result explain panel: one table row per IList
   entry with its dominance score and selection fate. *)
let explain_panel ~index (r : Pipeline.snippet_result) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "<details class=\"explain\"><summary>explain</summary>";
  if r.Pipeline.degraded then
    Buffer.add_string buf
      "<p class=\"st-skipped\">degraded: baseline snippet, no IList accounting</p>"
  else begin
    let ex = Explain.result_explain_of ~index r in
    Buffer.add_string buf
      (Printf.sprintf "<p>%d covered &middot; %d skipped &middot; %d uncoverable &middot; %d/%d edges used</p>"
         ex.Explain.covered_count ex.Explain.skipped_count ex.Explain.uncoverable_count
         ex.Explain.edges_used ex.Explain.bound);
    Buffer.add_string buf
      "<table><tr><th>#</th><th>kind</th><th>item</th><th>DS</th><th>outcome</th></tr>";
    List.iter
      (fun (e : Explain.entry) ->
        let score =
          match e.Explain.feature with
          | Some (_, stats) -> Printf.sprintf "%.2f" stats.Feature.score
          | None -> ""
        in
        let cls, outcome =
          match e.Explain.status with
          | Explain.Covered { tag; cost; _ } ->
            ( "st-covered",
              if cost = 0 then Printf.sprintf "covered free via &lt;%s&gt;" (escape tag)
              else Printf.sprintf "covered via &lt;%s&gt; (+%d)" (escape tag) cost )
          | Explain.Skipped -> "st-skipped", "skipped"
          | Explain.Uncoverable -> "st-uncoverable", "uncoverable"
        in
        Buffer.add_string buf
          (Printf.sprintf
             "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td class=\"%s\">%s</td></tr>"
             e.Explain.rank e.Explain.kind (escape e.Explain.display) score cls outcome))
      ex.Explain.entries;
    Buffer.add_string buf "</table>"
  end;
  Buffer.add_string buf "</details>";
  Buffer.contents buf

let result_page ?(title = "eXtract") ~query ~bound results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">";
  Buffer.add_string buf (Printf.sprintf "<title>%s</title>" (escape title));
  Buffer.add_string buf (Printf.sprintf "<style>%s</style></head><body>" css);
  let degraded_count =
    List.length (List.filter (fun r -> r.Pipeline.degraded) results)
  in
  Buffer.add_string buf
    (Printf.sprintf "<h1>%s</h1><p class=\"meta\">query: <b>%s</b> &middot; %d result(s) &middot; snippet bound: %d edges%s</p>"
       (escape title) (escape query) (List.length results) bound
       (if degraded_count = 0 then ""
        else Printf.sprintf " &middot; %d degraded snippet(s)" degraded_count));
  List.iteri
    (fun i (r : Pipeline.snippet_result) ->
      Buffer.add_string buf "<div class=\"hit\">";
      Buffer.add_string buf
        (Printf.sprintf "<div class=\"rank\">result %d%s</div>" (i + 1)
           (if r.Pipeline.degraded then
              "<span class=\"degraded\" title=\"deadline expired: baseline snippet\">degraded</span>"
            else ""));
      Buffer.add_string buf (snippet_to_html r.Pipeline.selection.Selector.snippet);
      Buffer.add_string buf
        (Printf.sprintf "<div class=\"ilist\">IList: %s</div>"
           (escape (Ilist.to_string r.Pipeline.ilist)));
      Buffer.add_string buf (explain_panel ~index:i r);
      Buffer.add_string buf "<details><summary>complete query result</summary>";
      Buffer.add_string buf (result_tree_to_html r.Pipeline.result);
      Buffer.add_string buf "</details></div>")
    results;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

let write_page ~path ?title ~query ~bound results =
  let oc = open_out_bin path in
  (try output_string oc (result_page ?title ~query ~bound results)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
