(** End-to-end driver: the whole Fig. 4 architecture behind two calls.

    [build] runs the offline side — Data Analyzer (dataguide, star
    inference, node classification), key mining, Index Builder. [run]
    executes the online side for one query: search engine → per-result
    IList (Return Entity Identifier, Query Result Key Identifier, Dominant
    Feature Identifier) → Instance Selector → snippet trees. *)

module Document = Extract_store.Document

type t
(** An analyzed, indexed database. *)

val build : Document.t -> t

val of_xml_string : string -> t
(** Parse, analyze and index an XML string. *)

val of_file : string -> t

val save : string -> t -> unit
(** Persist the arena and the inverted index as one bundle
    ({!Extract_store.Persist.save_bundle}); classification and keys are
    rebuilt on {!load} (they are cheap and fully derived). *)

val load : string -> t
(** Load a bundle written by {!save}.
    @raise Extract_store.Codec.Corrupt on malformed input. *)

val of_parts : Document.t -> Extract_store.Inverted_index.t -> t
(** Analyze an arena that already has its index (what {!load} does after
    decoding, and how {!Live_corpus} wraps the live store's segments):
    classification and keys are derived, the given index is reused. *)

val save_snapshot : string -> t -> unit
(** Persist as a v2 mmap snapshot ({!Extract_store.Snapshot.save}) —
    [extract pack]'s format. Unlike {!save}, {!load_snapshot} maps the
    arena instead of decoding it, so cold-start is O(1) in the corpus. *)

val load_snapshot : string -> t
(** Map a snapshot written by {!save_snapshot}; the cheap analysis is
    re-derived like {!load}.
    @raise Extract_store.Codec.Corrupt on structural damage. *)

val id : t -> int
(** Unique id of this analyzed database (process-wide, assigned at
    {!build}/{!load}). {!Snippet_cache} keys embed it so one cache can
    serve several databases without collisions. *)

val document : t -> Document.t

val kinds : t -> Extract_store.Node_kind.t

val keys : t -> Extract_store.Key_miner.t

val index : t -> Extract_store.Inverted_index.t

val dataguide : t -> Extract_store.Dataguide.t

type snippet_result = {
  result : Extract_search.Result_tree.t;
  ilist : Ilist.t;
  selection : Selector.selection;
  degraded : bool;
      (** [true] when the per-request deadline expired (or a
          ["pipeline.snippet"] fault fired) before this result's turn: the
          snippet is the cheap {!Naive_baseline} truncation, [ilist] is
          {!Ilist.empty} and [selection] carries no coverage accounting.
          Callers surface this rather than failing the whole request. *)
}

(** {1 Stage observation}

    A seam for opt-in invariant assertions at pipeline stage boundaries:
    {!Extract_check.Check.install_from_env} installs an observer when the
    [EXTRACT_CHECK] environment variable is set. With no observer
    installed (the default) the hooks cost one reference read. *)

type observer = {
  on_built : t -> unit;
      (** After {!build}/{!load}: the analyzed database is complete. *)
  on_results : t -> Extract_search.Result_tree.t list -> unit;
      (** After the search engine, before snippet generation. *)
  on_snippets : t -> snippet_result list -> unit;
      (** After snippet generation, before results are returned. *)
}

val set_observer : observer option -> unit
(** Install (or with [None] remove) the process-wide stage observer. *)

val default_bound : int
(** 10 edges, the demo's default ballpark. *)

(** {1 Deadlines}

    Every run variant takes an optional [?deadline]
    ({!Extract_util.Deadline.t}, default {!Extract_util.Deadline.never}).
    The deadline is checked once per result, before that result's snippet
    work starts: results reached after expiry degrade to the
    {!Naive_baseline} snippet (tagged [degraded = true]) instead of
    aborting the request. A request therefore always returns one snippet
    per search result — the tail of the list just gets cheaper snippets
    when the budget runs out. *)

val run :
  ?semantics:Extract_search.Engine.semantics ->
  ?config:Config.t ->
  ?bound:int ->
  ?limit:int ->
  ?deadline:Extract_util.Deadline.t ->
  ?mask:(int * int) array ->
  t ->
  string ->
  snippet_result list
(** [run t query_string] — the full demo interaction of Fig. 5. Defaults:
    XSeek semantics, [default_bound], no result limit, no deadline. One
    {!Extract_search.Eval_ctx} is built per call: every keyword's posting
    list is resolved exactly once and shared by the engine, IList
    construction and query-biased scoring. [mask] (here and on every run
    variant) restricts evaluation to visible node-id intervals — see
    {!Extract_search.Eval_ctx.make}; the live corpus passes the interval
    set that hides tombstoned members. *)

val run_parallel :
  ?semantics:Extract_search.Engine.semantics ->
  ?config:Config.t ->
  ?bound:int ->
  ?limit:int ->
  ?domains:int ->
  ?deadline:Extract_util.Deadline.t ->
  ?mask:(int * int) array ->
  t ->
  string ->
  snippet_result list
(** Like {!run}, with per-result snippet generation spread over [domains]
    OCaml domains (default 4, clamped to the result count). The analyzed
    database is immutable and shared; outputs are identical to {!run} and
    in the same order. Worth it when many large results are snippeted at
    once — see bench E19. *)

val run_ranked :
  ?semantics:Extract_search.Engine.semantics ->
  ?config:Config.t ->
  ?bound:int ->
  ?limit:int ->
  ?deadline:Extract_util.Deadline.t ->
  ?mask:(int * int) array ->
  t ->
  string ->
  (float * snippet_result) list
(** Like {!run} but results come ranked by the XRank-style score (best
    first), and [limit] keeps the top-scored results rather than the first
    in document order. *)

val run_differentiated :
  ?semantics:Extract_search.Engine.semantics ->
  ?config:Config.t ->
  ?bound:int ->
  ?limit:int ->
  ?deadline:Extract_util.Deadline.t ->
  ?mask:(int * int) array ->
  t ->
  string ->
  snippet_result list
(** Like {!run}, but after building every result's IList the
    {!Differentiator} re-ranks dominant features by cross-result
    distinctiveness, so the snippets of a multi-result answer emphasize
    what sets each result apart. {!Feature.analyze} runs exactly once per
    result: the same analysis feeds the differentiator and that result's
    IList. Degraded results take no part in cross-result scoring. *)

val search :
  ?semantics:Extract_search.Engine.semantics ->
  ?limit:int ->
  ?mask:(int * int) array ->
  t ->
  string ->
  Extract_search.Result_tree.t list
(** Search only (no snippets). *)

val snippet_of :
  ?config:Config.t ->
  ?bound:int ->
  t ->
  Extract_search.Result_tree.t ->
  Extract_search.Query.t ->
  snippet_result
(** Snippet generation for one externally produced query result — the
    paper's orthogonality claim: results may come from any engine. *)

val ilist_of :
  ?config:Config.t ->
  t ->
  Extract_search.Result_tree.t ->
  Extract_search.Query.t ->
  Ilist.t
