module Result_tree = Extract_search.Result_tree
module Query = Extract_search.Query
module Tokenizer = Extract_store.Tokenizer

type snippet = {
  window : string list;
  keyword_hits : int;
  start_offset : int;
}

let window_for_bound bound = max 1 (2 * bound)

let generate ~window_tokens result query =
  if window_tokens <= 0 then invalid_arg "Text_baseline.generate: window must be positive";
  let tokens = Array.of_list (Tokenizer.tokens (Result_tree.text_of result)) in
  let n = Array.length tokens in
  let keywords = Query.keywords query in
  let w = min window_tokens (max n 1) in
  if n = 0 then { window = []; keyword_hits = 0; start_offset = 0 }
  else begin
    (* Sliding window with per-keyword counts: O(n·k) worst case but k is
       tiny; counts make leaving tokens O(1). *)
    let counts = Hashtbl.create 8 in
    let distinct = ref 0 in
    let enter tok =
      if List.mem tok keywords then begin
        let c = Option.value ~default:0 (Hashtbl.find_opt counts tok) in
        if c = 0 then incr distinct;
        Hashtbl.replace counts tok (c + 1)
      end
    in
    let leave tok =
      if List.mem tok keywords then begin
        (* only tokens previously entered ever leave the window *)
        match Hashtbl.find_opt counts tok with
        | None -> ()
        | Some c ->
          if c = 1 then decr distinct;
          Hashtbl.replace counts tok (c - 1)
      end
    in
    let best_start = ref 0 and best_hits = ref (-1) in
    for i = 0 to n - 1 do
      enter tokens.(i);
      if i >= w then leave tokens.(i - w);
      if i >= w - 1 then begin
        let start = i - w + 1 in
        if !distinct > !best_hits then begin
          best_hits := !distinct;
          best_start := start
        end
      end
    done;
    if !best_hits < 0 then begin
      (* text shorter than the window *)
      best_hits := !distinct;
      best_start := 0
    end;
    {
      window = Array.to_list (Array.sub tokens !best_start (min w (n - !best_start)));
      keyword_hits = max !best_hits 0;
      start_offset = !best_start;
    }
  end

let covers s token =
  let tok = Tokenizer.normalize token in
  tok <> "" && List.mem tok s.window

let to_string s =
  let body = String.concat " " s.window in
  if s.start_offset > 0 then "… " ^ body ^ " …" else body ^ " …"
