(** Features and dominance scores — the Dominant Feature Identifier
    (paper §2.3).

    A feature is a triplet [(e, a, v)]: entity name [e] has attribute [a]
    with value [v], e.g. [(store, city, Houston)]. [(e, a)] is the feature's
    type. Within one query result [R]:

    - [N(e,a,v)] — occurrences of the feature in [R];
    - [N(e,a)] — total value occurrences of the type in [R];
    - [D(e,a)] — distinct values of the type in [R];
    - dominance score [DS(f,R) = N(e,a,v) / (N(e,a) / D(e,a))] — the
      feature's frequency normalized by the average frequency of its type.

    A feature is {e dominant} when [DS > 1], or trivially when
    [D(e,a) = 1] (a type with a single value, paper's exception).

    The entity of an attribute instance is its nearest entity ancestor that
    belongs to the result; attribute instances with no entity ancestor in
    the result are attributed to the result root's tag (a result rooted at
    a connection node still has summarizable features). *)

type t = {
  entity : string;     (** entity tag name [e] *)
  attribute : string;  (** attribute tag name [a] *)
  value : string;      (** trimmed text value [v] *)
}

type stats = {
  occurrences : int;   (** N(e,a,v) *)
  type_total : int;    (** N(e,a) *)
  domain_size : int;   (** D(e,a) *)
  score : float;       (** DS *)
}

type analysis

val analyze : Extract_store.Node_kind.t -> Extract_search.Result_tree.t -> analysis

val analyze_calls : unit -> int
(** Number of {!analyze} invocations since program start (monotone,
    atomic). Instrumentation hook: the tests assert that pipeline runs
    analyze each result exactly once. *)

val all : analysis -> (t * stats) list
(** Every feature of the result, ordered by first occurrence. *)

val dominant : analysis -> (t * stats) list
(** Dominant features, by decreasing score; ties broken by first
    occurrence in the result. *)

val stats_of : analysis -> t -> stats option

val is_dominant : stats -> bool

val instances : analysis -> t -> Extract_store.Document.node list
(** Attribute element nodes of the result carrying this feature, document
    order. *)

val feature_count : analysis -> int

val type_count : analysis -> int
(** Distinct feature types [(e, a)]. *)

val pp : Format.formatter -> t -> unit
(** [(store, city, Houston)]. *)

val pp_stats : Format.formatter -> stats -> unit
