module Document = Extract_store.Document

type outcome = {
  selection : Selector.selection;
  exact : bool;
  steps : int;
}

type best = {
  mutable count : int;
  mutable choices : (Ilist.entry * Document.node * int) list; (* covered items *)
  mutable found : bool;
}

let solve ?(max_steps = 2_000_000) ~bound result ilist =
  if bound < 0 then invalid_arg "Optimal.solve: negative bound";
  let entries = Array.of_list (Ilist.coverable ilist) in
  let uncoverable =
    List.filter (fun (e : Ilist.entry) -> Array.length e.instances = 0) (Ilist.entries ilist)
  in
  let n = Array.length entries in
  let snippet = Snippet_tree.create result in
  let best = { count = -1; choices = []; found = false } in
  let steps = ref 0 in
  let truncated = ref false in
  (* choices on the current path, most recent first *)
  let rec explore i covered acc =
    incr steps;
    if !steps > max_steps then truncated := true
    else if i >= n then begin
      if covered > best.count then begin
        best.count <- covered;
        best.choices <- List.rev acc;
        best.found <- true
      end
    end
    else if covered + (n - i) <= best.count then () (* bound: cannot beat best *)
    else begin
      let entry = entries.(i) in
      (* try each instance, cheapest first for better pruning *)
      let costed =
        Array.to_list entry.instances
        |> List.map (fun inst -> Snippet_tree.cost_of snippet inst, inst)
        |> List.sort (fun (ca, ia) (cb, ib) ->
               if ca <> cb then Int.compare ca cb else Int.compare ia ib)
      in
      List.iter
        (fun (cost, inst) ->
          if (not !truncated) && Snippet_tree.edge_count snippet + cost <= bound then begin
            let added = Snippet_tree.add snippet inst in
            explore (i + 1) (covered + 1) ((entry, inst, cost) :: acc);
            Snippet_tree.remove snippet added
          end)
        costed;
      (* or skip the item *)
      if not !truncated then explore (i + 1) covered acc
    end
  in
  explore 0 0 [];
  (* Rebuild the best snippet deterministically. *)
  let final = Snippet_tree.create result in
  let covered =
    List.map
      (fun (entry, instance, _) ->
        let added = Snippet_tree.add final instance in
        { Selector.entry; instance; cost = List.length added })
      best.choices
  in
  let covered_set = Hashtbl.create 16 in
  List.iter (fun (c : Selector.covered) -> Hashtbl.replace covered_set c.entry.rank ()) covered;
  let skipped =
    List.filter
      (fun (e : Ilist.entry) ->
        Array.length e.instances > 0 && not (Hashtbl.mem covered_set e.rank))
      (Ilist.entries ilist)
  in
  {
    selection = { Selector.snippet = final; covered; skipped; uncoverable; bound };
    exact = not !truncated;
    steps = !steps;
  }
