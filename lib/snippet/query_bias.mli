(** Query-biased feature scoring (companion paper direction).

    The dominance score of §2.3 is query-independent: it summarizes the
    result as a whole. The companion SIGMOD'08 paper ("Query Biased Snippet
    Generation in XML Search") additionally biases the selection toward the
    query. This module implements that bias at feature granularity: an
    entity instance is {e hot} when its subtree-or-self contains a keyword
    match; a feature's affinity is the fraction of its instances attached
    to hot entities. The biased score is [DS × (1 + affinity)], so features
    that co-occur with what the user asked about rank above equally
    dominant but query-unrelated ones. *)

type t

val make :
  ?ctx:Extract_search.Eval_ctx.t ->
  Extract_store.Node_kind.t ->
  Extract_store.Inverted_index.t ->
  Extract_search.Result_tree.t ->
  Extract_search.Query.t ->
  t
(** With [ctx], keyword posting lists come from the per-query evaluation
    context (resolved once per query) instead of fresh index lookups. *)

val hot_entities : t -> Extract_store.Document.node list
(** Entity instances of the result containing a keyword match, document
    order. *)

val affinity : t -> Feature.analysis -> Feature.t -> float
(** In [0, 1]; 0 when the feature has no instance (or no hot entity
    exists). *)

val biased_score : t -> Feature.analysis -> Feature.t -> Feature.stats -> float
(** [stats.score × (1 + affinity)]. *)
