type limits = {
  max_depth : int;
  max_nodes : int;
  max_token_len : int;
}

let default_limits = { max_depth = 512; max_nodes = 50_000_000; max_token_len = 1_000_000 }

let unlimited = { max_depth = max_int; max_nodes = max_int; max_token_len = max_int }

(* Mutable budget shared by one parse; [nodes] counts elements and text
   nodes alike so the arena the document becomes is what is bounded. *)
type budget = {
  limits : limits;
  mutable nodes : int;
}

let spend_node lx b =
  b.nodes <- b.nodes + 1;
  if b.nodes > b.limits.max_nodes then
    Lexer.fail lx "document exceeds max_nodes (%d)" b.limits.max_nodes

let check_token lx b what token =
  if String.length token > b.limits.max_token_len then
    Lexer.fail lx "%s longer than max_token_len (%d bytes)" what b.limits.max_token_len

let rec parse_element lx ~keep_whitespace ~budget ~depth =
  (* after '<' *)
  if depth > budget.limits.max_depth then
    Lexer.fail lx "element nesting exceeds max_depth (%d)" budget.limits.max_depth;
  spend_node lx budget;
  let tag = Lexer.take_name lx in
  check_token lx budget "element name" tag;
  let attrs = Markup.parse_attributes lx in
  List.iter
    (fun (a : Types.attribute) ->
      check_token lx budget "attribute name" a.Types.name;
      check_token lx budget "attribute value" a.Types.value)
    attrs;
  Lexer.skip_whitespace lx;
  if Lexer.eat lx "/>" then { Types.tag; attrs; children = [] }
  else begin
    Lexer.expect lx ">";
    let children = parse_content lx ~keep_whitespace ~budget ~depth ~parent:tag in
    { Types.tag; attrs; children }
  end

and parse_content lx ~keep_whitespace ~budget ~depth ~parent =
  let children = ref [] in
  let text_buf = Buffer.create 16 in
  let check_text () =
    if Buffer.length text_buf > budget.limits.max_token_len then
      Lexer.fail lx "text run longer than max_token_len (%d bytes)" budget.limits.max_token_len
  in
  let flush_text () =
    if Buffer.length text_buf > 0 then begin
      let s = Buffer.contents text_buf in
      Buffer.clear text_buf;
      if keep_whitespace || not (Markup.is_blank s) then begin
        spend_node lx budget;
        children := Types.Text s :: !children
      end
    end
  in
  let rec loop () =
    match Lexer.peek lx with
    | None -> Lexer.fail lx "unterminated element <%s>" parent
    | Some '<' ->
      if Lexer.looking_at lx "</" then begin
        flush_text ();
        Lexer.expect lx "</";
        let close = Lexer.take_name lx in
        Lexer.skip_whitespace lx;
        Lexer.expect lx ">";
        if close <> parent then
          Lexer.fail lx "mismatched closing tag: expected </%s>, found </%s>" parent close
      end
      else if Lexer.eat lx "<!--" then begin
        Markup.skip_comment lx;
        loop ()
      end
      else if Lexer.eat lx "<![CDATA[" then begin
        let data = Lexer.take_until lx "]]>" in
        Lexer.expect lx "]]>";
        Buffer.add_string text_buf data;
        check_text ();
        loop ()
      end
      else if Lexer.eat lx "<?" then begin
        Markup.skip_pi lx;
        loop ()
      end
      else begin
        flush_text ();
        Lexer.expect lx "<";
        let e = parse_element lx ~keep_whitespace ~budget ~depth:(depth + 1) in
        children := Types.Element e :: !children;
        loop ()
      end
    | Some '&' ->
      Lexer.advance lx;
      Buffer.add_string text_buf (Markup.parse_reference lx);
      check_text ();
      loop ()
    | Some c ->
      Lexer.advance lx;
      Buffer.add_char text_buf c;
      check_text ();
      loop ()
  in
  loop ();
  List.rev !children

let parse_document ?(keep_whitespace = false) ?(limits = default_limits) input =
  let lx = Lexer.of_string input in
  let budget = { limits; nodes = 0 } in
  let dtd = Markup.parse_prolog lx in
  Lexer.expect lx "<";
  (match Lexer.peek lx with
  | Some c when Lexer.is_name_start c -> ()
  | _ -> Lexer.fail lx "expected the root element");
  let root = parse_element lx ~keep_whitespace ~budget ~depth:1 in
  Markup.skip_misc lx;
  if not (Lexer.at_end lx) then Lexer.fail lx "trailing content after the root element";
  { Types.dtd; root }

let parse ?keep_whitespace ?limits input =
  Types.Element (parse_document ?keep_whitespace ?limits input).root

let parse_file ?keep_whitespace ?limits path =
  let ic = open_in_bin path in
  let content =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  parse_document ?keep_whitespace ?limits content
