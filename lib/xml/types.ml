type attribute = { name : string; value : string }

type t =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : attribute list;
  children : t list;
}

type document = {
  dtd : string option;
  root : element;
}

let element ?(attrs = []) tag children =
  Element { tag; attrs = List.map (fun (name, value) -> { name; value }) attrs; children }

let text s = Text s

let leaf tag value = element tag [ text value ]

let tag = function
  | Element e -> Some e.tag
  | Text _ -> None

let child_elements e =
  List.filter_map
    (function
      | Element c -> Some c
      | Text _ -> None)
    e.children

let find_child e tag = List.find_opt (fun c -> c.tag = tag) (child_elements e)

let find_children e tag = List.filter (fun c -> c.tag = tag) (child_elements e)

let rec text_content = function
  | Text s -> s
  | Element e -> String.concat "" (List.map text_content e.children)

let immediate_text e =
  String.concat ""
    (List.filter_map
       (function
         | Text s -> Some s
         | Element _ -> None)
       e.children)

let attr e name =
  List.find_map (fun a -> if a.name = name then Some a.value else None) e.attrs

let rec count_nodes = function
  | Text _ -> 1
  | Element e -> 1 + List.fold_left (fun acc c -> acc + count_nodes c) 0 e.children

let rec count_elements = function
  | Text _ -> 0
  | Element e -> 1 + List.fold_left (fun acc c -> acc + count_elements c) 0 e.children

let rec equal a b =
  match a, b with
  | Text x, Text y -> String.equal x y
  | Element x, Element y ->
    String.equal x.tag y.tag && x.attrs = y.attrs
    && List.length x.children = List.length y.children
    && List.for_all2 equal x.children y.children
  | Text _, Element _ | Element _, Text _ -> false

(* Dedicated structural order for XML trees: Element before Text, then
   tag, attributes (name, value) and children lexicographically.
   Consistent with {!equal}. *)
let compare_attribute (a : attribute) (b : attribute) =
  let c = String.compare a.name b.name in
  if c <> 0 then c else String.compare a.value b.value

let rec compare_tree x y =
  match x, y with
  | Element a, Element b ->
    let c = String.compare a.tag b.tag in
    if c <> 0 then c
    else begin
      let c = List.compare compare_attribute a.attrs b.attrs in
      if c <> 0 then c else List.compare compare_tree a.children b.children
    end
  | Text a, Text b -> String.compare a b
  | Element _, Text _ -> -1
  | Text _, Element _ -> 1

let compare = compare_tree

let rec pp ppf = function
  | Text s -> Format.fprintf ppf "%S" s
  | Element e ->
    Format.fprintf ppf "@[<hov 1><%s" e.tag;
    List.iter (fun a -> Format.fprintf ppf " %s=%S" a.name a.value) e.attrs;
    if e.children = [] then Format.fprintf ppf "/>"
    else begin
      Format.fprintf ppf ">";
      List.iter (fun c -> Format.fprintf ppf "%a" pp c) e.children;
      Format.fprintf ppf "</%s>" e.tag
    end;
    Format.fprintf ppf "@]"
