type attribute_decl = {
  att_name : string;
  att_type : string;
  att_default : string;
}

type t = {
  order : string list; (* element names in declaration order, reversed *)
  models : (string, Content_model.t) Hashtbl.t;
  attlists : (string, attribute_decl list) Hashtbl.t;
}

(* read-only — the shared no-DTD sentinel; its tables are never written *)
let empty = { order = []; models = Hashtbl.create 1; attlists = Hashtbl.create 1 }

let rep_of lx =
  if Lexer.eat lx "?" then Content_model.Opt
  else if Lexer.eat lx "*" then Content_model.Star
  else if Lexer.eat lx "+" then Content_model.Plus
  else Content_model.Once

(* children ::= (choice | seq) ('?' | '*' | '+')? — after the opening '('. *)
let rec parse_group lx =
  Lexer.skip_whitespace lx;
  let first = parse_cp lx in
  Lexer.skip_whitespace lx;
  match Lexer.peek lx with
  | Some ')' ->
    Lexer.advance lx;
    { Content_model.item = Seq [ first ]; rep = rep_of lx }
  | Some ',' ->
    let parts = parse_rest lx "," [ first ] in
    { Content_model.item = Seq parts; rep = rep_of lx }
  | Some '|' ->
    let parts = parse_rest lx "|" [ first ] in
    { Content_model.item = Choice parts; rep = rep_of lx }
  | _ -> Lexer.fail lx "expected ')', ',' or '|' in content model"

and parse_rest lx sep acc =
  if Lexer.eat lx sep then begin
    Lexer.skip_whitespace lx;
    let p = parse_cp lx in
    Lexer.skip_whitespace lx;
    parse_rest lx sep (p :: acc)
  end
  else begin
    Lexer.expect lx ")";
    List.rev acc
  end

and parse_cp lx =
  Lexer.skip_whitespace lx;
  if Lexer.eat lx "(" then parse_group lx
  else begin
    let name = Lexer.take_name lx in
    { Content_model.item = Name name; rep = rep_of lx }
  end

let parse_content_model lx =
  Lexer.skip_whitespace lx;
  if Lexer.eat lx "EMPTY" then Content_model.Empty
  else if Lexer.eat lx "ANY" then Content_model.Any
  else if Lexer.eat lx "(" then begin
    Lexer.skip_whitespace lx;
    if Lexer.eat lx "#PCDATA" then begin
      Lexer.skip_whitespace lx;
      if Lexer.eat lx ")" then begin
        let _ = Lexer.eat lx "*" in
        Content_model.Pcdata
      end
      else begin
        let rec names acc =
          Lexer.skip_whitespace lx;
          if Lexer.eat lx "|" then begin
            Lexer.skip_whitespace lx;
            let n = Lexer.take_name lx in
            names (n :: acc)
          end
          else begin
            Lexer.expect lx ")";
            Lexer.expect lx "*";
            List.rev acc
          end
        in
        Content_model.Mixed (names [])
      end
    end
    else Content_model.Children (parse_group lx)
  end
  else Lexer.fail lx "expected a content model (EMPTY, ANY or '(')"

let parse_attlist lx =
  Lexer.expect_whitespace lx;
  let element = Lexer.take_name lx in
  let rec decls acc =
    Lexer.skip_whitespace lx;
    match Lexer.peek lx with
    | Some '>' ->
      Lexer.advance lx;
      element, List.rev acc
    | Some _ ->
      let att_name = Lexer.take_name lx in
      Lexer.expect_whitespace lx;
      let att_type =
        if Lexer.looking_at lx "(" then begin
          Lexer.expect lx "(";
          let body = Lexer.take_until lx ")" in
          Lexer.expect lx ")";
          "(" ^ body ^ ")"
        end
        else Lexer.take_name lx
      in
      Lexer.skip_whitespace lx;
      let att_default =
        if Lexer.eat lx "#REQUIRED" then "#REQUIRED"
        else if Lexer.eat lx "#IMPLIED" then "#IMPLIED"
        else if Lexer.eat lx "#FIXED" then begin
          Lexer.skip_whitespace lx;
          "#FIXED " ^ Parser_literals.quoted lx
        end
        else Parser_literals.quoted lx
      in
      decls ({ att_name; att_type; att_default } :: acc)
    | None -> Lexer.fail lx "unterminated ATTLIST"
  in
  decls []

let parse subset =
  let lx = Lexer.of_string subset in
  let models = Hashtbl.create 16 in
  let attlists = Hashtbl.create 8 in
  let order = ref [] in
  let rec loop () =
    Lexer.skip_whitespace lx;
    if Lexer.at_end lx then ()
    else if Lexer.eat lx "<!--" then begin
      let _ = Lexer.take_until lx "-->" in
      Lexer.expect lx "-->";
      loop ()
    end
    else if Lexer.eat lx "<?" then begin
      let _ = Lexer.take_until lx "?>" in
      Lexer.expect lx "?>";
      loop ()
    end
    else if Lexer.eat lx "<!ELEMENT" then begin
      Lexer.expect_whitespace lx;
      let name = Lexer.take_name lx in
      Lexer.expect_whitespace lx;
      let model = parse_content_model lx in
      Lexer.skip_whitespace lx;
      Lexer.expect lx ">";
      if not (Hashtbl.mem models name) then order := name :: !order;
      Hashtbl.replace models name model;
      loop ()
    end
    else if Lexer.eat lx "<!ATTLIST" then begin
      let element, decls = parse_attlist lx in
      let existing = Option.value ~default:[] (Hashtbl.find_opt attlists element) in
      Hashtbl.replace attlists element (existing @ decls);
      loop ()
    end
    else if Lexer.eat lx "<!ENTITY" || Lexer.eat lx "<!NOTATION" then begin
      let _ = Lexer.take_until lx ">" in
      Lexer.expect lx ">";
      loop ()
    end
    else if Lexer.looking_at lx "%" then
      Lexer.fail lx "parameter entities are not supported"
    else Lexer.fail lx "expected a markup declaration"
  in
  loop ();
  { order = !order; models; attlists }

let of_document (doc : Types.document) =
  match doc.dtd with
  | Some subset -> parse subset
  | None -> empty

let element_names t = List.rev t.order

let element_model t name = Hashtbl.find_opt t.models name

let attributes t name = Option.value ~default:[] (Hashtbl.find_opt t.attlists name)

let is_star_child t ~parent ~child =
  match element_model t parent with
  | None -> None
  | Some model -> Some (Content_model.may_repeat model child)

let pp ppf t =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.models name with
      | Some model ->
        Format.fprintf ppf "<!ELEMENT %s %s>@." name (Content_model.to_string model)
      | None -> ())
    (element_names t)
