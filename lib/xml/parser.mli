(** Recursive-descent parser for the XML 1.0 subset used by eXtract.

    Supported: prolog, [<!DOCTYPE name [internal subset]>] (the subset is
    captured verbatim for {!Dtd.parse}), elements, attributes with single or
    double quotes, character data, CDATA sections, comments, processing
    instructions, character references ([&#10;], [&#x0A;]) and the five
    predefined entities. Not supported (rejected with a parse error rather
    than mis-parsed): external DTD content, parameter entities in content,
    and custom general entities.

    Whitespace-only text between elements is dropped by default, matching
    how data-centric XML databases load documents; pass
    [~keep_whitespace:true] to retain it. Adjacent text/CDATA runs are
    merged into one {!Types.Text} node.

    Adversarial inputs are bounded: nesting depth (which would otherwise
    overflow the parser's stack), total node count and the length of any
    single token are limited, and exceeding a limit raises a clean,
    positioned {!Error.Parse_error} — never [Stack_overflow] or an
    unbounded allocation. *)

type limits = {
  max_depth : int;      (** deepest allowed element nesting (root = 1) *)
  max_nodes : int;      (** elements + retained text nodes per document *)
  max_token_len : int;  (** bytes per name, attribute value or text run *)
}

val default_limits : limits
(** depth 512, 50M nodes, 1MB tokens — far above any legitimate
    data-centric document, low enough to stop hostile ones. *)

val unlimited : limits
(** [max_int] everywhere — the pre-limits behaviour ([Stack_overflow]
    and all); for trusted generated input only. *)

val parse_document : ?keep_whitespace:bool -> ?limits:limits -> string -> Types.document
(** Parse a complete document. @raise Error.Parse_error on malformed
    input or when a limit (default {!default_limits}) is exceeded. *)

val parse : ?keep_whitespace:bool -> ?limits:limits -> string -> Types.t
(** Parse and return just the root element (as a {!Types.Element}). *)

val parse_file : ?keep_whitespace:bool -> ?limits:limits -> string -> Types.document
(** Read a file and parse it. @raise Sys_error on IO failure. *)
