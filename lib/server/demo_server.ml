module Corpus = Extract_snippet.Corpus
module Live_corpus = Extract_snippet.Live_corpus
module Shard_set = Extract_snippet.Shard_set
module Pipeline = Extract_snippet.Pipeline
module Html_view = Extract_snippet.Html_view
module Snippet_cache = Extract_snippet.Snippet_cache
module Explain = Extract_snippet.Explain
module Sharded_lru = Extract_util.Sharded_lru
module Deadline = Extract_util.Deadline
module Faults = Extract_util.Faults
module Registry = Extract_obs.Registry
module Log = Extract_obs.Log
module Reqid = Extract_obs.Reqid
module Slowlog = Extract_obs.Slowlog
module Jsonv = Extract_obs.Jsonv
module Trace = Extract_obs.Trace
module Trace_export = Extract_obs.Trace_export
module Runtime = Extract_obs.Runtime
module Live_store = Extract_store.Live

(* ------------------------------------------------------------------ *)
(* Server metrics: cache behaviour, shed load and per-connection
   transport outcomes. Pipeline-level series (stage latencies, degraded
   snippets, posting resolution) are recorded by the libraries
   themselves; /metrics renders the whole registry. *)

let page_hits_total =
  Registry.counter ~help:"Cache hits" ~labels:[ "cache", "page" ]
    "extract_cache_hits_total"

let page_misses_total =
  Registry.counter ~help:"Cache misses" ~labels:[ "cache", "page" ]
    "extract_cache_misses_total"

let shed_total =
  Registry.counter ~help:"Requests shed with 503 because the budget was spent up front"
    "extract_requests_shed_total"

let response_counter status =
  Registry.counter ~help:"HTTP responses written, by status"
    ~labels:[ "status", string_of_int status ]
    "extract_http_responses_total"

(* pre-register the statuses the server can produce, so /metrics shows
   the full inventory from the first scrape *)
let () =
  List.iter
    (fun s -> ignore (response_counter s))
    [ 200; 400; 404; 405; 408; 413; 431; 500; 503 ]

let admin_updates_total op =
  Registry.counter ~help:"Live-store updates applied via /admin, by operation"
    ~labels:[ "op", op ] "extract_admin_updates_total"

let () = List.iter (fun op -> ignore (admin_updates_total op)) [ "add"; "remove"; "compact" ]

let transport_error_counter kind =
  Registry.counter ~help:"Connections dropped while writing the response"
    ~labels:[ "kind", kind ] "extract_transport_errors_total"

let () =
  List.iter
    (fun k -> ignore (transport_error_counter k))
    [ "epipe"; "reset"; "write_timeout" ]

(* domain-pool series: per-worker request/connection counters (the
   "worker" label), the accept-queue occupancy and its shed path *)
let worker_requests_total w =
  Registry.counter ~help:"Requests handled, by pool worker"
    ~labels:[ "worker", string_of_int w ] "extract_worker_requests_total"

let worker_connections_total w =
  Registry.counter ~help:"Connections handled, by pool worker"
    ~labels:[ "worker", string_of_int w ] "extract_worker_connections_total"

let keepalive_reuses_total =
  Registry.counter ~help:"Requests served on an already-open keep-alive connection"
    "extract_keepalive_reuses_total"

let accept_queue_shed_total =
  Registry.counter
    ~help:"Connections answered 503 up front because the accept queue was full"
    "extract_accept_queue_shed_total"

let accept_queue_depth =
  Registry.gauge ~help:"Connections waiting in the accept queue"
    "extract_accept_queue_depth"

let accept_queue_depth_peak =
  Registry.gauge ~help:"Deepest accept-queue occupancy observed"
    "extract_accept_queue_depth_peak"

let queue_wait_seconds =
  Registry.histogram ~help:"Seconds accepted connections waited for a pool worker"
    "extract_queue_wait_seconds"

let live_journal_lag =
  Registry.gauge
    ~help:"Journal records applied since the last checkpoint (compaction resets to 0)"
    "extract_live_journal_lag"

type t = {
  corpus : Corpus.t;
  live : Live_corpus.t option; (* crash-safe updatable corpus, when serving one *)
  sharded : Shard_set.t option; (* split corpus with per-shard fan-out, when serving one *)
  pages : (string, string) Sharded_lru.t; (* request target -> rendered body *)
  snippets : Snippet_cache.t; (* (db, query, bound, …) -> snippet results *)
  degraded_served : int Atomic.t; (* deadline-degraded snippets sent so far *)
  ready : bool Atomic.t; (* readiness latch: set once serving starts *)
  queue_probe : (unit -> int * int) option Atomic.t;
      (* (depth, capacity) of the accept queue while a pool runs *)
}

type response = {
  status : int;
  reason : string;
  content_type : string;
  headers : (string * string) list;
  body : string;
}

(* ------------------------------------------------------------------ *)
(* URL parsing *)

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let url_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i < n then begin
      match s.[i] with
      | '+' ->
        Buffer.add_char buf ' ';
        loop (i + 1)
      | '%' when i + 2 < n -> begin
        match hex_value s.[i + 1], hex_value s.[i + 2] with
        | Some h, Some l ->
          Buffer.add_char buf (Char.chr ((h * 16) + l));
          loop (i + 3)
        | _ ->
          Buffer.add_char buf '%';
          loop (i + 1)
      end
      | c ->
        Buffer.add_char buf c;
        loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf

let parse_target target =
  match String.index_opt target '?' with
  | None -> url_decode target, []
  | Some q ->
    let path = String.sub target 0 q in
    let query = String.sub target (q + 1) (String.length target - q - 1) in
    let params =
      String.split_on_char '&' query
      |> List.filter_map (fun pair ->
             if pair = "" then None
             else
               match String.index_opt pair '=' with
               | None -> Some (url_decode pair, "")
               | Some eq ->
                 Some
                   ( url_decode (String.sub pair 0 eq),
                     url_decode (String.sub pair (eq + 1) (String.length pair - eq - 1)) ))
    in
    url_decode path, params

(* ------------------------------------------------------------------ *)
(* Pages *)

let ok ?(content_type = "text/html; charset=utf-8") body =
  { status = 200; reason = "OK"; content_type; headers = []; body }

let text_ok body = ok ~content_type:"text/plain; charset=utf-8" body

let error ?(headers = []) status reason detail =
  {
    status;
    reason;
    content_type = "text/plain; charset=utf-8";
    headers;
    body = Printf.sprintf "%d %s\n%s\n" status reason detail;
  }

(* load shedding: the budget is already gone, so decline the expensive
   work up front instead of producing an all-degraded page *)
let overloaded detail =
  error ~headers:[ "Retry-After", "1" ] 503 "Service Unavailable" detail

let home_page t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>eXtract</title></head><body>";
  Buffer.add_string buf "<h1>eXtract — snippet generation for XML search</h1>";
  Buffer.add_string buf "<form action=\"/search\" method=\"get\">";
  Buffer.add_string buf "<select name=\"data\">";
  List.iter
    (fun name -> Buffer.add_string buf (Printf.sprintf "<option>%s</option>" (Html_view.escape name)))
    (Corpus.names t.corpus);
  Buffer.add_string buf "</select> ";
  Buffer.add_string buf "<input name=\"q\" placeholder=\"keywords\"> ";
  Buffer.add_string buf "bound <input name=\"bound\" value=\"6\" size=\"3\"> ";
  Buffer.add_string buf "<button>Search</button></form>";
  Buffer.add_string buf "<p>Data sets: ";
  Buffer.add_string buf (String.concat ", " (List.map Html_view.escape (Corpus.names t.corpus)));
  Buffer.add_string buf "</p></body></html>\n";
  Buffer.contents buf

let current_rid () = Option.value ~default:"-" (Reqid.current ())

(* Slowlog capture around the query routes: one entry per pipeline run
   (slowest retention), plus unconditional retention of every degraded
   or faulted query. An injected fault is recorded before it propagates
   to the 503 path, so the slowlog still names the query that died. *)
let slowlogged ~query f =
  let t0 = Deadline.now () in
  match f () with
  | results ->
    let degraded =
      List.fold_left
        (fun n (r : Pipeline.snippet_result) -> if r.Pipeline.degraded then n + 1 else n)
        0 results
    in
    Slowlog.record
      {
        Slowlog.rid = current_rid ();
        query;
        seconds = Deadline.now () -. t0;
        degraded;
        faulted = false;
        digest = Explain.digest_of_results results;
      };
    results
  | exception (Faults.Injected (point, _) as e) ->
    Slowlog.record
      {
        Slowlog.rid = current_rid ();
        query;
        seconds = Deadline.now () -. t0;
        degraded = 0;
        faulted = true;
        digest = Jsonv.Obj [ "fault", Jsonv.Str point ];
      };
    raise e

(* same capture for the explain route, which already has a bundle with
   the id, timing and digest in hand *)
let slowlogged_bundle ~query f =
  let t0 = Deadline.now () in
  match f () with
  | (_, bundle) as out ->
    Slowlog.record
      {
        Slowlog.rid = bundle.Explain.request_id;
        query;
        seconds = bundle.Explain.seconds;
        degraded = bundle.Explain.degraded;
        faulted = false;
        digest = Explain.digest bundle;
      };
    out
  | exception (Faults.Injected (point, _) as e) ->
    Slowlog.record
      {
        Slowlog.rid = current_rid ();
        query;
        seconds = Deadline.now () -. t0;
        degraded = 0;
        faulted = true;
        digest = Jsonv.Obj [ "fault", Jsonv.Str point ];
      };
    raise e

let with_db t params f =
  match List.assoc_opt "data" params with
  | None -> error 400 "Bad Request" "missing ?data= parameter"
  | Some name -> begin
    match Corpus.find t.corpus name with
    | None -> error 404 "Not Found" (Printf.sprintf "unknown data set %S" name)
    | Some db -> f name db
  end

let bound_param params =
  match Option.bind (List.assoc_opt "bound" params) int_of_string_opt with
  | Some b when b >= 0 -> b
  | Some _ | None -> Pipeline.default_bound

let search_page t ~deadline target params =
  with_db t params (fun name db ->
      match List.assoc_opt "q" params with
      | None | Some "" -> error 400 "Bad Request" "missing ?q= parameter"
      | Some q ->
        if Deadline.expired deadline then begin
          Registry.incr shed_total;
          overloaded "per-request budget exhausted before search started"
        end
        else begin
          let bound = bound_param params in
          (* two cache levels: rendered pages by raw target, and
             search+snippet results by normalized query — a page miss with
             a differently-encoded target still skips the pipeline. A page
             with degraded snippets is served but cached at neither level:
             the degradation reflects this request's budget, not the
             query's answer. *)
          match Sharded_lru.find t.pages target with
          | Some body ->
            Registry.incr page_hits_total;
            ok body
          | None ->
            Registry.incr page_misses_total;
            let results =
              slowlogged ~query:q (fun () ->
                  Snippet_cache.run ~bound ~limit:25 ~deadline t.snippets db q)
            in
            let degraded =
              List.length (List.filter (fun r -> r.Pipeline.degraded) results)
            in
            ignore (Atomic.fetch_and_add t.degraded_served degraded);
            let body =
              Html_view.result_page
                ~title:(Printf.sprintf "eXtract — %s" name)
                ~query:q ~bound results
            in
            if degraded = 0 then Sharded_lru.put t.pages target body;
            ok body
        end)

(* The explain endpoint runs the same cached pipeline as /search but
   assembles the bundle around it; explain pages are never page-cached —
   the bundle's provenance (cache hit/miss, timings, request id) is
   precisely what must stay live. *)
let explain_page t ~deadline params =
  with_db t params (fun _name db ->
      match List.assoc_opt "q" params with
      | None | Some "" -> error 400 "Bad Request" "missing ?q= parameter"
      | Some q ->
        if Deadline.expired deadline then begin
          Registry.incr shed_total;
          overloaded "per-request budget exhausted before search started"
        end
        else begin
          let bound = bound_param params in
          let _, bundle =
            slowlogged_bundle ~query:q (fun () ->
                Explain.run ~bound ~limit:25 ~deadline ~cache:t.snippets db q)
          in
          match List.assoc_opt "format" params with
          | Some "text" -> text_ok (Explain.to_text bundle)
          | Some "json" | None ->
            ok ~content_type:"application/json; charset=utf-8"
              (Explain.render_json bundle ^ "\n")
          | Some other ->
            error 400 "Bad Request" (Printf.sprintf "unknown format %S" other)
        end)

let slowlog_page () =
  ok ~content_type:"application/json; charset=utf-8" (Slowlog.render_json () ^ "\n")

let complete_page t params =
  with_db t params (fun _ db ->
      match List.assoc_opt "prefix" params with
      | None | Some "" -> error 400 "Bad Request" "missing ?prefix= parameter"
      | Some prefix ->
        let completions = Extract_store.Inverted_index.complete (Pipeline.index db) prefix in
        text_ok
          (String.concat ""
             (List.map (fun (tok, count) -> Printf.sprintf "%s %d\n" tok count) completions)))

let cache_report t =
  let page_hits, page_misses = Sharded_lru.stats t.pages in
  let snip_hits, snip_misses = Snippet_cache.stats t.snippets in
  Printf.sprintf
    "page cache: %d hits, %d misses, %d/%d entries, %d shard(s)\n\
     snippet cache: %d hits, %d misses, %d/%d entries, hit rate %.2f, %d shard(s)\n\
     degraded snippets served: %d\n"
    page_hits page_misses
    (Sharded_lru.length t.pages)
    (Sharded_lru.capacity t.pages)
    (Sharded_lru.shards t.pages)
    snip_hits snip_misses
    (Snippet_cache.length t.snippets)
    (Snippet_cache.capacity t.snippets)
    (Snippet_cache.hit_rate t.snippets)
    (Array.length (Snippet_cache.shard_stats t.snippets))
    (Atomic.get t.degraded_served)

(* Gauges describing current cache occupancy are set at scrape time from
   the live structures (they are instantaneous state, not events). The
   per-shard series carry a "shard" label next to the aggregated ones,
   so a hot or cold shard is visible without changing the dashboards
   that read the totals. *)
let refresh_cache_gauges t =
  let set name cache v =
    Registry.set (Registry.gauge ~labels:[ "cache", cache ] name) (float_of_int v)
  in
  let set_shards cache stats =
    Array.iteri
      (fun i (s : Sharded_lru.shard_stats) ->
        let g name v =
          Registry.set
            (Registry.gauge
               ~labels:[ "cache", cache; "shard", string_of_int i ]
               name)
            (float_of_int v)
        in
        g "extract_cache_shard_hits" s.Sharded_lru.hits;
        g "extract_cache_shard_misses" s.Sharded_lru.misses;
        g "extract_cache_shard_evictions" s.Sharded_lru.evictions;
        g "extract_cache_shard_entries" s.Sharded_lru.entries)
      stats
  in
  set "extract_cache_entries" "page" (Sharded_lru.length t.pages);
  set "extract_cache_capacity" "page" (Sharded_lru.capacity t.pages);
  set "extract_cache_evictions" "page" (Sharded_lru.evictions t.pages);
  set "extract_cache_entries" "snippet" (Snippet_cache.length t.snippets);
  set "extract_cache_capacity" "snippet" (Snippet_cache.capacity t.snippets);
  set "extract_cache_evictions" "snippet" (Snippet_cache.evictions t.snippets);
  set_shards "page" (Sharded_lru.shard_stats t.pages);
  set_shards "snippet" (Snippet_cache.shard_stats t.snippets);
  Registry.set
    (Registry.gauge ~help:"Deadline-degraded snippets served by this server"
       "extract_degraded_snippets_served")
    (float_of_int (Atomic.get t.degraded_served))

let refresh_live_gauges live =
  Registry.set live_journal_lag
    (float_of_int (Live_store.pending_updates (Live_corpus.store live)))

let create ?(cache_size = 64) ?(shards = 8) ?live ?sharded corpus =
  let t =
    {
      corpus;
      live;
      sharded;
      pages = Sharded_lru.create ~shards ~capacity:cache_size ();
      snippets = Snippet_cache.create ~capacity:(4 * cache_size) ~shards ();
      degraded_served = Atomic.make 0;
      ready = Atomic.make false;
      queue_probe = Atomic.make None;
    }
  in
  (* runtime-collector hooks: named registration replaces the previous
     server's closure, so repeatedly created servers don't stack *)
  Runtime.register_collector "server.caches" (fun () -> refresh_cache_gauges t);
  (match live with
  | Some lv ->
    Runtime.register_collector "server.live" (fun () -> refresh_live_gauges lv)
  | None -> ());
  t

let mark_ready t = Atomic.set t.ready true

let metrics_page t =
  refresh_cache_gauges t;
  ok ~content_type:"text/plain; version=0.0.4; charset=utf-8" (Registry.render_prometheus ())

let stats_json t params =
  refresh_cache_gauges t;
  let page_hits, page_misses = Sharded_lru.stats t.pages in
  let snip_hits, snip_misses = Snippet_cache.stats t.snippets in
  let dataset =
    match Option.bind (List.assoc_opt "data" params) (Corpus.find t.corpus) with
    | None -> "null"
    | Some db ->
      let stats = Extract_store.Doc_stats.compute (Pipeline.kinds db) in
      Format.asprintf "%a" Extract_store.Doc_stats.pp_json stats
  in
  ok ~content_type:"application/json; charset=utf-8"
    (Printf.sprintf
       "{ \"caches\": { \"page\": { \"hits\": %d, \"misses\": %d, \"entries\": %d, \
        \"capacity\": %d, \"evictions\": %d }, \"snippet\": { \"hits\": %d, \"misses\": \
        %d, \"entries\": %d, \"capacity\": %d, \"evictions\": %d, \"hit_rate\": %.3f } \
        }, \"degraded_served\": %d, \"dataset\": %s, \"metrics\": %s }\n"
       page_hits page_misses
       (Sharded_lru.length t.pages)
       (Sharded_lru.capacity t.pages)
       (Sharded_lru.evictions t.pages)
       snip_hits snip_misses
       (Snippet_cache.length t.snippets)
       (Snippet_cache.capacity t.snippets)
       (Snippet_cache.evictions t.snippets)
       (Snippet_cache.hit_rate t.snippets)
       (Atomic.get t.degraded_served)
       dataset (Registry.render_json ()))

let stats_page t params =
  if List.assoc_opt "format" params = Some "json" then stats_json t params
  else
    with_db t params (fun name db ->
        let stats = Extract_store.Doc_stats.compute (Pipeline.kinds db) in
        text_ok
          (Format.asprintf "data set: %s@.%a@.%s" name Extract_store.Doc_stats.pp stats
             (cache_report t)))

(* ------------------------------------------------------------------ *)
(* Live corpus: online updates over POST, searches that bypass both
   caches. The page cache keys on the raw target and the snippet cache
   on a pipeline identity — neither key encodes the live store's
   generation, so a cached live page could survive the update that
   invalidated it. The query view swap inside Live_corpus is the cache:
   unchanged segments keep their analyzed pipelines. *)

type meth = Get | Post

let meth_name = function Get -> "GET" | Post -> "POST"

let with_live t f =
  match t.live with
  | None ->
    error 404 "Not Found" "no live store attached (start the server with --live DIR)"
  | Some live -> f live

let name_param params f =
  match List.assoc_opt "name" params with
  | None | Some "" -> error 400 "Bad Request" "missing ?name= parameter"
  | Some name -> f name

(* update errors are the client's fault: unparsable XML or a bad member
   name answers 400 with the parser's own message, and the journal never
   sees the record (Live validates before appending) *)
let admin_add t params body =
  with_live t (fun live ->
      name_param params (fun name ->
          if body = "" then error 400 "Bad Request" "empty request body (expected XML)"
          else
            match Live_corpus.add live ~name ~xml:body with
            | () ->
              Registry.incr (admin_updates_total "add");
              text_ok
                (Printf.sprintf "added %s (generation %d, %d member(s))\n" name
                   (Live_corpus.generation live)
                   (List.length (Live_corpus.names live)))
            | exception Extract_xml.Error.Parse_error (pos, msg) ->
              error 400 "Bad Request" (Extract_xml.Error.to_string pos msg)
            | exception Invalid_argument msg -> error 400 "Bad Request" msg))

let admin_remove t params =
  with_live t (fun live ->
      name_param params (fun name ->
          match Live_corpus.remove live name with
          | true ->
            Registry.incr (admin_updates_total "remove");
            text_ok (Printf.sprintf "removed %s (%d member(s) left)\n" name
                       (List.length (Live_corpus.names live)))
          | false -> error 404 "Not Found" (Printf.sprintf "no member %S" name)
          | exception Invalid_argument msg -> error 400 "Bad Request" msg))

let admin_compact t =
  with_live t (fun live ->
      let generation = Live_corpus.compact live in
      Registry.incr (admin_updates_total "compact");
      text_ok (Printf.sprintf "compacted to generation %d\n" generation))

let live_status t =
  with_live t (fun live ->
      let names = Live_corpus.names live in
      text_ok
        (Printf.sprintf "generation %d, %d member(s)\n%s" (Live_corpus.generation live)
           (List.length names)
           (String.concat "" (List.map (fun n -> Printf.sprintf "%s\n" n) names))))

let live_search_page t ~deadline params =
  with_live t (fun live ->
      match List.assoc_opt "q" params with
      | None | Some "" -> error 400 "Bad Request" "missing ?q= parameter"
      | Some q ->
        if Deadline.expired deadline then begin
          Registry.incr shed_total;
          overloaded "per-request budget exhausted before search started"
        end
        else begin
          let bound = bound_param params in
          let limit =
            match Option.bind (List.assoc_opt "limit" params) int_of_string_opt with
            | Some n when n > 0 -> n
            | Some _ | None -> 25
          in
          let hits =
            slowlogged ~query:q (fun () ->
                List.map
                  (fun (h : Live_corpus.hit) -> h.Live_corpus.snippet)
                  (Live_corpus.run ~bound ~limit ~deadline live q))
          in
          let results =
            Html_view.result_page
              ~title:(Printf.sprintf "eXtract — live (generation %d)"
                        (Live_corpus.generation live))
              ~query:q ~bound hits
          in
          ok results
        end)

(* ------------------------------------------------------------------ *)
(* Sharded serving: the /shards routes mirror /live, backed by a
   Shard_set — one domain per shard under each request, answers k-way
   merged. The shard set is read-only; no admin routes. *)

let with_sharded t f =
  match t.sharded with
  | None ->
    error 404 "Not Found" "no shard set attached (start the server with --shards N)"
  | Some s -> f s

let shards_status t =
  with_sharded t (fun s ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf (Printf.sprintf "%d shard(s)\n" (Shard_set.shard_count s));
      for i = 0 to Shard_set.shard_count s - 1 do
        let g0, g1 = Shard_set.provenance s i in
        let db = Shard_set.shard_db s i in
        Buffer.add_string buf
          (Printf.sprintf "shard %d: nodes %d..%d (%d), %d tokens\n" i g0 g1 (g1 - g0 + 1)
             (Extract_store.Inverted_index.token_count (Pipeline.index db)))
      done;
      text_ok (Buffer.contents buf))

let shards_search_page t ~deadline params =
  with_sharded t (fun s ->
      match List.assoc_opt "q" params with
      | None | Some "" -> error 400 "Bad Request" "missing ?q= parameter"
      | Some q ->
        if Deadline.expired deadline then begin
          Registry.incr shed_total;
          overloaded "per-request budget exhausted before search started"
        end
        else begin
          let bound = bound_param params in
          let limit =
            match Option.bind (List.assoc_opt "limit" params) int_of_string_opt with
            | Some n when n > 0 -> n
            | Some _ | None -> 25
          in
          let hits =
            slowlogged ~query:q (fun () ->
                List.map
                  (fun (h : Shard_set.hit) -> h.Shard_set.result)
                  (Shard_set.run ~bound ~limit ~deadline s q))
          in
          let results =
            Html_view.result_page
              ~title:(Printf.sprintf "eXtract — sharded (%d shards)"
                        (Shard_set.shard_count s))
              ~query:q ~bound hits
          in
          ok results
        end)

(* ------------------------------------------------------------------ *)
(* Health surface: /healthz answers 200 whenever the process routes
   requests at all (liveness — a hung process answers nothing); /readyz
   is the load-balancer gate: 503 until serving has started (corpus
   built, any journal recovered, pool accepting) and whenever the
   accept queue has reached its shed threshold, 200 otherwise. *)

let health_page () = text_ok "ok\n"

let readiness t =
  let queue_ok, queue_depth, queue_capacity =
    match Atomic.get t.queue_probe with
    | None -> true, 0, 0
    | Some probe ->
      let depth, capacity = probe () in
      depth < capacity, depth, capacity
  in
  let serving = Atomic.get t.ready in
  let ready = serving && queue_ok in
  let body =
    Jsonv.Obj
      [
        ("ready", Jsonv.Bool ready);
        ( "components",
          Jsonv.Obj
            [
              ("serving", Jsonv.Bool serving);
              ("accept_queue", Jsonv.Bool queue_ok);
              ("journal_recovered", Jsonv.Bool (t.live <> None));
              ("shards_mapped", Jsonv.Bool (t.sharded <> None));
            ] );
        ("corpus_members", Jsonv.Int (List.length (Corpus.names t.corpus)));
        ( "live_generation",
          match t.live with
          | Some lv -> Jsonv.Int (Live_corpus.generation lv)
          | None -> Jsonv.Null );
        ( "shards",
          match t.sharded with
          | Some s -> Jsonv.Int (Shard_set.shard_count s)
          | None -> Jsonv.Null );
        ( "queue",
          Jsonv.Obj
            [ ("depth", Jsonv.Int queue_depth); ("capacity", Jsonv.Int queue_capacity) ]
        );
      ]
  in
  ready, Jsonv.to_string body ^ "\n"

let ready_page t =
  let ready, body = readiness t in
  let content_type = "application/json; charset=utf-8" in
  if ready then ok ~content_type body
  else
    {
      status = 503;
      reason = "Service Unavailable";
      content_type;
      headers = [ "Retry-After", "1" ];
      body;
    }

let trace_page params =
  let last = Option.bind (List.assoc_opt "last" params) int_of_string_opt in
  ok ~content_type:"application/json; charset=utf-8"
    (Trace_export.render (Trace.recent ?last ()) ^ "\n")

let runtime_page () =
  ok ~content_type:"application/json; charset=utf-8" (Runtime.render_json () ^ "\n")

(* Every request runs under a fresh request id: the access-log line, the
   pipeline's event-log lines, the trace spans and the slowlog entry of
   one request all carry the same id. Requests picked by the trace
   sampler (EXTRACT_TRACE_SAMPLE) record an [http.request] span tree —
   including the time the connection waited for a worker — even while
   process-wide tracing is off. *)
let handle_request ?(deadline = Deadline.never) ?(meth = Get) ?(body = "")
    ?(queue_wait = 0.) t target =
  let sampled = Trace.sampled () in
  let in_scope f = if sampled then Trace.with_recording f else f () in
  in_scope @@ fun () ->
  Reqid.ensure (fun _rid ->
      Trace.with_span ~args:[ ("target", target) ] "http.request" @@ fun () ->
      let t0 = Deadline.now () in
      if queue_wait > 0. then
        Trace.add_span "queue.wait" ~start:(t0 -. queue_wait) ~duration:queue_wait;
      let method_not_allowed allow =
        error
          ~headers:[ "Allow", allow ]
          405 "Method Not Allowed"
          (Printf.sprintf "%s is not supported on this route" (meth_name meth))
      in
      let response =
        match parse_target target with
        | exception _ -> error 400 "Bad Request" "unparsable target"
        | path, params -> begin
          try
            match path, meth with
            | "/admin/add", Post -> admin_add t params body
            | "/admin/remove", Post -> admin_remove t params
            | "/admin/compact", Post -> admin_compact t
            | ("/admin/add" | "/admin/remove" | "/admin/compact"), Get ->
              method_not_allowed "POST"
            | _, Post -> method_not_allowed "GET"
            | "/", Get | "/index.html", Get -> ok (home_page t)
            | "/search", Get -> search_page t ~deadline target params
            | "/explain", Get -> explain_page t ~deadline params
            | "/complete", Get -> complete_page t params
            | "/stats", Get -> stats_page t params
            | "/metrics", Get -> metrics_page t
            | "/live", Get -> live_status t
            | "/live/search", Get -> live_search_page t ~deadline params
            | "/shards", Get -> shards_status t
            | "/shards/search", Get -> shards_search_page t ~deadline params
            | "/healthz", Get -> health_page ()
            | "/readyz", Get -> ready_page t
            | "/debug/slowlog", Get -> slowlog_page ()
            | "/debug/trace", Get -> trace_page params
            | "/debug/runtime", Get -> runtime_page ()
            | _, Get -> error 404 "Not Found" (Printf.sprintf "no route for %s" path)
          with
          | Faults.Injected (point, _) ->
            overloaded (Printf.sprintf "transient fault at %s" point)
          | e -> error 500 "Internal Server Error" (Printexc.to_string e)
        end
      in
      Log.info "http.access"
        [ "method", Jsonv.Str (meth_name meth);
          "target", Jsonv.Str target;
          "status", Jsonv.Int response.status;
          "seconds", Jsonv.Float (Deadline.now () -. t0) ];
      response)

let handle ?deadline t target = handle_request ?deadline ~meth:Get t target

let cache_stats t = Sharded_lru.stats t.pages

let snippet_cache_stats t = Snippet_cache.stats t.snippets

let degraded_served t = Atomic.get t.degraded_served

(* ------------------------------------------------------------------ *)
(* Transport *)

type config = {
  timeout_ms : int;
  deadline_ms : int option;
  max_header_bytes : int;
  workers : int;
  queue_depth : int;
  max_requests_per_conn : int;
  log : string -> unit;
}

let default_config =
  {
    timeout_ms = 5_000;
    deadline_ms = None;
    max_header_bytes = 32_768;
    workers = 1;
    queue_depth = 64;
    max_requests_per_conn = 100;
    log = (fun msg -> Printf.eprintf "extract-serve: %s\n%!" msg);
  }

(* A dying client must cost us one connection, not the process: without
   this, the kernel answers a write to a closed peer with SIGPIPE and the
   default disposition kills the server. Ignored, the write fails with
   EPIPE, which the per-connection handler logs and drops. The once-guard
   is an Atomic exchange rather than a lazy: forcing a lazy from two
   domains at once raises Lazy.Undefined in one of them. *)
let sigpipe_installed = Atomic.make false

let ensure_sigpipe_ignored () =
  if not (Atomic.exchange sigpipe_installed true) then
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
    with Invalid_argument _ | Sys_error _ -> ()

let set_socket_timeouts fd timeout_ms =
  if timeout_ms > 0 then begin
    let seconds = float_of_int timeout_ms /. 1000. in
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    try Unix.setsockopt_float fd Unix.SO_SNDTIMEO seconds
    with Unix.Unix_error _ | Invalid_argument _ -> ()
  end

let listen ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* a deep kernel backlog: under load-test bursts the accept queue, not
     the kernel's, is the bound we want clients to hit *)
  Unix.listen sock 128;
  sock

let bound_port sock =
  match Unix.getsockname sock with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Demo_server.bound_port: not an inet socket"

let max_request_line = 8192

type read_outcome =
  | Line of string
  | Eof
  | Timed_out
  | Too_long
  | Bad_cr

let read_request_line fd =
  (* byte-wise up to the first line terminator; ample for a request line *)
  let buf = Buffer.create 128 in
  let byte = Bytes.create 1 in
  let rec loop n =
    if n >= max_request_line then Too_long
    else if Unix.read fd byte 0 1 <> 1 then Eof
    else begin
      match Bytes.get byte 0 with
      | '\n' -> Line (Buffer.contents buf)
      | '\r' ->
        (* CR is only valid as the first half of the CRLF terminator *)
        if Unix.read fd byte 0 1 <> 1 then Eof
        else if Bytes.get byte 0 = '\n' then Line (Buffer.contents buf)
        else Bad_cr
      | c ->
        Buffer.add_char buf c;
        loop (n + 1)
    end
  in
  try loop 0 with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) -> Timed_out
  | Unix.Unix_error (Unix.ECONNRESET, _, _) -> Eof

(* Consume the header block up to the blank line, bounded (an unmetered
   sink would hand a hostile client free memoryless work), and while
   draining remember the two headers the transport acts on: [Connection]
   (comma-split, case-insensitive tokens) and [Content-Length]. EOF
   before the blank line still yields the headers seen so far — the
   request is served, but the connection cannot be kept alive. *)
type request_headers = {
  connection : string list; (* lowercased tokens *)
  content_length : int option;
  headers_eof : bool; (* peer closed before finishing the block *)
}

type header_outcome =
  | Headers of request_headers
  | Header_overflow
  | Header_timeout
  | Bad_content_length

let read_headers ~max_bytes fd =
  let byte = Bytes.create 1 in
  let line = Buffer.create 64 in
  let connection = ref [] in
  let content_length = ref None in
  let bad_length = ref false in
  let lowercase_trim s = String.lowercase_ascii (String.trim s) in
  let process_line l =
    match String.index_opt l ':' with
    | None -> ()
    | Some i ->
      let name = lowercase_trim (String.sub l 0 i) in
      let value = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
      (match name with
      | "connection" ->
        connection :=
          !connection @ List.map lowercase_trim (String.split_on_char ',' value)
      | "content-length" -> begin
        match int_of_string_opt value with
        | Some n when n >= 0 -> content_length := Some n
        | Some _ | None -> bad_length := true
      end
      | _ -> ())
  in
  let finish eof =
    if !bad_length then Bad_content_length
    else
      Headers
        {
          connection = !connection;
          content_length = !content_length;
          headers_eof = eof;
        }
  in
  let rec loop consumed =
    if consumed >= max_bytes then Header_overflow
    else if Unix.read fd byte 0 1 <> 1 then finish true
    else
      match Bytes.get byte 0 with
      | '\n' ->
        let l = Buffer.contents line in
        Buffer.clear line;
        if l = "" then finish false
        else begin
          process_line l;
          loop (consumed + 1)
        end
      | '\r' -> loop (consumed + 1) (* CRLF handled at '\n'; bare CR dropped *)
      | c ->
        Buffer.add_char line c;
        loop (consumed + 1)
  in
  try loop 0 with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
    Header_timeout
  | Unix.Unix_error (Unix.ECONNRESET, _, _) -> finish true

(* GET carries no useful body, but a client that declared one must have
   it consumed before the next request can be framed on a keep-alive
   connection. Bounded: a declared length past the cap is refused with
   413 instead of being read. *)
let max_body_bytes = 1_048_576

let drain_body ~length fd =
  let chunk = Bytes.create 4096 in
  let rec loop remaining =
    if remaining <= 0 then `Drained
    else
      match Unix.read fd chunk 0 (min remaining (Bytes.length chunk)) with
      | 0 -> `Eof
      | n -> loop (remaining - n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
        ->
        `Timeout
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> `Eof
  in
  loop length

(* POST bodies are captured rather than drained — same bound, same
   timeout discipline. A peer that closes mid-body gets 400, not a
   request served from a silently truncated payload. *)
let read_body ~length fd =
  if length = 0 then `Body ""
  else begin
    let buf = Bytes.create length in
    let rec loop off =
      if off >= length then `Body (Bytes.unsafe_to_string buf)
      else
        match Unix.read fd buf off (length - off) with
        | 0 -> `Eof
        | n -> loop (off + n)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
          ->
          `Timeout
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> `Eof
    in
    loop 0
  end

(* The response echoes the request's HTTP version (an HTTP/1.0 client
   gets an HTTP/1.0 status line) and always carries Content-Length and
   an explicit Connection header — keep-alive framing depends on both,
   and error responses always say [close]. *)
let write_response ~http11 ~keep_alive fd r =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) r.headers)
  in
  let head =
    Printf.sprintf
      "%s %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%sConnection: %s\r\n\r\n"
      (if http11 then "HTTP/1.1" else "HTTP/1.0")
      r.status r.reason r.content_type (String.length r.body) extra
      (if keep_alive then "keep-alive" else "close")
  in
  let payload = head ^ r.body in
  let bytes = Bytes.of_string payload in
  let rec write_all off =
    if off < Bytes.length bytes then begin
      let n = Unix.write fd bytes off (Bytes.length bytes - off) in
      write_all (off + n)
    end
  in
  write_all 0

(* One connection, up to [max_requests] requests with HTTP/1.1
   keep-alive. Every request gets a fresh deadline from the config —
   the budget protects a request, not a connection. Errors (≥ 400)
   always close: a client that just sent a malformed request cannot be
   trusted to have framed the rest of the stream correctly. *)
let handle_connection ?(worker = 0) ?(queue_wait = 0.) ~config ~max_requests t fd =
  set_socket_timeouts fd config.timeout_ms;
  let requests = worker_requests_total worker in
  let rec loop served =
    let last = served + 1 >= max_requests in
    let finish ~http11 ~may_continue response =
      let keep_alive = may_continue && (not last) && response.status < 400 in
      Registry.incr (response_counter response.status);
      Registry.incr requests;
      if served > 0 then Registry.incr keepalive_reuses_total;
      match write_response ~http11 ~keep_alive fd response with
      | () -> if keep_alive then loop (served + 1)
      | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
        Registry.incr (transport_error_counter "epipe");
        config.log "client went away before the response was written (EPIPE); dropped"
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPROTOTYPE), _, _) ->
        Registry.incr (transport_error_counter "reset");
        config.log "connection reset by peer while writing response; dropped"
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
        ->
        Registry.incr (transport_error_counter "write_timeout");
        config.log "response write timed out (slow reader); dropped"
    in
    match read_request_line fd with
    (* between keep-alive requests, a vanished or idle peer is normal
       connection end, not an error worth a response *)
    | Eof when served > 0 -> ()
    | Timed_out when served > 0 -> ()
    | Eof -> finish ~http11:false ~may_continue:false (error 400 "Bad Request" "empty request")
    | Timed_out ->
      finish ~http11:false ~may_continue:false
        (error 408 "Request Timeout" "no request line within the read timeout")
    | Too_long ->
      finish ~http11:false ~may_continue:false
        (error 400 "Bad Request"
           (Printf.sprintf "request line longer than %d bytes" max_request_line))
    | Bad_cr ->
      finish ~http11:false ~may_continue:false
        (error 400 "Bad Request" "bare CR in request line")
    | Line line -> begin
      match String.split_on_char ' ' line with
      | (("GET" | "POST") as meth_str) :: target :: rest -> begin
        let meth = if meth_str = "POST" then Post else Get in
        let http11 = List.mem "HTTP/1.1" rest in
        match read_headers ~max_bytes:config.max_header_bytes fd with
        | Header_overflow ->
          finish ~http11 ~may_continue:false
            (error 431 "Request Header Fields Too Large"
               (Printf.sprintf "headers longer than %d bytes" config.max_header_bytes))
        | Header_timeout ->
          finish ~http11 ~may_continue:false
            (error 408 "Request Timeout" "headers not finished within the read timeout")
        | Bad_content_length ->
          finish ~http11 ~may_continue:false
            (error 400 "Bad Request" "invalid Content-Length")
        | Headers h -> begin
          let wants_keepalive =
            if List.mem "close" h.connection then false
            else if List.mem "keep-alive" h.connection then true
            else http11 (* HTTP/1.1 defaults to persistent connections *)
          in
          let body =
            match h.content_length with
            | None | Some 0 -> `Body ""
            | Some n when n > max_body_bytes -> `Too_big
            | Some n ->
              if meth = Post then read_body ~length:n fd
              else begin
                (* a GET body is dead weight: consume it for keep-alive
                   framing, never hand it to the routes *)
                match drain_body ~length:n fd with
                | `Drained -> `Body ""
                | (`Eof | `Timeout) as r -> r
              end
          in
          match body with
          | `Too_big ->
            finish ~http11 ~may_continue:false
              (error 413 "Payload Too Large"
                 (Printf.sprintf "request body longer than %d bytes" max_body_bytes))
          | `Timeout ->
            finish ~http11 ~may_continue:false
              (error 408 "Request Timeout"
                 "request body not finished within the read timeout")
          | `Eof when meth = Post ->
            finish ~http11 ~may_continue:false
              (error 400 "Bad Request" "request body truncated (peer closed mid-body)")
          | (`Eof | `Body _) as b ->
            (* the budget clock starts once the request is fully read *)
            let body = match b with `Body s -> s | `Eof -> "" in
            let may_continue =
              wants_keepalive && (not h.headers_eof)
              && (match b with `Body _ -> true | `Eof -> false)
            in
            finish ~http11 ~may_continue
              (handle_request
                 ~deadline:(Deadline.of_ms_opt config.deadline_ms)
                 ~meth ~body
                 (* the queue wait belongs to the first request only: a
                    keep-alive reuse never sat in the accept queue *)
                 ~queue_wait:(if served = 0 then queue_wait else 0.)
                 t target)
        end
      end
      | _ ->
        finish ~http11:false ~may_continue:false
          (error 400 "Bad Request" (Printf.sprintf "unsupported request %S" line))
    end
  in
  loop 0

let serve_once ?(config = default_config) t listening =
  ensure_sigpipe_ignored ();
  mark_ready t;
  let fd, _ = Unix.accept listening in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> handle_connection ~config ~max_requests:1 t fd)

(* ------------------------------------------------------------------ *)
(* Domain pool: one acceptor domain feeds a bounded queue of accepted
   connections; a fixed pool of worker domains drains it, each running
   the full keep-alive request loop. When the queue is full the
   acceptor answers 503 + Retry-After itself — cheap, immediate
   backpressure instead of unbounded queueing. *)

type conn_queue = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : (Unix.file_descr * float) Queue.t; (* guarded-by: lock — fd, enqueue time *)
  depth : int;
  mutable peak : int; (* guarded-by: lock — deepest occupancy seen *)
  mutable closed : bool; (* guarded-by: lock *)
}

let queue_create depth =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    depth;
    peak = 0;
    closed = false;
  }

let queue_try_push q fd =
  Mutex.lock q.lock;
  let accepted = (not q.closed) && Queue.length q.items < q.depth in
  if accepted then begin
    Queue.add (fd, Deadline.now ()) q.items;
    let len = Queue.length q.items in
    Registry.set accept_queue_depth (float_of_int len);
    if len > q.peak then begin
      q.peak <- len;
      Registry.set accept_queue_depth_peak (float_of_int len)
    end;
    Condition.signal q.nonempty
  end;
  Mutex.unlock q.lock;
  accepted

let queue_stat q =
  Mutex.lock q.lock;
  let s = Queue.length q.items, q.depth in
  Mutex.unlock q.lock;
  s

(* blocks until an item or close; after close, drains remaining items
   so no accepted connection is leaked. Returns the fd and how long it
   sat in the queue — the saturation signal exported as the
   queue-wait histogram and span. *)
let queue_pop q =
  Mutex.lock q.lock;
  let rec wait () =
    if not (Queue.is_empty q.items) then begin
      let fd, enqueued = Queue.take q.items in
      Registry.set accept_queue_depth (float_of_int (Queue.length q.items));
      Some (fd, Float.max 0. (Deadline.now () -. enqueued))
    end
    else if q.closed then None
    else begin
      Condition.wait q.nonempty q.lock;
      wait ()
    end
  in
  let r = wait () in
  Mutex.unlock q.lock;
  r

let queue_close q =
  Mutex.lock q.lock;
  q.closed <- true;
  Condition.broadcast q.nonempty;
  Mutex.unlock q.lock

type pool = {
  pool_listening : Unix.file_descr;
  pool_queue : conn_queue;
  acceptor : unit Domain.t;
  pool_workers : unit Domain.t list;
  stopping : bool Atomic.t;
}

let acceptor_loop ~config queue stopping listening =
  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> () in
  let rec loop () =
    match Unix.accept listening with
    | fd, _ ->
      if Atomic.get stopping then close_quietly fd (* the stop poke; exit *)
      else if queue_try_push queue fd then loop ()
      else begin
        (* queue full: shed on the acceptor itself so the client hears
           503 now rather than waiting behind everyone else *)
        Registry.incr accept_queue_shed_total;
        set_socket_timeouts fd config.timeout_ms;
        let r = overloaded "accept queue full" in
        Registry.incr (response_counter r.status);
        (try write_response ~http11:false ~keep_alive:false fd r
         with Unix.Unix_error _ -> ());
        close_quietly fd;
        loop ()
      end
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if Atomic.get stopping then () else loop ()
    | exception Unix.Unix_error (e, fn, _) ->
      config.log
        (Printf.sprintf "accept failed: %s in %s" (Unix.error_message e) fn);
      if Atomic.get stopping then () else loop ()
  in
  loop ()

let worker_loop ~config queue t w =
  let connections = worker_connections_total w in
  let rec loop () =
    match queue_pop queue with
    | None -> ()
    | Some (fd, waited) ->
      Registry.incr connections;
      Registry.observe queue_wait_seconds waited;
      (* nothing a single connection does may stop a worker *)
      (match
         Fun.protect
           ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
           (fun () ->
             handle_connection ~worker:w ~queue_wait:waited ~config
               ~max_requests:config.max_requests_per_conn t fd)
       with
      | () -> ()
      | exception Unix.Unix_error (e, fn, _) ->
        config.log
          (Printf.sprintf "connection dropped: %s in %s" (Unix.error_message e) fn)
      | exception e ->
        config.log
          (Printf.sprintf "connection handler failed: %s" (Printexc.to_string e)));
      loop ()
  in
  loop ()

let start_pool ?(config = default_config) t listening =
  ensure_sigpipe_ignored ();
  let workers = max 1 config.workers in
  let queue = queue_create (max 1 config.queue_depth) in
  let stopping = Atomic.make false in
  let acceptor =
    Domain.spawn (fun () -> acceptor_loop ~config queue stopping listening)
  in
  let pool_workers =
    List.init workers (fun w -> Domain.spawn (fun () -> worker_loop ~config queue t w))
  in
  (* the pool is accepting: flip the readiness latch and expose the
     queue's saturation state to /readyz *)
  Atomic.set t.queue_probe (Some (fun () -> queue_stat queue));
  mark_ready t;
  { pool_listening = listening; pool_queue = queue; acceptor; pool_workers; stopping }

let stop_pool pool =
  Atomic.set pool.stopping true;
  queue_close pool.pool_queue;
  (* wake the acceptor parked in accept(2): closing the listening fd
     from another domain is not reliably observed, so poke it with a
     loopback connection instead — it sees [stopping] and exits *)
  (try
     let port = bound_port pool.pool_listening in
     let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     (try Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      with Unix.Unix_error _ -> ());
     try Unix.close s with Unix.Unix_error _ -> ()
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  Domain.join pool.acceptor;
  List.iter Domain.join pool.pool_workers

(* On SIGTERM, the serving loop's last act is dumping the slowlog to
   stderr: when an operator (or an orchestrator) stops a misbehaving
   server, the worst and the degraded queries survive in the shutdown
   log even if nobody thought to curl /debug/slowlog first. *)
let install_sigterm_dump config =
  try
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle
         (fun _ ->
           config.log "SIGTERM: slow-query log follows";
           output_string stderr (Slowlog.render_json ());
           output_char stderr '\n';
           flush stderr;
           exit 0))
  with Invalid_argument _ | Sys_error _ -> ()

let serve ?(config = default_config) t ~port =
  ensure_sigpipe_ignored ();
  install_sigterm_dump config;
  (* background GC/subsystem sampler feeding /metrics and /debug/runtime *)
  ignore (Runtime.start ());
  let sock = listen ~port in
  let workers = max 1 config.workers in
  Printf.printf "eXtract demo server on http://127.0.0.1:%d/ (%d worker%s)\n%!"
    (bound_port sock) workers
    (if workers = 1 then "" else "s");
  let _pool = start_pool ~config t sock in
  (* the main domain parks instead of joining: it must stay interruptible
     so the SIGTERM handler above still runs and dumps the slowlog *)
  while true do
    try Unix.sleepf 3600. with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done
