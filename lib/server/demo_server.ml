module Corpus = Extract_snippet.Corpus
module Pipeline = Extract_snippet.Pipeline
module Html_view = Extract_snippet.Html_view
module Snippet_cache = Extract_snippet.Snippet_cache
module Lru = Extract_util.Lru

type t = {
  corpus : Corpus.t;
  pages : (string, string) Lru.t; (* request target -> rendered body *)
  snippets : Snippet_cache.t; (* (db, query, bound, …) -> snippet results *)
}

let create ?(cache_size = 64) corpus =
  {
    corpus;
    pages = Lru.create ~capacity:cache_size;
    snippets = Snippet_cache.create ~capacity:(4 * cache_size) ();
  }

type response = {
  status : int;
  reason : string;
  content_type : string;
  body : string;
}

(* ------------------------------------------------------------------ *)
(* URL parsing *)

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let url_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i < n then begin
      match s.[i] with
      | '+' ->
        Buffer.add_char buf ' ';
        loop (i + 1)
      | '%' when i + 2 < n -> begin
        match hex_value s.[i + 1], hex_value s.[i + 2] with
        | Some h, Some l ->
          Buffer.add_char buf (Char.chr ((h * 16) + l));
          loop (i + 3)
        | _ ->
          Buffer.add_char buf '%';
          loop (i + 1)
      end
      | c ->
        Buffer.add_char buf c;
        loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf

let parse_target target =
  match String.index_opt target '?' with
  | None -> url_decode target, []
  | Some q ->
    let path = String.sub target 0 q in
    let query = String.sub target (q + 1) (String.length target - q - 1) in
    let params =
      String.split_on_char '&' query
      |> List.filter_map (fun pair ->
             if pair = "" then None
             else
               match String.index_opt pair '=' with
               | None -> Some (url_decode pair, "")
               | Some eq ->
                 Some
                   ( url_decode (String.sub pair 0 eq),
                     url_decode (String.sub pair (eq + 1) (String.length pair - eq - 1)) ))
    in
    url_decode path, params

(* ------------------------------------------------------------------ *)
(* Pages *)

let ok ?(content_type = "text/html; charset=utf-8") body =
  { status = 200; reason = "OK"; content_type; body }

let text_ok body = ok ~content_type:"text/plain; charset=utf-8" body

let error status reason detail =
  {
    status;
    reason;
    content_type = "text/plain; charset=utf-8";
    body = Printf.sprintf "%d %s\n%s\n" status reason detail;
  }

let home_page t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>eXtract</title></head><body>";
  Buffer.add_string buf "<h1>eXtract — snippet generation for XML search</h1>";
  Buffer.add_string buf "<form action=\"/search\" method=\"get\">";
  Buffer.add_string buf "<select name=\"data\">";
  List.iter
    (fun name -> Buffer.add_string buf (Printf.sprintf "<option>%s</option>" (Html_view.escape name)))
    (Corpus.names t.corpus);
  Buffer.add_string buf "</select> ";
  Buffer.add_string buf "<input name=\"q\" placeholder=\"keywords\"> ";
  Buffer.add_string buf "bound <input name=\"bound\" value=\"6\" size=\"3\"> ";
  Buffer.add_string buf "<button>Search</button></form>";
  Buffer.add_string buf "<p>Data sets: ";
  Buffer.add_string buf (String.concat ", " (List.map Html_view.escape (Corpus.names t.corpus)));
  Buffer.add_string buf "</p></body></html>\n";
  Buffer.contents buf

let with_db t params f =
  match List.assoc_opt "data" params with
  | None -> error 400 "Bad Request" "missing ?data= parameter"
  | Some name -> begin
    match Corpus.find t.corpus name with
    | None -> error 404 "Not Found" (Printf.sprintf "unknown data set %S" name)
    | Some db -> f name db
  end

let search_page t target params =
  with_db t params (fun name db ->
      match List.assoc_opt "q" params with
      | None | Some "" -> error 400 "Bad Request" "missing ?q= parameter"
      | Some q ->
        let bound =
          match Option.bind (List.assoc_opt "bound" params) int_of_string_opt with
          | Some b when b >= 0 -> b
          | Some _ | None -> Pipeline.default_bound
        in
        let body =
          (* two cache levels: rendered pages by raw target, and
             search+snippet results by normalized query — a page miss with
             a differently-encoded target still skips the pipeline *)
          Lru.find_or_add t.pages target (fun () ->
              let results = Snippet_cache.run ~bound ~limit:25 t.snippets db q in
              Html_view.result_page
                ~title:(Printf.sprintf "eXtract — %s" name)
                ~query:q ~bound results)
        in
        ok body)

let complete_page t params =
  with_db t params (fun _ db ->
      match List.assoc_opt "prefix" params with
      | None | Some "" -> error 400 "Bad Request" "missing ?prefix= parameter"
      | Some prefix ->
        let completions = Extract_store.Inverted_index.complete (Pipeline.index db) prefix in
        text_ok
          (String.concat ""
             (List.map (fun (tok, count) -> Printf.sprintf "%s %d\n" tok count) completions)))

let cache_report t =
  let page_hits, page_misses = Lru.stats t.pages in
  let snip_hits, snip_misses = Snippet_cache.stats t.snippets in
  Printf.sprintf
    "page cache: %d hits, %d misses, %d/%d entries\n\
     snippet cache: %d hits, %d misses, %d/%d entries, hit rate %.2f\n"
    page_hits page_misses (Lru.length t.pages) (Lru.capacity t.pages) snip_hits
    snip_misses
    (Snippet_cache.length t.snippets)
    (Snippet_cache.capacity t.snippets)
    (Snippet_cache.hit_rate t.snippets)

let stats_page t params =
  with_db t params (fun name db ->
      let stats = Extract_store.Doc_stats.compute (Pipeline.kinds db) in
      text_ok
        (Format.asprintf "data set: %s@.%a@.%s" name Extract_store.Doc_stats.pp stats
           (cache_report t)))

let handle t target =
  match parse_target target with
  | exception _ -> error 400 "Bad Request" "unparsable target"
  | path, params -> begin
    try
      match path with
      | "/" | "/index.html" -> ok (home_page t)
      | "/search" -> search_page t target params
      | "/complete" -> complete_page t params
      | "/stats" -> stats_page t params
      | _ -> error 404 "Not Found" (Printf.sprintf "no route for %s" path)
    with e -> error 500 "Internal Server Error" (Printexc.to_string e)
  end

let cache_stats t = Lru.stats t.pages

let snippet_cache_stats t = Snippet_cache.stats t.snippets

(* ------------------------------------------------------------------ *)
(* Transport *)

let listen ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 16;
  sock

let bound_port sock =
  match Unix.getsockname sock with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Demo_server.bound_port: not an inet socket"

let read_request_line fd =
  (* read byte-wise up to the first newline; ample for a request line *)
  let buf = Buffer.create 128 in
  let byte = Bytes.create 1 in
  let rec loop n =
    if n > 8192 then None
    else if Unix.read fd byte 0 1 <> 1 then None
    else begin
      let c = Bytes.get byte 0 in
      if c = '\n' then Some (Buffer.contents buf)
      else begin
        if c <> '\r' then Buffer.add_char buf c;
        loop (n + 1)
      end
    end
  in
  loop 0

let write_response fd r =
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      r.status r.reason r.content_type (String.length r.body)
  in
  let payload = head ^ r.body in
  let bytes = Bytes.of_string payload in
  let rec write_all off =
    if off < Bytes.length bytes then begin
      let n = Unix.write fd bytes off (Bytes.length bytes - off) in
      write_all (off + n)
    end
  in
  write_all 0

let serve_once t listening =
  let fd, _ = Unix.accept listening in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let response =
        match read_request_line fd with
        | None -> error 400 "Bad Request" "empty request"
        | Some line -> begin
          match String.split_on_char ' ' line with
          | [ "GET"; target; _version ] -> handle t target
          | "GET" :: target :: _ -> handle t target
          | _ -> error 400 "Bad Request" (Printf.sprintf "unsupported request %S" line)
        end
      in
      write_response fd response)

let serve t ~port =
  let sock = listen ~port in
  Printf.printf "eXtract demo server on http://127.0.0.1:%d/\n%!" (bound_port sock);
  while true do
    match serve_once t sock with
    | () -> ()
    | exception Unix.Unix_error _ -> ()
  done
