(** The demo web service.

    The original demonstration ran as a web site (Apache + PHP, paper §4):
    the user picks an XML data set, issues keyword queries, customizes the
    snippet size bound and browses snippets with links to the complete
    results. This module is that service, self-contained: a tiny HTTP/1.1
    server (plain [Unix] sockets, no dependencies) over a {!Corpus}, with
    keep-alive connections, a fixed pool of OCaml 5 domain workers behind
    a bounded accept queue, and sharded LRU caches of rendered pages and
    snippet results shared across the workers.

    Routing:

    - [GET /] — home page: data sets and a search form;
    - [GET /search?data=NAME&q=QUERY&bound=N] — the Fig. 5 result page
      (HTML from {!Extract_snippet.Html_view});
    - [GET /complete?data=NAME&prefix=P] — query-box completions, plain
      text, one [token count] per line;
    - [GET /stats?data=NAME] — document statistics, plain text;
    - [GET /stats?format=json&data=NAME] — cache statistics, degraded
      count, the whole metrics registry, and (when [data] names a data
      set) its document statistics, as one JSON object;
    - [GET /metrics] — the {!Extract_obs.Registry} snapshot in the
      Prometheus text exposition format: per-stage latency histograms,
      cache hit/miss/eviction series, persistence IO bytes, degraded and
      shed counts, transport outcomes;
    - [GET /explain?data=NAME&q=QUERY&bound=N&format=json|text] — the
      {!Extract_snippet.Explain} bundle for the query: per-IList-entry
      selection fates, dominance scores, edge-budget accounting,
      posting/timing/cache sections and the request id (default JSON;
      never page-cached);
    - [GET /debug/slowlog] — the {!Extract_obs.Slowlog} snapshot: the
      slowest queries plus every recent degraded/faulted query, JSON;
    - [GET /debug/trace?last=N] — the newest buffered trace roots (all
      when [last] is absent) as Chrome trace-event JSON
      ({!Extract_obs.Trace_export}), Perfetto-loadable;
    - [GET /debug/runtime] — the {!Extract_obs.Runtime} sample: GC
      stats, domain counts and the collector inventory, JSON;
    - [GET /healthz] — liveness: [200 ok] whenever requests are being
      routed at all;
    - [GET /readyz] — readiness: [503] + [Retry-After] until serving
      has started ({!mark_ready}, done by {!start_pool}/{!serve}) and
      whenever the accept queue has reached its shed threshold, [200]
      otherwise, with a JSON component breakdown either way — the
      load-balancer gate;
    - anything else — 404.

    When created with a live corpus ([create ?live], the CLI's
    [serve --live DIR]), four more routes serve online updates:

    - [POST /admin/add?name=NAME] (body: the XML document) — journalled
      add/replace via {!Extract_snippet.Live_corpus.add}; unparsable XML
      or a bad name answers 400 and never reaches the journal;
    - [POST /admin/remove?name=NAME] — journalled remove (404 when the
      member does not exist);
    - [POST /admin/compact] — fold journalled updates into a fresh
      snapshot generation, plain-text reply names it;
    - [GET /live] — generation and member names, plain text;
    - [GET /live/search?q=QUERY&bound=N&limit=K] — search the live
      corpus (base + deltas, HTML like [/search]). Live pages bypass
      both the page and snippet caches: neither cache key encodes the
      store generation, and the query-view swap inside
      {!Extract_snippet.Live_corpus} already reuses every unchanged
      analyzed segment.

    Updates serialise on the live corpus's writer lock; searches read one
    atomic query-view snapshot and never block behind a writer. [GET] on
    an admin route (and [POST] anywhere else) answers 405 with an
    [Allow] header; admin routes without a live corpus answer 404.

    Every request runs under a fresh {!Extract_obs.Reqid}; with
    [EXTRACT_LOG] (or the CLI's [--log-level]) enabled, each request
    emits an [http.access] event whose [rid] matches the pipeline's
    event-log lines, the trace spans and the slowlog entry produced by
    the same request.

    [handle] is the pure request → response core (unit-testable without
    sockets); [serve], [serve_once] and {!start_pool} add the transport.

    {2 Resilience (DESIGN.md §9)}

    The transport assumes hostile or broken clients: SIGPIPE is ignored
    (a dying client costs one connection, not the process), reads and
    writes carry [SO_RCVTIMEO]/[SO_SNDTIMEO] timeouts so a slowloris
    client can wedge at most one worker for one timeout, the request
    line, header block and declared body are byte-bounded, and every
    per-connection failure is logged and dropped while the pool keeps
    serving. Each request may run under a deadline
    ({!config.deadline_ms}): snippets that would start after expiry
    degrade to the baseline (tagged in the HTML and counted on
    [/stats]), and a request whose budget is gone before search starts is
    shed with [503] + [Retry-After].

    {2 Multi-core serving (DESIGN.md §12)}

    {!serve} runs an acceptor domain feeding a bounded queue of accepted
    connections to [config.workers] worker domains; when the queue is
    full the acceptor itself answers [503] + [Retry-After] immediately.
    Each worker runs the keep-alive loop: up to
    [config.max_requests_per_conn] requests per connection, [Connection]
    and [Content-Length] honored, every error response closing the
    connection. Responses echo the request's HTTP version and always
    carry [Content-Length] and an explicit [Connection] header. *)

type t

val create :
  ?cache_size:int ->
  ?shards:int ->
  ?live:Extract_snippet.Live_corpus.t ->
  ?sharded:Extract_snippet.Shard_set.t ->
  Extract_snippet.Corpus.t ->
  t
(** [cache_size] bounds the rendered-page LRU (default 64 pages); the
    query-level snippet cache underneath holds [4 × cache_size]
    entries. Both caches are sharded [shards] ways (default 8,
    {!Extract_util.Sharded_lru}) so pool workers contend only on hash
    collisions. [live] attaches a crash-safe updatable corpus and
    enables the [/admin] and [/live] routes. [sharded] attaches a
    read-only split corpus ({!Extract_snippet.Shard_set}) and enables
    the [/shards] (status) and [/shards/search] (per-shard fan-out,
    k-way merged) routes — the CLI's [serve --shards].

    Creation also (re-)registers the server's runtime collectors
    ({!Extract_obs.Runtime.register_collector}): cache-occupancy gauges
    and, with [live], the journal-lag gauge. *)

val mark_ready : t -> unit
(** Flip the readiness latch: [/readyz] answers 200 (queue permitting)
    from now on. {!start_pool}, {!serve} and {!serve_once} call this
    when they start accepting; embedders driving {!handle_request}
    directly call it themselves once their corpus is in place. *)

type response = {
  status : int;
  reason : string;
  content_type : string;
  headers : (string * string) list;  (** extra headers, e.g. [Retry-After] on 503 *)
  body : string;
}

type meth = Get | Post

val handle_request :
  ?deadline:Extract_util.Deadline.t ->
  ?meth:meth ->
  ?body:string ->
  ?queue_wait:float ->
  t ->
  string ->
  response
(** [handle_request t target] serves one request (path + optional query
    string, e.g. ["/search?data=retail&q=store+texas&bound=6"]). [meth]
    (default [Get]) selects the route table; [body] (default [""]) is
    the captured request body, consumed only by [POST /admin/add]. Never
    raises: errors become 4xx/5xx responses — an injected transient fault
    ({!Extract_util.Faults.Injected}) maps to 503 + [Retry-After], any
    other escape to 500. An already-expired [deadline] sheds the search
    routes with 503 before any pipeline work; one that expires
    mid-request degrades the remaining snippets instead (a 200, never a
    timeout).

    When the request is picked by the trace sampler
    ([EXTRACT_TRACE_SAMPLE], {!Extract_obs.Trace.sampled}) — or tracing
    is enabled process-wide — the whole request records an
    [http.request] span tree, including a [queue.wait] child covering
    [queue_wait] seconds (how long the connection sat in the accept
    queue before a worker picked it up; default [0.], omitted). *)

val handle : ?deadline:Extract_util.Deadline.t -> t -> string -> response
(** [handle_request] with [~meth:Get ~body:""] — the pre-update entry
    point, kept for GET-only callers. *)

val cache_stats : t -> int * int
(** (hits, misses) of the page cache. *)

val snippet_cache_stats : t -> int * int
(** (hits, misses) of the query-level search+snippet cache
    ({!Extract_snippet.Snippet_cache}) sitting under the page cache. Both
    counters also appear on the [/stats] page. *)

val degraded_served : t -> int
(** Deadline-degraded snippets served since startup (also on [/stats]).
    Pages containing any are cached at neither cache level. *)

(** {1 Transport} *)

type config = {
  timeout_ms : int;
      (** per-connection socket read/write timeout ([SO_RCVTIMEO] /
          [SO_SNDTIMEO]); [0] disables. Default 5000. *)
  deadline_ms : int option;
      (** per-request snippet budget, started after the request is fully
          read; [None] (default) = no deadline. *)
  max_header_bytes : int;
      (** bound on the post-request-line header drain (default 32 KiB);
          beyond it the request is answered 431. *)
  workers : int;
      (** worker domains in the pool (default 1; values < 1 are clamped
          to 1). Each worker runs connections to completion, so
          [workers] bounds concurrently-served connections. *)
  queue_depth : int;
      (** accepted connections allowed to wait for a worker (default 64;
          clamped to ≥ 1). Beyond it the acceptor sheds with 503. *)
  max_requests_per_conn : int;
      (** keep-alive requests served on one connection before the server
          closes it (default 100) — bounds how long one client can hold
          a worker. *)
  log : string -> unit;
      (** dropped-connection and handler-failure reports (default:
          stderr). *)
}

val default_config : config

val listen : port:int -> Unix.file_descr
(** Bind and listen on 127.0.0.1:[port] ([port] 0 picks a free one). *)

val bound_port : Unix.file_descr -> int

val serve_once : ?config:config -> t -> Unix.file_descr -> unit
(** Accept one connection on a listening socket, answer one request,
    close (keep-alive is never granted: the single-shot entry point).
    Malformed requests get a 400, an overlong request line 400, an
    overlong header block 431, a read timeout 408, an oversized declared
    body 413; a client that disappears mid-response (EPIPE/reset) or
    reads too slowly is logged via [config.log] and dropped. Never
    raises for any of these per-connection conditions. *)

type pool
(** A running acceptor + worker-domain pool (see {!start_pool}). *)

val start_pool : ?config:config -> t -> Unix.file_descr -> pool
(** Start the domain pool on an already-listening socket and return
    immediately: one acceptor domain pushing accepted connections into a
    bounded queue ([config.queue_depth], overflow answered 503 +
    [Retry-After] by the acceptor), [config.workers] worker domains each
    running the keep-alive connection loop. The caller keeps ownership
    of the listening socket. *)

val stop_pool : pool -> unit
(** Graceful stop: close the queue, wake the acceptor (a loopback poke —
    closing the fd from another domain is not reliably observed), join
    all domains. Connections already queued or in flight are served to
    completion; the listening socket is left open for the caller. *)

val serve : ?config:config -> t -> port:int -> unit
(** [listen] + {!start_pool}, then park forever, with SIGPIPE ignored
    and a catch-all around each connection: no single client can stop
    the pool. On SIGTERM the {!Extract_obs.Slowlog} snapshot is dumped
    to stderr before exiting 0, so the worst and the degraded queries
    survive a shutdown. Never returns; intended for the CLI's [serve]
    command. *)

(** {1 Parsing helpers (exposed for tests)} *)

val url_decode : string -> string
(** Decode [%XX] escapes and [+] as space; malformed escapes are kept
    verbatim. *)

val parse_target : string -> string * (string * string) list
(** Split a request target into path and decoded query parameters. *)

val max_request_line : int
(** 8192 — the byte bound on the request line, terminator excluded;
    {!read_request_line} reads not one byte past it. *)

type read_outcome =
  | Line of string  (** a complete request line, terminator stripped *)
  | Eof  (** peer closed before a full line *)
  | Timed_out  (** [SO_RCVTIMEO] expired mid-line *)
  | Too_long  (** no terminator within {!max_request_line} bytes *)
  | Bad_cr  (** a CR not immediately followed by LF *)

val read_request_line : Unix.file_descr -> read_outcome
(** Read one LF- or CRLF-terminated line, byte-bounded. A bare CR inside
    the line is rejected as {!Bad_cr} (answered 400), not silently
    dropped. *)
