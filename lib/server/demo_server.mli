(** The demo web service.

    The original demonstration ran as a web site (Apache + PHP, paper §4):
    the user picks an XML data set, issues keyword queries, customizes the
    snippet size bound and browses snippets with links to the complete
    results. This module is that service, self-contained: a tiny HTTP/1.0
    server (plain [Unix] sockets, no dependencies) over a {!Corpus}, with
    an LRU cache of rendered pages.

    Routing:

    - [GET /] — home page: data sets and a search form;
    - [GET /search?data=NAME&q=QUERY&bound=N] — the Fig. 5 result page
      (HTML from {!Extract_snippet.Html_view});
    - [GET /complete?data=NAME&prefix=P] — query-box completions, plain
      text, one [token count] per line;
    - [GET /stats?data=NAME] — document statistics, plain text;
    - anything else — 404.

    [handle] is the pure request → response core (unit-testable without
    sockets); [serve] and [serve_once] add the transport. *)

type t

val create : ?cache_size:int -> Extract_snippet.Corpus.t -> t
(** [cache_size] bounds the rendered-page LRU (default 64 pages); the
    query-level snippet cache underneath holds [4 × cache_size]
    entries. *)

type response = {
  status : int;
  reason : string;
  content_type : string;
  body : string;
}

val handle : t -> string -> response
(** [handle t target] serves a request target (path + optional query
    string, e.g. ["/search?data=retail&q=store+texas&bound=6"]). Never
    raises: errors become 4xx/5xx responses. *)

val cache_stats : t -> int * int
(** (hits, misses) of the page cache. *)

val snippet_cache_stats : t -> int * int
(** (hits, misses) of the query-level search+snippet cache
    ({!Extract_snippet.Snippet_cache}) sitting under the page cache. Both
    counters also appear on the [/stats] page. *)

(** {1 Transport} *)

val listen : port:int -> Unix.file_descr
(** Bind and listen on 127.0.0.1:[port] ([port] 0 picks a free one). *)

val bound_port : Unix.file_descr -> int

val serve_once : t -> Unix.file_descr -> unit
(** Accept one connection on a listening socket, answer one request,
    close. Malformed requests get a 400. *)

val serve : t -> port:int -> unit
(** [listen] + [serve_once] forever. Never returns; intended for the CLI's
    [serve] command. *)

(** {1 Parsing helpers (exposed for tests)} *)

val url_decode : string -> string
(** Decode [%XX] escapes and [+] as space; malformed escapes are kept
    verbatim. *)

val parse_target : string -> string * (string * string) list
(** Split a request target into path and decoded query parameters. *)
