(** The demo web service.

    The original demonstration ran as a web site (Apache + PHP, paper §4):
    the user picks an XML data set, issues keyword queries, customizes the
    snippet size bound and browses snippets with links to the complete
    results. This module is that service, self-contained: a tiny HTTP/1.0
    server (plain [Unix] sockets, no dependencies) over a {!Corpus}, with
    an LRU cache of rendered pages.

    Routing:

    - [GET /] — home page: data sets and a search form;
    - [GET /search?data=NAME&q=QUERY&bound=N] — the Fig. 5 result page
      (HTML from {!Extract_snippet.Html_view});
    - [GET /complete?data=NAME&prefix=P] — query-box completions, plain
      text, one [token count] per line;
    - [GET /stats?data=NAME] — document statistics, plain text;
    - [GET /stats?format=json&data=NAME] — cache statistics, degraded
      count, the whole metrics registry, and (when [data] names a data
      set) its document statistics, as one JSON object;
    - [GET /metrics] — the {!Extract_obs.Registry} snapshot in the
      Prometheus text exposition format: per-stage latency histograms,
      cache hit/miss/eviction series, persistence IO bytes, degraded and
      shed counts, transport outcomes;
    - [GET /explain?data=NAME&q=QUERY&bound=N&format=json|text] — the
      {!Extract_snippet.Explain} bundle for the query: per-IList-entry
      selection fates, dominance scores, edge-budget accounting,
      posting/timing/cache sections and the request id (default JSON;
      never page-cached);
    - [GET /debug/slowlog] — the {!Extract_obs.Slowlog} snapshot: the
      slowest queries plus every recent degraded/faulted query, JSON;
    - anything else — 404.

    Every request runs under a fresh {!Extract_obs.Reqid}; with
    [EXTRACT_LOG] (or the CLI's [--log-level]) enabled, each request
    emits an [http.access] event whose [rid] matches the pipeline's
    event-log lines, the trace spans and the slowlog entry produced by
    the same request.

    [handle] is the pure request → response core (unit-testable without
    sockets); [serve] and [serve_once] add the transport.

    {2 Resilience (DESIGN.md §9)}

    The transport assumes hostile or broken clients: SIGPIPE is ignored
    (a dying client costs one connection, not the process), reads and
    writes carry [SO_RCVTIMEO]/[SO_SNDTIMEO] timeouts so a slowloris
    client cannot wedge the loop, the request line and header drain are
    byte-bounded, and every per-connection failure is logged and dropped
    while the accept loop keeps serving. Each request may run under a
    deadline ({!config.deadline_ms}): snippets that would start after
    expiry degrade to the baseline (tagged in the HTML and counted on
    [/stats]), and a request whose budget is gone before search starts is
    shed with [503] + [Retry-After]. *)

type t

val create : ?cache_size:int -> Extract_snippet.Corpus.t -> t
(** [cache_size] bounds the rendered-page LRU (default 64 pages); the
    query-level snippet cache underneath holds [4 × cache_size]
    entries. *)

type response = {
  status : int;
  reason : string;
  content_type : string;
  headers : (string * string) list;  (** extra headers, e.g. [Retry-After] on 503 *)
  body : string;
}

val handle : ?deadline:Extract_util.Deadline.t -> t -> string -> response
(** [handle t target] serves a request target (path + optional query
    string, e.g. ["/search?data=retail&q=store+texas&bound=6"]). Never
    raises: errors become 4xx/5xx responses — an injected transient fault
    ({!Extract_util.Faults.Injected}) maps to 503 + [Retry-After], any
    other escape to 500. An already-expired [deadline] sheds the search
    route with 503 before any pipeline work; one that expires mid-request
    degrades the remaining snippets instead (a 200, never a timeout). *)

val cache_stats : t -> int * int
(** (hits, misses) of the page cache. *)

val snippet_cache_stats : t -> int * int
(** (hits, misses) of the query-level search+snippet cache
    ({!Extract_snippet.Snippet_cache}) sitting under the page cache. Both
    counters also appear on the [/stats] page. *)

val degraded_served : t -> int
(** Deadline-degraded snippets served since startup (also on [/stats]).
    Pages containing any are cached at neither cache level. *)

(** {1 Transport} *)

type config = {
  timeout_ms : int;
      (** per-connection socket read/write timeout ([SO_RCVTIMEO] /
          [SO_SNDTIMEO]); [0] disables. Default 5000. *)
  deadline_ms : int option;
      (** per-request snippet budget, started after the request is fully
          read; [None] (default) = no deadline. *)
  max_header_bytes : int;
      (** bound on the post-request-line header drain (default 32 KiB);
          beyond it the request is answered 431. *)
  log : string -> unit;
      (** dropped-connection and handler-failure reports (default:
          stderr). *)
}

val default_config : config

val listen : port:int -> Unix.file_descr
(** Bind and listen on 127.0.0.1:[port] ([port] 0 picks a free one). *)

val bound_port : Unix.file_descr -> int

val serve_once : ?config:config -> t -> Unix.file_descr -> unit
(** Accept one connection on a listening socket, answer one request,
    close. Malformed requests get a 400, an overlong request line 400, an
    overlong header block 431, a read timeout 408; a client that
    disappears mid-response (EPIPE/reset) or reads too slowly is logged
    via [config.log] and dropped. Never raises for any of these
    per-connection conditions. *)

val serve : ?config:config -> t -> port:int -> unit
(** [listen] + [serve_once] forever, with SIGPIPE ignored and a catch-all
    around each connection: no single client can stop the accept loop.
    On SIGTERM the {!Extract_obs.Slowlog} snapshot is dumped to stderr
    before exiting 0, so the worst and the degraded queries survive a
    shutdown. Never returns; intended for the CLI's [serve] command. *)

(** {1 Parsing helpers (exposed for tests)} *)

val url_decode : string -> string
(** Decode [%XX] escapes and [+] as space; malformed escapes are kept
    verbatim. *)

val parse_target : string -> string * (string * string) list
(** Split a request target into path and decoded query parameters. *)

val max_request_line : int
(** 8192 — the byte bound on the request line, terminator excluded;
    {!read_request_line} reads not one byte past it. *)

type read_outcome =
  | Line of string  (** a complete request line, terminator stripped *)
  | Eof  (** peer closed before a full line *)
  | Timed_out  (** [SO_RCVTIMEO] expired mid-line *)
  | Too_long  (** no terminator within {!max_request_line} bytes *)
  | Bad_cr  (** a CR not immediately followed by LF *)

val read_request_line : Unix.file_descr -> read_outcome
(** Read one LF- or CRLF-terminated line, byte-bounded. A bare CR inside
    the line is rejected as {!Bad_cr} (answered 400), not silently
    dropped. *)
