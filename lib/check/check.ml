module Document = Extract_store.Document
module Dewey = Extract_store.Dewey
module Inverted_index = Extract_store.Inverted_index
module Dataguide = Extract_store.Dataguide
module Tokenizer = Extract_store.Tokenizer
module Result_tree = Extract_search.Result_tree
module Pipeline = Extract_snippet.Pipeline
module Selector = Extract_snippet.Selector
module Snippet_tree = Extract_snippet.Snippet_tree
module Ilist = Extract_snippet.Ilist

type issue = {
  area : string;
  what : string;
}

exception Violation of issue list

let issue_to_string i = Printf.sprintf "[%s] %s" i.area i.what

let pp_issue ppf i = Format.pp_print_string ppf (issue_to_string i)

let assert_ok = function
  | [] -> ()
  | issues -> raise (Violation issues)

(* Per-checker issue collector, capped so a systematically corrupt
   artifact yields a digest rather than one line per node. *)

let cap = 20

type collector = {
  area : string;
  mutable items : issue list; (* newest first *)
  mutable count : int;
}

let collector area = { area; items = []; count = 0 }

let report c fmt =
  Printf.ksprintf
    (fun what ->
      c.count <- c.count + 1;
      if c.count <= cap then c.items <- { area = c.area; what } :: c.items)
    fmt

let close c =
  let items = List.rev c.items in
  if c.count > cap then
    items
    @ [ { area = c.area; what = Printf.sprintf "... and %d more issue(s)" (c.count - cap) } ]
  else items

(* ------------------------------------------------------------------ *)
(* Document arena + Dewey order                                        *)

let check_arena doc =
  let c = collector "document" in
  let n = Document.node_count doc in
  if n = 0 then report c "empty arena"
  else begin
    if not (Document.is_element doc 0) then report c "root node 0 is not an element";
    (match Document.parent doc 0 with
    | None -> ()
    | Some p -> report c "root node 0 has parent %d" p);
    if Document.depth doc 0 <> 0 then report c "root depth is %d, want 0" (Document.depth doc 0);
    if Document.subtree_size doc 0 <> n then
      report c "root subtree size %d does not cover the %d-node arena"
        (Document.subtree_size doc 0) n
  end;
  for node = 0 to n - 1 do
    let size = Document.subtree_size doc node in
    if size < 1 then report c "node %d has subtree size %d < 1" node size
    else if node + size > n then
      report c "node %d subtree interval [%d,%d) overruns the arena (%d nodes)" node node
        (node + size) n;
    if node > 0 then begin
      match Document.parent doc node with
      | None -> report c "non-root node %d has no parent" node
      | Some p ->
        if p < 0 || p >= node then report c "node %d has parent %d, want a smaller id" node p
        else begin
          if Document.depth doc node <> Document.depth doc p + 1 then
            report c "node %d depth %d disagrees with parent %d depth %d" node
              (Document.depth doc node) p (Document.depth doc p);
          if node + size - 1 > Document.subtree_last doc p then
            report c "node %d subtree [%d,%d] escapes parent %d subtree [%d,%d]" node node
              (node + size - 1) p p (Document.subtree_last doc p)
        end
    end;
    if not (Document.is_element doc node) && size <> 1 then
      report c "text node %d has subtree size %d, want 1 (texts are leaves)" node size
  done;
  (* Children partition the parent's interval, in order. *)
  for node = 0 to n - 1 do
    if Document.is_element doc node then begin
      let expected = ref (node + 1) in
      List.iter
        (fun child ->
          if child <> !expected then
            report c "node %d: child %d starts at an unexpected id (want %d)" node child
              !expected
          else expected := child + Document.subtree_size doc child)
        (Document.children doc node);
      if !expected <> node + Document.subtree_size doc node then
        report c "node %d: children cover [%d,%d), subtree interval is [%d,%d)" node (node + 1)
          !expected node
          (node + Document.subtree_size doc node)
    end
  done;
  close c

let check_dewey doc =
  let c = collector "dewey" in
  let d = Dewey.of_document doc in
  let n = Document.node_count doc in
  for node = 0 to n - 1 do
    let len = Array.length (Dewey.label d node) in
    if len <> Document.depth doc node then
      report c "node %d label has %d components, depth is %d" node len
        (Document.depth doc node)
  done;
  for node = 0 to n - 2 do
    if Dewey.compare_nodes d node (node + 1) >= 0 then
      report c "labels of consecutive nodes %d and %d are not strictly increasing" node
        (node + 1);
    let via_labels = Dewey.lca d node (node + 1) in
    let via_parents = Document.lca doc node (node + 1) in
    if via_labels <> via_parents then
      report c "label LCA of %d and %d is %d, parent-walk LCA is %d" node (node + 1) via_labels
        via_parents
  done;
  close c

let check_document doc =
  match check_arena doc with
  (* Dewey construction walks the arena's intervals; only attempt it on a
     structurally sound arena (a corrupt size array could loop). *)
  | [] -> check_dewey doc
  | issues -> issues

(* ------------------------------------------------------------------ *)
(* Inverted index                                                      *)

let check_index idx =
  let c = collector "index" in
  let doc = Inverted_index.document idx in
  let n = Document.node_count doc in
  let repr = Inverted_index.Internal.to_repr idx in
  let tokens = repr.Inverted_index.Internal.tokens in
  let postings = repr.Inverted_index.Internal.postings in
  if Array.length tokens <> Array.length postings then
    report c "%d tokens but %d posting lists" (Array.length tokens) (Array.length postings);
  let lists = min (Array.length tokens) (Array.length postings) in
  for i = 0 to lists - 1 do
    let token = tokens.(i) in
    if token = "" then report c "token %d is empty" i;
    if Tokenizer.normalize token <> token then report c "token %S is not normalized" token;
    let arr = postings.(i) in
    if Array.length arr = 0 then report c "token %S has an empty posting list" token;
    Array.iteri
      (fun j node ->
        if j > 0 && node <= arr.(j - 1) then
          report c "postings of %S not strictly ascending at offset %d (%d after %d)" token j
            node
            arr.(j - 1);
        if node < 0 || node >= n then
          report c "posting %d of %S outside the arena [0,%d)" node token n
        else if not (Document.is_element doc node) then
          report c "posting %d of %S is a text node" node token
        else if Inverted_index.match_kind idx ~keyword:token ~node = None then
          report c "posting %d of %S does not match the token (tag or direct text)" node token)
      arr
  done;
  (* Postings <-> document agreement in both directions: rebuild from the
     document and diff token by token. *)
  if c.count = 0 then begin
    let fresh = Inverted_index.build doc in
    let fresh_repr = Inverted_index.Internal.to_repr fresh in
    let fresh_tokens = fresh_repr.Inverted_index.Internal.tokens in
    let have = Hashtbl.create (Array.length tokens) in
    Array.iter (fun t -> Hashtbl.replace have t ()) tokens;
    Array.iter
      (fun t ->
        if not (Hashtbl.mem have t) then
          report c "document token %S is missing from the index" t)
      fresh_tokens;
    Array.iteri
      (fun i token ->
        let want = Inverted_index.lookup fresh token in
        let got = postings.(i) in
        if want <> got then
          report c "postings of %S disagree with the document (%d stored, %d expected)" token
            (Array.length got) (Array.length want))
      tokens
  end;
  close c

(* ------------------------------------------------------------------ *)
(* Dataguide                                                           *)

let check_dataguide guide =
  let c = collector "dataguide" in
  let doc = Dataguide.document guide in
  let paths = Dataguide.paths guide in
  if List.length paths <> Dataguide.path_count guide then
    report c "paths list has %d entries, path_count is %d" (List.length paths)
      (Dataguide.path_count guide);
  let total = List.fold_left (fun acc p -> acc + Dataguide.instance_count guide p) 0 paths in
  if total <> Document.element_count doc then
    report c "instance counts sum to %d, document has %d elements" total
      (Document.element_count doc);
  for node = 0 to Document.node_count doc - 1 do
    if Document.is_element doc node then begin
      let p = Dataguide.path_of_node guide node in
      if Dataguide.path_tag guide p <> Document.tag_id doc node then
        report c "node %d tag %S disagrees with its path tag %S" node
          (Document.tag_name doc node)
          (Dataguide.path_tag_name guide p);
      if Dataguide.path_depth guide p <> Document.depth doc node then
        report c "node %d depth %d disagrees with path depth %d" node
          (Document.depth doc node)
          (Dataguide.path_depth guide p);
      match Document.parent doc node with
      | None ->
        if Dataguide.parent_path guide p <> None then
          report c "root node %d has a path with a parent path" node
      | Some parent ->
        let want = Some (Dataguide.path_of_node guide parent) in
        if Dataguide.parent_path guide p <> want then
          report c "node %d: parent path disagrees with the parent node's path" node
    end
  done;
  List.iter
    (fun p ->
      let s = Dataguide.path_string guide p in
      let segments = List.filter (fun x -> x <> "") (String.split_on_char '/' s) in
      match Dataguide.find_path guide segments with
      | Some q when q = p -> ()
      | Some q -> report c "path %S resolves to a different path id (%d, not %d)" s q p
      | None -> report c "path %S does not resolve via find_path" s)
    paths;
  close c

(* ------------------------------------------------------------------ *)
(* Result trees and snippets                                           *)

let check_result r =
  let c = collector "result" in
  let doc = Result_tree.document r in
  let root = Result_tree.root r in
  let members = Result_tree.members r in
  if Array.length members = 0 then report c "result has no members"
  else begin
    if members.(0) <> root then
      report c "first member %d is not the root %d" members.(0) root;
    let last = Document.subtree_last doc root in
    Array.iteri
      (fun i m ->
        if i > 0 && m <= members.(i - 1) then
          report c "members not strictly ascending at offset %d" i;
        if m < root || m > last then
          report c "member %d outside the root's subtree [%d,%d]" m root last;
        if m <> root then begin
          match Document.parent doc m with
          | Some p when Result_tree.mem r p -> ()
          | Some p -> report c "member %d's parent %d is not a member (not ancestor-closed)" m p
          | None -> report c "member %d has no parent yet is not the root" m
        end)
      members
  end;
  close c

let check_selection ?(degraded = false) (sel : Selector.selection) =
  let c = collector "snippet" in
  let snippet = sel.Selector.snippet in
  let result = Snippet_tree.result snippet in
  let doc = Result_tree.document result in
  let root = Result_tree.root result in
  if sel.Selector.bound < 0 then report c "negative bound %d" sel.Selector.bound;
  if not (Snippet_tree.mem snippet root) then
    report c "snippet does not contain the result root %d" root;
  let nodes = Snippet_tree.nodes snippet in
  List.iter
    (fun node ->
      if not (Result_tree.mem result node) then
        report c "snippet node %d is not a member of the result" node
      else if not (Document.is_element doc node) then
        report c "snippet node %d is not an element" node;
      if node <> root then begin
        match Document.parent doc node with
        | Some p when Snippet_tree.mem snippet p -> ()
        | Some p -> report c "snippet node %d is disconnected (parent %d absent)" node p
        | None -> report c "snippet node %d has no parent yet is not the root" node
      end)
    nodes;
  let edges = Snippet_tree.edge_count snippet in
  if edges <> Snippet_tree.element_count snippet - 1 then
    report c "edge count %d disagrees with element count %d" edges
      (Snippet_tree.element_count snippet);
  if edges > sel.Selector.bound then
    report c "snippet has %d edges, over the bound of %d" edges sel.Selector.bound;
  (* a degraded (deadline-expired) selection is a baseline snippet with no
     coverage accounting: its edges are bought by no covered item, so the
     cost-sum identity deliberately does not apply *)
  if not degraded then begin
    let cost_sum =
      List.fold_left (fun acc (cv : Selector.covered) -> acc + cv.Selector.cost) 0
        sel.Selector.covered
    in
    if cost_sum <> edges then
      report c "covered item costs sum to %d, snippet has %d edges" cost_sum edges
  end;
  List.iter
    (fun (cv : Selector.covered) ->
      if cv.Selector.cost < 0 then report c "covered item has negative cost %d" cv.Selector.cost;
      if not (Snippet_tree.mem snippet cv.Selector.instance) then
        report c "covered item instance %d is missing from the snippet" cv.Selector.instance)
    sel.Selector.covered;
  List.iter
    (fun (e : Ilist.entry) ->
      if Array.length e.Ilist.instances = 0 then
        report c "skipped item %S has no instances (belongs in uncoverable)"
          (Ilist.display e.Ilist.item))
    sel.Selector.skipped;
  List.iter
    (fun (e : Ilist.entry) ->
      if Array.length e.Ilist.instances > 0 then
        report c "uncoverable item %S has %d instance(s)" (Ilist.display e.Ilist.item)
          (Array.length e.Ilist.instances))
    sel.Selector.uncoverable;
  close c

(* ------------------------------------------------------------------ *)
(* Persisted artifacts on disk                                         *)

module Persist = Extract_store.Persist
module Codec = Extract_store.Codec

let sniff_file path =
  let ic = open_in_bin path in
  let head =
    try really_input_string ic (min (in_channel_length ic) 16)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  Persist.sniff_magic head

(* Deliberately reports rather than masks: [Corpus.load_file] rebuilds
   from XML on corruption, but fsck's job is to say the artifact is bad —
   including the quiet failure mode where both files are individually
   intact yet the index was built from some other arena (fingerprint
   mismatch). *)
let check_pair ~arena ~index =
  let c = collector "persist" in
  let doc =
    try
      match sniff_file arena with
      | Some m when m = Persist.magic -> Some (Persist.load arena)
      | Some m when m = Persist.bundle_magic ->
        report c "%s is a bundle, not a bare arena (its index travels inside it)" arena;
        None
      | Some _ | None -> Some (Document.load_file arena)
    with
    | Codec.Corrupt msg ->
      report c "arena %s: %s" arena msg;
      None
    | Codec.Truncated msg ->
      report c "arena %s: truncated: %s" arena msg;
      None
    | Extract_xml.Error.Parse_error (pos, msg) ->
      report c "arena %s: %s" arena (Extract_xml.Error.to_string pos msg);
      None
  in
  (match doc with
  | None -> ()
  | Some doc -> (
    match Persist.load_index index ~doc with
    | _ -> ()
    | exception Codec.Corrupt msg -> report c "index %s: %s" index msg
    | exception Codec.Truncated msg -> report c "index %s: truncated: %s" index msg));
  close c

(* ------------------------------------------------------------------ *)
(* v2 mmap snapshots                                                   *)

module Snapshot = Extract_store.Snapshot

(* The deep pass {!Snapshot.load} deliberately skips: spend every
   recorded section digest, re-derive the arena fingerprint, then run
   the structural document/index checks over the mapped database. *)
let check_snapshot path =
  let c = collector "snapshot" in
  match Snapshot.verify path with
  | _stats ->
    let doc, index = Snapshot.load path in
    close c @ check_document doc @ check_index index
  | exception Codec.Corrupt msg ->
    report c "snapshot %s: %s" path msg;
    close c
  | exception Codec.Truncated msg ->
    report c "snapshot %s: truncated: %s" path msg;
    close c

(* ------------------------------------------------------------------ *)
(* Live store directories                                              *)

module Journal = Extract_store.Journal
module Live = Extract_store.Live

(* fsck for a live-store directory. Issues are real damage; notes are
   the benign crash leftovers recovery repairs on the next writable open
   (torn journal tail, stale checkpoint, stray temp files). *)
let check_live dir =
  let c = collector "live" in
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  (match Journal.read (Live.journal_path dir) with
  | records, tail ->
    (match tail with
    | Journal.Complete -> ()
    | Journal.Torn { offset; reason } ->
      note "journal: torn tail at byte %d (%s); truncated on next writable open" offset reason);
    let newest = match List.rev (Live.generations dir) with [] -> 0 | g :: _ -> g in
    (match Journal.last_checkpoint records with
    | Some g when g > newest ->
      report c "journal checkpoint references generation %d but newest snapshot is %d" g
        newest
    | Some g when g < newest ->
      note "journal checkpoint %d predates snapshot generation %d; healed on next writable \
            open"
        g newest
    | Some _ | None -> ())
  | exception Codec.Corrupt msg -> report c "journal: %s" msg
  | exception Codec.Truncated msg -> report c "journal: truncated: %s" msg);
  let content_issues =
    match Live.open_dir ~read_only:true ~on_warning:(fun w -> note "recovery: %s" w) dir with
    | store ->
      let view = Live.view store in
      let doc = view.Live.doc in
      let n = Document.node_count doc in
      (* member table sanity: ascending disjoint element subtrees, and
         every tombstone names a base member *)
      let last_end = ref 0 in
      List.iter
        (fun (name, root) ->
          if root <= 0 || root >= n then
            report c "member %S root %d outside the arena (0,%d)" name root n
          else begin
            if not (Document.is_element doc root) then
              report c "member %S root %d is not an element" name root;
            if root <= !last_end then
              report c "member %S subtree overlaps the previous member" name;
            last_end := Document.subtree_last doc root
          end)
        view.Live.members;
      List.iter
        (fun name ->
          if not (List.exists (fun (m, _) -> String.equal m name) view.Live.members) then
            report c "tombstone %S names no base member" name)
        view.Live.tombstones;
      let deltas =
        List.concat_map
          (fun (name, (d : Live.delta)) ->
            List.map
              (fun i -> { i with what = Printf.sprintf "delta %S: %s" name i.what } )
              (check_document d.Live.delta_doc @ check_index d.Live.delta_index))
          view.Live.deltas
      in
      Live.close store;
      check_document doc @ check_index view.Live.index @ deltas
    | exception Codec.Corrupt msg ->
      report c "recovery failed: %s" msg;
      []
    | exception Codec.Truncated msg ->
      report c "recovery failed: truncated: %s" msg;
      []
  in
  close c @ content_issues, List.rev !notes

(* ------------------------------------------------------------------ *)
(* Whole database + query probes                                       *)

let check_db db =
  check_document (Pipeline.document db)
  @ check_index (Pipeline.index db)
  @ check_dataguide (Pipeline.dataguide db)

let check_ilist db (s : Pipeline.snippet_result) =
  let c = collector "snippet" in
  ignore db;
  List.iter
    (fun (e : Ilist.entry) ->
      Array.iter
        (fun inst ->
          if not (Result_tree.mem s.Pipeline.result inst) then
            report c "IList item %S instance %d is not a member of its result"
              (Ilist.display e.Ilist.item) inst)
        e.Ilist.instances)
    (Ilist.entries s.Pipeline.ilist);
  close c

let check_query ?semantics ?(bound = Pipeline.default_bound) db query =
  let results = Pipeline.run ?semantics ~bound db query in
  List.concat_map
    (fun (s : Pipeline.snippet_result) ->
      check_result s.Pipeline.result @ check_ilist db s
      @ check_selection ~degraded:s.Pipeline.degraded s.Pipeline.selection)
    results

let probe_queries db =
  let index = Pipeline.index db in
  let scored =
    List.map (fun t -> t, Array.length (Inverted_index.lookup index t))
      (Inverted_index.vocabulary index)
  in
  let top =
    List.stable_sort
      (fun (ta, ca) (tb, cb) ->
        if ca <> cb then Int.compare cb ca else String.compare ta tb)
      scored
  in
  match top with
  | (a, _) :: (b, _) :: _ -> [ a; b; a ^ " " ^ b ]
  | [ (a, _) ] -> [ a ]
  | [] -> []

let all ?queries db =
  let queries =
    match queries with
    | Some qs -> qs
    | None -> probe_queries db
  in
  check_db db @ List.concat_map (fun q -> check_query db q) queries

(* ------------------------------------------------------------------ *)
(* Pipeline stage assertions                                           *)

let install_pipeline_observer () =
  Pipeline.set_observer
    (Some
       {
         Pipeline.on_built = (fun db -> assert_ok (check_db db));
         Pipeline.on_results =
           (fun _db results -> assert_ok (List.concat_map check_result results));
         Pipeline.on_snippets =
           (fun db snips ->
             assert_ok
               (List.concat_map
                  (fun (s : Pipeline.snippet_result) ->
                    check_ilist db s
                    @ check_selection ~degraded:s.Pipeline.degraded s.Pipeline.selection)
                  snips));
       })

let env_var = "EXTRACT_CHECK"

let install_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" | Some "0" -> ()
  | Some _ -> install_pipeline_observer ()
