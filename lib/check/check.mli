(** Invariant verifier ("fsck") for built artifacts.

    The pipeline's hot paths (interval binary search, SLCA merges, greedy
    instance selection) silently assume deep structural invariants:
    pre-order arenas whose subtree intervals nest, Dewey labels in strict
    document order, sorted and deduplicated posting lists that agree with
    the document, a dataguide consistent with every node's root path, and
    snippets that stay connected rooted trees within the edge bound. This
    module checks all of them explicitly.

    Three consumers:

    - the [extract check] CLI verb, over any persisted index/dataset;
    - the test suite, which runs {!all} against every bundled generator;
    - opt-in debug assertions at pipeline stage boundaries, enabled by
      setting the [EXTRACT_CHECK] environment variable
      ({!install_from_env}). *)

module Document = Extract_store.Document
module Pipeline = Extract_snippet.Pipeline

type issue = {
  area : string;  (** "document", "dewey", "index", "dataguide", "result", "snippet" *)
  what : string;  (** human-readable description of the violated invariant *)
}

exception Violation of issue list
(** Raised by {!assert_ok} (and hence by the [EXTRACT_CHECK] stage
    assertions) when issues were found. *)

val pp_issue : Format.formatter -> issue -> unit

val issue_to_string : issue -> string

val assert_ok : issue list -> unit
(** No-op on [[]]; raises {!Violation} otherwise. *)

(** {1 Artifact checkers}

    Each checker returns the violations found (empty = clean). Issue lists
    are truncated per area after a fixed cap so a systematically corrupt
    artifact reports a digest, not millions of lines. *)

val check_document : Document.t -> issue list
(** Arena structure: root/parent/depth agreement, subtree intervals that
    nest and partition, text nodes as leaves — plus Dewey labels: strict
    document order of consecutive labels, label length = node depth, and
    label-based LCA agreeing with the parent-walk LCA. *)

val check_index : Extract_store.Inverted_index.t -> issue list
(** Posting lists sorted strictly ascending (hence deduplicated), every
    posting a live element node that actually matches its token, and
    postings↔document agreement: the index is rebuilt from the document
    and compared token by token, so both missing and phantom postings are
    reported. *)

val check_dataguide : Extract_store.Dataguide.t -> issue list
(** Per-node path agreement (tag, depth, parent path), instance counts
    that sum to the element count, and [path_string]/[find_path]
    round-tripping for every path. *)

val check_result : Extract_search.Result_tree.t -> issue list
(** Result-tree shape: members sorted strictly ascending, inside the
    root's subtree interval, and ancestor-closed up to the root. *)

val check_selection : ?degraded:bool -> Extract_snippet.Selector.selection -> issue list
(** Snippet output: connected (every node's parent present, up to the
    result root), rooted at the result root, within the edge bound
    ([edge_count = element_count - 1 <= bound]), covered costs summing to
    the edge count, and every covered item's instance present in the
    snippet ("all features present"). With [~degraded:true] (a
    deadline-expired {!Pipeline.snippet_result}) the cost-sum identity is
    skipped: a baseline snippet's edges are bought by no covered item. *)

val check_pair : arena:string -> index:string -> issue list
(** Validate a persisted arena/index pair on disk (area ["persist"]):
    each file's seal (magic, version, checksum) and the index's recorded
    arena fingerprint against the arena actually given — the quiet
    failure mode where both files are individually intact but the index
    was built from a different arena. [arena] may also be an XML source
    file or (reported as an issue) a bundle. Unlike
    {!Extract_snippet.Corpus.load_file} this reports corruption instead
    of rebuilding around it — fsck's job is to say the artifact is bad. *)

val check_snapshot : string -> issue list
(** fsck for a v2 mmap snapshot (area ["snapshot"]): the deep pass
    {!Extract_store.Snapshot.load} deliberately skips — every recorded
    section digest is spent and the arena fingerprint re-derived
    ({!Extract_store.Snapshot.verify}) — followed by
    {!check_document}/{!check_index} over the mapped database. An empty
    or truncated file is one issue naming the path and expected magic. *)

val check_live : string -> issue list * string list
(** fsck for a live-store directory (area ["live"]): journal readability
    and checkpoint/snapshot-generation agreement, read-only recovery
    (snapshot seals, generation fallback, replay), member-table sanity
    (ascending disjoint element subtrees, tombstones that name base
    members), and {!check_document}/{!check_index} over the recovered
    base and every delta segment. Returns [(issues, notes)]: issues are
    real damage; notes are benign crash leftovers — a torn journal tail,
    a stale checkpoint, stray temp files — that the next writable
    {!Extract_store.Live.open_dir} repairs. *)

(** {1 Whole-database checks} *)

val check_db : Pipeline.t -> issue list
(** {!check_document} + {!check_index} + {!check_dataguide}. *)

val check_query :
  ?semantics:Extract_search.Engine.semantics ->
  ?bound:int ->
  Pipeline.t ->
  string ->
  issue list
(** Run the full snippet pipeline for one query and validate every result
    tree and every selection. *)

val probe_queries : Pipeline.t -> string list
(** Deterministic default workload for {!all}: the two most frequent
    indexed tokens as single-keyword queries plus their conjunction. *)

val all : ?queries:string list -> Pipeline.t -> issue list
(** {!check_db} plus {!check_query} over [queries] (default
    {!probe_queries}). The test suite runs this against every bundled
    generator; [extract check] runs it over any loaded database. *)

(** {1 Pipeline stage assertions} *)

val install_pipeline_observer : unit -> unit
(** Install a {!Pipeline.set_observer} hook that runs {!check_db} after
    every build/load, {!check_result} on every search result and
    {!check_selection} on every produced snippet, raising {!Violation} on
    the first corrupt stage. *)

val env_var : string
(** ["EXTRACT_CHECK"]. *)

val install_from_env : unit -> unit
(** {!install_pipeline_observer} when [EXTRACT_CHECK] is set to anything
    but [""] or ["0"]; no-op otherwise. Entry points (CLI, demo server,
    test runner) call this at startup. *)
