module Prng = Extract_util.Prng
module Document = Extract_store.Document
module Node_kind = Extract_store.Node_kind
module Dataguide = Extract_store.Dataguide
module Tokenizer = Extract_store.Tokenizer

type spec = {
  seed : int;
  queries : int;
  min_keywords : int;
  max_keywords : int;
}

let default = { seed = 3; queries = 20; min_keywords = 2; max_keywords = 3 }

let attribute_tokens kinds entity =
  let doc = Node_kind.document kinds in
  Document.children doc entity
  |> List.filter_map (fun c ->
         if Document.is_element doc c && Node_kind.is_attribute kinds c then begin
           match Tokenizer.tokens (Node_kind.attribute_value kinds c) with
           | [] -> None
           | toks -> Some toks
         end
         else None)

let generate spec kinds =
  let rng = Prng.create spec.seed in
  let guide = Node_kind.dataguide kinds in
  let entity_instances =
    Node_kind.entity_paths kinds
    |> List.concat_map (Dataguide.instances guide)
    |> Array.of_list
  in
  if Array.length entity_instances = 0 then []
  else begin
    let doc = Node_kind.document kinds in
    let make _ =
      let entity = Prng.choose rng entity_instances in
      let value_token_lists = attribute_tokens kinds entity in
      match value_token_lists with
      | [] -> None
      | _ ->
        let n_keywords = Prng.int_in_range rng ~min:spec.min_keywords ~max:spec.max_keywords in
        let pool = Array.of_list (List.map Array.of_list value_token_lists) in
        let rec draw acc remaining =
          if remaining = 0 then acc
          else begin
            let toks = Prng.choose rng pool in
            let tok = Prng.choose rng toks in
            if List.mem tok acc then draw acc (remaining - 1)
            else draw (tok :: acc) (remaining - 1)
          end
        in
        (* one slot is reserved for the entity tag name, the rest are
           value tokens *)
        let values = draw [] (max 1 (n_keywords - 1)) in
        let keywords = Document.tag_name doc entity :: List.rev values in
        Some (String.concat " " keywords)
    in
    List.init (spec.queries * 2) make
    |> List.filter_map Fun.id
    |> List.filteri (fun i _ -> i < spec.queries)
  end
