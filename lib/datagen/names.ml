(* read-only — static name pool *)
let cities =
  [|
    "Houston"; "Austin"; "Dallas"; "El Paso"; "San Antonio"; "Fort Worth"; "Plano";
    "Laredo"; "Lubbock"; "Garland"; "Irving"; "Amarillo"; "Brownsville"; "McKinney";
    "Frisco"; "Pasadena"; "Mesquite"; "Killeen"; "McAllen"; "Waco";
  |]

(* read-only — static name pool *)
let states =
  [|
    "Texas"; "California"; "New York"; "Florida"; "Illinois"; "Ohio"; "Georgia";
    "Arizona"; "Washington"; "Oregon";
  |]

(* read-only — static name pool *)
let store_names =
  [|
    "Galleria"; "West Village"; "Market Square"; "Town Center"; "Riverside"; "Lakeline";
    "Uptown"; "Midtown"; "Old Mill"; "Cedar Park"; "Stone Oak"; "Bay Plaza"; "Sunset";
    "North Star"; "Highland"; "Willow Bend"; "Oak Lawn"; "Deep Ellum"; "The Domain";
    "South Congress";
  |]

(* read-only — static name pool *)
let retailer_names =
  [|
    "Brook Brothers"; "Levis"; "ESprit"; "Nordstrom"; "Macys"; "Gap"; "Banana Republic";
    "Old Navy"; "J Crew"; "Uniqlo"; "Zara"; "Patagonia"; "Columbia"; "Eddie Bauer";
    "Lands End"; "Talbots";
  |]

(* read-only — static name pool *)
let clothes_categories =
  [|
    "outwear"; "suit"; "skirt"; "sweaters"; "jeans"; "shirts"; "dresses"; "shorts";
    "jackets"; "coats"; "vests";
  |]

(* read-only — static name pool *)
let fittings = [| "man"; "woman"; "children" |]

(* read-only — static name pool *)
let situations = [| "casual"; "formal" |]

(* read-only — static name pool *)
let first_names =
  [|
    "James"; "Mary"; "Robert"; "Patricia"; "John"; "Jennifer"; "Michael"; "Linda";
    "David"; "Elizabeth"; "William"; "Barbara"; "Richard"; "Susan"; "Joseph"; "Jessica";
    "Thomas"; "Sarah"; "Carlos"; "Yuki"; "Wei"; "Amara"; "Noor"; "Ivan";
  |]

(* read-only — static name pool *)
let last_names =
  [|
    "Smith"; "Johnson"; "Williams"; "Brown"; "Jones"; "Garcia"; "Miller"; "Davis";
    "Rodriguez"; "Martinez"; "Hernandez"; "Lopez"; "Gonzalez"; "Wilson"; "Anderson";
    "Thomas"; "Taylor"; "Moore"; "Chen"; "Kim"; "Nakamura"; "Singh"; "Okafor"; "Novak";
  |]

(* read-only — static name pool *)
let movie_adjectives =
  [|
    "Silent"; "Crimson"; "Forgotten"; "Eternal"; "Hidden"; "Broken"; "Golden"; "Last";
    "Distant"; "Burning"; "Frozen"; "Midnight"; "Savage"; "Gentle"; "Electric";
  |]

(* read-only — static name pool *)
let movie_nouns =
  [|
    "Horizon"; "Empire"; "Garden"; "River"; "Promise"; "Shadow"; "Voyage"; "Kingdom";
    "Letter"; "Summer"; "Winter"; "Station"; "Harbor"; "Orchard"; "Mirror"; "Signal";
  |]

(* read-only — static name pool *)
let genres =
  [| "drama"; "comedy"; "thriller"; "documentary"; "animation"; "romance"; "western" |]

(* read-only — static name pool *)
let studios =
  [|
    "Meridian Pictures"; "Bluebird Films"; "Cathedral Studios"; "Red Rock Media";
    "Northlight"; "Starfall Entertainment";
  |]

(* read-only — static name pool *)
let countries =
  [| "USA"; "France"; "Japan"; "Italy"; "Mexico"; "Korea"; "Germany"; "Brazil" |]

(* read-only — static name pool *)
let auction_items =
  [|
    "bicycle"; "camera"; "guitar"; "wristwatch"; "bookshelf"; "typewriter"; "telescope";
    "turntable"; "armchair"; "lamp"; "teapot"; "painting"; "rug"; "clock"; "radio";
  |]

(* read-only — static name pool *)
let auction_adjectives =
  [|
    "vintage"; "antique"; "handmade"; "restored"; "rare"; "mint"; "classic"; "signed";
    "original"; "limited";
  |]

(* read-only — static name pool *)
let payment_kinds = [| "credit"; "cash"; "wire"; "check" |]

(* read-only — static name pool *)
let journals =
  [|
    "VLDB"; "SIGMOD"; "ICDE"; "TODS"; "CIKM"; "EDBT"; "WWW"; "KDD";
  |]

(* read-only — static name pool *)
let paper_topic_words =
  [|
    "keyword"; "search"; "ranking"; "snippet"; "index"; "query"; "schema"; "stream";
    "graph"; "join"; "cache"; "transaction"; "optimization"; "semantics"; "storage";
  |]

(* read-only — static name pool *)
let full_name rng =
  Printf.sprintf "%s %s"
    (Extract_util.Prng.choose rng first_names)
    (Extract_util.Prng.choose rng last_names)

(* read-only — static name pool *)
let movie_title rng =
  Printf.sprintf "The %s %s"
    (Extract_util.Prng.choose rng movie_adjectives)
    (Extract_util.Prng.choose rng movie_nouns)

(* read-only — static name pool *)
let unique_label base i = Printf.sprintf "%s-%d" base i
