(** Block-compressed posting lists.

    A posting list — the strictly ascending array of node ids where a
    keyword occurs — packed as delta+varint blocks of
    {!Codec.block_size} entries with a skip table of per-block first
    values. The skip table keeps {!Postings}-style subtree-interval
    binary search alive on the compressed form: every point or range
    probe binary-searches the skips and decodes at most one block.

    Typical footprint is 1–2 bytes per posting against the 8 bytes of a
    plain [int array]; see DESIGN.md §15 and EXPERIMENTS.md E22. *)

type t

val empty : t

val of_array : int array -> t
(** Pack a strictly ascending array of non-negative node ids.
    @raise Invalid_argument if unsorted, duplicated, or negative. *)

val to_array : t -> int array
(** Full decode, in ascending order. *)

val length : t -> int
(** Number of postings. *)

val nblocks : t -> int

val byte_size : t -> int
(** Approximate resident bytes: compressed data + skip/offset tables. *)

val get : t -> int -> int
(** [get t i] is the [i]th posting (decodes one block).
    @raise Invalid_argument out of bounds. *)

(** {1 Search — mirrors {!Postings} on node ids} *)

val lower_bound : t -> int -> int
(** Smallest index [i] with [get t i >= x], or [length t]. *)

val mem : t -> int -> bool

val closest_in : t -> lo:int -> hi:int -> int option
(** Smallest posting in [\[lo, hi\]], if any. *)

val pred_of : t -> int -> int option
(** Greatest posting [< x]. *)

val succ_of : t -> int -> int option
(** Smallest posting [> x]. *)

val subtree_range : Document.t -> t -> int -> int * int
(** [subtree_range doc t root] is the half-open index interval of
    postings inside [root]'s subtree. *)

val in_subtree : Document.t -> t -> int -> int list

val count_in_subtree : Document.t -> t -> int -> int

(** {1 Codec embedding} *)

val encode : Codec.writer -> t -> unit

val decode : Codec.reader -> t
(** @raise Codec.Corrupt on inconsistent block structure. *)
