type test =
  | Tag of string
  | Any

type predicate =
  | No_predicate
  | Nth of int
  | Child_equals of string * string

type step = {
  axis : [ `Child | `Descendant ];
  test : test;
  predicate : predicate;
}

type t = step list

(* ------------------------------------------------------------------ *)
(* Parsing *)

let fail fmt = Printf.ksprintf invalid_arg fmt

let parse_predicate body =
  match int_of_string_opt body with
  | Some n ->
    if n <= 0 then fail "Path_query: positional predicate must be >= 1, got %d" n;
    Nth n
  | None -> begin
    match String.index_opt body '=' with
    | None -> fail "Path_query: unsupported predicate [%s]" body
    | Some eq ->
      let child = String.trim (String.sub body 0 eq) in
      let value = String.trim (String.sub body (eq + 1) (String.length body - eq - 1)) in
      let unquote v =
        let n = String.length v in
        if n >= 2 && ((v.[0] = '"' && v.[n - 1] = '"') || (v.[0] = '\'' && v.[n - 1] = '\''))
        then String.sub v 1 (n - 2)
        else fail "Path_query: predicate value must be quoted in [%s]" body
      in
      if child = "" then fail "Path_query: empty child name in predicate [%s]" body;
      Child_equals (child, unquote value)
  end

let parse_step axis raw =
  if raw = "" then fail "Path_query: empty step";
  let name, predicate =
    match String.index_opt raw '[' with
    | None -> raw, No_predicate
    | Some open_b ->
      if raw.[String.length raw - 1] <> ']' then fail "Path_query: missing ']' in %S" raw;
      let name = String.sub raw 0 open_b in
      let body = String.sub raw (open_b + 1) (String.length raw - open_b - 2) in
      name, parse_predicate body
  in
  let test =
    if name = "*" then Any
    else if name = "" then fail "Path_query: missing tag in step %S" raw
    else Tag name
  in
  { axis; test; predicate }

let parse input =
  let n = String.length input in
  if n = 0 || input.[0] <> '/' then fail "Path_query: a path must start with '/'";
  let steps = ref [] in
  let i = ref 0 in
  while !i < n do
    (* at a '/' *)
    let axis =
      if !i + 1 < n && input.[!i + 1] = '/' then begin
        i := !i + 2;
        `Descendant
      end
      else begin
        incr i;
        `Child
      end
    in
    let start = !i in
    while !i < n && input.[!i] <> '/' do
      incr i
    done;
    let raw = String.sub input start (!i - start) in
    steps := parse_step axis raw :: !steps
  done;
  List.rev !steps

let string_of_step s =
  let name =
    match s.test with
    | Any -> "*"
    | Tag t -> t
  in
  let pred =
    match s.predicate with
    | No_predicate -> ""
    | Nth n -> Printf.sprintf "[%d]" n
    | Child_equals (c, v) -> Printf.sprintf "[%s=\"%s\"]" c v
  in
  name ^ pred

let to_string t =
  String.concat ""
    (List.map
       (fun s ->
         (match s.axis with
         | `Child -> "/"
         | `Descendant -> "//")
         ^ string_of_step s)
       t)

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let matches_test doc node = function
  | Any -> Document.is_element doc node
  | Tag t -> Document.is_element doc node && Document.tag_name doc node = t

let has_equal_child doc node child value =
  List.exists
    (fun c ->
      Document.is_element doc c
      && Document.tag_name doc c = child
      && String.trim (Document.immediate_text doc c) = value)
    (Document.children doc node)

(* Candidates of one step from a single context node, predicate applied.
   The positional predicate counts per context node, XPath-style. *)
let step_from doc context step =
  let base =
    match step.axis with
    | `Child ->
      List.filter (fun c -> matches_test doc c step.test) (Document.children doc context)
    | `Descendant ->
      let acc = ref [] in
      for n = Document.subtree_last doc context downto context do
        (* descendant-or-self, matching XPath's '//' abbreviation *)
        if matches_test doc n step.test then acc := n :: !acc
      done;
      !acc
  in
  match step.predicate with
  | No_predicate -> base
  | Nth k -> (match List.nth_opt base (k - 1) with Some n -> [ n ] | None -> [])
  | Child_equals (c, v) -> List.filter (fun n -> has_equal_child doc n c v) base

let select doc t =
  (* The first step applies to a virtual root whose only child is the
     document root. *)
  let initial = function
    | { axis = `Child; test; predicate } ->
      let base = if matches_test doc 0 test then [ 0 ] else [] in
      (match predicate with
      | No_predicate -> base
      | Nth 1 -> base
      | Nth _ -> []
      | Child_equals (c, v) -> List.filter (fun n -> has_equal_child doc n c v) base)
    | { axis = `Descendant; _ } as s -> step_from doc 0 { s with axis = `Descendant }
  in
  match t with
  | [] -> []
  | first_step :: rest ->
    let start =
      match first_step.axis with
      | `Child -> initial first_step
      | `Descendant ->
        (* //x from the document: include the root itself *)
        let under = step_from doc 0 first_step in
        under
    in
    let contexts =
      List.fold_left
        (fun contexts step ->
          List.concat_map (fun ctx -> step_from doc ctx step) contexts
          |> List.sort_uniq Int.compare)
        (List.sort_uniq Int.compare start) rest
    in
    contexts

let select_string doc s = select doc (parse s)

let first doc s =
  match select_string doc s with
  | n :: _ -> Some n
  | [] -> None
