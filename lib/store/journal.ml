module Faults = Extract_util.Faults
module Registry = Extract_obs.Registry

let appends_total =
  Registry.counter ~help:"Journal records appended" "extract_journal_appends_total"

let append_bytes_total =
  Registry.counter ~help:"Bytes appended to journals" "extract_journal_append_bytes_total"

let resets_total =
  Registry.counter ~help:"Journal resets (checkpoint rewrites)" "extract_journal_resets_total"

type record =
  | Add_doc of { name : string; xml : string }
  | Remove_doc of string
  | Checkpoint of int

(* 8 raw bytes, not a Codec string: the header is fixed-size so a torn
   write inside it is detectable by length alone. *)
let header = "XTRJNL01"

let header_len = String.length header

(* frame = 4-byte little-endian payload length, 16-byte raw MD5 of the
   payload, payload bytes. The fixed-size prefix makes torn-tail
   detection a length check, no parsing. *)
let frame_overhead = 4 + 16

let tag_add = 1

let tag_remove = 2

let tag_checkpoint = 3

let encode_record record =
  let w = Codec.writer () in
  (match record with
  | Add_doc { name; xml } ->
    Codec.write_varint w tag_add;
    Codec.write_string w name;
    Codec.write_string w xml
  | Remove_doc name ->
    Codec.write_varint w tag_remove;
    Codec.write_string w name
  | Checkpoint generation ->
    Codec.write_varint w tag_checkpoint;
    Codec.write_varint w generation);
  Codec.contents w

let decode_record payload =
  let r = Codec.reader payload in
  let record =
    match Codec.read_varint r with
    | t when t = tag_add ->
      let name = Codec.read_string r in
      let xml = Codec.read_string r in
      Add_doc { name; xml }
    | t when t = tag_remove -> Remove_doc (Codec.read_string r)
    | t when t = tag_checkpoint -> Checkpoint (Codec.read_varint r)
    | t -> raise (Codec.Corrupt (Printf.sprintf "unknown journal record tag %d" t))
  in
  if not (Codec.at_end r) then raise (Codec.Corrupt "trailing bytes in journal record");
  record

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (frame_overhead + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.blit_string (Digest.string payload) 0 b 4 16;
  Bytes.blit_string payload 0 b frame_overhead len;
  Bytes.unsafe_to_string b

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)

type writer = {
  fd : Unix.file_descr;
  path : string;
}

let open_append path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  match
    let size = (Unix.fstat fd).Unix.st_size in
    if size = 0 then begin
      Durable.write_all fd header;
      Unix.fsync fd
    end
    else ignore (Unix.lseek fd 0 Unix.SEEK_END)
  with
  | () -> { fd; path }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let path w = w.path

let append w record =
  Faults.hit "journal.append";
  let payload = encode_record record in
  let data = frame payload in
  if Faults.should_fail "journal.torn" then begin
    (* torn-write injection: half the frame reaches the disk, then the
       power goes. Recovery must discard exactly this tail. *)
    Durable.write_all w.fd (String.sub data 0 (max 1 (String.length data / 2)));
    Unix.fsync w.fd;
    Unix._exit Faults.crash_exit_code
  end;
  Durable.write_all w.fd data;
  Unix.fsync w.fd;
  Registry.incr appends_total;
  Registry.add append_bytes_total (String.length data)

let close w = Unix.close w.fd

(* ------------------------------------------------------------------ *)
(* Reading / recovery                                                  *)

type tail =
  | Complete
  | Torn of {
      offset : int;
      reason : string;
    }

let read_bytes path =
  let ic = open_in_bin path in
  let data =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  data

let decode_all data =
  let len = String.length data in
  if len = 0 then [], Complete
  else if len < header_len then
    [], Torn { offset = 0; reason = "torn header (shorter than the magic)" }
  else if String.sub data 0 header_len <> header then
    raise (Codec.Corrupt (Printf.sprintf "bad journal magic %S" (String.sub data 0 header_len)))
  else begin
    let records = ref [] in
    let pos = ref header_len in
    let tail = ref Complete in
    (try
       while !pos < len do
         let remaining = len - !pos in
         if remaining < frame_overhead then begin
           tail := Torn { offset = !pos; reason = "torn record frame (incomplete prefix)" };
           raise Exit
         end;
         let plen = Int32.to_int (String.get_int32_le data !pos) in
         (* a negative length can never come from a torn write of our own
            frames (the writer never emits one), only from damage *)
         if plen < 0 then
           raise (Codec.Corrupt (Printf.sprintf "absurd journal record length %d" plen));
         if remaining < frame_overhead + plen then begin
           tail :=
             Torn
               {
                 offset = !pos;
                 reason =
                   Printf.sprintf "torn record payload (%d of %d bytes)"
                     (remaining - frame_overhead) plen;
               };
           raise Exit
         end;
         let digest = String.sub data (!pos + 4) 16 in
         let payload = String.sub data (!pos + frame_overhead) plen in
         if Digest.string payload <> digest then
           raise (Codec.Corrupt "journal record checksum mismatch");
         (* the checksum passed, so a short read inside the payload is
            structural damage, not a torn write *)
         let record =
           try decode_record payload
           with Codec.Truncated msg -> raise (Codec.Corrupt ("journal record: " ^ msg))
         in
         records := record :: !records;
         pos := !pos + frame_overhead + plen
       done
     with Exit -> ());
    List.rev !records, !tail
  end

let read path =
  if Faults.should_fail "journal.read" then
    raise (Codec.Corrupt "injected fault: journal.read");
  if Sys.file_exists path then decode_all (read_bytes path) else [], Complete

let truncate path offset =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd offset;
      Unix.fsync fd)

let reset path records =
  Faults.hit "journal.reset";
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  List.iter (fun r -> Buffer.add_string buf (frame (encode_record r))) records;
  Durable.replace_atomic ~path (Buffer.contents buf);
  Registry.incr resets_total

let last_checkpoint records =
  List.fold_left
    (fun acc r -> match r with Checkpoint g -> Some g | Add_doc _ | Remove_doc _ -> acc)
    None records

let records_after_checkpoint records =
  let rec strip kept = function
    | [] -> List.rev kept
    | Checkpoint _ :: rest -> strip [] rest
    | r :: rest -> strip (r :: kept) rest
  in
  strip [] records
