module Faults = Extract_util.Faults
module Registry = Extract_obs.Registry
module Types = Extract_xml.Types

let adds_total = Registry.counter ~help:"Live-store documents added" "extract_live_adds_total"

let removes_total =
  Registry.counter ~help:"Live-store documents removed" "extract_live_removes_total"

let compactions_total =
  Registry.counter ~help:"Live-store compactions" "extract_live_compactions_total"

let recovered_records_total =
  Registry.counter ~help:"Journal records replayed during recovery"
    "extract_live_recovered_records_total"

let generation_gauge =
  Registry.gauge ~help:"Current live-store snapshot generation" "extract_live_generation"

type delta = {
  delta_doc : Document.t;
  delta_index : Inverted_index.t;
}

type view = {
  generation : int;
  doc : Document.t;
  index : Inverted_index.t;
  members : (string * Document.node) list;
  tombstones : string list;
  deltas : (string * delta) list;
}

type t = {
  dir : string;
  read_only : bool;
  lock : Mutex.t;
  state : view Atomic.t;
  (* guarded-by: lock *)
  mutable journal : Journal.writer option;
  (* journal records applied since the last checkpoint — the replay cost
     of a crash right now, published as the journal-lag gauge *)
  pending : int Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)

let journal_name = "journal.wal"

let journal_path dir = Filename.concat dir journal_name

let snapshot_name gen = Printf.sprintf "gen-%08d.snap" gen

let snapshot_path dir gen = Filename.concat dir (snapshot_name gen)

let generation_of_name name =
  match Filename.chop_suffix_opt ~suffix:".snap" name with
  | Some stem when String.length stem > 4 && String.equal (String.sub stem 0 4) "gen-" ->
    int_of_string_opt (String.sub stem 4 (String.length stem - 4))
  | Some _ | None -> None

let generations dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map generation_of_name
  |> List.sort Int.compare

(* ------------------------------------------------------------------ *)
(* Snapshot envelope                                                   *)

let snapshot_magic = "XTRLSNAP"

let encode_snapshot view =
  let w = Codec.writer () in
  Codec.write_varint w view.generation;
  Codec.write_varint w (List.length view.members);
  List.iter
    (fun (name, root) ->
      Codec.write_string w name;
      Codec.write_varint w root)
    view.members;
  Codec.write_string w (Persist.encode view.doc);
  Codec.write_string w (Persist.encode_index view.index);
  Persist.Envelope.seal ~magic:snapshot_magic (Codec.contents w)

let decode_snapshot data =
  let payload = Persist.Envelope.unseal ~magic:snapshot_magic ~kind:"live snapshot" data in
  let r = Codec.reader payload in
  let generation = Codec.read_varint r in
  let member_count = Codec.read_varint r in
  let rec read_members k acc =
    if k = 0 then List.rev acc
    else begin
      let name = Codec.read_string r in
      let root = Codec.read_varint r in
      read_members (k - 1) ((name, root) :: acc)
    end
  in
  let members = read_members member_count [] in
  let doc = Persist.decode (Codec.read_string r) in
  let index = Persist.decode_index ~doc (Codec.read_string r) in
  if not (Codec.at_end r) then raise (Codec.Corrupt "trailing bytes in live snapshot");
  { generation; doc; index; members; tombstones = []; deltas = [] }

let read_file path =
  let ic = open_in_bin path in
  let data =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  data

let load_snapshot dir gen =
  if Faults.should_fail "snapshot.read" then
    raise (Codec.Corrupt "injected fault: snapshot.read");
  let view = decode_snapshot (read_file (snapshot_path dir gen)) in
  if view.generation <> gen then
    raise
      (Codec.Corrupt
         (Printf.sprintf "snapshot %s claims generation %d" (snapshot_name gen) view.generation));
  view

(* Fresh stores start from an empty synthetic corpus root; members are
   the root's child subtrees, so an empty corpus is just a childless
   root element. *)
let empty_view () =
  let doc = Document.of_xml (Types.element "corpus" []) in
  {
    generation = 0;
    doc;
    index = Inverted_index.build doc;
    members = [];
    tombstones = [];
    deltas = [];
  }

(* ------------------------------------------------------------------ *)
(* View algebra                                                        *)

let is_tombstoned view name = List.exists (String.equal name) view.tombstones

let in_base view name = List.exists (fun (n, _) -> String.equal n name) view.members

let base_visible view name = in_base view name && not (is_tombstoned view name)

let tombstone view name =
  if base_visible view name then { view with tombstones = name :: view.tombstones } else view

let member_names view =
  let base =
    view.members
    |> List.filter (fun (n, _) -> not (is_tombstoned view n))
    |> List.map (fun (n, _) -> n)
  in
  base @ List.map (fun (n, _) -> n) view.deltas

let mem view name =
  base_visible view name || List.exists (fun (n, _) -> String.equal n name) view.deltas

let apply_add view ~name ~doc ~index =
  let view = tombstone view name in
  let deltas =
    List.filter (fun (n, _) -> not (String.equal n name)) view.deltas
    @ [ (name, { delta_doc = doc; delta_index = index }) ]
  in
  { view with deltas }

let apply_remove view name =
  let view = tombstone view name in
  { view with deltas = List.filter (fun (n, _) -> not (String.equal n name)) view.deltas }

let apply_record view = function
  | Journal.Add_doc { name; xml } ->
    let doc = Document.load_string xml in
    apply_add view ~name ~doc ~index:(Inverted_index.build doc)
  | Journal.Remove_doc name -> apply_remove view name
  | Journal.Checkpoint _ -> view

let mask view =
  view.members
  |> List.filter (fun (name, _) -> not (is_tombstoned view name))
  |> List.map (fun (_, root) -> (root, Document.subtree_last view.doc root))
  |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

let prune_strays ~on_warning dir =
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then begin
        on_warning (Printf.sprintf "removing stray temp file %s" name);
        try Sys.remove (Filename.concat dir name) with Sys_error _ -> ()
      end)
    (Sys.readdir dir)

let load_base ~on_warning dir =
  let rec try_generations = function
    | [] -> None
    | gen :: older -> (
      match load_snapshot dir gen with
      | view -> Some view
      | exception (Codec.Corrupt reason | Codec.Truncated reason) ->
        on_warning
          (Printf.sprintf "snapshot %s unreadable (%s)%s" (snapshot_name gen) reason
             (match older with
             | [] -> ""
             | prev :: _ -> Printf.sprintf "; falling back to generation %d" prev));
        if older = [] then
          raise (Codec.Corrupt (Printf.sprintf "no readable snapshot generation: %s" reason))
        else try_generations older)
  in
  try_generations (List.rev (generations dir))

let recover ~read_only ~on_warning dir =
  let jpath = journal_path dir in
  let records, tail = Journal.read jpath in
  (match tail with
  | Journal.Complete -> ()
  | Journal.Torn { offset; reason } ->
    on_warning
      (Printf.sprintf "journal has a torn tail at byte %d (%s)%s" offset reason
         (if read_only then "" else "; truncating"));
    if not read_only then Journal.truncate jpath offset);
  let base = load_base ~on_warning dir in
  let checkpoint = Journal.last_checkpoint records in
  let suffix = Journal.records_after_checkpoint records in
  let base_view = match base with Some v -> v | None -> empty_view () in
  let replay, heal =
    match checkpoint, base with
    | None, None -> suffix, false
    | None, Some v when v.generation = 0 -> suffix, false
    | None, Some v ->
      if suffix <> [] then
        on_warning
          (Printf.sprintf
             "journal has no checkpoint but generation %d exists; assuming its %d records \
              predate the snapshot"
             v.generation (List.length suffix));
      [], suffix <> []
    | Some g, Some v when g = v.generation -> suffix, false
    | Some g, Some v when g < v.generation ->
      (* the snapshot for v.generation was sealed but the crash hit
         before the journal reset: everything after checkpoint g is
         already inside the newer snapshot. *)
      if suffix <> [] then
        on_warning
          (Printf.sprintf
             "journal checkpoint %d is older than snapshot generation %d; skipping %d \
              already-absorbed records"
             g v.generation (List.length suffix));
      [], true
    | Some g, Some v ->
      raise
        (Codec.Corrupt
           (Printf.sprintf
              "journal checkpoint references generation %d but newest readable snapshot is %d"
              g v.generation))
    | Some g, None ->
      if g <> 0 then
        raise
          (Codec.Corrupt
             (Printf.sprintf "journal checkpoint references generation %d but no snapshot exists" g));
      suffix, false
  in
  let view =
    List.fold_left
      (fun view record ->
        Registry.incr recovered_records_total;
        apply_record view record)
      base_view replay
  in
  if heal && not read_only then Journal.reset jpath [ Journal.Checkpoint base_view.generation ];
  if not read_only then prune_strays ~on_warning dir;
  view, List.length replay

let open_dir ?(read_only = false) ?(on_warning = fun _ -> ()) dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Live.open_dir: %s is not a directory" dir);
  let view, replayed = recover ~read_only ~on_warning dir in
  Registry.set generation_gauge (float_of_int view.generation);
  {
    dir;
    read_only;
    lock = Mutex.create ();
    state = Atomic.make view;
    journal = None;
    pending = Atomic.make replayed;
  }

let pending_updates t = Atomic.get t.pending

let dir t = t.dir

let view t = Atomic.get t.state

(* ------------------------------------------------------------------ *)
(* Mutation (single writer)                                            *)

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let close t =
  with_lock t (fun () ->
      match t.journal with
      | Some w ->
        t.journal <- None;
        Journal.close w
      | None -> ())

let writer t =
  if t.read_only then invalid_arg "Live: store opened read-only";
  match t.journal with
  | Some w -> w
  | None ->
    let w = Journal.open_append (journal_path t.dir) in
    t.journal <- Some w;
    w

let validate_name name =
  if String.length name = 0 then invalid_arg "Live: empty document name";
  String.iter
    (fun c -> if c = '/' || c = '\000' then invalid_arg "Live: document name contains / or NUL")
    name

let add t ~name ~xml =
  validate_name name;
  (* parse before journalling: a document that cannot parse must never
     enter the journal, or recovery would choke on it forever. *)
  let doc = Document.load_string xml in
  let index = Inverted_index.build doc in
  with_lock t (fun () ->
      Journal.append (writer t) (Journal.Add_doc { name; xml });
      (* the record is durable; a crash from here on recovers to the
         post-add state. *)
      Faults.hit "live.apply";
      Atomic.set t.state (apply_add (Atomic.get t.state) ~name ~doc ~index);
      ignore (Atomic.fetch_and_add t.pending 1);
      Registry.incr adds_total)

let remove t name =
  with_lock t (fun () ->
      let view = Atomic.get t.state in
      if not (mem view name) then false
      else begin
        Journal.append (writer t) (Journal.Remove_doc name);
        Faults.hit "live.apply";
        Atomic.set t.state (apply_remove view name);
        ignore (Atomic.fetch_and_add t.pending 1);
        Registry.incr removes_total;
        true
      end)

(* Rebuild the combined arena from every visible member: surviving base
   subtrees keep their order, live deltas follow in insertion order. *)
let rebuild view =
  let base_trees =
    view.members
    |> List.filter (fun (name, _) -> not (is_tombstoned view name))
    |> List.map (fun (name, root) -> (name, Document.to_xml view.doc root))
  in
  let delta_trees =
    List.map (fun (name, d) -> (name, Document.to_xml d.delta_doc (Document.root d.delta_doc))) view.deltas
  in
  let named = base_trees @ delta_trees in
  let doc = Document.of_xml (Types.element "corpus" (List.map snd named)) in
  let members =
    List.map2 (fun (name, _) root -> (name, root)) named
      (List.filter (Document.is_element doc) (Document.children doc (Document.root doc)))
  in
  {
    generation = view.generation + 1;
    doc;
    index = Inverted_index.build doc;
    members;
    tombstones = [];
    deltas = [];
  }

let write_snapshot dir view =
  Faults.hit "snapshot.write";
  let path = snapshot_path dir view.generation in
  let tmp = path ^ ".tmp" in
  Durable.write_file_fsync tmp (encode_snapshot view);
  Faults.hit "snapshot.rename";
  Unix.rename tmp path;
  Durable.fsync_dir dir

let prune_old_generations dir keep =
  Faults.hit "live.prune";
  List.iter
    (fun gen ->
      if gen <> keep then try Sys.remove (snapshot_path dir gen) with Sys_error _ -> ())
    (generations dir)

let compact t =
  if t.read_only then invalid_arg "Live: store opened read-only";
  with_lock t (fun () ->
      let next = rebuild (Atomic.get t.state) in
      write_snapshot t.dir next;
      (* the new generation is durable: from here recovery prefers it
         and skips the journal suffix even before the reset lands. *)
      Journal.reset (journal_path t.dir) [ Journal.Checkpoint next.generation ];
      (match t.journal with
      | Some w ->
        t.journal <- None;
        Journal.close w
      | None -> ());
      prune_old_generations t.dir next.generation;
      Atomic.set t.state next;
      Atomic.set t.pending 0;
      Registry.incr compactions_total;
      Registry.set generation_gauge (float_of_int next.generation);
      next.generation)
