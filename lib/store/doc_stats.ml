type t = {
  nodes : int;
  elements : int;
  text_nodes : int;
  distinct_tags : int;
  distinct_paths : int;
  max_depth : int;
  entity_paths : int;
  attribute_paths : int;
  connection_paths : int;
  entity_instances : int;
  attribute_instances : int;
}

let compute kinds =
  let doc = Node_kind.document kinds in
  let guide = Node_kind.dataguide kinds in
  let max_depth = ref 0 in
  for n = 0 to Document.node_count doc - 1 do
    if Document.depth doc n > !max_depth then max_depth := Document.depth doc n
  done;
  let count_paths k = List.length (List.filter (fun p -> Node_kind.kind_of_path kinds p = k) (Dataguide.paths guide)) in
  let count_instances k =
    List.fold_left
      (fun acc p ->
        if Node_kind.kind_of_path kinds p = k then acc + Dataguide.instance_count guide p
        else acc)
      0 (Dataguide.paths guide)
  in
  {
    nodes = Document.node_count doc;
    elements = Document.element_count doc;
    text_nodes = Document.node_count doc - Document.element_count doc;
    distinct_tags = Extract_util.Interner.count (Document.tag_interner doc);
    distinct_paths = Dataguide.path_count guide;
    max_depth = !max_depth;
    entity_paths = count_paths Node_kind.Entity;
    attribute_paths = count_paths Node_kind.Attribute;
    connection_paths = count_paths Node_kind.Connection;
    entity_instances = count_instances Node_kind.Entity;
    attribute_instances = count_instances Node_kind.Attribute;
  }

let of_document doc = compute (Node_kind.of_document doc)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>nodes: %d (elements %d, text %d)@,tags: %d, paths: %d, max depth: %d@,\
     entity paths: %d (%d instances)@,attribute paths: %d (%d instances)@,\
     connection paths: %d@]"
    t.nodes t.elements t.text_nodes t.distinct_tags t.distinct_paths t.max_depth
    t.entity_paths t.entity_instances t.attribute_paths t.attribute_instances
    t.connection_paths

let pp_json ppf t =
  Format.fprintf ppf
    "{ \"nodes\": %d, \"elements\": %d, \"text_nodes\": %d, \"distinct_tags\": %d, \
     \"distinct_paths\": %d, \"max_depth\": %d, \"entity_paths\": %d, \
     \"entity_instances\": %d, \"attribute_paths\": %d, \"attribute_instances\": %d, \
     \"connection_paths\": %d }"
    t.nodes t.elements t.text_nodes t.distinct_tags t.distinct_paths t.max_depth
    t.entity_paths t.entity_instances t.attribute_paths t.attribute_instances
    t.connection_paths

let header =
  [ "nodes"; "elements"; "tags"; "paths"; "depth"; "entities"; "attrs"; "e-inst"; "a-inst" ]

let to_row t =
  [
    string_of_int t.nodes;
    string_of_int t.elements;
    string_of_int t.distinct_tags;
    string_of_int t.distinct_paths;
    string_of_int t.max_depth;
    string_of_int t.entity_paths;
    string_of_int t.attribute_paths;
    string_of_int t.entity_instances;
    string_of_int t.attribute_instances;
  ]
