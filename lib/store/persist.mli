(** Binary persistence for document arenas.

    The demo runs as a server: documents are analyzed and indexed once,
    then queried many times. Persisting the flattened arena lets a process
    restart skip XML parsing entirely (the benchmark's E7 companion
    measures the speedup). The format is versioned and self-describing:
    every artifact is a sealed envelope — magic, format version, an MD5
    checksum of the payload, then the {!Codec} payload — so a corrupt or
    truncated file is rejected up front instead of surfacing later as
    nonsense data. Damage is reported with two distinct errors: a file
    that ends prematurely raises {!Codec.Truncated} (the signature of an
    interrupted write — the live store's recovery treats a truncated
    {e final} journal record as benign), while structural damage — wrong
    magic, bad version, checksum mismatch, trailing bytes — raises
    {!Codec.Corrupt} and is always fatal. Whole-file consumers treat both
    as a bad artifact.

    Files are not portable across architectures with different [int]
    widths (varints cap at 63 bits — every platform OCaml 5 supports).

    Fault points (see {!Extract_util.Faults}): ["persist.read"] fires in
    {!load}/{!load_index}/{!load_bundle}, ["persist.write"] in the [save]
    functions, ["index.load"] while decoding an index — each raising
    {!Codec.Corrupt}, so injected faults exercise exactly the
    corrupt-artifact recovery paths. *)

val magic : string

val version : int

val encode : Document.t -> string
(** Serialize the arena to a byte string. *)

val decode : string -> Document.t
(** @raise Codec.Corrupt on malformed input, wrong magic, unsupported
    version or checksum mismatch.
    @raise Codec.Truncated when the data ends prematurely. *)

val save : string -> Document.t -> unit
(** Write to a file. @raise Sys_error on IO failure. *)

val load : string -> Document.t
(** Read from a file.
    @raise Codec.Corrupt, [Codec.Truncated] or [Sys_error] as
    appropriate. A zero-length file (the residue of an interrupted
    create) raises [Codec.Truncated] naming the path and the expected
    magic, here and in every [load_*] below. *)

val fingerprint : Document.t -> string
(** Hex digest of the arena's serialized payload — the identity an index
    file records so {!load_index} can prove it is being paired with the
    arena it was built from. *)

(** {1 Index persistence}

    Posting lists are ascending node ids; they are stored gap-encoded
    (first id, then deltas) as varints — the classic inverted-file
    compression. An index file only makes sense next to the arena it was
    built from, so the index payload opens with that arena's
    {!fingerprint}: [load_index] recomputes the fingerprint of the
    document it is given and rejects a mismatched pair with
    {!Codec.Corrupt} (historically this yielded silent nonsense
    postings). *)

val index_magic : string

val encode_index : Inverted_index.t -> string

val decode_index : doc:Document.t -> string -> Inverted_index.t
(** @raise Codec.Corrupt on malformed input, checksum failure or an
    arena/index fingerprint mismatch. *)

val save_index : string -> Inverted_index.t -> unit

val load_index : string -> doc:Document.t -> Inverted_index.t

(** {1 Bundles}

    An arena and its index in one file — what the demo server persists per
    data set. Both sections carry their own seal, and the index section's
    fingerprint is verified against the arena section on load. *)

val bundle_magic : string

val encode_bundle : Document.t -> Inverted_index.t -> string

val decode_bundle : string -> Document.t * Inverted_index.t
(** @raise Codec.Corrupt on malformed input. *)

val save_bundle : string -> Document.t -> Inverted_index.t -> unit

val load_bundle : string -> Document.t * Inverted_index.t

val sniff_magic : string -> string option
(** The leading magic of any Persist-produced byte string ({!magic},
    {!index_magic} or {!bundle_magic}), or [None] / an arbitrary string
    for foreign data — used to dispatch file kinds. *)

(** {1 Envelopes}

    The sealed-envelope primitive itself — magic · version · MD5(payload)
    · payload — exposed so sibling persistence formats (the live store's
    snapshot generations, {!Journal}'s reset files) share one
    corruption-detection story with the arena/index/bundle artifacts. *)

module Envelope : sig
  val seal : magic:string -> string -> string

  val unseal : magic:string -> kind:string -> string -> string
  (** @raise Codec.Corrupt on wrong magic, version, checksum or trailing
      bytes; [Codec.Truncated] when the data ends prematurely. *)
end
