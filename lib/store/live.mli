(** Crash-safe live corpus store.

    A directory holding a generation-numbered snapshot (the {e base}: a
    combined arena of every member document under a synthetic [corpus]
    root, plus its index and a name → subtree-root member table) and a
    write-ahead {!Journal}. Updates are journalled — fsync'd — before
    they touch memory, applied as an in-memory overlay (tombstoned base
    members plus per-document {e delta} segments), and folded back into
    a new base by {!compact}, which seals a new snapshot generation
    atomically (temp + fsync + rename) before resetting the journal.

    Crash contract: killing the process at {e any} instant — including
    between any two syscalls of an update or compaction — leaves the
    directory recoverable by {!open_dir} to either the state before the
    interrupted operation or the state after it, never a third state.
    The crash harness in [test/crash] proves this point by point.

    Concurrency: readers call {!view} (a single [Atomic.get]; never
    blocks, never sees a half-applied update); writers serialise on an
    internal mutex. One process per directory — there is no inter-process
    lock file.

    Fault points: [snapshot.read] (raises [Codec.Corrupt], exercising
    generation fallback), [snapshot.write], [snapshot.rename],
    [live.apply] (after the journal fsync, before the in-memory apply),
    [live.prune], plus the {!Journal} points. *)

type delta = {
  delta_doc : Document.t;
  delta_index : Inverted_index.t;
}

type view = {
  generation : int;  (** snapshot generation the base was loaded from *)
  doc : Document.t;  (** combined base arena, synthetic root at node 0 *)
  index : Inverted_index.t;  (** index over [doc] *)
  members : (string * Document.node) list;
      (** base member subtree roots, in document order — including
          tombstoned ones *)
  tombstones : string list;  (** base members hidden by later updates *)
  deltas : (string * delta) list;
      (** live additions in insertion order; a name here shadows any
          base member of the same name *)
}
(** An immutable picture of the corpus at one instant. Queries run
    against a view and are unaffected by concurrent updates. *)

type t

val open_dir : ?read_only:bool -> ?on_warning:(string -> unit) -> string -> t
(** Open (creating if absent) a live-store directory and recover: load
    the newest readable snapshot generation (falling back to older ones
    on damage), truncate a torn journal tail, and replay the journal
    records after the last checkpoint. [on_warning] receives one line
    per repair action (torn tail, fallback, skipped stale records,
    stray temp files). With [read_only] nothing on disk is modified —
    no truncation, no self-healing, no pruning — and mutations raise
    [Invalid_argument]; this is what [extract check] uses.
    @raise Codec.Corrupt when no snapshot generation is readable or the
    journal is damaged before its final record. *)

val close : t -> unit
(** Close the journal handle. The store stays queryable. *)

val dir : t -> string

val view : t -> view
(** The current view — one atomic read, safe from any domain. *)

val pending_updates : t -> int
(** Journal records applied since the last checkpoint: the records a
    crash right now would replay on recovery. Starts at the recovery
    replay count, grows with {!add}/{!remove}, returns to 0 on
    {!compact}. The runtime collector publishes it as the
    [extract_live_journal_lag] gauge. *)

val mask : view -> (int * int) array
(** Sorted, disjoint, inclusive node-id intervals of the {e visible}
    base subtrees — the argument for [Eval_ctx.make ~mask] that hides
    tombstoned members (and the synthetic root) from base-index query
    evaluation. *)

val member_names : view -> string list
(** Visible member names: base minus tombstones, then deltas. *)

val mem : view -> string -> bool

(** {1 Updates (single writer, readers never block)} *)

val add : t -> name:string -> xml:string -> unit
(** Add — or replace, when the name exists — a member document. The
    XML is parsed {e before} journalling, so unparsable input fails
    cleanly and never poisons the journal.
    @raise Extract_xml.Error.Parse_error on malformed XML.
    @raise Invalid_argument on an empty name, a name containing ['/']
    or NUL, or a read-only store. *)

val remove : t -> string -> bool
(** Remove a member by name. [false] (and no journal traffic) when no
    such member is visible. *)

val compact : t -> int
(** Fold the overlay into a fresh combined base, seal it as the next
    snapshot generation, reset the journal to a single checkpoint and
    prune older generations. Returns the new generation. Queries keep
    running against the old view until the swap. *)

(** {1 Layout (for [extract check] and tests)} *)

val journal_path : string -> string
(** [dir/journal.wal]. *)

val snapshot_path : string -> int -> string
(** [dir/gen-%08d.snap]. *)

val generations : string -> int list
(** Snapshot generations present in a directory, ascending. *)
