exception Corrupt of string

exception Truncated of string

type writer = { buf : Buffer.t }

let writer () = { buf = Buffer.create 4096 }

let write_varint w n =
  if n < 0 then invalid_arg "Codec.write_varint: negative";
  let rec loop n =
    if n < 0x80 then Buffer.add_char w.buf (Char.chr n)
    else begin
      Buffer.add_char w.buf (Char.chr (0x80 lor (n land 0x7F)));
      loop (n lsr 7)
    end
  in
  loop n

(* zig-zag: maps 0,-1,1,-2,... to 0,1,2,3,... *)
let write_int w n = write_varint w ((n lsl 1) lxor (n asr 62))

let write_string w s =
  write_varint w (String.length s);
  Buffer.add_string w.buf s

let write_bytes_raw w b =
  write_varint w (Bytes.length b);
  Buffer.add_bytes w.buf b

(* fixed-width native-endian word: the {!Snapshot} header's endianness
   probe — a varint is endian-agnostic, so it cannot detect a snapshot
   written on a foreign-endian machine, but a raw word can *)
let write_fixed64 w v = Buffer.add_int64_ne w.buf v

let contents w = Buffer.contents w.buf

type reader = {
  data : string;
  mutable pos : int;
}

let reader data = { data; pos = 0 }

let byte r =
  if r.pos >= String.length r.data then raise (Truncated "unexpected end of input");
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_varint r =
  let rec loop shift acc =
    if shift > 62 then raise (Corrupt "varint too long");
    let b = byte r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let read_int r =
  let z = read_varint r in
  (z lsr 1) lxor (- (z land 1))

let read_string r =
  let n = read_varint r in
  if r.pos + n > String.length r.data then raise (Truncated "string overruns input");
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_bytes_raw r = Bytes.of_string (read_string r)

let read_fixed64 r =
  if r.pos + 8 > String.length r.data then raise (Truncated "fixed64 overruns input");
  let v = String.get_int64_ne r.data r.pos in
  r.pos <- r.pos + 8;
  v

let pos r = r.pos

let seek r p =
  if p < 0 || p > String.length r.data then
    invalid_arg (Printf.sprintf "Codec.seek: position %d out of [0,%d]" p (String.length r.data));
  r.pos <- p

let at_end r = r.pos >= String.length r.data

(* ------------------------------------------------------------------ *)
(* Block-compressed sorted arrays: ascending ints stored gap-encoded in
   fixed-size blocks. The per-block first values double as a skip table,
   so consumers ({!Packed_postings}) can binary-search without decoding
   more than one block. *)

let block_size = 128

let write_sorted_block w arr ~lo ~hi =
  let prev = ref 0 in
  for i = lo to hi - 1 do
    if i = lo then write_varint w arr.(i) else write_varint w (arr.(i) - !prev);
    prev := arr.(i)
  done

let read_sorted_block r out ~lo ~hi =
  let prev = ref 0 in
  for i = lo to hi - 1 do
    let v = read_varint r in
    let node = if i = lo then v else !prev + v in
    if i > lo && v = 0 then raise (Corrupt "sorted block: zero delta (not strictly ascending)");
    out.(i) <- node;
    prev := node
  done
