(** Index format v2: flat, offset-based arena snapshots, mapped on load.

    A snapshot is one file — a 4096-byte header page followed by
    page-aligned sections: the arena's four int columns and text blob
    stored as raw native words/bytes, plus small {!Codec}-encoded meta
    (DTD, tag names) and index (vocabulary, {!Packed_postings},
    tag-token pairs) sections. {!load} [Unix.map_file]s the bulk
    sections straight into the {!Document.Flat} columns, so cold-start
    cost is the page table, not the corpus — against {!Persist}'s v1
    bundles, which decode every node and text string on every load
    (benchmark E22 measures the gap).

    Integrity story: the header records a per-section MD5 and the
    arena's {!Persist.fingerprint}. {!load} verifies structure (magic,
    version, endianness probe, word size, section table, lengths) but
    deliberately not the bulk digests — checksumming the corpus would
    re-read it and defeat the O(1) start. [extract check] calls
    {!verify}, which spends the recorded digests and re-derives the
    fingerprint. See DESIGN.md §15 for the layout diagram and v1→v2
    migration rules.

    Fault points: ["snapshot.pack"] in {!save}, ["snapshot.map"] in
    {!load} (distinct from the live store's ["snapshot.read"/"write"]
    generation files). *)

val magic : string
(** ["XTRSNAP2"], {!Codec}-string-prefixed like every Persist magic, so
    {!Persist.sniff_magic} dispatches snapshot files unchanged. *)

val version : int

val encode : Document.t -> Inverted_index.t -> string
(** The complete snapshot image (header page + padded sections). *)

val save : string -> Document.t -> Inverted_index.t -> unit
(** Write atomically (temp file + rename). Packs the index when it is
    still plain. @raise Sys_error on IO failure. *)

val load : string -> Document.t * Inverted_index.t
(** Map a snapshot. The document's columns are backed by the file
    (private, read-only mapping; the mapping outlives the fd). The index
    is returned packed — {!Inverted_index.is_packed}.
    @raise Codec.Corrupt on structural damage, foreign endianness or
    word size, or index/arena fingerprint mismatch.
    @raise Codec.Truncated on an empty or short file (path and expected
    magic included). *)

(** {1 Deep verification} *)

type stats = {
  v_node_count : int;
  v_element_count : int;
  v_fingerprint : string;
  v_sections : (string * int) list; (** name, exact byte length *)
  v_file_bytes : int;
}

val verify : string -> stats
(** Re-read every section, check its recorded MD5, materialize the arena
    and confirm it re-derives the header fingerprint. O(file) — the
    [extract check --index] path, not the serving path.
    @raise Codec.Corrupt naming the damaged section. *)
