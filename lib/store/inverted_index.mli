(** Keyword inverted index — the paper's Index Builder (Fig. 4).

    Maps each token to the sorted array of element nodes that match it. An
    element matches a token when the token appears in the element's tag name
    or in its direct text children. Postings are element ids in document
    (pre-)order, deduplicated, which is exactly what the SLCA/ELCA merge
    algorithms consume. *)

type t

val build : Document.t -> t

val document : t -> Document.t

val token_count : t -> int
(** Distinct tokens. *)

val postings_size : t -> int
(** Total number of postings across all tokens (index "size"). *)

val postings_bytes : t -> int
(** Approximate resident bytes of the posting lists: 8 per posting when
    plain, the compressed block footprint when packed. The E22
    compression-ratio metric. *)

val pack : t -> t
(** Convert posting lists to block-compressed {!Packed_postings} sharing
    the same document and vocabulary. All query entry points answer
    identically on the packed form; [lookup] decodes (fresh array per
    call), point probes ([contains], [match_kind], [complete] counts)
    touch at most one block. Identity on an already-packed index. *)

val is_packed : t -> bool

val lookup : t -> string -> Document.node array
(** [lookup t keyword] is the posting list for the normalized keyword —
    the shared array, do not mutate. Empty when the keyword is absent. *)

val matches : t -> string -> Document.node list

val contains : t -> string -> bool

val vocabulary : t -> string list
(** All tokens, in first-indexed order. *)

val match_kind : t -> keyword:string -> node:Document.node -> [ `Tag | `Value | `Both ] option
(** How (and whether) a specific element matches the keyword. *)

val complete : t -> ?limit:int -> string -> (string * int) list
(** [complete t prefix] — indexed tokens starting with the (normalized)
    prefix, with their posting counts, most frequent first ([limit]
    defaults to 10). The demo UI's query-box suggestions. Served from a
    lazily-built sorted token array via prefix-range binary search, so a
    keystroke costs O(log |vocabulary| + matches), not a vocabulary
    scan. The lazy build makes the first call not thread-safe. *)

(**/**)

(** Internal representation access, for {!Persist} only. *)
module Internal : sig
  type repr = {
    tokens : string array;
    postings : Document.node array array;
    tag_tokens : (int * int) array;
  }

  val to_repr : t -> repr
  (** Decodes packed lists back to plain arrays when needed. *)

  val of_repr : doc:Document.t -> repr -> t

  val packed_lists : t -> Packed_postings.t array
  (** Per-token packed lists, packing on the fly for a plain index.
      {!Snapshot}'s save path. *)

  val token_names : t -> string array
  (** Vocabulary in token-id order. *)

  val tag_token_pairs : t -> (int * int) array
  (** The (token id, tag id) membership set, sorted. *)

  val of_packed :
    doc:Document.t ->
    tokens:string array ->
    packed:Packed_postings.t array ->
    tag_tokens:(int * int) array ->
    t
  (** Assemble a packed index from decoded sections ({!Snapshot}'s load
      path). @raise Invalid_argument on token/list count mismatch. *)
end
