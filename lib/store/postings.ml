let lower_bound arr x =
  (* smallest index i with arr.(i) >= x, or length *)
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

let closest_in arr ~lo ~hi =
  let i = lower_bound arr lo in
  if i < Array.length arr && arr.(i) <= hi then Some arr.(i) else None

let pred_of arr x =
  (* largest element < x *)
  let i = lower_bound arr x in
  if i = 0 then None else Some arr.(i - 1)

let succ_of arr x =
  (* smallest element > x *)
  let i = lower_bound arr (x + 1) in
  if i >= Array.length arr then None else Some arr.(i)

let subtree_range doc arr root =
  let lo = lower_bound arr root in
  let hi = lower_bound arr (Document.subtree_last doc root + 1) in
  lo, hi

let in_subtree doc arr root =
  let lo, hi = subtree_range doc arr root in
  let out = ref [] in
  for i = hi - 1 downto lo do
    out := arr.(i) :: !out
  done;
  !out

let count_in_subtree doc arr root =
  let lo, hi = subtree_range doc arr root in
  hi - lo
