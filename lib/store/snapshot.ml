module Faults = Extract_util.Faults
module Registry = Extract_obs.Registry

let packs_total =
  Registry.counter ~help:"Snapshots written" "extract_snapshot_packs_total"

let maps_total =
  Registry.counter ~help:"Snapshots mapped" "extract_snapshot_maps_total"

(* residency proxy: bytes this process has mmap'd from snapshots since
   start (mappings live until the bigarrays are collected, so this is an
   upper bound on snapshot-backed address space, not RSS) *)
let mapped_bytes = Atomic.make 0

let mapped_bytes_gauge =
  Registry.gauge ~help:"Bytes of snapshot sections mapped since process start"
    "extract_snapshot_mapped_bytes"

let magic = "XTRSNAP2"

let version = 1

(* An asymmetric byte pattern: read back through a native-endian fixed64
   on a foreign-endian machine it comes out reversed, which is the whole
   point — varints cannot carry that signal. *)
let endian_probe = 0x00FF01FE02FD03FCL

(* Every section starts on a page boundary so [Unix.map_file] can map it
   directly; the header owns the first page. *)
let page = 4096

let align n = (n + page - 1) / page * page

(* Section names, in file order. The int columns and the text blob are
   the mappable bulk; kinds/meta/index are small and read conventionally. *)
let section_names =
  [ "tag"; "parent"; "depth"; "size"; "kinds"; "textoff"; "textblob"; "meta"; "index" ]

type section = {
  name : string;
  offset : int;
  length : int; (* exact byte length, before padding *)
  md5 : string; (* hex digest of the exact bytes *)
}

type header = {
  node_count : int;
  element_count : int;
  fingerprint : string; (* Persist.fingerprint of the arena *)
  sections : section list;
}

(* ------------------------------------------------------------------ *)
(* Encoding *)

let int_arr_bytes (a : Document.int_arr) =
  let n = Bigarray.Array1.dim a in
  let buf = Buffer.create (n * 8) in
  for i = 0 to n - 1 do
    Buffer.add_int64_ne buf (Int64.of_int (Bigarray.Array1.unsafe_get a i))
  done;
  Buffer.contents buf

let char_arr_bytes (a : Document.char_arr) =
  let n = Bigarray.Array1.dim a in
  String.init n (fun i -> Bigarray.Array1.unsafe_get a i)

let meta_payload (src : Document.Flat.source) =
  let w = Codec.writer () in
  (match src.Document.Flat.dtd_source with
  | None -> Codec.write_varint w 0
  | Some s ->
    Codec.write_varint w 1;
    Codec.write_string w s);
  Codec.write_varint w (Array.length src.Document.Flat.tag_names);
  Array.iter (Codec.write_string w) src.Document.Flat.tag_names;
  Codec.contents w

let index_payload ~fingerprint index =
  let w = Codec.writer () in
  Codec.write_string w fingerprint;
  let tokens = Inverted_index.Internal.token_names index in
  Codec.write_varint w (Array.length tokens);
  Array.iter (Codec.write_string w) tokens;
  let packed = Inverted_index.Internal.packed_lists index in
  Codec.write_varint w (Array.length packed);
  Array.iter (Packed_postings.encode w) packed;
  let pairs = Inverted_index.Internal.tag_token_pairs index in
  Codec.write_varint w (Array.length pairs);
  Array.iter
    (fun (a, b) ->
      Codec.write_varint w a;
      Codec.write_varint w b)
    pairs;
  Codec.contents w

let header_bytes (h : header) =
  let w = Codec.writer () in
  Codec.write_string w magic;
  Codec.write_varint w version;
  Codec.write_fixed64 w endian_probe;
  Codec.write_varint w Sys.int_size;
  Codec.write_varint w h.node_count;
  Codec.write_varint w h.element_count;
  Codec.write_string w h.fingerprint;
  Codec.write_varint w (List.length h.sections);
  List.iter
    (fun s ->
      Codec.write_string w s.name;
      Codec.write_varint w s.offset;
      Codec.write_varint w s.length;
      Codec.write_string w s.md5)
    h.sections;
  let raw = Codec.contents w in
  if String.length raw > page then
    raise (Codec.Corrupt (Printf.sprintf "snapshot header overflows its page (%d bytes)"
                            (String.length raw)));
  raw ^ String.make (page - String.length raw) '\000'

let encode doc index =
  let fingerprint = Persist.fingerprint doc in
  let src = Document.Flat.to_source doc in
  let bodies =
    [
      "tag", int_arr_bytes src.Document.Flat.tag;
      "parent", int_arr_bytes src.Document.Flat.parent;
      "depth", int_arr_bytes src.Document.Flat.depth;
      "size", int_arr_bytes src.Document.Flat.size;
      "kinds", Bytes.to_string src.Document.Flat.kinds;
      "textoff", int_arr_bytes src.Document.Flat.text_offsets;
      "textblob", char_arr_bytes src.Document.Flat.text_blob;
      "meta", meta_payload src;
      "index", index_payload ~fingerprint index;
    ]
  in
  (* lay out: header page, then each section padded to a page boundary *)
  let off = ref page in
  let sections =
    List.map
      (fun (name, body) ->
        let s = { name; offset = !off; length = String.length body; md5 = Digest.to_hex (Digest.string body) } in
        off := align (!off + String.length body);
        s)
      bodies
  in
  let header =
    {
      node_count = Bigarray.Array1.dim src.Document.Flat.tag;
      element_count = src.Document.Flat.element_count;
      fingerprint;
      sections;
    }
  in
  let buf = Buffer.create !off in
  Buffer.add_string buf (header_bytes header);
  List.iter2
    (fun s (_, body) ->
      assert (Buffer.length buf = s.offset);
      Buffer.add_string buf body;
      let padded = align (s.offset + s.length) in
      Buffer.add_string buf (String.make (padded - s.offset - s.length) '\000'))
    sections bodies;
  Buffer.contents buf

let save path doc index =
  if Faults.should_fail "snapshot.pack" then
    raise (Codec.Corrupt (Printf.sprintf "injected fault: snapshot.pack (%s)" path));
  let data = encode doc index in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc data
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path;
  Registry.incr packs_total

(* ------------------------------------------------------------------ *)
(* Decoding *)

let parse_header ~path raw =
  let r = Codec.reader raw in
  let m = Codec.read_string r in
  if m <> magic then
    raise (Codec.Corrupt (Printf.sprintf "%s: bad snapshot magic %S" path m));
  let v = Codec.read_varint r in
  if v <> version then
    raise (Codec.Corrupt (Printf.sprintf "%s: unsupported snapshot version %d (want %d)" path v version));
  let probe = Codec.read_fixed64 r in
  if probe <> endian_probe then
    raise (Codec.Corrupt (Printf.sprintf "%s: endianness mismatch (written on a foreign-endian machine)" path));
  let ws = Codec.read_varint r in
  if ws <> Sys.int_size then
    raise (Codec.Corrupt (Printf.sprintf "%s: word size mismatch (file %d bits, host %d)" path ws Sys.int_size));
  let node_count = Codec.read_varint r in
  let element_count = Codec.read_varint r in
  let fingerprint = Codec.read_string r in
  let n = Codec.read_varint r in
  let sections =
    List.init n (fun _ ->
        let name = Codec.read_string r in
        let offset = Codec.read_varint r in
        let length = Codec.read_varint r in
        let md5 = Codec.read_string r in
        { name; offset; length; md5 })
  in
  let found = List.map (fun s -> s.name) sections in
  if found <> section_names then
    raise (Codec.Corrupt (Printf.sprintf "%s: unexpected section table [%s]" path
                            (String.concat "; " found)));
  { node_count; element_count; fingerprint; sections }

let section h name =
  (* [parse_header] guaranteed presence *)
  List.find (fun s -> s.name = name) h.sections

let read_at ic ~offset ~length =
  seek_in ic offset;
  really_input_string ic length

let read_header ~path ic =
  let file_len = in_channel_length ic in
  if file_len = 0 then
    raise
      (Codec.Truncated
         (Printf.sprintf "%s: empty file (expected a snapshot with magic %S)" path magic));
  if file_len < page then
    raise (Codec.Truncated (Printf.sprintf "%s: %d bytes is too short for a snapshot header page" path file_len));
  let h = parse_header ~path (read_at ic ~offset:0 ~length:page) in
  List.iter
    (fun s ->
      if s.offset + s.length > file_len then
        raise
          (Codec.Truncated
             (Printf.sprintf "%s: section %S ends at %d but the file has %d bytes" path
                s.name (s.offset + s.length) file_len)))
    h.sections;
  h

(* mmap rejects zero-length mappings, so an empty section (a document
   with no text at all) gets a fresh empty bigarray instead *)
let map_int fd ~offset ~count : Document.int_arr =
  if count = 0 then Bigarray.Array1.create Bigarray.int Bigarray.c_layout 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int offset) Bigarray.int Bigarray.c_layout false
         [| count |])

let map_char fd ~offset ~count : Document.char_arr =
  if count = 0 then Bigarray.Array1.create Bigarray.char Bigarray.c_layout 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int offset) Bigarray.char Bigarray.c_layout false
         [| count |])

let decode_meta payload =
  let r = Codec.reader payload in
  let dtd_source =
    match Codec.read_varint r with
    | 0 -> None
    | 1 -> Some (Codec.read_string r)
    | n -> raise (Codec.Corrupt (Printf.sprintf "snapshot meta: bad dtd flag %d" n))
  in
  let ntags = Codec.read_varint r in
  let tag_names = Array.init ntags (fun _ -> Codec.read_string r) in
  if not (Codec.at_end r) then raise (Codec.Corrupt "snapshot meta: trailing bytes");
  dtd_source, tag_names

let decode_index ~doc ~fingerprint payload =
  let r = Codec.reader payload in
  let stored = Codec.read_string r in
  if stored <> fingerprint then
    raise
      (Codec.Corrupt
         (Printf.sprintf "snapshot index/arena fingerprint mismatch (index %s, arena %s)"
            stored fingerprint));
  let ntokens = Codec.read_varint r in
  let tokens = Array.init ntokens (fun _ -> Codec.read_string r) in
  let nlists = Codec.read_varint r in
  let packed = Array.init nlists (fun _ -> Packed_postings.decode r) in
  let npairs = Codec.read_varint r in
  let tag_tokens =
    Array.init npairs (fun _ ->
        let a = Codec.read_varint r in
        let b = Codec.read_varint r in
        a, b)
  in
  if not (Codec.at_end r) then raise (Codec.Corrupt "snapshot index: trailing bytes");
  Inverted_index.Internal.of_packed ~doc ~tokens ~packed ~tag_tokens

let load path =
  if Faults.should_fail "snapshot.map" then
    raise (Codec.Corrupt (Printf.sprintf "injected fault: snapshot.map (%s)" path));
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let h = read_header ~path ic in
      let n = h.node_count in
      let sec = section h in
      let expect name want =
        let s = sec name in
        if s.length <> want then
          raise
            (Codec.Corrupt
               (Printf.sprintf "%s: section %S has %d bytes, expected %d" path name s.length
                  want));
        s
      in
      let tag_s = expect "tag" (n * 8)
      and parent_s = expect "parent" (n * 8)
      and depth_s = expect "depth" (n * 8)
      and size_s = expect "size" (n * 8)
      and kinds_s = expect "kinds" n
      and textoff_s = expect "textoff" ((n + 1) * 8) in
      let textblob_s = sec "textblob" and meta_s = sec "meta" and index_s = sec "index" in
      (* the bulk is mapped, not read: cold-start cost is the page table,
         not the corpus *)
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      let doc =
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let tag = map_int fd ~offset:tag_s.offset ~count:n in
            let parent = map_int fd ~offset:parent_s.offset ~count:n in
            let depth = map_int fd ~offset:depth_s.offset ~count:n in
            let size = map_int fd ~offset:size_s.offset ~count:n in
            let text_offsets = map_int fd ~offset:textoff_s.offset ~count:(n + 1) in
            let text_blob = map_char fd ~offset:textblob_s.offset ~count:textblob_s.length in
            let kinds = Bytes.of_string (read_at ic ~offset:kinds_s.offset ~length:kinds_s.length) in
            let dtd_source, tag_names =
              decode_meta (read_at ic ~offset:meta_s.offset ~length:meta_s.length)
            in
            Document.Flat.of_source
              {
                Document.Flat.dtd_source;
                tag_names;
                element_count = h.element_count;
                kinds;
                tag;
                parent;
                depth;
                size;
                text_offsets;
                text_blob;
              })
      in
      let index =
        decode_index ~doc ~fingerprint:h.fingerprint
          (read_at ic ~offset:index_s.offset ~length:index_s.length)
      in
      Registry.incr maps_total;
      let mapped = (((4 * n) + (n + 1)) * 8) + textblob_s.length in
      Registry.set mapped_bytes_gauge
        (float_of_int (Atomic.fetch_and_add mapped_bytes mapped + mapped));
      doc, index)

(* ------------------------------------------------------------------ *)
(* Deep verification, for [extract check]: load never checksums the
   mapped bulk (that would re-read the corpus and defeat the O(1)
   cold-start), so the section digests recorded at pack time are only
   spent here. *)

type stats = {
  v_node_count : int;
  v_element_count : int;
  v_fingerprint : string;
  v_sections : (string * int) list; (* name, exact bytes *)
  v_file_bytes : int;
}

let verify path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let h = read_header ~path ic in
      List.iter
        (fun s ->
          let body = read_at ic ~offset:s.offset ~length:s.length in
          let sum = Digest.to_hex (Digest.string body) in
          if sum <> s.md5 then
            raise
              (Codec.Corrupt
                 (Printf.sprintf "%s: section %S checksum mismatch (damaged)" path s.name)))
        h.sections;
      (* pairing rule: the header fingerprint must be the fingerprint of
         the arena the sections actually materialize *)
      let doc, index = load path in
      let actual = Persist.fingerprint doc in
      if actual <> h.fingerprint then
        raise
          (Codec.Corrupt
             (Printf.sprintf "%s: header fingerprint %s but the arena materializes as %s"
                path h.fingerprint actual));
      ignore (Inverted_index.postings_size index);
      {
        v_node_count = h.node_count;
        v_element_count = h.element_count;
        v_fingerprint = h.fingerprint;
        v_sections = List.map (fun s -> s.name, s.length) h.sections;
        v_file_bytes = in_channel_length ic;
      })
