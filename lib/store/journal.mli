(** Write-ahead journal for the {!Live} store.

    Every mutation of a live corpus is appended here — and fsync'd —
    {e before} it is applied in memory, so a process death at any
    instant loses at most work that was never acknowledged. The file is
    an 8-byte magic header followed by framed records; each frame is a
    4-byte little-endian payload length, a 16-byte MD5 digest of the
    payload, and the payload itself (a {!Codec}-encoded record). The
    fixed-size frame prefix makes torn-tail detection a pure length
    check.

    Recovery contract ({!read}): an incomplete {e final} frame is the
    signature of a crash mid-append and is reported as a benign
    {!type:tail} to truncate away; a checksum or structure failure
    {e before} the end of the file means the journal itself is damaged
    and raises {!Codec.Corrupt}.

    Fault points: [journal.append] (raise before writing),
    [journal.torn] (write half a frame, fsync, die with
    {!Extract_util.Faults.crash_exit_code} — a deterministic torn
    write), [journal.read], [journal.reset]. *)

type record =
  | Add_doc of {
      name : string;  (** corpus member name (unique key) *)
      xml : string;  (** full document source *)
    }
      (** Add or replace the member called [name]. Replays are
          idempotent: the last [Add_doc] for a name wins. *)
  | Remove_doc of string
      (** Remove the member by name; removing an absent name is a
          no-op on replay. *)
  | Checkpoint of int
      (** All preceding records are contained in snapshot generation
          [n]; replay restarts after the latest checkpoint. *)

(** {1 Appending} *)

type writer

val open_append : string -> writer
(** Open (creating and stamping the magic header if empty) for
    appending. Single-writer: callers serialise through the live
    store's lock. *)

val path : writer -> string

val append : writer -> record -> unit
(** Encode, frame, write, [fsync]. On return the record is durable. *)

val close : writer -> unit

(** {1 Reading / recovery} *)

type tail =
  | Complete  (** the file ends on a frame boundary *)
  | Torn of {
      offset : int;  (** byte offset where the torn frame starts *)
      reason : string;
    }
      (** the final frame is incomplete — expected after a crash
          mid-append; truncate the file at [offset] to repair *)

val read : string -> record list * tail
(** Decode every complete record. A missing file reads as
    [([], Complete)] (a fresh store).
    @raise Codec.Corrupt on bad magic, a mid-file checksum mismatch, or
    a malformed record — damage recovery must not paper over. *)

val truncate : string -> int -> unit
(** [truncate path offset] — cut the file at [offset] (discarding a
    torn tail reported by {!read}) and fsync. *)

val reset : string -> record list -> unit
(** Atomically replace the journal with one containing exactly
    [records] (typically [[Checkpoint gen]] after a snapshot). Uses
    {!Durable.replace_atomic}: a crash leaves the old or the new
    journal, never a mixture. *)

(** {1 Replay helpers} *)

val last_checkpoint : record list -> int option
(** Generation of the latest [Checkpoint], if any. *)

val records_after_checkpoint : record list -> record list
(** The suffix after the latest [Checkpoint] (the whole list when there
    is none) — exactly the records recovery must re-apply. *)
