(** Binary encoding primitives for {!Persist}.

    A deliberately boring format: unsigned LEB128 varints for integers
    (with a zig-zag variant for possibly-negative values) and
    length-prefixed byte strings. No [Marshal]: files are portable across
    OCaml versions and trivially inspectable. *)

type writer

val writer : unit -> writer

val write_varint : writer -> int -> unit
(** Non-negative integers. @raise Invalid_argument on negatives. *)

val write_int : writer -> int -> unit
(** Any integer (zig-zag encoded). *)

val write_string : writer -> string -> unit

val write_bytes_raw : writer -> bytes -> unit
(** Length-prefixed raw bytes. *)

val contents : writer -> string

type reader

val reader : string -> reader
(** Reader positioned at the start of the buffer. *)

val read_varint : reader -> int

val read_int : reader -> int

val read_string : reader -> string

val read_bytes_raw : reader -> bytes

val at_end : reader -> bool

exception Corrupt of string
(** Raised on malformed input: bad magic, checksum mismatch, overlong
    varints, inconsistent structure. The data is there but wrong. *)

exception Truncated of string
(** Raised when the input ends before the value being read is complete —
    the signature of an interrupted write rather than bit rot. Recovery
    code ({!Journal}) treats truncation of the {e final} record of a
    journal as benign (a torn tail to discard), while {!Corrupt} mid-file
    is always fatal; whole-file readers ({!Persist}) treat both as a bad
    artifact. *)
