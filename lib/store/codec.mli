(** Binary encoding primitives for {!Persist}.

    A deliberately boring format: unsigned LEB128 varints for integers
    (with a zig-zag variant for possibly-negative values) and
    length-prefixed byte strings. No [Marshal]: files are portable across
    OCaml versions and trivially inspectable. *)

type writer

val writer : unit -> writer

val write_varint : writer -> int -> unit
(** Non-negative integers. @raise Invalid_argument on negatives. *)

val write_int : writer -> int -> unit
(** Any integer (zig-zag encoded). *)

val write_string : writer -> string -> unit

val write_bytes_raw : writer -> bytes -> unit
(** Length-prefixed raw bytes. *)

val write_fixed64 : writer -> int64 -> unit
(** A raw native-endian 64-bit word, no length prefix. Unlike a varint
    this is {e not} endian-agnostic — which is exactly why the
    {!Snapshot} header uses one as an endianness probe. *)

val contents : writer -> string

type reader

val reader : string -> reader
(** Reader positioned at the start of the buffer. *)

val read_varint : reader -> int

val read_int : reader -> int

val read_string : reader -> string

val read_bytes_raw : reader -> bytes

val read_fixed64 : reader -> int64

val pos : reader -> int
(** Current byte position, for consumers that record offsets. *)

val seek : reader -> int -> unit
(** Jump to an absolute byte position (a previously recorded offset).
    @raise Invalid_argument if the position is outside the buffer. *)

val at_end : reader -> bool

(** {1 Block-compressed sorted arrays}

    Shared delta+varint block primitives for strictly ascending int
    arrays ({!Packed_postings} block payloads): each block opens with its
    absolute first value, then gaps. *)

val block_size : int
(** Entries per compression block (the skip-table granularity). *)

val write_sorted_block : writer -> int array -> lo:int -> hi:int -> unit
(** Encode [arr.(lo) .. arr.(hi-1)] (strictly ascending) as one block. *)

val read_sorted_block : reader -> int array -> lo:int -> hi:int -> unit
(** Decode one block into [out.(lo) .. out.(hi-1)].
    @raise Corrupt on a zero gap (the input was not strictly ascending). *)

exception Corrupt of string
(** Raised on malformed input: bad magic, checksum mismatch, overlong
    varints, inconsistent structure. The data is there but wrong. *)

exception Truncated of string
(** Raised when the input ends before the value being read is complete —
    the signature of an interrupted write rather than bit rot. Recovery
    code ({!Journal}) treats truncation of the {e final} record of a
    journal as benign (a torn tail to discard), while {!Corrupt} mid-file
    is always fatal; whole-file readers ({!Persist}) treat both as a bad
    artifact. *)
