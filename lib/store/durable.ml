(* Durability primitives shared by the journal and the live store's
   snapshot generations. Everything here is about making a write either
   fully visible after a crash or not visible at all:

   - data reaches the disk before we depend on it (fsync the file);
   - renames become durable (fsync the containing directory — without it
     a crash can forget the rename even though the data survived);
   - replacement is atomic (write a temp sibling, fsync, rename over). *)

let write_all fd data =
  let len = String.length data in
  let bytes = Bytes.unsafe_of_string data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let fsync_dir dir =
  (* O_RDONLY on a directory is the portable way to get an fsync-able
     handle on Linux/macOS; if the platform refuses, the rename is still
     atomic — only its durability ordering is weakened. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)
  | exception Unix.Unix_error _ -> ()

let write_file_fsync path data =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write_all fd data;
      Unix.fsync fd)

let replace_atomic ~path data =
  let tmp = path ^ ".tmp" in
  write_file_fsync tmp data;
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path)
