type t = {
  doc : Document.t;
  labels : int array array;
}

let of_document doc =
  let n = Document.node_count doc in
  let labels = Array.make n [||] in
  let rec assign node label =
    labels.(node) <- label;
    let rank = ref 0 in
    Document.iter_children doc node (fun c ->
        assign c (Array.append label [| !rank |]);
        incr rank)
  in
  assign (Document.root doc) [||];
  { doc; labels }

let label t n = t.labels.(n)

let compare_arrays a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else begin
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
    end
  in
  loop 0

let compare_nodes t a b = compare_arrays t.labels.(a) t.labels.(b)

let common_prefix_depth t a b =
  let la = t.labels.(a) and lb = t.labels.(b) in
  let n = min (Array.length la) (Array.length lb) in
  let rec loop i = if i < n && la.(i) = lb.(i) then loop (i + 1) else i in
  loop 0

let lca t a b =
  let d = common_prefix_depth t a b in
  (* The LCA is the ancestor-or-self of [a] at depth [d]. *)
  Document.ancestor_at_depth t.doc a (min d (Document.depth t.doc a))

let pp_label t ppf n =
  let l = t.labels.(n) in
  if Array.length l = 0 then Format.pp_print_string ppf "ε"
  else
    Array.iteri
      (fun i x ->
        if i > 0 then Format.pp_print_char ppf '.';
        Format.pp_print_int ppf x)
      l
