module Faults = Extract_util.Faults
module Registry = Extract_obs.Registry

(* IO volume counters: persistence is the only disk the system touches,
   so these four series are its complete IO story. *)
let reads_total =
  Registry.counter ~help:"Persist artifacts read" "extract_persist_reads_total"

let read_bytes_total =
  Registry.counter ~help:"Bytes read from persisted artifacts"
    "extract_persist_read_bytes_total"

let writes_total =
  Registry.counter ~help:"Persist artifacts written" "extract_persist_writes_total"

let write_bytes_total =
  Registry.counter ~help:"Bytes written to persisted artifacts"
    "extract_persist_write_bytes_total"

let magic = "XTRARENA"

let version = 2

(* ------------------------------------------------------------------ *)
(* Sealed envelopes: every Persist artifact is  magic · version ·
   MD5(payload) · payload,  so corruption anywhere in the payload is
   detected up front instead of surfacing later as nonsense postings. *)

let seal ~magic payload =
  let w = Codec.writer () in
  Codec.write_string w magic;
  Codec.write_varint w version;
  Codec.write_string w (Digest.string payload);
  Codec.write_string w payload;
  Codec.contents w

let unseal ~magic:expected ~kind data =
  let r = Codec.reader data in
  let m = Codec.read_string r in
  if m <> expected then raise (Codec.Corrupt (Printf.sprintf "bad %s magic %S" kind m));
  let v = Codec.read_varint r in
  if v <> version then
    raise (Codec.Corrupt (Printf.sprintf "unsupported %s version %d (want %d)" kind v version));
  let sum = Codec.read_string r in
  let payload = Codec.read_string r in
  if not (Codec.at_end r) then
    raise (Codec.Corrupt (Printf.sprintf "trailing bytes after %s" kind));
  if Digest.string payload <> sum then
    raise (Codec.Corrupt (Printf.sprintf "%s checksum mismatch (payload damaged)" kind));
  payload

(* The sealed-envelope primitive, exposed for sibling persistence formats
   (the live store's snapshot files, the journal's self-description) so
   every artifact kind shares one corruption-detection story. *)
module Envelope = struct
  let seal = seal

  let unseal = unseal
end

let write_int_array w arr =
  Codec.write_varint w (Array.length arr);
  Array.iter (Codec.write_int w) arr

let read_int_array r =
  let n = Codec.read_varint r in
  Array.init n (fun _ -> Codec.read_int r)

let write_string_array w arr =
  Codec.write_varint w (Array.length arr);
  Array.iter (Codec.write_string w) arr

let read_string_array r =
  let n = Codec.read_varint r in
  Array.init n (fun _ -> Codec.read_string r)

let doc_payload doc =
  let repr = Document.Internal.to_repr doc in
  let w = Codec.writer () in
  (match repr.Document.Internal.dtd_source with
  | None -> Codec.write_varint w 0
  | Some s ->
    Codec.write_varint w 1;
    Codec.write_string w s);
  write_string_array w repr.Document.Internal.tag_names;
  Codec.write_bytes_raw w repr.Document.Internal.kinds;
  write_int_array w repr.Document.Internal.tag;
  write_int_array w repr.Document.Internal.parent;
  write_int_array w repr.Document.Internal.depth;
  write_int_array w repr.Document.Internal.size;
  write_string_array w repr.Document.Internal.texts;
  Codec.write_varint w repr.Document.Internal.element_count;
  Codec.contents w

let encode doc = seal ~magic (doc_payload doc)

let fingerprint doc = Digest.to_hex (Digest.string (doc_payload doc))

let decode_payload payload =
  let r = Codec.reader payload in
  let dtd_source =
    match Codec.read_varint r with
    | 0 -> None
    | 1 -> Some (Codec.read_string r)
    | n -> raise (Codec.Corrupt (Printf.sprintf "bad dtd flag %d" n))
  in
  let tag_names = read_string_array r in
  let kinds = Codec.read_bytes_raw r in
  let tag = read_int_array r in
  let parent = read_int_array r in
  let depth = read_int_array r in
  let size = read_int_array r in
  let texts = read_string_array r in
  let element_count = Codec.read_varint r in
  let node_count = Array.length tag in
  if Bytes.length kinds <> node_count
     || Array.length parent <> node_count
     || Array.length depth <> node_count
     || Array.length size <> node_count
     || Array.length texts <> node_count
  then raise (Codec.Corrupt "inconsistent array lengths");
  if not (Codec.at_end r) then raise (Codec.Corrupt "trailing bytes");
  Document.Internal.of_repr
    {
      Document.Internal.dtd_source;
      tag_names;
      kinds;
      tag;
      parent;
      depth;
      size;
      texts;
      element_count;
    }

let decode data = decode_payload (unseal ~magic ~kind:"arena" data)

(* ------------------------------------------------------------------ *)
(* File IO, shared by all artifact kinds. The fault points stand in for
   the disk failures and torn writes a long-running service eventually
   sees; they fail as [Codec.Corrupt] so injected faults exercise exactly
   the recovery paths real corruption takes. *)

let read_file ~what ~magic:expected path =
  if Faults.should_fail "persist.read" then
    raise (Codec.Corrupt (Printf.sprintf "injected fault: persist.read (%s)" what));
  let ic = open_in_bin path in
  let data =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  (* a zero-length file used to surface as a bare "unexpected end of
     input" from the envelope reader — no filename, no hint of what the
     file was supposed to be. Name both up front: empty files are what
     crashes-during-create and disk-full leave behind. *)
  if String.length data = 0 then
    raise
      (Codec.Truncated
         (Printf.sprintf "%s: empty file (expected a %s artifact with magic %S)" path what
            expected));
  Registry.incr reads_total;
  Registry.add read_bytes_total (String.length data);
  data

let write_file ~what path data =
  if Faults.should_fail "persist.write" then
    raise (Codec.Corrupt (Printf.sprintf "injected fault: persist.write (%s)" what));
  let oc = open_out_bin path in
  (try output_string oc data
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Registry.incr writes_total;
  Registry.add write_bytes_total (String.length data)

let save path doc = write_file ~what:"arena" path (encode doc)

let load path = decode (read_file ~what:"arena" ~magic path)

(* ------------------------------------------------------------------ *)
(* Index persistence: posting lists are sorted and ascending, so they are
   stored gap-encoded (first id, then deltas), each as a varint — the
   classic inverted-file compression. The payload opens with the
   fingerprint of the arena the index was built from: an index file only
   makes sense next to that arena, and decoding against any other
   document is rejected instead of yielding nonsense postings. *)

let index_magic = "XTRINDEX"

let index_payload ~arena_fingerprint index =
  let repr = Inverted_index.Internal.to_repr index in
  let w = Codec.writer () in
  Codec.write_string w arena_fingerprint;
  write_string_array w repr.Inverted_index.Internal.tokens;
  Codec.write_varint w (Array.length repr.Inverted_index.Internal.postings);
  Array.iter
    (fun list ->
      Codec.write_varint w (Array.length list);
      let prev = ref 0 in
      Array.iteri
        (fun i node ->
          if i = 0 then Codec.write_varint w node
          else Codec.write_varint w (node - !prev);
          prev := node)
        list)
    repr.Inverted_index.Internal.postings;
  Codec.write_varint w (Array.length repr.Inverted_index.Internal.tag_tokens);
  Array.iter
    (fun (a, b) ->
      Codec.write_varint w a;
      Codec.write_varint w b)
    repr.Inverted_index.Internal.tag_tokens;
  Codec.contents w

let encode_index index =
  let arena_fingerprint = fingerprint (Inverted_index.document index) in
  seal ~magic:index_magic (index_payload ~arena_fingerprint index)

let decode_index_payload ~doc ~arena_fingerprint payload =
  if Faults.should_fail "index.load" then
    raise (Codec.Corrupt "injected fault: index.load");
  let r = Codec.reader payload in
  let stored_fingerprint = Codec.read_string r in
  if stored_fingerprint <> arena_fingerprint then
    raise
      (Codec.Corrupt
         (Printf.sprintf
            "index/arena fingerprint mismatch (index built from arena %s, loaded against \
             %s)"
            stored_fingerprint arena_fingerprint));
  let tokens = read_string_array r in
  let n_lists = Codec.read_varint r in
  let postings =
    Array.init n_lists (fun _ ->
        let len = Codec.read_varint r in
        let out = Array.make len 0 in
        let prev = ref 0 in
        for i = 0 to len - 1 do
          let v = Codec.read_varint r in
          let node = if i = 0 then v else !prev + v in
          out.(i) <- node;
          prev := node
        done;
        out)
  in
  if Array.length tokens <> n_lists then
    raise (Codec.Corrupt "token/postings arity mismatch");
  let n_pairs = Codec.read_varint r in
  let tag_tokens =
    Array.init n_pairs (fun _ ->
        let a = Codec.read_varint r in
        let b = Codec.read_varint r in
        a, b)
  in
  if not (Codec.at_end r) then raise (Codec.Corrupt "trailing bytes after index");
  Inverted_index.Internal.of_repr ~doc { Inverted_index.Internal.tokens; postings; tag_tokens }

let decode_index ~doc data =
  decode_index_payload ~doc ~arena_fingerprint:(fingerprint doc)
    (unseal ~magic:index_magic ~kind:"index" data)

let save_index path index = write_file ~what:"index" path (encode_index index)

let load_index path ~doc = decode_index ~doc (read_file ~what:"index" ~magic:index_magic path)

(* ------------------------------------------------------------------ *)
(* Bundles: arena + index in one file, each as a length-prefixed sealed
   section so either part can evolve independently. The arena section's
   checksum doubles as the fingerprint the index section must match. *)

let bundle_magic = "XTRBUNDL"

let encode_bundle doc index =
  let w = Codec.writer () in
  Codec.write_string w (encode doc);
  Codec.write_string w (encode_index index);
  seal ~magic:bundle_magic (Codec.contents w)

let decode_bundle data =
  let payload = unseal ~magic:bundle_magic ~kind:"bundle" data in
  let r = Codec.reader payload in
  let arena_section = Codec.read_string r in
  let index_section = Codec.read_string r in
  if not (Codec.at_end r) then raise (Codec.Corrupt "trailing bytes after bundle");
  let arena_payload = unseal ~magic ~kind:"arena" arena_section in
  let doc = decode_payload arena_payload in
  let index =
    decode_index_payload ~doc
      ~arena_fingerprint:(Digest.to_hex (Digest.string arena_payload))
      (unseal ~magic:index_magic ~kind:"index" index_section)
  in
  doc, index

let save_bundle path doc index = write_file ~what:"bundle" path (encode_bundle doc index)

let load_bundle path = decode_bundle (read_file ~what:"bundle" ~magic:bundle_magic path)

(* first bytes of any Persist file: a Codec string length then the magic;
   used by the CLI to sniff file kinds *)
let sniff_magic data =
  match Codec.read_string (Codec.reader data) with
  | magic -> Some magic
  | exception (Codec.Corrupt _ | Codec.Truncated _) -> None
