module Interner = Extract_util.Interner
module Arraylist = Extract_util.Arraylist

(* Posting lists come in two representations: plain sorted arrays (8
   bytes per posting — what [build] produces) and block-compressed
   {!Packed_postings} (1–2 bytes per posting — what {!Snapshot} maps).
   Every query entry point answers identically on both; the equivalence
   is property-tested in test_packed.ml. *)
type lists =
  | Plain of Document.node array array
  | Packed of Packed_postings.t array

type t = {
  doc : Document.t;
  tokens : Interner.t;
  postings : lists;                         (* token id -> sorted element ids *)
  tag_tokens : (int * int, unit) Hashtbl.t; (* (token id, tag id) membership *)
  mutable sorted_tokens : (string * int) array option;
      (* (token, id) sorted by token, built lazily on the first [complete];
         the vocabulary is fixed after [build], so the cache never goes
         stale *)
}

let build doc =
  let tokens = Interner.create ~capacity:1024 () in
  let lists : Document.node Arraylist.t Arraylist.t = Arraylist.create () in
  let tag_tokens = Hashtbl.create 256 in
  let posting_for tok =
    let id = Interner.intern tokens tok in
    while Arraylist.length lists <= id do
      Arraylist.push lists (Arraylist.create ())
    done;
    id, Arraylist.get lists id
  in
  (* Nodes are visited in pre-order, so posting lists stay sorted; only
     consecutive duplicates (same node, same token twice) need removing. *)
  let add tok node =
    let _, list = posting_for tok in
    if Arraylist.is_empty list || Arraylist.last list <> node then Arraylist.push list node
  in
  for node = 0 to Document.node_count doc - 1 do
    if Document.is_element doc node then
      List.iter
        (fun tok ->
          let id, list = posting_for tok in
          Hashtbl.replace tag_tokens (id, Document.tag_id doc node) ();
          if Arraylist.is_empty list || Arraylist.last list <> node then
            Arraylist.push list node)
        (Tokenizer.tokens (Document.tag_name doc node))
    else begin
      match Document.parent doc node with
      | Some p -> List.iter (fun tok -> add tok p) (Tokenizer.tokens (Document.text doc node))
      | None -> ()
    end
  done;
  let postings = Array.make (Arraylist.length lists) [||] in
  Arraylist.iteri (fun i list -> postings.(i) <- Arraylist.to_array list) lists;
  { doc; tokens; postings = Plain postings; tag_tokens; sorted_tokens = None }

let document t = t.doc

let token_count t = Interner.count t.tokens

let is_packed t =
  match t.postings with
  | Plain _ -> false
  | Packed _ -> true

let pack t =
  match t.postings with
  | Packed _ -> t
  | Plain arrays ->
    { t with postings = Packed (Array.map Packed_postings.of_array arrays) }

let list_length t id =
  match t.postings with
  | Plain arrays -> Array.length arrays.(id)
  | Packed packed -> Packed_postings.length packed.(id)

let postings_size t =
  let n = token_count t in
  let acc = ref 0 in
  for id = 0 to n - 1 do
    acc := !acc + list_length t id
  done;
  !acc

let postings_bytes t =
  (* approximate resident bytes of the posting lists alone: one word per
     posting plus a header word per plain array, vs the packed blocks'
     compressed footprint — the numerator and denominator of E22's
     compression ratio *)
  match t.postings with
  | Plain arrays -> Array.fold_left (fun acc l -> acc + (8 * (Array.length l + 1))) 0 arrays
  | Packed packed -> Array.fold_left (fun acc p -> acc + Packed_postings.byte_size p) 0 packed

let lookup t keyword =
  match Interner.find t.tokens (Tokenizer.normalize keyword) with
  | Some id -> (
    match t.postings with
    | Plain arrays -> arrays.(id)
    | Packed packed -> Packed_postings.to_array packed.(id))
  | None -> [||]

let matches t keyword = Array.to_list (lookup t keyword)

let contains t keyword =
  match Interner.find t.tokens (Tokenizer.normalize keyword) with
  | Some id -> list_length t id > 0
  | None -> false

let vocabulary t =
  let acc = ref [] in
  Interner.iter (fun _ s -> acc := s :: !acc) t.tokens;
  List.rev !acc

let mem_sorted list node =
  let rec search lo hi =
    if lo > hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if list.(mid) = node then true
      else if list.(mid) < node then search (mid + 1) hi
      else search lo (mid - 1)
    end
  in
  search 0 (Array.length list - 1)

let mem_posting t id node =
  match t.postings with
  | Plain arrays -> mem_sorted arrays.(id) node
  | Packed packed -> Packed_postings.mem packed.(id) node

let match_kind t ~keyword ~node =
  let tok = Tokenizer.normalize keyword in
  match Interner.find t.tokens tok with
  | None -> None
  | Some id ->
    if not (mem_posting t id node) then None
    else begin
      let tag_match =
        Document.is_element t.doc node && Hashtbl.mem t.tag_tokens (id, Document.tag_id t.doc node)
        && List.mem tok (Tokenizer.tokens (Document.tag_name t.doc node))
      in
      let value_match = List.mem tok (Tokenizer.tokens (Document.immediate_text t.doc node)) in
      match tag_match, value_match with
      | true, true -> Some `Both
      | false, true -> Some `Value
      | true, false | false, false -> Some `Tag
    end

let sorted_tokens t =
  match t.sorted_tokens with
  | Some arr -> arr
  | None ->
    let arr = Array.make (Interner.count t.tokens) ("", 0) in
    Interner.iter (fun id tok -> arr.(id) <- (tok, id)) t.tokens;
    Array.sort
      (fun (ta, ia) (tb, ib) ->
        let c = String.compare ta tb in
        if c <> 0 then c else Int.compare ia ib)
      arr;
    t.sorted_tokens <- Some arr;
    arr

let has_prefix ~prefix tok =
  String.length tok >= String.length prefix
  && String.sub tok 0 (String.length prefix) = prefix

(* Completions touch only the vocabulary range sharing the prefix: binary
   search for the first token >= prefix, then walk forward while the
   prefix holds. The old implementation scanned every token per
   keystroke. *)
let complete t ?(limit = 10) prefix =
  let prefix = Tokenizer.normalize prefix in
  if prefix = "" then []
  else begin
    let arr = sorted_tokens t in
    let n = Array.length arr in
    (* smallest index whose token is >= prefix *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst arr.(mid) >= prefix then hi := mid else lo := mid + 1
    done;
    let out = ref [] in
    let i = ref !lo in
    while !i < n && has_prefix ~prefix (fst arr.(!i)) do
      let tok, id = arr.(!i) in
      out := (tok, list_length t id) :: !out;
      incr i
    done;
    List.sort
      (fun (ta, ca) (tb, cb) -> if ca <> cb then Int.compare cb ca else String.compare ta tb)
      !out
    |> List.filteri (fun i _ -> i < limit)
  end

module Internal = struct
  type repr = {
    tokens : string array;
    postings : Document.node array array;
    tag_tokens : (int * int) array;
  }

  let token_names (idx : t) =
    let tokens = Array.make (Interner.count idx.tokens) "" in
    Interner.iter (fun id s -> tokens.(id) <- s) idx.tokens;
    tokens

  let tag_token_pairs (idx : t) =
    Hashtbl.fold (fun pair () acc -> pair :: acc) idx.tag_tokens []
    |> List.sort (fun (a1, a2) (b1, b2) ->
           if a1 <> b1 then Int.compare a1 b1 else Int.compare a2 b2)
    |> Array.of_list

  let to_repr (idx : t) =
    let postings =
      match idx.postings with
      | Plain arrays -> arrays
      | Packed packed -> Array.map Packed_postings.to_array packed
    in
    { tokens = token_names idx; postings; tag_tokens = tag_token_pairs idx }

  let of_repr ~doc (r : repr) =
    let tokens = Interner.create ~capacity:(Array.length r.tokens) () in
    Array.iter (fun s -> ignore (Interner.intern tokens s)) r.tokens;
    let tag_tokens = Hashtbl.create (Array.length r.tag_tokens) in
    Array.iter (fun pair -> Hashtbl.replace tag_tokens pair ()) r.tag_tokens;
    { doc; tokens; postings = Plain r.postings; tag_tokens; sorted_tokens = None }

  let packed_lists (idx : t) =
    match idx.postings with
    | Packed packed -> packed
    | Plain arrays -> Array.map Packed_postings.of_array arrays

  let of_packed ~doc ~tokens:token_names ~packed ~tag_tokens:pairs =
    if Array.length token_names <> Array.length packed then
      invalid_arg "Inverted_index.Internal.of_packed: token/list count mismatch";
    let tokens = Interner.create ~capacity:(Array.length token_names) () in
    Array.iter (fun s -> ignore (Interner.intern tokens s)) token_names;
    let tag_tokens = Hashtbl.create (max 16 (Array.length pairs)) in
    Array.iter (fun pair -> Hashtbl.replace tag_tokens pair ()) pairs;
    { doc; tokens; postings = Packed packed; tag_tokens; sorted_tokens = None }
end
