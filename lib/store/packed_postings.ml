(* Block-compressed posting lists. A posting list is a strictly
   ascending array of node ids; packed form keeps it as delta+varint
   blocks of [Codec.block_size] entries plus a skip table of per-block
   first values, so point and range queries decode at most one block
   instead of the whole list. *)

type t = {
  count : int;
  skips : int array;   (* skips.(b) = first value of block b *)
  offsets : int array; (* offsets.(b) = byte offset of block b in data;
                          length nblocks + 1, last = String.length data *)
  data : string;       (* concatenated delta+varint blocks *)
}

let block = Codec.block_size

let length t = t.count

let nblocks t = Array.length t.skips

let byte_size t =
  (* the resident footprint: compressed bytes plus the two side tables
     (one word per block each) and the record itself *)
  String.length t.data + (8 * (Array.length t.skips + Array.length t.offsets)) + 32

(* read-only — the shared empty posting list; never mutated after creation *)
let empty = { count = 0; skips = [||]; offsets = [| 0 |]; data = "" }

let of_array arr =
  let n = Array.length arr in
  if n = 0 then empty
  else begin
    let nb = (n + block - 1) / block in
    let skips = Array.make nb 0 in
    let offsets = Array.make (nb + 1) 0 in
    let buf = Buffer.create (n * 2) in
    let add_varint v =
      if v < 0 then invalid_arg "Packed_postings.of_array: negative id";
      let rec loop v =
        if v < 0x80 then Buffer.add_char buf (Char.chr v)
        else begin
          Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7F)));
          loop (v lsr 7)
        end
      in
      loop v
    in
    for b = 0 to nb - 1 do
      let lo = b * block in
      let hi = min n (lo + block) in
      skips.(b) <- arr.(lo);
      offsets.(b) <- Buffer.length buf;
      add_varint arr.(lo);
      for i = lo + 1 to hi - 1 do
        if arr.(i) <= arr.(i - 1) then
          invalid_arg "Packed_postings.of_array: not strictly ascending";
        add_varint (arr.(i) - arr.(i - 1))
      done
    done;
    let data = Buffer.contents buf in
    offsets.(nb) <- String.length data;
    { count = n; skips; offsets; data }
  end

(* Decode block [b]: a fresh array of its (<= block) entries. Callers on
   the query path decode once per query via Eval_ctx, so the allocation
   is cold; the point/range helpers below touch one block per probe. *)
let decoded_block t b =
  let lo = b * block in
  let len = min t.count (lo + block) - lo in
  let out = Array.make len 0 in
  let r = Codec.reader t.data in
  Codec.seek r t.offsets.(b);
  let prev = ref 0 in
  for i = 0 to len - 1 do
    let v = Codec.read_varint r in
    let node = if i = 0 then v else !prev + v in
    out.(i) <- node;
    prev := node
  done;
  out

let to_array t =
  let out = Array.make t.count 0 in
  for b = 0 to nblocks t - 1 do
    let entries = decoded_block t b in
    Array.blit entries 0 out (b * block) (Array.length entries)
  done;
  out

let get t i =
  if i < 0 || i >= t.count then
    invalid_arg (Printf.sprintf "Packed_postings.get: index %d out of [0,%d)" i t.count);
  (decoded_block t (i / block)).(i mod block)

(* Smallest index i with value >= x, or count: binary-search the skip
   table for the candidate block, then scan its <= block_size decoded
   entries. The compressed counterpart of Postings.lower_bound. *)
let lower_bound t x =
  if t.count = 0 then 0
  else if x <= t.skips.(0) then 0
  else begin
    (* greatest block b with skips.(b) < x; x > skips.(0) here *)
    let lo = ref 0 and hi = ref (nblocks t - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.skips.(mid) < x then lo := mid else hi := mid - 1
    done;
    let b = !lo in
    let entries = decoded_block t b in
    let n = Array.length entries in
    let i = ref 0 in
    while !i < n && entries.(!i) < x do
      incr i
    done;
    (b * block) + !i (* n = first index of the next block, or count *)
  end

let mem t x =
  let i = lower_bound t x in
  i < t.count && get t i = x

let closest_in t ~lo ~hi =
  let i = lower_bound t lo in
  if i < t.count then begin
    let v = get t i in
    if v <= hi then Some v else None
  end
  else None

let pred_of t x =
  let i = lower_bound t x in
  if i = 0 then None else Some (get t (i - 1))

let succ_of t x =
  let i = lower_bound t (x + 1) in
  if i >= t.count then None else Some (get t i)

let subtree_range doc t root =
  let lo = lower_bound t root in
  let hi = lower_bound t (Document.subtree_last doc root + 1) in
  lo, hi

let in_subtree doc t root =
  let lo, hi = subtree_range doc t root in
  let out = ref [] in
  for i = hi - 1 downto lo do
    out := get t i :: !out
  done;
  !out

let count_in_subtree doc t root =
  let lo, hi = subtree_range doc t root in
  hi - lo

(* ------------------------------------------------------------------ *)
(* Codec embedding, for Snapshot's index section. *)

let encode w t =
  Codec.write_varint w t.count;
  Codec.write_varint w (Array.length t.skips);
  let prev = ref 0 in
  Array.iter
    (fun s ->
      Codec.write_varint w (s - !prev);
      prev := s)
    t.skips;
  let prev = ref 0 in
  Array.iter
    (fun o ->
      Codec.write_varint w (o - !prev);
      prev := o)
    t.offsets;
  Codec.write_string w t.data

let decode r =
  let count = Codec.read_varint r in
  let nb = Codec.read_varint r in
  if nb <> (count + block - 1) / block then
    raise (Codec.Corrupt (Printf.sprintf "packed postings: %d blocks for %d entries" nb count));
  let prev = ref 0 in
  let skips =
    Array.init nb (fun _ ->
        let s = !prev + Codec.read_varint r in
        prev := s;
        s)
  in
  let prev = ref 0 in
  let offsets =
    Array.init (max 1 (nb + 1)) (fun _ ->
        let o = !prev + Codec.read_varint r in
        prev := o;
        o)
  in
  let data = Codec.read_string r in
  if offsets.(Array.length offsets - 1) <> String.length data then
    raise (Codec.Corrupt "packed postings: offset table disagrees with data length");
  { count; skips; offsets; data }
