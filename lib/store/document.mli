(** Column-oriented document arena.

    A parsed XML tree is flattened into pre-order arrays. Node identifiers
    are pre-order ranks (the root is node [0]); a subtree is the contiguous
    id interval [[n, n + size n)], so ancestorship is an O(1) interval test.
    This is the storage every search and snippet algorithm runs on.

    XML attributes ([name="v"]) are converted into child leaf elements at
    load time, unifying them with the paper's data model where an
    "attribute" is an element with a single text child. *)

type node = int
(** Pre-order rank. *)

type kind =
  | Element
  | Text

type int_arr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Node columns are untagged-int bigarrays, so a {!Snapshot} can back
    them directly with [Unix.map_file] — no per-node decode on load. *)

type char_arr = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val of_xml : ?dtd:Extract_xml.Dtd.t -> Extract_xml.Types.t -> t
(** Flatten a tree. @raise Invalid_argument if the argument is a text
    node. The DTD, when given, is carried for downstream classification. *)

val of_document : Extract_xml.Types.document -> t
(** Flatten a parsed document, parsing its internal DTD subset if any. *)

val load_string : string -> t
(** Parse and flatten, in one step (tree-building parser). *)

val of_string_streaming : string -> t
(** Build the arena in a single SAX pass, without materializing the
    intermediate {!Extract_xml.Types.t} tree — same result as
    {!load_string} (property-tested), lower peak memory on large inputs
    (benchmark E15). *)

val load_file : string -> t

val dtd : t -> Extract_xml.Dtd.t option

val dtd_source : t -> string option
(** The DTD internal-subset text the document was loaded with (or a
    re-rendering of the element declarations when only a parsed DTD was
    supplied). Used by {!Persist}. *)

(** {1 Size and structure} *)

val node_count : t -> int

val element_count : t -> int

val root : t -> node
(** Always [0]. *)

val kind : t -> node -> kind

val is_element : t -> node -> bool

val tag_id : t -> node -> int
(** Interned tag of an element. @raise Invalid_argument on a text node. *)

val tag_name : t -> node -> string

val tag_interner : t -> Extract_util.Interner.t

val tag_of_name : t -> string -> int option
(** Id of a tag name occurring in the document. *)

val text : t -> node -> string
(** Content of a text node. @raise Invalid_argument on an element. *)

val parent : t -> node -> node option
(** [None] for the root. *)

val parent_exn : t -> node -> node

val depth : t -> node -> int
(** Root has depth 0. *)

val subtree_size : t -> node -> int
(** Number of nodes in the subtree, including [node] itself. *)

val subtree_last : t -> node -> node
(** Largest id in the subtree. *)

val children : t -> node -> node list

val first_child : t -> node -> node option

val next_sibling : t -> node -> node option

val iter_children : t -> node -> (node -> unit) -> unit

val fold_subtree : t -> node -> ('a -> node -> 'a) -> 'a -> 'a
(** Pre-order fold over the subtree, including the root. *)

(** {1 Relations} *)

val is_ancestor : t -> anc:node -> desc:node -> bool
(** Proper ancestorship (a node is not its own ancestor). *)

val is_ancestor_or_self : t -> anc:node -> desc:node -> bool

val lca : t -> node -> node -> node
(** Lowest common ancestor, O(depth). *)

val ancestors : t -> node -> node list
(** Strict ancestors, nearest first; [[]] for the root. *)

val ancestor_at_depth : t -> node -> int -> node
(** The unique ancestor-or-self at the given depth.
    @raise Invalid_argument if the depth exceeds the node's depth. *)

(** {1 Content} *)

val immediate_text : t -> node -> string
(** Concatenated direct text children of an element. *)

val subtree_text : t -> node -> string
(** All text in the subtree, document order, space-joined. *)

val has_only_text_children : t -> node -> bool
(** True when the element has at least one child and all children are text
    nodes — the shape of a paper "attribute". *)

val to_xml : t -> node -> Extract_xml.Types.t
(** Rebuild the subtree as an XML tree (inverse of {!of_xml} up to
    attribute conversion). *)

val pp_node : t -> Format.formatter -> node -> unit
(** One-line description, for debugging and error messages. *)

(** {1 Flat column access}

    The zero-copy seam used by {!Snapshot}: a document as raw columns.
    [of_source] adopts the given bigarrays without copying — they may be
    file-backed mappings — and [to_source] exposes a built document's
    columns (flattening per-node text strings into one blob + offset
    table when needed). *)

module Flat : sig
  type source = {
    dtd_source : string option;
    tag_names : string array;
    element_count : int;
    kinds : Bytes.t;
    tag : int_arr;
    parent : int_arr;
    depth : int_arr;
    size : int_arr;
    text_offsets : int_arr; (** [node_count + 1] entries; element slices are empty *)
    text_blob : char_arr;
  }

  val of_source : source -> t
  (** @raise Invalid_argument on mismatched column lengths. *)

  val to_source : t -> source
end

(**/**)

(** Internal representation access, for {!Persist} only. *)
module Internal : sig
  type repr = {
    dtd_source : string option;
    tag_names : string array;
    kinds : Bytes.t;
    tag : int array;
    parent : int array;
    depth : int array;
    size : int array;
    texts : string array;
    element_count : int;
  }

  val to_repr : t -> repr

  val of_repr : repr -> t
end
