(** Document statistics, reported by the CLI's [stats] command and by the
    E1 dataset table of the benchmark harness. *)

type t = {
  nodes : int;
  elements : int;
  text_nodes : int;
  distinct_tags : int;
  distinct_paths : int;
  max_depth : int;
  entity_paths : int;
  attribute_paths : int;
  connection_paths : int;
  entity_instances : int;
  attribute_instances : int;
}

val compute : Node_kind.t -> t

val of_document : Document.t -> t

val pp : Format.formatter -> t -> unit

val pp_json : Format.formatter -> t -> unit
(** The same statistics as one JSON object (the demo server's
    [/stats?format=json] embeds it). *)

val to_row : t -> string list
(** Cells matching {!header}, for table rendering. *)

val header : string list
