(** Binary searches over sorted posting lists.

    Posting lists ({!Inverted_index.lookup}) are sorted arrays of pre-order
    node ids, and a subtree is the contiguous interval
    [[root, Document.subtree_last doc root]] — so "the matches inside this
    result" is a range query, not a scan. These helpers are shared by the
    SLCA merge, result shaping, match restriction and the ranker; they used
    to live privately in [Slca]. *)

val lower_bound : Document.node array -> Document.node -> int
(** [lower_bound arr x] — smallest index [i] with [arr.(i) >= x], or
    [Array.length arr] when every element is smaller. [arr] must be
    sorted ascending. *)

val closest_in : Document.node array -> lo:Document.node -> hi:Document.node -> Document.node option
(** Some element of the sorted array within [[lo, hi]], or [None]. *)

val pred_of : Document.node array -> Document.node -> Document.node option
(** Largest element strictly below [x]. *)

val succ_of : Document.node array -> Document.node -> Document.node option
(** Smallest element strictly above [x]. *)

val subtree_range : Document.t -> Document.node array -> Document.node -> int * int
(** [subtree_range doc arr root] — the half-open index range [[i, j)] of
    postings lying in [root]'s subtree. O(log |arr|). *)

val in_subtree : Document.t -> Document.node array -> Document.node -> Document.node list
(** The postings inside [root]'s subtree, in document order. O(log |arr|)
    plus the output size — never a scan of the whole list. *)

val count_in_subtree : Document.t -> Document.node array -> Document.node -> int
(** [List.length (in_subtree doc arr root)], without building the list. *)
