(** Crash-safe file IO primitives.

    {!Journal} and the {!Live} store's snapshot generations share one
    durability story, built from three facts about POSIX filesystems:
    data is only guaranteed on disk after [fsync] of the file; a rename
    is only guaranteed to survive a crash after [fsync] of the containing
    directory; and [rename] over an existing name is atomic — a reader
    (or a recovery pass) sees the old file or the new one, never a
    mixture. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, retrying short writes. *)

val fsync_dir : string -> unit
(** Fsync a directory so a rename inside it becomes durable. On
    platforms that refuse to open a directory for fsync this degrades to
    a no-op: the rename stays atomic, only its durability ordering
    weakens. *)

val write_file_fsync : string -> string -> unit
(** [write_file_fsync path data] — create/truncate, write everything,
    fsync, close. The file's {e content} is durable on return; its
    {e name} is durable only after the containing directory is synced
    (see {!replace_atomic}). *)

val replace_atomic : path:string -> string -> unit
(** Write [data] to [path ^ ".tmp"] (fsync'd), rename it over [path],
    and fsync the directory. A crash at any point leaves either the old
    complete file or the new complete file at [path] — never a torn
    mixture. The temp sibling may survive a crash; recovery deletes
    strays. *)
