module Interner = Extract_util.Interner
module Arraylist = Extract_util.Arraylist
module Xml = Extract_xml.Types

type node = int

type kind = Element | Text

type int_arr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type char_arr = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Texts come in two shapes: freshly built documents hold one string per
   node ("" for elements); mapped snapshots hold a single flat blob with
   an offset table and slice it on demand. Element slices are empty, so
   both shapes answer identically. *)
type text_store =
  | Strings of string array
  | Blob of {
      offsets : int_arr; (* node_count + 1 entries *)
      blob : char_arr;
    }

type t = {
  dtd : Extract_xml.Dtd.t option;
  dtd_source : string option; (* original internal subset, for persistence *)
  tags : Interner.t;
  kinds : Bytes.t;          (* 0 = element, 1 = text *)
  tag : int_arr;            (* tag id, -1 for text nodes *)
  parent : int_arr;         (* -1 for the root *)
  depth : int_arr;
  size : int_arr;           (* subtree size in nodes, including self *)
  texts : text_store;
  element_count : int;
}

let ba_of_array (a : int array) : int_arr =
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (Array.length a) in
  Array.iteri (fun i v -> Bigarray.Array1.unsafe_set b i v) a;
  b

let ba_to_array (b : int_arr) : int array =
  Array.init (Bigarray.Array1.dim b) (fun i -> Bigarray.Array1.unsafe_get b i)

let node_count t = Bigarray.Array1.dim t.tag

let check t n =
  if n < 0 || n >= node_count t then
    invalid_arg (Printf.sprintf "Document: node %d out of range [0,%d)" n (node_count t))

let text_at t n =
  match t.texts with
  | Strings a -> a.(n)
  | Blob { offsets; blob } ->
    let off = offsets.{n} and stop = offsets.{n + 1} in
    String.init (stop - off) (fun i -> Bigarray.Array1.unsafe_get blob (off + i))

(* Flattening: first convert XML attributes to leaf children, then a
   two-pass walk (count, fill) to allocate exact-size arrays. *)

let rec attrs_to_children (node : Xml.t) : Xml.t =
  match node with
  | Xml.Text _ -> node
  | Xml.Element e ->
    let attr_children =
      List.map (fun (a : Xml.attribute) -> Xml.leaf a.name a.value) e.attrs
    in
    let children = attr_children @ List.map attrs_to_children e.children in
    Xml.Element { e with attrs = []; children }

let of_xml ?dtd xml =
  (match xml with
  | Xml.Text _ -> invalid_arg "Document.of_xml: the root must be an element"
  | Xml.Element _ -> ());
  let xml = attrs_to_children xml in
  let total = Xml.count_nodes xml in
  let tags = Interner.create () in
  let kinds = Bytes.make total '\000' in
  let tag = Array.make total (-1) in
  let parent = Array.make total (-1) in
  let depth = Array.make total 0 in
  let size = Array.make total 1 in
  let texts = Array.make total "" in
  let elements = ref 0 in
  let next = ref 0 in
  let rec fill node ~parent_id ~level =
    let id = !next in
    next := id + 1;
    parent.(id) <- parent_id;
    depth.(id) <- level;
    (match node with
    | Xml.Text s ->
      Bytes.set kinds id '\001';
      texts.(id) <- s
    | Xml.Element e ->
      incr elements;
      tag.(id) <- Interner.intern tags e.tag;
      List.iter (fun c -> fill c ~parent_id:id ~level:(level + 1)) e.children);
    size.(id) <- !next - id
  in
  fill xml ~parent_id:(-1) ~level:0;
  {
    dtd;
    dtd_source = None;
    tags;
    kinds;
    tag = ba_of_array tag;
    parent = ba_of_array parent;
    depth = ba_of_array depth;
    size = ba_of_array size;
    texts = Strings texts;
    element_count = !elements;
  }

(* Streaming construction: one SAX pass, no intermediate tree. XML
   attributes become leaf children at the point their element starts,
   matching [attrs_to_children]. *)
let of_string_streaming input =
  let tags = Interner.create () in
  let kind_buf = Buffer.create 1024 in
  let tag = Arraylist.create ~capacity:1024 () in
  let parent = Arraylist.create ~capacity:1024 () in
  let depth = Arraylist.create ~capacity:1024 () in
  let size = Arraylist.create ~capacity:1024 () in
  let texts = Arraylist.create ~capacity:1024 () in
  let elements = ref 0 in
  let push_node ~is_element ~tag_id ~parent_id ~level ~text =
    let id = Arraylist.length tag in
    Buffer.add_char kind_buf (if is_element then '\000' else '\001');
    Arraylist.push tag tag_id;
    Arraylist.push parent parent_id;
    Arraylist.push depth level;
    Arraylist.push size 1;
    Arraylist.push texts text;
    if is_element then incr elements;
    id
  in
  (* stack of open element ids; the accumulator is unused (unit) *)
  let stack = ref [] in
  let current_parent () =
    match !stack with
    | id :: _ -> id
    | [] -> -1
  in
  let level () = List.length !stack in
  let (), dtd_source =
    Extract_xml.Sax.fold_document input ~init:() ~f:(fun () ev ->
        match ev with
        | Extract_xml.Sax.Start_element (name, attrs) ->
          let id =
            push_node ~is_element:true ~tag_id:(Interner.intern tags name)
              ~parent_id:(current_parent ()) ~level:(level ()) ~text:""
          in
          stack := id :: !stack;
          (* XML attributes -> leaf children *)
          List.iter
            (fun (aname, avalue) ->
              let attr_id =
                push_node ~is_element:true ~tag_id:(Interner.intern tags aname)
                  ~parent_id:id ~level:(level ()) ~text:""
              in
              let _ =
                push_node ~is_element:false ~tag_id:(-1) ~parent_id:attr_id
                  ~level:(level () + 1) ~text:avalue
              in
              Arraylist.set size attr_id 2)
            attrs
        | Extract_xml.Sax.Text text ->
          let _ =
            push_node ~is_element:false ~tag_id:(-1) ~parent_id:(current_parent ())
              ~level:(level ()) ~text
          in
          ()
        | Extract_xml.Sax.End_element _ ->
          (match !stack with
          | id :: rest ->
            Arraylist.set size id (Arraylist.length tag - id);
            stack := rest
          | [] -> assert false))
  in
  let dtd = Option.map Extract_xml.Dtd.parse dtd_source in
  {
    dtd;
    dtd_source;
    tags;
    kinds = Bytes.of_string (Buffer.contents kind_buf);
    tag = ba_of_array (Arraylist.to_array tag);
    parent = ba_of_array (Arraylist.to_array parent);
    depth = ba_of_array (Arraylist.to_array depth);
    size = ba_of_array (Arraylist.to_array size);
    texts = Strings (Arraylist.to_array texts);
    element_count = !elements;
  }

let of_document (doc : Xml.document) =
  let dtd =
    match doc.dtd with
    | Some subset -> Some (Extract_xml.Dtd.parse subset)
    | None -> None
  in
  let t = of_xml ?dtd (Xml.Element doc.root) in
  { t with dtd_source = doc.dtd }

let load_string s = of_document (Extract_xml.Parser.parse_document s)

let load_file path = of_document (Extract_xml.Parser.parse_file path)

let dtd t = t.dtd

let element_count t = t.element_count

let root _ = 0

let kind t n =
  check t n;
  if Bytes.get t.kinds n = '\000' then Element else Text

let is_element t n =
  check t n;
  Bytes.get t.kinds n = '\000'

let tag_id t n =
  check t n;
  let id = t.tag.{n} in
  if id < 0 then invalid_arg (Printf.sprintf "Document.tag_id: node %d is a text node" n);
  id

let tag_name t n = Interner.name t.tags (tag_id t n)

let tag_interner t = t.tags

let tag_of_name t name = Interner.find t.tags name

let text t n =
  check t n;
  if Bytes.get t.kinds n <> '\001' then
    invalid_arg (Printf.sprintf "Document.text: node %d is an element" n);
  text_at t n

let parent t n =
  check t n;
  let p = t.parent.{n} in
  if p < 0 then None else Some p

let parent_exn t n =
  match parent t n with
  | Some p -> p
  | None -> invalid_arg "Document.parent_exn: the root has no parent"

let depth t n =
  check t n;
  t.depth.{n}

let subtree_size t n =
  check t n;
  t.size.{n}

let subtree_last t n = n + subtree_size t n - 1

let iter_children t n f =
  check t n;
  let stop = subtree_last t n in
  let c = ref (n + 1) in
  while !c <= stop do
    f !c;
    c := !c + t.size.{!c}
  done

let children t n =
  let acc = ref [] in
  iter_children t n (fun c -> acc := c :: !acc);
  List.rev !acc

let first_child t n =
  check t n;
  if t.size.{n} > 1 then Some (n + 1) else None

let next_sibling t n =
  check t n;
  let p = t.parent.{n} in
  if p < 0 then None
  else begin
    let candidate = n + t.size.{n} in
    if candidate <= subtree_last t p then Some candidate else None
  end

let fold_subtree t n f acc =
  check t n;
  let acc = ref acc in
  for i = n to subtree_last t n do
    acc := f !acc i
  done;
  !acc

let is_ancestor_or_self t ~anc ~desc =
  check t anc;
  check t desc;
  anc <= desc && desc <= subtree_last t anc

let is_ancestor t ~anc ~desc = anc <> desc && is_ancestor_or_self t ~anc ~desc

let rec lca t a b =
  if a = b then a
  else if t.depth.{a} > t.depth.{b} then lca t t.parent.{a} b
  else if t.depth.{b} > t.depth.{a} then lca t a t.parent.{b}
  else lca t t.parent.{a} t.parent.{b}

let lca t a b =
  check t a;
  check t b;
  lca t a b

let ancestors t n =
  check t n;
  let rec up acc n =
    match t.parent.{n} with
    | -1 -> List.rev acc
    | p -> up (p :: acc) p
  in
  (* acc is pushed farthest-last, so the single reverse yields nearest
     ancestor first. *)
  up [] n

let ancestor_at_depth t n d =
  check t n;
  if d < 0 || d > t.depth.{n} then
    invalid_arg (Printf.sprintf "Document.ancestor_at_depth: depth %d vs node depth %d" d t.depth.{n});
  let rec up n = if t.depth.{n} = d then n else up t.parent.{n} in
  up n

let immediate_text t n =
  let buf = Buffer.create 16 in
  iter_children t n (fun c ->
      if Bytes.get t.kinds c = '\001' then Buffer.add_string buf (text_at t c));
  Buffer.contents buf

let subtree_text t n =
  check t n;
  let buf = Buffer.create 32 in
  for i = n to subtree_last t n do
    if Bytes.get t.kinds i = '\001' then begin
      if Buffer.length buf > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (text_at t i)
    end
  done;
  Buffer.contents buf

let has_only_text_children t n =
  check t n;
  if t.size.{n} <= 1 then false
  else begin
    let ok = ref true and any = ref false in
    iter_children t n (fun c ->
        any := true;
        if Bytes.get t.kinds c = '\000' then ok := false);
    !any && !ok
  end

let rec to_xml t n =
  check t n;
  if Bytes.get t.kinds n = '\001' then Xml.Text (text_at t n)
  else begin
    let kids = List.map (to_xml t) (children t n) in
    Xml.Element { Xml.tag = tag_name t n; attrs = []; children = kids }
  end

let pp_node t ppf n =
  check t n;
  if Bytes.get t.kinds n = '\001' then Format.fprintf ppf "#%d text %S" n (text_at t n)
  else Format.fprintf ppf "#%d <%s> depth=%d size=%d" n (tag_name t n) t.depth.{n} t.size.{n}

let dtd_source t =
  match t.dtd_source, t.dtd with
  | (Some _ as s), _ -> s
  | None, Some dtd ->
    let rendered = Format.asprintf "%a" Extract_xml.Dtd.pp dtd in
    if rendered = "" then None else Some rendered
  | None, None -> None

let tag_names t =
  let names = Array.make (Interner.count t.tags) "" in
  Interner.iter (fun id name -> names.(id) <- name) t.tags;
  names

let make ~dtd_source ~tag_names ~kinds ~tag ~parent ~depth ~size ~texts ~element_count =
  let tags = Interner.create ~capacity:(Array.length tag_names) () in
  Array.iter (fun name -> ignore (Interner.intern tags name)) tag_names;
  let dtd = Option.map Extract_xml.Dtd.parse dtd_source in
  { dtd; dtd_source; tags; kinds; tag; parent; depth; size; texts; element_count }

module Internal = struct
  type repr = {
    dtd_source : string option;
    tag_names : string array;
    kinds : Bytes.t;
    tag : int array;
    parent : int array;
    depth : int array;
    size : int array;
    texts : string array;
    element_count : int;
  }

  let to_repr t =
    {
      dtd_source = dtd_source t;
      tag_names = tag_names t;
      kinds = t.kinds;
      tag = ba_to_array t.tag;
      parent = ba_to_array t.parent;
      depth = ba_to_array t.depth;
      size = ba_to_array t.size;
      texts =
        (match t.texts with
        | Strings a -> a
        | Blob _ -> Array.init (node_count t) (fun n -> text_at t n));
      element_count = t.element_count;
    }

  let of_repr (r : repr) =
    make ~dtd_source:r.dtd_source ~tag_names:r.tag_names ~kinds:r.kinds
      ~tag:(ba_of_array r.tag) ~parent:(ba_of_array r.parent)
      ~depth:(ba_of_array r.depth) ~size:(ba_of_array r.size)
      ~texts:(Strings r.texts) ~element_count:r.element_count
end

(* Flat column access: the zero-copy seam {!Snapshot} packs from and maps
   into. [of_source] adopts the caller's bigarrays (possibly file-backed)
   without copying; [to_source] flattens per-node strings into one blob
   when needed. *)
module Flat = struct
  type source = {
    dtd_source : string option;
    tag_names : string array;
    element_count : int;
    kinds : Bytes.t;
    tag : int_arr;
    parent : int_arr;
    depth : int_arr;
    size : int_arr;
    text_offsets : int_arr; (* node_count + 1 entries *)
    text_blob : char_arr;
  }

  let of_source (s : source) =
    let n = Bigarray.Array1.dim s.tag in
    let dim what a =
      if Bigarray.Array1.dim a <> n then
        invalid_arg (Printf.sprintf "Document.Flat.of_source: %s has %d entries, expected %d"
                       what (Bigarray.Array1.dim a) n)
    in
    dim "parent" s.parent;
    dim "depth" s.depth;
    dim "size" s.size;
    if Bytes.length s.kinds <> n then
      invalid_arg "Document.Flat.of_source: kinds length mismatch";
    if Bigarray.Array1.dim s.text_offsets <> n + 1 then
      invalid_arg "Document.Flat.of_source: text offset table must have node_count + 1 entries";
    if s.text_offsets.{n} <> Bigarray.Array1.dim s.text_blob then
      invalid_arg "Document.Flat.of_source: text offsets disagree with blob length";
    make ~dtd_source:s.dtd_source ~tag_names:s.tag_names ~kinds:s.kinds ~tag:s.tag
      ~parent:s.parent ~depth:s.depth ~size:s.size
      ~texts:(Blob { offsets = s.text_offsets; blob = s.text_blob })
      ~element_count:s.element_count

  let to_source t : source =
    let n = node_count t in
    let text_offsets, text_blob =
      match t.texts with
      | Blob { offsets; blob } -> offsets, blob
      | Strings a ->
        let offsets = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (n + 1) in
        let total = Array.fold_left (fun acc s -> acc + String.length s) 0 a in
        let blob = Bigarray.Array1.create Bigarray.char Bigarray.c_layout total in
        let off = ref 0 in
        Array.iteri
          (fun i s ->
            offsets.{i} <- !off;
            String.iter
              (fun c ->
                Bigarray.Array1.unsafe_set blob !off c;
                incr off)
              s)
          a;
        offsets.{n} <- !off;
        offsets, blob
    in
    {
      dtd_source = dtd_source t;
      tag_names = tag_names t;
      element_count = t.element_count;
      kinds = t.kinds;
      tag = t.tag;
      parent = t.parent;
      depth = t.depth;
      size = t.size;
      text_offsets;
      text_blob;
    }
end
