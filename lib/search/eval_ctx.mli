(** Per-query evaluation context.

    One query used to re-resolve its posting lists at every stage: once in
    [Engine.run], again per result when shaping match paths, again per
    result in IList construction and query-biased scoring. An [Eval_ctx]
    resolves each keyword's posting list exactly once and is threaded
    through the engine and the snippet pipeline; all later stages answer
    "which matches fall under this node" by subtree-interval binary search
    ({!Extract_store.Postings}) over the cached lists. The context is
    immutable after {!make} and safe to share across domains. *)

module Document = Extract_store.Document

type t

val make : ?mask:(int * int) array -> Extract_store.Inverted_index.t -> Query.t -> t
(** Resolve every keyword of the query against the index, once. [mask],
    when given, is a sorted array of disjoint inclusive node-id
    intervals: postings outside every interval are dropped during
    resolution, so all downstream algorithms see only visible nodes.
    The live store uses this to hide tombstoned member subtrees (and
    its synthetic corpus root) without rebuilding the index. An empty
    mask hides everything. *)

val index : t -> Extract_store.Inverted_index.t

val query : t -> Query.t

val document : t -> Document.t

val postings : t -> string -> Document.node array
(** The cached posting list of a query keyword (the shared array — do not
    mutate). Falls back to an index lookup for a keyword outside the
    query. *)

val lists : t -> Document.node array list
(** All posting lists, in query-keyword order. *)

val matches_under : t -> Document.node -> Document.node list
(** Matches of any query keyword inside the node's subtree (concatenated
    per keyword; each keyword's block is in document order). Binary
    search per keyword — never a scan of the posting lists. *)

val restrict : t -> Result_tree.t -> string -> Document.node list
(** [restrict t result k] = {!Result_tree.restrict_matches} over the
    cached posting list of [k]. *)
