module Document = Extract_store.Document
module Pretty = Extract_util.Pretty

type t = {
  doc : Document.t;
  root : Document.node;
  members : Document.node array; (* sorted, ancestor-closed, root included *)
  member_set : (Document.node, unit) Hashtbl.t;
}

let of_sorted_members doc root members =
  let member_set = Hashtbl.create (Array.length members) in
  Array.iter (fun n -> Hashtbl.replace member_set n ()) members;
  { doc; root; members; member_set }

let full doc root =
  let last = Document.subtree_last doc root in
  let members = Array.init (last - root + 1) (fun i -> root + i) in
  of_sorted_members doc root members

let close_upward doc root nodes =
  let set = Hashtbl.create 64 in
  let rec add n =
    if not (Hashtbl.mem set n) then begin
      Hashtbl.add set n ();
      if n <> root then
        match Document.parent doc n with
        | Some p -> add p
        | None ->
          invalid_arg "Result_tree: a member does not descend from the root"
    end
  in
  List.iter
    (fun n ->
      if not (Document.is_ancestor_or_self doc ~anc:root ~desc:n) then
        invalid_arg "Result_tree: a member lies outside the root's subtree";
      add n)
    nodes;
  add root;
  let members = Hashtbl.fold (fun n () acc -> n :: acc) set [] in
  Array.of_list (List.sort Int.compare members)

let of_members doc ~root nodes =
  of_sorted_members doc root (close_upward doc root nodes)

let match_paths doc ~root ~matches = of_members doc ~root matches

let document t = t.doc

let root t = t.root

let mem t n = Hashtbl.mem t.member_set n

let size t = Array.length t.members

let element_size t =
  Array.fold_left (fun acc n -> if Document.is_element t.doc n then acc + 1 else acc) 0 t.members

let edge_count t = element_size t - 1

let members t = t.members

let children t n =
  List.filter (fun c -> mem t c) (Document.children t.doc n)

let iter_elements t f =
  Array.iter (fun n -> if Document.is_element t.doc n then f n) t.members

let fold_elements t f acc =
  Array.fold_left (fun acc n -> if Document.is_element t.doc n then f acc n else acc) acc t.members

let parent_in t n =
  if n = t.root then None
  else
    match Document.parent t.doc n with
    | Some p when mem t p -> Some p
    | _ -> None

(* The members all lie in [root, subtree_last root], so only the postings
   in that interval can qualify: binary-search the range instead of
   scanning the whole list (postings scale with the document, the range
   with the result). *)
let restrict_matches t postings =
  let lo, hi = Extract_store.Postings.subtree_range t.doc postings t.root in
  let out = ref [] in
  for i = hi - 1 downto lo do
    let n = postings.(i) in
    if mem t n then out := n :: !out
  done;
  !out

let text_of t =
  let buf = Buffer.create 128 in
  Array.iter
    (fun n ->
      if not (Document.is_element t.doc n) then begin
        if Buffer.length buf > 0 then Buffer.add_char buf ' ';
        Buffer.add_string buf (Document.text t.doc n)
      end)
    t.members;
  Buffer.contents buf

let label t n =
  let doc = t.doc in
  if Document.has_only_text_children doc n then
    Printf.sprintf "%s \"%s\"" (Document.tag_name doc n)
      (String.trim (Document.immediate_text doc n))
  else Document.tag_name doc n

let rec pretty_of t n =
  let kids =
    children t n
    |> List.filter (fun c -> Document.is_element t.doc c)
    |> List.map (pretty_of t)
  in
  Pretty.Node (label t n, kids)

let to_pretty t = pretty_of t t.root

let rec xml_of t n =
  if Document.is_element t.doc n then
    Extract_xml.Types.Element
      {
        Extract_xml.Types.tag = Document.tag_name t.doc n;
        attrs = [];
        children = List.map (xml_of t) (children t n);
      }
  else Extract_xml.Types.Text (Document.text t.doc n)

let to_xml t = xml_of t t.root
