module Document = Extract_store.Document
module Postings = Extract_store.Postings
module Inverted_index = Extract_store.Inverted_index
module Registry = Extract_obs.Registry
module Trace = Extract_obs.Trace
module Log = Extract_obs.Log
module Capture = Extract_obs.Explain
module Jsonv = Extract_obs.Jsonv

type t = {
  index : Inverted_index.t;
  query : Query.t;
  mask : (int * int) array option;
  resolved : (string * Document.node array) list; (* query-keyword order *)
}

(* Two-pointer intersection of an ascending posting list with sorted
   disjoint inclusive intervals. Returns the input array unchanged when
   nothing is filtered out, so the common no-tombstone case allocates
   nothing. *)
let apply_mask mask arr =
  let m = Array.length mask in
  let n = Array.length arr in
  if m = 0 then [||]
  else begin
    let buf = Array.make n 0 in
    let k = ref 0 in
    let i = ref 0 in
    let j = ref 0 in
    while !i < n && !j < m do
      let node = arr.(!i) in
      let lo, hi = mask.(!j) in
      if node < lo then incr i
      else if node > hi then incr j
      else begin
        buf.(!k) <- node;
        incr k;
        incr i
      end
    done;
    if !k = n then arr else Array.sub buf 0 !k
  end

let masked mask arr =
  match mask with
  | None -> arr
  | Some intervals -> apply_mask intervals arr

let lists_resolved_total =
  Registry.counter ~help:"Posting lists resolved into evaluation contexts"
    "extract_posting_lists_resolved_total"

let entries_resolved_total =
  Registry.counter ~help:"Posting entries in lists resolved into evaluation contexts"
    "extract_posting_entries_resolved_total"

let make ?mask index query =
  let resolved =
    Trace.with_span "eval_ctx.resolve" (fun () ->
        List.map
          (fun k -> k, masked mask (Inverted_index.lookup index k))
          (Query.keywords query))
  in
  Registry.add lists_resolved_total (List.length resolved);
  Registry.add entries_resolved_total
    (List.fold_left (fun acc (_, arr) -> acc + Array.length arr) 0 resolved);
  if Log.enabled Log.Debug || Capture.capturing () then begin
    let counts = List.map (fun (k, arr) -> k, Jsonv.Int (Array.length arr)) resolved in
    Log.debug "eval_ctx.resolve" counts;
    Capture.record "postings" (fun () -> Jsonv.Obj counts)
  end;
  { index; query; mask; resolved }

let index t = t.index

let query t = t.query

let document t = Inverted_index.document t.index

let postings t keyword =
  match List.assoc_opt keyword t.resolved with
  | Some arr -> arr
  | None -> masked t.mask (Inverted_index.lookup t.index keyword)

let lists t = List.map snd t.resolved

let matches_under t node =
  let doc = document t in
  List.concat_map (fun (_, arr) -> Postings.in_subtree doc arr node) t.resolved

let restrict t result keyword = Result_tree.restrict_matches result (postings t keyword)
