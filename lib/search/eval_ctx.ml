module Document = Extract_store.Document
module Postings = Extract_store.Postings
module Inverted_index = Extract_store.Inverted_index
module Registry = Extract_obs.Registry
module Trace = Extract_obs.Trace
module Log = Extract_obs.Log
module Capture = Extract_obs.Explain
module Jsonv = Extract_obs.Jsonv

type t = {
  index : Inverted_index.t;
  query : Query.t;
  resolved : (string * Document.node array) list; (* query-keyword order *)
}

let lists_resolved_total =
  Registry.counter ~help:"Posting lists resolved into evaluation contexts"
    "extract_posting_lists_resolved_total"

let entries_resolved_total =
  Registry.counter ~help:"Posting entries in lists resolved into evaluation contexts"
    "extract_posting_entries_resolved_total"

let make index query =
  let resolved =
    Trace.with_span "eval_ctx.resolve" (fun () ->
        List.map (fun k -> k, Inverted_index.lookup index k) (Query.keywords query))
  in
  Registry.add lists_resolved_total (List.length resolved);
  Registry.add entries_resolved_total
    (List.fold_left (fun acc (_, arr) -> acc + Array.length arr) 0 resolved);
  if Log.enabled Log.Debug || Capture.capturing () then begin
    let counts = List.map (fun (k, arr) -> k, Jsonv.Int (Array.length arr)) resolved in
    Log.debug "eval_ctx.resolve" counts;
    Capture.record "postings" (fun () -> Jsonv.Obj counts)
  end;
  { index; query; resolved }

let index t = t.index

let query t = t.query

let document t = Inverted_index.document t.index

let postings t keyword =
  match List.assoc_opt keyword t.resolved with
  | Some arr -> arr
  | None -> Inverted_index.lookup t.index keyword

let lists t = List.map snd t.resolved

let matches_under t node =
  let doc = document t in
  List.concat_map (fun (_, arr) -> Postings.in_subtree doc arr node) t.resolved

let restrict t result keyword = Result_tree.restrict_matches result (postings t keyword)
