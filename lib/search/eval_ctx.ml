module Document = Extract_store.Document
module Postings = Extract_store.Postings
module Inverted_index = Extract_store.Inverted_index

type t = {
  index : Inverted_index.t;
  query : Query.t;
  resolved : (string * Document.node array) list; (* query-keyword order *)
}

let make index query =
  {
    index;
    query;
    resolved =
      List.map (fun k -> k, Inverted_index.lookup index k) (Query.keywords query);
  }

let index t = t.index

let query t = t.query

let document t = Inverted_index.document t.index

let postings t keyword =
  match List.assoc_opt keyword t.resolved with
  | Some arr -> arr
  | None -> Inverted_index.lookup t.index keyword

let lists t = List.map snd t.resolved

let matches_under t node =
  let doc = document t in
  List.concat_map (fun (_, arr) -> Postings.in_subtree doc arr node) t.resolved

let restrict t result keyword = Result_tree.restrict_matches result (postings t keyword)
