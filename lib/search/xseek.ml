module Document = Extract_store.Document
module Node_kind = Extract_store.Node_kind
module Inverted_index = Extract_store.Inverted_index

let return_node kinds node =
  let doc = Node_kind.document kinds in
  let rec up n =
    if Document.is_element doc n && Node_kind.is_entity kinds n then Some n
    else
      match Document.parent doc n with
      | Some p -> up p
      | None -> None
  in
  match up node with
  | Some e -> e
  | None -> node

let dedupe_outermost doc nodes =
  (* Input in document order; drop nodes nested inside an earlier one. *)
  let rec loop acc = function
    | [] -> List.rev acc
    | n :: rest -> begin
      match acc with
      | prev :: _ when Document.is_ancestor_or_self doc ~anc:prev ~desc:n -> loop acc rest
      | _ -> loop (n :: acc) rest
    end
  in
  loop [] (List.sort_uniq Int.compare nodes)

let roots kinds lists =
  let doc = Node_kind.document kinds in
  let slcas = Slca.compute doc lists in
  dedupe_outermost doc (List.map (return_node kinds) slcas)

let compute index kinds query =
  let doc = Inverted_index.document index in
  let lists = List.map (Inverted_index.lookup index) (Query.keywords query) in
  List.map (Result_tree.full doc) (roots kinds lists)
