(** XSeek-style result construction (Liu & Chen, SIGMOD 2007 — reference
    [6] of the paper, the engine the eXtract demo runs on).

    XSeek identifies the meaningful {e return node} for each match cluster
    instead of returning the bare LCA: the nearest entity ancestor-or-self
    of the smallest LCA. The query result handed to snippet generation is
    the full subtree of that return node — this is what the paper's
    Figure 1 depicts (the whole [retailer] subtree). *)

module Document = Extract_store.Document

val return_node :
  Extract_store.Node_kind.t -> Document.node -> Document.node
(** Nearest entity ancestor-or-self; the node itself when no ancestor (or
    self) is an entity. *)

val roots : Extract_store.Node_kind.t -> Document.node array list -> Document.node list
(** Return nodes for pre-resolved posting lists: SLCAs, mapped to return
    nodes, deduplicated (several SLCAs may share an entity), nested return
    nodes merged into the outermost. Document order, no subtrees
    materialized — the engine expands only as many as the caller's limit
    asks for. *)

val compute :
  Extract_store.Inverted_index.t ->
  Extract_store.Node_kind.t ->
  Query.t ->
  Result_tree.t list
(** Run the query: {!roots} of the keywords' posting lists, each expanded
    to its full subtree. Document order. *)
