module Document = Extract_store.Document
module Postings = Extract_store.Postings

(* Binary searches over sorted posting arrays live in the shared
   Extract_store.Postings; re-exported here for the test suite. *)

let closest_in = Postings.closest_in

let pred_of = Postings.pred_of

let succ_of = Postings.succ_of

(* Deepest ancestor-or-self of [u] whose subtree intersects [arr]:
   if a match lies inside u's interval it is u itself; otherwise the deeper
   of the LCAs with the closest match on either side. *)
let extend doc arr u =
  let last = Document.subtree_last doc u in
  match closest_in arr ~lo:u ~hi:last with
  | Some _ -> u
  | None ->
    let left = pred_of arr u and right = succ_of arr last in
    let cand_depth = function
      | None -> None
      | Some m ->
        let a = Document.lca doc u m in
        Some (Document.depth doc a, a)
    in
    (match cand_depth left, cand_depth right with
    | None, None -> assert false (* arr is non-empty *)
    | Some (_, a), None | None, Some (_, a) -> a
    | Some (dl, al), Some (dr, ar) -> if dl >= dr then al else ar)

let compute doc lists =
  match lists with
  | [] -> []
  | _ when List.exists (fun l -> Array.length l = 0) lists -> []
  | _ ->
    let sorted = List.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) lists in
    (match sorted with
    | [] -> []
    | smallest :: others ->
      let candidates =
        Array.to_list smallest
        |> List.map (fun v -> List.fold_left (fun u arr -> extend doc arr u) v others)
      in
      let arr = List.sort_uniq Int.compare candidates |> Array.of_list in
      (* Keep candidates with no candidate proper descendant: in document
         order, u has a covering descendant among candidates iff the next
         distinct candidate lies inside u's interval. *)
      let n = Array.length arr in
      let keep = ref [] in
      for i = n - 1 downto 0 do
        let u = arr.(i) in
        let has_desc = i + 1 < n && arr.(i + 1) <= Document.subtree_last doc u in
        if not has_desc then keep := u :: !keep
      done;
      !keep)
