module Document = Extract_store.Document
module Inverted_index = Extract_store.Inverted_index

(* Nodes strictly between [n] (exclusive) and its ancestor [stop]
   (exclusive), i.e. the interior of the upward path. *)
let interior_path doc ~from ~stop =
  let rec up acc n =
    match Document.parent doc n with
    | Some p when p <> stop -> up (p :: acc) p
    | Some _ | None -> acc
  in
  up [] from

let interconnected doc a b =
  if a = b then true
  else begin
    let l = Document.lca doc a b in
    let interior =
      (if a = l then [] else interior_path doc ~from:a ~stop:l)
      @ (if b = l then [] else interior_path doc ~from:b ~stop:l)
      @ (if l = a || l = b then [] else [ l ])
    in
    (* two distinct interior nodes with the same tag break the relation;
       the endpoints may share a tag with each other but not with an
       interior node of the other branch — the published relation only
       excludes the pair (a, b) itself, so endpoint tags are also checked
       against the interior *)
    let tags = List.map (Document.tag_id doc) interior in
    let seen = Hashtbl.create 8 in
    let distinct_dup =
      List.exists
        (fun t ->
          if Hashtbl.mem seen t then true
          else begin
            Hashtbl.add seen t ();
            false
          end)
        tags
    in
    let endpoint_clash =
      List.exists
        (fun t ->
          (Document.is_element doc a && Document.tag_id doc a = t)
          || (Document.is_element doc b && Document.tag_id doc b = t))
        tags
    in
    not (distinct_dup || endpoint_clash)
  end

(* Witness match per keyword under [root]: the shallowest match (closest
   to the root), ties broken by document order. Only the matches under
   [root] are considered — the posting list is binary-searched to the
   subtree interval instead of filtered linearly. *)
let witness_under doc root arr =
  Extract_store.Postings.in_subtree doc arr root
  |> List.fold_left
       (fun best m ->
         match best with
         | None -> Some m
         | Some b ->
           if Document.depth doc m < Document.depth doc b then Some m else best)
       None

let compute_lists ?limit doc lists =
  let k = List.length lists in
  let accepted = ref 0 in
  let full = match limit with None -> max_int | Some l -> max l 0 in
  let rec loop acc = function
    | [] -> List.rev acc
    | _ when !accepted >= full -> List.rev acc
    | root :: rest ->
      let witnesses = List.filter_map (witness_under doc root) lists in
      let keep =
        List.length witnesses = k
        &&
        let rec pairwise = function
          | [] -> true
          | w :: tail ->
            List.for_all (fun w' -> interconnected doc w w') tail && pairwise tail
        in
        pairwise witnesses
      in
      if keep then begin
        incr accepted;
        loop (Result_tree.match_paths doc ~root ~matches:witnesses :: acc) rest
      end
      else loop acc rest
  in
  loop [] (Slca.compute doc lists)

let compute index query =
  let doc = Inverted_index.document index in
  let lists = List.map (Inverted_index.lookup index) (Query.keywords query) in
  compute_lists doc lists
