module Inverted_index = Extract_store.Inverted_index

type semantics = Slca | Elca | Xseek | Xsearch

type shape = Full_subtree | Match_paths

let take limit l =
  match limit with
  | None -> l
  | Some k -> List.filteri (fun i _ -> i < k) l

let shape_root ctx shape doc root =
  match shape with
  | Full_subtree -> Result_tree.full doc root
  | Match_paths ->
    Result_tree.match_paths doc ~root ~matches:(Eval_ctx.matches_under ctx root)

(* Result roots are computed for the whole query (the SLCA/ELCA/return-node
   sets are global properties), but only the first [limit] roots are
   materialized as result trees — the expensive part for full-subtree
   shapes. *)
let run_ctx ?(semantics = Xseek) ?(shape = Full_subtree) ?limit ctx kinds =
  let doc = Eval_ctx.document ctx in
  if Query.is_empty (Eval_ctx.query ctx) then []
  else
    match semantics with
    | Xseek ->
      Xseek.roots kinds (Eval_ctx.lists ctx)
      |> take limit
      |> List.map (shape_root ctx shape doc)
    | Xsearch -> begin
      (* XSearch answers are inherently match-path trees; the full shape
         expands each answer root to its subtree. *)
      let path_results = Xsearch.compute_lists ?limit doc (Eval_ctx.lists ctx) in
      match shape with
      | Match_paths -> path_results
      | Full_subtree ->
        List.map (fun r -> Result_tree.full doc (Result_tree.root r)) path_results
    end
    | Slca | Elca ->
      let lists = Eval_ctx.lists ctx in
      let roots =
        match semantics with
        | Slca -> Slca.compute doc lists
        | Elca -> Elca.compute doc lists
        | Xseek | Xsearch -> assert false
      in
      List.map (shape_root ctx shape doc) (take limit roots)

let run ?semantics ?shape ?limit ?mask index kinds query =
  run_ctx ?semantics ?shape ?limit (Eval_ctx.make ?mask index query) kinds

let semantics_of_string = function
  | "slca" -> Some Slca
  | "elca" -> Some Elca
  | "xseek" -> Some Xseek
  | "xsearch" -> Some Xsearch
  | _ -> None

let string_of_semantics = function
  | Slca -> "slca"
  | Elca -> "elca"
  | Xseek -> "xseek"
  | Xsearch -> "xsearch"

let all_semantics = [ Slca; Elca; Xseek; Xsearch ]

(* K-way merge of per-source scored result lists (each already sorted
   best-first) into one globally ranked list. Ties break toward the lower
   source index, and order within a source is preserved — so the merge is
   deterministic however the sources were produced (sequentially or one
   domain per shard). *)
let merge_scored ?limit (sources : (float * 'a) list array) : (float * (int * 'a)) list =
  let heads = Array.map (fun l -> ref l) sources in
  let pick () =
    let best = ref None in
    Array.iteri
      (fun i l ->
        match !l with
        | [] -> ()
        | (score, _) :: _ -> (
          match !best with
          | Some (best_score, _) when best_score >= score -> ()
          | _ -> best := Some (score, i)))
      heads;
    !best
  in
  let budget = match limit with Some k -> k | None -> max_int in
  let rec drain acc n =
    if n >= budget then List.rev acc
    else
      match pick () with
      | None -> List.rev acc
      | Some (_, i) -> (
        match !(heads.(i)) with
        | [] -> assert false
        | (score, x) :: rest ->
          heads.(i) := rest;
          drain ((score, (i, x)) :: acc) (n + 1))
  in
  drain [] 0

(* Conjunctive semantics returns nothing when any keyword is missing; the
   demo UI wants "did you mean fewer words". Drop the rarest keyword (the
   most likely typo or over-specification) until something matches. *)
let run_relaxed ?semantics ?shape ?limit ?mask index kinds query =
  let rec attempt query dropped =
    match run ?semantics ?shape ?limit ?mask index kinds query with
    | [] when Query.size query > 1 ->
      let keywords = Query.keywords query in
      let rarest =
        List.fold_left
          (fun best k ->
            let df = Array.length (Inverted_index.lookup index k) in
            match best with
            | Some (_, best_df) when best_df <= df -> best
            | _ -> Some (k, df))
          None keywords
      in
      (match rarest with
      | Some (k, _) ->
        let rest = List.filter (fun k2 -> k2 <> k) keywords in
        attempt (Query.of_keywords rest) (k :: dropped)
      | None -> [], List.rev dropped)
    | results -> results, List.rev dropped
  in
  attempt query []
