(** Query results as pruned views over the document arena.

    A query result is a tree: a root node plus a subset of its descendants
    (closed under ancestors within the result). Snippet generation consumes
    exactly this structure — the paper's pipeline takes "the query results"
    produced by any XML search engine as input.

    Two shapes are built by the engines: [full] results (the entire subtree
    of the result root — what XSeek returns when the search target is an
    entity, and what the paper's Figure 1 shows) and [match-paths] results
    (root-to-match paths only, a leaner presentation used for
    comparison). *)

module Document = Extract_store.Document

type t

val full : Document.t -> Document.node -> t
(** The whole subtree rooted at the node. *)

val of_members : Document.t -> root:Document.node -> Document.node list -> t
(** A pruned view: [members] may omit the root and ancestors; the set is
    closed upward to the root automatically. All members must lie in the
    root's subtree. @raise Invalid_argument otherwise. *)

val match_paths : Document.t -> root:Document.node -> matches:Document.node list -> t
(** Root-to-match paths only. *)

val document : t -> Document.t

val root : t -> Document.node

val mem : t -> Document.node -> bool

val size : t -> int
(** Number of member nodes (elements and text). *)

val element_size : t -> int

val edge_count : t -> int
(** Edges between member element nodes. *)

val members : t -> Document.node array
(** Sorted (document order). Do not mutate. *)

val children : t -> Document.node -> Document.node list
(** Member children of a member node. *)

val iter_elements : t -> (Document.node -> unit) -> unit
(** Member element nodes in document order. *)

val fold_elements : t -> ('a -> Document.node -> 'a) -> 'a -> 'a

val parent_in : t -> Document.node -> Document.node option
(** Parent within the result ([None] for the result root). Because member
    sets are ancestor-closed, this is the document parent for any member
    except the root. *)

val restrict_matches : t -> Document.node array -> Document.node list
(** Posting-list entries that are members, in document order. The sorted
    list is binary-searched to the root's subtree interval first, so the
    cost follows the matches under the root, not the posting list. *)

val text_of : t -> string
(** All member text, document order, space-joined (for the text-snippet
    baseline). *)

val to_pretty : t -> Extract_util.Pretty.tree
(** Render (element tags, attribute values inline). *)

val to_xml : t -> Extract_xml.Types.t
