module Document = Extract_store.Document
module Inverted_index = Extract_store.Inverted_index

type t = {
  index : Inverted_index.t;
  decay : float;
}

let make ?(decay = 0.8) index =
  if decay <= 0.0 || decay > 1.0 then invalid_arg "Ranker.make: decay must be in (0, 1]";
  { index; decay }

let idf t keyword =
  let doc = Inverted_index.document t.index in
  let n = float_of_int (Document.element_count doc) in
  let df = float_of_int (Array.length (Inverted_index.lookup t.index keyword)) in
  log (1.0 +. (n /. (1.0 +. df)))

let score t query result =
  let doc = Result_tree.document result in
  let root_depth = Document.depth doc (Result_tree.root result) in
  let per_keyword k =
    let matches = Result_tree.restrict_matches result (Inverted_index.lookup t.index k) in
    match matches with
    | [] -> 0.0
    | _ ->
      let best_decay =
        List.fold_left
          (fun best m ->
            let dist = Document.depth doc m - root_depth in
            max best (t.decay ** float_of_int dist))
          0.0 matches
      in
      let tf = log (1.0 +. float_of_int (List.length matches)) in
      idf t k *. best_decay *. (1.0 +. tf)
  in
  let keyword_score =
    List.fold_left (fun acc k -> acc +. per_keyword k) 0.0 (Query.keywords query)
  in
  let specificity = 1.0 /. log (2.0 +. float_of_int (Result_tree.element_size result)) in
  keyword_score *. (1.0 +. specificity)

let rank t query results =
  List.map (fun r -> r, score t query r) results
  |> List.stable_sort (fun (_, a) (_, b) -> Float.compare b a)
