(** XSearch-style interconnection semantics (Cohen et al., VLDB 2003 — the
    paper's reference [1]).

    XSearch deems a set of match nodes meaningfully related when the tree
    connecting them is {e interconnected}: it contains no two distinct
    nodes with the same tag, unless they are two of the match nodes
    themselves. The intuition: a path crossing two different [author]
    elements relates {e different} authors and should not form one answer.

    This implementation starts from the SLCA candidates and keeps those
    whose witness matches (one per keyword, the closest to the root) are
    pairwise interconnected; the answer tree is the match-path tree. This
    is the restriction of XSearch to its conjunctive ("all keywords")
    mode. *)

module Document = Extract_store.Document

val interconnected : Document.t -> Document.node -> Document.node -> bool
(** Is the path between the two nodes (through their LCA) free of two
    distinct equal-tag interior nodes? The end nodes themselves may share
    a tag. *)

val compute_lists :
  ?limit:int -> Document.t -> Document.node array list -> Result_tree.t list
(** Interconnected answers for pre-resolved posting lists, one per
    surviving SLCA, as match-path result trees in document order. With
    [limit], stops materializing answers once that many have been
    accepted. *)

val compute :
  Extract_store.Inverted_index.t -> Query.t -> Result_tree.t list
(** [compute_lists] over the keywords' posting lists. *)
