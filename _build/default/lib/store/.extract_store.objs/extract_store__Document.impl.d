lib/store/document.ml: Array Buffer Bytes Extract_util Extract_xml Format List Option Printf
