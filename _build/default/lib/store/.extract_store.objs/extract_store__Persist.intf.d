lib/store/persist.mli: Document Inverted_index
