lib/store/dewey.ml: Array Document Format
