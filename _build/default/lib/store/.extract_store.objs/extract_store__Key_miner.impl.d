lib/store/key_miner.ml: Dataguide Document Hashtbl List Node_kind Option String
