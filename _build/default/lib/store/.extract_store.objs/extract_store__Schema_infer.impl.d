lib/store/schema_infer.ml: Array Dataguide Document Extract_xml Hashtbl List Option
