lib/store/codec.mli:
