lib/store/tokenizer.ml: Buffer Char List String
