lib/store/node_kind.mli: Dataguide Document Extract_xml Format Schema_infer
