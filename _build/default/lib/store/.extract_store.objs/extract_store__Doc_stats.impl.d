lib/store/doc_stats.ml: Dataguide Document Extract_util Format List Node_kind
