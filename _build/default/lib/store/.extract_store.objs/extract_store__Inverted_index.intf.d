lib/store/inverted_index.mli: Document
