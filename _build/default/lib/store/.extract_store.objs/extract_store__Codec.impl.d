lib/store/codec.ml: Buffer Bytes Char String
