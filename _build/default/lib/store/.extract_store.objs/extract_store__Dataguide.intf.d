lib/store/dataguide.mli: Document
