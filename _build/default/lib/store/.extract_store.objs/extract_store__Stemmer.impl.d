lib/store/stemmer.ml: Fun Hashtbl List String
