lib/store/tokenizer.mli:
