lib/store/doc_stats.mli: Document Format Node_kind
