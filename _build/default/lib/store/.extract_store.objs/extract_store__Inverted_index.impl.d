lib/store/inverted_index.ml: Array Document Extract_util Hashtbl List String Tokenizer
