lib/store/schema_infer.mli: Dataguide Extract_xml
