lib/store/dewey.mli: Document Format
