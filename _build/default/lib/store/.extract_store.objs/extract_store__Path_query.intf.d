lib/store/path_query.mli: Document
