lib/store/key_miner.mli: Dataguide Document Node_kind
