lib/store/node_kind.ml: Array Dataguide Document Format List Schema_infer String
