lib/store/document.mli: Bytes Extract_util Extract_xml Format
