lib/store/stemmer.mli:
