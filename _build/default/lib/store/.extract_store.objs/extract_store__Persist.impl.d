lib/store/persist.ml: Array Bytes Codec Document Inverted_index Printf
