lib/store/path_query.ml: Document List Printf String
