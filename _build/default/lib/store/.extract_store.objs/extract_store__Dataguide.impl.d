lib/store/dataguide.ml: Array Document Extract_util Fun Hashtbl List Printf String
