(** A small XPath-like selector over document arenas.

    Supports the navigational core used by the CLI's [view] command and by
    tests to address nodes in fixtures:

    - [/a/b/c] — child steps from the root;
    - [//c] and [/a//c] — descendant-or-self steps;
    - [*] — any element tag;
    - [step\[3\]] — 1-based positional predicate among the step's matches
      under one parent;
    - [step\[child="v"\]] — keep elements having a child element [child]
      whose trimmed text equals [v].

    No reverse axes, no functions, no attributes (XML attributes are
    ordinary child elements in the arena — address them by name). *)

type t

val parse : string -> t
(** @raise Invalid_argument on syntax errors, with a description. *)

val to_string : t -> string
(** Canonical rendition of the parsed path. *)

val select : Document.t -> t -> Document.node list
(** Matching element nodes, document order, without duplicates. *)

val select_string : Document.t -> string -> Document.node list
(** [select] ∘ [parse]. *)

val first : Document.t -> string -> Document.node option
