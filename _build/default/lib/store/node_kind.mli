(** Entity / attribute / connection classification — the paper's Data
    Analyzer (Fig. 4), following Liu & Chen [6] as summarized in §2.1:

    - a node is an {b entity} if it corresponds to a *-node (see
      {!Schema_infer});
    - a node that is not a *-node and only has one child which is a text
      value is, together with that child, an {b attribute};
    - every other node is a {b connection} node.

    Classification is per dataguide path. We generalize the attribute rule
    to paths: a non-starred path is an attribute when none of its instances
    ever contains an element child (so its content is a single text value,
    possibly empty). *)

type kind =
  | Entity
  | Attribute
  | Connection

type t

val classify : ?dtd:Extract_xml.Dtd.t -> Dataguide.t -> t

val of_document : Document.t -> t
(** Convenience: build the dataguide and classify in one step. *)

val dataguide : t -> Dataguide.t

val document : t -> Document.t

val schema : t -> Schema_infer.t

val kind_of_path : t -> Dataguide.path -> kind

val kind_of_node : t -> Document.node -> kind
(** @raise Invalid_argument for text nodes. *)

val is_entity : t -> Document.node -> bool

val is_attribute : t -> Document.node -> bool

val entity_paths : t -> Dataguide.path list

val attribute_paths : t -> Dataguide.path list

val entity_of_attribute : t -> Dataguide.path -> Dataguide.path option
(** The nearest entity ancestor path of an attribute path — the entity [e]
    of the paper's feature triplet [(e, a, v)]. [None] when no ancestor
    path is an entity (attributes of the root, for instance). *)

val nearest_entity_ancestor : t -> Document.node -> Document.node option
(** Nearest proper ancestor node that is an entity. *)

val attribute_value : t -> Document.node -> string
(** The (trimmed) text value of an attribute node instance. *)

val string_of_kind : kind -> string

val pp_kind : Format.formatter -> kind -> unit
