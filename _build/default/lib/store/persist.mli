(** Binary persistence for document arenas.

    The demo runs as a server: documents are analyzed and indexed once,
    then queried many times. Persisting the flattened arena lets a process
    restart skip XML parsing entirely (the benchmark's E7 companion
    measures the speedup). The format is versioned and self-describing
    (magic ["XTRARENA"], format version, then {!Codec} sections); the
    inverted index and classification are cheap to rebuild and are not
    stored.

    Files are not portable across architectures with different [int]
    widths (varints cap at 63 bits — every platform OCaml 5 supports). *)

val magic : string

val version : int

val encode : Document.t -> string
(** Serialize the arena to a byte string. *)

val decode : string -> Document.t
(** @raise Codec.Corrupt on malformed input, wrong magic or unsupported
    version. *)

val save : string -> Document.t -> unit
(** Write to a file. @raise Sys_error on IO failure. *)

val load : string -> Document.t
(** Read from a file.
    @raise Codec.Corrupt or [Sys_error] as appropriate. *)

(** {1 Index persistence}

    Posting lists are ascending node ids; they are stored gap-encoded
    (first id, then deltas) as varints — the classic inverted-file
    compression. An index file only makes sense next to the arena it was
    built from: [load_index] takes that document and the caller is
    responsible for pairing the right files (a mismatched pair yields
    nonsense postings, though never a crash — lookups are bounds-checked
    by the arena). *)

val index_magic : string

val encode_index : Inverted_index.t -> string

val decode_index : doc:Document.t -> string -> Inverted_index.t
(** @raise Codec.Corrupt on malformed input. *)

val save_index : string -> Inverted_index.t -> unit

val load_index : string -> doc:Document.t -> Inverted_index.t

(** {1 Bundles}

    An arena and its index in one file — what the demo server persists per
    data set. *)

val bundle_magic : string

val encode_bundle : Document.t -> Inverted_index.t -> string

val decode_bundle : string -> Document.t * Inverted_index.t
(** @raise Codec.Corrupt on malformed input. *)

val save_bundle : string -> Document.t -> Inverted_index.t -> unit

val load_bundle : string -> Document.t * Inverted_index.t

val sniff_magic : string -> string option
(** The leading magic of any Persist-produced byte string ({!magic},
    {!index_magic} or {!bundle_magic}), or [None] / an arbitrary string
    for foreign data — used to dispatch file kinds. *)
