type t = {
  guide : Dataguide.t;
  starred : bool array;
  sources : bool array; (* true when the DTD decided *)
}

let infer ?dtd guide =
  let doc = Dataguide.document guide in
  let dtd =
    match dtd with
    | Some _ -> dtd
    | None -> Document.dtd doc
  in
  let n_paths = Dataguide.path_count guide in
  let starred = Array.make n_paths false in
  let sources = Array.make n_paths false in
  (* Data evidence: a path is starred when some single parent has >= 2
     children on it. Count children per path for every element node. *)
  let seen : (Dataguide.path, int) Hashtbl.t = Hashtbl.create 16 in
  for node = 0 to Document.node_count doc - 1 do
    if Document.is_element doc node then begin
      Hashtbl.reset seen;
      Document.iter_children doc node (fun c ->
          if Document.is_element doc c then begin
            let p = Dataguide.path_of_node guide c in
            let count = 1 + Option.value ~default:0 (Hashtbl.find_opt seen p) in
            Hashtbl.replace seen p count;
            if count >= 2 then starred.(p) <- true
          end)
    end
  done;
  (* DTD evidence overrides data evidence where the parent is declared. *)
  (match dtd with
  | None -> ()
  | Some dtd ->
    for p = 0 to n_paths - 1 do
      match Dataguide.parent_path guide p with
      | None -> ()
      | Some parent ->
        let parent_tag = Dataguide.path_tag_name guide parent in
        let child_tag = Dataguide.path_tag_name guide p in
        (match Extract_xml.Dtd.is_star_child dtd ~parent:parent_tag ~child:child_tag with
        | Some b ->
          starred.(p) <- b;
          sources.(p) <- true
        | None -> ())
    done);
  { guide; starred; sources }

let dataguide t = t.guide

let is_starred t path = t.starred.(path)

let starred_paths t =
  List.filter (fun p -> t.starred.(p)) (Dataguide.paths t.guide)

let source t path = if t.sources.(path) then `Dtd else `Data
