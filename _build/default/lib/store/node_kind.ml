type kind = Entity | Attribute | Connection

type t = {
  guide : Dataguide.t;
  schema : Schema_infer.t;
  kinds : kind array; (* per path *)
}

let trim = String.trim

let classify ?dtd guide =
  let doc = Dataguide.document guide in
  let schema = Schema_infer.infer ?dtd guide in
  let n_paths = Dataguide.path_count guide in
  (* A path can be an attribute only if no instance has an element child. *)
  let has_element_child = Array.make n_paths false in
  for node = 0 to Document.node_count doc - 1 do
    if Document.is_element doc node then begin
      match Document.parent doc node with
      | Some p when Document.is_element doc p ->
        has_element_child.(Dataguide.path_of_node guide p) <- true
      | _ -> ()
    end
  done;
  let kinds =
    Array.init n_paths (fun path ->
        if Schema_infer.is_starred schema path then Entity
        else if not has_element_child.(path) && Dataguide.parent_path guide path <> None
        then Attribute
        else Connection)
  in
  { guide; schema; kinds }

let of_document doc = classify (Dataguide.build doc)

let dataguide t = t.guide

let document t = Dataguide.document t.guide

let schema t = t.schema

let kind_of_path t path = t.kinds.(path)

let kind_of_node t node = t.kinds.(Dataguide.path_of_node t.guide node)

let is_entity t node = kind_of_node t node = Entity

let is_attribute t node = kind_of_node t node = Attribute

let filter_paths t k =
  List.filter (fun p -> t.kinds.(p) = k) (Dataguide.paths t.guide)

let entity_paths t = filter_paths t Entity

let attribute_paths t = filter_paths t Attribute

let entity_of_attribute t path =
  if t.kinds.(path) <> Attribute then None
  else begin
    let rec up p =
      match Dataguide.parent_path t.guide p with
      | None -> None
      | Some parent -> if t.kinds.(parent) = Entity then Some parent else up parent
    in
    up path
  end

let nearest_entity_ancestor t node =
  let doc = document t in
  let rec up n =
    match Document.parent doc n with
    | None -> None
    | Some p ->
      if Document.is_element doc p && kind_of_node t p = Entity then Some p else up p
  in
  up node

let attribute_value t node = trim (Document.immediate_text (document t) node)

let string_of_kind = function
  | Entity -> "entity"
  | Attribute -> "attribute"
  | Connection -> "connection"

let pp_kind ppf k = Format.pp_print_string ppf (string_of_kind k)
