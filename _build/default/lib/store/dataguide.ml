module Arraylist = Extract_util.Arraylist

type path = int

type t = {
  doc : Document.t;
  node_path : int array;              (* per node; -1 for text nodes *)
  path_parent : int Arraylist.t;      (* -1 for the root path *)
  path_tag : int Arraylist.t;
  path_depth : int Arraylist.t;
  counts : int Arraylist.t;
  index : (int * int, path) Hashtbl.t; (* (parent path, tag id) -> path *)
  members : Document.node Arraylist.t Arraylist.t; (* path -> nodes, doc order *)
}

let build doc =
  let n = Document.node_count doc in
  let node_path = Array.make n (-1) in
  let path_parent = Arraylist.create () in
  let path_tag = Arraylist.create () in
  let path_depth = Arraylist.create () in
  let counts = Arraylist.create () in
  let members = Arraylist.create () in
  let index = Hashtbl.create 64 in
  let fresh ~parent ~tag ~depth =
    let id = Arraylist.length path_tag in
    Arraylist.push path_parent parent;
    Arraylist.push path_tag tag;
    Arraylist.push path_depth depth;
    Arraylist.push counts 0;
    Arraylist.push members (Arraylist.create ());
    id
  in
  for node = 0 to n - 1 do
    if Document.is_element doc node then begin
      let tag = Document.tag_id doc node in
      let parent_path =
        match Document.parent doc node with
        | None -> -1
        | Some p -> node_path.(p)
      in
      let path =
        match Hashtbl.find_opt index (parent_path, tag) with
        | Some id -> id
        | None ->
          let id = fresh ~parent:parent_path ~tag ~depth:(Document.depth doc node) in
          Hashtbl.add index (parent_path, tag) id;
          id
      in
      node_path.(node) <- path;
      Arraylist.set counts path (Arraylist.get counts path + 1);
      Arraylist.push (Arraylist.get members path) node
    end
  done;
  { doc; node_path; path_parent; path_tag; path_depth; counts; index; members }

let document t = t.doc

let path_count t = Arraylist.length t.path_tag

let path_of_node t node =
  let p = t.node_path.(node) in
  if p < 0 then
    invalid_arg (Printf.sprintf "Dataguide.path_of_node: node %d is a text node" node);
  p

let parent_path t path =
  let p = Arraylist.get t.path_parent path in
  if p < 0 then None else Some p

let path_tag t path = Arraylist.get t.path_tag path

let path_tag_name t path =
  Extract_util.Interner.name (Document.tag_interner t.doc) (path_tag t path)

let path_depth t path = Arraylist.get t.path_depth path

let instance_count t path = Arraylist.get t.counts path

let path_string t path =
  let rec up acc path =
    let acc = path_tag_name t path :: acc in
    match parent_path t path with
    | None -> acc
    | Some p -> up acc p
  in
  "/" ^ String.concat "/" (up [] path)

let find_path t tags =
  let rec walk current = function
    | [] -> current
    | tag :: rest -> begin
      match Document.tag_of_name t.doc tag with
      | None -> None
      | Some tag_id -> begin
        let parent = match current with None -> -1 | Some p -> p in
        match Hashtbl.find_opt t.index (parent, tag_id) with
        | Some p -> walk (Some p) rest
        | None -> None
      end
    end
  in
  match tags with
  | [] -> None
  | _ -> walk None tags

let paths t = List.init (path_count t) Fun.id

let iter_instances t path f = Arraylist.iter f (Arraylist.get t.members path)

let instances t path = Arraylist.to_list (Arraylist.get t.members path)
