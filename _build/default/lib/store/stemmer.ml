let vowels = [ 'a'; 'e'; 'i'; 'o'; 'u' ]

let is_vowel word i =
  let c = word.[i] in
  List.mem c vowels || (c = 'y' && i > 0 && not (List.mem word.[i - 1] vowels))

(* Porter's "measure": the number of vowel-consonant sequences. *)
let measure word =
  let n = String.length word in
  let m = ref 0 in
  let in_vowel_run = ref false in
  for i = 0 to n - 1 do
    if is_vowel word i then in_vowel_run := true
    else if !in_vowel_run then begin
      incr m;
      in_vowel_run := false
    end
  done;
  !m

let contains_vowel word = String.length word > 0 && List.exists (fun i -> is_vowel word i) (List.init (String.length word) Fun.id)

let ends_with word suffix =
  let lw = String.length word and ls = String.length suffix in
  lw >= ls && String.sub word (lw - ls) ls = suffix

let chop word n = String.sub word 0 (String.length word - n)

let replace_suffix word suffix replacement =
  chop word (String.length suffix) ^ replacement

(* try rules in order; a rule fires when the suffix matches and the guard
   holds on the stem *)
let try_rules word rules =
  let rec loop = function
    | [] -> None
    | (suffix, replacement, guard) :: rest ->
      if ends_with word suffix then begin
        let stem = chop word (String.length suffix) in
        if guard stem then Some (stem ^ replacement) else loop rest
      end
      else loop rest
  in
  loop rules

let always _ = true

let step_1a word =
  match
    try_rules word
      [
        "sses", "ss", always;
        "ies", "i", always;
        "ss", "ss", always;
        "s", "", (fun stem -> String.length stem > 1);
      ]
  with
  | Some w -> w
  | None -> word

let double_consonant word =
  let n = String.length word in
  n >= 2 && word.[n - 1] = word.[n - 2] && not (is_vowel word (n - 1))

let step_1b word =
  match
    try_rules word [ "eed", "ee", (fun stem -> measure stem > 0) ]
  with
  | Some w -> w
  | None -> begin
    let stripped =
      try_rules word
        [ "ing", "", contains_vowel; "ed", "", contains_vowel ]
    in
    match stripped with
    | None -> word
    | Some w ->
      if ends_with w "at" || ends_with w "bl" || ends_with w "iz" then w ^ "e"
      else if double_consonant w && not (ends_with w "l" || ends_with w "s" || ends_with w "z")
      then chop w 1
      else w
  end

let step_1c word =
  if ends_with word "y" && contains_vowel (chop word 1) then replace_suffix word "y" "i"
  else word

let m_positive stem = measure stem > 0

let step_2_3 word =
  match
    try_rules word
      [
        "ization", "ize", m_positive;
        "ational", "ate", m_positive;
        "fulness", "ful", m_positive;
        "ousness", "ous", m_positive;
        "iveness", "ive", m_positive;
        "tional", "tion", m_positive;
        "biliti", "ble", m_positive;
        "entli", "ent", m_positive;
        "ousli", "ous", m_positive;
        "alism", "al", m_positive;
        "ation", "ate", m_positive;
        "aliti", "al", m_positive;
        "iviti", "ive", m_positive;
        "ement", "", (fun stem -> measure stem > 1);
        "alli", "al", m_positive;
        "enci", "ence", m_positive;
        "anci", "ance", m_positive;
        "izer", "ize", m_positive;
        "ator", "ate", m_positive;
        "ical", "ic", m_positive;
        "ness", "", m_positive;
        "ful", "", m_positive;
        "eli", "e", m_positive;
      ]
  with
  | Some w -> w
  | None -> word

let step_5 word =
  let word =
    if ends_with word "e" && measure (chop word 1) > 1 then chop word 1 else word
  in
  if double_consonant word && ends_with word "l" && measure word > 1 then chop word 1
  else word

let stem token =
  if String.length token < 3 then token
  else
    (* step_2_3 runs twice so chained derivational suffixes collapse
       (hopefulness -> hopeful -> hope), mirroring Porter's separate
       steps 2 and 3 *)
    token |> step_1a |> step_1b |> step_1c |> step_2_3 |> step_2_3 |> step_5

let stopwords =
  let table = Hashtbl.create 64 in
  List.iter
    (fun w -> Hashtbl.replace table w ())
    [
      "a"; "an"; "the"; "and"; "or"; "but"; "of"; "in"; "on"; "at"; "to"; "for"; "by";
      "with"; "from"; "as"; "is"; "are"; "was"; "were"; "be"; "been"; "being"; "it";
      "its"; "this"; "that"; "these"; "those"; "he"; "she"; "they"; "them"; "his";
      "her"; "their"; "we"; "you"; "i"; "not"; "no"; "so"; "if"; "then"; "than";
      "there"; "here"; "into"; "over"; "under"; "about"; "up"; "down"; "out"; "off";
      "own"; "same"; "too"; "very"; "can"; "will"; "just"; "do"; "does"; "did"; "has";
      "have"; "had"; "what"; "which"; "who"; "whom"; "when"; "where"; "why"; "how";
      "all"; "any"; "both"; "each"; "few"; "more"; "most"; "other"; "some"; "such";
    ];
  table

let is_stopword w = Hashtbl.mem stopwords w

let normalize_tokens tokens =
  tokens |> List.filter (fun t -> not (is_stopword t)) |> List.map stem
