let magic = "XTRARENA"

let version = 1

let write_int_array w arr =
  Codec.write_varint w (Array.length arr);
  Array.iter (Codec.write_int w) arr

let read_int_array r =
  let n = Codec.read_varint r in
  Array.init n (fun _ -> Codec.read_int r)

let write_string_array w arr =
  Codec.write_varint w (Array.length arr);
  Array.iter (Codec.write_string w) arr

let read_string_array r =
  let n = Codec.read_varint r in
  Array.init n (fun _ -> Codec.read_string r)

let encode doc =
  let repr = Document.Internal.to_repr doc in
  let w = Codec.writer () in
  Codec.write_string w magic;
  Codec.write_varint w version;
  (match repr.Document.Internal.dtd_source with
  | None -> Codec.write_varint w 0
  | Some s ->
    Codec.write_varint w 1;
    Codec.write_string w s);
  write_string_array w repr.Document.Internal.tag_names;
  Codec.write_bytes_raw w repr.Document.Internal.kinds;
  write_int_array w repr.Document.Internal.tag;
  write_int_array w repr.Document.Internal.parent;
  write_int_array w repr.Document.Internal.depth;
  write_int_array w repr.Document.Internal.size;
  write_string_array w repr.Document.Internal.texts;
  Codec.write_varint w repr.Document.Internal.element_count;
  Codec.contents w

let decode data =
  let r = Codec.reader data in
  let m = Codec.read_string r in
  if m <> magic then raise (Codec.Corrupt (Printf.sprintf "bad magic %S" m));
  let v = Codec.read_varint r in
  if v <> version then raise (Codec.Corrupt (Printf.sprintf "unsupported version %d" v));
  let dtd_source =
    match Codec.read_varint r with
    | 0 -> None
    | 1 -> Some (Codec.read_string r)
    | n -> raise (Codec.Corrupt (Printf.sprintf "bad dtd flag %d" n))
  in
  let tag_names = read_string_array r in
  let kinds = Codec.read_bytes_raw r in
  let tag = read_int_array r in
  let parent = read_int_array r in
  let depth = read_int_array r in
  let size = read_int_array r in
  let texts = read_string_array r in
  let element_count = Codec.read_varint r in
  let node_count = Array.length tag in
  if Bytes.length kinds <> node_count
     || Array.length parent <> node_count
     || Array.length depth <> node_count
     || Array.length size <> node_count
     || Array.length texts <> node_count
  then raise (Codec.Corrupt "inconsistent array lengths");
  if not (Codec.at_end r) then raise (Codec.Corrupt "trailing bytes");
  Document.Internal.of_repr
    {
      Document.Internal.dtd_source;
      tag_names;
      kinds;
      tag;
      parent;
      depth;
      size;
      texts;
      element_count;
    }

let save path doc =
  let oc = open_out_bin path in
  (try output_string oc (encode doc)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let data =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  decode data

(* ------------------------------------------------------------------ *)
(* Index persistence: posting lists are sorted and ascending, so they are
   stored gap-encoded (first id, then deltas), each as a varint — the
   classic inverted-file compression. *)

let index_magic = "XTRINDEX"

let encode_index index =
  let repr = Inverted_index.Internal.to_repr index in
  let w = Codec.writer () in
  Codec.write_string w index_magic;
  Codec.write_varint w version;
  write_string_array w repr.Inverted_index.Internal.tokens;
  Codec.write_varint w (Array.length repr.Inverted_index.Internal.postings);
  Array.iter
    (fun list ->
      Codec.write_varint w (Array.length list);
      let prev = ref 0 in
      Array.iteri
        (fun i node ->
          if i = 0 then Codec.write_varint w node
          else Codec.write_varint w (node - !prev);
          prev := node)
        list)
    repr.Inverted_index.Internal.postings;
  Codec.write_varint w (Array.length repr.Inverted_index.Internal.tag_tokens);
  Array.iter
    (fun (a, b) ->
      Codec.write_varint w a;
      Codec.write_varint w b)
    repr.Inverted_index.Internal.tag_tokens;
  Codec.contents w

let decode_index ~doc data =
  let r = Codec.reader data in
  let m = Codec.read_string r in
  if m <> index_magic then raise (Codec.Corrupt (Printf.sprintf "bad index magic %S" m));
  let v = Codec.read_varint r in
  if v <> version then raise (Codec.Corrupt (Printf.sprintf "unsupported index version %d" v));
  let tokens = read_string_array r in
  let n_lists = Codec.read_varint r in
  let postings =
    Array.init n_lists (fun _ ->
        let len = Codec.read_varint r in
        let out = Array.make len 0 in
        let prev = ref 0 in
        for i = 0 to len - 1 do
          let v = Codec.read_varint r in
          let node = if i = 0 then v else !prev + v in
          out.(i) <- node;
          prev := node
        done;
        out)
  in
  if Array.length tokens <> n_lists then
    raise (Codec.Corrupt "token/postings arity mismatch");
  let n_pairs = Codec.read_varint r in
  let tag_tokens =
    Array.init n_pairs (fun _ ->
        let a = Codec.read_varint r in
        let b = Codec.read_varint r in
        a, b)
  in
  if not (Codec.at_end r) then raise (Codec.Corrupt "trailing bytes after index");
  Inverted_index.Internal.of_repr ~doc { Inverted_index.Internal.tokens; postings; tag_tokens }

let save_index path index =
  let oc = open_out_bin path in
  (try output_string oc (encode_index index)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let load_index path ~doc =
  let ic = open_in_bin path in
  let data =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  decode_index ~doc data

(* ------------------------------------------------------------------ *)
(* Bundles: arena + index in one file, each as a length-prefixed section
   so either part can evolve independently. *)

let bundle_magic = "XTRBUNDL"

let encode_bundle doc index =
  let w = Codec.writer () in
  Codec.write_string w bundle_magic;
  Codec.write_varint w version;
  Codec.write_string w (encode doc);
  Codec.write_string w (encode_index index);
  Codec.contents w

let decode_bundle data =
  let r = Codec.reader data in
  let m = Codec.read_string r in
  if m <> bundle_magic then raise (Codec.Corrupt (Printf.sprintf "bad bundle magic %S" m));
  let v = Codec.read_varint r in
  if v <> version then raise (Codec.Corrupt (Printf.sprintf "unsupported bundle version %d" v));
  let doc = decode (Codec.read_string r) in
  let index = decode_index ~doc (Codec.read_string r) in
  if not (Codec.at_end r) then raise (Codec.Corrupt "trailing bytes after bundle");
  doc, index

let save_bundle path doc index =
  let oc = open_out_bin path in
  (try output_string oc (encode_bundle doc index)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let load_bundle path =
  let ic = open_in_bin path in
  let data =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  decode_bundle data

(* first bytes of any Persist file: a Codec string length then the magic;
   used by the CLI to sniff file kinds *)
let sniff_magic data =
  match Codec.read_string (Codec.reader data) with
  | magic -> Some magic
  | exception Codec.Corrupt _ -> None
