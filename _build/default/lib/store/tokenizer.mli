(** Word tokenization for the inverted index and for keyword queries.

    Tokens are maximal runs of ASCII letters and digits (bytes >= 0x80 are
    treated as letters so UTF-8 words survive), lowercased. Both document
    text and query keywords go through the same function, so matching is
    case-insensitive by construction. *)

val tokens : string -> string list
(** Tokens in order of appearance, duplicates preserved. *)

val normalize : string -> string
(** Lowercase a single keyword (ASCII case folding). Returns [""] when the
    keyword contains no token characters. *)
