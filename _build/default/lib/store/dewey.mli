(** Dewey labels over a document arena.

    The label of a node is the child-rank path from the root ([[]] for the
    root, [[2;0]] for the first child of the root's third child). SLCA-style
    algorithms use label comparison and longest-common-prefix depth instead
    of repeated parent walks. Labels for all nodes are materialized once in
    O(n). *)

type t

val of_document : Document.t -> t

val label : t -> Document.node -> int array
(** The stored label — do not mutate. *)

val compare_nodes : t -> Document.node -> Document.node -> int
(** Lexicographic order of labels; equals document (pre)order. *)

val common_prefix_depth : t -> Document.node -> Document.node -> int
(** Length of the longest common label prefix = depth of the LCA. *)

val lca : t -> Document.node -> Document.node -> Document.node
(** LCA via labels; agrees with {!Document.lca}. *)

val pp_label : t -> Format.formatter -> Document.node -> unit
(** e.g. [1.0.2]. *)
