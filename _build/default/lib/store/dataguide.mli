(** Structure summary (strong dataguide): one entry per distinct
    root-to-element tag path.

    Node classification, schema inference and feature statistics are
    per-path rather than per-tag, so that a [name] under [retailer] and a
    [name] under [store] are distinct schema objects even though the tag
    coincides. *)

type path = int
(** Dense path identifier; the root's path is [0]. *)

type t

val build : Document.t -> t

val document : t -> Document.t

val path_count : t -> int

val path_of_node : t -> Document.node -> path
(** @raise Invalid_argument for text nodes. *)

val parent_path : t -> path -> path option
(** [None] for the root path. *)

val path_tag : t -> path -> int
(** Interned tag (in the document's tag interner) of the last step. *)

val path_tag_name : t -> path -> string

val path_depth : t -> path -> int

val instance_count : t -> path -> int
(** Number of element nodes with this path. *)

val path_string : t -> path -> string
(** e.g. ["/retailer/store/city"]. *)

val find_path : t -> string list -> path option
(** [find_path t ["retailer"; "store"]] resolves a root-to-node tag
    sequence (the root tag first). *)

val paths : t -> path list
(** All paths, root first, in first-encountered (document) order. *)

val iter_instances : t -> path -> (Document.node -> unit) -> unit
(** Visit every element node with the given path, in document order. *)

val instances : t -> path -> Document.node list
