let is_token_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || Char.code c >= 0x80

let tokens s =
  let acc = ref [] in
  let buf = Buffer.create 12 in
  let flush () =
    if Buffer.length buf > 0 then begin
      acc := String.lowercase_ascii (Buffer.contents buf) :: !acc;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_token_char c then Buffer.add_char buf c else flush ()) s;
  flush ();
  List.rev !acc

let normalize s =
  match tokens s with
  | [] -> ""
  | toks -> String.concat "" toks
