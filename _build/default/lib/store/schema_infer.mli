(** Star-node ("*-node") inference.

    The paper (§2.1) classifies a node as an entity when it "corresponds to
    a *-node in the DTD", and explicitly allows using the XML data structure
    instead of a DTD. This module answers, per dataguide path, whether the
    path's tag may occur more than once under its parent:

    - when the document carries a DTD that declares the parent element, the
      DTD's content model decides;
    - otherwise the data decides: the path is starred iff some parent
      instance actually has two or more children on that path.

    The root path is never starred (a document has exactly one root). *)

type t

val infer : ?dtd:Extract_xml.Dtd.t -> Dataguide.t -> t
(** [dtd] defaults to the one stored in the underlying document, if any. *)

val dataguide : t -> Dataguide.t

val is_starred : t -> Dataguide.path -> bool

val starred_paths : t -> Dataguide.path list

val source : t -> Dataguide.path -> [ `Dtd | `Data ]
(** Which evidence decided the path's star status. *)
